// Extension bench (Section 5 future work): the m-step method on an
// irregular region.  Colours the L-shaped plate with the greedy algorithm,
// verifies the decoupled block structure, and sweeps m through the Solver
// facade — showing that the method's behaviour carries over from the
// rectangular plate once a valid multicolouring exists.
#include <iostream>

#include "color/greedy.hpp"
#include "fem/tri_mesh.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"n", "tol"});
  const int n = cli.get_int("n", 16);

  const fem::TriMesh mesh = fem::TriMesh::l_shape(n);
  const auto k = fem::assemble_plane_stress(mesh, fem::Material{});
  const auto classes = color::greedy_classes(mesh);
  const auto cs = color::make_colored_system(k, classes);
  const auto rep = color::verify_block_structure(cs);

  std::cout << "== Irregular region (Section 5) ==\n"
            << "L-shaped plate, N = " << k.rows() << ", greedy colouring: "
            << color::greedy_color_count(mesh) << " node colours, "
            << cs.num_classes() << " equation classes\n"
            << "colouring valid: "
            << (color::coloring_is_valid(k, classes) ? "yes [OK]"
                                                     : "NO [FAIL]")
            << "\nblock structure (D_ii diagonal): "
            << (rep.diagonal_blocks_are_diagonal ? "yes [OK]" : "NO [FAIL]")
            << "\n\n";

  Vec f(k.rows(), 0.0);
  index_t tip = 0;
  double best = -1.0;
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    const double score = mesh.node_x(v) - mesh.node_y(v);
    if (score > best) {
      best = score;
      tip = v;
    }
  }
  fem::add_point_load(mesh, tip, 0.0, -1.0, f);

  solver::SolverConfig base;
  base.tolerance = cli.get_double("tol", 1e-6);

  auto run = [&](solver::SolverConfig cfg) {
    return solver::Solver::from_config(cfg).solve(k, f, classes);
  };

  util::Table t({"m", "variant", "iterations", "inner products"});
  {
    auto cfg = base;
    cfg.steps = 0;
    const auto plain = run(cfg);
    t.add_row({"0", "-", util::Table::integer(plain.iterations()),
               util::Table::integer(plain.result.inner_products)});
  }
  for (int m : {1, 2, 3, 4, 6, 8}) {
    for (int variant = 0; variant < 2; ++variant) {
      if (m == 1 && variant == 1) continue;
      auto cfg = base;
      cfg.steps = m;
      cfg.params = variant == 0 ? "ones" : "lsq";
      const auto res = run(cfg);
      t.add_row({util::Table::integer(m), variant == 0 ? "plain" : "param",
                 util::Table::integer(res.iterations()),
                 util::Table::integer(res.result.inner_products)});
    }
  }
  t.print(std::cout, "m-step SSOR PCG on the L-shape");
  std::cout << "\nshape check: parametrized m-step reduces iterations "
               "monotonically, as on the rectangle.\n";
  return (rep.diagonal_blocks_are_diagonal &&
          color::coloring_is_valid(k, classes))
             ? 0
             : 1;
}
