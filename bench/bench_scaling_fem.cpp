// Extension bench: the scaled-problem discussion at the end of Section 4.
//
// "if we keep the number of nodes per processor fixed and continue to add
// processors up to a certain number, say n, the overhead for the
// preconditioner will still be more than that for the CG method ...
// however, as the number of processors increases beyond n, the value of
// B/A in (4.2) will continue to decrease until m >= 4 steps of the
// preconditioner will be optimal."
//
// We grow the plate with the processor count (fixed columns per processor),
// measure the simulated time per m on the software-reduction machine and
// on the sum/max-circuit machine (Section 5), and report the optimal m:
// with the circuit, reductions stay cheap; without it the reduction cost
// grows ~P, dots get relatively costlier, and deeper preconditioning wins.
#include <iostream>
#include <vector>

#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"cols-per-proc", "rows"});
  const int cols_per_proc = cli.get_int("cols-per-proc", 3);
  const int rows = cli.get_int("rows", 9);

  std::cout << "== Scaled-problem study (Section 4 discussion) ==\n"
               "fixed " << rows * cols_per_proc
            << " nodes per processor, plate grows with P.\n\n";

  util::Table t({"P", "N", "best m (software)", "T (software)",
                 "best m (sum/max)", "T (sum/max)", "comm share"});

  for (int p : {1, 2, 4, 8, 12}) {
    const int ucols = cols_per_proc * p;
    const fem::PlateMesh mesh(rows, ucols + 1);
    const femsim::Assignment assign = femsim::column_strips(mesh, p);
    const femsim::DistributedPlateSolver solver(
        mesh, fem::Material{}, fem::EdgeLoad{1.0, 0.0}, assign);

    auto best_of = [&](bool summax) {
      int best_m = 0;
      double best_t = 1e300;
      for (int m : {0, 1, 2, 3, 4, 5, 6}) {
        femsim::DistOptions opt;
        opt.m = m;
        opt.tolerance = 1e-6;
        opt.costs.use_summax_circuit = summax;
        const auto res = solver.solve(opt);
        if (res.converged && res.simulated_seconds < best_t) {
          best_t = res.simulated_seconds;
          best_m = m;
        }
      }
      return std::pair<int, double>{best_m, best_t};
    };

    const auto [m_soft, t_soft] = best_of(false);
    const auto [m_hard, t_hard] = best_of(true);

    // Reduction share of the software run at its best m.
    femsim::DistOptions opt;
    opt.m = m_soft;
    opt.tolerance = 1e-6;
    const auto res = solver.solve(opt);
    const double comm_share =
        res.max_comm_seconds / res.simulated_seconds;

    t.add_row({util::Table::integer(p),
               util::Table::integer(mesh.num_equations()),
               util::Table::integer(m_soft), util::Table::fixed(t_soft, 2),
               util::Table::integer(m_hard), util::Table::fixed(t_hard, 2),
               util::Table::fixed(100.0 * comm_share, 1) + "%"});
  }
  t.print(std::cout, "optimal m vs processor count");
  std::cout << "\nshape targets: optimal m tends to grow with P (small-m\n"
               "runs are reduction-bound); the sum/max circuit keeps total\n"
               "time lower once P > 2.\n";
  return 0;
}
