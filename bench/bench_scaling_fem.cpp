// Scaling bench, two modes.
//
// --mode=threads (default): real-thread scaling harness.  Sweeps the
// execution policy over a list of thread counts (default 1,2,4,8) on the
// paper's two workload shapes — the plane-stress FEM plate in CSR and the
// same system in the CYBER diagonal layout (DIA) — and reports iterations,
// wall seconds, and speedup vs the serial (threads=0) solve.  The
// deterministic blocked reductions make every threaded solve bitwise
// identical to the serial one; the harness verifies that on each run and
// emits machine-readable JSON (--out=BENCH_scaling.json) for CI artifacts.
//
// --mode=scaled: the original Section-4 scaled-problem study on the
// simulated Finite Element Machine — "as the number of processors
// increases ... m >= 4 steps of the preconditioner will be optimal."
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fem/plane_stress.hpp"
#include "fem/plate_mesh.hpp"
#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mstep;

std::vector<int> parse_count_list(const std::string& flag,
                                  const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    if (piece.empty()) continue;
    std::size_t pos = 0;
    int value = 0;
    try {
      value = std::stoi(piece, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != piece.size() || value < 1) {
      throw std::invalid_argument(flag + " wants a list of counts >= 1, got '" +
                                  piece + "'");
    }
    out.push_back(value);
  }
  if (out.empty()) throw std::invalid_argument("empty " + flag + " list");
  return out;
}

struct Workload {
  std::string name;
  solver::SolverConfig config;  // execution.threads filled per run
};

struct Run {
  std::string workload;
  index_t n = 0;
  int threads = 0;  // 0 = serial baseline
  int shards = 0;   // 0 = not sharded (region-sharded backend off)
  int iterations = 0;
  bool converged = false;
  bool bitwise_match_serial = true;
  double wall_seconds = 0.0;
  double speedup_vs_serial = 1.0;
};

/// Best-of-`repeats` wall time of prepared.solve(f).
double time_solve(const solver::Prepared& prepared, const Vec& f, int repeats,
                  solver::SolveReport* report) {
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    util::Timer timer;
    *report = prepared.solve(f);
    best = std::min(best, timer.seconds());
  }
  return best;
}

int run_thread_scaling(const util::Cli& cli) {
  const bool quick = cli.has("quick");
  const int plate = cli.get_int("size", quick ? 24 : 80);
  const int repeats = cli.get_int("repeats", quick ? 1 : 3);
  const auto thread_counts = parse_count_list(
      "--threads", cli.get("threads", quick ? "1,2" : "1,2,4,8"));
  // Region-sharded sweep rows (threads left serial so the sharded phase
  // dispatch owns the pool); every sharded solve must stay bitwise the
  // serial solve, which is the row's gate in BENCH_scaling.json.
  const auto shard_counts =
      parse_count_list("--shards", cli.get("shards", quick ? "2" : "2,4"));
  const std::string out_path = cli.get("out", "BENCH_scaling.json");

  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(plate);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});

  solver::SolverConfig base;
  base.splitting = "ssor";
  base.steps = 4;
  base.params = "lsq";
  base.ordering = solver::Ordering::kMulticolor;
  base.tolerance = 1e-6;

  std::vector<Workload> workloads;
  workloads.push_back({"fem_plate_csr", base});
  Workload cyber{"cyber_dia", base};
  cyber.config.format = solver::MatrixFormat::kDia;
  workloads.push_back(cyber);

  std::cout << "== Thread-scaling harness ==\n"
            << "plate a = " << plate << " (" << mesh.num_equations()
            << " equations), m = " << base.steps
            << ", best of " << repeats << " repeat(s).\n\n";

  std::vector<Run> runs;
  for (const auto& w : workloads) {
    // Serial baseline: threads = 0, the unthreaded code path.
    solver::SolveReport serial_report;
    const auto serial_solver = solver::Solver::from_config(w.config);
    const auto serial_prepared = serial_solver.prepare(sys.stiffness);
    const double serial_wall =
        time_solve(serial_prepared, sys.load, repeats, &serial_report);

    Run baseline;
    baseline.workload = w.name;
    baseline.n = mesh.num_equations();
    baseline.threads = 0;
    baseline.iterations = serial_report.iterations();
    baseline.converged = serial_report.converged();
    baseline.wall_seconds = serial_wall;
    runs.push_back(baseline);

    util::Table t({"threads", "iterations", "wall (s)", "speedup",
                   "bitwise = serial"});
    t.add_row({"serial", util::Table::integer(baseline.iterations),
               util::Table::fixed(serial_wall, 4), "1.00", "-"});

    for (const int threads : thread_counts) {
      auto cfg = w.config;
      cfg.execution.threads = threads;
      const auto solver = solver::Solver::from_config(cfg);
      // One Prepared per thread count: the pool is created once and reused
      // across the repeats (and would be across further right-hand sides).
      const auto prepared = solver.prepare(sys.stiffness);
      solver::SolveReport report;
      const double wall = time_solve(prepared, sys.load, repeats, &report);

      Run run;
      run.workload = w.name;
      run.n = mesh.num_equations();
      run.threads = threads;
      run.iterations = report.iterations();
      run.converged = report.converged();
      run.wall_seconds = wall;
      run.speedup_vs_serial = serial_wall / wall;
      run.bitwise_match_serial =
          report.iterations() == serial_report.iterations() &&
          report.solution == serial_report.solution;
      runs.push_back(run);

      t.add_row({util::Table::integer(threads),
                 util::Table::integer(run.iterations),
                 util::Table::fixed(wall, 4),
                 util::Table::fixed(run.speedup_vs_serial, 2),
                 run.bitwise_match_serial ? "yes" : "NO"});
    }
    t.print(std::cout, w.name);
    std::cout << '\n';

    util::Table st({"shards", "iterations", "wall (s)", "speedup",
                    "bitwise = serial"});
    for (const int shards : shard_counts) {
      auto cfg = w.config;
      cfg.execution.shards = shards;
      const auto solver = solver::Solver::from_config(cfg);
      const auto prepared = solver.prepare(sys.stiffness);
      solver::SolveReport report;
      const double wall = time_solve(prepared, sys.load, repeats, &report);

      Run run;
      run.workload = w.name;
      run.n = mesh.num_equations();
      run.threads = 0;
      run.shards = shards;
      run.iterations = report.iterations();
      run.converged = report.converged();
      run.wall_seconds = wall;
      run.speedup_vs_serial = serial_wall / wall;
      run.bitwise_match_serial =
          report.iterations() == serial_report.iterations() &&
          report.solution == serial_report.solution;
      runs.push_back(run);

      st.add_row({util::Table::integer(shards),
                  util::Table::integer(run.iterations),
                  util::Table::fixed(wall, 4),
                  util::Table::fixed(run.speedup_vs_serial, 2),
                  run.bitwise_match_serial ? "yes" : "NO"});
    }
    st.print(std::cout, w.name + " (region-sharded)");
    std::cout << '\n';
  }

  util::Json rows = util::Json::array();
  for (const Run& r : runs) {
    rows.push(util::Json::object()
                  .set("workload", r.workload)
                  .set("n", r.n)
                  .set("threads", r.threads)
                  .set("shards", r.shards)
                  .set("iterations", r.iterations)
                  .set("converged", r.converged)
                  .set("wall_seconds", r.wall_seconds)
                  .set("speedup_vs_serial", r.speedup_vs_serial)
                  .set("bitwise_match_serial", r.bitwise_match_serial));
  }
  std::ofstream json(out_path);
  rows.dump(json);
  std::cout << "wrote " << out_path << '\n';

  bool all_match = true;
  bool all_converged = true;
  for (const Run& r : runs) {
    all_match = all_match && r.bitwise_match_serial;
    all_converged = all_converged && r.converged;
  }
  if (!all_match || !all_converged) {
    std::cerr << (all_match ? "non-converged run\n"
                            : "threaded solve diverged from serial "
                              "bitwise!\n");
    return 1;
  }
  return 0;
}

int run_scaled_problem_study(const util::Cli& cli) {
  const int cols_per_proc = cli.get_int("cols-per-proc", 3);
  const int rows = cli.get_int("rows", 9);

  std::cout << "== Scaled-problem study (Section 4 discussion) ==\n"
               "fixed " << rows * cols_per_proc
            << " nodes per processor, plate grows with P.\n\n";

  util::Table t({"P", "N", "best m (software)", "T (software)",
                 "best m (sum/max)", "T (sum/max)", "comm share"});

  for (int p : {1, 2, 4, 8, 12}) {
    const int ucols = cols_per_proc * p;
    const fem::PlateMesh mesh(rows, ucols + 1);
    const femsim::Assignment assign = femsim::column_strips(mesh, p);
    const femsim::DistributedPlateSolver solver(
        mesh, fem::Material{}, fem::EdgeLoad{1.0, 0.0}, assign);

    auto best_of = [&](bool summax) {
      int best_m = 0;
      double best_t = 1e300;
      for (int m : {0, 1, 2, 3, 4, 5, 6}) {
        femsim::DistOptions opt;
        opt.m = m;
        opt.tolerance = 1e-6;
        opt.costs.use_summax_circuit = summax;
        const auto res = solver.solve(opt);
        if (res.converged && res.simulated_seconds < best_t) {
          best_t = res.simulated_seconds;
          best_m = m;
        }
      }
      return std::pair<int, double>{best_m, best_t};
    };

    const auto [m_soft, t_soft] = best_of(false);
    const auto [m_hard, t_hard] = best_of(true);

    // Reduction share of the software run at its best m.
    femsim::DistOptions opt;
    opt.m = m_soft;
    opt.tolerance = 1e-6;
    const auto res = solver.solve(opt);
    const double comm_share =
        res.max_comm_seconds / res.simulated_seconds;

    t.add_row({util::Table::integer(p),
               util::Table::integer(mesh.num_equations()),
               util::Table::integer(m_soft), util::Table::fixed(t_soft, 2),
               util::Table::integer(m_hard), util::Table::fixed(t_hard, 2),
               util::Table::fixed(100.0 * comm_share, 1) + "%"});
  }
  t.print(std::cout, "optimal m vs processor count");
  std::cout << "\nshape targets: optimal m tends to grow with P (small-m\n"
               "runs are reduction-bound); the sum/max circuit keeps total\n"
               "time lower once P > 2.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mstep::util::Cli cli(argc, argv,
                         {"mode", "quick", "size", "repeats", "threads",
                          "shards", "out", "cols-per-proc", "rows"});
    const std::string mode = cli.get("mode", "threads");
    if (mode == "threads") return run_thread_scaling(cli);
    if (mode == "scaled") return run_scaled_problem_study(cli);
    std::cerr << "unknown --mode '" << mode << "' (threads | scaled)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "bench_scaling_fem: " << e.what() << '\n';
    return 2;
  }
}
