// Ablation A2: design choices of the m-step method measured head-to-head.
//
//   1. parametrized (least-squares) vs unparametrized alphas,
//   2. least-squares vs min-max parameter criteria,
//   3. SSOR splitting vs Jacobi splitting (Dubois–Greenbaum–Rodrigue
//      truncated Neumann and the Johnson–Micchelli–Paul parametrized
//      variant) at equal m,
//   4. omega sweep for the multicolor SSOR splitting — the paper's
//      Section 5 claim that omega = 1 is a good choice for this ordering.
#include <iostream>
#include <memory>

#include "color/coloring.hpp"
#include "core/baselines.hpp"
#include "core/condition.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"a", "tol"});
  const int a = cli.get_int("a", 24);
  const double tol = cli.get_double("tol", 1e-6);

  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const Vec f = cs.permute(sys.load);

  core::PcgOptions opt;
  opt.tolerance = tol;

  std::cout << "== Ablation A2: preconditioner design choices ==\n"
               "plate a=" << a << ", N=" << cs.size() << ", tol=" << tol
            << " on |du|_inf\n\n";

  const auto baseline = core::cg_solve(cs.matrix, f, opt);
  std::cout << "plain CG iterations: " << baseline.iterations << "\n\n";

  // 1+2+3: iteration counts by preconditioner family and m.
  {
    util::Table t({"m", "SSOR plain", "SSOR least-sq [0,1]",
                   "SSOR least-sq (meas)", "SSOR min-max (meas)",
                   "Jacobi plain (DGR)", "Jacobi least-sq (JMP)"});
    // Honest intervals: Jacobi via Lanczos on D^{-1/2}KD^{-1/2}; SSOR via
    // preconditioned Lanczos on the 1-step operator.
    const auto jac_iv = core::jacobi_interval(cs.matrix);
    const core::MulticolorMStepSsor ssor1(cs, {1.0});
    const auto est1 = core::estimate_preconditioned_condition(cs.matrix, ssor1);
    const core::SpectrumInterval ssor_meas{est1.lambda_min * 0.95,
                                           est1.lambda_max * 1.02};
    for (int m = 1; m <= 8; ++m) {
      auto run_colored = [&](const std::vector<double>& alphas) {
        const core::MulticolorMStepSsor prec(cs, alphas);
        return core::pcg_solve(cs.matrix, f, prec, opt).iterations;
      };
      auto run_neumann = [&] {
        const auto prec = core::make_neumann_preconditioner(cs.matrix, m);
        return core::pcg_solve(cs.matrix, f, *prec, opt).iterations;
      };
      auto run_jmp = [&] {
        const split::JacobiSplitting jac(cs.matrix);
        const core::MStepPreconditioner prec(
            cs.matrix, jac, core::least_squares_alphas(m, jac_iv));
        return core::pcg_solve(cs.matrix, f, prec, opt).iterations;
      };
      t.add_row(
          {util::Table::integer(m),
           util::Table::integer(run_colored(core::unparametrized_alphas(m))),
           util::Table::integer(run_colored(
               core::least_squares_alphas(m, core::ssor_interval()))),
           util::Table::integer(
               run_colored(core::least_squares_alphas(m, ssor_meas))),
           m == 1 ? "-"
                  : util::Table::integer(
                        run_colored(core::minmax_alphas(m, ssor_meas))),
           util::Table::integer(run_neumann()),
           util::Table::integer(run_jmp())});
    }
    t.print(std::cout, "iterations by family and m");
  }

  // 4: omega sweep for 1-step multicolor SSOR (generic engine supports any
  // omega; the specialised Algorithm 2 kernel is the omega = 1 case).
  {
    std::cout << '\n';
    util::Table t({"omega", "iterations (m=1)", "iterations (m=3, plain)"});
    for (double omega : {0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.4, 1.6}) {
      const split::SsorSplitting ssor(cs.matrix, omega);
      const core::MStepPreconditioner m1(cs.matrix, ssor, {1.0});
      const core::MStepPreconditioner m3(cs.matrix, ssor,
                                         core::unparametrized_alphas(3));
      t.add_row({util::Table::fixed(omega, 1),
                 util::Table::integer(
                     core::pcg_solve(cs.matrix, f, m1, opt).iterations),
                 util::Table::integer(
                     core::pcg_solve(cs.matrix, f, m3, opt).iterations)});
    }
    t.print(std::cout,
            "omega sweep (Section 5: omega = 1 is good for this ordering)");
  }
  return 0;
}
