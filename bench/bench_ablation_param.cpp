// Ablation A2: design choices of the m-step method measured head-to-head.
//
//   1. parametrized (least-squares) vs unparametrized alphas,
//   2. least-squares vs min-max parameter criteria,
//   3. SSOR splitting vs Jacobi splitting (Dubois–Greenbaum–Rodrigue
//      truncated Neumann and the Johnson–Micchelli–Paul parametrized
//      variant) at equal m,
//   4. omega sweep for the multicolor SSOR splitting — the paper's
//      Section 5 claim that omega = 1 is a good choice for this ordering.
//
// Every variant is a Solver config — the design space the facade's
// registries expose — except the classic Neumann baseline, which stays on
// its dedicated constructor.
#include <iostream>
#include <memory>

#include "color/coloring.hpp"
#include "core/baselines.hpp"
#include "core/condition.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"a", "tol"});
  const int a = cli.get_int("a", 24);
  const double tol = cli.get_double("tol", 1e-6);

  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const auto classes = color::six_color_classes(mesh);
  const auto cs = color::make_colored_system(sys.stiffness, classes);
  const Vec f = cs.permute(sys.load);

  solver::SolverConfig base;
  base.tolerance = tol;

  // One facade run per (splitting spec, m, strategy, interval) point.
  auto iterations = [&](solver::SolverConfig cfg) {
    return solver::Solver::from_config(cfg)
        .solve(sys.stiffness, sys.load, classes)
        .iterations();
  };

  std::cout << "== Ablation A2: preconditioner design choices ==\n"
               "plate a=" << a << ", N=" << cs.size() << ", tol=" << tol
            << " on |du|_inf\n\n";

  {
    auto cfg = base;
    cfg.steps = 0;
    std::cout << "plain CG iterations: " << iterations(cfg) << "\n\n";
  }

  // 1+2+3: iteration counts by preconditioner family and m.
  {
    util::Table t({"m", "SSOR plain", "SSOR least-sq [0,1]",
                   "SSOR least-sq (meas)", "SSOR min-max (meas)",
                   "Jacobi plain (DGR)", "Jacobi least-sq (JMP)"});
    // Honest intervals: Jacobi via Lanczos on D^{-1/2}KD^{-1/2} (the
    // registry default); SSOR via preconditioned Lanczos on the 1-step
    // operator.
    const core::MulticolorMStepSsor ssor1(cs, {1.0});
    const auto est1 = core::estimate_preconditioned_condition(cs.matrix, ssor1);
    const core::SpectrumInterval ssor_meas{est1.lambda_min * 0.95,
                                           est1.lambda_max * 1.02};
    const auto jac_iv = core::jacobi_interval(cs.matrix);  // one Lanczos run
    core::PcgOptions opt;
    opt.tolerance = tol;
    for (int m = 1; m <= 8; ++m) {
      auto ssor_cfg = [&](const std::string& params,
                          std::optional<core::SpectrumInterval> iv) {
        auto cfg = base;
        cfg.steps = m;
        cfg.params = params;
        cfg.interval = iv;
        return cfg;
      };
      auto jacobi_cfg = [&] {
        auto cfg = base;
        cfg.splitting = "jacobi";
        cfg.steps = m;
        cfg.params = "lsq";
        cfg.interval = jac_iv;  // hoisted: one Lanczos run for all m
        return cfg;
      };
      auto run_neumann = [&] {
        const auto prec = core::make_neumann_preconditioner(cs.matrix, m);
        return core::pcg_solve(cs.matrix, f, *prec, opt).iterations;
      };
      t.add_row(
          {util::Table::integer(m),
           util::Table::integer(iterations(ssor_cfg("ones", std::nullopt))),
           util::Table::integer(iterations(ssor_cfg("lsq", std::nullopt))),
           util::Table::integer(iterations(ssor_cfg("lsq", ssor_meas))),
           m == 1 ? "-"
                  : util::Table::integer(
                        iterations(ssor_cfg("minmax", ssor_meas))),
           util::Table::integer(run_neumann()),
           util::Table::integer(iterations(jacobi_cfg()))});
    }
    t.print(std::cout, "iterations by family and m");
  }

  // 4: omega sweep for multicolor SSOR.  omega = 1 takes the specialised
  // Algorithm-2 kernel; the facade routes every other omega through the
  // generic engine on the colour-permuted matrix.
  {
    std::cout << '\n';
    util::Table t({"omega", "iterations (m=1)", "iterations (m=3, plain)"});
    for (double omega : {0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.4, 1.6}) {
      auto sweep = [&](int m) {
        auto cfg = base;
        cfg.splitting_options["omega"] = omega;
        cfg.steps = m;
        cfg.params = "ones";
        return iterations(cfg);
      };
      t.add_row({util::Table::fixed(omega, 1),
                 util::Table::integer(sweep(1)),
                 util::Table::integer(sweep(3))});
    }
    t.print(std::cout,
            "omega sweep (Section 5: omega = 1 is good for this ordering)");
  }
  return 0;
}
