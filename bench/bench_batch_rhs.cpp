// Batched multi-RHS throughput bench.
//
// The m-step pipeline's expensive setup (coloring, splitting, alphas) is
// built once; the question this bench answers is how fast MANY independent
// right-hand sides flow through it.  Three schedules are timed on the same
// `Prepared`:
//
//   seq_solve_calls  a loop of one-call Solver::solve(K, f) at --threads=N
//                    — what code without the batch engine does: the
//                    coloring/splitting/alpha setup is redone per RHS and
//                    the thread budget is spent inside each solve;
//   seq_serial       sequential Prepared::solve() on the serial kernel
//                    path (threads = 0), setup done once;
//   seq_threaded     sequential Prepared::solve() with kernel threading
//                    (--threads=N) — latency scheduling;
//   batched          solveMany() — throughput scheduling: one RHS per
//                    lane, work-stealing round-robin, shared setup.
//
// Every batched per-RHS result is verified BITWISE against the seq_serial
// report, and the run fails (exit 1) on any mismatch or non-convergence.
// Emits machine-readable JSON (--out=BENCH_batch.json) for the CI perf
// gate; `speedup_vs_seq_threaded` is the scale-free metric the gate
// checks, since it compares two schedules of the same thread budget on the
// same machine.
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fem/plane_stress.hpp"
#include "fem/plate_mesh.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mstep;

struct Run {
  std::string workload;
  index_t n = 0;
  int rhs = 0;
  int threads = 0;
  int batch = 0;  // lanes actually used
  int iterations_total = 0;
  bool converged = true;
  bool bitwise_match_serial = true;
  double seq_solve_calls_seconds = 0.0;
  double seq_serial_seconds = 0.0;
  double seq_threaded_seconds = 0.0;
  double batch_seconds = 0.0;
  double throughput_batch = 0.0;          // RHSs per second, batched
  double speedup_vs_seq_solve_calls = 0.0;
  double speedup_vs_seq_serial = 0.0;
  double speedup_vs_seq_threaded = 0.0;
};

/// Best-of-`repeats` wall time of a sequential solve loop; fills `reports`
/// from the last repeat.
double time_sequential(const solver::Prepared& prepared,
                       const std::vector<Vec>& bs, int repeats,
                       std::vector<solver::SolveReport>* reports) {
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    reports->clear();
    util::Timer timer;
    for (const Vec& f : bs) reports->push_back(prepared.solve(f));
    best = std::min(best, timer.seconds());
  }
  return best;
}

double time_batched(const solver::Prepared& prepared, const std::vector<Vec>& bs,
                    int repeats, solver::BatchReport* report) {
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    *report = prepared.solveMany(bs);
    best = std::min(best, report->wall_seconds);
  }
  return best;
}

bool bitwise_equal(const solver::SolveReport& a, const solver::SolveReport& b) {
  return a.iterations() == b.iterations() &&
         a.result.final_delta_inf == b.result.final_delta_inf &&
         a.solution == b.solution;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Cli cli(argc, argv,
                  {"quick", "size", "rhs", "threads", "batch", "repeats",
                   "out", "tol"});
    const bool quick = cli.has("quick");
    const int plate = cli.get_int("size", quick ? 24 : 64);
    const int nrhs = cli.get_int("rhs", quick ? 6 : 16);
    const int threads = cli.get_int("threads", quick ? 2 : 8);
    const int batch = cli.get_int("batch", 0);  // 0 = one lane per thread
    const int repeats = cli.get_int("repeats", quick ? 1 : 2);
    const double tol = cli.get_double("tol", 1e-6);
    const std::string out_path = cli.get("out", "BENCH_batch.json");

    const fem::PlateMesh mesh = fem::PlateMesh::unit_square(plate);
    const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                                fem::EdgeLoad{1.0, 0.0});
    const index_t n = sys.stiffness.rows();

    // Independent right-hand sides: the assembled load plus deterministic
    // random loads (any RHS is admissible for the SPD system).
    std::vector<Vec> bs;
    bs.reserve(static_cast<std::size_t>(nrhs));
    bs.push_back(sys.load);
    util::Rng rng(42);
    for (int j = 1; j < nrhs; ++j) {
      bs.push_back(rng.uniform_vector(static_cast<std::size_t>(n)));
    }

    solver::SolverConfig base;
    base.splitting = "ssor";
    base.steps = 4;
    base.params = "lsq";
    base.ordering = solver::Ordering::kMulticolor;
    base.tolerance = tol;

    struct Workload {
      std::string name;
      solver::SolverConfig config;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"ssor_multicolor", base});  // Algorithm-2 fast path
    Workload generic{"jacobi_generic", base};        // generic m-step engine
    generic.config.splitting = "jacobi";
    generic.config.splitting_options.clear();
    workloads.push_back(generic);

    std::cout << "== Batched multi-RHS harness ==\n"
              << "plate a = " << plate << " (" << n << " equations), "
              << nrhs << " right-hand sides, threads = " << threads
              << ", hardware cores = "
              << std::thread::hardware_concurrency() << ", best of "
              << repeats << " repeat(s).\n\n";

    std::vector<Run> runs;
    bool all_ok = true;
    for (const auto& w : workloads) {
      Run run;
      run.workload = w.name;
      run.n = n;
      run.rhs = nrhs;
      run.threads = threads;

      // seq_serial: the bitwise reference.
      auto serial_cfg = w.config;
      const auto serial_prepared =
          solver::Solver::from_config(serial_cfg).prepare(sys.stiffness);
      std::vector<solver::SolveReport> serial_reports;
      run.seq_serial_seconds =
          time_sequential(serial_prepared, bs, repeats, &serial_reports);

      // seq_solve_calls: the pre-batch-engine schedule — one-call solves,
      // setup redone per right-hand side, same thread budget.
      auto threaded_cfg = w.config;
      threaded_cfg.execution.threads = threads;
      {
        const auto one_call = solver::Solver::from_config(threaded_cfg);
        double best = 1e300;
        for (int rep = 0; rep < repeats; ++rep) {
          util::Timer timer;
          for (const Vec& f : bs) {
            const auto r = one_call.solve(sys.stiffness, f);
            run.converged = run.converged && r.converged();
          }
          best = std::min(best, timer.seconds());
        }
        run.seq_solve_calls_seconds = best;
      }

      // seq_threaded: setup reused, thread budget spent inside each solve.
      const auto threaded_prepared =
          solver::Solver::from_config(threaded_cfg).prepare(sys.stiffness);
      std::vector<solver::SolveReport> threaded_reports;
      run.seq_threaded_seconds =
          time_sequential(threaded_prepared, bs, repeats, &threaded_reports);

      // batched: same thread budget spent across right-hand sides.
      auto batch_cfg = w.config;
      batch_cfg.execution.threads = threads;
      batch_cfg.batch = batch;
      const auto batch_prepared =
          solver::Solver::from_config(batch_cfg).prepare(sys.stiffness);
      solver::BatchReport batch_report;
      run.batch_seconds =
          time_batched(batch_prepared, bs, repeats, &batch_report);
      batch_report.rethrow_first_error();

      run.batch = batch_report.concurrency;
      run.iterations_total =
          static_cast<int>(batch_report.total_iterations());
      run.converged = run.converged && batch_report.all_converged();
      for (std::size_t i = 0; i < bs.size(); ++i) {
        run.bitwise_match_serial =
            run.bitwise_match_serial &&
            bitwise_equal(serial_reports[i], batch_report.reports[i]);
        run.converged = run.converged && serial_reports[i].converged() &&
                        threaded_reports[i].converged();
      }
      run.throughput_batch = nrhs / run.batch_seconds;
      run.speedup_vs_seq_solve_calls =
          run.seq_solve_calls_seconds / run.batch_seconds;
      run.speedup_vs_seq_serial = run.seq_serial_seconds / run.batch_seconds;
      run.speedup_vs_seq_threaded =
          run.seq_threaded_seconds / run.batch_seconds;
      runs.push_back(run);
      all_ok = all_ok && run.converged && run.bitwise_match_serial;

      util::Table t({"schedule", "wall (s)", "RHS/s", "speedup vs batched"});
      t.add_row({"seq solve() calls, threads=" + std::to_string(threads),
                 util::Table::fixed(run.seq_solve_calls_seconds, 4),
                 util::Table::fixed(nrhs / run.seq_solve_calls_seconds, 2),
                 util::Table::fixed(1.0 / run.speedup_vs_seq_solve_calls, 2)});
      t.add_row({"seq prepared, serial",
                 util::Table::fixed(run.seq_serial_seconds, 4),
                 util::Table::fixed(nrhs / run.seq_serial_seconds, 2),
                 util::Table::fixed(1.0 / run.speedup_vs_seq_serial, 2)});
      t.add_row({"seq prepared, threads=" + std::to_string(threads),
                 util::Table::fixed(run.seq_threaded_seconds, 4),
                 util::Table::fixed(nrhs / run.seq_threaded_seconds, 2),
                 util::Table::fixed(1.0 / run.speedup_vs_seq_threaded, 2)});
      t.add_row({"batched lanes=" + std::to_string(run.batch),
                 util::Table::fixed(run.batch_seconds, 4),
                 util::Table::fixed(run.throughput_batch, 2), "1.00"});
      t.print(std::cout, w.name + (run.bitwise_match_serial
                                       ? " (bitwise = serial: yes)"
                                       : " (bitwise = serial: NO)"));
      std::cout << '\n';
    }

    util::Json rows = util::Json::array();
    for (const Run& r : runs) {
      rows.push(util::Json::object()
                    .set("workload", r.workload)
                    .set("n", r.n)
                    .set("rhs", r.rhs)
                    .set("threads", r.threads)
                    .set("batch", r.batch)
                    .set("iterations_total", r.iterations_total)
                    .set("converged", r.converged)
                    .set("bitwise_match_serial", r.bitwise_match_serial)
                    .set("seq_solve_calls_seconds", r.seq_solve_calls_seconds)
                    .set("seq_serial_seconds", r.seq_serial_seconds)
                    .set("seq_threaded_seconds", r.seq_threaded_seconds)
                    .set("batch_seconds", r.batch_seconds)
                    .set("throughput_batch", r.throughput_batch)
                    .set("speedup_vs_seq_solve_calls",
                         r.speedup_vs_seq_solve_calls)
                    .set("speedup_vs_seq_serial", r.speedup_vs_seq_serial)
                    .set("speedup_vs_seq_threaded",
                         r.speedup_vs_seq_threaded));
    }
    std::ofstream json(out_path);
    rows.dump(json);
    std::cout << "wrote " << out_path << '\n';

    if (!all_ok) {
      std::cerr << "batched solve diverged from serial or failed to "
                   "converge!\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_batch_rhs: " << e.what() << '\n';
    return 2;
  }
}
