// bench_served — concurrent-client load against the mstep_served daemon.
//
// By default the bench hosts an in-process serve::Server on an ephemeral
// Unix socket (no port juggling, no external setup); --connect points it
// at a running daemon instead.  Two workloads:
//
//   hot    every client hammers ONE catalog spec under one config.  The
//          pipeline is primed before timing starts, so the measured phase
//          is pure cache-hit traffic — the daemon's steady-state fast
//          path.
//   mixed  clients rotate (staggered) through several spec x config
//          pairs, all primed, so the measured phase bounces between
//          resident prepared pipelines — the cache's working-set path.
//
// Clients count their own cache verdicts and busy retries from the
// replies, so the per-workload hit rate needs no metrics parsing; one
// served result per workload is compared BITWISE against a direct
// in-process Solver run of the same problem and config.  Rows go to
// --out=BENCH_served.json for the CI perf gate, which checks the
// scale-free columns (cache_hit_rate:higher, converged=true,
// bitwise_match_direct=true); throughput and latency columns are
// reported for humans and the perf-over-time collation, not gated.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "problems/problem.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "solver/config.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mstep;

struct Target {
  std::string spec;
  std::string config;
};

struct Run {
  std::string workload;
  int clients = 0;
  int requests_per_client = 0;
  int requests_total = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  long long busy_retries = 0;
  bool converged = true;
  bool bitwise_match_direct = true;
};

/// What one client thread saw: per-request end-to-end latency plus the
/// reply-derived tallies the workload row aggregates.
struct ClientTally {
  std::vector<double> latencies;
  long long hits = 0;
  long long solves = 0;
  long long busy_retries = 0;
  bool converged = true;
  std::string error;
};

void run_client(const std::string& endpoint, const std::vector<Target>& mix,
                int offset, int requests, ClientTally* tally) {
  try {
    serve::Client client = serve::Client::connect(endpoint);
    tally->latencies.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      const Target& t = mix[static_cast<std::size_t>(offset + i) % mix.size()];
      serve::SolveRequest request;
      request.source = serve::MatrixSource::kCatalog;
      request.problem = t.spec;
      request.config = t.config;
      util::Timer timer;
      int attempts = 1;
      const serve::SolveResponse reply =
          client.solve_with_retry(request, 20, 5, &attempts);
      tally->latencies.push_back(timer.seconds());
      tally->busy_retries += attempts - 1;
      if (reply.retcode != serve::Retcode::kOk) {
        tally->converged = false;
        tally->error =
            std::string(serve::to_string(reply.retcode)) + ": " + reply.message;
        return;
      }
      ++tally->solves;
      if (reply.cache_hit) ++tally->hits;
      if (!reply.all_converged()) tally->converged = false;
    }
  } catch (const std::exception& e) {
    tally->converged = false;
    tally->error = e.what();
  }
}

double percentile_ms(std::vector<double> sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_seconds.size() - 1) + 0.5);
  return sorted_seconds[std::min(idx, sorted_seconds.size() - 1)] * 1e3;
}

/// The bitwise contract: a served solve of (spec, config) must equal a
/// direct in-process Solver run — same iterations, same final delta, same
/// solution bits.  The server's default-RHS rule (the problem's own RHS,
/// else b = K*1) is replicated here.
bool served_matches_direct(const std::string& endpoint, const Target& t) {
  serve::Client client = serve::Client::connect(endpoint);
  const serve::SolveResponse reply = client.solve_catalog(t.spec, t.config);
  if (reply.retcode != serve::Retcode::kOk || reply.results.size() != 1) {
    return false;
  }
  problems::Problem p = problems::ProblemRegistry::instance().create(t.spec);
  solver::Solver solver =
      solver::Solver::from_config(solver::SolverConfig::from_string(t.config));
  const solver::Prepared prepared = p.has_classes()
                                        ? solver.prepare(p.matrix, p.classes)
                                        : solver.prepare(p.matrix);
  Vec b = p.rhs;
  if (b.empty()) {
    const Vec ones(static_cast<std::size_t>(p.matrix.rows()), 1.0);
    b.resize(ones.size());
    p.matrix.multiply(ones, b);
  }
  const std::vector<Vec> bs{std::move(b)};
  const solver::BatchReport direct =
      prepared.solveMany(util::Span<const Vec>(bs.data(), bs.size()));
  if (direct.reports.size() != 1) return false;
  const solver::SolveReport& d = direct.reports[0];
  const serve::RhsResult& s = reply.results[0];
  return s.ok && s.iterations == d.iterations() &&
         s.final_delta_inf == d.result.final_delta_inf &&
         s.solution == d.solution;
}

Run run_workload(const std::string& name, const std::string& endpoint,
                 const std::vector<Target>& mix, int clients, int requests) {
  // Prime every pipeline once so the timed phase measures steady-state
  // serving, not first-touch preparation (reported by the daemon as
  // setup_seconds; bench_catalog times preparation itself).
  {
    serve::Client primer = serve::Client::connect(endpoint);
    for (const Target& t : mix) {
      const serve::SolveResponse reply = primer.solve_catalog(t.spec, t.config);
      if (reply.retcode != serve::Retcode::kOk) {
        throw std::runtime_error("priming " + t.spec + " failed: " +
                                 serve::to_string(reply.retcode) + ": " +
                                 reply.message);
      }
    }
  }

  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(tallies.size());
  util::Timer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(run_client, endpoint, std::cref(mix), c, requests,
                         &tallies[static_cast<std::size_t>(c)]);
  }
  for (auto& t : threads) t.join();

  Run run;
  run.workload = name;
  run.clients = clients;
  run.requests_per_client = requests;
  run.requests_total = clients * requests;
  run.wall_seconds = wall.seconds();

  std::vector<double> latencies;
  long long hits = 0;
  long long solves = 0;
  for (const ClientTally& tally : tallies) {
    if (!tally.error.empty()) {
      std::cerr << "bench_served: client failed: " << tally.error << '\n';
    }
    latencies.insert(latencies.end(), tally.latencies.begin(),
                     tally.latencies.end());
    hits += tally.hits;
    solves += tally.solves;
    run.busy_retries += tally.busy_retries;
    run.converged = run.converged && tally.converged;
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (double s : latencies) sum += s;
  run.throughput_rps =
      run.wall_seconds > 0.0 ? run.requests_total / run.wall_seconds : 0.0;
  run.mean_ms = latencies.empty() ? 0.0 : sum / latencies.size() * 1e3;
  run.p50_ms = percentile_ms(latencies, 0.50);
  run.p99_ms = percentile_ms(latencies, 0.99);
  run.cache_hit_rate = solves > 0 ? static_cast<double>(hits) / solves : 0.0;
  run.bitwise_match_direct = served_matches_direct(endpoint, mix.front());
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  try {
    util::Cli cli(argc, argv,
                  {"quick", "clients", "requests", "connect", "cache-mb",
                   "out"});
    const bool quick = cli.has("quick");
    const int clients = cli.get_int("clients", quick ? 4 : 8);
    const int requests = cli.get_int("requests", quick ? 16 : 64);
    const std::string out_path = cli.get("out", "BENCH_served.json");
    std::string endpoint = cli.get("connect", "");

    // Host the daemon in-process unless pointed at a running one.
    serve::Server* server = nullptr;
    std::unique_ptr<serve::Server> owned;
    std::thread server_thread;
    if (endpoint.empty()) {
      unix_path = "/tmp/mstep_bench_" + std::to_string(getpid()) + ".sock";
      serve::ServerOptions options;
      options.unix_path = unix_path;
      options.cache_bytes =
          static_cast<std::size_t>(cli.get_int("cache-mb", 256)) << 20;
      owned = std::make_unique<serve::Server>(options);
      owned->bind();
      server = owned.get();
      server_thread = std::thread([server] { server->run(); });
      endpoint = "unix:" + unix_path;
    }

    const std::string base_config = "splitting=ssor;m=2";
    const std::vector<Target> hot = {
        {quick ? "poisson2d:n=24" : "poisson2d:n=48", base_config}};
    const std::vector<Target> mixed = {
        {quick ? "poisson2d:n=24" : "poisson2d:n=48", base_config},
        {quick ? "poisson2d:n=24" : "poisson2d:n=48", "splitting=ssor;m=1"},
        {quick ? "poisson3d:n=8" : "poisson3d:n=14", base_config},
        {quick ? "femplate:a=12" : "femplate:a=24", base_config},
    };

    std::cout << "== mstep_served load harness ==\n"
              << "endpoint " << endpoint << ", " << clients << " client(s) x "
              << requests << " request(s)\n\n";

    std::vector<Run> runs;
    runs.push_back(run_workload("hot", endpoint, hot, clients, requests));
    runs.push_back(run_workload("mixed", endpoint, mixed, clients, requests));

    if (server != nullptr) {
      server->request_shutdown();
      server_thread.join();
    }

    util::Table t({"workload", "req", "rps", "mean ms", "p50 ms", "p99 ms",
                   "hit rate", "busy", "ok"});
    for (const Run& r : runs) {
      t.add_row({r.workload, util::Table::integer(r.requests_total),
                 util::Table::num(r.throughput_rps, 1),
                 util::Table::num(r.mean_ms, 3), util::Table::num(r.p50_ms, 3),
                 util::Table::num(r.p99_ms, 3),
                 util::Table::num(r.cache_hit_rate, 3),
                 util::Table::integer(r.busy_retries),
                 r.converged && r.bitwise_match_direct ? "yes" : "NO"});
    }
    t.print(std::cout, "served throughput (client-observed end-to-end)");

    util::Json rows = util::Json::array();
    for (const Run& r : runs) {
      rows.push(util::Json::object()
                    .set("tool", "bench_served")
                    .set("workload", r.workload)
                    .set("clients", static_cast<long long>(r.clients))
                    .set("requests_per_client",
                         static_cast<long long>(r.requests_per_client))
                    .set("requests_total",
                         static_cast<long long>(r.requests_total))
                    .set("wall_seconds", r.wall_seconds)
                    .set("throughput_rps", r.throughput_rps)
                    .set("mean_ms", r.mean_ms)
                    .set("p50_ms", r.p50_ms)
                    .set("p99_ms", r.p99_ms)
                    .set("cache_hit_rate", r.cache_hit_rate)
                    .set("busy_retries", r.busy_retries)
                    .set("converged", r.converged)
                    .set("bitwise_match_direct", r.bitwise_match_direct));
    }
    std::ofstream json(out_path);
    rows.dump(json);
    std::cout << "wrote " << out_path << '\n';

    bool ok = true;
    for (const Run& r : runs) ok = ok && r.converged && r.bitwise_match_direct;
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_served: " << e.what() << '\n';
    if (!unix_path.empty()) ::unlink(unix_path.c_str());
    return 1;
  }
}
