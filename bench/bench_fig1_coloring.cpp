// Reproduces Figure 1: the Red/Black/Green colouring of the triangulated
// plate, rendered in ASCII, plus the properties the figure is meant to
// convey: every triangle carries three distinct colours, and the colouring
// wraps R/B/G seamlessly from row to row when the node count per row is a
// multiple of three (the CYBER numbering constraint of Section 3.1).
#include <iostream>
#include <set>

#include "fem/plate_mesh.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"rows", "cols"});
  const int rows = cli.get_int("rows", 6);
  const int cols = cli.get_int("cols", 9);
  const fem::PlateMesh mesh(rows, cols);

  std::cout << "== Figure 1 reproduction ==\n"
               "R/B/G node colouring, colour(r,c) = (r + 2c) mod 3; rows\n"
               "printed top to bottom (row " << rows - 1 << " first):\n\n";
  for (int r = rows - 1; r >= 0; --r) {
    std::cout << "  ";
    for (int c = 0; c < cols; ++c) {
      std::cout << fem::color_name(mesh.color(mesh.node_id(r, c))) << ' ';
    }
    std::cout << '\n';
  }

  int bad_triangles = 0;
  for (const auto& tri : mesh.triangles()) {
    const std::set<int> colors = {static_cast<int>(mesh.color(tri.n0)),
                                  static_cast<int>(mesh.color(tri.n1)),
                                  static_cast<int>(mesh.color(tri.n2))};
    if (colors.size() != 3) ++bad_triangles;
  }
  std::cout << "\ntriangles checked: " << mesh.triangles().size()
            << ", triangles with a repeated colour: " << bad_triangles
            << (bad_triangles == 0 ? "  [OK]" : "  [FAIL]") << '\n';

  // Section 3.1's wrap-around rule: the last node of a row must be Black so
  // the colouring continues R/B/G onto the next row.
  const bool wraps =
      mesh.color(mesh.node_id(0, cols - 1)) == fem::Color3::kBlack;
  std::cout << "last node of first row is Black (CYBER wrap rule): "
            << (wraps ? "yes" : "no (requires ncols = 3k+2)") << '\n';
  return bad_triangles == 0 ? 0 : 1;
}
