// Reproduces Table 1 of the paper: least-squares alpha values for the
// m-step SSOR PCG method (spectrum interval [0, 1], normalized alpha_0=1),
// and extends it with the min-max (Chebyshev) alternative and the
// predicted condition number of the preconditioned eigenvalue map.
//
// The parameter criteria are pulled from the facade's strategy registry by
// name — the same lookup a `--params=lsq` config line performs — so the
// table covers exactly what the Solver can be configured with.
#include <iostream>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "solver/registry.hpp"
#include "util/table.hpp"

int main() {
  using mstep::core::SpectrumInterval;
  using mstep::core::predicted_condition;
  using mstep::core::ssor_interval;
  using mstep::solver::ParamStrategyRegistry;
  using mstep::util::Table;

  auto& strategies = ParamStrategyRegistry::instance();

  std::cout << "== Table 1 reproduction ==\n"
               "alpha values for the m-step SSOR PCG method (least squares\n"
               "on [0,1], normalized alpha_0 = 1).  Paper's legible rows:\n"
               "  m=2: 1.00 5.00      m=4: 1.00 7.00 -24.50 31.50\n"
               "(the scanned m=3 row is illegible; ours is the computed "
               "value)\n\n";

  {
    Table t({"m", "a0", "a1", "a2", "a3", "a4", "a5"});
    for (int m = 2; m <= 6; ++m) {
      const auto a = strategies.alphas("lsq", m, ssor_interval());
      std::vector<std::string> row = {Table::integer(m)};
      for (int i = 0; i < 6; ++i) {
        row.push_back(i < m ? Table::fixed(a[i], 2) : "");
      }
      t.add_row(row);
    }
    t.print(std::cout, "least-squares alphas (Table 1)");
  }

  std::cout << "\nExtension: min-max (Chebyshev) alphas on [0.02, 1] — the\n"
               "criterion Section 2.2 offers as the alternative to least\n"
               "squares.  kappa_hat is the predicted condition number of\n"
               "M_m^{-1}K from the eigenvalue map on the interval.\n\n";
  {
    const SpectrumInterval iv{0.02, 1.0};
    Table t({"m", "criterion", "a0", "a1", "a2", "a3", "kappa_hat"});
    const std::vector<std::pair<std::string, std::string>> criteria = {
        {"lsq", "least-sq"}, {"minmax", "min-max"}};
    for (int m = 2; m <= 4; ++m) {
      for (const auto& [key, label] : criteria) {
        const auto a = strategies.alphas(key, m, iv);
        std::vector<std::string> row = {Table::integer(m), label};
        for (int i = 0; i < 4; ++i) {
          row.push_back(i < m ? Table::fixed(a[i], 3) : "");
        }
        row.push_back(Table::fixed(predicted_condition(a, iv), 2));
        t.add_row(row);
      }
      t.add_separator();
    }
    t.print(std::cout, "parameter criteria on [0.02, 1]");
  }
  return 0;
}
