// Reproduces Figure 2 and the block structure of equation (3.1): the
// 14-nonzero grid-point stencil of the assembled plane-stress matrix, and
// the six-colour block census showing that all D_ii and the paired-dof
// blocks B12, B34, B56 are diagonal.
#include <iostream>
#include <map>

#include "color/coloring.hpp"
#include "fem/plane_stress.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"rows", "cols"});
  const int rows = cli.get_int("rows", 8);
  const int cols = cli.get_int("cols", 8);

  const fem::PlateMesh mesh(rows, cols);
  const auto sys =
      fem::assemble_plane_stress(mesh, fem::Material{}, fem::EdgeLoad{});

  std::cout << "== Figure 2 / equation (3.1) reproduction ==\n\n";

  // Row-nnz histogram: interior rows must have exactly 14 nonzeros
  // (7-node stencil x 2 dofs).
  std::map<index_t, int> histogram;
  const auto& rp = sys.stiffness.row_ptr();
  for (index_t i = 0; i < sys.stiffness.rows(); ++i) {
    histogram[rp[i + 1] - rp[i]]++;
  }
  util::Table h({"nonzeros per row", "rows"});
  for (const auto& [nnz, count] : histogram) {
    h.add_row({util::Table::integer(nnz), util::Table::integer(count)});
  }
  h.print(std::cout, "stencil census (max must be 14)");
  std::cout << "max row nnz: " << sys.stiffness.max_row_nnz() << "\n\n";

  // Block structure of the 6-colour ordering.
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const auto rep = color::verify_block_structure(cs);
  std::cout << rep.detail << '\n'
            << "diagonal blocks D_ii diagonal:        "
            << (rep.diagonal_blocks_are_diagonal ? "yes [OK]" : "NO [FAIL]")
            << '\n'
            << "paired-dof blocks B12,B34,B56 diagonal: "
            << (rep.paired_dof_blocks_are_diagonal ? "yes [OK]" : "NO [FAIL]")
            << '\n';

  // Storage by diagonals (the CYBER kernel of Section 3.1).
  std::cout << "\nnonzero diagonals, geometric ordering: "
            << sys.stiffness.num_nonzero_diagonals()
            << "; six-colour ordering: " << cs.matrix.num_nonzero_diagonals()
            << '\n';
  return (rep.diagonal_blocks_are_diagonal &&
          rep.paired_dof_blocks_are_diagonal)
             ? 0
             : 1;
}
