// Reproduces Table 3 of the paper: Finite Element Machine iterations,
// times and speedups of the m-step SSOR PCG method on the 60-equation
// plane-stress plate (6 rows, 5 unconstrained columns of nodes), on 1, 2
// and 5 simulated processors with the Figure 5 assignments.
//
// Numerics run genuinely distributed on the simulator; times come from the
// virtual-clock cost model calibrated in EXPERIMENTS.md.  The paper's
// observations to reproduce:
//  (1) preconditioner effectiveness ordering identical across P,
//  (2) more than one unparametrized step is not advantageous,
//  (3) preconditioner communication dominates the parallel overhead, so
//      speedups degrade slightly as m grows.
#include <iostream>
#include <string>
#include <vector>

#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"tol", "summax"});

  const fem::PlateMesh mesh(6, 6);
  const fem::Material mat;
  const fem::EdgeLoad load{1.0, 0.0};

  femsim::FemCosts costs;
  costs.use_summax_circuit = cli.has("summax");

  const femsim::DistributedPlateSolver s1(mesh, mat, load,
                                          femsim::row_bands(mesh, 1));
  const femsim::DistributedPlateSolver s2(mesh, mat, load,
                                          femsim::row_bands(mesh, 2));
  const femsim::DistributedPlateSolver s5(mesh, mat, load,
                                          femsim::column_strips(mesh, 5));

  std::cout << "== Table 3 reproduction ==\n"
               "FEM iterations (I), simulated seconds (T) and speedups for\n"
               "the 60-equation plate on 1/2/5 processors.  Paper: speedups\n"
               "~1.92..1.80 (P=2) and ~3.58..3.06 (P=5), decreasing with m\n"
               "because preconditioner communication dominates overhead.\n"
            << (costs.use_summax_circuit
                    ? "[sum/max hardware circuit ENABLED]\n\n"
                    : "[software reductions, the Table 3 era]\n\n");

  util::Table t({"m", "I", "T(P=1)", "T(P=2)", "Speedup2", "T(P=5)",
                 "Speedup5", "comm2", "comm5"});

  struct Variant {
    int m;
    bool parametrized;
  };
  const std::vector<Variant> variants = {
      {0, false}, {1, false}, {2, false}, {2, true},  {3, false}, {3, true},
      {4, false}, {4, true},  {5, true},  {6, true}};

  for (const auto& v : variants) {
    femsim::DistOptions opt;
    opt.m = v.m;
    opt.parametrized = v.parametrized;
    opt.tolerance = cli.get_double("tol", 1e-4);
    opt.costs = costs;

    const auto r1 = s1.solve(opt);
    const auto r2 = s2.solve(opt);
    const auto r5 = s5.solve(opt);

    t.add_row({std::to_string(v.m) + (v.parametrized ? "P" : ""),
               util::Table::integer(r1.iterations),
               util::Table::fixed(r1.simulated_seconds, 2),
               util::Table::fixed(r2.simulated_seconds, 2),
               util::Table::ratio(r1.simulated_seconds / r2.simulated_seconds),
               util::Table::fixed(r5.simulated_seconds, 2),
               util::Table::ratio(r1.simulated_seconds / r5.simulated_seconds),
               util::Table::fixed(r2.max_comm_seconds, 2),
               util::Table::fixed(r5.max_comm_seconds, 2)});
  }
  t.print(std::cout, "m-step SSOR PCG on the simulated Finite Element Machine");
  return 0;
}
