// Kernel micro-benchmarks (google-benchmark): CSR vs storage-by-diagonals
// SpMV, BLAS-1 kernels, the multicolor m-step preconditioner application,
// and the Conrad–Wallach saving (specialised Algorithm 2 vs the generic
// m-step engine).
#include <benchmark/benchmark.h>

#include "color/coloring.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "fem/plane_stress.hpp"
#include "la/dia_matrix.hpp"
#include "la/vector.hpp"
#include "util/rng.hpp"

namespace {

using namespace mstep;

struct PlateFixture {
  explicit PlateFixture(int a)
      : mesh(fem::PlateMesh::unit_square(a)),
        sys(fem::assemble_plane_stress(mesh, fem::Material{},
                                       fem::EdgeLoad{1.0, 0.0})),
        cs(color::make_colored_system(sys.stiffness,
                                      color::six_color_classes(mesh))) {}
  fem::PlateMesh mesh;
  fem::AssembledSystem sys;
  color::ColoredSystem cs;
};

void BM_Dot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const Vec x = rng.uniform_vector(n);
  const Vec y = rng.uniform_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(x, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  const Vec x = rng.uniform_vector(n);
  Vec y = rng.uniform_vector(n);
  for (auto _ : state) {
    la::axpy(1e-6, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Axpy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SpmvCsr(benchmark::State& state) {
  const PlateFixture fix(static_cast<int>(state.range(0)));
  util::Rng rng(3);
  const Vec x = rng.uniform_vector(fix.cs.size());
  Vec y(fix.cs.size());
  for (auto _ : state) {
    fix.cs.matrix.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * fix.cs.matrix.nnz());
}
BENCHMARK(BM_SpmvCsr)->Arg(20)->Arg(41)->Arg(62);

void BM_SpmvDiagonals(benchmark::State& state) {
  const PlateFixture fix(static_cast<int>(state.range(0)));
  // The geometric ordering keeps the diagonal count stencil-bounded — this
  // is the Madsen–Rodrigue–Karush layout of Section 3.1.
  const la::DiaMatrix dia = la::DiaMatrix::from_csr(fix.sys.stiffness);
  util::Rng rng(4);
  const Vec x = rng.uniform_vector(fix.sys.stiffness.rows());
  Vec y(fix.sys.stiffness.rows());
  for (auto _ : state) {
    dia.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(std::to_string(dia.num_diagonals()) + " diagonals");
  state.SetItemsProcessed(state.iterations() * fix.sys.stiffness.nnz());
}
BENCHMARK(BM_SpmvDiagonals)->Arg(20)->Arg(41)->Arg(62);

void BM_MStepMulticolor(benchmark::State& state) {
  const PlateFixture fix(24);
  const int m = static_cast<int>(state.range(0));
  const core::MulticolorMStepSsor prec(
      fix.cs, core::least_squares_alphas(m, core::ssor_interval()));
  util::Rng rng(5);
  const Vec r = rng.uniform_vector(fix.cs.size());
  Vec z(fix.cs.size());
  for (auto _ : state) {
    prec.apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_MStepMulticolor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MStepGenericSsor(benchmark::State& state) {
  // The Conrad–Wallach ablation partner: the generic engine applies K and
  // P^{-1} separately each step, touching the off-diagonals twice.
  const PlateFixture fix(24);
  const int m = static_cast<int>(state.range(0));
  const split::SsorSplitting ssor(fix.cs.matrix, 1.0);
  const core::MStepPreconditioner prec(
      fix.cs.matrix, ssor, core::least_squares_alphas(m, core::ssor_interval()));
  util::Rng rng(6);
  const Vec r = rng.uniform_vector(fix.cs.size());
  Vec z(fix.cs.size());
  for (auto _ : state) {
    prec.apply(r, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_MStepGenericSsor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
