// Per-kernel roofline harness for the SIMD kernel layer.
//
// Times every hot kernel family — the blocked dot, axpy, SpMV in each
// MatrixFormat (CSR, DIA, SELL-C-sigma), and the multicolor m-step SSOR
// sweep — twice: once with the portable scalar twins forced
// (SimdModeGuard(kForceScalar)) and once with the vector path active, and
// reports per-kernel effective bandwidth (GB/s, from a roofline traffic
// model of the layout) and arithmetic throughput (GFLOP/s, useful flops
// only — SELL padding does not count).  The scale-free column the CI perf
// gate checks is `simd_speedup` = scalar seconds / simd seconds; the
// machine-independent hard check is `bitwise_match_scalar` — both paths
// must produce IDENTICAL bits (the la/simd.hpp contract).  The SELL SpMV
// result is additionally compared bitwise against the CSR result
// in-process (the format-registry claim); any mismatch exits 1.
//
// Emits a flat JSON array (--out=BENCH_kernels.json) keyed by
// (kernel, format, n) for tools/check_bench.py.  GB/s and GFLOP/s are
// informational (absolute rates differ across runner generations); the
// traffic models are stated inline and count each operand stream once.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "fem/plane_stress.hpp"
#include "fem/plate_mesh.hpp"
#include "la/dia_matrix.hpp"
#include "la/sell_matrix.hpp"
#include "la/simd.hpp"
#include "la/vector.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mstep;

struct Row {
  std::string kernel;
  std::string format;
  index_t n = 0;
  long long flops_per_apply = 0;   // useful flops (padding excluded)
  long long bytes_per_apply = 0;   // roofline traffic model
  double seconds_scalar = 0.0;     // per apply, best of repeats
  double seconds_simd = 0.0;
  double simd_speedup = 0.0;       // scalar / simd — the gated metric
  double gbs_scalar = 0.0;
  double gbs_simd = 0.0;
  double gflops_scalar = 0.0;
  double gflops_simd = 0.0;
  bool bitwise_match_scalar = true;
  std::string simd_isa;            // path the "simd" column actually ran
};

/// Per-apply seconds of `apply`, repeated enough to cover ~`target_flops`
/// per measurement, best of `repeats` measurements.
template <typename F>
double time_kernel(const F& apply, long long flops_per_apply,
                   long long target_flops, int repeats) {
  const long long iters =
      std::max<long long>(2, target_flops / std::max<long long>(1, flops_per_apply));
  double best = 1e300;
  for (int rep = 0; rep < repeats; ++rep) {
    util::Timer timer;
    for (long long it = 0; it < iters; ++it) apply();
    best = std::min(best, timer.seconds() / static_cast<double>(iters));
  }
  return best;
}

/// Times `apply` once per mode (scalar-forced, then the ambient dispatch)
/// and fills the rate columns.  `check` must run the kernel ONCE on fresh
/// state and return its output by value — it is invoked under each mode
/// for the bitwise comparison, independent of the (state-mutating) timing
/// loops.
template <typename F, typename C>
void measure(Row* row, const F& apply, const C& check, long long target_flops,
             int repeats) {
  {
    const la::simd::SimdModeGuard guard(la::simd::SimdMode::kForceScalar);
    row->seconds_scalar =
        time_kernel(apply, row->flops_per_apply, target_flops, repeats);
  }
  row->simd_isa = la::simd::simd_isa();
  row->seconds_simd =
      time_kernel(apply, row->flops_per_apply, target_flops, repeats);
  decltype(check()) scalar_out;
  {
    const la::simd::SimdModeGuard guard(la::simd::SimdMode::kForceScalar);
    scalar_out = check();
  }
  row->bitwise_match_scalar = scalar_out == check();
  row->simd_speedup = row->seconds_scalar / row->seconds_simd;
  const auto rate = [](long long amount, double seconds) {
    return static_cast<double>(amount) / seconds * 1e-9;
  };
  row->gbs_scalar = rate(row->bytes_per_apply, row->seconds_scalar);
  row->gbs_simd = rate(row->bytes_per_apply, row->seconds_simd);
  row->gflops_scalar = rate(row->flops_per_apply, row->seconds_scalar);
  row->gflops_simd = rate(row->flops_per_apply, row->seconds_simd);
}

void print_rows(const std::vector<Row>& rows, const std::string& title) {
  util::Table t({"kernel", "format", "n", "GB/s scalar", "GB/s simd",
                 "GFLOP/s simd", "speedup", "bitwise"});
  for (const Row& r : rows) {
    t.add_row({r.kernel, r.format, std::to_string(r.n),
               util::Table::fixed(r.gbs_scalar, 2),
               util::Table::fixed(r.gbs_simd, 2),
               util::Table::fixed(r.gflops_simd, 2),
               util::Table::fixed(r.simd_speedup, 2),
               r.bitwise_match_scalar ? "yes" : "NO"});
  }
  t.print(std::cout, title);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Cli cli(argc, argv, {"quick", "size", "vecn", "repeats", "out"});
    const bool quick = cli.has("quick");
    const int plate = cli.get_int("size", quick ? 32 : 64);
    const auto vecn =
        static_cast<std::size_t>(cli.get_int("vecn", quick ? 1 << 17 : 1 << 21));
    const int repeats = cli.get_int("repeats", quick ? 3 : 5);
    const std::string out_path = cli.get("out", "BENCH_kernels.json");
    // Enough work per measurement that the timer resolution is noise.
    const long long target_flops = quick ? 20'000'000 : 100'000'000;

    std::cout << "== SIMD kernel roofline harness ==\n"
              << "simd compiled = " << (la::simd::simd_compiled() ? "yes" : "no")
              << ", available = " << (la::simd::simd_available() ? "yes" : "no")
              << ", isa = " << la::simd::simd_isa() << ", best of " << repeats
              << " repeat(s)\n\n";

    std::vector<Row> rows;

    // ---- BLAS-1 on dense vectors ------------------------------------------
    util::Rng rng(1);
    const Vec vx = rng.uniform_vector(vecn);
    const Vec vy = rng.uniform_vector(vecn);
    {
      Row r;
      r.kernel = "dot";
      r.format = "vec";
      r.n = static_cast<index_t>(vecn);
      r.flops_per_apply = 2LL * static_cast<long long>(vecn);
      r.bytes_per_apply = 16LL * static_cast<long long>(vecn);  // x + y reads
      double sink = 0.0;
      measure(&r, [&] { sink = la::dot(vx, vy); },
              [&] { return la::dot(vx, vy); }, target_flops, repeats);
      (void)sink;
      rows.push_back(r);
    }
    {
      Row r;
      r.kernel = "axpy";
      r.format = "vec";
      r.n = static_cast<index_t>(vecn);
      r.flops_per_apply = 2LL * static_cast<long long>(vecn);
      // x read + y read + y write.
      r.bytes_per_apply = 24LL * static_cast<long long>(vecn);
      Vec y = vy;
      // Alternating signs keep y bounded across the timing loop; the
      // bitwise check runs once on a fresh copy instead.
      bool flip = false;
      measure(&r,
              [&] {
                la::axpy(flip ? -1e-6 : 1e-6, vx, y);
                flip = !flip;
              },
              [&] {
                Vec fresh = vy;
                la::axpy(1e-6, vx, fresh);
                return fresh;
              },
              target_flops, repeats);
      rows.push_back(r);
    }

    // ---- SpMV per format on the FEM plate matrix --------------------------
    const fem::PlateMesh mesh = fem::PlateMesh::unit_square(plate);
    const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                                fem::EdgeLoad{1.0, 0.0});
    const la::CsrMatrix& csr = sys.stiffness;
    const index_t n = csr.rows();
    const long long nnz = csr.nnz();
    const Vec x = rng.uniform_vector(static_cast<std::size_t>(n));
    Vec y(static_cast<std::size_t>(n));

    Vec csr_scalar_out;  // scalar-path CSR result, the cross-format reference
    {
      const la::simd::SimdModeGuard guard(la::simd::SimdMode::kForceScalar);
      csr.multiply(x, csr_scalar_out);
    }

    {
      Row r;
      r.kernel = "spmv";
      r.format = "csr";
      r.n = n;
      r.flops_per_apply = 2 * nnz;
      // val + col per entry, gathered x counted once per entry, row_ptr,
      // y write.
      r.bytes_per_apply = 20 * nnz + 12LL * n;
      measure(&r, [&] { csr.multiply(x, y); },
              [&] {
                Vec fresh;
                csr.multiply(x, fresh);
                return fresh;
              },
              target_flops, repeats);
      rows.push_back(r);
    }
    {
      const la::DiaMatrix dia = la::DiaMatrix::from_csr(csr);
      Row r;
      r.kernel = "spmv";
      r.format = "dia";
      r.n = n;
      r.flops_per_apply = 2 * nnz;
      // Per triad element: v read, x read, y read+write; stored elements
      // bounded above by n per diagonal.
      r.bytes_per_apply =
          32LL * static_cast<long long>(dia.num_diagonals()) * n + 8LL * n;
      measure(&r, [&] { dia.multiply(x, y); },
              [&] {
                Vec fresh;
                dia.multiply(x, fresh);
                return fresh;
              },
              target_flops, repeats);
      rows.push_back(r);
    }
    {
      const la::SellMatrix sell = la::SellMatrix::from_csr(csr);
      Row r;
      r.kernel = "spmv";
      r.format = "sell";
      r.n = n;
      r.flops_per_apply = 2 * nnz;  // useful flops: padding is masked, not added
      // val + col + gathered x per stored (padded) entry, len/perm + y
      // write per slot.
      r.bytes_per_apply =
          20LL * static_cast<long long>(sell.stored_values()) + 16LL * n;
      measure(&r, [&] { sell.multiply(x, y); },
              [&] {
                Vec fresh;
                sell.multiply(x, fresh);
                return fresh;
              },
              target_flops, repeats);
      rows.push_back(r);
      sell.multiply(x, y);
      if (y != csr_scalar_out) {
        std::cerr << "SELL SpMV is not bitwise CSR SpMV!\n";
        return 1;
      }
    }

    // ---- The multicolor m-step SSOR sweep ---------------------------------
    {
      const auto cs = color::make_colored_system(
          csr, color::six_color_classes(mesh));
      const int m = 4;
      const core::MulticolorMStepSsor prec(
          cs, core::least_squares_alphas(m, core::ssor_interval()));
      const Vec res = rng.uniform_vector(static_cast<std::size_t>(n));
      Vec z(static_cast<std::size_t>(n));
      Row r;
      r.kernel = "sweep";
      r.format = "csr";
      r.n = n;
      const long long traversals = prec.offdiag_traversals_per_apply();
      // Off-diagonal mul+adds plus the per-step 4-flop recombine per row.
      r.flops_per_apply = 2 * traversals + 4LL * m * n;
      // val + col + gathered z per traversal; z/y/r/diag streams per step.
      r.bytes_per_apply = 20 * traversals + 40LL * m * n;
      measure(&r, [&] { prec.apply(res, z); },
              [&] {
                Vec fresh;
                prec.apply(res, fresh);
                return fresh;
              },
              target_flops, repeats);
      rows.push_back(r);
    }

    // ---- Trace-off overhead -----------------------------------------------
    // The observability policy (docs/observability.md): instrumentation
    // that is compiled in but switched off must cost nothing measurable.
    // Time the axpy kernel bare, then wrapped the way the solver wraps
    // its hot loops — an obs::Span plus a counter bump per apply, tracer
    // disabled — and gate the ratio (CI: overhead_ratio:lower:tol0.02
    // against bench/baselines/BENCH_trace_overhead.json's 1.0).
    double overhead_ratio = 0.0;
    bool trace_bitwise_ok = true;
    {
      obs::Tracer::instance().set_enabled(false);
      Vec ya = vy;
      bool flip = false;
      const auto plain_apply = [&] {
        la::axpy(flip ? -1e-6 : 1e-6, vx, ya);
        flip = !flip;
      };
      Vec yb = vy;
      bool flip_b = false;
      const auto traced_off_apply = [&] {
        const obs::Span span("bench_axpy");
        obs::count(obs::Counter::kFlops,
                   2LL * static_cast<long long>(vecn));
        la::axpy(flip_b ? -1e-6 : 1e-6, vx, yb);
        flip_b = !flip_b;
      };
      const long long flops = 2LL * static_cast<long long>(vecn);
      const double seconds_plain =
          time_kernel(plain_apply, flops, target_flops, repeats);
      const double seconds_traced_off =
          time_kernel(traced_off_apply, flops, target_flops, repeats);
      overhead_ratio = seconds_traced_off / seconds_plain;

      // Bitwise: one apply under a LIVE tracer must match the bare one.
      Vec plain_out = vy;
      la::axpy(1e-6, vx, plain_out);
      Vec traced_out = vy;
      {
        const obs::EnableScope enable;
        const obs::Span span("bench_axpy_check");
        la::axpy(1e-6, vx, traced_out);
      }
      trace_bitwise_ok = plain_out == traced_out;
      obs::Tracer::instance().reset();

      std::cout << "trace-off overhead: plain " << seconds_plain
                << " s/apply, instrumented-off " << seconds_traced_off
                << " s/apply, ratio " << overhead_ratio << ", bitwise "
                << (trace_bitwise_ok ? "yes" : "NO") << "\n\n";
    }

    print_rows(rows, "kernel roofline (n = " + std::to_string(n) +
                         " FEM equations, vec n = " + std::to_string(vecn) +
                         ")");

    util::Json json_rows = util::Json::array();
    bool all_ok = true;
    for (const Row& r : rows) {
      all_ok = all_ok && r.bitwise_match_scalar;
      json_rows.push(util::Json::object()
                         .set("kernel", r.kernel)
                         .set("format", r.format)
                         .set("n", r.n)
                         .set("flops_per_apply", r.flops_per_apply)
                         .set("bytes_per_apply", r.bytes_per_apply)
                         .set("seconds_scalar", r.seconds_scalar)
                         .set("seconds_simd", r.seconds_simd)
                         .set("simd_speedup", r.simd_speedup)
                         .set("gbs_scalar", r.gbs_scalar)
                         .set("gbs_simd", r.gbs_simd)
                         .set("gflops_scalar", r.gflops_scalar)
                         .set("gflops_simd", r.gflops_simd)
                         .set("bitwise_match_scalar", r.bitwise_match_scalar)
                         .set("simd_isa", r.simd_isa));
    }
    // The overhead row rides the same document (extra candidate rows are
    // legal for the roofline gate; its own gate keys on kernel,format
    // against the separate BENCH_trace_overhead.json baseline).
    all_ok = all_ok && trace_bitwise_ok;
    json_rows.push(util::Json::object()
                       .set("kernel", "trace_off_overhead")
                       .set("format", "vec")
                       .set("n", static_cast<long long>(vecn))
                       .set("overhead_ratio", overhead_ratio)
                       .set("bitwise_match_traced", trace_bitwise_ok));
    std::ofstream json(out_path);
    json_rows.dump(json);
    std::cout << "wrote " << out_path << '\n';

    if (!all_ok) {
      std::cerr << "SIMD path diverged bitwise from the scalar twin!\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_kernels: " << e.what() << '\n';
    return 2;
  }
}
