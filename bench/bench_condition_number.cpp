// Ablation A1: measured condition number of M_m^{-1} K versus m, next to
// the prediction from the eigenvalue-map polynomial — the Adams (1982)
// results quoted in Section 2.1 (kappa decreases as m grows; the
// unparametrized improvement ratio is bounded by m).
//
// Each (m, variant) point instantiates the facade pipeline with
// Solver::prepare and hands its preconditioner to the Lanczos estimator —
// the measurement covers exactly the operator a configured solve would run.
#include <cmath>
#include <iostream>

#include "color/coloring.hpp"
#include "core/condition.hpp"
#include "core/params.hpp"
#include "fem/plane_stress.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"a"});
  const int a = cli.get_int("a", 16);

  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  const auto sys =
      fem::assemble_plane_stress(mesh, fem::Material{}, fem::EdgeLoad{});
  const auto classes = color::six_color_classes(mesh);

  solver::SolverConfig base;
  auto prepare = [&](int m, const std::string& params,
                     std::optional<core::SpectrumInterval> iv) {
    auto cfg = base;
    cfg.steps = m;
    cfg.params = params;
    cfg.interval = iv;
    return solver::Solver::from_config(cfg).prepare(sys.stiffness, classes);
  };

  // The m=1 pipeline doubles as the colour-permuted matrix supplier.
  const auto p1 = prepare(1, "ones", std::nullopt);
  const auto base_est = core::estimate_condition(p1.matrix());
  std::cout << "== Condition number vs m (ablation A1) ==\n"
               "plate a=" << a << ", N=" << p1.matrix().rows()
            << ", kappa(K) ~ " << base_est.kappa << "\n"
            << "kappa_hat: prediction from the eigenvalue map on the SSOR\n"
               "interval scaled by the measured m=1 spectrum.\n\n";

  // Measured extreme eigenvalues of P^{-1}K (m=1, alpha=1) give the true
  // interval; feed it to the predictor so prediction and measurement are
  // comparable.
  const auto est1 =
      core::estimate_preconditioned_condition(p1.matrix(),
                                              p1.preconditioner());
  const core::SpectrumInterval iv{est1.lambda_min, est1.lambda_max};

  util::Table t({"m", "variant", "kappa (Lanczos)", "kappa_hat (map)",
                 "kappa(K)/kappa", "ratio vs m=1"});
  const double kappa1 = est1.kappa;
  for (int m = 1; m <= 8; ++m) {
    for (int variant = 0; variant < 2; ++variant) {
      const bool param = variant == 1;
      if (m == 1 && param) continue;
      const auto prepared =
          prepare(m, param ? "lsq" : "ones", std::nullopt);
      const auto est = core::estimate_preconditioned_condition(
          prepared.matrix(), prepared.preconditioner());
      const double pred = core::predicted_condition(prepared.alphas(), iv);
      t.add_row({util::Table::integer(m), param ? "param" : "plain",
                 util::Table::fixed(est.kappa, 2),
                 util::Table::fixed(pred, 2),
                 util::Table::fixed(base_est.kappa / est.kappa, 1),
                 util::Table::fixed(kappa1 / est.kappa, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nAdams 1982 bound check: for the unparametrized method the\n"
               "improvement ratio kappa_1/kappa_m cannot exceed m.\n";
  return 0;
}
