// Reproduces Table 2 of the paper: CYBER 203 iterations and timings of the
// m-step SSOR PCG method on unit-square plane-stress plates with
// a = 20, 41, 62, 80 rows of nodes, for m = 0..10 (P = parametrized).
//
// Iteration counts come from actually running the solver; times come from
// the calibrated CYBER vector-timing model (see src/cyber/vector_model.hpp
// and EXPERIMENTS.md).  Pass --quick for a reduced sweep used in CI.
#include <iostream>
#include <string>
#include <vector>

#include "cyber/table2_driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"quick", "tol"});

  cyber::Table2Options opt;
  opt.tolerance = cli.get_double("tol", 1e-4);
  if (cli.has("quick")) {
    opt.plate_sizes = {20, 41};
    opt.max_m = 6;
  }

  std::cout << "== Table 2 reproduction ==\n"
               "CYBER 203 iterations (I) and modelled seconds (T), m-step\n"
               "SSOR PCG on the plane-stress plate.  mP rows use the\n"
               "least-squares parameters, plain m rows use alpha = 1.\n"
               "Paper shape targets: parametrized beats unparametrized at\n"
               "equal m; time decreases with m through m ~ 8-10; payoff\n"
               "grows with the vector length v ~ a^2/3.\n\n";

  util::Timer timer;
  const auto columns = cyber::run_table2(opt);

  std::vector<std::string> header = {"m"};
  for (const auto& col : columns) {
    header.push_back("I(a=" + std::to_string(col.a) + ")");
    header.push_back("T(a=" + std::to_string(col.a) + ")");
  }
  util::Table t(header);

  std::string meta = "v (max vector length):";
  for (const auto& col : columns) {
    meta += " " + std::to_string(col.max_vector_len);
  }

  // All columns share the same row layout by construction.
  const std::size_t nrows = columns.front().rows.size();
  for (std::size_t r = 0; r < nrows; ++r) {
    const auto& first = columns.front().rows[r];
    std::vector<std::string> row = {
        std::to_string(first.m) + (first.parametrized ? "P" : "")};
    for (const auto& col : columns) {
      const auto& cell = col.rows[r];
      row.push_back(util::Table::integer(cell.iterations) +
                    (cell.converged ? "" : "*"));
      row.push_back(util::Table::fixed(cell.model_seconds, 3));
    }
    t.add_row(row);
  }
  t.print(std::cout, meta);

  // Shape checks printed for the experiment log.
  std::cout << "\nshape checks:\n";
  for (const auto& col : columns) {
    int best_m = 0;
    double best_t = 1e300;
    for (const auto& row : col.rows) {
      if (row.model_seconds < best_t) {
        best_t = row.model_seconds;
        best_m = row.m;
      }
    }
    std::cout << "  a=" << col.a << ": best m = " << best_m
              << " (modelled " << best_t << " s)\n";
  }
  std::cout << "\n[harness wall time: " << timer.seconds() << " s]\n";
  return 0;
}
