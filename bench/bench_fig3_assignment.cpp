// Reproduces Figures 3 and 5: node-to-processor assignments.  Renders the
// layouts and verifies the paper's balance requirements: each processor
// receives an equal number of Red, Black and Green unconstrained nodes,
// and (for the Table 3 assignments) equal border-node counts.
#include <iostream>
#include <string>

#include "femsim/assignment.hpp"
#include "util/table.hpp"

namespace {

void show(const char* title, const mstep::fem::PlateMesh& mesh,
          const mstep::femsim::Assignment& a) {
  using mstep::util::Table;
  std::cout << title << "\n";
  for (int r = mesh.nrows() - 1; r >= 0; --r) {
    std::cout << "  ";
    for (int c = 0; c < mesh.ncols(); ++c) {
      const int p = a.proc_of_node[mesh.node_id(r, c)];
      std::cout << (p < 0 ? std::string("·") : std::to_string(p)) << ' ';
    }
    std::cout << '\n';
  }
  const auto st = analyze(a, mesh);
  Table t({"proc", "R", "B", "G", "border nodes"});
  for (int p = 0; p < a.nprocs; ++p) {
    t.add_row({Table::integer(p), Table::integer(st.color_counts[p][0]),
               Table::integer(st.color_counts[p][1]),
               Table::integer(st.color_counts[p][2]),
               Table::integer(st.border_nodes[p])});
  }
  t.print(std::cout);
  std::cout << "colors balanced: " << (st.colors_balanced ? "yes" : "NO")
            << ", borders equal: " << (st.borders_equal ? "yes" : "NO")
            << "\n\n";
}

}  // namespace

int main() {
  using namespace mstep;

  std::cout << "== Figures 3 & 5 reproduction ==\n"
               "(· marks the constrained column; digits are processor "
               "ranks)\n\n";

  // Figure 5: the Table 3 assignments on the 6x6-node plate.
  const fem::PlateMesh small(6, 6);
  show("Figure 5 left — two processors (row bands):", small,
       femsim::row_bands(small, 2));
  show("Figure 5 right — five processors (column strips):", small,
       femsim::column_strips(small, 5));

  // Figure 3: larger plates, rectangular blocks.
  const fem::PlateMesh f3a(6, 13);  // 12 unconstrained columns
  show("Figure 3a-style — 18 nodes/processor (2x2 blocks on 6x12):", f3a,
       femsim::rectangular_blocks(f3a, 2, 2));

  const fem::PlateMesh f3b(6, 7);  // 6 unconstrained columns
  show("Figure 3b-style — 9 nodes/processor (2x2 blocks on 6x6):", f3b,
       femsim::rectangular_blocks(f3b, 2, 2));

  const fem::PlateMesh f3c(6, 10);  // 9 unconstrained columns
  show("Figure 3c-style — 6 nodes/processor (3x3 blocks on 6x9):", f3c,
       femsim::rectangular_blocks(f3c, 3, 3));
  return 0;
}
