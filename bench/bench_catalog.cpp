// Catalog-sweep bench: every registered problem through every registered
// splitting, via the same driver core mstep_solve uses.
//
// The point is breadth, not depth — one row per (problem, splitting)
// with scale-free fields (iterations, convergence, error vs the known
// solution) that a perf gate can pin, plus wall seconds for context.
// Emits machine-readable JSON (--out=BENCH_catalog.json), uploaded as a
// CI artifact.  Exit 1 when any combination fails to converge or misses
// the known solution by more than --error-cap.
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "problems/driver.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"

namespace {

using namespace mstep;

/// Bench-sized spec per catalog problem.  The test suite asserts the
/// analogous map there covers the registry exactly; here an unlisted
/// problem falls back to its defaults.
std::map<std::string, std::string> bench_specs(bool quick) {
  if (quick) {
    return {{"poisson2d", "poisson2d:n=24"}, {"poisson3d", "poisson3d:n=8"},
            {"aniso2d", "aniso2d:n=24"},     {"convdiff", "convdiff:n=24"},
            {"randspd", "randspd:n=1000"},   {"stencil9", "stencil9:n=20"},
            {"femplate", "femplate:a=12"},   {"cyberplate", "cyberplate:a=12"}};
  }
  return {{"poisson2d", "poisson2d:n=64"}, {"poisson3d", "poisson3d:n=16"},
          {"aniso2d", "aniso2d:n=64"},     {"convdiff", "convdiff:n=64"},
          {"randspd", "randspd:n=8000"},   {"stencil9", "stencil9:n=48"},
          {"femplate", "femplate:a=24"},   {"cyberplate", "cyberplate:a=24"}};
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv, {"quick", "m", "tol", "threads", "format",
                                     "out", "error-cap"});
    const bool quick = cli.has("quick");
    const int m = cli.get_int("m", 2);
    const double tol = cli.get_double("tol", 1e-8);
    const int threads = cli.get_int("threads", 0);
    // csr | dia | sell | auto — auto routes each problem through the
    // format probes, and the per-row "format_selected" records the pick.
    const solver::MatrixFormat format =
        solver::matrix_format_from_string(cli.get("format", "csr"));
    const double error_cap = cli.get_double("error-cap", 1e-5);
    const std::string out_path = cli.get("out", "BENCH_catalog.json");

    const auto specs = bench_specs(quick);
    const auto splittings = solver::SplittingRegistry::instance().names();

    std::cout << "== Problem-catalog sweep ==\n"
              << specs.size() << " problems x " << splittings.size()
              << " splittings, m = " << m << ", tol = " << tol << "\n\n";

    util::Json rows = util::Json::array();
    bool all_ok = true;
    for (const auto& name : problems::ProblemRegistry::instance().names()) {
      const auto it = specs.find(name);
      const std::string spec = it != specs.end() ? it->second : name;
      // Generate once; the splitting sweep reuses the resolved system.
      const problems::Problem problem =
          problems::ProblemRegistry::instance().create(spec);

      util::Table t({"splitting", "iterations", "wall (s)", "error vs u*",
                     "converged"});
      for (const auto& splitting : splittings) {
        solver::SolverConfig config;
        config.splitting = splitting;
        config.steps = m;
        config.tolerance = tol;
        config.execution.threads = threads;
        config.format = format;

        const auto r = problems::run(problem, config);
        const bool has_error = r.has_exact && std::isfinite(r.error_vs_exact);
        const bool ok = r.all_converged() &&
                        (!has_error || r.error_vs_exact <= error_cap);
        all_ok = all_ok && ok;

        util::Json row = util::Json::object();
        row.set("problem", r.problem_name)
            .set("splitting", splitting)
            .set("n", r.n)
            .set("nnz", r.nnz)
            .set("m", m)
            .set("iterations", r.batch.total_iterations())
            .set("converged", r.all_converged())
            .set("error_vs_exact",
                 has_error ? util::Json(r.error_vs_exact) : util::Json())
            .set("dia_friendly", r.dia_friendly)
            .set("format_selected", r.format_selected)
            .set("wall_seconds", r.batch.wall_seconds)
            .set("setup_seconds", r.setup_seconds);
        rows.push(std::move(row));

        t.add_row({splitting,
                   util::Table::integer(r.batch.total_iterations()),
                   util::Table::num(r.batch.wall_seconds, 3),
                   has_error ? util::Table::num(r.error_vs_exact, 2) : "-",
                   ok ? "yes" : "NO"});
      }
      t.print(std::cout, problem.spec.to_string());
      std::cout << '\n';
    }

    std::ofstream json(out_path);
    rows.dump(json);
    std::cout << "wrote " << out_path << '\n';

    if (!all_ok) {
      std::cerr << "catalog sweep: a combination failed to converge or "
                   "missed the known solution!\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_catalog: " << e.what() << '\n';
    return 2;
  }
}
