// Reproduces Figure 4: the nearest-neighbour link usage of the m-step SSOR
// PCG method on the Finite Element Machine.  Runs the distributed solver
// on a 3x3 block partition and prints the per-link record traffic of the
// centre processor: exactly six of its eight links must carry data (the
// down-right-diagonal triangulation couples the anti-diagonal corners
// only).
#include <iostream>
#include <vector>

#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"
#include "util/table.hpp"

int main() {
  using namespace mstep;

  const fem::PlateMesh mesh(9, 10);  // 9 rows x 9 unconstrained columns
  const femsim::Assignment assign = femsim::rectangular_blocks(mesh, 3, 3);
  const femsim::DistributedPlateSolver solver(
      mesh, fem::Material{}, fem::EdgeLoad{1.0, 0.0}, assign);

  femsim::DistOptions opt;
  opt.m = 2;
  opt.tolerance = 1e-4;
  std::vector<std::vector<long long>> traffic;
  const auto res = solver.solve_with_traffic(opt, &traffic);

  std::cout << "== Figure 4 reproduction ==\n"
               "3x3 processor grid, centre processor = rank 4; records sent\n"
               "from the centre processor over each of its eight links\n"
               "(m-step SSOR PCG, m=2, " << res.iterations
            << " iterations):\n\n";

  // Grid rank layout (row-major from the bottom):  6 7 8 / 3 4 5 / 0 1 2.
  const char* names[3][3] = {{"down-left", "down", "down-right"},
                             {"left", "(P)", "right"},
                             {"up-left", "up", "up-right"}};
  const int ranks[3][3] = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  util::Table t({"link", "records sent", "records received"});
  int used = 0;
  for (int dr = 2; dr >= 0; --dr) {
    for (int dc = 0; dc < 3; ++dc) {
      if (dr == 1 && dc == 1) continue;
      const int q = ranks[dr][dc];
      const long long out = traffic[4][q];
      const long long in = traffic[q][4];
      if (out > 0 || in > 0) ++used;
      t.add_row({names[dr][dc], util::Table::integer(out),
                 util::Table::integer(in)});
    }
  }
  t.print(std::cout);
  std::cout << "\nlinks used by the centre processor: " << used
            << " of 8 (paper: 6)"
            << (used == 6 ? "  [OK]" : "  [MISMATCH]") << '\n';
  return used == 6 ? 0 : 1;
}
