// Reproduces the equation (4.2) analysis of Section 4: when do m+1
// preconditioner steps beat m steps?
//
//   T_m = N_m (A + m B)                                  (4.1)
//   criterion 1:  (m+1) N_{m+1} - m N_m < 0
//   criterion 2:  (N_m - N_{m+1}) / (N_{m+1} (m+1) - N_m m)  >  B / A
//                 (take m+1 steps when the iteration saving outweighs the
//                 extra per-iteration work)
//
// The paper evaluates the two sides at m = 9 for a = 41, 62, 80 and finds
// ten steps preferable to nine only for a = 80.  We measure N_m by running
// the solver and A, B from the CYBER model, then report both sides across
// m and a.
#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "core/planner.hpp"
#include "cyber/table2_driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"quick"});

  cyber::Table2Options opt;
  opt.max_m = cli.has("quick") ? 6 : 10;
  opt.plate_sizes = cli.has("quick") ? std::vector<int>{20, 41}
                                     : std::vector<int>{41, 62, 80};
  opt.both_variants_up_to = 1;  // keep the m=1 row, parametrized above

  std::cout << "== Equation (4.2) analysis ==\n"
               "left = (N_m - N_{m+1}) / (N_{m+1}(m+1) - N_m m), right = "
               "B/A.\nTake m+1 steps when left > right.  T_model is the "
               "measured model\ntime; T_fit = N_m (A + mB) is eq. (4.1).\n\n";

  const auto columns = cyber::run_table2(opt);
  for (const auto& col : columns) {
    const auto ab =
        cyber::measure_cost_decomposition(col.a, opt.machine);
    const double ba = ab.b_seconds / ab.a_seconds;

    // Parametrized iteration counts by m (m=0 row is the CG baseline).
    std::map<int, const cyber::Table2Row*> by_m;
    for (const auto& row : col.rows) {
      // m = 1 is reported unparametrized (parametrization is a pure scaling
      // there); every larger m uses the least-squares parameters.
      if (row.m <= 1 || row.parametrized) by_m[row.m] = &row;
    }

    util::Table t({"m", "N_m", "T_model", "T_fit", "left", "right=B/A",
                   "m+1 better?"});
    for (auto it = by_m.begin(); it != by_m.end(); ++it) {
      const int m = it->first;
      const auto* row = it->second;
      const double t_fit =
          row->iterations * (ab.a_seconds + m * ab.b_seconds);
      std::string left_str = "-", verdict = "-";
      auto next = std::next(it);
      if (next != by_m.end() && next->first == m + 1) {
        const auto decision = core::prefer_m_plus_1(
            m, row->iterations, next->second->iterations,
            {ab.a_seconds, ab.b_seconds});
        if (decision.criterion1) {
          // Total inner loops decrease outright — criterion 1 of (4.2).
          left_str = "crit1";
        } else {
          left_str = util::Table::fixed(decision.left, 3);
        }
        verdict = decision.take_extra_step ? "yes" : "no";
      }
      t.add_row({util::Table::integer(m), util::Table::integer(row->iterations),
                 util::Table::fixed(row->model_seconds, 3),
                 util::Table::fixed(t_fit, 3), left_str,
                 util::Table::fixed(ba, 3), verdict});
    }
    t.print(std::cout, "a = " + std::to_string(col.a) +
                           "  (A = " + util::Table::num(ab.a_seconds, 4) +
                           " s, B = " + util::Table::num(ab.b_seconds, 4) +
                           " s)");
    std::cout << '\n';
  }
  return 0;
}
