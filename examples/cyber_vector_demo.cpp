// Vector-machine example: the CYBER 203/205 timing model at work.
//
// Prints the pipeline efficiency curve the model is calibrated to
// (Section 3.1: ~90% at n=1000, ~50% at n=100, ~10% at n=10), then times
// one plate solve and decomposes the modelled seconds by kernel class —
// showing why the method exists: inner products cost far more than their
// flop count suggests, and the m-step preconditioner buys iterations with
// reduction-free local work.  The solves run through the Solver facade
// with the CyberModel attached as the kernel log, on the DIA operator the
// machine's SpMV actually uses.
#include <iostream>

#include "color/coloring.hpp"
#include "cyber/vector_model.hpp"
#include "fem/plane_stress.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"a", "m"});
  const int a = cli.get_int("a", 41);
  const int m = cli.get_int("m", 4);

  const cyber::CyberParams params;
  std::cout << "CYBER 203/205 pipeline model: t(n) = tau (n + n_half), "
               "n_half = " << params.n_half << "\n\n";
  {
    util::Table t({"vector length", "efficiency"});
    for (int n : {10, 50, 100, 500, 1000, 5000}) {
      t.add_row({util::Table::integer(n),
                 util::Table::fixed(100.0 * params.efficiency(n), 1) + "%"});
    }
    t.print(std::cout, "efficiency curve (paper quotes 10%/50%/90%)");
  }

  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const auto classes = color::six_color_classes(mesh);

  solver::SolverConfig config;
  config.tolerance = 1e-4;
  config.format = solver::MatrixFormat::kDia;  // SpMV by diagonals (3.2)

  auto decompose = [&](const char* name, int steps) {
    cyber::CyberModel model(params);
    auto cfg = config;
    cfg.steps = steps;
    const auto report = solver::Solver::from_config(cfg).solve(
        sys.stiffness, sys.load, classes, &model);
    std::cout << name << ": " << report.iterations()
              << " iterations, modelled " << model.seconds() << " s\n"
              << "  inner products: " << model.dot_seconds() << " s ("
              << 100.0 * model.dot_seconds() / model.seconds() << "%)\n"
              << "  SpMV (by diagonals): " << model.spmv_seconds() << " s\n"
              << "  other vector ops: " << model.vector_seconds() << " s\n";
  };

  std::cout << "\nplate a=" << a << " (N=" << sys.stiffness.rows() << "):\n";
  decompose("plain CG       ", 0);
  decompose(("m-step SSOR m=" + std::to_string(m)).c_str(), m);
  return 0;
}
