// Vector-machine example: the CYBER 203/205 timing model at work.
//
// Prints the pipeline efficiency curve the model is calibrated to
// (Section 3.1: ~90% at n=1000, ~50% at n=100, ~10% at n=10), then times
// one plate solve and decomposes the modelled seconds by kernel class —
// showing why the method exists: inner products cost far more than their
// flop count suggests, and the m-step preconditioner buys iterations with
// reduction-free local work.
#include <iostream>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "cyber/vector_model.hpp"
#include "fem/plane_stress.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"a", "m"});
  const int a = cli.get_int("a", 41);
  const int m = cli.get_int("m", 4);

  const cyber::CyberParams params;
  std::cout << "CYBER 203/205 pipeline model: t(n) = tau (n + n_half), "
               "n_half = " << params.n_half << "\n\n";
  {
    util::Table t({"vector length", "efficiency"});
    for (int n : {10, 50, 100, 500, 1000, 5000}) {
      t.add_row({util::Table::integer(n),
                 util::Table::fixed(100.0 * params.efficiency(n), 1) + "%"});
    }
    t.print(std::cout, "efficiency curve (paper quotes 10%/50%/90%)");
  }

  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const Vec f = cs.permute(sys.load);

  core::PcgOptions opt;
  opt.tolerance = 1e-4;

  auto decompose = [&](const char* name, int steps) {
    cyber::CyberModel model(params);
    core::PcgResult res;
    if (steps == 0) {
      res = core::cg_solve(cs.matrix, f, opt, &model);
    } else {
      const core::MulticolorMStepSsor prec(
          cs, core::least_squares_alphas(steps, core::ssor_interval()),
          &model);
      res = core::pcg_solve(cs.matrix, f, prec, opt, &model);
    }
    std::cout << name << ": " << res.iterations << " iterations, modelled "
              << model.seconds() << " s\n"
              << "  inner products: " << model.dot_seconds() << " s ("
              << 100.0 * model.dot_seconds() / model.seconds() << "%)\n"
              << "  SpMV (by diagonals): " << model.spmv_seconds() << " s\n"
              << "  other vector ops: " << model.vector_seconds() << " s\n";
  };

  std::cout << "\nplate a=" << a << " (N=" << cs.size() << "):\n";
  decompose("plain CG       ", 0);
  decompose(("m-step SSOR m=" + std::to_string(m)).c_str(), m);
  return 0;
}
