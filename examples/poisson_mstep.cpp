// Finite-difference example: the generic multicolor machinery on a problem
// that is NOT the paper's plate — the 5-point Poisson equation with a
// red/black (two-colour) ordering, demonstrating Section 3's remark that
// Algorithm 2 extends to any multicolour-ordered discretization.
//
// Solves -lap u = f with a manufactured solution and reports both solver
// behaviour and discretization error.  Each method variant is one Solver
// config; --splitting/--params/... override the defaults from the command
// line.
#include <cmath>
#include <iostream>

#include "color/coloring.hpp"
#include "fem/poisson.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  auto flags = solver::SolverConfig::cli_flags();
  flags.push_back("n");
  util::Cli cli(argc, argv, flags);
  const int n = cli.get_int("n", 48);

  solver::SolverConfig base;
  base.steps = 3;
  base.tolerance = 1e-8;
  base = solver::SolverConfig::from_cli(cli, base);
  const int m = base.steps;

  const fem::PoissonProblem prob(n, n);
  const auto a = prob.matrix();
  const Vec f = prob.rhs([](double x, double y) {
    return 2.0 * M_PI * M_PI * std::sin(M_PI * x) * std::sin(M_PI * y);
  });
  const Vec exact = prob.grid_function([](double x, double y) {
    return std::sin(M_PI * x) * std::sin(M_PI * y);
  });

  // Two colours suffice for the 5-point stencil.
  const auto classes = color::two_color_classes(prob);

  std::cout << "Poisson " << n << "x" << n << " grid, N = " << a.rows()
            << ", red/black ordering, m = " << m << "\n\n";

  util::Table t({"method", "iterations", "inner products", "max error"});
  auto report_row = [&](const std::string& name,
                        const solver::SolveReport& rep) {
    double err = 0.0;
    for (std::size_t i = 0; i < rep.solution.size(); ++i) {
      err = std::max(err, std::abs(rep.solution[i] - exact[i]));
    }
    t.add_row({name, util::Table::integer(rep.iterations()),
               util::Table::integer(rep.result.inner_products),
               util::Table::num(err, 3)});
  };

  auto run = [&](solver::SolverConfig cfg) {
    return solver::Solver::from_config(cfg).solve(a, f, classes);
  };

  {
    auto cfg = base;
    cfg.steps = 0;
    report_row("plain CG", run(cfg));
  }
  {
    auto cfg = base;
    cfg.params = "ones";
    report_row("m-step " + base.splitting + " (alpha=1)", run(cfg));
  }
  report_row("m-step " + base.splitting + " (" + base.params + ")",
             run(base));
  t.print(std::cout);
  std::cout << "\n(max error is against the continuum solution, so it is\n"
               " discretization-limited at ~" << 1.0 / ((n + 1) * (n + 1))
            << " — all methods agree)\n";
  return 0;
}
