// Finite-difference example: the generic multicolor machinery on a problem
// that is NOT the paper's plate — the 5-point Poisson equation with a
// red/black (two-colour) ordering, demonstrating Section 3's remark that
// Algorithm 2 extends to any multicolour-ordered discretization.
//
// Solves -lap u = f with a manufactured solution and reports both solver
// behaviour and discretization error.
#include <cmath>
#include <iostream>

#include "color/coloring.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/poisson.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"n", "m"});
  const int n = cli.get_int("n", 48);
  const int m = cli.get_int("m", 3);

  const fem::PoissonProblem prob(n, n);
  const auto a = prob.matrix();
  const Vec f = prob.rhs([](double x, double y) {
    return 2.0 * M_PI * M_PI * std::sin(M_PI * x) * std::sin(M_PI * y);
  });
  const Vec exact = prob.grid_function([](double x, double y) {
    return std::sin(M_PI * x) * std::sin(M_PI * y);
  });

  // Two colours suffice for the 5-point stencil.
  const auto cs = color::make_colored_system(a, color::two_color_classes(prob));
  const Vec fc = cs.permute(f);

  std::cout << "Poisson " << n << "x" << n << " grid, N = " << a.rows()
            << ", red/black ordering, m = " << m << "\n\n";

  core::PcgOptions opt;
  opt.tolerance = 1e-8;

  util::Table t({"method", "iterations", "inner products", "max error"});
  auto report = [&](const std::string& name, const core::PcgResult& res) {
    const Vec u = cs.unpermute(res.solution);
    double err = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) {
      err = std::max(err, std::abs(u[i] - exact[i]));
    }
    t.add_row({name, util::Table::integer(res.iterations),
               util::Table::integer(res.inner_products),
               util::Table::num(err, 3)});
  };

  report("plain CG", core::cg_solve(cs.matrix, fc, opt));
  {
    const core::MulticolorMStepSsor prec(cs, core::unparametrized_alphas(m));
    report("m-step SSOR (alpha=1)",
           core::pcg_solve(cs.matrix, fc, prec, opt));
  }
  {
    const core::MulticolorMStepSsor prec(
        cs, core::least_squares_alphas(m, core::ssor_interval()));
    report("m-step SSOR (least-sq)",
           core::pcg_solve(cs.matrix, fc, prec, opt));
  }
  t.print(std::cout);
  std::cout << "\n(max error is against the continuum solution, so it is\n"
               " discretization-limited at ~" << 1.0 / ((n + 1) * (n + 1))
            << " — all methods agree)\n";
  return 0;
}
