// Irregular-region example (the paper's Section 5 open problem): an
// L-shaped plate, clamped on the left edge and loaded at the bottom-right
// tip, coloured by the greedy multicolor algorithm and solved with the
// m-step SSOR PCG method through the Solver facade.
#include <iostream>

#include "color/greedy.hpp"
#include "fem/tri_mesh.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  auto flags = solver::SolverConfig::cli_flags();
  flags.push_back("n");
  util::Cli cli(argc, argv, flags);
  const int n = cli.get_int("n", 12);

  solver::SolverConfig config;
  config.steps = 4;
  config.tolerance = 1e-8;
  config = solver::SolverConfig::from_cli(cli, config);

  const fem::TriMesh mesh = fem::TriMesh::l_shape(n);
  std::cout << "L-shaped plate: " << mesh.num_nodes() << " nodes, "
            << mesh.num_equations() << " equations, "
            << mesh.triangles().size() << " triangles\n";

  const int colors = color::greedy_color_count(mesh);
  std::cout << "greedy colouring: " << colors << " node colours ("
            << 2 * colors << " equation classes)\n\n";

  const auto k = fem::assemble_plane_stress(mesh, fem::Material{});
  Vec f(k.rows(), 0.0);
  index_t tip = 0;
  double best = -1.0;
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    const double score = mesh.node_x(v) - mesh.node_y(v);
    if (score > best) {
      best = score;
      tip = v;
    }
  }
  fem::add_point_load(mesh, tip, 0.0, -1.0, f);

  const auto classes = color::greedy_classes(mesh);

  util::Table t({"method", "iterations", "inner products"});
  auto plain_config = config;
  plain_config.steps = 0;
  const auto plain =
      solver::Solver::from_config(plain_config).solve(k, f, classes);
  t.add_row({"plain CG", util::Table::integer(plain.iterations()),
             util::Table::integer(plain.result.inner_products)});

  const auto report = solver::Solver::from_config(config).solve(k, f, classes);
  t.add_row({"m-step " + config.splitting +
                 " (m=" + std::to_string(config.steps) + ")",
             util::Table::integer(report.iterations()),
             util::Table::integer(report.result.inner_products)});
  t.print(std::cout);

  std::cout << "\ntip deflection (u, v) = ("
            << report.solution[mesh.equation_id(tip, 0)] << ", "
            << report.solution[mesh.equation_id(tip, 1)] << ")\n";
  return report.converged() ? 0 : 1;
}
