// Irregular-region example (the paper's Section 5 open problem): an
// L-shaped plate, clamped on the left edge and loaded at the bottom-right
// tip, coloured by the greedy multicolor algorithm and solved with the
// m-step SSOR PCG method.
#include <iostream>

#include "color/greedy.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/tri_mesh.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"n", "m"});
  const int n = cli.get_int("n", 12);
  const int m = cli.get_int("m", 4);

  const fem::TriMesh mesh = fem::TriMesh::l_shape(n);
  std::cout << "L-shaped plate: " << mesh.num_nodes() << " nodes, "
            << mesh.num_equations() << " equations, "
            << mesh.triangles().size() << " triangles\n";

  const int colors = color::greedy_color_count(mesh);
  std::cout << "greedy colouring: " << colors << " node colours ("
            << 2 * colors << " equation classes)\n\n";

  const auto k = fem::assemble_plane_stress(mesh, fem::Material{});
  Vec f(k.rows(), 0.0);
  index_t tip = 0;
  double best = -1.0;
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    const double score = mesh.node_x(v) - mesh.node_y(v);
    if (score > best) {
      best = score;
      tip = v;
    }
  }
  fem::add_point_load(mesh, tip, 0.0, -1.0, f);

  const auto cs = color::make_colored_system(k, color::greedy_classes(mesh));
  const Vec fc = cs.permute(f);

  core::PcgOptions opt;
  opt.tolerance = 1e-8;

  util::Table t({"method", "iterations", "inner products"});
  const auto plain = core::cg_solve(cs.matrix, fc, opt);
  t.add_row({"plain CG", util::Table::integer(plain.iterations),
             util::Table::integer(plain.inner_products)});
  const core::MulticolorMStepSsor prec(
      cs, core::least_squares_alphas(m, core::ssor_interval()));
  const auto res = core::pcg_solve(cs.matrix, fc, prec, opt);
  t.add_row({"m-step SSOR (m=" + std::to_string(m) + ")",
             util::Table::integer(res.iterations),
             util::Table::integer(res.inner_products)});
  t.print(std::cout);

  const Vec u = cs.unpermute(res.solution);
  std::cout << "\ntip deflection (u, v) = (" << u[mesh.equation_id(tip, 0)]
            << ", " << u[mesh.equation_id(tip, 1)] << ")\n";
  return res.converged ? 0 : 1;
}
