// Domain example: a structural engineer's view of the solver.
//
// Solves the clamped plate under several edge loads and materials, prints
// an ASCII displacement-magnitude map, and shows how the preconditioner
// step count trades preconditioner work against CG iterations — each m is
// the same Solver config with one field changed.
#include <iomanip>
#include <iostream>

#include "color/coloring.hpp"
#include "fem/plane_stress.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace mstep;

void displacement_map(const fem::PlateMesh& mesh, const Vec& u_mesh) {
  const Vec mags = fem::displacement_magnitudes(mesh, u_mesh);
  double max_mag = 0.0;
  for (double v : mags) max_mag = std::max(max_mag, v);
  const char* shades = " .:-=+*#%@";
  std::cout << "displacement magnitude map (@ = " << max_mag << "):\n";
  for (int r = mesh.nrows() - 1; r >= 0; --r) {
    std::cout << "  ";
    for (int c = 0; c < mesh.ncols(); ++c) {
      const double v = mags[mesh.node_id(r, c)];
      const int shade =
          max_mag > 0 ? static_cast<int>(9.999 * v / max_mag) : 0;
      std::cout << shades[shade];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv, {"a", "nu", "traction-x", "traction-y"});
  const int a = cli.get_int("a", 25);

  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  const fem::Material mat{1.0, cli.get_double("nu", 0.3), 1.0};
  const fem::EdgeLoad load{cli.get_double("traction-x", 1.0),
                           cli.get_double("traction-y", 0.25)};

  std::cout << "plate: " << a << "x" << a << " nodes, nu = "
            << mat.poisson_ratio << ", traction (" << load.traction_x << ", "
            << load.traction_y << ") on the right edge\n\n";

  const auto sys = fem::assemble_plane_stress(mesh, mat, load);
  const auto classes = color::six_color_classes(mesh);

  solver::SolverConfig config;
  config.tolerance = 1e-7;

  util::Table t({"m", "iterations", "inner products", "precond steps"});
  Vec best;
  for (int m : {0, 2, 4, 6}) {
    config.steps = m;
    const auto report = solver::Solver::from_config(config).solve(
        sys.stiffness, sys.load, classes);
    t.add_row({util::Table::integer(m),
               util::Table::integer(report.iterations()),
               util::Table::integer(report.result.inner_products),
               util::Table::integer(report.result.precond_applications * m)});
    best = report.solution;
  }
  t.print(std::cout, "solver work vs preconditioner steps");
  std::cout << '\n';
  displacement_map(mesh, best);
  return 0;
}
