// Quickstart: solve the paper's plane-stress plate with the m-step
// multicolor SSOR preconditioned conjugate gradient method — one config,
// one call.
//
// The Solver facade owns the whole pipeline (colour the equations, choose
// the Table 1 alphas, build the Algorithm-2 preconditioner, run
// Algorithm 1); the config below is the paper's method in declarative
// form, and round-trips through the printed string.
#include <iostream>

#include "color/coloring.hpp"
#include "fem/plane_stress.hpp"
#include "solver/solver.hpp"

int main() {
  using namespace mstep;

  // A 30x30-node unit plate, clamped on the left edge, pulled to the right.
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(30);
  const fem::Material steel_like{1.0, 0.3, 1.0};
  const auto sys =
      fem::assemble_plane_stress(mesh, steel_like, fem::EdgeLoad{1.0, 0.0});
  std::cout << "assembled: N = " << sys.stiffness.rows()
            << " equations, nnz = " << sys.stiffness.nnz() << "\n";

  // m = 4 steps of parametrized SSOR with the six-colour ordering.
  solver::SolverConfig config;
  config.splitting = "ssor";
  config.steps = 4;
  config.params = "lsq";  // the least-squares alphas of Table 1
  config.ordering = solver::Ordering::kMulticolor;
  config.tolerance = 1e-6;  // on |u^{k+1} - u^k|_inf
  std::cout << "config: " << config.to_string() << "\n";

  const auto solver = solver::Solver::from_config(config);
  const auto report =
      solver.solve(sys.stiffness, sys.load, color::six_color_classes(mesh));

  std::cout << "alphas (Table 1 row m=4):";
  for (double a : report.alphas) std::cout << ' ' << a;
  std::cout << "\ncoloring: " << report.coloring.num_classes
            << " classes\nPCG converged: "
            << (report.converged() ? "yes" : "no") << " in "
            << report.iterations() << " iterations ("
            << report.result.inner_products << " inner products)\n"
            << "final residual |f - Ku|_2 = " << report.result.final_residual2
            << '\n';

  // Compare against plain CG: same facade, m = 0, natural ordering.
  auto plain_config = config;
  plain_config.steps = 0;
  plain_config.ordering = solver::Ordering::kNatural;
  const auto plain =
      solver::Solver::from_config(plain_config).solve(sys.stiffness, sys.load);
  std::cout << "plain CG needs " << plain.iterations() << " iterations ("
            << plain.result.inner_products << " inner products)\n";

  // The report's solution is already back in the mesh ordering.
  const index_t tip =
      mesh.equation_id(mesh.node_id(mesh.nrows() / 2, mesh.ncols() - 1), 0);
  std::cout << "mid-edge x-displacement at the loaded edge: "
            << report.solution[tip] << '\n';
  return report.converged() ? 0 : 1;
}
