// Quickstart: solve the paper's plane-stress plate with the m-step
// multicolor SSOR preconditioned conjugate gradient method.
//
//   1. mesh the plate and assemble K u = f,
//   2. colour the equations (six colours) and permute the system,
//   3. build the m-step preconditioner with the Table 1 parameters,
//   4. run PCG (Algorithm 1) and report the solve.
#include <iostream>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"

int main() {
  using namespace mstep;

  // A 30x30-node unit plate, clamped on the left edge, pulled to the right.
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(30);
  const fem::Material steel_like{1.0, 0.3, 1.0};
  const auto sys =
      fem::assemble_plane_stress(mesh, steel_like, fem::EdgeLoad{1.0, 0.0});
  std::cout << "assembled: N = " << sys.stiffness.rows()
            << " equations, nnz = " << sys.stiffness.nnz() << "\n";

  // Six-colour ordering (Red/Black/Green x u/v) decouples each colour class.
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const Vec f = cs.permute(sys.load);

  // m = 4 steps of parametrized SSOR: the least-squares alphas of Table 1.
  const int m = 4;
  const auto alphas = core::least_squares_alphas(m, core::ssor_interval());
  std::cout << "alphas (Table 1 row m=4):";
  for (double a : alphas) std::cout << ' ' << a;
  std::cout << '\n';

  const core::MulticolorMStepSsor preconditioner(cs, alphas);
  core::PcgOptions options;
  options.tolerance = 1e-6;  // on |u^{k+1} - u^k|_inf

  const auto result = core::pcg_solve(cs.matrix, f, preconditioner, options);
  std::cout << "PCG converged: " << (result.converged ? "yes" : "no")
            << " in " << result.iterations << " iterations ("
            << result.inner_products << " inner products)\n"
            << "final residual |f - Ku|_2 = " << result.final_residual2
            << '\n';

  // Compare against plain CG.
  const auto plain = core::cg_solve(cs.matrix, f, options);
  std::cout << "plain CG needs " << plain.iterations << " iterations ("
            << plain.inner_products << " inner products)\n";

  // Back to the mesh ordering: report the loaded-edge tip displacement.
  const Vec u = cs.unpermute(result.solution);
  const index_t tip =
      mesh.equation_id(mesh.node_id(mesh.nrows() / 2, mesh.ncols() - 1), 0);
  std::cout << "mid-edge x-displacement at the loaded edge: " << u[tip]
            << '\n';
  return result.converged ? 0 : 1;
}
