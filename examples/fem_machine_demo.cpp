// Parallel-array example: watch the m-step method run on the simulated
// Finite Element Machine.  Prints per-processor time breakdowns (compute /
// communication / idle) and the record traffic matrix, then compares the
// software reduction against the sum/max hardware circuit the paper's
// Section 5 anticipates.
#include <iostream>

#include "color/coloring.hpp"
#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mstep;
  util::Cli cli(argc, argv, {"rows", "cols", "m", "procs"});
  const int rows = cli.get_int("rows", 6);
  const int cols = cli.get_int("cols", 6);
  const int m = cli.get_int("m", 3);
  const int procs = cli.get_int("procs", 5);

  const fem::PlateMesh mesh(rows, cols);
  const femsim::Assignment assign =
      procs <= mesh.nrows() && mesh.nrows() % procs == 0
          ? femsim::row_bands(mesh, procs)
          : femsim::column_strips(mesh, procs);
  const femsim::DistributedPlateSolver solver(
      mesh, fem::Material{}, fem::EdgeLoad{1.0, 0.0}, assign);

  femsim::DistOptions opt;
  opt.m = m;
  opt.tolerance = 1e-5;

  std::vector<std::vector<long long>> traffic;
  const auto res = solver.solve_with_traffic(opt, &traffic);

  std::cout << "distributed m-step SSOR PCG: " << rows << "x" << cols
            << " nodes on " << procs << " processors, m = " << m << "\n"
            << "iterations: " << res.iterations
            << ", converged: " << (res.converged ? "yes" : "no") << "\n"
            << "simulated time: " << res.simulated_seconds << " s\n"
            << "  max compute: " << res.max_compute_seconds << " s\n"
            << "  max comm:    " << res.max_comm_seconds << " s\n"
            << "  max idle:    " << res.max_idle_seconds << " s\n"
            << "records exchanged: " << res.total_records << "\n\n";

  util::Table t({"from\\to", "0", "1", "2", "3", "4"});
  for (int i = 0; i < procs && i < 5; ++i) {
    std::vector<std::string> row = {util::Table::integer(i)};
    for (int j = 0; j < 5; ++j) {
      row.push_back(j < procs ? util::Table::integer(traffic[i][j]) : "");
    }
    t.add_row(row);
  }
  t.print(std::cout, "record traffic matrix");

  // The sum/max circuit ablation (Section 5 of the paper).
  femsim::DistOptions hw = opt;
  hw.costs.use_summax_circuit = true;
  const auto res_hw = solver.solve(hw);
  std::cout << "\nwith the sum/max hardware circuit: "
            << res_hw.simulated_seconds << " s (software reductions: "
            << res.simulated_seconds << " s)\n";

  // Cross-check: the distributed operator is exactly the sequential one,
  // so the shared-memory Solver facade must reproduce the iteration count
  // on the same system and config.
  const auto sys =
      fem::assemble_plane_stress(mesh, fem::Material{}, fem::EdgeLoad{1.0, 0.0});
  mstep::solver::SolverConfig config;
  config.steps = m;
  config.tolerance = opt.tolerance;
  const auto seq = mstep::solver::Solver::from_config(config).solve(
      sys.stiffness, sys.load, color::six_color_classes(mesh));
  std::cout << "\nfacade cross-check (" << config.to_string() << "):\n"
            << "  sequential Solver: " << seq.iterations()
            << " iterations, distributed simulator: " << res.iterations
            << (seq.iterations() == res.iterations ? "  [match]"
                                                   : "  [MISMATCH]")
            << '\n';
  return res.converged ? 0 : 1;
}
