#!/usr/bin/env python3
"""Validate mstep JSON artifacts against their schemas.

CI's smoke steps run the tools, then feed every JSON artifact through
this script (the check_bench.py-style schema check for single
documents):

    tools/check_report.py report.json --require converged=true
    tools/check_report.py metrics.json --schema metrics
    tools/check_report.py reply.json --schema request --require cache=hit
    tools/check_report.py BENCH_served.json --schema served

--schema picks the contract: `report` (default) is mstep_solve's --out
document, `request` is mstep_request's --out document, `metrics` is the
mstep_served metrics snapshot (also what --metrics-out flushes on
graceful shutdown), `served` is bench_served's BENCH_served.json, and
`corpus` is run_corpus.py's BENCH_corpus.json — the last two are
ARRAYS of workload rows, each validated against the row schema.

Nested documents use dotted field paths ("cache.hit_rate"); --require
NAME=VALUE asserts an exact (stringified, case-insensitive) value at
such a path.  The document must contain every schema field with the
right JSON type.

Exit codes: 0 ok, 1 schema/requirement failure, 2 usage or I/O error.
"""

import argparse
import json
import sys


def die(message):
    """Usage or I/O error: print and exit 2 (schema failures exit 1)."""
    print(message, file=sys.stderr)
    sys.exit(2)


# Field -> accepted JSON types.  None means nullable (e.g. a failed RHS
# has no iteration count; error_vs_exact is null when no exact solution
# is known).  Dotted names reach into nested objects.
REPORT_SCHEMA = {
    "tool": (str,),
    "source": (str,),
    "problem": (str,),
    "description": (str,),
    "n": (int,),
    "nnz": (int,),
    "bandwidth": (int,),
    "nonzero_diagonals": (int,),
    "dia_friendly": (bool,),
    "used_classes": (bool,),
    "format_selected": (str,),
    "shards": (int,),
    "config": (str,),
    "nrhs": (int,),
    "concurrency": (int,),
    "setup_seconds": (int, float),
    "wall_seconds": (int, float),
    "solves_per_second": (int, float, type(None)),
    "converged": (bool,),
    "iterations": (list,),
    "final_delta_inf": (list,),
    "rhs_errors": (list,),
    "error_vs_exact": (int, float, type(None)),
    # Spectrum estimate and the condition-number proxy kappa(M^-1 K); the
    # proxy is null for m=0 (no alphas) or a non-positive eigenvalue map
    # (+inf renders as null).  history is RHS 0's per-iteration record.
    "interval.lambda_min": (int, float),
    "interval.lambda_max": (int, float),
    "condition_proxy": (int, float, type(None)),
    "history": (list,),
}

# mstep_request --out: the client-side record of one served solve.
REQUEST_SCHEMA = {
    "tool": (str,),
    "endpoint": (str,),
    "retcode": (int,),
    "retcode_name": (str,),
    "message": (str,),
    "cache": (str,),
    "fingerprint": (str,),
    "config": (str,),
    "format_selected": (str,),
    "nrhs": (int,),
    "converged": (bool,),
    "iterations": (list,),
    "final_delta_inf": (list,),
    "rhs_errors": (list,),
    "setup_seconds": (int, float),
    "solve_seconds": (int, float),
    "e2e_seconds": (int, float),
    "attempts": (int,),
    "request_id": (int,),
}

# mstep_served metrics reply / --metrics-out snapshot (docs/protocol.md).
METRICS_SCHEMA = {
    "tool": (str,),
    "uptime_seconds": (int, float),
    "queue_depth": (int,),
    "max_inflight": (int,),
    "requests.solve": (int,),
    "requests.metrics": (int,),
    "requests.shutdown": (int,),
    "requests.errors": (int,),
    "requests.busy_rejections": (int,),
    "cache.entries": (int,),
    "cache.bytes": (int,),
    "cache.capacity_bytes": (int,),
    "cache.hits": (int,),
    "cache.misses": (int,),
    "cache.evictions": (int,),
    "cache.hit_rate": (int, float),
    "latency_solve_seconds.count": (int,),
    "latency_solve_seconds.mean": (int, float),
    "latency_solve_seconds.max": (int, float),
    "latency_solve_seconds.p50": (int, float),
    "latency_solve_seconds.p99": (int, float),
    "latency_request_seconds.count": (int,),
    "latency_request_seconds.mean": (int, float),
    "latency_request_seconds.max": (int, float),
    "latency_request_seconds.p50": (int, float),
    "latency_request_seconds.p99": (int, float),
    "latency_setup_seconds.count": (int,),
    "latency_setup_seconds.mean": (int, float),
    "latency_setup_seconds.max": (int, float),
    "latency_setup_seconds.p50": (int, float),
    "latency_setup_seconds.p99": (int, float),
}

# One bench_served workload row (BENCH_served.json is an array of these).
SERVED_ROW_SCHEMA = {
    "tool": (str,),
    "workload": (str,),
    "clients": (int,),
    "requests_per_client": (int,),
    "requests_total": (int,),
    "wall_seconds": (int, float),
    "throughput_rps": (int, float),
    "mean_ms": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "cache_hit_rate": (int, float),
    "busy_retries": (int,),
    "converged": (bool,),
    "bitwise_match_direct": (bool,),
}

# One run_corpus.py row (BENCH_corpus.json is an array of these): one
# manifest matrix x one splitting/m point of the sweep, nrhs=1 flattened.
CORPUS_ROW_SCHEMA = {
    "tool": (str,),
    "matrix": (str,),
    "kind": (str,),
    "splitting": (str,),
    "m": (int,),
    "config": (str,),
    "n": (int,),
    "nnz": (int,),
    "format_selected": (str,),
    "iterations": (int,),
    "converged": (bool,),
    "final_delta_inf": (int, float),
    "condition_proxy": (int, float, type(None)),
    "setup_seconds": (int, float),
    "solve_seconds": (int, float),
}

SCHEMAS = {
    "report": REPORT_SCHEMA,
    "request": REQUEST_SCHEMA,
    "metrics": METRICS_SCHEMA,
    "served": SERVED_ROW_SCHEMA,
    "corpus": CORPUS_ROW_SCHEMA,
}

# Schemas whose document is a JSON ARRAY of rows (--require applies to
# every row).
ARRAY_SCHEMAS = ("served", "corpus")

_MISSING = object()


def lookup(document, dotted):
    """Resolve a dotted path in nested dicts; _MISSING when absent."""
    node = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return _MISSING
        node = node[part]
    return node


def check_fields(document, schema, failures, where=""):
    for name, types in schema.items():
        value = lookup(document, name)
        if value is _MISSING:
            failures.append(f"{where}missing field '{name}'")
        # bool is an int subclass in Python; require exact type matches.
        elif not any(type(value) is t for t in types):
            failures.append(
                f"{where}field '{name}' has type {type(value).__name__}, "
                f"wanted one of {[t.__name__ for t in types]}")


def check_report_extras(report, failures):
    """Cross-field checks specific to the mstep_solve report."""
    for name in ("iterations", "final_delta_inf", "rhs_errors"):
        if isinstance(report.get(name), list):
            if len(report[name]) != report.get("nrhs"):
                failures.append(
                    f"'{name}' has {len(report[name])} entries, nrhs = "
                    f"{report.get('nrhs')}")

    # format_selected records the operator layout that actually ran: always
    # a concrete format, and mandatory-resolved when the config asked for
    # the automatic probe (--format=auto must never leak "auto" through).
    fmt = report.get("format_selected")
    if isinstance(fmt, str) and fmt not in ("csr", "dia", "sell"):
        failures.append(
            f"format_selected must be 'csr', 'dia', or 'sell', got '{fmt}'")
    if "format=auto" in str(report.get("config", "")) and fmt not in (
            "csr", "dia", "sell"):
        failures.append(
            "config requested format=auto but the report does not say "
            "which format was selected")


def check_metrics_extras(metrics, failures):
    """Sanity relations the metrics snapshot must satisfy."""
    hits = lookup(metrics, "cache.hits")
    misses = lookup(metrics, "cache.misses")
    rate = lookup(metrics, "cache.hit_rate")
    if all(isinstance(v, (int, float)) and v is not _MISSING
           for v in (hits, misses, rate)):
        total = hits + misses
        expect = hits / total if total else 0.0
        if abs(rate - expect) > 1e-9:
            failures.append(
                f"cache.hit_rate = {rate}, but hits/misses say {expect}")
    depth = lookup(metrics, "queue_depth")
    limit = lookup(metrics, "max_inflight")
    if type(depth) is int and type(limit) is int and depth > limit:
        failures.append(f"queue_depth {depth} exceeds max_inflight {limit}")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report")
    ap.add_argument("--schema", choices=sorted(SCHEMAS), default="report",
                    help="which artifact contract to check (default: "
                         "report)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="exact field check, dotted paths ok (repeatable)")
    args = ap.parse_args(argv)

    try:
        with open(args.report) as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"check_report: cannot read {args.report}: {e}")

    schema = SCHEMAS[args.schema]
    failures = []
    if args.schema in ARRAY_SCHEMAS:
        # An array of workload rows; --require applies to every row.
        if not isinstance(document, list) or not document:
            die(f"check_report: {args.report} is not a non-empty JSON array")
        for i, row in enumerate(document):
            where = f"row {i}: "
            if not isinstance(row, dict):
                failures.append(f"{where}not a JSON object")
                continue
            check_fields(row, schema, failures, where)
            if args.schema == "corpus":
                fmt = row.get("format_selected")
                if isinstance(fmt, str) and fmt not in ("csr", "dia", "sell"):
                    failures.append(
                        f"{where}format_selected must be 'csr', 'dia', or "
                        f"'sell', got '{fmt}'")
        documents = [(f"row {i}: ", row) for i, row in enumerate(document)
                     if isinstance(row, dict)]
    else:
        if not isinstance(document, dict):
            die(f"check_report: {args.report} is not a JSON object")
        check_fields(document, schema, failures)
        if args.schema == "report":
            check_report_extras(document, failures)
        elif args.schema == "metrics":
            check_metrics_extras(document, failures)
        documents = [("", document)]

    for spec in args.require:
        name, eq, value = spec.partition("=")
        if not eq:
            die(f"check_report: require '{spec}' needs NAME=VALUE")
        for where, doc in documents:
            got = lookup(doc, name)
            got = "missing" if got is _MISSING else str(got).lower()
            if got != value.lower():
                failures.append(f"{where}{name} = {got}, required {value}")

    print(f"check_report: schema '{args.schema}', {len(schema)} fields, "
          f"{len(args.require)} requirement(s), {len(failures)} failure(s) "
          f"({args.report})")
    for f in failures:
        print(f"  FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
