#!/usr/bin/env python3
"""Validate an mstep_solve JSON report against the driver schema.

CI's driver-smoke steps run mstep_solve on a catalog problem and on a
Matrix Market fixture, then feed the --out report through this script
(the check_bench.py-style schema check for single reports):

    tools/check_report.py report.json --require converged=true

The report must be a JSON object containing every field report_json()
emits, with the right JSON types; --require NAME=VALUE additionally
asserts an exact (stringified, case-insensitive) field value.

Exit codes: 0 ok, 1 schema/requirement failure, 2 usage or I/O error.
"""

import argparse
import json
import sys


def die(message):
    """Usage or I/O error: print and exit 2 (schema failures exit 1)."""
    print(message, file=sys.stderr)
    sys.exit(2)


# Field -> accepted JSON types.  None means nullable (e.g. a failed RHS
# has no iteration count; error_vs_exact is null when no exact solution
# is known).
SCHEMA = {
    "tool": (str,),
    "source": (str,),
    "problem": (str,),
    "description": (str,),
    "n": (int,),
    "nnz": (int,),
    "bandwidth": (int,),
    "nonzero_diagonals": (int,),
    "dia_friendly": (bool,),
    "used_classes": (bool,),
    "format_selected": (str,),
    "config": (str,),
    "nrhs": (int,),
    "concurrency": (int,),
    "setup_seconds": (int, float),
    "wall_seconds": (int, float),
    "solves_per_second": (int, float, type(None)),
    "converged": (bool,),
    "iterations": (list,),
    "final_delta_inf": (list,),
    "rhs_errors": (list,),
    "error_vs_exact": (int, float, type(None)),
}


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="exact field check (repeatable)")
    args = ap.parse_args(argv)

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"check_report: cannot read {args.report}: {e}")
    if not isinstance(report, dict):
        die(f"check_report: {args.report} is not a JSON object")

    failures = []
    for name, types in SCHEMA.items():
        if name not in report:
            failures.append(f"missing field '{name}'")
        # bool is an int subclass in Python; require exact type matches.
        elif not any(type(report[name]) is t for t in types):
            failures.append(
                f"field '{name}' has type {type(report[name]).__name__}, "
                f"wanted one of {[t.__name__ for t in types]}")
    for name in ("iterations", "final_delta_inf", "rhs_errors"):
        if isinstance(report.get(name), list):
            if len(report[name]) != report.get("nrhs"):
                failures.append(
                    f"'{name}' has {len(report[name])} entries, nrhs = "
                    f"{report.get('nrhs')}")

    # format_selected records the operator layout that actually ran: always
    # a concrete format, and mandatory-resolved when the config asked for
    # the automatic probe (--format=auto must never leak "auto" through).
    fmt = report.get("format_selected")
    if isinstance(fmt, str) and fmt not in ("csr", "dia"):
        failures.append(
            f"format_selected must be 'csr' or 'dia', got '{fmt}'")
    if "format=auto" in str(report.get("config", "")) and fmt not in (
            "csr", "dia"):
        failures.append(
            "config requested format=auto but the report does not say "
            "which format was selected")

    for spec in args.require:
        name, eq, value = spec.partition("=")
        if not eq:
            die(f"check_report: require '{spec}' needs NAME=VALUE")
        got = str(report.get(name)).lower()
        if got != value.lower():
            failures.append(f"{name} = {got}, required {value}")

    print(f"check_report: {len(SCHEMA)} schema fields, "
          f"{len(args.require)} requirement(s), {len(failures)} failure(s) "
          f"({args.report})")
    for f in failures:
        print(f"  FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
