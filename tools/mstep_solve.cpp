// mstep_solve — the one driver that runs ANY problem through the full
// m-step pipeline.
//
//   mstep_solve --problem=poisson3d:n=32 --splitting=ssor --m=2
//               --threads=4 --batch=8 --out=report.json
//   mstep_solve --matrix=foo.mtx.gz --rhs=foo_b.mtx --splitting=jacobi
//   mstep_solve --list
//
// The system comes from the problem catalog (--problem=<spec>) or a
// Matrix Market file (--matrix, optional --rhs; .mtx.gz is auto-detected
// and streamed; without --rhs the driver manufactures b = K*1 so the
// error is still measurable).  Every SolverConfig flag applies
// (--splitting/--m/--params/--ordering/--format/--threads/--batch/...;
// --format=auto probes the matrix and picks csr or dia), --nrhs adds
// deterministic extra right-hand sides for the batch engine, and --out
// writes the JSON report tools/check_report.py validates in CI.  Exit
// status: 0 all solved and converged, 1 otherwise, 2 on a
// usage/config/file error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "io/matrix_market.hpp"
#include "obs/trace.hpp"
#include "problems/driver.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace mstep;

int list_registries() {
  util::Table problems({"problem", "description"});
  auto& reg = problems::ProblemRegistry::instance();
  for (const auto& name : reg.names()) {
    problems.add_row({name, reg.at(name).description});
  }
  problems.print(std::cout, "problem catalog (--problem=<name>[:key=value...])");

  std::cout << '\n';
  util::Table splittings({"splitting"});
  for (const auto& name : solver::SplittingRegistry::instance().names()) {
    splittings.add_row({name});
  }
  splittings.print(std::cout, "splittings (--splitting)");

  std::cout << '\n';
  util::Table params({"strategy"});
  for (const auto& name : solver::ParamStrategyRegistry::instance().names()) {
    params.add_row({name});
  }
  params.print(std::cout, "parameter strategies (--params)");
  return 0;
}

// Every flag the driver accepts, one line each — tools/check_docs.py
// audits that each mstep_solve flag the docs mention appears here.
int print_help() {
  std::cout <<
      "mstep_solve — run any problem through the m-step PCG pipeline\n"
      "\n"
      "usage:\n"
      "  mstep_solve --problem=<spec> [solver flags] [--out=report.json]\n"
      "  mstep_solve --matrix=<file.mtx[.gz]> [--rhs=<file.mtx[.gz]>] ...\n"
      "  mstep_solve --list | --help\n"
      "\n"
      "input (exactly one of):\n"
      "  --problem=<spec>   catalog spec, e.g. poisson3d:n=32 (see --list)\n"
      "  --matrix=<path>    Matrix Market file; gzip (.mtx.gz) is\n"
      "                     auto-detected and streamed\n"
      "\n"
      "input options:\n"
      "  --rhs=<path>       Matrix Market vector file (only with --matrix;\n"
      "                     default: manufactured b = K*1)\n"
      "  --nrhs=<K>         total right-hand sides; extras are deterministic\n"
      "                     pseudo-random vectors for the batch engine (default 1)\n"
      "\n"
      "solver configuration (SolverConfig flags):\n"
      "  --splitting=<spec> splitting key with options, e.g. ssor:omega=1.2\n"
      "                     (default ssor)\n"
      "  --m=<int>          preconditioner steps; 0 = plain CG (default 4)\n"
      "  --params=<key>     parameter strategy: ones | lsq | minmax (default lsq)\n"
      "  --ordering=<o>     natural | multicolor (default multicolor)\n"
      "  --format=<f>       csr | dia | sell | auto — operator storage for the\n"
      "                     outer products; auto probes the matrix (dia first,\n"
      "                     then sell) and falls back to csr (default csr)\n"
      "  --stop=<rule>      delta_inf | residual2 (default delta_inf)\n"
      "  --tol=<t>          stopping tolerance (default 1e-06)\n"
      "  --maxit=<n>        iteration cap (default 20000)\n"
      "  --threads=<N>      kernel threads; 0 = serial, bitwise-identical\n"
      "                     results for any N (default 0)\n"
      "  --shards=<N>       region shards (multicolor ordering only); each\n"
      "                     color block is cut into N strips solved by their\n"
      "                     own pool tasks with halo exchange — bitwise the\n"
      "                     serial result for any N; 0 = not sharded\n"
      "                     (default 0)\n"
      "  --batch=<N>        concurrent right-hand-side lanes; 0 = auto\n"
      "                     (default 0)\n"
      "\n"
      "output:\n"
      "  --out=<path>       write the JSON report (schema: docs/file-formats.md,\n"
      "                     validated by tools/check_report.py)\n"
      "  --trace=<path>     record a Chrome trace-event JSON profile of this\n"
      "                     run (load in Perfetto / chrome://tracing; spans:\n"
      "                     prepare, solve, iteration, sweep — one track per\n"
      "                     thread; schema checked by tools/check_trace.py).\n"
      "                     MSTEP_TRACE=on enables recording without a file\n"
      "                     (see docs/observability.md)\n"
      "  --export-matrix=<path>  write the assembled system matrix in canonical\n"
      "                     Matrix Market form (symmetric storage, .gz\n"
      "                     compresses) — byte-stable, so sha256 pins it;\n"
      "                     the corpus cache (tools/fetch_corpus.py) is\n"
      "                     materialized this way\n"
      "  --export-only      with --export-matrix: skip the solve and exit 0\n"
      "                     after writing the matrix\n"
      "  --list             print registered problems/splittings/strategies\n"
      "  --help             this text\n"
      "\n"
      "exit status: 0 all solved and converged, 1 otherwise, 2 on a\n"
      "usage/config/file error.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> allowed = {"problem", "matrix", "rhs",
                                        "nrhs",    "out",    "list",
                                        "help",    "export-matrix",
                                        "export-only", "trace"};
    for (const auto& f : solver::SolverConfig::cli_flags()) {
      allowed.push_back(f);
    }
    const util::Cli cli(argc, argv, std::move(allowed));
    if (cli.has("help")) return print_help();
    if (cli.has("list")) return list_registries();

    const std::string trace_path = cli.get("trace", "");
    if (!trace_path.empty()) {
      // Turn the tracer on before any pipeline work so the prepare spans
      // land in the ring buffers too.  Tracing never changes solution
      // bits — only timers and thread-local buffers.
      obs::Tracer::instance().set_enabled(true);
      obs::name_thread("main");
    }

    problems::DriverInput input;
    input.problem = cli.get("problem", "");
    input.matrix_path = cli.get("matrix", "");
    input.rhs_path = cli.get("rhs", "");
    input.nrhs = cli.get_int("nrhs", 1);
    const solver::SolverConfig config = solver::SolverConfig::from_cli(cli);

    const std::string export_path = cli.get("export-matrix", "");
    if (cli.has("export-only") && export_path.empty()) {
      std::cerr << "mstep_solve: --export-only needs --export-matrix\n";
      return 2;
    }
    if (!export_path.empty()) {
      const problems::Problem p = problems::resolve_problem(input);
      io::MmWriteOptions options;
      // SPD operators export in symmetric storage — the layout the
      // SuiteSparse collection uses — and the writer's canonical bytes
      // make the file's sha256 a stable fingerprint of the operator.
      // Generators whose assembly order leaves K(i,j) and K(j,i) a
      // rounding apart are not *bitwise* symmetric; they fall back to
      // general storage (still canonical, still byte-stable).
      options.symmetry = io::MmSymmetry::kSymmetric;
      options.comment = "mstep export: " + p.spec.to_string();
      try {
        io::write_matrix_market(export_path, p.matrix, options);
      } catch (const std::invalid_argument&) {
        options.symmetry = io::MmSymmetry::kGeneral;
        io::write_matrix_market(export_path, p.matrix, options);
      }
      std::cout << "exported " << p.spec.to_string() << " (n = "
                << p.matrix.rows() << ", nnz = " << p.matrix.nnz()
                << ") to " << export_path << '\n';
      if (cli.has("export-only")) return 0;
    }

    const problems::DriverResult r = problems::run(input, config);

    std::cout << r.problem_name << " — " << r.description << '\n'
              << "N = " << r.n << ", nnz = " << r.nnz << ", bandwidth = "
              << r.bandwidth << ", " << r.nonzero_diagonals
              << " nonzero diagonals" << (r.dia_friendly ? " (DIA-friendly)" : "")
              << "\nconfig: " << r.config.to_string()
              << "\noperator format: " << r.format_selected << '\n';

    util::Table t({"rhs", "iterations", "final |du|_inf", "status"});
    for (std::size_t i = 0; i < r.batch.size(); ++i) {
      if (r.batch.ok(i)) {
        t.add_row({util::Table::integer(static_cast<long long>(i)),
                   util::Table::integer(r.batch.reports[i].iterations()),
                   util::Table::num(r.batch.reports[i].result.final_delta_inf,
                                    2),
                   r.batch.reports[i].converged() ? "converged" : "NOT CONVERGED"});
      } else {
        t.add_row({util::Table::integer(static_cast<long long>(i)), "-", "-",
                   "ERROR: " + r.error_messages[i]});
      }
    }
    t.print(std::cout, std::to_string(r.batch.size()) +
                           " right-hand side(s), concurrency = " +
                           std::to_string(r.batch.concurrency));
    if (r.has_exact) {
      std::cout << "error vs known solution: |u - u*|_inf / |u*|_inf = "
                << r.error_vs_exact << '\n';
    }
    std::cout << "setup " << r.setup_seconds << " s, solve "
              << r.batch.wall_seconds << " s ("
              << r.batch.solves_per_second() << " RHS/s)\n";

    const std::string out_path = cli.get("out", "");
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "mstep_solve: cannot write " << out_path << '\n';
        return 2;
      }
      problems::report_json(r).dump(out);
      std::cout << "wrote " << out_path << '\n';
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "mstep_solve: cannot write " << trace_path << '\n';
        return 2;
      }
      out << obs::Tracer::instance().chrome_json() << '\n';
      std::cout << "wrote trace " << trace_path << '\n';
    }
    return r.all_converged() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mstep_solve: " << e.what() << '\n';
    return 2;
  }
}
