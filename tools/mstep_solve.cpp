// mstep_solve — the one driver that runs ANY problem through the full
// m-step pipeline.
//
//   mstep_solve --problem=poisson3d:n=32 --splitting=ssor --m=2
//               --threads=4 --batch=8 --out=report.json
//   mstep_solve --matrix=foo.mtx --rhs=foo_b.mtx --splitting=jacobi
//   mstep_solve --list
//
// The system comes from the problem catalog (--problem=<spec>) or a
// Matrix Market file (--matrix, optional --rhs; without --rhs the driver
// manufactures b = K*1 so the error is still measurable).  Every
// SolverConfig flag applies (--splitting/--m/--params/--ordering/
// --format/--threads/--batch/...), --nrhs adds deterministic extra
// right-hand sides for the batch engine, and --out writes the JSON
// report tools/check_report.py validates in CI.  Exit status: 0 all
// solved and converged, 1 otherwise, 2 on a usage/config/file error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "problems/driver.hpp"
#include "solver/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace mstep;

int list_registries() {
  util::Table problems({"problem", "description"});
  auto& reg = problems::ProblemRegistry::instance();
  for (const auto& name : reg.names()) {
    problems.add_row({name, reg.at(name).description});
  }
  problems.print(std::cout, "problem catalog (--problem=<name>[:key=value...])");

  std::cout << '\n';
  util::Table splittings({"splitting"});
  for (const auto& name : solver::SplittingRegistry::instance().names()) {
    splittings.add_row({name});
  }
  splittings.print(std::cout, "splittings (--splitting)");

  std::cout << '\n';
  util::Table params({"strategy"});
  for (const auto& name : solver::ParamStrategyRegistry::instance().names()) {
    params.add_row({name});
  }
  params.print(std::cout, "parameter strategies (--params)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> allowed = {"problem", "matrix", "rhs", "nrhs",
                                        "out", "list"};
    for (const auto& f : solver::SolverConfig::cli_flags()) {
      allowed.push_back(f);
    }
    const util::Cli cli(argc, argv, std::move(allowed));
    if (cli.has("list")) return list_registries();

    problems::DriverInput input;
    input.problem = cli.get("problem", "");
    input.matrix_path = cli.get("matrix", "");
    input.rhs_path = cli.get("rhs", "");
    input.nrhs = cli.get_int("nrhs", 1);
    const solver::SolverConfig config = solver::SolverConfig::from_cli(cli);

    const problems::DriverResult r = problems::run(input, config);

    std::cout << r.problem_name << " — " << r.description << '\n'
              << "N = " << r.n << ", nnz = " << r.nnz << ", bandwidth = "
              << r.bandwidth << ", " << r.nonzero_diagonals
              << " nonzero diagonals" << (r.dia_friendly ? " (DIA-friendly)" : "")
              << "\nconfig: " << r.config.to_string() << '\n';

    util::Table t({"rhs", "iterations", "final |du|_inf", "status"});
    for (std::size_t i = 0; i < r.batch.size(); ++i) {
      if (r.batch.ok(i)) {
        t.add_row({util::Table::integer(static_cast<long long>(i)),
                   util::Table::integer(r.batch.reports[i].iterations()),
                   util::Table::num(r.batch.reports[i].result.final_delta_inf,
                                    2),
                   r.batch.reports[i].converged() ? "converged" : "NOT CONVERGED"});
      } else {
        t.add_row({util::Table::integer(static_cast<long long>(i)), "-", "-",
                   "ERROR: " + r.error_messages[i]});
      }
    }
    t.print(std::cout, std::to_string(r.batch.size()) +
                           " right-hand side(s), concurrency = " +
                           std::to_string(r.batch.concurrency));
    if (r.has_exact) {
      std::cout << "error vs known solution: |u - u*|_inf / |u*|_inf = "
                << r.error_vs_exact << '\n';
    }
    std::cout << "setup " << r.setup_seconds << " s, solve "
              << r.batch.wall_seconds << " s ("
              << r.batch.solves_per_second() << " RHS/s)\n";

    const std::string out_path = cli.get("out", "");
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "mstep_solve: cannot write " << out_path << '\n';
        return 2;
      }
      problems::report_json(r).dump(out);
      std::cout << "wrote " << out_path << '\n';
    }
    return r.all_converged() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mstep_solve: " << e.what() << '\n';
    return 2;
  }
}
