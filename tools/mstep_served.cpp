// mstep_served — the solver-as-a-service daemon.
//
//   mstep_served --unix=/tmp/mstep.sock --cache-mb=256 &
//   mstep_served --port=7427 --max-inflight=8 --metrics-out=metrics.json
//   mstep_served --port=0 --verbose        # ephemeral port, printed
//
// A long-running server speaking the MSV1 framed protocol
// (docs/protocol.md) over TCP and/or a Unix-domain socket.  Solve
// requests flow through a prepared-pipeline cache keyed by matrix
// fingerprint x solver config, so repeat traffic skips the expensive
// colouring/permutation/alpha setup; an admission gate sheds overload
// with the retryable `busy` retcode.  SIGINT/SIGTERM drain in-flight
// solves, flush a final metrics snapshot (--metrics-out), and exit 0.
//
// Talk to it with mstep_request (one-shot client CLI) or serve::Client
// (the library used by bench_served and the tests).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

int print_help() {
  std::cout <<
      "mstep_served — solver-as-a-service daemon (MSV1 protocol)\n"
      "\n"
      "usage:\n"
      "  mstep_served [--port=<p>] [--unix=<path>] [options]\n"
      "\n"
      "endpoints (at least one):\n"
      "  --port=<p>         listen on TCP <host>:<p>; 0 binds an ephemeral\n"
      "                     port (printed on startup)\n"
      "  --host=<addr>      TCP bind address (default 127.0.0.1)\n"
      "  --unix=<path>      listen on a Unix-domain socket at <path>\n"
      "\n"
      "service options:\n"
      "  --cache-mb=<M>     prepared-pipeline cache budget in MiB\n"
      "                     (default 256)\n"
      "  --max-inflight=<N> concurrent solves before `busy` shedding\n"
      "                     (default 2 x hardware threads)\n"
      "  --metrics-out=<f>  write the final metrics snapshot here on\n"
      "                     graceful shutdown\n"
      "  --trace=<f>        trace the whole daemon lifetime and write the\n"
      "                     Chrome trace-event JSON here on graceful\n"
      "                     shutdown (per-request tracing needs no server\n"
      "                     flag: mstep_request --trace asks per request)\n"
      "  --verbose          per-request log lines on stderr\n"
      "  --help             this text\n"
      "\n"
      "Shutdown: SIGINT/SIGTERM or an mstep_request --shutdown drain\n"
      "in-flight solves, flush metrics, exit 0.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mstep;
  try {
    const util::Cli cli(argc, argv,
                        {"port", "host", "unix", "cache-mb", "max-inflight",
                         "metrics-out", "trace", "verbose", "help"});
    if (cli.has("help")) return print_help();

    serve::ServerOptions options;
    options.port = cli.get_int("port", -1);
    options.host = cli.get("host", "127.0.0.1");
    options.unix_path = cli.get("unix", "");
    options.cache_bytes =
        static_cast<std::size_t>(cli.get_int("cache-mb", 256)) << 20;
    options.max_inflight = cli.get_int("max-inflight", 0);
    options.metrics_out = cli.get("metrics-out", "");
    options.verbose = cli.has("verbose");
    if (options.port < 0 && options.unix_path.empty()) {
      std::cerr << "mstep_served: give --port and/or --unix (see --help)\n";
      return 2;
    }

    serve::Server server(options);
    server.bind();
    server.install_signal_handlers();
    if (options.port >= 0) {
      std::cout << "mstep_served: listening on " << options.host << ":"
                << server.bound_port() << " (tcp)\n";
    }
    if (!options.unix_path.empty()) {
      std::cout << "mstep_served: listening on " << options.unix_path
                << " (unix)\n";
    }
    const std::string trace_path = cli.get("trace", "");
    if (!trace_path.empty()) {
      obs::Tracer::instance().set_enabled(true);
      obs::name_thread("accept-loop");
    }
    std::cout.flush();
    server.run();
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "mstep_served: cannot write " << trace_path << '\n';
        return 2;
      }
      out << obs::Tracer::instance().chrome_json() << '\n';
      std::cout << "mstep_served: wrote trace " << trace_path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mstep_served: " << e.what() << '\n';
    return 2;
  }
}
