// mstep_request — one-shot client for the mstep_served daemon.
//
//   mstep_request --connect=unix:/tmp/mstep.sock --problem=poisson3d:n=16
//       [--splitting=ssor --m=2 --out=reply.json]
//   mstep_request --connect=127.0.0.1:7427 --matrix=foo.mtx --nrhs=4
//   mstep_request --connect=unix:/tmp/mstep.sock --metrics
//   mstep_request --connect=unix:/tmp/mstep.sock --shutdown
//
// Sends one solve (catalog spec, Matrix Market file shipped as inline
// CSR, or a bare --fingerprint for a matrix the daemon already holds),
// a --metrics query, or a --shutdown drain.  Busy responses are retried
// with exponential backoff (--retries/--backoff-ms).  --expect-cache
// turns the reply's cache verdict into the exit status — how CI proves
// the second identical request hit the prepared-pipeline cache.
// Exit status: 0 solved and converged (or metrics/shutdown ok), 1 failed
// retcode / non-convergence / --expect-cache mismatch, 2 usage or
// transport error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "io/matrix_market.hpp"
#include "serve/client.hpp"
#include "serve/hash.hpp"
#include "solver/config.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mstep;

int print_help() {
  std::cout <<
      "mstep_request — client for the mstep_served daemon\n"
      "\n"
      "usage:\n"
      "  mstep_request --connect=<ep> --problem=<spec> [solver flags]\n"
      "  mstep_request --connect=<ep> --matrix=<file.mtx[.gz]> [--rhs=<f>]\n"
      "  mstep_request --connect=<ep> --fingerprint=<hex>\n"
      "  mstep_request --connect=<ep> --metrics | --shutdown\n"
      "\n"
      "connection:\n"
      "  --connect=<ep>     unix:<path> or <host>:<port> (required)\n"
      "  --timeout-ms=<t>   reply wait limit; -1 = wait forever (default)\n"
      "  --retries=<N>      attempts while the server answers busy\n"
      "                     (default 5)\n"
      "  --backoff-ms=<t>   initial busy backoff, doubling (default 100)\n"
      "\n"
      "request (exactly one of):\n"
      "  --problem=<spec>   catalog spec solved server-side\n"
      "  --matrix=<path>    Matrix Market file, shipped as inline CSR\n"
      "  --fingerprint=<h>  matrix already resident on the daemon (hex,\n"
      "                     from a previous reply)\n"
      "  --metrics          fetch the metrics JSON document\n"
      "  --shutdown         ask the daemon to drain and exit\n"
      "\n"
      "request options:\n"
      "  --rhs=<path>       Matrix Market vector (with --matrix; default:\n"
      "                     manufactured b = K*1)\n"
      "  --nrhs=<K>         total right-hand sides (--matrix only; extras\n"
      "                     are deterministic pseudo-random vectors)\n"
      "  (all mstep_solve solver flags: --splitting/--m/--params/\n"
      "   --ordering/--format/--stop/--tol/--maxit/--threads/--batch)\n"
      "\n"
      "output:\n"
      "  --out=<path>       write the JSON reply report (or, with\n"
      "                     --metrics, the metrics document)\n"
      "  --trace=<path>     ask the daemon to trace this request and write\n"
      "                     the returned Chrome trace-event JSON (spans\n"
      "                     carry the reply's request_id as correlation;\n"
      "                     load in Perfetto, validate with\n"
      "                     tools/check_trace.py)\n"
      "  --expect-cache=<v> exit 1 unless the reply's cache verdict is\n"
      "                     <v> (hit | miss)\n"
      "  --help             this text\n"
      "\n"
      "exit status: 0 ok and converged, 1 failed retcode / not converged /\n"
      "cache mismatch, 2 usage or transport error.\n";
  return 0;
}

bool write_out(const std::string& path, const util::Json& j) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "mstep_request: cannot write " << path << '\n';
    return false;
  }
  j.dump(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> allowed = {
        "connect", "timeout-ms", "retries",     "backoff-ms",
        "problem", "matrix",     "rhs",         "fingerprint",
        "nrhs",    "metrics",    "shutdown",    "out",
        "expect-cache", "trace", "help"};
    for (const auto& f : solver::SolverConfig::cli_flags()) {
      allowed.push_back(f);
    }
    const util::Cli cli(argc, argv, std::move(allowed));
    if (cli.has("help")) return print_help();

    const std::string endpoint = cli.get("connect", "");
    if (endpoint.empty()) {
      std::cerr << "mstep_request: --connect=<endpoint> is required\n";
      return 2;
    }
    serve::Client client = serve::Client::connect(endpoint);
    client.set_timeout_ms(cli.get_int("timeout-ms", -1));
    const std::string out_path = cli.get("out", "");

    if (cli.has("metrics")) {
      const serve::StatusResponse status = client.metrics();
      if (status.retcode != serve::Retcode::kOk) {
        std::cerr << "mstep_request: metrics failed: "
                  << serve::to_string(status.retcode) << ": " << status.body
                  << '\n';
        return 1;
      }
      std::cout << status.body;
      if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
          std::cerr << "mstep_request: cannot write " << out_path << '\n';
          return 2;
        }
        out << status.body;
      }
      return 0;
    }

    if (cli.has("shutdown")) {
      const serve::StatusResponse status = client.shutdown();
      std::cout << "mstep_request: shutdown "
                << serve::to_string(status.retcode) << " (" << status.body
                << ")\n";
      return status.retcode == serve::Retcode::kOk ? 0 : 1;
    }

    // Build the solve request.
    serve::SolveRequest request;
    const std::string problem = cli.get("problem", "");
    const std::string matrix_path = cli.get("matrix", "");
    const std::string fingerprint = cli.get("fingerprint", "");
    const int sources = (problem.empty() ? 0 : 1) +
                        (matrix_path.empty() ? 0 : 1) +
                        (fingerprint.empty() ? 0 : 1);
    if (sources != 1) {
      std::cerr << "mstep_request: give exactly one of --problem, --matrix, "
                   "--fingerprint (or --metrics / --shutdown)\n";
      return 2;
    }
    const int nrhs = cli.get_int("nrhs", 1);
    if (nrhs < 1) {
      std::cerr << "mstep_request: --nrhs must be >= 1\n";
      return 2;
    }
    if (!problem.empty()) {
      request.source = serve::MatrixSource::kCatalog;
      request.problem = problem;
      // No RHS payload: the daemon uses the problem's own right-hand side.
      if (nrhs != 1) {
        std::cerr << "mstep_request: --nrhs needs the matrix dimension "
                     "client-side; use it with --matrix\n";
        return 2;
      }
    } else if (!matrix_path.empty()) {
      request.source = serve::MatrixSource::kInlineCsr;
      request.matrix = io::read_matrix_market(matrix_path).matrix;
      const auto n = static_cast<std::size_t>(request.matrix.rows());
      Vec first;
      const std::string rhs_path = cli.get("rhs", "");
      if (!rhs_path.empty()) {
        first = io::read_vector(rhs_path);
      } else {
        const Vec ones(n, 1.0);
        first.resize(n);
        request.matrix.multiply(ones, first);
      }
      request.rhs.push_back(std::move(first));
      util::Rng rng(0x6d737465);  // the driver's seed: same extra RHSs
      for (int j = 1; j < nrhs; ++j) {
        request.rhs.push_back(rng.uniform_vector(n));
      }
    } else {
      request.source = serve::MatrixSource::kFingerprint;
      request.fingerprint = serve::fingerprint_from_hex(fingerprint);
      if (nrhs != 1) {
        std::cerr << "mstep_request: --nrhs needs the matrix dimension "
                     "client-side; use it with --matrix\n";
        return 2;
      }
    }
    request.config = solver::SolverConfig::from_cli(cli).to_string();
    const std::string trace_path = cli.get("trace", "");
    request.want_trace = !trace_path.empty();

    util::Timer e2e;
    int attempts = 0;
    const serve::SolveResponse reply = client.solve_with_retry(
        request, cli.get_int("retries", 5), cli.get_int("backoff-ms", 100),
        &attempts);
    const double e2e_seconds = e2e.seconds();

    const std::string cache_verdict =
        reply.retcode != serve::Retcode::kOk ? ""
        : reply.cache_hit                    ? "hit"
                                             : "miss";
    if (reply.retcode != serve::Retcode::kOk) {
      std::cerr << "mstep_request: solve failed: "
                << serve::to_string(reply.retcode) << ": " << reply.message
                << '\n';
    } else {
      std::cout << "config: " << request.config
                << "\nfingerprint: " << serve::fingerprint_hex(reply.fingerprint)
                << "\ncache: " << cache_verdict
                << "\noperator format: " << reply.format_selected << '\n';
      util::Table t({"rhs", "iterations", "final |du|_inf", "status"});
      for (std::size_t i = 0; i < reply.results.size(); ++i) {
        const serve::RhsResult& r = reply.results[i];
        if (r.ok) {
          t.add_row({util::Table::integer(static_cast<long long>(i)),
                     util::Table::integer(r.iterations),
                     util::Table::num(r.final_delta_inf, 2),
                     r.converged ? "converged" : "NOT CONVERGED"});
        } else {
          t.add_row({util::Table::integer(static_cast<long long>(i)), "-",
                     "-", "ERROR: " + r.error});
        }
      }
      t.print(std::cout,
              std::to_string(reply.results.size()) + " right-hand side(s)");
      std::cout << "setup " << reply.setup_seconds << " s, solve "
                << reply.solve_seconds << " s, end-to-end " << e2e_seconds
                << " s, attempts " << attempts << ", request id "
                << reply.request_id << '\n';
    }

    if (!out_path.empty()) {
      util::Json iterations = util::Json::array();
      util::Json delta_inf = util::Json::array();
      util::Json errors = util::Json::array();
      for (const serve::RhsResult& r : reply.results) {
        iterations.push(r.ok ? util::Json(r.iterations) : util::Json());
        delta_inf.push(r.ok ? util::Json(r.final_delta_inf) : util::Json());
        errors.push(r.error);
      }
      util::Json j = util::Json::object();
      j.set("tool", "mstep_request")
          .set("endpoint", endpoint)
          .set("retcode", static_cast<long long>(reply.retcode))
          .set("retcode_name", serve::to_string(reply.retcode))
          .set("message", reply.message)
          .set("cache", cache_verdict)
          .set("fingerprint", serve::fingerprint_hex(reply.fingerprint))
          .set("config", request.config)
          .set("format_selected", reply.format_selected)
          .set("nrhs", static_cast<long long>(reply.results.size()))
          .set("converged", reply.all_converged())
          .set("iterations", std::move(iterations))
          .set("final_delta_inf", std::move(delta_inf))
          .set("rhs_errors", std::move(errors))
          .set("setup_seconds", reply.setup_seconds)
          .set("solve_seconds", reply.solve_seconds)
          .set("e2e_seconds", e2e_seconds)
          .set("attempts", attempts)
          .set("request_id", static_cast<long long>(reply.request_id));
      if (!write_out(out_path, j)) return 2;
      std::cout << "wrote " << out_path << '\n';
    }

    if (!trace_path.empty()) {
      if (reply.trace.empty()) {
        std::cerr << "mstep_request: server returned no trace\n";
        return 1;
      }
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "mstep_request: cannot write " << trace_path << '\n';
        return 2;
      }
      out << reply.trace << '\n';
      std::cout << "wrote trace " << trace_path << " (request id "
                << reply.request_id << ")\n";
    }

    const std::string expect = cli.get("expect-cache", "");
    if (!expect.empty() && expect != cache_verdict) {
      std::cerr << "mstep_request: expected cache=" << expect << ", got "
                << (cache_verdict.empty() ? "no solve" : cache_verdict)
                << '\n';
      return 1;
    }
    return reply.all_converged() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mstep_request: " << e.what() << '\n';
    return 2;
  }
}
