#!/usr/bin/env python3
"""Collate BENCH_*.json files into one perf-over-time table.

Every bench harness emits a JSON array of flat workload rows
(BENCH_batch.json, BENCH_scaling.json, BENCH_served.json, ...).  This
script merges any number of them — typically the committed baselines
plus the artifacts of one or more CI runs — into one table per bench,
so a perf change reads as adjacent rows instead of a diff across files:

    tools/collate_bench.py bench/baselines/*.json run1/BENCH_*.json
    tools/collate_bench.py --markdown --out summary.md \\
        --label baseline bench/baselines/BENCH_batch.json \\
        --label candidate BENCH_batch.json

Rows are grouped by bench (the file's BENCH_<name> stem), labelled by
--label in file order (default: the file's parent directory, or the
stem), and printed with the union of scalar columns in first-seen
order.  --markdown writes GitHub-flavoured tables (for
$GITHUB_STEP_SUMMARY); the default is aligned ASCII.  Use
check_bench.py, not this, to FAIL on a regression — collation is for
eyes, the gate is for exit codes.

Exit codes: 0 ok, 2 usage or I/O error (an empty input set is an
error: a collation of nothing hides a bench that stopped emitting).
"""

import argparse
import json
import os
import sys


def die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def bench_name(path):
    """BENCH_batch.json -> batch; anything else keeps its stem."""
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def default_label(path):
    parent = os.path.basename(os.path.dirname(os.path.abspath(path)))
    return parent or os.path.splitext(os.path.basename(path))[0]


def load_rows(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"collate_bench: cannot read {path}: {e}")
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list) or not all(
            isinstance(r, dict) for r in data):
        die(f"collate_bench: {path} is not a JSON array of objects")
    return data


def fmt(value):
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def render_ascii(columns, rows, title):
    widths = [max(len(c), max((len(r[i]) for r in rows), default=0))
              for i, c in enumerate(columns)]
    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = [f"== {title} ==", rule,
             "| " + " | ".join(c.ljust(w) for c, w in zip(columns, widths))
             + " |", rule]
    lines += ["| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |"
              for r in rows]
    lines.append(rule)
    return "\n".join(lines) + "\n"


def render_markdown(columns, rows, title):
    lines = [f"### {title}", "",
             "| " + " | ".join(columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    lines += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(lines) + "\n"


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="BENCH.json")
    ap.add_argument("--label", action="append", default=[],
                    help="label for the Nth file (repeatable; default: "
                         "the file's parent directory)")
    ap.add_argument("--markdown", action="store_true",
                    help="GitHub-flavoured tables instead of ASCII")
    ap.add_argument("--out", help="also write the tables to this file")
    args = ap.parse_args(argv)
    if len(args.label) > len(args.files):
        die("collate_bench: more --label values than files")

    # bench name -> (column order, [row dicts with 'source' first])
    benches = {}
    for i, path in enumerate(args.files):
        label = args.label[i] if i < len(args.label) else default_label(path)
        name = bench_name(path)
        columns, rows = benches.setdefault(name, (["source"], []))
        for row in load_rows(path):
            for key, value in row.items():
                if key == "tool" or isinstance(value, (list, dict)):
                    continue  # scalar columns only; 'tool' repeats the stem
                if key not in columns:
                    columns.append(key)
            rows.append({"source": label, **row})
    if not benches:
        die("collate_bench: nothing to collate")

    render = render_markdown if args.markdown else render_ascii
    out = []
    for name in sorted(benches):
        columns, rows = benches[name]
        table = [[fmt(r.get(c, None)) for c in columns] for r in rows]
        out.append(render(columns, table, f"bench: {name}"))
    text = "\n".join(out)
    print(text, end="")
    if args.out:
        try:
            with open(args.out, "w") as f:
                f.write(text)
        except OSError as e:
            die(f"collate_bench: cannot write {args.out}: {e}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
