#!/usr/bin/env python3
"""Collate BENCH_*.json files into one perf-over-time table.

Every bench harness emits a JSON array of flat workload rows
(BENCH_batch.json, BENCH_scaling.json, BENCH_served.json, ...).  This
script merges any number of them — typically the committed baselines
plus the artifacts of one or more CI runs — into one table per bench,
so a perf change reads as adjacent rows instead of a diff across files:

    tools/collate_bench.py bench/baselines/*.json run1/BENCH_*.json
    tools/collate_bench.py --markdown --out summary.md \\
        --label baseline bench/baselines/BENCH_batch.json \\
        --label candidate BENCH_batch.json

Rows are grouped by bench (the file's BENCH_<name> stem), labelled by
--label in file order (default: the file's parent directory, or the
stem), and printed with the union of scalar columns in first-seen
order.  --markdown writes GitHub-flavoured tables (for
$GITHUB_STEP_SUMMARY); the default is aligned ASCII.  Use
check_bench.py, not this, to FAIL on a regression — collation is for
eyes, the gate is for exit codes.

--trajectory is the perf observatory: the files are N historical runs
of the same benches in CHRONOLOGICAL order (oldest first — CI feeds it
the rolling bench-history cache plus the current run), and instead of
stacking rows it pivots each numeric metric into one trend table —
rows identified by the bench's key fields, one value column per run,
then delta and delta-% of the newest run against the previous one — so
a perf change reads as a curve, not a single red X:

    tools/collate_bench.py --trajectory --markdown \\
        bench-history/*/BENCH_corpus.json BENCH_corpus.json

Key fields default per bench (workload; scaling: workload,threads;
kernels: kernel,format,n; corpus: matrix,splitting,m) and can be
overridden with --trajectory-key BENCH=F1,F2.  Runs missing a row or a
metric show "-"; boolean and string columns never trend (the gate
checks them exactly).

Exit codes: 0 ok, 2 usage or I/O error (an empty input set is an
error: a collation of nothing hides a bench that stopped emitting).
"""

import argparse
import json
import os
import sys


def die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def bench_name(path):
    """BENCH_batch.json -> batch; anything else keeps its stem."""
    stem = os.path.splitext(os.path.basename(path))[0]
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def default_label(path):
    parent = os.path.basename(os.path.dirname(os.path.abspath(path)))
    return parent or os.path.splitext(os.path.basename(path))[0]


def load_rows(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"collate_bench: cannot read {path}: {e}")
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list) or not all(
            isinstance(r, dict) for r in data):
        die(f"collate_bench: {path} is not a JSON array of objects")
    return data


def fmt(value):
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def render_ascii(columns, rows, title):
    widths = [max(len(c), max((len(r[i]) for r in rows), default=0))
              for i, c in enumerate(columns)]
    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = [f"== {title} ==", rule,
             "| " + " | ".join(c.ljust(w) for c, w in zip(columns, widths))
             + " |", rule]
    lines += ["| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |"
              for r in rows]
    lines.append(rule)
    return "\n".join(lines) + "\n"


def render_markdown(columns, rows, title):
    lines = [f"### {title}", "",
             "| " + " | ".join(columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    lines += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(lines) + "\n"


# Default row-identity fields per bench for --trajectory; anything not
# listed keys on "workload".
TRAJECTORY_KEYS = {
    "scaling": "workload,threads",
    "kernels": "kernel,format,n",
    "corpus": "matrix,splitting,m",
}

# Default trended metrics per bench for --trajectory — the gated and
# load-bearing columns, so the step summary stays readable; a bench not
# listed here trends every numeric column.  Override per bench with
# --trajectory-metrics.
TRAJECTORY_METRICS = {
    "batch": "speedup_vs_seq_threaded,iterations_total,wall_seconds",
    "scaling": "speedup_vs_serial,iterations,wall_seconds",
    "served": "cache_hit_rate,throughput_rps,p99_ms",
    "kernels": "simd_speedup,gb_per_s",
    "corpus": "iterations,solve_seconds,setup_seconds",
}


def is_metric(value):
    """Trendable value: a real number, not a bool (bool is int in Python)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def trajectory_tables(runs, key_fields, metrics, render):
    """Pivot one bench's runs into per-metric trend tables.

    `runs` is [(label, rows)] in chronological order; `metrics` is the
    allowed metric list (None = every numeric column).  Returns the
    list of rendered tables (one per metric, in first-seen order).
    """
    bykey = []          # (label, {key tuple -> row}) per run
    key_order = []      # first-seen row identities
    metric_order = []   # first-seen numeric columns
    for label, rows in runs:
        indexed = {}
        for row in rows:
            key = tuple(row.get(f) for f in key_fields)
            if key not in indexed:
                indexed[key] = row
            if key not in key_order:
                key_order.append(key)
            for name, value in row.items():
                if name not in key_fields and name not in metric_order \
                        and is_metric(value) \
                        and (metrics is None or name in metrics):
                    metric_order.append(name)
        bykey.append((label, indexed))

    tables = []
    for metric in metric_order:
        columns = list(key_fields) + [label for label, _ in bykey] \
            + ["delta", "delta%"]
        table = []
        for key in key_order:
            cells = [fmt(v) for v in key]
            series = []
            for _, indexed in bykey:
                value = indexed.get(key, {}).get(metric)
                series.append(value if is_metric(value) else None)
                cells.append(fmt(series[-1]))
            # Delta of the newest run against the run before it; "-"
            # until two trailing runs both carry the metric.
            present = [v for v in series if v is not None]
            if len(present) >= 2 and series[-1] is not None:
                last, prev = present[-1], present[-2]
                cells.append(f"{last - prev:+.4g}")
                cells.append(f"{(last - prev) / prev:+.1%}"
                             if prev != 0 else "-")
            else:
                cells += ["-", "-"]
            table.append(cells)
        tables.append(render(columns, table,
                             f"trajectory: {metric} ({len(bykey)} runs)"))
    return tables


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="BENCH.json")
    ap.add_argument("--label", action="append", default=[],
                    help="label for the Nth file (repeatable; default: "
                         "the file's parent directory)")
    ap.add_argument("--markdown", action="store_true",
                    help="GitHub-flavoured tables instead of ASCII")
    ap.add_argument("--trajectory", action="store_true",
                    help="files are historical runs (oldest first): "
                         "render per-metric trend tables with "
                         "delta-vs-previous columns")
    ap.add_argument("--trajectory-key", action="append", default=[],
                    metavar="BENCH=F1,F2",
                    help="row-identity fields for a bench in --trajectory "
                         "mode (repeatable; defaults: workload / "
                         "scaling=workload,threads / kernels=kernel,"
                         "format,n / corpus=matrix,splitting,m)")
    ap.add_argument("--trajectory-metrics", action="append", default=[],
                    metavar="BENCH=M1,M2",
                    help="metrics to trend for a bench in --trajectory "
                         "mode (repeatable; default: the bench's gated "
                         "columns, or every numeric column for an "
                         "unknown bench)")
    ap.add_argument("--out", help="also write the tables to this file")
    args = ap.parse_args(argv)
    if len(args.label) > len(args.files):
        die("collate_bench: more --label values than files")
    trajectory_keys = dict(TRAJECTORY_KEYS)
    for spec in args.trajectory_key:
        bench, eq, fields = spec.partition("=")
        if not eq or not bench or not fields:
            die(f"collate_bench: --trajectory-key '{spec}' needs "
                f"BENCH=F1,F2")
        trajectory_keys[bench] = fields
    trajectory_metrics = dict(TRAJECTORY_METRICS)
    for spec in args.trajectory_metrics:
        bench, eq, fields = spec.partition("=")
        if not eq or not bench or not fields:
            die(f"collate_bench: --trajectory-metrics '{spec}' needs "
                f"BENCH=M1,M2")
        trajectory_metrics[bench] = fields

    render = render_markdown if args.markdown else render_ascii
    out = []
    if args.trajectory:
        # bench name -> [(run label, rows)] in file (= chronological) order
        benches = {}
        for i, path in enumerate(args.files):
            label = args.label[i] if i < len(args.label) \
                else default_label(path)
            benches.setdefault(bench_name(path), []).append(
                (label, load_rows(path)))
        if not benches:
            die("collate_bench: nothing to collate")
        for name in sorted(benches):
            fields = [f for f in
                      trajectory_keys.get(name, "workload").split(",") if f]
            allowed = trajectory_metrics.get(name)
            if allowed is not None:
                allowed = [m for m in allowed.split(",") if m]
            out.append((f"## trajectory: {name}\n\n" if args.markdown
                        else f"#### trajectory: {name}\n\n"))
            out.extend(trajectory_tables(benches[name], fields, allowed,
                                         render))
    else:
        # bench name -> (column order, [row dicts with 'source' first])
        benches = {}
        for i, path in enumerate(args.files):
            label = args.label[i] if i < len(args.label) \
                else default_label(path)
            name = bench_name(path)
            columns, rows = benches.setdefault(name, (["source"], []))
            for row in load_rows(path):
                for key, value in row.items():
                    if key == "tool" or isinstance(value, (list, dict)):
                        continue  # scalar columns only; 'tool' repeats stem
                    if key not in columns:
                        columns.append(key)
                rows.append({"source": label, **row})
        if not benches:
            die("collate_bench: nothing to collate")
        for name in sorted(benches):
            columns, rows = benches[name]
            table = [[fmt(r.get(c, None)) for c in columns] for r in rows]
            out.append(render(columns, table, f"bench: {name}"))
    text = "\n".join(out)
    print(text, end="")
    if args.out:
        try:
            with open(args.out, "w") as f:
                f.write(text)
        except OSError as e:
            die(f"collate_bench: cannot write {args.out}: {e}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
