#!/usr/bin/env python3
"""Run the corpus: every cached manifest matrix x a splitting/m sweep.

Drives the mstep_solve binary over each matrix materialized by
tools/fetch_corpus.py, always with --format=auto, validates every
driver report in-process with check_report.py, and flattens the results
into one BENCH_corpus.json — the document the CI corpus gate diffs
against bench/baselines/BENCH_corpus.json:

    tools/run_corpus.py --out BENCH_corpus.json
    tools/check_bench.py \
        --baseline bench/baselines/BENCH_corpus.json \
        --candidate BENCH_corpus.json \
        --key matrix,splitting,m \
        --metric iterations:lower:exact \
        --metric solve_seconds:lower:tol1.0 \
        --require converged=true

Iteration counts of m-step PCG are machine-independent — the paper's
point — so they gate EXACTLY; wall-clock gates loosely (tol1.0 = a
doubling fails), because the corpus solves are sub-millisecond and
absolute sub-ms timings cannot hold a tight tolerance on a shared
runner — the iteration counts carry the precision.
Each sweep point runs --repeats times (default 5) and keeps the
best-of wall-clock and setup timings — sub-millisecond solves on the
small corpus matrices are too noisy for a single shot — while the
iteration count, final residual, and format choice must be identical
across the repeats (a free determinism check on every CI run).

The default sweep is jacobi:m=2 plus ssor:m=1,2,4 (override with
--sweep SPLITTING:M, repeatable).  Matrices absent from the cache
(un-fetched remote entries — e.g. CI after a network failure, or any
offline run) are skipped with a notice unless --require-all; the
committed baseline only carries rows for the always-available generated
tier plus whatever remote rows were present when it was refreshed, and
check_bench only requires baseline rows to exist, so a skipped remote
matrix never fakes a pass nor blocks one.

Consistency checks per run: the report must converge, n/nnz must match
the manifest, and --format=auto must select the manifest's
expected_format.  Mismatches are hard failures for pinned entries,
warnings for unpinned ones (their metadata is advisory until
fetch_corpus.py --pin).

Exit codes: 0 all runs ok and at least one matrix ran, 1 any run or
consistency failure (or nothing ran), 2 usage or I/O error.
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_report  # noqa: E402
import fetch_corpus  # noqa: E402

DEFAULT_SWEEP = ["jacobi:2", "ssor:1", "ssor:2", "ssor:4"]


def die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def parse_sweep(specs):
    sweep = []
    for spec in specs:
        splitting, sep, m = spec.partition(":")
        if not sep or not splitting or not m.isdigit():
            die(f"run_corpus: --sweep '{spec}' needs SPLITTING:M")
        sweep.append((splitting, int(m)))
    return sweep


def run_one(driver, path, splitting, m, timeout):
    """One driver solve; returns (report dict | None, error string)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out = tmp.name
    try:
        cmd = fetch_corpus.driver_cmd(driver) + [
            f"--matrix={path}", f"--splitting={splitting}", f"--m={m}",
            "--format=auto", f"--out={out}"]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=timeout)
        except subprocess.TimeoutExpired:
            return None, f"driver timed out after {timeout}s"
        if proc.returncode != 0:
            return None, (f"driver exit {proc.returncode}: "
                          f"{proc.stderr.strip() or proc.stdout.strip()}")
        # The report must satisfy the full report schema before any row
        # is extracted from it — a malformed report fails loudly here,
        # not as a KeyError three tools downstream.
        if check_report.main([out, "--require", "converged=true"]) != 0:
            return None, "report failed check_report.py validation"
        with open(out) as f:
            return json.load(f), ""
    except (OSError, json.JSONDecodeError) as e:
        return None, str(e)
    finally:
        try:
            os.unlink(out)
        except OSError:
            pass


def main(argv):
    root = fetch_corpus.repo_root()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--manifest",
                    default=os.path.join(root, "bench/corpus/manifest.json"))
    ap.add_argument("--cache",
                    default=os.path.join(root, "bench/corpus/cache"))
    ap.add_argument("--driver",
                    default=os.path.join(root, "build/mstep_solve"))
    ap.add_argument("--out", default="BENCH_corpus.json")
    ap.add_argument("--sweep", action="append", default=[],
                    metavar="SPLITTING:M",
                    help=f"sweep points (default: {' '.join(DEFAULT_SWEEP)})")
    ap.add_argument("--only", action="append", default=[], metavar="NAME",
                    help="restrict to the named matrices (repeatable)")
    ap.add_argument("--require-all", action="store_true",
                    help="fail (exit 1) when any manifest matrix is "
                         "missing from the cache instead of skipping it")
    ap.add_argument("--repeats", type=int, default=5,
                    help="driver runs per sweep point; timings are "
                         "best-of, everything else must be identical")
    ap.add_argument("--timeout", type=float, default=300.0,
                    help="per-solve driver timeout in seconds")
    args = ap.parse_args(argv)

    manifest = fetch_corpus.load_manifest(args.manifest)
    entries = manifest["matrices"]
    if args.only:
        known = {m["name"] for m in entries}
        for name in args.only:
            if name not in known:
                die(f"run_corpus: --only {name}: not in the manifest")
        entries = [m for m in entries if m["name"] in args.only]
    sweep = parse_sweep(args.sweep or DEFAULT_SWEEP)

    rows = []
    failures = []
    warnings = []
    skipped = []
    for entry in entries:
        name = entry["name"]
        path = fetch_corpus.cache_path(args.cache, entry)
        if not os.path.isfile(path):
            skipped.append(name)
            continue
        pinned = entry.get("pinned", False)
        if pinned:
            actual = hashlib.sha256(open(path, "rb").read()).hexdigest()
            if actual != entry["sha256"]:
                failures.append(
                    f"{name}: cache sha256 {actual} != pinned "
                    f"{entry['sha256']} — stale or corrupt cache")
                continue
        for splitting, m in sweep:
            label = f"{name} x {splitting}:m={m}"
            reports = []
            error = ""
            for _ in range(max(1, args.repeats)):
                report, error = run_one(args.driver, path, splitting, m,
                                        args.timeout)
                if report is None:
                    break
                reports.append(report)
            if not reports or report is None:
                failures.append(f"{label}: {error}")
                continue
            # The solve must be bit-for-bit repeatable; only wall-clock
            # may vary between repeats (and gets best-of treatment).
            nondeterministic = False
            for later in reports[1:]:
                for field in ("iterations", "final_delta_inf",
                              "format_selected", "converged"):
                    if later[field] != reports[0][field]:
                        failures.append(
                            f"{label}: {field} differs across repeats: "
                            f"{reports[0][field]} vs {later[field]}")
                        nondeterministic = True
            if nondeterministic:
                continue
            report = reports[0]
            best_setup = min(r["setup_seconds"] for r in reports)
            best_solve = min(r["wall_seconds"] for r in reports)
            problems = []
            for field in ("n", "nnz"):
                want = entry.get(field)
                if want is not None and report[field] != want:
                    problems.append(f"{field} = {report[field]}, manifest "
                                    f"says {want}")
            want_fmt = entry.get("expected_format")
            if want_fmt is not None and report["format_selected"] != want_fmt:
                problems.append(f"format_selected = "
                                f"{report['format_selected']}, manifest "
                                f"expects {want_fmt}")
            for p in problems:
                if pinned:
                    failures.append(f"{label}: {p}")
                else:
                    warnings.append(f"{label}: {p} (unpinned — advisory)")
            if problems and pinned:
                continue
            rows.append({
                "tool": "bench_corpus",
                "matrix": name,
                "kind": entry["kind"],
                "splitting": splitting,
                "m": m,
                "config": report["config"],
                "n": report["n"],
                "nnz": report["nnz"],
                "format_selected": report["format_selected"],
                # nrhs=1 throughout the corpus: one iteration count and
                # one final residual per run, flattened out of the
                # report's per-RHS lists.
                "iterations": report["iterations"][0],
                "converged": report["converged"],
                "final_delta_inf": report["final_delta_inf"][0],
                # kappa(M^-1 K) proxy from the fitted alphas over the
                # spectrum estimate — how the paper reads iteration counts;
                # null for m=0 or a degenerate eigenvalue map.
                "condition_proxy": report.get("condition_proxy"),
                "setup_seconds": best_setup,
                "solve_seconds": best_solve,
            })
            print(f"  ok   {label}: {report['format_selected']}, "
                  f"{report['iterations'][0]} iteration(s)")

    rows.sort(key=lambda r: (r["matrix"], r["splitting"], r["m"]))
    try:
        with open(args.out, "w") as f:
            json.dump(rows, f, indent=1)
            f.write("\n")
    except OSError as e:
        die(f"run_corpus: cannot write {args.out}: {e}")

    ran = len(entries) - len(skipped)
    print(f"run_corpus: {ran}/{len(entries)} matrices, {len(rows)} row(s), "
          f"{len(failures)} failure(s), {len(warnings)} warning(s) "
          f"-> {args.out}")
    if skipped:
        print(f"  notice: skipped (not in cache — run fetch_corpus.py): "
              f"{', '.join(skipped)}")
    for w in warnings:
        print(f"  WARN: {w}")
    for f in failures:
        print(f"  FAIL: {f}", file=sys.stderr)
    if args.require_all and skipped:
        print(f"  FAIL: --require-all with {len(skipped)} matrix(es) "
              f"missing from the cache", file=sys.stderr)
        return 1
    if failures or ran == 0:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
