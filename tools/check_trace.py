#!/usr/bin/env python3
"""Validate an mstep Chrome trace-event JSON file (docs/observability.md).

CI's trace-smoke steps run mstep_solve/mstep_request with --trace, then
feed the artifact through this script:

    tools/check_trace.py trace.json \
        --require-span prepare --require-span solve \
        --require-span iteration --require-span sweep
    tools/check_trace.py served_trace.json --require-correlation 1

Checks, in order:

  * the document is an object with a `traceEvents` array, a `counters`
    object, and an integer `dropped_events` gauge;
  * every event is a complete-duration event (ph "X": string name,
    integer-ish ts >= 0 and dur >= 0, pid, tid) or a thread_name
    metadata event (ph "M");
  * per thread track, events appear in non-decreasing END-time order —
    the writer records a span when it CLOSES, so file order is end-time
    order whatever the ring buffers dropped;
  * per thread track, spans nest strictly: any two spans are disjoint
    or one contains the other (closed intervals — microsecond
    truncation may make a child share its parent's boundary);
  * --require-span NAME (repeatable): at least one span named NAME;
  * --require-correlation ID: every span carries args.correlation == ID
    (how the served round-trip proves request-id correlation).

Exit codes: 0 ok, 1 validation failure, 2 usage or I/O error.
"""

import argparse
import json
import sys


def die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def is_count(v):
    """JSON integer (bool is an int subclass in Python — reject it)."""
    return type(v) is int


def is_num(v):
    return type(v) in (int, float)


def check_event(i, e, failures):
    """Shape-check one traceEvents entry; returns its ph, or None."""
    where = f"traceEvents[{i}]: "
    if not isinstance(e, dict):
        failures.append(f"{where}not a JSON object")
        return None
    ph = e.get("ph")
    if ph not in ("X", "M"):
        failures.append(f"{where}ph must be 'X' or 'M', got {ph!r}")
        return None
    if not isinstance(e.get("name"), str) or not e["name"]:
        failures.append(f"{where}needs a non-empty string 'name'")
        return None
    for field in ("pid", "tid"):
        if not is_count(e.get(field)):
            failures.append(f"{where}'{field}' must be an integer")
            return None
    if ph == "M":
        if e["name"] != "thread_name":
            failures.append(
                f"{where}metadata event must be 'thread_name', got "
                f"'{e['name']}'")
        if not isinstance(e.get("args", {}).get("name"), str):
            failures.append(f"{where}thread_name needs args.name")
        return "M"
    for field in ("ts", "dur"):
        if not is_num(e.get(field)) or e[field] < 0:
            failures.append(f"{where}'{field}' must be a number >= 0")
            return None
    return "X"


def check_track(tid, spans, failures):
    """End-time monotonicity + strict nesting for one thread's spans.

    File order is END-time order (spans are recorded when they close),
    so children precede their parents.  The sweep keeps a stack of
    already-closed spans: a later span either swallows the stack top
    (its start is at or before the top's — containment, since its end
    is no earlier), starts after the top ended (disjoint), or fails.
    """
    prev_end = None
    stack = []  # (name, ts, end) of closed spans not yet contained
    for i, e in spans:
        where = f"traceEvents[{i}] (tid {tid}, '{e['name']}'): "
        ts, end = e["ts"], e["ts"] + e["dur"]
        if prev_end is not None and end < prev_end:
            failures.append(
                f"{where}end time {end} goes backwards (previous span on "
                f"this track ended at {prev_end}); spans must be recorded "
                f"in close order")
        prev_end = max(end, prev_end or 0)
        while stack and stack[-1][1] >= ts:
            stack.pop()  # contained child of this span
        if stack and stack[-1][2] > ts:
            pname, pts, pend = stack[-1]
            failures.append(
                f"{where}[{ts}, {end}] overlaps '{pname}' "
                f"[{pts}, {pend}] without nesting inside it")
            continue
        stack.append((e["name"], ts, end))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace")
    ap.add_argument("--require-span", action="append", default=[],
                    metavar="NAME",
                    help="at least one span named NAME (repeatable)")
    ap.add_argument("--require-correlation", type=int, default=None,
                    metavar="ID",
                    help="every span must carry args.correlation == ID")
    args = ap.parse_args(argv)

    try:
        with open(args.trace) as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"check_trace: cannot read {args.trace}: {e}")

    failures = []
    if not isinstance(document, dict):
        die(f"check_trace: {args.trace} is not a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        die(f"check_trace: {args.trace} has no traceEvents array")
    if not isinstance(document.get("counters"), dict):
        failures.append("missing 'counters' object")
    if not is_count(document.get("dropped_events")):
        failures.append("missing integer 'dropped_events'")

    # Group the duration events by thread track, keeping file order: the
    # tracer writes each buffer's spans in chronological close order.
    tracks = {}
    span_names = set()
    for i, e in enumerate(events):
        if check_event(i, e, failures) != "X":
            continue
        tracks.setdefault(e["tid"], []).append((i, e))
        span_names.add(e["name"])
        if args.require_correlation is not None:
            got = e.get("args", {}).get("correlation")
            if got != args.require_correlation:
                failures.append(
                    f"traceEvents[{i}]: correlation {got!r}, required "
                    f"{args.require_correlation}")

    for tid, spans in sorted(tracks.items()):
        check_track(tid, spans, failures)

    for name in args.require_span:
        if name not in span_names:
            failures.append(f"no span named '{name}' "
                            f"(saw: {sorted(span_names) or 'none'})")

    nspans = sum(len(s) for s in tracks.values())
    print(f"check_trace: {nspans} span(s) on {len(tracks)} track(s), "
          f"{len(args.require_span)} required name(s), "
          f"{len(failures)} failure(s) ({args.trace})")
    for f in failures:
        print(f"  FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
