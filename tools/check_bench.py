#!/usr/bin/env python3
"""Compare a benchmark JSON against a committed baseline with tolerance.

The CI perf gate runs the bench harnesses in smoke mode and feeds their
BENCH_*.json through this script:

    tools/check_bench.py \
        --baseline bench/baselines/BENCH_batch.json \
        --candidate BENCH_batch.json \
        --key workload \
        --metric speedup_vs_seq_threaded:higher \
        --require bitwise_match_serial=true --require converged=true

Both files hold a JSON array of flat objects.  Rows are matched by the
--key fields; every baseline row must exist in the candidate.  For each
--metric NAME:DIRECTION the candidate value must be within --tolerance of
the baseline: for "higher"-is-better metrics, candidate >= baseline * (1 -
tol); for "lower", candidate <= baseline * (1 + tol).  --require NAME=VALUE
asserts an exact (stringified, case-insensitive) field value — the
machine-independent hard checks (bitwise match, convergence).

The default tolerance is 0.40 (fail on a >40% regression) — THE perf-gate
threshold, stated in bench/baselines/README.md; pass --tolerance to
override for ad-hoc comparisons.  Wall-clock ratios on shared CI runners
are noisy, hence the wide default; iteration counts are exact and do the
fine-grained gating regardless.

Only scale-free metrics (speedups, iteration counts) belong in the gate:
absolute wall seconds differ across runner generations.  To refresh the
baselines after an intentional perf change, rerun the smoke commands (see
.github/workflows/ci.yml, perf-gate job) and commit the regenerated files
under bench/baselines/.

Exit codes: 0 ok, 1 regression/mismatch, 2 usage or I/O error.
"""

import argparse
import json
import sys


def die(message):
    """Usage or I/O error: print and exit 2 (regressions exit 1)."""
    print(message, file=sys.stderr)
    sys.exit(2)


def parse_args(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--key", default="workload",
                    help="comma-separated fields identifying a row")
    ap.add_argument("--metric", action="append", default=[],
                    metavar="NAME:higher|lower",
                    help="relative-tolerance metric check (repeatable)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="exact field check on candidate rows (repeatable)")
    ap.add_argument("--tolerance", type=float, default=0.40,
                    help="allowed relative regression (default 0.40 = 40%%)")
    return ap.parse_args(argv)


def load_rows(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"check_bench: cannot read {path}: {e}")
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        die(f"check_bench: {path} is not a JSON array of objects")
    return rows


def row_key(row, fields):
    try:
        return tuple((f, row[f]) for f in fields)
    except KeyError as e:
        die(f"check_bench: row {row} lacks key field {e}")


def main(argv):
    args = parse_args(argv)
    key_fields = [f for f in args.key.split(",") if f]
    metrics = []
    for spec in args.metric:
        name, _, direction = spec.partition(":")
        if direction not in ("higher", "lower"):
            die(f"check_bench: metric '{spec}' needs :higher or :lower")
        metrics.append((name, direction))
    requires = []
    for spec in args.require:
        name, eq, value = spec.partition("=")
        if not eq:
            die(f"check_bench: require '{spec}' needs NAME=VALUE")
        requires.append((name, value))

    baseline = {row_key(r, key_fields): r for r in load_rows(args.baseline)}
    candidate = {row_key(r, key_fields): r for r in load_rows(args.candidate)}

    failures = []
    checks = 0
    for key, base_row in baseline.items():
        label = ", ".join(f"{f}={v}" for f, v in key)
        cand_row = candidate.get(key)
        if cand_row is None:
            failures.append(f"[{label}] missing from candidate")
            continue
        for name, value in requires:
            checks += 1
            got = str(cand_row.get(name)).lower()
            if got != value.lower():
                failures.append(f"[{label}] {name} = {got}, required {value}")
        for name, direction in metrics:
            if name not in base_row:
                die(f"check_bench: baseline [{label}] lacks '{name}'")
            if name not in cand_row:
                failures.append(f"[{label}] candidate lacks '{name}'")
                continue
            checks += 1
            base = float(base_row[name])
            cand = float(cand_row[name])
            if direction == "higher":
                limit = base * (1.0 - args.tolerance)
                ok = cand >= limit
                verdict = f">= {limit:.4g}"
            else:
                limit = base * (1.0 + args.tolerance)
                ok = cand <= limit
                verdict = f"<= {limit:.4g}"
            status = "ok  " if ok else "FAIL"
            print(f"  {status} [{label}] {name}: candidate {cand:.4g} vs "
                  f"baseline {base:.4g} (need {verdict})")
            if not ok:
                failures.append(
                    f"[{label}] {name} regressed: {cand:.4g} vs baseline "
                    f"{base:.4g} (tolerance {args.tolerance:.0%})")

    print(f"check_bench: {checks} checks, {len(failures)} failure(s) "
          f"({args.baseline} vs {args.candidate})")
    for f in failures:
        print(f"  REGRESSION: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
