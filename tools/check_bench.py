#!/usr/bin/env python3
"""Compare a benchmark JSON against a committed baseline with tolerance.

The CI perf gate runs the bench harnesses in smoke mode and feeds their
BENCH_*.json through this script:

    tools/check_bench.py \
        --baseline bench/baselines/BENCH_batch.json \
        --candidate BENCH_batch.json \
        --key workload \
        --metric speedup_vs_seq_threaded:higher \
        --require bitwise_match_serial=true --require converged=true

Both files hold a JSON array of flat objects.  Rows are matched by the
--key fields; every baseline row must exist in the candidate (the
failure summary lists every unmatched baseline key).  Each --metric is

    NAME:DIRECTION[:exact|:tolN]

DIRECTION is "higher" or "lower" (which way is better).  The optional
third part picks the comparison mode per metric:

    (none)   the global --tolerance applies: for "higher" metrics the
             candidate must be >= baseline * (1 - tol); for "lower",
             <= baseline * (1 + tol)
    :exact   the candidate must equal the baseline exactly — the mode
             for machine-independent integer metrics (iteration
             counts): any drift, in either direction, fails.  A lower
             iteration count is still a baseline change and must be
             committed deliberately, not slip through silently.
    :tolN    a per-metric relative tolerance overriding the global one,
             e.g. speedup:higher:tol0.25

--require NAME=VALUE asserts an exact (stringified, case-insensitive)
field value — the machine-independent hard checks (bitwise match,
convergence).

The default tolerance is 0.40 (fail on a >40% regression) — THE
perf-gate threshold, stated in bench/baselines/README.md; pass
--tolerance to override for ad-hoc comparisons.  Wall-clock ratios on
shared CI runners are noisy, hence the wide default; iteration counts
are exact (":exact") and do the fine-grained gating regardless.

Only scale-free metrics (speedups, iteration counts) belong in the gate:
absolute wall seconds differ across runner generations.  To refresh the
baselines after an intentional perf change, rerun the smoke commands (see
.github/workflows/ci.yml, perf-gate job) and commit the regenerated files
under bench/baselines/.

Exit codes: 0 ok, 1 regression/mismatch, 2 usage or I/O error.
"""

import argparse
import json
import sys


def die(message):
    """Usage or I/O error: print and exit 2 (regressions exit 1)."""
    print(message, file=sys.stderr)
    sys.exit(2)


def parse_metric(spec):
    """'NAME:DIRECTION[:exact|:tolN]' -> (name, direction, mode).

    mode is None (use the global tolerance), "exact", or a float (a
    per-metric tolerance).  Raises ValueError with the reason.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError("needs NAME:higher|lower[:exact|:tolN]")
    name, direction = parts[0], parts[1]
    if direction not in ("higher", "lower"):
        raise ValueError("direction must be :higher or :lower")
    if len(parts) == 2:
        return name, direction, None
    mode = parts[2]
    if mode == "exact":
        return name, direction, "exact"
    if mode.startswith("tol"):
        try:
            tol = float(mode[len("tol"):])
        except ValueError:
            raise ValueError(f"bad tolerance '{mode}'") from None
        if tol < 0:
            raise ValueError(f"negative tolerance '{mode}'")
        return name, direction, tol
    raise ValueError(f"unknown mode ':{mode}' (want :exact or :tolN)")


def parse_args(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--key", default="workload",
                    help="comma-separated fields identifying a row")
    ap.add_argument("--metric", action="append", default=[],
                    metavar="NAME:higher|lower[:exact|:tolN]",
                    help="metric check (repeatable); :exact requires "
                         "equality, :tolN overrides --tolerance")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="exact field check on candidate rows (repeatable)")
    ap.add_argument("--tolerance", type=float, default=0.40,
                    help="allowed relative regression (default 0.40 = 40%%)")
    return ap.parse_args(argv)


def load_rows(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"check_bench: cannot read {path}: {e}")
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        die(f"check_bench: {path} is not a JSON array of objects")
    return rows


def row_key(row, fields):
    try:
        return tuple((f, row[f]) for f in fields)
    except KeyError as e:
        die(f"check_bench: row {row} lacks key field {e}")


def main(argv):
    args = parse_args(argv)
    key_fields = [f for f in args.key.split(",") if f]
    metrics = []
    for spec in args.metric:
        try:
            metrics.append(parse_metric(spec))
        except ValueError as e:
            die(f"check_bench: metric '{spec}': {e}")
    requires = []
    for spec in args.require:
        name, eq, value = spec.partition("=")
        if not eq:
            die(f"check_bench: require '{spec}' needs NAME=VALUE")
        requires.append((name, value))

    baseline = {row_key(r, key_fields): r for r in load_rows(args.baseline)}
    candidate = {row_key(r, key_fields): r for r in load_rows(args.candidate)}

    failures = []
    unmatched = []
    checks = 0
    for key, base_row in baseline.items():
        label = ", ".join(f"{f}={v}" for f, v in key)
        cand_row = candidate.get(key)
        if cand_row is None:
            unmatched.append(label)
            continue
        for name, value in requires:
            checks += 1
            got = str(cand_row.get(name)).lower()
            if got != value.lower():
                failures.append(f"[{label}] {name} = {got}, required {value}")
        for name, direction, mode in metrics:
            if name not in base_row:
                die(f"check_bench: baseline [{label}] lacks '{name}'")
            if name not in cand_row:
                failures.append(f"[{label}] candidate lacks '{name}'")
                continue
            checks += 1
            base = float(base_row[name])
            cand = float(cand_row[name])
            if mode == "exact":
                ok = cand == base
                verdict = f"== {base:.10g}"
            else:
                tol = args.tolerance if mode is None else mode
                if direction == "higher":
                    limit = base * (1.0 - tol)
                    ok = cand >= limit
                    verdict = f">= {limit:.4g}"
                else:
                    limit = base * (1.0 + tol)
                    ok = cand <= limit
                    verdict = f"<= {limit:.4g}"
            status = "ok  " if ok else "FAIL"
            print(f"  {status} [{label}] {name}: candidate {cand:.4g} vs "
                  f"baseline {base:.4g} (need {verdict})")
            if not ok:
                if mode == "exact":
                    failures.append(
                        f"[{label}] {name} must match the baseline exactly: "
                        f"{cand:.10g} vs {base:.10g} — iteration-count-style "
                        f"metrics are machine-independent; an intentional "
                        f"change needs a committed baseline refresh")
                else:
                    failures.append(
                        f"[{label}] {name} regressed: {cand:.4g} vs baseline "
                        f"{base:.4g} (tolerance {tol:.0%})")

    if unmatched:
        failures.append(
            f"{len(unmatched)} baseline row(s) have no candidate match "
            f"(key fields: {','.join(key_fields)}): "
            + "; ".join(f"[{u}]" for u in unmatched))
    extra = len(candidate.keys() - baseline.keys())
    if extra:
        print(f"  note: candidate has {extra} row(s) not in the baseline "
              f"(allowed — only baseline rows gate)")

    print(f"check_bench: {checks} checks, {len(failures)} failure(s) "
          f"({args.baseline} vs {args.candidate})")
    for f in failures:
        print(f"  REGRESSION: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
