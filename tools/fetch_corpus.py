#!/usr/bin/env python3
"""Materialize the real-matrix corpus cache from bench/corpus/manifest.json.

The manifest is the committed, curated list of corpus matrices — small
and medium SPD systems run through mstep_solve by tools/run_corpus.py
and gated in CI (see docs/benchmarking.md).  Every entry caches as one
canonical Matrix Market file, `bench/corpus/cache/<name>.mtx`, and two
entry kinds exist:

  kind "suitesparse"  downloaded from the SuiteSparse collection
                      (`url` is the MM .tar.gz; the contained
                      <name>/<name>.mtx is extracted into the cache)
  kind "generated"    exported deterministically by the mstep_solve
                      driver (`generator` is a catalog spec run with
                      --export-matrix) — the offline tier: it needs no
                      network, so the committed baseline gates it on
                      every runner

Verification is uniform: `sha256` is the checksum OF THE CACHED .mtx
(post-extraction), so --check-only verifies both kinds without caring
where the bytes came from.  Entries start life unpinned (sha256 null):
this container/CI cannot know a download's hash before the first
successful fetch.  `--pin` is the trust-on-first-use step — it fills
sha256, n, nnz and expected_format from the fetched file plus one
driver probe, and rewrites the manifest; a maintainer reviews and
commits the pinned manifest, after which any byte drift is a hard
failure.

    tools/fetch_corpus.py                      # materialize everything
    tools/fetch_corpus.py --offline            # generated tier only
    tools/fetch_corpus.py --check-only         # verify cache, no network
    tools/fetch_corpus.py --pin                # fill + rewrite checksums
    tools/fetch_corpus.py --only nos4 --only bcsstk01

Exit codes: 0 ok, 1 verification failure (a cached/downloaded file does
not match its pinned checksum — corruption, never skipped), 2 usage or
manifest error, 3 network failure only (every non-network check passed;
CI's corpus job downgrades this to a skipped-with-notice step so flaky
mirrors cannot block merges).
"""

import argparse
import hashlib
import io
import json
import os
import re
import shutil
import subprocess
import sys
import tarfile
import tempfile
import urllib.error
import urllib.request

VALID_NAME = re.compile(r"^[A-Za-z0-9_.-]+$")
VALID_SHA = re.compile(r"^[0-9a-f]{64}$")
FORMATS = ("csr", "dia", "sell")
SCHEMA_ID = "mstep-corpus-manifest-v1"
FETCH_TIMEOUT_SECONDS = 60


def die(message):
    print(message, file=sys.stderr)
    sys.exit(2)


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def sha256_file(path):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def load_manifest(path):
    try:
        with open(path) as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"fetch_corpus: cannot read {path}: {e}")
    errors = validate_manifest(manifest)
    if errors:
        for e in errors:
            print(f"  MANIFEST: {e}", file=sys.stderr)
        die(f"fetch_corpus: {path} failed manifest validation "
            f"({len(errors)} error(s))")
    return manifest


def validate_manifest(manifest):
    """Schema check; returns a list of error strings (empty = valid)."""
    errors = []
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    if manifest.get("schema") != SCHEMA_ID:
        errors.append(f"schema must be '{SCHEMA_ID}', "
                      f"got {manifest.get('schema')!r}")
    matrices = manifest.get("matrices")
    if not isinstance(matrices, list) or not matrices:
        return errors + ["'matrices' must be a non-empty array"]
    seen = set()
    for i, m in enumerate(matrices):
        where = f"matrices[{i}]"
        if not isinstance(m, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        name = m.get("name")
        where = f"matrices[{i}] ({name})"
        if not isinstance(name, str) or not VALID_NAME.match(name or "-"):
            errors.append(f"{where}: bad 'name' {name!r}")
        elif name in seen:
            errors.append(f"{where}: duplicate name")
        else:
            seen.add(name)
        kind = m.get("kind")
        if kind == "suitesparse":
            url = m.get("url")
            if not isinstance(url, str) or not url.startswith("https://") \
                    or not url.endswith(".tar.gz"):
                errors.append(f"{where}: 'url' must be an https .tar.gz")
            if not isinstance(m.get("group"), str):
                errors.append(f"{where}: suitesparse entry needs 'group'")
        elif kind == "generated":
            gen = m.get("generator")
            if not isinstance(gen, str) or not gen:
                errors.append(f"{where}: generated entry needs 'generator'")
        else:
            errors.append(f"{where}: kind must be 'suitesparse' or "
                          f"'generated', got {kind!r}")
        sha = m.get("sha256")
        if sha is not None and (not isinstance(sha, str)
                                or not VALID_SHA.match(sha)):
            errors.append(f"{where}: sha256 must be 64 lowercase hex "
                          f"chars or null")
        for field in ("n", "nnz"):
            v = m.get(field)
            if v is not None and (type(v) is not int or v <= 0):
                errors.append(f"{where}: '{field}' must be a positive "
                              f"int or null")
        if m.get("spd") is not True:
            errors.append(f"{where}: corpus matrices must declare "
                          f"'spd': true")
        fmt = m.get("expected_format")
        if fmt is not None and fmt not in FORMATS:
            errors.append(f"{where}: expected_format must be one of "
                          f"{FORMATS} or null")
        pinned = m.get("pinned")
        if type(pinned) is not bool:
            errors.append(f"{where}: 'pinned' must be true or false")
        elif pinned and sha is None:
            errors.append(f"{where}: pinned entry lacks sha256")
    return errors


def cache_path(cache_dir, entry):
    return os.path.join(cache_dir, entry["name"] + ".mtx")


def verify(path, entry, failures):
    """Check a cached file against a pinned sha256.  Returns status str."""
    if not os.path.isfile(path):
        return "absent"
    if entry.get("sha256") is None:
        return "cached (unpinned)"
    actual = sha256_file(path)
    if actual != entry["sha256"]:
        failures.append(
            f"{entry['name']}: cache file {path} sha256 {actual} does not "
            f"match the pinned {entry['sha256']} — delete the file and "
            f"re-fetch, or re-pin deliberately")
        return "CORRUPT"
    return "verified"


def driver_cmd(driver):
    return [sys.executable, driver] if driver.endswith(".py") else [driver]


def generate(entry, path, driver):
    """Export a catalog matrix through the driver; raises RuntimeError."""
    cmd = driver_cmd(driver) + [
        f"--problem={entry['generator']}",
        f"--export-matrix={path}", "--export-only"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0 or not os.path.isfile(path):
        raise RuntimeError(
            f"driver export failed (exit {proc.returncode}): "
            f"{proc.stderr.strip() or proc.stdout.strip()}")


def download(entry, path, mirror):
    """Fetch the SuiteSparse tarball and extract <name>/<name>.mtx.

    Network problems raise urllib.error.URLError/OSError; a tarball
    without the expected member raises RuntimeError (NOT a network
    failure — the mirror served the wrong bytes).
    """
    url = entry["url"]
    if mirror:
        url = mirror.rstrip("/") + "/" + url.split("/MM/", 1)[-1]
    request = urllib.request.Request(
        url, headers={"User-Agent": "mstep-fetch-corpus/1.0"})
    with urllib.request.urlopen(request,
                                timeout=FETCH_TIMEOUT_SECONDS) as response:
        blob = response.read()
    member = f"{entry['name']}/{entry['name']}.mtx"
    with tarfile.open(fileobj=io.BytesIO(blob), mode="r:gz") as tar:
        try:
            extracted = tar.extractfile(member)
        except KeyError:
            extracted = None
        if extracted is None:
            names = ", ".join(tar.getnames()[:5])
            raise RuntimeError(
                f"{url} holds no member '{member}' (has: {names}, ...)")
        with tempfile.NamedTemporaryFile(
                dir=os.path.dirname(path), delete=False) as tmp:
            shutil.copyfileobj(extracted, tmp)
            tmp_path = tmp.name
    os.replace(tmp_path, path)


def probe(entry, path, driver):
    """One driver solve with --format=auto to learn n/nnz/format.

    Returns the report dict.  Exit 1 (ran, did not converge) still
    yields a usable report; anything else raises RuntimeError.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out = tmp.name
    try:
        cmd = driver_cmd(driver) + [
            f"--matrix={path}", "--splitting=ssor", "--m=2",
            "--format=auto", f"--out={out}"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode not in (0, 1):
            raise RuntimeError(
                f"driver probe failed (exit {proc.returncode}): "
                f"{proc.stderr.strip() or proc.stdout.strip()}")
        with open(out) as f:
            return json.load(f)
    finally:
        os.unlink(out)


def main(argv):
    root = repo_root()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--manifest",
                    default=os.path.join(root, "bench/corpus/manifest.json"))
    ap.add_argument("--cache",
                    default=os.path.join(root, "bench/corpus/cache"))
    ap.add_argument("--driver",
                    default=os.path.join(root, "build/mstep_solve"),
                    help="mstep_solve binary (generated tier + --pin probe)")
    ap.add_argument("--check-only", action="store_true",
                    help="validate the manifest and verify existing cache "
                         "files; no network, no generation")
    ap.add_argument("--offline", action="store_true",
                    help="materialize the generated tier only; remote "
                         "entries are reported as skipped")
    ap.add_argument("--pin", action="store_true",
                    help="trust-on-first-use: fill sha256/n/nnz/"
                         "expected_format of unpinned entries from the "
                         "materialized files and rewrite the manifest")
    ap.add_argument("--only", action="append", default=[], metavar="NAME",
                    help="restrict to the named entries (repeatable)")
    ap.add_argument("--mirror", default="",
                    help="alternate base URL replacing everything up to "
                         "/MM/ in suitesparse urls")
    args = ap.parse_args(argv)

    manifest = load_manifest(args.manifest)
    entries = manifest["matrices"]
    if args.only:
        known = {m["name"] for m in entries}
        for name in args.only:
            if name not in known:
                die(f"fetch_corpus: --only {name}: not in the manifest")
        entries = [m for m in entries if m["name"] in args.only]

    failures = []       # checksum/corruption problems -> exit 1
    network_errors = []  # download problems only -> exit 3
    statuses = []
    pinned_any = False
    if not args.check_only:
        os.makedirs(args.cache, exist_ok=True)

    for entry in entries:
        name = entry["name"]
        path = cache_path(args.cache, entry)
        status = verify(path, entry, failures)
        if status == "CORRUPT":
            statuses.append((name, status))
            continue
        needs = status == "absent" or (status == "cached (unpinned)"
                                       and not args.check_only
                                       and entry["kind"] == "generated")
        if args.check_only:
            statuses.append((name, status))
            continue
        if status == "absent" or needs:
            if entry["kind"] == "generated":
                try:
                    generate(entry, path, args.driver)
                    status = verify(path, entry, failures)
                    status = {"cached (unpinned)": "generated (unpinned)",
                              "verified": "generated + verified"}.get(
                                  status, status)
                except (RuntimeError, OSError) as e:
                    failures.append(f"{name}: {e}")
                    status = "GENERATION FAILED"
            elif args.offline:
                status = "skipped (offline)"
            else:
                try:
                    download(entry, path, args.mirror)
                    status = verify(path, entry, failures)
                    status = {"cached (unpinned)": "fetched (unpinned)",
                              "verified": "fetched + verified"}.get(
                                  status, status)
                except (urllib.error.URLError, TimeoutError, OSError) as e:
                    network_errors.append(f"{name}: {entry['url']}: {e}")
                    status = "NETWORK FAILURE"
                except RuntimeError as e:
                    failures.append(f"{name}: {e}")
                    status = "BAD ARCHIVE"
        if args.pin and not entry.get("pinned") and os.path.isfile(path) \
                and "CORRUPT" not in status:
            try:
                report = probe(entry, path, args.driver)
                entry["sha256"] = sha256_file(path)
                entry["n"] = report["n"]
                entry["nnz"] = report["nnz"]
                entry["expected_format"] = report["format_selected"]
                entry["pinned"] = True
                pinned_any = True
                status += ", pinned"
            except (RuntimeError, OSError, KeyError,
                    json.JSONDecodeError) as e:
                failures.append(f"{name}: pin probe failed: {e}")
        statuses.append((name, status))

    width = max(len(n) for n, _ in statuses) if statuses else 0
    for name, status in statuses:
        print(f"  {name.ljust(width)}  {status}")
    print(f"fetch_corpus: {len(statuses)} entr(ies), "
          f"{len(failures)} failure(s), "
          f"{len(network_errors)} network error(s)")
    for f in failures:
        print(f"  FAIL: {f}", file=sys.stderr)
    for e in network_errors:
        print(f"  NETWORK: {e}", file=sys.stderr)

    if pinned_any:
        with open(args.manifest, "w") as f:
            json.dump(manifest, f, indent=2)
            f.write("\n")
        print(f"fetch_corpus: rewrote {args.manifest} with pinned entries "
              f"— review and commit it")

    if failures:
        return 1
    if network_errors:
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
