// Tests for the parameter fitting (Section 2.2 / Table 1) and the
// eigenvalue-map analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "core/params.hpp"
#include "la/polynomial.hpp"
#include "la/quadrature.hpp"

namespace mstep::core {
namespace {

// ---- Table 1 of the paper -------------------------------------------------
// Least-squares alphas for the SSOR splitting (spectrum interval [0, 1]),
// normalized to alpha_0 = 1.  The legible rows of the scanned table are
// m=2: (1.00, 5.00) and m=4: (1.00, 7.00, -24.50, 31.50).

TEST(Table1, MEquals2MatchesPaper) {
  const auto a = least_squares_alphas(2, ssor_interval());
  ASSERT_EQ(a.size(), 2u);
  EXPECT_NEAR(a[0], 1.0, 1e-9);
  EXPECT_NEAR(a[1], 5.0, 1e-9);
}

TEST(Table1, MEquals4MatchesPaper) {
  const auto a = least_squares_alphas(4, ssor_interval());
  ASSERT_EQ(a.size(), 4u);
  EXPECT_NEAR(a[0], 1.0, 1e-8);
  EXPECT_NEAR(a[1], 7.0, 1e-7);
  EXPECT_NEAR(a[2], -24.5, 1e-7);
  EXPECT_NEAR(a[3], 31.5, 1e-7);
}

TEST(Table1, UnnormalizedM2HasExactRationalSolution) {
  // Solving the 2x2 normal equations on [0,1] analytically gives
  // (2/3, 10/3); normalization to alpha_0 = 1 yields (1, 5).
  const auto a = least_squares_alphas(2, ssor_interval(),
                                      /*normalize_alpha0=*/false);
  EXPECT_NEAR(a[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(a[1], 10.0 / 3.0, 1e-12);
}

TEST(Params, MEquals1IsScalingOnly) {
  // For m=1 the preconditioned spectrum is alpha_0 * lambda regardless of
  // alpha_0 — the paper notes kappa is unchanged, "hence we are only
  // interested in m > 1".
  const auto a1 = least_squares_alphas(1, ssor_interval());
  ASSERT_EQ(a1.size(), 1u);
  EXPECT_NEAR(a1[0], 1.0, 1e-12);
  const auto raw = least_squares_alphas(1, ssor_interval(), false);
  // Unnormalized LS solution: minimize int (1 - a l)^2 -> a = 3/2 on [0,1].
  EXPECT_NEAR(raw[0], 1.5, 1e-12);
}

TEST(Params, LeastSquaresResidualDecreasesWithM) {
  // The LS objective over a nested family must be monotone non-increasing.
  double prev = 1e300;
  for (int m = 1; m <= 8; ++m) {
    const auto a = least_squares_alphas(m, ssor_interval(), false);
    const la::Polynomial s = eigenvalue_map(a);
    const double obj = la::integrate(
        [&](double lam) { return (1.0 - s(lam)) * (1.0 - s(lam)); }, 0.0, 1.0,
        64);
    EXPECT_LE(obj, prev + 1e-12) << "m=" << m;
    prev = obj;
  }
}

TEST(Params, LeastSquaresIsExactlyReproducedByQuadratureOfAnyOrder) {
  // The Gram integrals are polynomials; any sufficiently large rule gives
  // the same answer.  Guards against quadrature under-sampling.
  const auto a1 = least_squares_alphas(5, ssor_interval(), false);
  // Re-derive with brute force numeric integration.
  const int m = 5;
  la::DenseMatrix gram(m, m);
  Vec rhs(m, 0.0);
  for (int i = 0; i < m; ++i) {
    auto fi = [&](double l) { return l * std::pow(1.0 - l, i); };
    rhs[i] = la::integrate(fi, 0.0, 1.0, 64);
    for (int j = 0; j < m; ++j) {
      auto fj = [&](double l) { return l * std::pow(1.0 - l, j); };
      gram(i, j) =
          la::integrate([&](double l) { return fi(l) * fj(l); }, 0.0, 1.0, 64);
    }
  }
  const Vec a2 = la::solve_cholesky(gram, rhs);
  for (int i = 0; i < m; ++i) EXPECT_NEAR(a1[i], a2[i], 1e-7);
}

TEST(Params, WeightedLeastSquaresShiftsEmphasis) {
  // Weight concentrated near lambda=1 should fit better there.
  const auto flat = least_squares_alphas(3, ssor_interval(), false);
  const auto heavy = least_squares_alphas(
      3, ssor_interval(), false, [](double l) { return l * l * l * l; });
  const la::Polynomial s_flat = eigenvalue_map(flat);
  const la::Polynomial s_heavy = eigenvalue_map(heavy);
  EXPECT_LT(std::abs(1.0 - s_heavy(0.95)), std::abs(1.0 - s_flat(0.95)));
}

// ---- min-max (Chebyshev) parameters ---------------------------------------

TEST(MinMax, EquioscillatesOnInterval) {
  const SpectrumInterval iv{0.05, 1.0};
  const auto a = minmax_alphas(4, iv, /*normalize_alpha0=*/false);
  const la::Polynomial s = eigenvalue_map(a);
  // 1 - s(lambda) = T_m(mu(lambda))/T_m(mu0): extremes +-1/T_m(mu0).
  const double dev = 1.0 / la::chebyshev_t_value(4, (1.05) / (0.95));
  double max_dev = 0.0;
  for (int i = 0; i <= 400; ++i) {
    const double lam = 0.05 + 0.95 * i / 400.0;
    max_dev = std::max(max_dev, std::abs(1.0 - s(lam)));
  }
  EXPECT_NEAR(max_dev, std::abs(dev), 1e-10);
}

TEST(MinMax, BeatsLeastSquaresInMaxDeviation) {
  const SpectrumInterval iv{0.05, 1.0};
  for (int m = 2; m <= 6; ++m) {
    const la::Polynomial s_mm = eigenvalue_map(minmax_alphas(m, iv, false));
    const la::Polynomial s_ls =
        eigenvalue_map(least_squares_alphas(m, iv, false));
    double dev_mm = 0.0, dev_ls = 0.0;
    for (int i = 0; i <= 1000; ++i) {
      const double lam = iv.lambda_min +
                         (iv.lambda_max - iv.lambda_min) * i / 1000.0;
      dev_mm = std::max(dev_mm, std::abs(1.0 - s_mm(lam)));
      dev_ls = std::max(dev_ls, std::abs(1.0 - s_ls(lam)));
    }
    EXPECT_LE(dev_mm, dev_ls + 1e-12) << "m=" << m;
  }
}

TEST(MinMax, ConditionNumberShrinksWithM) {
  const SpectrumInterval iv{0.02, 1.0};
  double prev = 1e300;
  for (int m = 2; m <= 8; ++m) {
    const double k = predicted_condition(minmax_alphas(m, iv, false), iv);
    EXPECT_LT(k, prev) << "m=" << m;
    prev = k;
  }
}

// ---- SPD safety ------------------------------------------------------------

TEST(Spd, LeastSquaresAlphasGiveSpdOnSsorInterval) {
  for (int m = 2; m <= 8; ++m) {
    EXPECT_TRUE(alphas_give_spd(least_squares_alphas(m, ssor_interval()),
                                {1e-6, 1.0}))
        << "m=" << m;
  }
}

TEST(Spd, DetectsIndefiniteMap) {
  // s(lambda) = lambda (1 - 3(1-lambda)) is negative for lambda < 2/3.
  EXPECT_FALSE(alphas_give_spd({1.0, -3.0}, {0.05, 1.0}));
}

// ---- eigenvalue map --------------------------------------------------------

TEST(EigenvalueMap, UnparametrizedMapIs1MinusPowerOfG) {
  // alphas = (1,...,1): s(lambda) = 1 - (1-lambda)^m (geometric sum).
  for (int m = 1; m <= 6; ++m) {
    const std::vector<double> ones(static_cast<std::size_t>(m), 1.0);
    const la::Polynomial s = eigenvalue_map(ones);
    for (double lam : {0.1, 0.33, 0.8, 1.0}) {
      EXPECT_NEAR(s(lam), 1.0 - std::pow(1.0 - lam, m), 1e-12);
    }
  }
}

}  // namespace
}  // namespace mstep::core
