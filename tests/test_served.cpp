// End-to-end daemon tests: a real serve::Server on real sockets (Unix
// and TCP), driven through serve::Client — cold-miss/warm-hit caching,
// bitwise identity with a direct library solve, the inline-CSR and
// fingerprint request flows, the error retcode surface, the metrics
// document, deterministic busy shedding, and graceful shutdown by both
// the protocol request and SIGTERM (drain, final metrics snapshot,
// clean exit).  Process-local serve contracts live in
// tests/test_serve_cache.cpp.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "problems/problem.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "solver/solver.hpp"

namespace mstep::serve {
namespace {

std::string sock_path(const std::string& name) {
  return "/tmp/mstep_served_test_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

/// A live daemon for one test: bind, run() on a background thread, drain
/// on destruction (idempotent with an explicit shutdown inside the test).
struct ServedServer {
  explicit ServedServer(ServerOptions options) : server(std::move(options)) {
    server.bind();
    thread = std::thread([this] { server.run(); });
  }
  ~ServedServer() {
    server.request_shutdown();
    if (thread.joinable()) thread.join();
  }
  Server server;
  std::thread thread;
};

ServerOptions unix_options(const std::string& sock) {
  ServerOptions options;
  options.unix_path = sock;
  return options;
}

/// Pull `"name": <number>` out of the metrics JSON — enough structure
/// validation lives in tools/check_report.py --schema metrics; the test
/// only needs a few fields.
long long metrics_field(const std::string& body, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return -1;
  return std::stoll(body.substr(pos + needle.size()));
}

TEST(Served, ColdMissThenWarmHitOverUnixSocket) {
  const std::string sock = sock_path("coldwarm");
  ServedServer daemon(unix_options(sock));
  Client client = Client::connect("unix:" + sock);

  const SolveResponse cold =
      client.solve_catalog("poisson2d:n=12", "splitting=ssor;m=2");
  ASSERT_EQ(cold.retcode, Retcode::kOk) << cold.message;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_NE(cold.fingerprint, 0u);
  EXPECT_TRUE(cold.format_selected == "csr" || cold.format_selected == "dia");
  EXPECT_TRUE(cold.all_converged());

  const SolveResponse warm =
      client.solve_catalog("poisson2d:n=12", "splitting=ssor;m=2");
  ASSERT_EQ(warm.retcode, Retcode::kOk) << warm.message;
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  EXPECT_EQ(warm.setup_seconds, 0.0);  // the hit pays no preparation
  ASSERT_EQ(warm.results.size(), cold.results.size());
  EXPECT_EQ(warm.results, cold.results);  // bitwise: same pipeline, same bits
}

TEST(Served, TcpEphemeralPortServes) {
  ServerOptions options;
  options.port = 0;  // ephemeral, read back from bound_port()
  ServedServer daemon(options);
  ASSERT_GT(daemon.server.bound_port(), 0);

  Client client = Client::connect_tcp("127.0.0.1", daemon.server.bound_port());
  const SolveResponse cold =
      client.solve_catalog("poisson2d:n=10", "splitting=jacobi;m=1");
  ASSERT_EQ(cold.retcode, Retcode::kOk) << cold.message;
  EXPECT_TRUE(cold.all_converged());
  const SolveResponse warm =
      client.solve_catalog("poisson2d:n=10", "splitting=jacobi;m=1");
  EXPECT_TRUE(warm.cache_hit);
}

TEST(Served, ServedEqualsDirectLibrarySolveBitwise) {
  const std::string spec = "femplate:a=8";  // ships closed-form classes
  const std::string config_text = "splitting=ssor;m=2";
  const std::string sock = sock_path("bitwise");
  ServedServer daemon(unix_options(sock));
  Client client = Client::connect("unix:" + sock);

  const SolveResponse served = client.solve_catalog(spec, config_text);
  ASSERT_EQ(served.retcode, Retcode::kOk) << served.message;
  ASSERT_EQ(served.results.size(), 1u);

  problems::Problem p = problems::ProblemRegistry::instance().create(spec);
  ASSERT_TRUE(p.has_classes());
  solver::Solver direct = solver::Solver::from_config(
      solver::SolverConfig::from_string(config_text));
  const solver::Prepared prepared = direct.prepare(p.matrix, p.classes);
  const std::vector<Vec> bs{p.rhs};
  const solver::BatchReport want =
      prepared.solveMany(util::Span<const Vec>(bs.data(), bs.size()));
  ASSERT_EQ(want.reports.size(), 1u);

  const RhsResult& got = served.results[0];
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.iterations, want.reports[0].iterations());
  EXPECT_EQ(got.final_delta_inf, want.reports[0].result.final_delta_inf);
  EXPECT_EQ(got.solution, want.reports[0].solution);
}

TEST(Served, InlineCsrThenFingerprintReuse) {
  const std::string sock = sock_path("inline");
  ServedServer daemon(unix_options(sock));
  Client client = Client::connect("unix:" + sock);
  problems::Problem p =
      problems::ProblemRegistry::instance().create("poisson2d:n=8");

  SolveRequest inline_request;
  inline_request.source = MatrixSource::kInlineCsr;
  inline_request.matrix = p.matrix;
  inline_request.config = "splitting=ssor;m=2";
  inline_request.rhs = {p.rhs, Vec(p.rhs.size(), 1.0)};
  const SolveResponse first = client.solve(inline_request);
  ASSERT_EQ(first.retcode, Retcode::kOk) << first.message;
  EXPECT_FALSE(first.cache_hit);
  ASSERT_EQ(first.results.size(), 2u);
  EXPECT_TRUE(first.all_converged());

  // Repeat traffic: name the matrix by the advertised fingerprint instead
  // of resending ~nnz doubles.  Same pipeline, so the shared RHS solves
  // to the same bits.
  SolveRequest by_fp;
  by_fp.source = MatrixSource::kFingerprint;
  by_fp.fingerprint = first.fingerprint;
  by_fp.config = "splitting=ssor;m=2";
  by_fp.rhs = {p.rhs};
  const SolveResponse second = client.solve(by_fp);
  ASSERT_EQ(second.retcode, Retcode::kOk) << second.message;
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.results.size(), 1u);
  EXPECT_EQ(second.results[0], first.results[0]);

  // A fingerprint the daemon has never seen is an explicit error, not a
  // guess.
  by_fp.fingerprint = ~first.fingerprint;
  const SolveResponse unknown = client.solve(by_fp);
  EXPECT_EQ(unknown.retcode, Retcode::kUnknownMatrix);
  EXPECT_FALSE(retryable(unknown.retcode));
}

TEST(Served, ErrorRetcodeSurface) {
  const std::string sock = sock_path("retcodes");
  ServedServer daemon(unix_options(sock));
  Client client = Client::connect("unix:" + sock);

  EXPECT_EQ(client.solve_catalog("poisson2d:n=8", "splitting=nonsense")
                .retcode,
            Retcode::kBadConfig);
  EXPECT_EQ(client.solve_catalog("no_such_problem:n=8", "").retcode,
            Retcode::kBadProblem);

  SolveRequest bad_rhs;
  bad_rhs.source = MatrixSource::kCatalog;
  bad_rhs.problem = "poisson2d:n=8";
  bad_rhs.rhs = {Vec(3, 1.0)};  // n is 64, not 3
  EXPECT_EQ(client.solve(bad_rhs).retcode, Retcode::kBadRequest);

  SolveRequest not_square;
  not_square.source = MatrixSource::kInlineCsr;
  not_square.matrix = la::CsrMatrix(2, 3, {0, 1, 2}, {0, 2}, {1.0, 1.0});
  EXPECT_EQ(client.solve(not_square).retcode, Retcode::kBadRequest);
}

TEST(Served, MetricsDocumentCountsTraffic) {
  const std::string sock = sock_path("metrics");
  ServedServer daemon(unix_options(sock));
  Client client = Client::connect("unix:" + sock);
  (void)client.solve_catalog("poisson2d:n=8", "splitting=ssor;m=2");
  (void)client.solve_catalog("poisson2d:n=8", "splitting=ssor;m=2");

  const StatusResponse status = client.metrics();
  ASSERT_EQ(status.retcode, Retcode::kOk);
  const std::string& body = status.body;
  EXPECT_NE(body.find("\"tool\": \"mstep_served\""), std::string::npos);
  EXPECT_EQ(metrics_field(body, "solve"), 2);
  EXPECT_EQ(metrics_field(body, "hits"), 1);
  EXPECT_EQ(metrics_field(body, "misses"), 1);
  EXPECT_EQ(metrics_field(body, "entries"), 1);
  EXPECT_EQ(metrics_field(body, "queue_depth"), 0);
  EXPECT_EQ(metrics_field(body, "errors"), 0);
  // Two timed solves and (so far) three timed requests.
  EXPECT_EQ(metrics_field(body, "count"), 2);

  // The in-process view agrees with the wire view.
  std::ostringstream direct;
  daemon.server.metrics_json().dump(direct);
  EXPECT_EQ(metrics_field(direct.str(), "solve"), 2);
}

TEST(Served, TracedRequestRoundTripsACorrelatedTrace) {
  const std::string sock = sock_path("trace");
  ServedServer daemon(unix_options(sock));
  Client client = Client::connect("unix:" + sock);

  SolveRequest request;
  request.source = MatrixSource::kCatalog;
  request.problem = "poisson2d:n=12";
  request.config = "splitting=ssor;m=2";
  request.want_trace = true;

  const SolveResponse traced = client.solve(request);
  ASSERT_EQ(traced.retcode, Retcode::kOk) << traced.message;
  EXPECT_GT(traced.request_id, 0u);
  ASSERT_FALSE(traced.trace.empty());
  // The server-side phases and the solver's own spans are all present...
  for (const char* span : {"\"request\"", "\"setup\"", "\"prepare\"",
                           "\"solve\"", "\"iteration\"", "\"sweep\""}) {
    EXPECT_NE(traced.trace.find(span), std::string::npos) << span;
  }
  // ...and every span carries THIS request's id: the correlation tag
  // appears, and no other id does (count the generic key vs the exact
  // pair — per-request extraction must not leak neighbours' spans).
  const std::string key = "\"correlation\": ";
  const std::string tag = key + std::to_string(traced.request_id);
  std::size_t keys = 0, tags = 0;
  for (std::size_t pos = traced.trace.find(key); pos != std::string::npos;
       pos = traced.trace.find(key, pos + 1)) {
    ++keys;
  }
  for (std::size_t pos = traced.trace.find(tag); pos != std::string::npos;
       pos = traced.trace.find(tag, pos + 1)) {
    ++tags;
  }
  EXPECT_GT(keys, 0u);
  EXPECT_EQ(keys, tags);

  // An untraced repeat: fresh id, no trace payload, and — the bitwise
  // guarantee over the wire — identical solution bits.
  request.want_trace = false;
  const SolveResponse untraced = client.solve(request);
  ASSERT_EQ(untraced.retcode, Retcode::kOk) << untraced.message;
  EXPECT_TRUE(untraced.trace.empty());
  EXPECT_GT(untraced.request_id, traced.request_id);
  EXPECT_EQ(untraced.results, traced.results);

  // The metrics document carries the per-phase setup histogram: exactly
  // one cold preparation was timed.
  const StatusResponse status = client.metrics();
  ASSERT_EQ(status.retcode, Retcode::kOk);
  const auto pos = status.body.find("\"latency_setup_seconds\"");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(metrics_field(status.body.substr(pos), "count"), 1);
}

TEST(Served, BusySheddingIsDeterministicAtInflightOne) {
  const std::string sock = sock_path("busy");
  ServerOptions options = unix_options(sock);
  options.max_inflight = 1;
  ServedServer daemon(options);

  // Occupy the single slot with a deliberately heavy request: a cold
  // 16k-unknown problem and several right-hand sides.
  const std::string spec = "poisson2d:n=128";
  const std::size_t n = 128 * 128;
  SolveRequest heavy;
  heavy.source = MatrixSource::kCatalog;
  heavy.problem = spec;
  heavy.config = "splitting=ssor;m=1";
  heavy.rhs = std::vector<Vec>(8, Vec(n, 1.0));
  SolveResponse heavy_reply;
  std::thread occupant([&] {
    Client slow = Client::connect("unix:" + sock);
    heavy_reply = slow.solve(heavy);
  });

  // The gate admits the heavy solve before it starts preparing, so a
  // depth of 1 means the slot is held for the whole prepare+solve.
  for (int i = 0; i < 10000 && daemon.server.queue_depth() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(daemon.server.queue_depth(), 1);

  Client shed = Client::connect("unix:" + sock);
  const SolveResponse busy =
      shed.solve_catalog("poisson2d:n=8", "splitting=ssor;m=2");
  EXPECT_EQ(busy.retcode, Retcode::kBusy);
  EXPECT_TRUE(retryable(busy.retcode));

  occupant.join();
  ASSERT_EQ(heavy_reply.retcode, Retcode::kOk) << heavy_reply.message;
  EXPECT_TRUE(heavy_reply.all_converged());
  // With the slot free again the shed request goes straight through.
  const SolveResponse retry =
      shed.solve_catalog("poisson2d:n=8", "splitting=ssor;m=2");
  EXPECT_EQ(retry.retcode, Retcode::kOk);
}

TEST(Served, ProtocolShutdownDrainsAndClosesListeners) {
  const std::string sock = sock_path("shutdown");
  ServedServer daemon(unix_options(sock));
  {
    Client client = Client::connect("unix:" + sock);
    (void)client.solve_catalog("poisson2d:n=8", "");
    const StatusResponse reply = client.shutdown();
    EXPECT_EQ(reply.retcode, Retcode::kOk);
  }
  daemon.thread.join();  // run() must return on its own
  // The socket file is gone: a fresh connect has nothing to reach.
  EXPECT_THROW((void)Client::connect("unix:" + sock), SocketError);
}

TEST(Served, SigtermDrainsAndWritesFinalMetricsSnapshot) {
  const std::string sock = sock_path("sigterm");
  const std::string metrics_path =
      "/tmp/mstep_served_test_" + std::to_string(::getpid()) + "_final.json";
  std::remove(metrics_path.c_str());

  ServerOptions options = unix_options(sock);
  options.metrics_out = metrics_path;
  ServedServer daemon(options);
  daemon.server.install_signal_handlers();
  {
    Client client = Client::connect("unix:" + sock);
    const SolveResponse reply = client.solve_catalog("poisson2d:n=8", "");
    ASSERT_EQ(reply.retcode, Retcode::kOk);
  }

  ASSERT_EQ(std::raise(SIGTERM), 0);
  daemon.thread.join();  // the handler's self-pipe wakes the accept loop

  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << "final metrics snapshot missing";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"tool\": \"mstep_served\""),
            std::string::npos);
  EXPECT_EQ(metrics_field(buffer.str(), "solve"), 1);
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace mstep::serve
