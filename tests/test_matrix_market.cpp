// Matrix Market I/O: write -> read -> write byte identity (general and
// symmetric storage), symmetry expansion, every supported field/format,
// vector files, the bandedness probe, the committed fixtures, and the
// malformed-input diagnostics (positioned errors, never a crash — the
// ASan CI job runs these too).
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

#include "io/matrix_market.hpp"
#include "la/dia_matrix.hpp"

namespace mstep::io {
namespace {

la::CsrMatrix tridiag(index_t n, double diag, double off) {
  la::CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, diag);
    if (i > 0) b.add(i, i - 1, off);
    if (i + 1 < n) b.add(i, i + 1, off);
  }
  return b.build();
}

void expect_same_matrix(const la::CsrMatrix& a, const la::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_ptr(), b.row_ptr());
  ASSERT_EQ(a.col_idx(), b.col_idx());
  ASSERT_EQ(a.values(), b.values());
}

std::string write_to_string(const la::CsrMatrix& a,
                            const MmWriteOptions& options = {}) {
  std::ostringstream out;
  write_matrix_market(out, a, options);
  return out.str();
}

// ---- round trips ------------------------------------------------------------

TEST(MatrixMarket, GeneralCoordinateRoundTripIsByteIdentical) {
  // An unsymmetric matrix with values that stress the shortest
  // round-trip formatting (thirds, tiny, huge, negative zero exponents).
  la::CooBuilder b(4, 5);
  b.add(0, 0, 1.0 / 3.0);
  b.add(0, 4, -2.5e-17);
  b.add(1, 1, 12345678.901234567);
  b.add(2, 0, -1.0);
  b.add(2, 3, 7.0e300);
  b.add(3, 2, 0.1);
  const la::CsrMatrix a = b.build();

  const std::string once = write_to_string(a);
  std::istringstream in(once);
  const MmMatrix read_back = read_matrix_market(in, "roundtrip.mtx");
  EXPECT_EQ(read_back.header.format, MmFormat::kCoordinate);
  EXPECT_EQ(read_back.header.field, MmField::kReal);
  EXPECT_EQ(read_back.header.symmetry, MmSymmetry::kGeneral);
  expect_same_matrix(a, read_back.matrix);

  const std::string twice = write_to_string(read_back.matrix);
  EXPECT_EQ(once, twice);  // byte-identical
}

TEST(MatrixMarket, SymmetricCoordinateRoundTripIsByteIdentical) {
  const la::CsrMatrix a = tridiag(6, 2.0, -0.25);
  MmWriteOptions options;
  options.symmetry = MmSymmetry::kSymmetric;
  options.comment = "SPD tridiagonal fixture";

  const std::string once = write_to_string(a, options);
  // Only the lower triangle is stored: 6 diagonal + 5 off-diagonal.
  EXPECT_NE(once.find("6 6 11"), std::string::npos);

  std::istringstream in(once);
  const MmMatrix read_back = read_matrix_market(in, "sym.mtx");
  EXPECT_EQ(read_back.header.symmetry, MmSymmetry::kSymmetric);
  expect_same_matrix(a, read_back.matrix);  // expansion reproduces the full A

  const std::string twice = write_to_string(read_back.matrix, options);
  EXPECT_EQ(once, twice);
}

TEST(MatrixMarket, SkewSymmetricExpansionNegatesTheMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 2 -1.5\n");
  const MmMatrix mm = read_matrix_market(in, "skew.mtx");
  EXPECT_EQ(mm.matrix.at(1, 0), 5.0);
  EXPECT_EQ(mm.matrix.at(0, 1), -5.0);
  EXPECT_EQ(mm.matrix.at(2, 1), -1.5);
  EXPECT_EQ(mm.matrix.at(1, 2), 1.5);
  EXPECT_EQ(mm.matrix.at(0, 0), 0.0);

  MmWriteOptions options;
  options.symmetry = MmSymmetry::kSkewSymmetric;
  const std::string once = write_to_string(mm.matrix, options);
  std::istringstream in2(once);
  expect_same_matrix(mm.matrix, read_matrix_market(in2, "skew.mtx").matrix);
}

TEST(MatrixMarket, PatternAndIntegerFieldsParse) {
  std::istringstream pattern(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 3\n"
      "1 1\n"
      "2 1\n"
      "3 3\n");
  const MmMatrix p = read_matrix_market(pattern, "pat.mtx");
  EXPECT_EQ(p.matrix.nnz(), 4);  // (2,1) mirrored
  EXPECT_EQ(p.matrix.at(0, 1), 1.0);

  std::istringstream integer(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 1 -3\n"
      "2 2 7\n");
  const MmMatrix i = read_matrix_market(integer, "int.mtx");
  EXPECT_EQ(i.matrix.at(0, 0), -3.0);
  EXPECT_EQ(i.matrix.at(1, 1), 7.0);
}

TEST(MatrixMarket, ArrayFormatReadsColumnMajorAndRoundTrips) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 3 \n"
      "1\n3\n0\n4\n5\n6.5\n");
  const MmMatrix mm = read_matrix_market(in, "arr.mtx");
  EXPECT_EQ(mm.matrix.at(0, 0), 1.0);
  EXPECT_EQ(mm.matrix.at(1, 0), 3.0);
  EXPECT_EQ(mm.matrix.at(0, 1), 0.0);  // explicit zero is not stored
  EXPECT_EQ(mm.matrix.at(1, 2), 6.5);

  MmWriteOptions options;
  options.format = MmFormat::kArray;
  const std::string once = write_to_string(mm.matrix, options);
  std::istringstream in2(once);
  const MmMatrix mm2 = read_matrix_market(in2, "arr.mtx");
  expect_same_matrix(mm.matrix, mm2.matrix);
  EXPECT_EQ(once, write_to_string(mm2.matrix, options));
}

TEST(MatrixMarket, VectorRoundTrip) {
  const Vec v = {1.5, -2.0, 1.0 / 7.0, 0.0, 3e8};
  std::ostringstream out;
  write_vector(out, v, "rhs fixture");
  std::istringstream in(out.str());
  EXPECT_EQ(read_vector(in, "v.mtx"), v);

  // Coordinate-format vectors read too, with absent entries zero.
  std::istringstream sparse(
      "%%MatrixMarket matrix coordinate real general\n"
      "4 1 2\n"
      "1 1 9\n"
      "4 1 -1\n");
  const Vec w = read_vector(sparse, "w.mtx");
  EXPECT_EQ(w, (Vec{9.0, 0.0, 0.0, -1.0}));
}

TEST(MatrixMarket, BandednessProbeFlagsTridiagonalNotScattered) {
  std::istringstream banded(write_to_string(tridiag(64, 4.0, -1.0)));
  EXPECT_TRUE(read_matrix_market(banded, "band.mtx").dia_friendly);
  EXPECT_EQ(tridiag(64, 4.0, -1.0).bandwidth(), 1);

  // An arrow matrix has ~n distinct diagonals: DIA storage would blow up.
  la::CooBuilder b(64, 64);
  for (index_t i = 0; i < 64; ++i) {
    b.add(i, i, 4.0);
    if (i > 0) {
      b.add(0, i, -1.0);
      b.add(i, 0, -1.0);
    }
  }
  std::istringstream arrow(write_to_string(b.build()));
  EXPECT_FALSE(read_matrix_market(arrow, "arrow.mtx").dia_friendly);
}

// ---- fixtures ---------------------------------------------------------------

TEST(MatrixMarket, CommittedFixturesLoad) {
  const std::string dir = MSTEP_TEST_DATA_DIR;
  const MmMatrix general = read_matrix_market(dir + "/spd_tridiag_general.mtx");
  EXPECT_EQ(general.matrix.rows(), 6);
  EXPECT_EQ(general.matrix.nnz(), 16);
  EXPECT_EQ(general.matrix.symmetry_error(), 0.0);
  EXPECT_TRUE(general.dia_friendly);

  const MmMatrix sym = read_matrix_market(dir + "/spd_band_symmetric.mtx");
  EXPECT_EQ(sym.header.symmetry, MmSymmetry::kSymmetric);
  EXPECT_EQ(sym.matrix.rows(), 8);
  EXPECT_EQ(sym.matrix.nnz(), 34);  // 21 stored + 13 mirrored
  EXPECT_EQ(sym.matrix.symmetry_error(), 0.0);
  EXPECT_EQ(sym.matrix.bandwidth(), 2);
}

// ---- diagnostics ------------------------------------------------------------

void expect_error(const std::string& text, const std::string& fragment,
                  std::size_t line) {
  std::istringstream in(text);
  try {
    (void)read_matrix_market(in, "bad.mtx");
    FAIL() << "expected MatrixMarketError containing '" << fragment << "'";
  } catch (const MatrixMarketError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find("bad.mtx:"), std::string::npos);
  }
}

TEST(MatrixMarket, MalformedHeadersAreDiagnosed) {
  expect_error("", "missing banner", 1);
  expect_error("%%MatrixMarket matrix\n", "banner wants", 1);
  expect_error("MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n",
               "banner must start", 1);
  expect_error("%%MatrixMarket vector coordinate real general\n",
               "unsupported object", 1);
  expect_error("%%MatrixMarket matrix triplet real general\n",
               "unknown format", 1);
  expect_error("%%MatrixMarket matrix coordinate complex general\n",
               "complex matrices are not supported", 1);
  expect_error("%%MatrixMarket matrix coordinate real hermitian\n",
               "hermitian matrices are not supported", 1);
  expect_error("%%MatrixMarket matrix array pattern general\n",
               "array format cannot have a pattern field", 1);
  expect_error("%%MatrixMarket matrix coordinate real general\n",
               "missing size line", 2);
  expect_error("%%MatrixMarket matrix coordinate real general\n2 2\n",
               "size line wants 3 integers", 2);
  expect_error(
      "%%MatrixMarket matrix coordinate real symmetric\n% c\n2 3 1\n",
      "symmetric matrix must be square", 3);
}

TEST(MatrixMarket, BadEntriesAreDiagnosedWithPosition) {
  const std::string head = "%%MatrixMarket matrix coordinate real general\n";
  expect_error(head + "2 2 2\n1 1 1.0\n", "expected 2 entries, got 1", 4);
  expect_error(head + "2 2 1\n1 1 1.0\n2 2 1.0\n", "extra entry", 4);
  expect_error(head + "2 2 1\n1 x 1.0\n", "expected integer column index", 3);
  expect_error(head + "2 2 1\n1 1 fish\n", "expected numeric value", 3);
  expect_error(head + "2 2 1\n3 1 1.0\n", "row index 3 outside [1, 2]", 3);
  expect_error(head + "2 2 1\n1 0 1.0\n", "column index 0 outside [1, 2]", 3);
  expect_error(head + "2 2 2\n1 1 1.0\n1 1 2.0\n", "duplicate entry (1, 1)",
               4);

  // Positioned column: "1 x 1.0" -> token starts at column 3.
  std::istringstream in(head + "2 2 1\n1 x 1.0\n");
  try {
    (void)read_matrix_market(in, "bad.mtx");
    FAIL();
  } catch (const MatrixMarketError& e) {
    EXPECT_EQ(e.column(), 3u);
  }
}

TEST(MatrixMarket, SubnormalValuesRoundTripAndOverflowingValuesAreDiagnosed) {
  // 1e-320 is a subnormal: std::stod would throw out_of_range on it, but
  // it is a perfectly valid Matrix Market value.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1e-320\n"
      "2 2 1\n");
  const MmMatrix mm = read_matrix_market(in, "sub.mtx");
  EXPECT_EQ(mm.matrix.at(0, 0), 1e-320);
  const std::string once = write_to_string(mm.matrix);
  std::istringstream in2(once);
  const MmMatrix mm2 = read_matrix_market(in2, "sub.mtx");
  expect_same_matrix(mm.matrix, mm2.matrix);
  EXPECT_EQ(once, write_to_string(mm2.matrix));  // byte-identical
  // A value beyond the double range is a diagnostic, not infinity.
  expect_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1e400\n",
      "overflows the double range", 3);
}

TEST(MatrixMarket, NonFiniteAndHexValueTokensAreDiagnosed) {
  const std::string head = "%%MatrixMarket matrix coordinate real general\n";
  expect_error(head + "2 2 1\n1 1 inf\n", "is not finite", 3);
  expect_error(head + "2 2 1\n1 1 nan\n", "is not finite", 3);
  expect_error(head + "2 2 1\n1 1 -Inf\n", "is not finite", 3);
  expect_error(head + "2 2 1\n1 1 0x10\n", "expected numeric value", 3);
}

TEST(MatrixMarket, WriterValidatesBeforeEmittingAnything) {
  // A failing write must not leave partial output behind.
  la::CooBuilder b(2, 2);
  b.add(0, 0, 1.5);  // not integral
  std::ostringstream out;
  MmWriteOptions options;
  options.field = MmField::kInteger;
  EXPECT_THROW(write_matrix_market(out, b.build(), options),
               std::invalid_argument);
  EXPECT_EQ(out.str(), "");

  std::ostringstream out2;
  MmWriteOptions array_pattern;
  array_pattern.format = MmFormat::kArray;
  array_pattern.field = MmField::kPattern;
  EXPECT_THROW(write_matrix_market(out2, b.build(), array_pattern),
               std::invalid_argument);
  EXPECT_EQ(out2.str(), "");

  // Non-finite values would produce tokens the reader rejects.
  la::CooBuilder nf(2, 2);
  nf.add(0, 0, std::numeric_limits<double>::quiet_NaN());
  std::ostringstream out3;
  EXPECT_THROW(write_matrix_market(out3, nf.build(), MmWriteOptions{}),
               std::invalid_argument);
  EXPECT_EQ(out3.str(), "");
  std::ostringstream out4;
  EXPECT_THROW(
      write_vector(out4, Vec{std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
  EXPECT_EQ(out4.str(), "");
}

TEST(MatrixMarket, WriterRejectsMultiLineComments) {
  MmWriteOptions options;
  options.comment = "line1\nline2";
  EXPECT_THROW(write_to_string(tridiag(3, 2.0, -1.0), options),
               std::invalid_argument);
  std::ostringstream out;
  EXPECT_THROW(write_vector(out, Vec{1.0}, "a\nb"), std::invalid_argument);
}

TEST(MatrixMarket, OverflowingIndicesAreDiagnosedNotCrashing) {
  const std::string head = "%%MatrixMarket matrix coordinate real general\n";
  // Dimension larger than the 32-bit index type.
  expect_error(head + "3000000000 1 1\n1 1 1.0\n",
               "does not fit the 32-bit index type", 2);
  // Entry index overflowing long long entirely.
  expect_error(head + "2 2 1\n99999999999999999999 1 1.0\n", "overflows", 3);
  // In-range dimensions, out-of-range entry.
  expect_error(head + "2 2 1\n2000000000 1 1.0\n",
               "row index 2000000000 outside [1, 2]", 3);
}

TEST(MatrixMarket, HugeDeclaredEntryCountIsDiagnosedNotAllocated) {
  // nnz far beyond rows*cols must fail at the size line, before any
  // entry staging is reserved.
  expect_error(
      "%%MatrixMarket matrix coordinate real general\n2 2 2000000000\n",
      "exceeds rows*cols = 4", 2);
}

TEST(MatrixMarket, FailingPathWriteDoesNotTruncateExistingFile) {
  const std::string path = ::testing::TempDir() + "mm_preserve_test.mtx";
  write_matrix_market(path, tridiag(3, 2.0, -1.0));
  const MmMatrix before = read_matrix_market(path);

  la::CooBuilder b(2, 2);  // not symmetric: the symmetric write must throw
  b.add(0, 1, 2.0);
  MmWriteOptions options;
  options.symmetry = MmSymmetry::kSymmetric;
  EXPECT_THROW(write_matrix_market(path, b.build(), options),
               std::invalid_argument);
  expect_same_matrix(before.matrix, read_matrix_market(path).matrix);
  std::remove(path.c_str());
}

TEST(MatrixMarket, SymmetryStorageViolationsAreDiagnosed) {
  expect_error(
      "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n",
      "lies above the diagonal", 3);
  expect_error(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n1 1 1.0\n",
      "no diagonal entries", 3);
}

TEST(MatrixMarket, WriterRejectsNonSymmetricMatrixForSymmetricStorage) {
  la::CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 3.0);
  MmWriteOptions options;
  options.symmetry = MmSymmetry::kSymmetric;
  EXPECT_THROW(write_to_string(b.build(), options), std::invalid_argument);

  // Vector files must be vectors.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n2 2 0\n");
  EXPECT_THROW((void)read_vector(in, "notvec.mtx"), MatrixMarketError);

  EXPECT_THROW((void)read_matrix_market("/nonexistent/path.mtx"),
               MatrixMarketError);
}

}  // namespace
}  // namespace mstep::io
