// The execution-policy layer: deterministic blocked reductions, threaded
// SpMV/vector kernels, thread-pool stress (oversubscription, zero-work
// ranges, exception propagation), and the facade-level guarantee that a
// threads=N solve is BITWISE identical to the serial solve for every
// splitting and step count.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "color/coloring.hpp"
#include "fem/plane_stress.hpp"
#include "fem/poisson.hpp"
#include "la/dia_matrix.hpp"
#include "la/linear_operator.hpp"
#include "par/execution.hpp"
#include "par/thread_pool.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace mstep::par {
namespace {

// ---- deterministic kernels --------------------------------------------------

TEST(ExecutionDot, BitwiseMatchesSerialAcrossBlockBoundaries) {
  util::Rng rng(11);
  for (const int threads : {2, 4, 8}) {
    const Execution exec(threads);
    for (const index_t n : {1, 100, 1023, 1024, 1025, 4099, 20000}) {
      const Vec x = rng.uniform_vector(n);
      const Vec y = rng.uniform_vector(n);
      ASSERT_EQ(exec.dot(x, y), la::dot(x, y)) << "threads=" << threads
                                               << " n=" << n;
      ASSERT_EQ(exec.nrm2(x), la::nrm2(x)) << "threads=" << threads
                                           << " n=" << n;
    }
  }
}

TEST(ExecutionVectorOps, BitwiseMatchSerial) {
  util::Rng rng(5);
  const index_t n = 20000;
  const Vec x = rng.uniform_vector(n);
  const Execution exec(4);

  Vec y1 = rng.uniform_vector(n);
  Vec y2 = y1;
  la::axpy(0.37, x, y1);
  exec.axpy(0.37, x, y2);
  ASSERT_EQ(y1, y2);

  la::xpay(x, -1.25, y1);
  exec.xpay(x, -1.25, y2);
  ASSERT_EQ(y1, y2);

  // Fused CG update: u += a*p with the delta-inf stopping quantity.
  Vec u1 = y1;
  Vec u2 = y1;
  double mx1 = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double step = 0.81 * x[i];
    u1[i] += step;
    mx1 = std::max(mx1, std::abs(step));
  }
  const double mx2 = exec.step_update_max(0.81, x, u2);
  ASSERT_EQ(u1, u2);
  ASSERT_EQ(mx1, mx2);
}

TEST(ExecutionSpmv, CsrAndDiaBitwiseMatchSerial) {
  // Plate large enough that the parallel kernels actually engage.
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(40);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const la::CsrMatrix& a = sys.stiffness;
  ASSERT_GE(a.rows(), 3000);
  const la::DiaMatrix dia = la::DiaMatrix::from_csr(a);

  util::Rng rng(17);
  const Vec x = rng.uniform_vector(a.rows());
  const Execution exec(4);

  Vec y_serial, y_exec;
  a.multiply(x, y_serial);
  exec.spmv(a, x, y_exec);
  ASSERT_EQ(y_serial, y_exec);

  dia.multiply(x, y_serial);
  exec.spmv(dia, x, y_exec);
  ASSERT_EQ(y_serial, y_exec);

  Vec s1 = rng.uniform_vector(a.rows());
  Vec s2 = s1;
  a.multiply_sub(x, s1);
  exec.spmv_sub(a, x, s2);
  ASSERT_EQ(s1, s2);

  dia.multiply_sub(x, s1);
  exec.spmv_sub(dia, x, s2);
  ASSERT_EQ(s1, s2);
}

// ---- thread-pool stress -----------------------------------------------------

TEST(ThreadPoolStress, OversubscribedPoolStaysCorrect) {
  // Far more workers than cores: scheduling is adversarial, coverage and
  // reuse must hold anyway.
  ThreadPool pool(16);
  for (int round = 0; round < 200; ++round) {
    std::atomic<long long> sum{0};
    pool.for_each(0, 4097, [&](index_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 4097LL * 4096 / 2) << "round " << round;
  }
}

TEST(ThreadPoolStress, ZeroWorkRangesAreNoOpsBetweenRealJobs) {
  // Empty colour classes produce empty sweep ranges mid-solve; they must
  // neither hang nor disturb the next job.
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    int calls = 0;
    pool.for_range(round, round, [&](index_t, index_t) { ++calls; });
    pool.for_range(10, 3, [&](index_t, index_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> count{0};
    pool.for_each(0, 513, [&](index_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 513);
  }
}

TEST(ThreadPoolStress, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(8);
  EXPECT_THROW(
      pool.for_range(0, 100000,
                     [&](index_t b, index_t e) {
                       if (b <= 54321 && 54321 < e) {
                         throw std::runtime_error("boom");
                       }
                     }),
      std::runtime_error);

  // Every chunk throwing still surfaces exactly one exception.
  EXPECT_THROW(pool.for_range(0, 100000,
                              [](index_t, index_t) {
                                throw std::runtime_error("everywhere");
                              }),
               std::runtime_error);

  // The pool remains fully usable afterwards.
  std::atomic<int> count{0};
  pool.for_each(0, 10000, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10000);
}

TEST(ThreadPoolStress, ExceptionPropagatesFromSerialFallback) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.for_range(0, 10,
                              [](index_t, index_t) {
                                throw std::invalid_argument("serial boom");
                              }),
               std::invalid_argument);
}

TEST(Execution, RejectsNegativeThreadCount) {
  EXPECT_THROW(Execution(-1), std::invalid_argument);
  EXPECT_FALSE(Execution(0).parallel());
  EXPECT_FALSE(Execution(1).parallel());
  EXPECT_TRUE(Execution(2).parallel());
}

// ---- facade-level bitwise determinism ---------------------------------------

struct Plate {
  fem::PlateMesh mesh;
  la::CsrMatrix k;
  Vec f;
  color::ColorClasses classes;
};

Plate make_plate(int nodes) {
  fem::PlateMesh mesh = fem::PlateMesh::unit_square(nodes);
  auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                        fem::EdgeLoad{1.0, 0.0});
  auto classes = color::six_color_classes(mesh);
  return {std::move(mesh), std::move(sys.stiffness), std::move(sys.load),
          std::move(classes)};
}

void expect_bitwise_equal(const solver::SolveReport& serial,
                          const solver::SolveReport& threaded,
                          const std::string& what) {
  ASSERT_TRUE(serial.converged()) << what;
  ASSERT_TRUE(threaded.converged()) << what;
  ASSERT_EQ(serial.iterations(), threaded.iterations()) << what;
  ASSERT_EQ(serial.result.inner_products, threaded.result.inner_products)
      << what;
  ASSERT_EQ(serial.result.final_delta_inf, threaded.result.final_delta_inf)
      << what;
  ASSERT_EQ(serial.solution.size(), threaded.solution.size()) << what;
  for (std::size_t i = 0; i < serial.solution.size(); ++i) {
    ASSERT_EQ(serial.solution[i], threaded.solution[i])
        << what << " i=" << i;
  }
}

// The ISSUE-level guarantee: for each registered splitting and
// m in {1, 2, 4}, the threaded solve is bitwise the serial solve.
TEST(SolverThreads, EverySplittingAndStepCountMatchesSerialBitwise) {
  const Plate p = make_plate(36);  // 2520 equations: above the cutoffs
  for (const auto& splitting :
       solver::SplittingRegistry::instance().names()) {
    for (const int m : {1, 2, 4}) {
      solver::SolverConfig cfg;
      cfg.splitting = splitting;
      cfg.steps = m;
      cfg.tolerance = 1e-8;
      const auto serial =
          solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes);
      for (const int threads : {2, 4}) {
        cfg.execution.threads = threads;
        const auto threaded =
            solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes);
        expect_bitwise_equal(serial, threaded,
                             splitting + " m=" + std::to_string(m) +
                                 " threads=" + std::to_string(threads));
      }
      cfg.execution.threads = 0;
    }
  }
}

TEST(SolverThreads, GenericSsorOmegaPathMatchesSerialBitwise) {
  // omega != 1 leaves the Algorithm-2 fast path: the generic m-step engine
  // under a threaded outer loop must still be bitwise serial.
  const Plate p = make_plate(36);
  solver::SolverConfig cfg;
  cfg.splitting_options["omega"] = 1.3;
  cfg.steps = 2;
  cfg.tolerance = 1e-8;
  const auto serial =
      solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  cfg.execution.threads = 4;
  const auto threaded =
      solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  expect_bitwise_equal(serial, threaded, "ssor omega=1.3 threads=4");
}

TEST(SolverThreads, DiaFormatMatchesSerialBitwise) {
  const Plate p = make_plate(36);
  solver::SolverConfig cfg;
  cfg.format = solver::MatrixFormat::kDia;
  cfg.steps = 2;
  cfg.tolerance = 1e-8;
  const auto serial =
      solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  cfg.execution.threads = 4;
  const auto threaded =
      solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  expect_bitwise_equal(serial, threaded, "dia threads=4");
}

TEST(SolverThreads, PlainCgMatchesSerialBitwise) {
  const Plate p = make_plate(36);
  solver::SolverConfig cfg;
  cfg.steps = 0;
  cfg.ordering = solver::Ordering::kNatural;
  cfg.tolerance = 1e-8;
  const auto serial = solver::Solver::from_config(cfg).solve(p.k, p.f);
  cfg.execution.threads = 4;
  const auto threaded = solver::Solver::from_config(cfg).solve(p.k, p.f);
  expect_bitwise_equal(serial, threaded, "m=0 threads=4");
}

TEST(SolverThreads, PreparedReusesOnePoolAcrossRightHandSides) {
  const Plate p = make_plate(36);
  solver::SolverConfig cfg;
  cfg.tolerance = 1e-8;
  cfg.execution.threads = 2;
  const auto solver = solver::Solver::from_config(cfg);
  ASSERT_NE(solver.execution(), nullptr);
  EXPECT_EQ(solver.execution()->threads(), 2);

  const auto prepared = solver.prepare(p.k, p.classes);
  const auto r1 = prepared.solve(p.f);
  Vec f2 = p.f;
  for (auto& v : f2) v *= 3.0;
  const auto r2 = prepared.solve(f2);
  ASSERT_TRUE(r1.converged());
  ASSERT_TRUE(r2.converged());
  for (index_t i = 0; i < p.k.rows(); ++i) {
    ASSERT_NEAR(r2.solution[i], 3.0 * r1.solution[i], 1e-6);
  }
}

TEST(SolverThreads, InstrumentationStreamMatchesSerial) {
  // The threaded fast path narrates the same kernel stream as the serial
  // sweep, so modelled CYBER seconds are thread-count independent.
  const Plate p = make_plate(36);
  solver::SolverConfig cfg;
  cfg.tolerance = 1e-8;

  core::CountingLog serial_log;
  (void)solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes,
                                               &serial_log);
  cfg.execution.threads = 4;
  core::CountingLog threaded_log;
  (void)solver::Solver::from_config(cfg).solve(p.k, p.f, p.classes,
                                               &threaded_log);

  EXPECT_EQ(serial_log.vec_ops, threaded_log.vec_ops);
  EXPECT_EQ(serial_log.dots, threaded_log.dots);
  EXPECT_EQ(serial_log.spmvs, threaded_log.spmvs);
  EXPECT_EQ(serial_log.diag_ops, threaded_log.diag_ops);
  EXPECT_EQ(serial_log.precond_steps, threaded_log.precond_steps);
  EXPECT_EQ(serial_log.flops, threaded_log.flops);
}

// ---- config round-trip ------------------------------------------------------

TEST(ExecutionConfig, ThreadsRoundTripsThroughStringAndCli) {
  solver::SolverConfig cfg;
  cfg.execution.threads = 4;
  EXPECT_NE(cfg.to_string().find(";threads=4"), std::string::npos);
  EXPECT_EQ(cfg, solver::SolverConfig::from_string(cfg.to_string()));

  const char* argv[] = {"prog", "--threads=8", "--m=2"};
  const util::Cli cli(3, argv, solver::SolverConfig::cli_flags());
  const auto from_cli = solver::SolverConfig::from_cli(cli);
  EXPECT_EQ(from_cli.execution.threads, 8);
  EXPECT_TRUE(from_cli.execution.parallel());
}

TEST(ExecutionConfig, SerialDefaultKeepsConfigStringUnchanged) {
  // threads=0 must serialize exactly as the unthreaded library did.
  const solver::SolverConfig cfg;
  EXPECT_EQ(cfg.to_string().find("threads"), std::string::npos);
  EXPECT_FALSE(cfg.execution.parallel());
  EXPECT_EQ(solver::Solver::from_config(cfg).execution(), nullptr);
}

TEST(ExecutionConfig, RejectsNegativeThreads) {
  EXPECT_THROW(solver::SolverConfig::from_string("threads=-2"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mstep::par
