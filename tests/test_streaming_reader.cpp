// The streaming two-pass Matrix Market reader: byte-source plumbing
// (file / buffer / gzip with magic-byte auto-detection), identity between
// the file path, the buffer path, and the gzip path on a generated
// large-ish matrix, the gzip failure diagnostics (truncated stream,
// mid-stream corruption), and `format=auto` routing through the
// bandedness probe on real catalog problems.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "io/byte_source.hpp"
#include "io/matrix_market.hpp"
#include "problems/driver.hpp"
#include "solver/solver.hpp"

namespace mstep::io {
namespace {

/// A banded SPD matrix big enough that the reader's buffer refills many
/// times (the 200-row pentadiagonal has ~1k entries over ~1k lines).
la::CsrMatrix banded(index_t n) {
  la::CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 8.0 + 0.001 * static_cast<double>(i));
    if (i >= 1) b.add(i, i - 1, -1.5);
    if (i + 1 < n) b.add(i, i + 1, -1.5);
    if (i >= 2) b.add(i, i - 2, -0.25);
    if (i + 2 < n) b.add(i, i + 2, -0.25);
  }
  return b.build();
}

void expect_same_matrix(const la::CsrMatrix& a, const la::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_ptr(), b.row_ptr());
  ASSERT_EQ(a.col_idx(), b.col_idx());
  ASSERT_EQ(a.values(), b.values());
}

std::string write_to_string(const la::CsrMatrix& a,
                            const MmWriteOptions& options = {}) {
  std::ostringstream out;
  write_matrix_market(out, a, options);
  return out.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- sources agree ----------------------------------------------------------

TEST(StreamingReader, FileBufferAndStreamPathsReadIdentically) {
  const la::CsrMatrix a = banded(200);
  MmWriteOptions options;
  options.symmetry = MmSymmetry::kSymmetric;
  const std::string text = write_to_string(a, options);
  const std::string path = ::testing::TempDir() + "stream_band.mtx";
  write_matrix_market(path, a, options);

  const MmMatrix from_file = read_matrix_market(path);
  BufferByteSource buffer(text, "buf.mtx");
  const MmMatrix from_buffer = read_matrix_market(buffer);
  std::istringstream in(text);
  const MmMatrix from_stream = read_matrix_market(in, "stream.mtx");

  expect_same_matrix(a, from_file.matrix);
  expect_same_matrix(from_file.matrix, from_buffer.matrix);
  expect_same_matrix(from_file.matrix, from_stream.matrix);
  EXPECT_TRUE(from_file.dia_friendly);
  EXPECT_EQ(from_file.header.symmetry, MmSymmetry::kSymmetric);

  // The streaming reader preserves the writer's byte-identity guarantee.
  EXPECT_EQ(text, write_to_string(from_file.matrix, options));
  std::remove(path.c_str());
}

TEST(StreamingReader, CommittedFixturesMatchTheBufferPath) {
  // The committed fixtures were generated with the pre-streaming reader;
  // the streaming file path must read them to the same CsrMatrix as the
  // in-memory path reads their bytes.
  const std::string dir = MSTEP_TEST_DATA_DIR;
  for (const char* name :
       {"/spd_tridiag_general.mtx", "/spd_band_symmetric.mtx"}) {
    const std::string path = dir + name;
    const MmMatrix from_file = read_matrix_market(path);
    BufferByteSource buffer(slurp(path), path);
    const MmMatrix from_buffer = read_matrix_market(buffer);
    expect_same_matrix(from_file.matrix, from_buffer.matrix);
    EXPECT_EQ(from_file.dia_friendly, from_buffer.dia_friendly);
  }
}

TEST(StreamingReader, CoordinateDuplicateAndEofDiagnosticsSurviveTwoPass) {
  // Diagnostics that depend on cross-pass bookkeeping (the duplicate is
  // detected after scattering, its line recovered by a rescan).
  const std::string head = "%%MatrixMarket matrix coordinate real general\n";
  std::istringstream dup(head + "3 3 3\n1 1 1.0\n2 2 2.0\n1 1 9.0\n");
  try {
    (void)read_matrix_market(dup, "dup.mtx");
    FAIL() << "expected a duplicate diagnostic";
  } catch (const MatrixMarketError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate entry (1, 1)"),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.line(), 5u) << e.what();  // the second occurrence
  }

  // Symmetric storage: the mirror of a duplicated stored entry must be
  // reported with the STORED (lower triangle) coordinates.
  std::istringstream symdup(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n3 1 1.0\n2 2 2.0\n3 1 4.0\n");
  try {
    (void)read_matrix_market(symdup, "symdup.mtx");
    FAIL() << "expected a duplicate diagnostic";
  } catch (const MatrixMarketError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate entry (3, 1)"),
              std::string::npos)
        << e.what();
  }
}

// ---- gzip -------------------------------------------------------------------

TEST(StreamingReader, GzipTwinReadsIdenticalToPlainFile) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  const la::CsrMatrix a = banded(200);
  const std::string plain = ::testing::TempDir() + "twin.mtx";
  const std::string gz = ::testing::TempDir() + "twin.mtx.gz";
  write_matrix_market(plain, a);
  write_matrix_market(gz, a);  // ".gz" suffix compresses

  // The .gz twin is a genuinely compressed file, not a renamed copy...
  const std::string gz_bytes = slurp(gz);
  ASSERT_GE(gz_bytes.size(), 2u);
  EXPECT_TRUE(looks_gzip(gz_bytes.data(), gz_bytes.size()));
  EXPECT_LT(gz_bytes.size(), slurp(plain).size());

  // ...and both paths produce bit-identical CSR arrays.
  const MmMatrix from_plain = read_matrix_market(plain);
  const MmMatrix from_gz = read_matrix_market(gz);
  expect_same_matrix(a, from_plain.matrix);
  expect_same_matrix(from_plain.matrix, from_gz.matrix);
  EXPECT_EQ(from_plain.dia_friendly, from_gz.dia_friendly);

  // Vectors round-trip through .gz the same way.
  Vec v(64);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  const std::string vgz = ::testing::TempDir() + "vec.mtx.gz";
  write_vector(vgz, v);
  EXPECT_EQ(read_vector(vgz), v);

  std::remove(plain.c_str());
  std::remove(gz.c_str());
  std::remove(vgz.c_str());
}

TEST(StreamingReader, GzipBytesAutoDetectInMemoryToo) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  const la::CsrMatrix a = banded(32);
  const std::string compressed = gzip_compress(write_to_string(a));
  std::istringstream in(compressed);
  const MmMatrix mm = read_matrix_market(in, "mem.mtx.gz");
  expect_same_matrix(a, mm.matrix);
}

TEST(StreamingReader, ConcatenatedGzipMembersDecompressAsOneStream) {
  // RFC 1952: "cat a.gz b.gz" is a valid gzip file whose content is the
  // concatenation — bgzip and chunked uploaders produce these.
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  const la::CsrMatrix a = banded(64);
  const std::string text = write_to_string(a);
  const std::string half1 = text.substr(0, text.size() / 2);
  const std::string half2 = text.substr(text.size() / 2);
  std::istringstream in(gzip_compress(half1) + gzip_compress(half2));
  const MmMatrix mm = read_matrix_market(in, "members.mtx.gz");
  expect_same_matrix(a, mm.matrix);

  // Non-gzip trailing bytes after the last member are still corrupt.
  std::istringstream bad(gzip_compress(text) + "trailing junk");
  EXPECT_THROW((void)read_matrix_market(bad, "junk.mtx.gz"),
               MatrixMarketError);
}

TEST(StreamingReader, IstreamOverloadReadsFromTheCurrentPosition) {
  // Historical contract of read_matrix_market(std::istream&): parsing
  // starts wherever the caller left the stream, and the two-pass rewind
  // returns THERE, not to byte 0.
  const la::CsrMatrix a = banded(16);
  std::istringstream in("container-header line\n" + write_to_string(a));
  std::string skipped;
  std::getline(in, skipped);
  const MmMatrix mm = read_matrix_market(in, "offset.mtx");
  expect_same_matrix(a, mm.matrix);
}

TEST(StreamingReader, TruncatedGzipIsDiagnosedNotCrashing) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  const la::CsrMatrix a = banded(200);
  const std::string gz = ::testing::TempDir() + "trunc.mtx.gz";
  write_matrix_market(gz, a);
  const std::string bytes = slurp(gz);
  spit(gz, bytes.substr(0, bytes.size() / 2));  // cut the member short

  try {
    (void)read_matrix_market(gz);
    FAIL() << "expected a truncated-gzip diagnostic";
  } catch (const MatrixMarketError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated gzip stream"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("trunc.mtx.gz"), std::string::npos)
        << e.what();
  }
  std::remove(gz.c_str());
}

TEST(StreamingReader, CorruptGzipIsDiagnosedNotCrashing) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  const la::CsrMatrix a = banded(200);
  const std::string gz = ::testing::TempDir() + "corrupt.mtx.gz";
  write_matrix_market(gz, a);
  std::string bytes = slurp(gz);
  ASSERT_GT(bytes.size(), 64u);
  // Flip bits in the middle of the deflate stream (past the 10-byte gzip
  // header): either inflate fails mid-stream or the trailing CRC check
  // does — both must surface as a corrupt-stream diagnostic.
  for (std::size_t k = bytes.size() / 2; k < bytes.size() / 2 + 8; ++k) {
    bytes[k] = static_cast<char>(~bytes[k]);
  }
  spit(gz, bytes);

  try {
    (void)read_matrix_market(gz);
    FAIL() << "expected a corrupt-gzip diagnostic";
  } catch (const MatrixMarketError& e) {
    EXPECT_NE(std::string(e.what()).find("gzip stream"), std::string::npos)
        << e.what();
  }
  std::remove(gz.c_str());
}

// ---- format=auto ------------------------------------------------------------

TEST(StreamingReader, FormatAutoRoutesThroughTheFormatRegistry) {
  // `auto` probes the matrix PCG actually iterates on (after the colour
  // permutation), banded layout first.  A narrow-band randspd stays
  // diagonal-sparse under its greedy colouring -> DIA; a wide band
  // scatters into hundreds of diagonals, but its row lengths stay locally
  // uniform, so the SELL occupancy probe catches it -> SELL.  (stencil9's
  // four-colour permutation also keeps a bounded diagonal count — the
  // paper's point — so it resolves to DIA, asserted below as the
  // structured-problem case.  The skewed-matrix CSR fallback boundary is
  // covered in test_sell_matrix.cpp, where the matrix can be constructed
  // directly.)
  solver::SolverConfig config;
  config.steps = 2;
  config.format = solver::MatrixFormat::kAuto;

  const auto run = [&](const std::string& spec) {
    problems::DriverInput input;
    input.problem = spec;
    return problems::run(input, config);
  };

  const auto dia = run("randspd:n=1000");
  EXPECT_EQ(dia.format_selected, "dia");
  EXPECT_TRUE(dia.all_converged());

  const auto sell = run("randspd:n=500:band=64");
  EXPECT_EQ(sell.format_selected, "sell");
  EXPECT_TRUE(sell.all_converged());

  const auto stencil = run("stencil9:n=20");
  EXPECT_EQ(stencil.format_selected, "dia");

  // The choice lands in the JSON report for the CI gate to check.
  std::ostringstream json;
  problems::report_json(sell).dump(json);
  EXPECT_NE(json.str().find("\"format_selected\": \"sell\""),
            std::string::npos)
      << json.str();
}

TEST(StreamingReader, FormatAutoSolveMatchesExplicitChoiceBitwise) {
  // Resolving `auto` must route to the same pipeline as naming the format
  // explicitly: identical iteration counts and bitwise-equal solutions.
  problems::DriverInput input;
  input.problem = "randspd:n=1000";

  solver::SolverConfig auto_cfg;
  auto_cfg.steps = 2;
  auto_cfg.format = solver::MatrixFormat::kAuto;
  solver::SolverConfig dia_cfg = auto_cfg;
  dia_cfg.format = solver::MatrixFormat::kDia;

  const auto via_auto = problems::run(input, auto_cfg);
  const auto via_dia = problems::run(input, dia_cfg);
  ASSERT_TRUE(via_auto.batch.ok(0) && via_dia.batch.ok(0));
  EXPECT_EQ(via_auto.batch.reports[0].iterations(),
            via_dia.batch.reports[0].iterations());
  EXPECT_EQ(via_auto.batch.reports[0].solution,
            via_dia.batch.reports[0].solution);
  EXPECT_EQ(via_auto.batch.reports[0].format_selected,
            solver::MatrixFormat::kDia);
  EXPECT_EQ(via_dia.format_selected, "dia");
}

TEST(StreamingReader, FormatAutoRoundTripsThroughConfigString) {
  solver::SolverConfig config;
  config.format = solver::MatrixFormat::kAuto;
  const std::string text = config.to_string();
  EXPECT_NE(text.find("format=auto"), std::string::npos) << text;
  EXPECT_EQ(solver::SolverConfig::from_string(text), config);
  EXPECT_EQ(solver::matrix_format_from_string("auto"),
            solver::MatrixFormat::kAuto);
  EXPECT_THROW((void)solver::matrix_format_from_string("fishy"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mstep::io
