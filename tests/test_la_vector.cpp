// Unit tests for the BLAS-1 kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "la/vector.hpp"
#include "util/rng.hpp"

namespace mstep::la {
namespace {

TEST(Blas1, AxpyAddsScaledVector) {
  Vec x = {1.0, 2.0, 3.0};
  Vec y = {10.0, 20.0, 30.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(Blas1, AxpyZeroCoefficientIsIdentity) {
  Vec x = {5.0, -4.0};
  Vec y = {1.0, 2.0};
  axpy(0.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(Blas1, XpayFormsCgDirectionUpdate) {
  Vec z = {1.0, 1.0};
  Vec p = {2.0, 4.0};
  xpay(z, 0.5, p);  // p = z + 0.5 p
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 3.0);
}

TEST(Blas1, WaxpbyCombines) {
  Vec x = {1.0, 0.0};
  Vec y = {0.0, 1.0};
  Vec w;
  waxpby(3.0, x, -2.0, y, w);
  EXPECT_DOUBLE_EQ(w[0], 3.0);
  EXPECT_DOUBLE_EQ(w[1], -2.0);
}

TEST(Blas1, DotMatchesHandComputation) {
  Vec x = {1.0, 2.0, -3.0};
  Vec y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 - 18.0);
}

TEST(Blas1, DotOfEmptyVectorsIsZero) {
  EXPECT_DOUBLE_EQ(dot(Vec{}, Vec{}), 0.0);
}

TEST(Blas1, Nrm2OfUnitAxis) {
  Vec x = {0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(nrm2(x), 1.0);
}

TEST(Blas1, Nrm2Pythagorean) {
  Vec x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
}

TEST(Blas1, NormInfPicksLargestMagnitude) {
  Vec x = {1.0, -7.5, 3.0};
  EXPECT_DOUBLE_EQ(norm_inf(x), 7.5);
}

TEST(Blas1, DiffNormInfAvoidsFormingDifference) {
  Vec x = {1.0, 2.0, 3.0};
  Vec y = {1.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(diff_norm_inf(x, y), 2.0);
  Vec d;
  sub(x, y, d);
  EXPECT_DOUBLE_EQ(diff_norm_inf(x, y), norm_inf(d));
}

TEST(Blas1, ScaleAndFill) {
  Vec x = {1.0, -2.0};
  scale(-3.0, x);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
  fill(x, 0.25);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.25);
}

TEST(Blas1, HadamardIsElementwiseProduct) {
  Vec x = {2.0, 3.0};
  Vec y = {5.0, -1.0};
  Vec w;
  hadamard(x, y, w);
  EXPECT_DOUBLE_EQ(w[0], 10.0);
  EXPECT_DOUBLE_EQ(w[1], -3.0);
}

TEST(Blas1, DotSymmetryProperty) {
  util::Rng rng(3);
  const Vec x = rng.uniform_vector(100);
  const Vec y = rng.uniform_vector(100);
  EXPECT_DOUBLE_EQ(dot(x, y), dot(y, x));
}

TEST(Blas1, CauchySchwarzProperty) {
  util::Rng rng(4);
  const Vec x = rng.uniform_vector(257);
  const Vec y = rng.uniform_vector(257);
  EXPECT_LE(std::abs(dot(x, y)), nrm2(x) * nrm2(y) * (1 + 1e-14));
}

class Blas1Sizes : public ::testing::TestWithParam<int> {};

TEST_P(Blas1Sizes, AxpyThenSubtractRecoversOriginal) {
  const int n = GetParam();
  util::Rng rng(n);
  const Vec x = rng.uniform_vector(n);
  Vec y = rng.uniform_vector(n);
  const Vec y0 = y;
  axpy(2.5, x, y);
  axpy(-2.5, x, y);
  EXPECT_LT(diff_norm_inf(y, y0), 1e-12);
}

TEST_P(Blas1Sizes, NormInfBoundedByNrm2) {
  const int n = GetParam();
  util::Rng rng(n + 17);
  const Vec x = rng.uniform_vector(n);
  EXPECT_LE(norm_inf(x), nrm2(x) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Blas1Sizes,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 4096));

}  // namespace
}  // namespace mstep::la
