// The batched multi-RHS engine: per-RHS bitwise identity with the serial
// solve for every registered splitting and batch width, the error channel
// (one bad right-hand side never poisons the batch), the batch/threads
// config round-trip, and the zero-thread-pool audit.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "color/coloring.hpp"
#include "fem/plane_stress.hpp"
#include "par/execution.hpp"
#include "par/thread_pool.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace mstep::solver {
namespace {

struct Plate {
  fem::PlateMesh mesh;
  la::CsrMatrix k;
  Vec f;
  color::ColorClasses classes;
};

Plate make_plate(int nodes) {
  fem::PlateMesh mesh = fem::PlateMesh::unit_square(nodes);
  auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                        fem::EdgeLoad{1.0, 0.0});
  auto classes = color::six_color_classes(mesh);
  return {std::move(mesh), std::move(sys.stiffness), std::move(sys.load),
          std::move(classes)};
}

std::vector<Vec> make_rhs_set(const Plate& p, int count) {
  std::vector<Vec> bs;
  bs.reserve(static_cast<std::size_t>(count));
  bs.push_back(p.f);
  util::Rng rng(7);
  for (int j = 1; j < count; ++j) {
    bs.push_back(rng.uniform_vector(p.f.size()));
  }
  return bs;
}

void expect_bitwise_equal(const SolveReport& serial, const SolveReport& batched,
                          const std::string& what) {
  ASSERT_TRUE(serial.converged()) << what;
  ASSERT_TRUE(batched.converged()) << what;
  ASSERT_EQ(serial.iterations(), batched.iterations()) << what;
  ASSERT_EQ(serial.result.final_delta_inf, batched.result.final_delta_inf)
      << what;
  ASSERT_EQ(serial.result.inner_products, batched.result.inner_products)
      << what;
  ASSERT_EQ(serial.solution.size(), batched.solution.size()) << what;
  for (std::size_t i = 0; i < serial.solution.size(); ++i) {
    ASSERT_EQ(serial.solution[i], batched.solution[i]) << what << " i=" << i;
  }
}

// ---- the ISSUE-level guarantee ----------------------------------------------

// For every registered splitting and batch of {1, 3, 16} right-hand sides,
// each batched result is bitwise identical to the corresponding serial
// Prepared::solve.
TEST(SolveMany, EverySplittingAndBatchWidthMatchesSerialBitwise) {
  const Plate p = make_plate(36);  // 2520 equations: above the cutoffs
  const std::vector<Vec> all_bs = make_rhs_set(p, 16);

  for (const auto& splitting : SplittingRegistry::instance().names()) {
    SolverConfig cfg;
    cfg.splitting = splitting;
    cfg.steps = 2;
    cfg.tolerance = 1e-8;

    // Serial references, one per right-hand side.
    const auto serial = Solver::from_config(cfg).prepare(p.k, p.classes);
    std::vector<SolveReport> expected;
    for (const Vec& f : all_bs) expected.push_back(serial.solve(f));

    cfg.batch = 4;  // four concurrent lanes on the shared pool
    const auto solver = Solver::from_config(cfg);
    const auto prepared = solver.prepare(p.k, p.classes);
    for (const int width : {1, 3, 16}) {
      const std::vector<Vec> bs(all_bs.begin(), all_bs.begin() + width);
      const BatchReport br = prepared.solveMany(bs);
      ASSERT_EQ(br.size(), static_cast<std::size_t>(width));
      ASSERT_EQ(br.num_failed(), 0u);
      ASSERT_TRUE(br.all_converged());
      EXPECT_GE(br.concurrency, 1);
      EXPECT_LE(br.concurrency, 4);
      for (int i = 0; i < width; ++i) {
        expect_bitwise_equal(expected[static_cast<std::size_t>(i)],
                             br.reports[static_cast<std::size_t>(i)],
                             splitting + " width=" + std::to_string(width) +
                                 " rhs=" + std::to_string(i));
      }
    }
  }
}

TEST(SolveMany, GenericSsorOmegaAndNaturalOrderingMatchSerial) {
  const Plate p = make_plate(36);
  const std::vector<Vec> bs = make_rhs_set(p, 5);

  // omega != 1 leaves the Algorithm-2 fast path; natural ordering skips
  // the colour permutation entirely.  Both must batch bitwise.
  for (const bool natural : {false, true}) {
    SolverConfig cfg;
    cfg.splitting_options["omega"] = 1.3;
    cfg.steps = 2;
    cfg.tolerance = 1e-8;
    if (natural) cfg.ordering = Ordering::kNatural;

    const auto serial = natural
                            ? Solver::from_config(cfg).prepare(p.k)
                            : Solver::from_config(cfg).prepare(p.k, p.classes);
    cfg.batch = 3;
    const auto batched_solver = Solver::from_config(cfg);
    const auto prepared = natural
                              ? batched_solver.prepare(p.k)
                              : batched_solver.prepare(p.k, p.classes);
    const BatchReport br = prepared.solveMany(bs);
    ASSERT_TRUE(br.all_converged());
    for (std::size_t i = 0; i < bs.size(); ++i) {
      expect_bitwise_equal(serial.solve(bs[i]), br.reports[i],
                           std::string(natural ? "natural" : "multicolor") +
                               " omega=1.3 rhs=" + std::to_string(i));
    }
  }
}

TEST(SolveMany, DiaFormatBatchesBitwise) {
  const Plate p = make_plate(36);
  const std::vector<Vec> bs = make_rhs_set(p, 3);
  SolverConfig cfg;
  cfg.format = MatrixFormat::kDia;
  cfg.steps = 2;
  cfg.tolerance = 1e-8;
  const auto serial = Solver::from_config(cfg).prepare(p.k, p.classes);
  cfg.batch = 3;
  const BatchReport br =
      Solver::from_config(cfg).prepare(p.k, p.classes).solveMany(bs);
  ASSERT_TRUE(br.all_converged());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    expect_bitwise_equal(serial.solve(bs[i]), br.reports[i],
                         "dia rhs=" + std::to_string(i));
  }
}

TEST(SolveMany, PlainCgBatchesBitwise) {
  const Plate p = make_plate(36);
  const std::vector<Vec> bs = make_rhs_set(p, 3);
  SolverConfig cfg;
  cfg.steps = 0;  // identity preconditioner
  cfg.ordering = Ordering::kNatural;
  cfg.tolerance = 1e-8;
  const auto serial = Solver::from_config(cfg).prepare(p.k);
  cfg.batch = 3;
  const BatchReport br =
      Solver::from_config(cfg).prepare(p.k).solveMany(bs);
  ASSERT_TRUE(br.all_converged());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    expect_bitwise_equal(serial.solve(bs[i]), br.reports[i],
                         "m=0 rhs=" + std::to_string(i));
  }
}

// ---- error channel ----------------------------------------------------------

TEST(SolveMany, ExceptionInOneRhsLeavesOtherReportsIntact) {
  const Plate p = make_plate(36);
  std::vector<Vec> bs = make_rhs_set(p, 3);
  bs[1].resize(bs[1].size() - 7);  // dimension mismatch: this RHS throws

  SolverConfig cfg;
  cfg.tolerance = 1e-8;
  cfg.batch = 2;
  const auto prepared = Solver::from_config(cfg).prepare(p.k, p.classes);
  const BatchReport br = prepared.solveMany(bs);

  ASSERT_EQ(br.num_failed(), 1u);
  EXPECT_FALSE(br.ok(1));
  EXPECT_FALSE(br.all_converged());
  EXPECT_THROW(br.rethrow_first_error(), std::invalid_argument);

  // The healthy right-hand sides completed, bitwise as ever.
  SolverConfig serial_cfg;
  serial_cfg.tolerance = cfg.tolerance;
  const auto serial = Solver::from_config(serial_cfg).prepare(p.k, p.classes);
  ASSERT_TRUE(br.ok(0));
  ASSERT_TRUE(br.ok(2));
  expect_bitwise_equal(serial.solve(bs[0]), br.reports[0], "surviving rhs 0");
  expect_bitwise_equal(serial.solve(bs[2]), br.reports[2], "surviving rhs 2");
}

TEST(SolveMany, EmptyBatchAndBadConcurrency) {
  const Plate p = make_plate(12);
  SolverConfig cfg;
  const auto prepared = Solver::from_config(cfg).prepare(p.k, p.classes);
  const BatchReport br = prepared.solveMany(std::vector<Vec>{});
  EXPECT_EQ(br.size(), 0u);
  EXPECT_TRUE(br.all_converged());
  EXPECT_EQ(br.num_failed(), 0u);

  BatchConfig bad;
  bad.concurrency = -1;
  const std::vector<Vec> bs = {p.f};
  EXPECT_THROW((void)prepared.solveMany(bs, bad), std::invalid_argument);
}

TEST(SolveMany, ExplicitConcurrencyIsHonored) {
  const Plate p = make_plate(36);
  const std::vector<Vec> bs = make_rhs_set(p, 8);
  SolverConfig cfg;
  cfg.tolerance = 1e-8;
  cfg.batch = 6;
  const auto prepared = Solver::from_config(cfg).prepare(p.k, p.classes);

  // Config default caps the lanes...
  EXPECT_EQ(prepared.solveMany(bs).concurrency, 6);
  // ...the per-call override wins over it...
  BatchConfig two;
  two.concurrency = 2;
  EXPECT_EQ(prepared.solveMany(bs, two).concurrency, 2);
  // ...and lanes never exceed the pool width or the RHS count.
  BatchConfig many;
  many.concurrency = 100;
  EXPECT_EQ(prepared.solveMany(bs, many).concurrency, 6);  // pool width
}

// ---- config plumbing --------------------------------------------------------

TEST(BatchConfig, RoundTripsThroughStringAndCli) {
  SolverConfig cfg;
  cfg.batch = 8;
  EXPECT_NE(cfg.to_string().find(";batch=8"), std::string::npos);
  EXPECT_EQ(cfg, SolverConfig::from_string(cfg.to_string()));

  const char* argv[] = {"prog", "--batch=5", "--threads=2"};
  const util::Cli cli(3, argv, SolverConfig::cli_flags());
  const auto from_cli = SolverConfig::from_cli(cli);
  EXPECT_EQ(from_cli.batch, 5);
  EXPECT_EQ(from_cli.execution.threads, 2);

  // batch=0 (the default) keeps config strings unchanged.
  EXPECT_EQ(SolverConfig{}.to_string().find("batch"), std::string::npos);
  EXPECT_THROW(SolverConfig::from_string("batch=-1"), std::invalid_argument);
}

TEST(BatchConfig, BatchOnlyConfigKeepsKernelPathSerial) {
  // threads=0;batch=4: a pool exists for the lanes, but each individual
  // solve must run the serial kernel path — bitwise AND structurally (the
  // single-solve result equals the fully serial solver's).
  const Plate p = make_plate(36);
  SolverConfig cfg;
  cfg.tolerance = 1e-8;
  const auto serial = Solver::from_config(cfg);
  EXPECT_EQ(serial.execution(), nullptr);

  cfg.batch = 4;
  const auto batched = Solver::from_config(cfg);
  ASSERT_NE(batched.execution(), nullptr);
  EXPECT_EQ(batched.execution()->threads(), 4);

  const auto a = serial.solve(p.k, p.f, p.classes);
  const auto b = batched.solve(p.k, p.f, p.classes);
  expect_bitwise_equal(a, b, "threads=0;batch=4 single solve");
  EXPECT_EQ(a.preconditioner_name, b.preconditioner_name);
}

// ---- the zero-thread-pool audit ---------------------------------------------

TEST(ZeroThreadAudit, ThreadPoolRefusesNonPositiveCounts) {
  EXPECT_THROW(par::ThreadPool(0), std::invalid_argument);
  EXPECT_THROW(par::ThreadPool(-3), std::invalid_argument);
}

TEST(ZeroThreadAudit, ResolveCollapsesZeroAndOneToSerial) {
  EXPECT_EQ(ExecutionConfig{0}.resolve(), 0);
  EXPECT_EQ(ExecutionConfig{1}.resolve(), 0);
  EXPECT_EQ(ExecutionConfig{2}.resolve(), 2);
  EXPECT_EQ(ExecutionConfig{8}.resolve(), 8);
}

TEST(ZeroThreadAudit, RoundTrippedSerialConfigsBuildNoPool) {
  // threads=0 and threads=1 both mean serial after any round-trip: the
  // solver constructs no execution engine, so no path can reach a
  // 0-thread pool.
  for (const std::string text : {"m=2", "m=2;threads=1"}) {
    const auto solver = Solver::from_string(text);
    EXPECT_EQ(solver.execution(), nullptr) << text;
  }
  const auto cfg = SolverConfig::from_string("m=2;threads=1");
  EXPECT_EQ(cfg.execution.resolve(), 0);
}

}  // namespace
}  // namespace mstep::solver
