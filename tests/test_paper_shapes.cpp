// Shape-regression tests: the paper's headline observations encoded as
// assertions, on problem sizes small enough for CI.  If a change to the
// library breaks one of these, the reproduction no longer reproduces.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "cyber/table2_driver.hpp"
#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"

namespace mstep {
namespace {

// ---- Table 2 shapes ------------------------------------------------------------

struct Table2Fixture : public ::testing::Test {
  static const std::vector<cyber::Table2Column>& columns() {
    static const std::vector<cyber::Table2Column> cols = [] {
      cyber::Table2Options opt;
      opt.plate_sizes = {12, 24};
      opt.max_m = 8;
      opt.both_variants_up_to = 3;
      return cyber::run_table2(opt);
    }();
    return cols;
  }

  static int iterations(const cyber::Table2Column& col, int m, bool param) {
    for (const auto& row : col.rows) {
      if (row.m == m && row.parametrized == param) return row.iterations;
    }
    return -1;
  }
};

TEST_F(Table2Fixture, Observation1ParametrizedBeatsUnparametrized) {
  for (const auto& col : columns()) {
    for (int m : {2, 3}) {
      EXPECT_LE(iterations(col, m, true), iterations(col, m, false))
          << "a=" << col.a << " m=" << m;
    }
  }
}

TEST_F(Table2Fixture, IterationsDecreaseMonotonicallyInM) {
  for (const auto& col : columns()) {
    int prev = iterations(col, 0, false);
    for (int m = 2; m <= 8; ++m) {
      const int cur = iterations(col, m, true);
      EXPECT_LE(cur, prev) << "a=" << col.a << " m=" << m;
      prev = cur;
    }
  }
}

TEST_F(Table2Fixture, Observation2OptimalMGrowsWithProblemSize) {
  std::vector<int> best;
  for (const auto& col : columns()) {
    int best_m = 0;
    double best_t = 1e300;
    for (const auto& row : col.rows) {
      if (!row.parametrized && row.m != 0) continue;
      if (row.model_seconds < best_t) {
        best_t = row.model_seconds;
        best_m = row.m;
      }
    }
    best.push_back(best_m);
  }
  ASSERT_EQ(best.size(), 2u);
  EXPECT_LE(best[0], best[1]);  // larger plate -> at least as many steps
  EXPECT_GE(best[1], 3);        // and deep preconditioning pays there
}

TEST_F(Table2Fixture, UnparametrizedStepsDoNotPayInTime) {
  // The paper's motivation for parametrizing: at small m the plain m-step
  // preconditioner saves iterations but not time.
  for (const auto& col : columns()) {
    double t0 = 0.0, t1 = 0.0;
    for (const auto& row : col.rows) {
      if (row.m == 0) t0 = row.model_seconds;
      if (row.m == 1 && !row.parametrized) t1 = row.model_seconds;
    }
    EXPECT_GT(t1, 0.9 * t0) << "a=" << col.a;
  }
}

// ---- Table 3 shapes ---------------------------------------------------------------

struct Table3Run {
  int iterations;
  double t1, t2, t5;
};

Table3Run run_table3(int m, bool parametrized) {
  const fem::PlateMesh mesh(6, 6);
  const fem::Material mat;
  const fem::EdgeLoad load{1.0, 0.0};
  femsim::DistOptions opt;
  opt.m = m;
  opt.parametrized = parametrized;
  opt.tolerance = 1e-4;

  const femsim::DistributedPlateSolver s1(mesh, mat, load,
                                          femsim::row_bands(mesh, 1));
  const femsim::DistributedPlateSolver s2(mesh, mat, load,
                                          femsim::row_bands(mesh, 2));
  const femsim::DistributedPlateSolver s5(mesh, mat, load,
                                          femsim::column_strips(mesh, 5));
  const auto r1 = s1.solve(opt);
  const auto r2 = s2.solve(opt);
  const auto r5 = s5.solve(opt);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.iterations, r5.iterations);
  return {r1.iterations, r1.simulated_seconds, r2.simulated_seconds,
          r5.simulated_seconds};
}

TEST(Table3Shapes, SpeedupBandsMatchPaper) {
  // Paper: 1.92..1.80 (P=2) and 3.58..3.06 (P=5).
  const auto cg = run_table3(0, false);
  EXPECT_GT(cg.t1 / cg.t2, 1.85);
  EXPECT_LT(cg.t1 / cg.t2, 2.0);
  EXPECT_GT(cg.t1 / cg.t5, 3.3);
  EXPECT_LT(cg.t1 / cg.t5, 3.8);
}

TEST(Table3Shapes, Observation3SpeedupDegradesWithM) {
  const auto cg = run_table3(0, false);
  const auto m4 = run_table3(4, true);
  EXPECT_LT(m4.t1 / m4.t2, cg.t1 / cg.t2);
  EXPECT_LT(m4.t1 / m4.t5, cg.t1 / cg.t5);
}

TEST(Table3Shapes, Observation2MultipleUnparametrizedStepsDoNotHelp) {
  const auto m1 = run_table3(1, false);
  for (int m : {2, 3, 4}) {
    const auto r = run_table3(m, false);
    EXPECT_GT(r.t1, 0.95 * m1.t1) << "m=" << m;
  }
}

TEST(Table3Shapes, EffectivenessOrderingMatchesPaper) {
  // Paper observation (1): 4P <= 5P <= 3P <= 2P <= 1 <= 2 <= 3 <= 4 in
  // iteration counts (identical across processor counts).
  const int i4p = run_table3(4, true).iterations;
  const int i3p = run_table3(3, true).iterations;
  const int i2p = run_table3(2, true).iterations;
  const int i1 = run_table3(1, false).iterations;
  const int i0 = run_table3(0, false).iterations;
  EXPECT_LE(i4p, i3p);
  EXPECT_LE(i3p, i2p);
  EXPECT_LE(i2p, i1);
  EXPECT_LT(i1, i0);
}

// ---- eq. (4.2) shape ------------------------------------------------------------------

TEST(Eq42Shape, DeeperStepsPreferredOnLargerProblems) {
  // The left side of criterion 2 at a fixed m grows with problem size
  // relative to B/A — the paper's a=80-only verdict in miniature.
  cyber::Table2Options opt;
  opt.plate_sizes = {12, 28};
  opt.max_m = 6;
  opt.both_variants_up_to = 0;
  const auto cols = cyber::run_table2(opt);

  int extra_small = 0, extra_large = 0;
  for (std::size_t k = 0; k < cols.size(); ++k) {
    const auto ab = cyber::measure_cost_decomposition(cols[k].a, opt.machine);
    std::vector<int> iters;
    for (const auto& row : cols[k].rows) {
      if (row.m == 0 || row.parametrized) iters.push_back(row.iterations);
    }
    int count = 0;
    for (std::size_t m = 1; m + 1 < iters.size(); ++m) {
      if (core::prefer_m_plus_1(static_cast<int>(m) + 1, iters[m],
                                iters[m + 1],
                                {ab.a_seconds, ab.b_seconds})
              .take_extra_step) {
        ++count;
      }
    }
    (k == 0 ? extra_small : extra_large) = count;
  }
  EXPECT_GE(extra_large, extra_small);
}

}  // namespace
}  // namespace mstep
