// Tests for the CYBER 203/205 vector timing model and the Table 2 driver.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "color/coloring.hpp"
#include "core/kernel_log.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "cyber/masked_layout.hpp"
#include "cyber/table2_driver.hpp"
#include "cyber/vector_model.hpp"
#include "fem/plane_stress.hpp"
#include "util/rng.hpp"

namespace mstep::cyber {
namespace {

TEST(VectorModel, EfficiencyMatchesPaperAnchors) {
  // Section 3.1: ~90% at n=1000, ~50% at n=100, ~10% at n=10.
  const CyberParams p;
  EXPECT_NEAR(p.efficiency(1000), 0.90, 0.02);
  EXPECT_NEAR(p.efficiency(100), 0.50, 0.01);
  EXPECT_NEAR(p.efficiency(10), 0.10, 0.01);
}

TEST(VectorModel, VecOpTimeIsAffineInLength) {
  CyberModel m;
  m.vec_op(1000, 1);
  const double t1000 = m.seconds();
  m.reset();
  m.vec_op(2000, 1);
  const double t2000 = m.seconds();
  // Affine law: t(2000) - t(1000) = tau * 1000 exactly.
  EXPECT_NEAR(t2000 - t1000, m.params().tau * 1000.0, 1e-15);
}

TEST(VectorModel, DotCostsMoreThanVecOp) {
  // "considerably slower than the other vector operations"
  CyberModel m;
  m.vec_op(500, 1);
  const double vec = m.seconds();
  m.reset();
  m.dot_op(500);
  EXPECT_GT(m.seconds(), 2.0 * vec);
}

TEST(VectorModel, SpmvScalesWithDiagonalCount) {
  CyberModel m;
  m.spmv_diagonals(1000, 5);
  const double t5 = m.seconds();
  m.reset();
  m.spmv_diagonals(1000, 10);
  EXPECT_NEAR(m.seconds(), 2.0 * t5, 1e-12);
}

TEST(VectorModel, CategoriesSumToTotal) {
  CyberModel m;
  m.vec_op(100, 3);
  m.dot_op(200);
  m.spmv_diagonals(100, 4);
  m.diag_op(50);
  m.max_op(80);
  EXPECT_NEAR(m.vector_seconds() + m.dot_seconds() + m.spmv_seconds(),
              m.seconds(), 1e-12);
}

TEST(CountingLog, CountsPcgKernels) {
  const fem::PlateMesh mesh(5, 5);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  core::CountingLog log;
  core::PcgOptions opt;
  opt.tolerance = std::numeric_limits<double>::denorm_min();  // unreachable
  opt.max_iterations = 4;  // run exactly 4 iterations
  (void)core::cg_solve(sys.stiffness, sys.load, opt, &log);
  EXPECT_EQ(log.iterations, 4);
  // 1 initial dot + 2 per iteration (the run never converges, so even the
  // final iteration computes its beta dot).
  EXPECT_EQ(log.dots, 1 + 2 * 4);
  // 1 initial residual SpMV + 1 per iteration.
  EXPECT_EQ(log.spmvs, 1 + 4);
  EXPECT_EQ(log.maxes, 4);
  EXPECT_GT(log.flops, 0);
}

TEST(CountingLog, PrecondStepsCounted) {
  const fem::PlateMesh mesh(5, 5);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  core::CountingLog log;
  const int m = 3;
  const core::MulticolorMStepSsor prec(cs, core::unparametrized_alphas(m),
                                       &log);
  core::PcgOptions opt;
  opt.tolerance = std::numeric_limits<double>::denorm_min();  // unreachable
  opt.max_iterations = 5;
  (void)core::pcg_solve(cs.matrix, cs.permute(sys.load), prec, opt, &log);
  // (iterations + 1 initial) preconditioner applications, m steps each.
  EXPECT_EQ(log.precond_steps, (5 + 1) * m);
}

// ---- the padded CYBER layout (Section 3.1) -------------------------------------

TEST(MaskedLayout, ClassLengthsCoverAllNodes) {
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(10);
  const auto layout = MaskedLayout::build(mesh);
  EXPECT_EQ(layout.padded_size(), 2 * mesh.num_nodes());
  EXPECT_EQ(layout.num_classes(), 6);
  index_t total = 0;
  for (int k = 0; k < 6; ++k) total += layout.class_length(k);
  EXPECT_EQ(total, layout.padded_size());
}

TEST(MaskedLayout, MaxClassLengthIsASquaredOverThree) {
  // The paper: "the maximum vector length for our test problem is [a^2/3]
  // and is around 1000 when a = 55".
  for (int a : {20, 41, 55}) {
    const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
    const auto layout = MaskedLayout::build(mesh);
    EXPECT_NEAR(static_cast<double>(layout.max_class_length()),
                a * a / 3.0, 2.0)
        << "a=" << a;
  }
  const auto l55 =
      MaskedLayout::build(fem::PlateMesh::unit_square(55)).max_class_length();
  EXPECT_NEAR(static_cast<double>(l55), 1000.0, 15.0);
}

TEST(MaskedLayout, ControlVectorSuppressesConstrainedColumn) {
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(6);
  const auto layout = MaskedLayout::build(mesh);
  index_t suppressed = 0;
  for (index_t slot = 0; slot < layout.padded_size(); ++slot) {
    if (!layout.control()[slot]) {
      ++suppressed;
      EXPECT_EQ(layout.equation_at(slot), -1);
    } else {
      EXPECT_GE(layout.equation_at(slot), 0);
    }
  }
  // Two dofs per constrained node (the left column).
  EXPECT_EQ(suppressed, 2 * mesh.nrows());
  EXPECT_NEAR(layout.live_fraction(),
              static_cast<double>(mesh.num_equations()) /
                  (2.0 * mesh.num_nodes()),
              1e-12);
}

TEST(MaskedLayout, ExpandCompressRoundTrip) {
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(7);
  const auto layout = MaskedLayout::build(mesh);
  util::Rng rng(4);
  const Vec compressed = rng.uniform_vector(mesh.num_equations());
  const Vec padded = layout.expand(compressed);
  const Vec back = layout.compress(padded);
  ASSERT_EQ(back.size(), compressed.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], compressed[i]);
  }
  // Suppressed slots stay zero after expand.
  for (index_t slot = 0; slot < layout.padded_size(); ++slot) {
    if (!layout.control()[slot]) EXPECT_DOUBLE_EQ(padded[slot], 0.0);
  }
}

TEST(MaskedLayout, SlotMappingIsConsistent) {
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(5);
  const auto layout = MaskedLayout::build(mesh);
  for (index_t eq = 0; eq < mesh.num_equations(); ++eq) {
    EXPECT_EQ(layout.equation_at(layout.slot_of(eq)), eq);
  }
}

TEST(Table2Driver, QuickSweepHasExpectedLayout) {
  Table2Options opt;
  opt.plate_sizes = {8};
  opt.max_m = 3;
  opt.both_variants_up_to = 2;
  const auto cols = run_table2(opt);
  ASSERT_EQ(cols.size(), 1u);
  const auto& c = cols[0];
  EXPECT_EQ(c.n, 2 * 8 * 7);
  // rows: m=0, m=1, m=2, m=2P, m=3P.
  ASSERT_EQ(c.rows.size(), 5u);
  EXPECT_EQ(c.rows[0].m, 0);
  EXPECT_EQ(c.rows[3].m, 2);
  EXPECT_TRUE(c.rows[3].parametrized);
  for (const auto& row : c.rows) {
    EXPECT_TRUE(row.converged);
    EXPECT_GT(row.model_seconds, 0.0);
  }
}

TEST(Table2Driver, MaxVectorLengthNearASquaredOverThree) {
  Table2Options opt;
  opt.plate_sizes = {20};
  opt.max_m = 0;
  const auto cols = run_table2(opt);
  // v ~ a^2/3 (the paper quotes 132 for a=20; class sizes differ slightly
  // because only unconstrained columns carry equations).
  EXPECT_NEAR(static_cast<double>(cols[0].max_vector_len), 20.0 * 20.0 / 3.0,
              15.0);
}

TEST(Table2Driver, ParametrizedNeverSlowerAtEqualM) {
  Table2Options opt;
  opt.plate_sizes = {12};
  opt.max_m = 3;
  opt.both_variants_up_to = 3;
  const auto cols = run_table2(opt);
  int iters_plain[4] = {0, 0, 0, 0};
  int iters_param[4] = {0, 0, 0, 0};
  for (const auto& row : cols[0].rows) {
    if (row.m >= 2 && row.m <= 3) {
      (row.parametrized ? iters_param : iters_plain)[row.m] = row.iterations;
    }
  }
  for (int m = 2; m <= 3; ++m) {
    EXPECT_LE(iters_param[m], iters_plain[m]) << "m=" << m;
  }
}

TEST(CostDecomposition, BothPositiveAndBSmallerThanA) {
  const auto ab = measure_cost_decomposition(12, CyberParams{});
  EXPECT_GT(ab.a_seconds, 0.0);
  EXPECT_GT(ab.b_seconds, 0.0);
  // One preconditioner step costs less than a full CG iteration (which
  // contains a full SpMV plus two inner products).
  EXPECT_LT(ab.b_seconds, ab.a_seconds);
}

TEST(CostDecomposition, Eq41FitPredictsModelTime) {
  // T_m ~ N_m (A + mB): check the fit against a real modelled run.
  const int a = 16;
  const auto ab = measure_cost_decomposition(a, CyberParams{});
  Table2Options opt;
  opt.plate_sizes = {a};
  opt.max_m = 4;
  opt.both_variants_up_to = 0;
  const auto cols = run_table2(opt);
  for (const auto& row : cols[0].rows) {
    if (row.m < 2) continue;
    const double fit = row.iterations * (ab.a_seconds + row.m * ab.b_seconds);
    EXPECT_NEAR(fit / row.model_seconds, 1.0, 0.25)
        << "m=" << row.m << " fit=" << fit << " model=" << row.model_seconds;
  }
}

}  // namespace
}  // namespace mstep::cyber
