// Edge-case and failure-injection tests across modules: the paths a
// downstream user hits when they misuse the API or feed degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "fem/poisson.hpp"
#include "femsim/machine.hpp"
#include "la/dia_matrix.hpp"
#include "la/polynomial.hpp"
#include "split/splitting.hpp"
#include "util/rng.hpp"

namespace mstep {
namespace {

TEST(EdgeCase, PlateMeshRejectsDegenerateGrids) {
  EXPECT_THROW(fem::PlateMesh(1, 5), std::invalid_argument);
  EXPECT_THROW(fem::PlateMesh(5, 1), std::invalid_argument);
}

TEST(EdgeCase, PoissonRejectsEmptyGrid) {
  EXPECT_THROW(fem::PoissonProblem(0, 3), std::invalid_argument);
}

TEST(EdgeCase, SmallestPlateSolves) {
  // 2x2 nodes: 4 equations — the smallest legal problem end to end.
  const fem::PlateMesh mesh(2, 2);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  EXPECT_EQ(sys.stiffness.rows(), 4);
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const core::MulticolorMStepSsor prec(
      cs, core::least_squares_alphas(2, core::ssor_interval()));
  core::PcgOptions opt;
  opt.tolerance = 1e-12;
  const auto res = core::pcg_solve(cs.matrix, cs.permute(sys.load), prec, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_residual2, 1e-8);
}

TEST(EdgeCase, SixColorClassesMayBeEmptyOnTinyPlates) {
  // A 2x2 plate has only some colours among its unconstrained nodes; the
  // machinery must tolerate empty classes.
  const fem::PlateMesh mesh(2, 2);
  const auto classes = color::six_color_classes(mesh);
  const auto sys =
      fem::assemble_plane_stress(mesh, fem::Material{}, fem::EdgeLoad{});
  EXPECT_TRUE(color::coloring_is_valid(sys.stiffness, classes));
  int empty = 0;
  for (const auto& c : classes.classes) {
    if (c.empty()) ++empty;
  }
  EXPECT_GT(empty, 0);
}

TEST(EdgeCase, MStepRejectsEmptyAlphas) {
  const fem::PoissonProblem prob(3, 3);
  const auto a = prob.matrix();
  const split::JacobiSplitting jac(a);
  EXPECT_THROW(core::MStepPreconditioner(a, jac, {}), std::invalid_argument);
}

TEST(EdgeCase, MStepRejectsSizeMismatch) {
  const fem::PoissonProblem p1(3, 3);
  const fem::PoissonProblem p2(4, 4);
  const auto a1 = p1.matrix();
  const auto a2 = p2.matrix();
  const split::JacobiSplitting jac2(a2);
  EXPECT_THROW(core::MStepPreconditioner(a1, jac2, {1.0}),
               std::invalid_argument);
}

TEST(EdgeCase, PcgRejectsWrongRhsSize) {
  const fem::PoissonProblem prob(3, 3);
  const auto a = prob.matrix();
  const Vec bad(a.rows() + 1, 1.0);
  EXPECT_THROW((void)core::cg_solve(a, bad), std::invalid_argument);
}

TEST(EdgeCase, PcgZeroRhsReturnsZeroImmediately) {
  const fem::PoissonProblem prob(4, 4);
  const auto a = prob.matrix();
  const Vec zero(a.rows(), 0.0);
  core::PcgOptions opt;
  opt.tolerance = 1e-10;
  const auto res = core::cg_solve(a, zero, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 1);
  for (double v : res.solution) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCase, DiaMatrixRejectsRectangular) {
  la::CooBuilder b(2, 3);
  b.add(0, 0, 1.0);
  EXPECT_THROW((void)la::DiaMatrix::from_csr(b.build()),
               std::invalid_argument);
}

TEST(EdgeCase, DiaStoredValuesAccountsAllDiagonals) {
  const auto a = fem::PoissonProblem(4, 4).matrix();
  const auto d = la::DiaMatrix::from_csr(a);
  EXPECT_EQ(d.stored_values(),
            static_cast<std::size_t>(d.num_diagonals()) * a.rows());
}

TEST(EdgeCase, PolynomialTrimDropsZeros) {
  la::Polynomial p({1.0, 2.0, 0.0, 0.0});
  p.trim();
  EXPECT_EQ(p.degree(), 1);
  la::Polynomial zero({0.0, 0.0});
  zero.trim();
  EXPECT_EQ(zero.degree(), 0);
}

TEST(EdgeCase, MinmaxRejectsBadIntervals) {
  EXPECT_THROW((void)core::minmax_alphas(3, {-0.1, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)core::minmax_alphas(0, {0.1, 1.0}),
               std::invalid_argument);
}

TEST(EdgeCase, LeastSquaresRejectsZeroSteps) {
  EXPECT_THROW((void)core::least_squares_alphas(0, core::ssor_interval()),
               std::invalid_argument);
}

TEST(EdgeCase, MachineSingleProcessorCollectives) {
  femsim::Machine m(1, femsim::FemCosts{});
  double sum = 0.0;
  bool flags = false;
  m.run([&](femsim::Proc& p) {
    sum = p.allreduce_sum(2.5);
    flags = p.all_flags(true);
    p.barrier();
  });
  EXPECT_DOUBLE_EQ(sum, 2.5);
  EXPECT_TRUE(flags);
}

TEST(EdgeCase, MachineRejectsZeroProcessors) {
  EXPECT_THROW(femsim::Machine(0, femsim::FemCosts{}), std::invalid_argument);
}

TEST(EdgeCase, MachineManySmallMessages) {
  // Stress the mailbox under interleaved tags and senders.
  femsim::Machine m(3, femsim::FemCosts{});
  std::vector<double> sums(3, 0.0);
  m.run([&](femsim::Proc& p) {
    const int r = p.rank();
    for (int round = 0; round < 50; ++round) {
      for (int q = 0; q < 3; ++q) {
        if (q != r) p.send(q, round, {static_cast<double>(r + round)});
      }
      double s = 0.0;
      for (int q = 0; q < 3; ++q) {
        if (q != r) s += p.recv(q, round)[0];
      }
      sums[r] += s;
    }
  });
  // Each proc receives (sum of other ranks + 2*round) every round.
  double expect0 = 0.0;
  for (int round = 0; round < 50; ++round) expect0 += 1 + 2 + 2 * round;
  EXPECT_DOUBLE_EQ(sums[0], expect0);
}

TEST(EdgeCase, ColoredSystemSingleClassOnDiagonalMatrix) {
  // A purely diagonal matrix is decoupled even with ONE class.
  la::CooBuilder b(4, 4);
  for (index_t i = 0; i < 4; ++i) b.add(i, i, 2.0 + i);
  const auto a = b.build();
  color::ColorClasses one;
  one.classes.assign(1, {0, 1, 2, 3});
  const auto cs = color::make_colored_system(a, one);
  const core::MulticolorMStepSsor prec(cs, {1.0});
  Vec z;
  const Vec r = {2.0, 3.0, 4.0, 5.0};
  prec.apply(r, z);
  for (index_t i = 0; i < 4; ++i) EXPECT_NEAR(z[i], r[i] / (2.0 + i), 1e-14);
}

TEST(EdgeCase, UnitDiagonalScalingInvariance) {
  // kappa(M^{-1}K) is invariant under scaling all alphas; PCG iteration
  // counts must be too.
  const fem::PlateMesh mesh(6, 6);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const Vec f = cs.permute(sys.load);
  auto alphas = core::least_squares_alphas(3, core::ssor_interval());
  core::PcgOptions opt;
  opt.tolerance = 1e-9;
  opt.stop_rule = core::StopRule::kResidual2;
  const core::MulticolorMStepSsor p1(cs, alphas);
  const auto r1 = core::pcg_solve(cs.matrix, f, p1, opt);
  for (auto& v : alphas) v *= 17.0;
  const core::MulticolorMStepSsor p2(cs, alphas);
  const auto r2 = core::pcg_solve(cs.matrix, f, p2, opt);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

}  // namespace
}  // namespace mstep
