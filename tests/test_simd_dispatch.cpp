// The SIMD dispatch contract: the portable twins and the AVX2 kernels
// execute the same fixed-lane operation schedule, so forcing either path
// produces BITWISE identical results — per kernel, and end to end for
// every splitting x format x threading combination.  This is the in-tree
// half of the CI simd-dispatch job, which additionally reruns whole test
// binaries under MSTEP_SIMD=off.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/sell_matrix.hpp"
#include "la/simd.hpp"
#include "la/vector.hpp"
#include "problems/problem.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace mstep {
namespace {

using la::simd::SimdMode;
using la::simd::SimdModeGuard;

bool bitwise_equal(const Vec& a, const Vec& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(SimdDispatch, ModeApiReportsTheForcedPath) {
  {
    const SimdModeGuard guard(SimdMode::kForceScalar);
    EXPECT_FALSE(la::simd::simd_active());
    EXPECT_STREQ(la::simd::simd_isa(), "scalar");
  }
  {
    const SimdModeGuard guard(SimdMode::kForceVector);
    // Forcing the vector path still requires hardware support; either
    // way the answer must be consistent with simd_available().
    EXPECT_EQ(la::simd::simd_active(), la::simd::simd_available());
  }
  if (la::simd::simd_available()) {
    EXPECT_TRUE(la::simd::simd_compiled());
  }
}

TEST(SimdDispatch, ReductionKernelsAreBitwiseAcrossPaths) {
  util::Rng rng(3);
  // Odd length exercises the lane tails; include magnitude spread so a
  // different summation order would actually change the bits.
  const std::size_t n = 10007;
  Vec x = rng.uniform_vector(n, -1.0, 1.0);
  Vec y = rng.uniform_vector(n, -1e6, 1e6);
  for (std::size_t i = 0; i < n; i += 97) x[i] *= 1e-9;

  double dot_scalar;
  double dot_vector;
  {
    const SimdModeGuard guard(SimdMode::kForceScalar);
    dot_scalar = la::dot(x, y);
  }
  {
    const SimdModeGuard guard(SimdMode::kForceVector);
    dot_vector = la::dot(x, y);
  }
  EXPECT_TRUE(bitwise_equal(dot_scalar, dot_vector));
}

TEST(SimdDispatch, ElementwiseKernelsAreBitwiseAcrossPaths) {
  util::Rng rng(5);
  const std::size_t n = 4099;
  const Vec x = rng.uniform_vector(n);
  const Vec y0 = rng.uniform_vector(n);

  Vec y_scalar = y0;
  Vec y_vector = y0;
  {
    const SimdModeGuard guard(SimdMode::kForceScalar);
    la::simd::axpy(1.7, x.data(), y_scalar.data(), n);
    la::simd::xpay(x.data(), -0.3, y_scalar.data(), n);
  }
  {
    const SimdModeGuard guard(SimdMode::kForceVector);
    la::simd::axpy(1.7, x.data(), y_vector.data(), n);
    la::simd::xpay(x.data(), -0.3, y_vector.data(), n);
  }
  EXPECT_TRUE(bitwise_equal(y_scalar, y_vector));
}

TEST(SimdDispatch, SparseKernelsAreBitwiseAcrossPathsAndFormats) {
  const auto p = problems::ProblemRegistry::instance().create("femplate:a=8");
  const la::SellMatrix sell = la::SellMatrix::from_csr(p.matrix);
  util::Rng rng(9);
  const Vec x = rng.uniform_vector(p.matrix.cols());

  Vec csr_scalar;
  Vec csr_vector;
  Vec sell_scalar;
  Vec sell_vector;
  {
    const SimdModeGuard guard(SimdMode::kForceScalar);
    p.matrix.multiply(x, csr_scalar);
    sell.multiply(x, sell_scalar);
  }
  {
    const SimdModeGuard guard(SimdMode::kForceVector);
    p.matrix.multiply(x, csr_vector);
    sell.multiply(x, sell_vector);
  }
  EXPECT_TRUE(bitwise_equal(csr_scalar, csr_vector));
  EXPECT_TRUE(bitwise_equal(sell_scalar, sell_vector));
  EXPECT_TRUE(bitwise_equal(csr_scalar, sell_scalar));
}

// Every splitting x every format, serial and threaded: the full PCG
// pipeline must converge to the bit-identical solution in the same
// number of iterations whichever kernel path runs.
TEST(SimdDispatch, SolvesAreBitwiseForEverySplittingAndFormat) {
  const auto p = problems::ProblemRegistry::instance().create("femplate:a=8");
  const char* const splittings[] = {"ssor", "jacobi", "richardson"};
  const solver::MatrixFormat formats[] = {
      solver::MatrixFormat::kCsr, solver::MatrixFormat::kDia,
      solver::MatrixFormat::kSell, solver::MatrixFormat::kAuto};
  for (const char* splitting : splittings) {
    for (const auto format : formats) {
      for (const int threads : {0, 2}) {
        solver::SolverConfig cfg;
        cfg.splitting = splitting;
        if (std::string(splitting) == "richardson") cfg.params = "ones";
        cfg.steps = 2;
        cfg.format = format;
        cfg.tolerance = 1e-8;
        cfg.execution.threads = threads;

        solver::SolveReport scalar_run;
        solver::SolveReport vector_run;
        {
          const SimdModeGuard guard(SimdMode::kForceScalar);
          scalar_run =
              solver::Solver::from_config(cfg).solve(p.matrix, p.rhs,
                                                     p.classes);
        }
        {
          const SimdModeGuard guard(SimdMode::kForceVector);
          vector_run =
              solver::Solver::from_config(cfg).solve(p.matrix, p.rhs,
                                                     p.classes);
        }
        const std::string label = std::string(splitting) + "/" +
                                  solver::to_string(format) + "/threads=" +
                                  std::to_string(threads);
        ASSERT_TRUE(scalar_run.converged()) << label;
        ASSERT_TRUE(vector_run.converged()) << label;
        EXPECT_EQ(scalar_run.iterations(), vector_run.iterations()) << label;
        EXPECT_TRUE(bitwise_equal(scalar_run.solution, vector_run.solution))
            << label;
        EXPECT_EQ(scalar_run.format_selected, vector_run.format_selected)
            << label;
      }
    }
  }
}

}  // namespace
}  // namespace mstep
