// Tests for the utility layer: table formatting, CLI parsing, RNG.
#include <gtest/gtest.h>

#include <set>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace mstep::util {
namespace {

// ---- Table -------------------------------------------------------------------

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "-2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-2"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_NO_THROW((void)t.to_string());
}

TEST(Table, TitleIsPrinted) {
  Table t({"h"});
  const std::string s = t.to_string("my title");
  EXPECT_EQ(s.rfind("my title", 0), 0u);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::ratio(1.916, 2), "1.92");
  EXPECT_EQ(Table::num(0.000123, 3), "0.000123");
}

TEST(Table, SeparatorAddsLine) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // header line + 3 content-boundaries + separator = 5 '+--' lines total.
  int hlines = 0;
  for (std::size_t pos = 0; (pos = s.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++hlines;
  }
  EXPECT_EQ(hlines, 4);
}

// ---- Cli ---------------------------------------------------------------------

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=1.5"};
  Cli cli(4, argv, {"alpha", "beta"});
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 1.5);
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv, {"x"});
  EXPECT_FALSE(cli.has("x"));
  EXPECT_EQ(cli.get("x", "d"), "d");
  EXPECT_EQ(cli.get_int("x", 7), 7);
}

TEST(Cli, BooleanFlagWithoutValue) {
  const char* argv[] = {"prog", "--quick"};
  Cli cli(2, argv, {"quick"});
  EXPECT_TRUE(cli.has("quick"));
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(Cli(3, argv, {"yep"}), std::invalid_argument);
}

TEST(Cli, RejectsNonFlagArgument) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Cli(2, argv, {"x"}), std::invalid_argument);
}

// ---- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, VectorHasRequestedLengthAndRange) {
  Rng rng(10);
  const auto v = rng.uniform_vector(257, 0.0, 1.0);
  EXPECT_EQ(v.size(), 257u);
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

}  // namespace
}  // namespace mstep::util
