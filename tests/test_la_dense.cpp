// Tests for dense matrices, factorizations, and the symmetric eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "la/dense_matrix.hpp"
#include "util/rng.hpp"

namespace mstep::la {
namespace {

DenseMatrix random_spd(index_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  DenseMatrix b(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  DenseMatrix a = b.transposed().multiply(b);
  for (index_t i = 0; i < n; ++i) a(i, i) += n;  // well conditioned
  return a;
}

TEST(Dense, IdentityMultiplies) {
  const DenseMatrix i3 = DenseMatrix::identity(3);
  const Vec x = {1.0, -2.0, 3.0};
  EXPECT_EQ(i3.multiply(x), x);
}

TEST(Dense, MultiplyMatchesHandComputation) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = -1;
  a(1, 2) = 1;
  const Vec ones(3, 1.0);
  const Vec y = a.multiply(ones);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(Dense, MatMulAssociatesWithVector) {
  const DenseMatrix a = random_spd(5, 1);
  const DenseMatrix b = random_spd(5, 2);
  util::Rng rng(3);
  const Vec x = rng.uniform_vector(5);
  const Vec y1 = a.multiply(b.multiply(x));
  const Vec y2 = a.multiply(b).multiply(x);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-10);
}

TEST(Dense, TransposeInvolution) {
  DenseMatrix a(3, 2);
  a(0, 1) = 5.0;
  a(2, 0) = -2.0;
  const DenseMatrix att = a.transposed().transposed();
  EXPECT_DOUBLE_EQ(att.max_abs_diff(a), 0.0);
}

TEST(Dense, SolveLuRecoversKnownSolution) {
  const DenseMatrix a = random_spd(8, 4);
  util::Rng rng(5);
  const Vec x_exact = rng.uniform_vector(8);
  const Vec b = a.multiply(x_exact);
  const Vec x = solve_lu(a, b);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_exact[i], 1e-9);
}

TEST(Dense, SolveLuPivotsZeroLeadingEntry) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Vec x = solve_lu(a, {3.0, 7.0});
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(Dense, SolveLuThrowsOnSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW((void)solve_lu(a, {1.0, 1.0}), std::runtime_error);
}

TEST(Dense, CholeskyFactorReproducesMatrix) {
  const DenseMatrix a = random_spd(6, 6);
  const DenseMatrix l = cholesky(a);
  const DenseMatrix llt = l.multiply(l.transposed());
  EXPECT_LT(llt.max_abs_diff(a), 1e-9);
}

TEST(Dense, CholeskyThrowsOnIndefinite) {
  DenseMatrix a = DenseMatrix::identity(3);
  a(2, 2) = -1.0;
  EXPECT_THROW((void)cholesky(a), std::runtime_error);
}

TEST(Dense, SolveCholeskyMatchesLu) {
  const DenseMatrix a = random_spd(7, 8);
  util::Rng rng(9);
  const Vec b = rng.uniform_vector(7);
  const Vec x1 = solve_lu(a, b);
  const Vec x2 = solve_cholesky(a, b);
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

TEST(Dense, EigenvaluesOfDiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const auto ev = symmetric_eigenvalues(a);
  EXPECT_NEAR(ev[0], -1.0, 1e-12);
  EXPECT_NEAR(ev[1], 2.0, 1e-12);
  EXPECT_NEAR(ev[2], 3.0, 1e-12);
}

TEST(Dense, EigenvaluesOf2x2Known) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  const auto ev = symmetric_eigenvalues(a);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 3.0, 1e-12);
}

TEST(Dense, EigenvalueSumEqualsTrace) {
  const DenseMatrix a = random_spd(10, 11);
  const auto ev = symmetric_eigenvalues(a);
  double sum = 0.0, trace = 0.0;
  for (double v : ev) sum += v;
  for (index_t i = 0; i < 10; ++i) trace += a(i, i);
  EXPECT_NEAR(sum, trace, 1e-8 * std::abs(trace));
}

TEST(Dense, EigenvaluesAllPositiveForSpd) {
  const auto ev = symmetric_eigenvalues(random_spd(12, 13));
  EXPECT_GT(ev.front(), 0.0);
}

TEST(Dense, FrobeniusNorm) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Dense, AddScaled) {
  DenseMatrix a = DenseMatrix::identity(2);
  a.add_scaled(2.0, DenseMatrix::identity(2));
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

}  // namespace
}  // namespace mstep::la
