// SELL-C-sigma, the third MatrixFormat: construction equivalence to CSR,
// bitwise SpMV across the whole problem catalog, the --format=auto
// occupancy-probe boundaries, and the config round-trip for format=sell.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/dia_matrix.hpp"
#include "la/sell_matrix.hpp"
#include "la/simd.hpp"
#include "problems/problem.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace mstep::la {
namespace {

CsrMatrix small_test_matrix() {
  // [ 4 -1  0  0]
  // [-1  4 -2  0]
  // [ 0 -2  5 -1]
  // [ 0  0 -1  3]
  CooBuilder b(4, 4);
  b.add(0, 0, 4.0);
  b.add(0, 1, -1.0);
  b.add(1, 0, -1.0);
  b.add(1, 1, 4.0);
  b.add(1, 2, -2.0);
  b.add(2, 1, -2.0);
  b.add(2, 2, 5.0);
  b.add(2, 3, -1.0);
  b.add(3, 2, -1.0);
  b.add(3, 3, 3.0);
  return b.build();
}

bool bitwise_equal(const Vec& a, const Vec& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// ---- construction -----------------------------------------------------------

TEST(SellMatrix, FromCsrPreservesEveryEntryInRowOrder) {
  const CsrMatrix a = small_test_matrix();
  const SellMatrix s = SellMatrix::from_csr(a);
  EXPECT_EQ(s.rows(), a.rows());
  EXPECT_EQ(s.cols(), a.cols());
  EXPECT_EQ(s.nnz(), a.nnz());
  EXPECT_EQ(s.num_nonzero_diagonals(), a.num_nonzero_diagonals());

  // The permutation is a bijection onto the real rows (padding slots -1).
  std::set<index_t> seen;
  for (const index_t g : s.permutation()) {
    if (g < 0) continue;
    EXPECT_TRUE(seen.insert(g).second) << "row " << g << " stored twice";
  }
  EXPECT_EQ(static_cast<index_t>(seen.size()), a.rows());

  // Reconstruct each row from the slice-column-major storage and compare
  // with the CSR source entry for entry.
  const simd::SellView v = s.view();
  constexpr index_t kC = SellMatrix::kSliceHeight;
  for (index_t sl = 0; sl < v.num_slices; ++sl) {
    for (index_t r = 0; r < kC; ++r) {
      const index_t slot = sl * kC + r;
      const index_t g = v.perm[slot];
      if (g < 0) continue;
      const index_t len = v.len[slot];
      ASSERT_EQ(len, a.row_ptr()[g + 1] - a.row_ptr()[g]);
      for (index_t j = 0; j < len; ++j) {
        const std::size_t at =
            v.slice_ptr[sl] + static_cast<std::size_t>(j) * kC + r;
        EXPECT_EQ(v.col[at], a.col_idx()[a.row_ptr()[g] + j]);
        EXPECT_EQ(v.val[at], a.values()[a.row_ptr()[g] + j]);
      }
    }
  }
}

TEST(SellMatrix, SigmaWindowSortOrdersSliceMatesByLength) {
  // 8 rows with lengths 1..8 ascending; after the sigma sort the first
  // slice must hold the four longest rows.
  CooBuilder b(8, 8);
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j <= i; ++j) b.add(i, j, 1.0 + i + j);
  }
  const SellMatrix s = SellMatrix::from_csr(b.build());
  const simd::SellView v = s.view();
  for (index_t r = 0; r < 4; ++r) {
    EXPECT_GE(v.len[r], 5) << "slice 0 lane " << r;
    EXPECT_LE(v.len[4 + r], 4) << "slice 1 lane " << r;
  }
}

TEST(SellMatrix, HandlesEmptyRowsAndRaggedTail) {
  // 5 rows (ragged last slice), row 2 completely empty.
  CooBuilder b(5, 5);
  b.add(0, 0, 2.0);
  b.add(1, 1, 3.0);
  b.add(1, 0, -1.0);
  b.add(3, 3, 4.0);
  b.add(4, 4, 5.0);
  b.add(4, 0, -2.0);
  const CsrMatrix a = b.build();
  const SellMatrix s = SellMatrix::from_csr(a);
  const Vec x = {1.0, 2.0, 3.0, 4.0, 5.0};
  Vec yc;
  Vec ys;
  a.multiply(x, yc);
  s.multiply(x, ys);
  EXPECT_TRUE(bitwise_equal(yc, ys));
  EXPECT_EQ(ys[2], 0.0);
}

// ---- bitwise SpMV across the catalog ---------------------------------------

// Small instances of every catalog generator: SELL SpMV must be bitwise
// CSR SpMV on each, under both the scalar and the vector kernel path.
const char* const kCatalogSpecs[] = {
    "poisson2d:n=10",  "poisson3d:n=5",         "aniso2d:n=10",
    "convdiff:n=10",   "randspd:n=200:band=16", "stencil9:n=10",
    "femplate:a=8",    "cyberplate:a=8",
};

TEST(SellMatrix, SpmvBitwiseMatchesCsrAcrossCatalog) {
  for (const char* spec : kCatalogSpecs) {
    const auto p = problems::ProblemRegistry::instance().create(spec);
    const SellMatrix s = SellMatrix::from_csr(p.matrix);
    util::Rng rng(7);
    const Vec x = rng.uniform_vector(p.matrix.cols());
    for (const auto mode :
         {simd::SimdMode::kForceScalar, simd::SimdMode::kForceVector}) {
      const simd::SimdModeGuard guard(mode);
      Vec yc;
      Vec ys;
      p.matrix.multiply(x, yc);
      s.multiply(x, ys);
      EXPECT_TRUE(bitwise_equal(yc, ys))
          << spec << " isa=" << simd::simd_isa();
    }
  }
}

TEST(SellMatrix, MultiplySubBitwiseMatchesCsr) {
  const auto p = problems::ProblemRegistry::instance().create("femplate:a=8");
  const SellMatrix s = SellMatrix::from_csr(p.matrix);
  util::Rng rng(11);
  const Vec x = rng.uniform_vector(p.matrix.cols());
  Vec yc = rng.uniform_vector(p.matrix.rows());
  Vec ys = yc;
  p.matrix.multiply_sub(x, yc);
  s.multiply_sub(x, ys);
  EXPECT_TRUE(bitwise_equal(yc, ys));
}

// ---- the --format=auto probe ------------------------------------------------

TEST(SellMatrix, ProbeAcceptsLocallyUniformRows) {
  const auto p = problems::ProblemRegistry::instance().create("femplate:a=8");
  EXPECT_TRUE(SellMatrix::profitable(p.matrix));
  EXPECT_LE(SellMatrix::fill_estimate(p.matrix), SellMatrix::kDefaultMaxFill);
}

TEST(SellMatrix, ProbeRejectsEmptyMatrix) {
  EXPECT_FALSE(SellMatrix::profitable(CsrMatrix()));
  EXPECT_EQ(SellMatrix::fill_estimate(CsrMatrix()), 0.0);
}

/// SPD matrix engineered to defeat both probes: tridiagonal (so a few
/// dense rows blow the DIA diagonal count) with one dense row per sigma
/// window (so every window pads its short rows to the dense length and
/// the SELL fill explodes past 25%).
CsrMatrix skewed_spd_matrix(index_t n) {
  CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 20.0);
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      b.add(i + 1, i, -1.0);
    }
  }
  for (index_t d = 0; d < n; d += SellMatrix::kDefaultSigma) {
    for (index_t j = 0; j < n; ++j) {
      if (j == d || (j + 1 == d || d + 1 == j)) continue;
      b.add(d, j, -0.01);
      b.add(j, d, -0.01);
    }
  }
  return b.build();
}

TEST(SellMatrix, ProbeRejectsSkewedRowLengths) {
  const CsrMatrix a = skewed_spd_matrix(256);
  EXPECT_FALSE(SellMatrix::profitable(a));
  EXPECT_GT(SellMatrix::fill_estimate(a), SellMatrix::kDefaultMaxFill);
}

TEST(FormatAuto, SkewedMatrixFallsBackToCsr) {
  const CsrMatrix a = skewed_spd_matrix(256);
  Vec f(a.rows(), 1.0);
  solver::SolverConfig cfg;
  cfg.splitting = "jacobi";
  cfg.steps = 2;
  cfg.params = "ones";
  cfg.format = solver::MatrixFormat::kAuto;
  const auto report = solver::Solver::from_config(cfg).solve(a, f);
  ASSERT_TRUE(report.converged());
  EXPECT_EQ(report.format_selected, solver::MatrixFormat::kCsr);
}

TEST(FormatAuto, PlateResolvesToSellAndMatchesCsrBitwise) {
  const auto p = problems::ProblemRegistry::instance().create("femplate:a=8");
  solver::SolverConfig cfg;
  cfg.tolerance = 1e-8;
  const auto csr = solver::Solver::from_config(cfg).solve(p.matrix, p.rhs,
                                                          p.classes);
  cfg.format = solver::MatrixFormat::kAuto;
  const auto auto_run = solver::Solver::from_config(cfg).solve(p.matrix,
                                                               p.rhs,
                                                               p.classes);
  ASSERT_TRUE(csr.converged());
  ASSERT_TRUE(auto_run.converged());
  // The multicolor-permuted plate has locally uniform row lengths but no
  // narrow band: the probe order (DIA, then SELL) must land on SELL —
  // and the format changes layout only, never bits.
  EXPECT_EQ(auto_run.format_selected, solver::MatrixFormat::kSell);
  EXPECT_EQ(auto_run.iterations(), csr.iterations());
  EXPECT_TRUE(bitwise_equal(auto_run.solution, csr.solution));
}

// ---- config round-trip ------------------------------------------------------

TEST(FormatConfig, SellRoundTripsThroughStringAndParser) {
  solver::SolverConfig cfg;
  cfg.format = solver::MatrixFormat::kSell;
  const auto back = solver::SolverConfig::from_string(cfg.to_string());
  EXPECT_EQ(back.format, solver::MatrixFormat::kSell);
  EXPECT_EQ(solver::matrix_format_from_string("sell"),
            solver::MatrixFormat::kSell);
  EXPECT_EQ(solver::to_string(solver::MatrixFormat::kSell), "sell");
}

TEST(FormatConfig, ErrorListsEveryValidFormatName) {
  try {
    (void)solver::matrix_format_from_string("ellpack");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* name : {"csr", "dia", "sell", "auto"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

}  // namespace
}  // namespace mstep::la
