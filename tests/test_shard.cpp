// The sharded execution backend's headline guarantee: a region-sharded
// solve is BITWISE identical to the serial solve for every registered
// splitting x operator format x shard count x thread count — including a
// shard count that does not divide the class sizes and one that exceeds
// the widest color block (graceful clamp, observable in the report).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "problems/problem.hpp"
#include "shard/partition.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace mstep::solver {
namespace {

void expect_bitwise_equal(const SolveReport& serial, const SolveReport& sharded,
                          const std::string& what) {
  ASSERT_TRUE(serial.converged()) << what;
  ASSERT_TRUE(sharded.converged()) << what;
  ASSERT_EQ(serial.iterations(), sharded.iterations()) << what;
  ASSERT_EQ(serial.result.final_delta_inf, sharded.result.final_delta_inf)
      << what;
  ASSERT_EQ(serial.result.inner_products, sharded.result.inner_products)
      << what;
  ASSERT_EQ(serial.solution.size(), sharded.solution.size()) << what;
  for (std::size_t i = 0; i < serial.solution.size(); ++i) {
    ASSERT_EQ(serial.solution[i], sharded.solution[i]) << what << " i=" << i;
  }
}

// ---- the ISSUE-level guarantee ----------------------------------------------

// Every registered splitting x {csr, dia, sell} x shards {1, 2, 4, 7} x
// threads {1, 4} produces the serial bits.  The grid is deliberately
// coprime with the shard counts (12^2 = 144 rows, 7 shards), so strips of
// unequal length and per-class remainders are always exercised; reports
// must agree on the pipeline choices (iterations, format) too.
TEST(ShardedSolve, EverySplittingFormatShardsThreadsMatchesSerialBitwise) {
  const problems::Problem p =
      problems::ProblemRegistry::instance().create("poisson2d:n=12");
  ASSERT_TRUE(p.has_classes());

  for (const auto& splitting : SplittingRegistry::instance().names()) {
    for (const MatrixFormat format :
         {MatrixFormat::kCsr, MatrixFormat::kDia, MatrixFormat::kSell}) {
      SolverConfig base;
      base.splitting = splitting;
      base.steps = 2;
      base.format = format;
      base.tolerance = 1e-8;

      const auto serial_report =
          Solver::from_config(base).prepare(p.matrix, p.classes).solve(p.rhs);

      for (const int shards : {1, 2, 4, 7}) {
        for (const int threads : {1, 4}) {
          SolverConfig cfg = base;
          cfg.execution.shards = shards;
          cfg.execution.threads = threads;
          const std::string what = splitting + "/" + to_string(format) +
                                   "/shards=" + std::to_string(shards) +
                                   "/threads=" + std::to_string(threads);

          const auto prepared =
              Solver::from_config(cfg).prepare(p.matrix, p.classes);
          const auto report = prepared.solve(p.rhs);
          expect_bitwise_equal(serial_report, report, what);
          ASSERT_EQ(report.format_selected, serial_report.format_selected)
              << what;
          // shards in {0, 1} never engages the backend; 2+ does here (the
          // widest color block of the 144-row red/black system is far
          // wider than 7).
          ASSERT_EQ(report.shards, shards >= 2 ? shards : 0) << what;
        }
      }
    }
  }
}

// A shard count that exceeds the widest color block clamps to it — no
// empty shard, no throw — and the report records the EFFECTIVE count,
// equal to what ShardPlan::build decides.
TEST(ShardedSolve, ShardCountExceedingColorBlocksClampsGracefully) {
  const problems::Problem p =
      problems::ProblemRegistry::instance().create("poisson2d:n=3");
  ASSERT_TRUE(p.has_classes());  // 9 rows, red/black: widest block is 5

  SolverConfig cfg;
  cfg.steps = 2;
  cfg.tolerance = 1e-10;
  cfg.execution.shards = 64;

  const auto prepared = Solver::from_config(cfg).prepare(p.matrix, p.classes);
  const auto report = prepared.solve(p.rhs);
  ASSERT_TRUE(report.converged());

  // The plan itself is the authority on the clamp.
  const auto cs = color::make_colored_system(p.matrix, p.classes);
  const auto plan = shard::ShardPlan::build(cs.class_start, 64);
  ASSERT_LT(plan.num_shards(), 64);
  ASSERT_GE(plan.num_shards(), 2);
  ASSERT_EQ(report.shards, plan.num_shards());
  ASSERT_EQ(prepared.shards(), plan.num_shards());

  SolverConfig plain;
  plain.steps = cfg.steps;
  plain.tolerance = cfg.tolerance;
  const auto serial_report =
      Solver::from_config(plain).prepare(p.matrix, p.classes).solve(p.rhs);
  expect_bitwise_equal(serial_report, report, "clamped");
}

// Natural ordering has no color blocks to cut: the backend never engages
// and the report says so, rather than throwing or silently mis-sharding.
TEST(ShardedSolve, NaturalOrderingIsNeverSharded) {
  const problems::Problem p =
      problems::ProblemRegistry::instance().create("poisson2d:n=8");
  SolverConfig cfg;
  cfg.ordering = Ordering::kNatural;
  cfg.steps = 2;
  cfg.execution.shards = 4;
  const auto report = Solver::from_config(cfg).solve(p.matrix, p.rhs);
  ASSERT_TRUE(report.converged());
  ASSERT_EQ(report.shards, 0);
}

// ---- batched interplay ------------------------------------------------------

// With shards configured and the lane count left to the engine, the
// shards win the pool: right-hand sides run sequentially, every one
// sharded — and bitwise the serial batch.  An explicit wide batch
// overrides: lanes win, solves run serial kernels, reports say shards=0.
TEST(ShardedSolve, BatchedSolvesStayBitwiseAndReportEngagement) {
  const problems::Problem p =
      problems::ProblemRegistry::instance().create("poisson2d:n=12");

  std::vector<Vec> bs;
  bs.push_back(p.rhs);
  util::Rng rng(7);
  for (int j = 1; j < 4; ++j) bs.push_back(rng.uniform_vector(p.rhs.size()));

  SolverConfig plain;
  plain.steps = 2;
  plain.tolerance = 1e-8;
  const auto serial = Solver::from_config(plain).prepare(p.matrix, p.classes);
  std::vector<SolveReport> expected;
  for (const Vec& f : bs) expected.push_back(serial.solve(f));

  SolverConfig cfg = plain;
  cfg.execution.shards = 4;
  const auto prepared = Solver::from_config(cfg).prepare(p.matrix, p.classes);

  // Default lanes: sharded, sequential RHSs.
  const auto sharded = prepared.solveMany(util::Span<const Vec>(bs));
  ASSERT_EQ(sharded.concurrency, 1);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    ASSERT_TRUE(sharded.ok(i));
    expect_bitwise_equal(expected[i], sharded.reports[i],
                         "sharded batch rhs " + std::to_string(i));
    ASSERT_EQ(sharded.reports[i].shards, 4);
  }

  // Explicit lanes: batch wins, sharding disengages per-report.
  BatchConfig wide;
  wide.concurrency = 4;
  const auto laned = prepared.solveMany(util::Span<const Vec>(bs), wide);
  ASSERT_GT(laned.concurrency, 1);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    ASSERT_TRUE(laned.ok(i));
    expect_bitwise_equal(expected[i], laned.reports[i],
                         "laned batch rhs " + std::to_string(i));
    ASSERT_EQ(laned.reports[i].shards, 0);
  }
}

// ---- config plumbing --------------------------------------------------------

TEST(ShardedConfig, RoundTripsThroughStringAndCli) {
  SolverConfig cfg;
  cfg.execution.shards = 4;
  cfg.execution.threads = 2;
  const std::string text = cfg.to_string();
  ASSERT_NE(text.find(";shards=4"), std::string::npos) << text;
  const SolverConfig back = SolverConfig::from_string(text);
  ASSERT_EQ(back.execution.shards, 4);
  ASSERT_EQ(back, cfg);

  // Not sharded (0 or 1) stays OFF the canonical string, so pre-shard
  // config strings — and the daemon cache keys derived from them — are
  // unchanged.
  SolverConfig off;
  off.execution.shards = 1;
  ASSERT_EQ(off.to_string().find("shards"), std::string::npos);

  const char* argv[] = {"prog", "--shards=3", "--m=2"};
  const util::Cli cli(3, argv, SolverConfig::cli_flags());
  const SolverConfig from_cli = SolverConfig::from_cli(cli);
  ASSERT_EQ(from_cli.execution.shards, 3);
  ASSERT_EQ(from_cli.steps, 2);

  SolverConfig bad;
  bad.execution.shards = -1;
  ASSERT_THROW(bad.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace mstep::solver
