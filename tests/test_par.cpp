// Tests for the shared-memory substrate: the thread pool and the parallel
// multicolor sweep (race-freedom and bitwise determinism).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "color/coloring.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "par/colored_sweep.hpp"
#include "par/thread_pool.hpp"
#include "util/rng.hpp"

namespace mstep::par {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each(0, 1000, [&](index_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(3);
  int calls = 0;
  pool.for_range(5, 5, [&](index_t, index_t) { ++calls; });
  pool.for_range(7, 3, [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SerialFallbackForOneThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> hits(64, 0);
  pool.for_each(0, 64, [&](index_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPool, ChunksPartitionRange) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  pool.for_range(10, 5010, [&](index_t b, index_t e) {
    long long local = 0;
    for (index_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  long long expect = 0;
  for (index_t i = 10; i < 5010; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.for_each(0, 97, [&](index_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 97) << "round " << round;
  }
}

struct ColoredPlate {
  fem::PlateMesh mesh;
  la::CsrMatrix k;
  Vec f;
  color::ColoredSystem cs;
};

ColoredPlate make_plate(int a) {
  fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                        fem::EdgeLoad{1.0, 0.0});
  auto cs = color::make_colored_system(sys.stiffness,
                                       color::six_color_classes(mesh));
  return {std::move(mesh), std::move(sys.stiffness), std::move(sys.load),
          std::move(cs)};
}

class ParallelSweepBitwise : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSweepBitwise, MatchesSerialExactly) {
  // The decoupling property makes the parallel sweep deterministic: the
  // result must be BITWISE the serial one, for any thread count.
  const int threads = GetParam();
  const auto p = make_plate(12);
  const auto alphas = core::least_squares_alphas(3, core::ssor_interval());

  const core::MulticolorMStepSsor serial(p.cs, alphas);
  ThreadPool pool(threads);
  const ParallelMulticolorMStepSsor parallel(p.cs, alphas, pool);

  util::Rng rng(threads);
  for (int trial = 0; trial < 5; ++trial) {
    const Vec r = rng.uniform_vector(p.cs.size());
    Vec z1, z2;
    serial.apply(r, z1);
    parallel.apply(r, z2);
    for (index_t i = 0; i < p.cs.size(); ++i) {
      ASSERT_EQ(z1[i], z2[i]) << "threads=" << threads << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelSweepBitwise,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParallelSweep, DrivesPcgToSameIterationCount) {
  const auto p = make_plate(10);
  const Vec f = p.cs.permute(p.f);
  const auto alphas = core::least_squares_alphas(4, core::ssor_interval());
  core::PcgOptions opt;
  opt.tolerance = 1e-8;

  const core::MulticolorMStepSsor serial(p.cs, alphas);
  const auto seq = core::pcg_solve(p.cs.matrix, f, serial, opt);

  ThreadPool pool(4);
  const ParallelMulticolorMStepSsor par_prec(p.cs, alphas, pool);
  const auto par_res = core::pcg_solve(p.cs.matrix, f, par_prec, opt);

  EXPECT_EQ(seq.iterations, par_res.iterations);
  for (index_t i = 0; i < p.cs.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.solution[i], par_res.solution[i]);
  }
}

TEST(ParallelSweep, WorksWithTwoColorPoisson) {
  const fem::PoissonProblem prob(9, 7);
  const auto a = prob.matrix();
  const auto cs =
      color::make_colored_system(a, color::two_color_classes(prob));
  const auto alphas = core::unparametrized_alphas(2);
  const core::MulticolorMStepSsor serial(cs, alphas);
  ThreadPool pool(3);
  const ParallelMulticolorMStepSsor parallel(cs, alphas, pool);
  util::Rng rng(7);
  const Vec r = rng.uniform_vector(cs.size());
  Vec z1, z2;
  serial.apply(r, z1);
  parallel.apply(r, z2);
  for (index_t i = 0; i < cs.size(); ++i) EXPECT_EQ(z1[i], z2[i]);
}

TEST(RowSplits, RejectsCoupledClasses) {
  const fem::PoissonProblem prob(3, 3);
  const auto a = prob.matrix();
  color::ColorClasses one;
  one.classes.assign(1, {});
  for (index_t i = 0; i < a.rows(); ++i) one.classes[0].push_back(i);
  const auto cs = color::make_colored_system(a, one);
  EXPECT_THROW(color::compute_row_splits(cs), std::invalid_argument);
}

}  // namespace
}  // namespace mstep::par
