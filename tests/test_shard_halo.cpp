// The shard partitioner and the halo-exchange plan, unit level: equal
// contiguous strips per color block with the femsim equal-strip rule,
// clamping, EXACT ghost sets (brute-forced from the matrix graph — no
// over-fetch, no under-fetch) on a 9-point stencil and the paper's FEM
// plate, legal empty-boundary shards, and the debug-mode checksum that
// catches a ghost payload corrupted between post and take.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "la/csr_matrix.hpp"
#include "par/thread_pool.hpp"
#include "problems/problem.hpp"
#include "shard/halo.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_sweep.hpp"
#include "util/rng.hpp"

namespace mstep::shard {
namespace {

// ---- ShardPlan --------------------------------------------------------------

TEST(ShardPlan, EqualStripsPerClassWithFemsimRule) {
  // Two classes of 10 and 17 rows, 4 shards: every class is cut into 4
  // contiguous strips whose sizes differ by at most one, strips
  // concatenate exactly, and the k-th of len rows goes to shard
  // k * shards / len — the femsim::coordinate_strip_owner rule.
  const std::vector<index_t> class_start = {0, 10, 27};
  const ShardPlan plan = ShardPlan::build(class_start, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  ASSERT_EQ(plan.num_classes(), 2);
  ASSERT_EQ(plan.rows(), 27);

  for (int c = 0; c < plan.num_classes(); ++c) {
    const index_t len = class_start[c + 1] - class_start[c];
    index_t covered = 0;
    ASSERT_EQ(plan.begin(0, c), class_start[c]);
    ASSERT_EQ(plan.end(plan.num_shards() - 1, c), class_start[c + 1]);
    for (int s = 0; s < plan.num_shards(); ++s) {
      ASSERT_LE(plan.begin(s, c), plan.end(s, c));
      if (s > 0) ASSERT_EQ(plan.begin(s, c), plan.end(s - 1, c));
      const index_t size = plan.end(s, c) - plan.begin(s, c);
      ASSERT_GE(size, len / 4);
      ASSERT_LE(size, (len + 3) / 4);
      covered += size;
      for (index_t i = plan.begin(s, c); i < plan.end(s, c); ++i) {
        ASSERT_EQ(plan.owner_of(i), s) << "row " << i;
        ASSERT_EQ(static_cast<int>((i - class_start[c]) * 4 / len), s)
            << "femsim strip rule, row " << i;
      }
    }
    ASSERT_EQ(covered, len);
  }
}

TEST(ShardPlan, ClampsToWidestClassAndRejectsBadInput) {
  // Widest class has 5 rows: a request for 64 shards clamps to 5; a
  // class narrower than the effective count keeps (legal) empty strips.
  const std::vector<index_t> class_start = {0, 2, 7};
  const ShardPlan plan = ShardPlan::build(class_start, 64);
  ASSERT_EQ(plan.num_shards(), 5);
  int empty = 0;
  for (int s = 0; s < 5; ++s) {
    if (plan.begin(s, 0) == plan.end(s, 0)) ++empty;
  }
  ASSERT_EQ(empty, 3);  // class 0 has 2 rows for 5 shards

  ASSERT_EQ(ShardPlan::build(class_start, 0).num_shards(), 1);
  ASSERT_EQ(ShardPlan::build(class_start, -3).num_shards(), 1);
  ASSERT_THROW(ShardPlan::build({}, 2), std::invalid_argument);
  ASSERT_THROW(ShardPlan::build({0}, 2), std::invalid_argument);
}

// ---- HaloPlan exactness -----------------------------------------------------

int class_of_row(const std::vector<index_t>& class_start, index_t row) {
  int c = 0;
  while (class_start[c + 1] <= row) ++c;
  return c;
}

// Brute-force the ghost sets straight from the matrix graph and the sweep
// structure: a shard needs EXACTLY the off-shard rows its strictly-lower
// sums read (every class) and its strictly-upper sums read (every class
// except the last — the backward recursion never sums the last class's
// upper block), nothing more and nothing less.
void expect_exact_halo(const std::string& spec, int shards) {
  const problems::Problem p =
      problems::ProblemRegistry::instance().create(spec);
  ASSERT_TRUE(p.has_classes()) << spec;
  const auto cs = color::make_colored_system(p.matrix, p.classes);
  const auto splits = color::compute_row_splits(cs);
  const ShardPlan plan = ShardPlan::build(cs.class_start, shards);
  ASSERT_EQ(plan.num_shards(), shards) << spec;
  const HaloPlan halo(cs, plan, splits);

  const int ns = plan.num_shards();
  const int nc = plan.num_classes();
  const std::vector<index_t>& rp = cs.matrix.row_ptr();
  const std::vector<index_t>& col = cs.matrix.col_idx();

  std::vector<std::set<index_t>> expected(
      static_cast<std::size_t>(ns) * ns * nc);
  for (index_t i = 0; i < cs.size(); ++i) {
    const int s = plan.owner_of(i);
    const int ci = class_of_row(cs.class_start, i);
    auto visit = [&](index_t a, index_t b) {
      for (index_t k = a; k < b; ++k) {
        const index_t j = col[k];
        const int t = plan.owner_of(j);
        if (t == s) continue;
        const int cj = class_of_row(cs.class_start, j);
        expected[(static_cast<std::size_t>(s) * ns + t) * nc + cj].insert(j);
      }
    };
    visit(rp[i], splits.lo_end[i]);  // lower sums: read by every class
    if (ci != nc - 1) {
      // Upper sums: the last class's upper block is never summed (the
      // backward phases stop before it), so fetching it would be
      // over-fetch — exactly what this test guards.
      visit(splits.up_begin[i], rp[i + 1]);
    }
  }

  std::size_t total_edges = 0;
  for (int to = 0; to < ns; ++to) {
    std::size_t ghost = 0;
    for (int from = 0; from < ns; ++from) {
      for (int c = 0; c < nc; ++c) {
        const auto& want =
            expected[(static_cast<std::size_t>(to) * ns + from) * nc + c];
        const auto& got = halo.recv_rows(to, from, c);
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        ASSERT_EQ(std::set<index_t>(got.begin(), got.end()).size(),
                  got.size());
        ASSERT_EQ(std::vector<index_t>(want.begin(), want.end()), got)
            << spec << " to=" << to << " from=" << from << " class=" << c;
        ASSERT_EQ(halo.send_rows(from, to, c), got);
        ghost += got.size();
        if (!got.empty()) ++total_edges;
      }
    }
    ASSERT_EQ(halo.ghost_count(to), ghost) << spec << " shard " << to;
  }
  ASSERT_GT(total_edges, 0u) << spec << ": a connected stencil must halo";

  // boundary_rows(s, c) is the union of what s sends in class c.
  for (int s = 0; s < ns; ++s) {
    for (int c = 0; c < nc; ++c) {
      std::set<index_t> want;
      for (int t = 0; t < ns; ++t) {
        const auto& rows = halo.send_rows(s, t, c);
        want.insert(rows.begin(), rows.end());
      }
      const auto& got = halo.boundary_rows(s, c);
      ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
      ASSERT_EQ(std::vector<index_t>(want.begin(), want.end()), got)
          << spec << " shard " << s << " class " << c;
      for (const index_t i : got) ASSERT_EQ(plan.owner_of(i), s);
    }
  }
}

TEST(HaloPlan, GhostSetsAreExactOnStencil9) {
  expect_exact_halo("stencil9:n=9", 3);
  expect_exact_halo("stencil9:nx=11:ny=7", 4);
}

TEST(HaloPlan, GhostSetsAreExactOnFemPlate) {
  expect_exact_halo("femplate:a=6", 3);
}

// ---- empty-boundary shards --------------------------------------------------

// A block-diagonal system whose blocks never straddle a shard boundary
// has NO halo at all; the plan must say so (every edge empty) and the
// sharded sweep must still run — bitwise the serial sweep.
TEST(HaloPlan, EmptyBoundaryShardsAreLegal) {
  // 16 independent 1x1 "blocks": a diagonal matrix, two artificial color
  // classes (evens/odds) — a valid coloring, since there is no coupling
  // anywhere.
  const index_t n = 16;
  std::vector<index_t> rp(n + 1), ci(n);
  std::vector<double> v(n);
  for (index_t i = 0; i <= n; ++i) rp[i] = i;
  for (index_t i = 0; i < n; ++i) {
    ci[i] = i;
    v[i] = 2.0 + 0.25 * static_cast<double>(i);
  }
  const la::CsrMatrix k(n, n, std::move(rp), std::move(ci), std::move(v));
  color::ColorClasses classes;
  classes.classes.resize(2);
  for (index_t i = 0; i < n; ++i) {
    classes.classes[i % 2].push_back(i);
  }
  const auto cs = color::make_colored_system(k, classes);
  const auto splits = color::compute_row_splits(cs);
  const ShardPlan plan = ShardPlan::build(cs.class_start, 4);
  const HaloPlan halo(cs, plan, splits);
  for (int s = 0; s < 4; ++s) {
    ASSERT_EQ(halo.ghost_count(s), 0u);
    for (int c = 0; c < 2; ++c) {
      for (int t = 0; t < 4; ++t) {
        ASSERT_TRUE(halo.recv_rows(s, t, c).empty());
      }
      ASSERT_TRUE(halo.boundary_rows(s, c).empty());
    }
  }

  const std::vector<double> alphas = {1.0, 0.6};
  par::ThreadPool pool(4);
  const core::MulticolorMStepSsor serial(cs, alphas);
  const ShardedMulticolorMStepSsor sharded(cs, alphas, plan, pool, nullptr,
                                           /*verify_halo=*/true);
  util::Rng rng(3);
  const Vec r = rng.uniform_vector(n);
  Vec z1, z2;
  serial.apply(r, z1);
  sharded.apply(r, z2);
  ASSERT_EQ(z1, z2);
}

// ---- mailbox checksum -------------------------------------------------------

TEST(GhostMailbox, ChecksumCatchesCorruptedPayload) {
  const std::vector<index_t> rows = {1, 4, 5};
  Vec z = {0.0, 10.0, 0.0, 0.0, -2.5, 7.75};
  GhostMailbox mb(rows.size());
  mb.post(z, rows);

  // Clean round trip, verified: the ghost values land where they belong.
  Vec zloc(z.size(), 0.0);
  mb.take(zloc, rows, /*verify=*/true);
  ASSERT_EQ(zloc[1], 10.0);
  ASSERT_EQ(zloc[4], -2.5);
  ASSERT_EQ(zloc[5], 7.75);
  ASSERT_EQ(zloc[0], 0.0);

  // Corrupt one payload double "in transit": the verified take throws,
  // the unverified one (release-mode default) silently scatters.
  mb.payload()[2] += 1e-9;
  ASSERT_THROW(mb.take(zloc, rows, /*verify=*/true), std::runtime_error);
  ASSERT_NO_THROW(mb.take(zloc, rows, /*verify=*/false));

  // Re-posting restamps the checksum over the current payload.
  mb.post(z, rows);
  ASSERT_NO_THROW(mb.take(zloc, rows, /*verify=*/true));
}

}  // namespace
}  // namespace mstep::shard
