// Tests for the multicolor ordering machinery and the block structure of
// equation (3.1).
#include <gtest/gtest.h>

#include "color/coloring.hpp"
#include "fem/plane_stress.hpp"
#include "util/rng.hpp"

namespace mstep::color {
namespace {

struct PlateSetup {
  fem::PlateMesh mesh;
  la::CsrMatrix k;
  ColorClasses classes;
  ColoredSystem cs;
};

PlateSetup make_plate(int rows, int cols) {
  fem::PlateMesh mesh(rows, cols);
  auto sys = fem::assemble_plane_stress(mesh, fem::Material{}, fem::EdgeLoad{});
  ColorClasses classes = six_color_classes(mesh);
  ColoredSystem cs = make_colored_system(sys.stiffness, classes);
  return {std::move(mesh), std::move(sys.stiffness), std::move(classes),
          std::move(cs)};
}

TEST(SixColor, ClassesPartitionAllEquations) {
  const auto s = make_plate(5, 5);
  EXPECT_EQ(s.classes.num_classes(), 6);
  EXPECT_EQ(s.classes.total_equations(), s.mesh.num_equations());
  std::vector<bool> seen(s.mesh.num_equations(), false);
  for (const auto& cls : s.classes.classes) {
    for (index_t eq : cls) {
      EXPECT_FALSE(seen[eq]);
      seen[eq] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(SixColor, ColoringIsValidForVariousPlates) {
  for (int rows : {3, 4, 6, 9}) {
    for (int cols : {3, 5, 8}) {
      const auto s = make_plate(rows, cols);
      EXPECT_TRUE(coloring_is_valid(s.k, s.classes))
          << rows << "x" << cols;
    }
  }
}

TEST(SixColor, ClassSizesAreBalancedOnWrapAroundPlates) {
  // When the number of nodes per row makes the colouring wrap R/B/G
  // seamlessly (ncols divisible by 3), class sizes are exactly equal.
  const auto s = make_plate(6, 7);  // 6 unconstrained columns per row
  const index_t expect = s.mesh.num_equations() / 6;
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(s.cs.class_size(k), expect) << "class " << k;
  }
}

TEST(Permutation, RoundTripsVectors) {
  const auto s = make_plate(4, 6);
  util::Rng rng(2);
  const Vec x = rng.uniform_vector(s.cs.size());
  const Vec y = s.cs.unpermute(s.cs.permute(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(x[i], y[i]);
}

TEST(Permutation, InverseIsConsistent) {
  const auto s = make_plate(3, 4);
  for (index_t i = 0; i < s.cs.size(); ++i) {
    EXPECT_EQ(s.cs.inv_perm[s.cs.perm[i]], i);
  }
}

TEST(Permutation, MatrixActionCommutesWithReordering) {
  // (P K P^T)(P x) must equal P (K x).
  const auto s = make_plate(5, 4);
  util::Rng rng(3);
  const Vec x = rng.uniform_vector(s.cs.size());
  Vec kx;
  s.k.multiply(x, kx);
  Vec kpx;
  s.cs.matrix.multiply(s.cs.permute(x), kpx);
  const Vec expected = s.cs.permute(kx);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(kpx[i], expected[i], 1e-12);
  }
}

TEST(BlockStructure, Equation31HoldsForPlate) {
  // D_kk diagonal for all six classes; B12, B34, B56 diagonal.
  for (int rows : {4, 6}) {
    for (int cols : {4, 7}) {
      const auto s = make_plate(rows, cols);
      const auto rep = verify_block_structure(s.cs);
      EXPECT_TRUE(rep.diagonal_blocks_are_diagonal) << rows << "x" << cols;
      EXPECT_TRUE(rep.paired_dof_blocks_are_diagonal) << rows << "x" << cols;
      EXPECT_EQ(rep.max_row_nnz, 14);
    }
  }
}

TEST(BlockStructure, PermutationPreservesSymmetry) {
  const auto s = make_plate(5, 5);
  EXPECT_LT(s.cs.matrix.symmetry_error(), 1e-12);
}

TEST(TwoColor, RedBlackDecouplesPoisson) {
  const fem::PoissonProblem p(7, 6);
  const auto a = p.matrix();
  const auto classes = two_color_classes(p);
  EXPECT_EQ(classes.num_classes(), 2);
  EXPECT_TRUE(coloring_is_valid(a, classes));
  const auto cs = make_colored_system(a, classes);
  const auto rep = verify_block_structure(cs);
  EXPECT_TRUE(rep.diagonal_blocks_are_diagonal);
}

TEST(Validity, DetectsBadColoring) {
  // Put two coupled equations in the same class: must be rejected.
  const fem::PoissonProblem p(3, 3);
  const auto a = p.matrix();
  ColorClasses bad;
  bad.classes.assign(2, {});
  for (index_t i = 0; i < a.rows(); ++i) {
    bad.classes[i < a.rows() / 2 ? 0 : 1].push_back(i);
  }
  EXPECT_FALSE(coloring_is_valid(a, bad));
}

TEST(Validity, RejectsIncompleteClasses) {
  const fem::PoissonProblem p(3, 3);
  const auto a = p.matrix();
  ColorClasses missing = two_color_classes(p);
  missing.classes[0].pop_back();
  EXPECT_FALSE(coloring_is_valid(a, missing));
}

}  // namespace
}  // namespace mstep::color
