// Standalone tests for the splitting layer: algebraic identities of the
// Jacobi, SSOR and Richardson splittings, and the CG/PCG invariants that
// depend on them.
#include <gtest/gtest.h>

#include <cmath>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "fem/poisson.hpp"
#include "la/dense_matrix.hpp"
#include "split/splitting.hpp"
#include "util/rng.hpp"

namespace mstep::split {
namespace {

la::CsrMatrix poisson_matrix(int n) { return fem::PoissonProblem(n, n).matrix(); }

TEST(Richardson, PinvIsScaling) {
  const RichardsonSplitting r(5, 0.25);
  const Vec x = {4.0, -8.0, 0.0, 2.0, 1.0};
  Vec y;
  r.apply_pinv(x, y);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], 0.25 * x[i]);
}

TEST(Richardson, MStepSpectrumIsTransparent) {
  // With P = (1/theta) I, G = I - theta K; the m-step eigenvalue map is
  // s(theta*lambda) exactly.  Verify on the Poisson matrix via its known
  // extreme eigenvalues.
  const auto a = poisson_matrix(6);
  const auto ev = la::symmetric_eigenvalues(a.to_dense());
  const double theta = 1.0 / ev.back();
  const RichardsonSplitting rich(a.rows(), theta);
  const auto alphas = core::unparametrized_alphas(3);
  const core::MStepPreconditioner prec(a, rich, alphas);

  // Dense M^{-1}K spectrum vs s(theta*lambda).
  const index_t n = a.rows();
  la::DenseMatrix mk(n, n);
  Vec e(n), z(n), kz(n);
  for (index_t j = 0; j < n; ++j) {
    e.assign(n, 0.0);
    e[j] = 1.0;
    a.multiply(e, kz);
    prec.apply(kz, z);
    for (index_t i = 0; i < n; ++i) mk(i, j) = z[i];
  }
  const la::Polynomial s = core::eigenvalue_map(alphas);
  // Trace identity: tr(M^{-1}K) = sum_i s(theta * lambda_i).
  double trace = 0.0;
  for (index_t i = 0; i < n; ++i) trace += mk(i, i);
  double expected = 0.0;
  for (double lam : ev) expected += s(theta * lam);
  EXPECT_NEAR(trace, expected, 1e-8 * std::abs(expected));
}

TEST(Jacobi, ThrowsOnNonPositiveDiagonal) {
  la::CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -2.0);
  const auto a = b.build();
  EXPECT_THROW(JacobiSplitting{a}, std::invalid_argument);
}

TEST(Ssor, QIsPositiveSemiDefinite) {
  // K = P - Q with Q = P - K; for SSOR, Q must be PSD (this is what puts
  // sigma(P^{-1}K) in (0, 1]).
  const auto a = poisson_matrix(5);
  const index_t n = a.rows();
  for (double omega : {0.7, 1.0, 1.4}) {
    const SsorSplitting ssor(a, omega);
    // Dense P from P^{-1} columns: P = (P^{-1})^{-1}.
    la::DenseMatrix pinv(n, n);
    Vec e(n), y(n);
    for (index_t j = 0; j < n; ++j) {
      e.assign(n, 0.0);
      e[j] = 1.0;
      ssor.apply_pinv(e, y);
      for (index_t i = 0; i < n; ++i) pinv(i, j) = y[i];
    }
    // Q = P - K; check x^T Q x >= 0 via x^T P x >= x^T K x on samples.
    util::Rng rng(11);
    for (int t = 0; t < 20; ++t) {
      const Vec x = rng.uniform_vector(n);
      const Vec px = la::solve_lu(pinv, x);  // P x
      Vec kx;
      a.multiply(x, kx);
      EXPECT_GE(la::dot(x, px), la::dot(x, kx) - 1e-9) << "omega=" << omega;
    }
  }
}

TEST(Ssor, OmegaScalingIdentityAtOne) {
  // At omega = 1 the scale factor omega(2-omega) = 1; P = (D-L)D^{-1}(D-U).
  const auto a = poisson_matrix(4);
  const SsorSplitting ssor(a, 1.0);
  // P^{-1} K applied to the constant vector: forward+diag+backward solves
  // must reproduce the dense computation.
  const index_t n = a.rows();
  const la::DenseMatrix kd = a.to_dense();
  la::DenseMatrix p(n, n);
  const Vec d = a.diagonal();
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t k = 0; k < n; ++k) {
        const double dl = k <= i ? (k == i ? d[i] : kd(i, k)) : 0.0;
        const double du = k <= j ? (k == j ? 1.0 : kd(k, j) / d[k]) : 0.0;
        s += dl * du;
      }
      p(i, j) = s;
    }
  }
  util::Rng rng(13);
  const Vec x = rng.uniform_vector(n);
  Vec y;
  ssor.apply_pinv(x, y);
  const Vec px = p.multiply(y);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(px[i], x[i], 1e-9);
}

// ---- CG invariants -------------------------------------------------------------

TEST(CgInvariant, ANormErrorDecreasesMonotonically) {
  // CG minimizes the A-norm of the error over Krylov spaces, so
  // ||u_k - u*||_A must decrease strictly every iteration.
  const fem::PlateMesh mesh(6, 6);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const Vec exact = la::solve_cholesky(sys.stiffness.to_dense(), sys.load);

  core::PcgOptions opt;
  opt.tolerance = 1e-12;
  opt.stop_rule = core::StopRule::kResidual2;
  double prev = 1e300;
  for (int k = 1; k <= 12; ++k) {
    core::PcgOptions capped = opt;
    capped.max_iterations = k;
    const auto res = core::cg_solve(sys.stiffness, sys.load, capped);
    Vec err;
    la::sub(res.solution, exact, err);
    Vec kerr;
    sys.stiffness.multiply(err, kerr);
    const double anorm = std::sqrt(std::max(0.0, la::dot(err, kerr)));
    EXPECT_LT(anorm, prev) << "k=" << k;
    prev = anorm;
  }
}

TEST(CgInvariant, PreconditionedErrorAlsoMonotoneInANorm) {
  const fem::PlateMesh mesh(6, 6);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const Vec f = cs.permute(sys.load);
  const Vec exact = la::solve_cholesky(cs.matrix.to_dense(), f);
  const core::MulticolorMStepSsor prec(
      cs, core::least_squares_alphas(3, core::ssor_interval()));

  double prev = 1e300;
  for (int k = 1; k <= 8; ++k) {
    core::PcgOptions capped;
    capped.tolerance = 1e-14;
    capped.max_iterations = k;
    const auto res = core::pcg_solve(cs.matrix, f, prec, capped);
    Vec err;
    la::sub(res.solution, exact, err);
    Vec kerr;
    cs.matrix.multiply(err, kerr);
    const double anorm = std::sqrt(std::max(0.0, la::dot(err, kerr)));
    EXPECT_LT(anorm, prev) << "k=" << k;
    prev = anorm;
  }
}

TEST(CgInvariant, SearchDirectionsAreAOrthogonal) {
  // Reconstruct two consecutive directions and verify (p_k, K p_{k+1}) ~ 0
  // by running PCG and checking the residual orthogonality instead:
  // (r_k, z_j) = 0 for j < k.  We proxy via: solution after k steps has
  // residual orthogonal to the first preconditioned residual.
  const fem::PlateMesh mesh(5, 5);
  const auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                              fem::EdgeLoad{1.0, 0.0});
  core::PcgOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 6;
  const auto res = core::cg_solve(sys.stiffness, sys.load, opt);
  Vec r;
  sys.stiffness.residual(sys.load, res.solution, r);
  // r_6 orthogonal to r_0 = f (u0 = 0) up to rounding scaled by norms.
  const double cosine =
      la::dot(r, sys.load) / (la::nrm2(r) * la::nrm2(sys.load));
  EXPECT_LT(std::abs(cosine), 1e-7);
}

}  // namespace
}  // namespace mstep::split
