// Tests for the Finite Element Machine simulator: the message-passing
// machine itself, the node assignments of Figures 3/5, and the distributed
// solver's exact agreement with the sequential algorithms.
#include <gtest/gtest.h>

#include <cmath>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "fem/tri_mesh.hpp"
#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"
#include "femsim/machine.hpp"

namespace mstep::femsim {
namespace {

// ---- machine primitives -----------------------------------------------------

TEST(Machine, SendRecvDeliversData) {
  Machine m(2, FemCosts{});
  std::vector<double> got;
  m.run([&](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 7, {1.0, 2.0, 3.0});
    } else {
      got = p.recv(0, 7);
    }
  });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[1], 2.0);
}

TEST(Machine, RecvMatchesTag) {
  Machine m(2, FemCosts{});
  std::vector<double> first, second;
  m.run([&](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, {1.0});
      p.send(1, 2, {2.0});
    } else {
      second = p.recv(0, 2);  // out of order on purpose
      first = p.recv(0, 1);
    }
  });
  EXPECT_DOUBLE_EQ(first[0], 1.0);
  EXPECT_DOUBLE_EQ(second[0], 2.0);
}

TEST(Machine, ClockAdvancesWithCompute) {
  FemCosts c;
  Machine m(1, c);
  m.run([&](Proc& p) {
    p.compute(1000);
    EXPECT_NEAR(p.clock(), 1000 * c.t_flop, 1e-12);
  });
}

TEST(Machine, ReceiverWaitsForSenderClock) {
  FemCosts c;
  Machine m(2, c);
  double recv_clock = 0.0;
  m.run([&](Proc& p) {
    if (p.rank() == 0) {
      p.compute(10000);  // sender is busy first
      p.send(1, 1, {42.0});
    } else {
      (void)p.recv(0, 1);
      recv_clock = p.clock();
    }
  });
  // Receiver clock >= sender compute + record cost.
  EXPECT_GE(recv_clock, 10000 * c.t_flop + c.t_record);
}

TEST(Machine, AllreduceSumsDeterministically) {
  Machine m(5, FemCosts{});
  std::vector<double> results(5);
  m.run([&](Proc& p) {
    results[p.rank()] = p.allreduce_sum(0.1 * (p.rank() + 1));
  });
  for (int i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(results[i], results[0]);
  EXPECT_NEAR(results[0], 0.1 + 0.2 + 0.3 + 0.4 + 0.5, 1e-15);
}

TEST(Machine, AllreduceSynchronizesClocks) {
  FemCosts c;
  Machine m(3, c);
  std::vector<double> clocks(3);
  m.run([&](Proc& p) {
    p.compute(1000LL * (p.rank() + 1));
    (void)p.allreduce_sum(1.0);
    clocks[p.rank()] = p.clock();
  });
  // Everyone ends at the slowest clock plus the reduction cost.
  const double expect = 3000 * c.t_flop + 2 * c.t_reduce_stage;
  for (double t : clocks) EXPECT_NEAR(t, expect, 1e-12);
}

TEST(Machine, FlagNetworkAllAndNotAll) {
  Machine m(4, FemCosts{});
  std::vector<int> all(4), some(4);
  m.run([&](Proc& p) {
    all[p.rank()] = p.all_flags(true) ? 1 : 0;
    some[p.rank()] = p.all_flags(p.rank() != 2) ? 1 : 0;
  });
  for (int v : all) EXPECT_EQ(v, 1);
  for (int v : some) EXPECT_EQ(v, 0);
}

TEST(Machine, SummaxCircuitReducesStages) {
  FemCosts soft;
  FemCosts hard = soft;
  hard.use_summax_circuit = true;
  Machine m1(8, soft), m2(8, hard);
  auto prog = [](Proc& p) { (void)p.allreduce_sum(1.0); };
  m1.run(prog);
  m2.run(prog);
  // 7 software stages vs ceil(log2 8) = 3.
  EXPECT_NEAR(m1.simulated_seconds() / m2.simulated_seconds(), 7.0 / 3.0,
              1e-9);
}

TEST(Machine, TrafficCensusCountsRecords) {
  Machine m(3, FemCosts{});
  m.run([&](Proc& p) {
    if (p.rank() == 0) {
      p.send(1, 1, {1.0});
      p.send(1, 1, {2.0});
      p.send(2, 1, {3.0});
    } else {
      (void)p.recv(0, 1);
      if (p.rank() == 1) (void)p.recv(0, 1);
    }
  });
  EXPECT_EQ(m.records_sent(0, 1), 2);
  EXPECT_EQ(m.records_sent(0, 2), 1);
  EXPECT_EQ(m.records_sent(1, 0), 0);
  EXPECT_EQ(m.total_records(), 3);
}

// ---- assignments (Figures 3 and 5) -------------------------------------------

TEST(Assignment, Figure5TwoProcessorBandsAreBalanced) {
  const fem::PlateMesh mesh(6, 6);  // the 60-equation Table 3 problem
  const Assignment a = row_bands(mesh, 2);
  const AssignmentStats st = analyze(a, mesh);
  EXPECT_TRUE(st.colors_balanced);
  EXPECT_TRUE(st.borders_equal);
  EXPECT_EQ(st.max_nodes, 15);
  EXPECT_EQ(st.min_nodes, 15);
}

TEST(Assignment, Figure5FiveProcessorStripsAreBalanced) {
  const fem::PlateMesh mesh(6, 6);
  const Assignment a = column_strips(mesh, 5);
  const AssignmentStats st = analyze(a, mesh);
  EXPECT_TRUE(st.colors_balanced);
  EXPECT_EQ(st.max_nodes, 6);
  EXPECT_EQ(st.min_nodes, 6);
  // Paper: "each processor has an equal number of R, B, and G nodes":
  for (const auto& cc : st.color_counts) {
    EXPECT_EQ(cc[0], 2);
    EXPECT_EQ(cc[1], 2);
    EXPECT_EQ(cc[2], 2);
  }
}

// Two free nodes CAN share coordinates (a seam where two plates are
// stitched, an L-shape's re-entrant corner duplicated by a mesh tool).
// The strip order is (x, y, node id) — the id tie-break makes it TOTAL,
// so the ownership boundary between coincident nodes never depends on
// std::sort's partition choices: the lower node id always gets the lower
// (or equal) strip.  Shard partitions and halo plans key off this
// ownership, so it must be deterministic across standard libraries.
TEST(Assignment, CoordinateStripTieBreaksOnNodeId) {
  fem::TriMesh mesh;
  // Four coincident free nodes at (0.5, 0.5) interleaved with distinct
  // ones, plus a constrained node that must stay unassigned.
  const index_t a = mesh.add_node(0.0, 0.0);
  const index_t d0 = mesh.add_node(0.5, 0.5);
  const index_t b = mesh.add_node(0.25, 0.75);
  const index_t d1 = mesh.add_node(0.5, 0.5);
  const index_t fixed = mesh.add_node(0.4, 0.4, /*constrained=*/true);
  const index_t d2 = mesh.add_node(0.5, 0.5);
  const index_t d3 = mesh.add_node(0.5, 0.5);
  const index_t c = mesh.add_node(1.0, 0.25);
  mesh.add_triangle(a, d0, b);
  mesh.add_triangle(d0, b, d1);
  mesh.add_triangle(d1, fixed, d2);
  mesh.add_triangle(d2, d3, c);
  mesh.finalize();

  // 7 free nodes in (x, y, id) order: a, b, d0, d1, d2, d3, c — cut into
  // 3 strips of sizes 3/2/2 by the k*p/total rule.  The boundary falls
  // BETWEEN coincident nodes: only the id tie-break decides that d1 ends
  // strip 0 and d2 starts strip 1, deterministically.
  const auto owner = coordinate_strip_owner(mesh, 3);
  EXPECT_EQ(owner[fixed], -1);
  EXPECT_EQ(owner[a], 0);
  EXPECT_EQ(owner[b], 0);
  EXPECT_EQ(owner[d0], 0);
  EXPECT_EQ(owner[d1], 1);
  EXPECT_EQ(owner[d2], 1);
  EXPECT_EQ(owner[d3], 2);
  EXPECT_EQ(owner[c], 2);

  // The duplicated group stays in ascending-strip order by id: the
  // assignment is monotone in node id within a coordinate tie.
  EXPECT_LE(owner[d0], owner[d1]);
  EXPECT_LE(owner[d1], owner[d2]);
  EXPECT_LE(owner[d2], owner[d3]);
}

TEST(Assignment, RejectsNonDividingCounts) {
  const fem::PlateMesh mesh(6, 6);
  EXPECT_THROW(row_bands(mesh, 4), std::invalid_argument);
  EXPECT_THROW(column_strips(mesh, 3), std::invalid_argument);
}

TEST(Assignment, RectangularBlocksCoverFigure3) {
  // Figure 3b-style: 2x2 processors on a plate with 6 rows, 6 unconstrained
  // columns -> 9 nodes per processor.
  const fem::PlateMesh mesh(6, 7);
  const Assignment a = rectangular_blocks(mesh, 2, 2);
  const AssignmentStats st = analyze(a, mesh);
  EXPECT_EQ(st.max_nodes, 9);
  EXPECT_EQ(st.min_nodes, 9);
  EXPECT_TRUE(st.colors_balanced);
}

TEST(Assignment, NeighborPairsForStrips) {
  const fem::PlateMesh mesh(6, 6);
  const Assignment a = column_strips(mesh, 5);
  const auto pairs = neighbor_pairs(a, mesh);
  // Strips form a path: 0-1, 1-2, 2-3, 3-4.
  ASSERT_EQ(pairs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pairs[i].first, i);
    EXPECT_EQ(pairs[i].second, i + 1);
  }
}

TEST(Assignment, BlockPartitionUsesSixOfEightLinks) {
  // Figure 4: with the down-right diagonal triangulation a block partition
  // talks to L, R, U, D, and the two anti-diagonal corners only.
  const fem::PlateMesh mesh(9, 10);  // 9 rows, 9 unconstrained cols
  const Assignment a = rectangular_blocks(mesh, 3, 3);
  const auto pairs = neighbor_pairs(a, mesh);
  // Center processor (rank 4) must have exactly 6 neighbours.
  int center_links = 0;
  for (auto [p, q] : pairs) {
    if (p == 4 || q == 4) ++center_links;
  }
  EXPECT_EQ(center_links, 6);
}

// ---- distributed solver ---------------------------------------------------------

struct Table3Problem {
  fem::PlateMesh mesh{6, 6};
  fem::Material mat{};
  fem::EdgeLoad load{1.0, 0.0};
};

class DistSolverVsSequential
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistSolverVsSequential, MatchesSequentialPcg) {
  const auto [nprocs, m] = GetParam();
  Table3Problem prob;
  const Assignment assign =
      nprocs == 1 ? row_bands(prob.mesh, 1)
                  : (nprocs == 2 ? row_bands(prob.mesh, 2)
                                 : column_strips(prob.mesh, 5));
  const DistributedPlateSolver solver(prob.mesh, prob.mat, prob.load, assign);

  DistOptions opt;
  opt.m = m;
  opt.tolerance = 1e-6;
  const DistResult dist = solver.solve(opt);
  EXPECT_TRUE(dist.converged);

  // Sequential reference (identical algorithm and stopping rule).
  auto sys = fem::assemble_plane_stress(prob.mesh, prob.mat, prob.load);
  const auto cs = color::make_colored_system(
      sys.stiffness, color::six_color_classes(prob.mesh));
  const Vec fc = cs.permute(sys.load);
  core::PcgOptions popt;
  popt.tolerance = 1e-6;
  core::PcgResult seq;
  if (m == 0) {
    seq = core::cg_solve(cs.matrix, fc, popt);
  } else {
    const core::MulticolorMStepSsor prec(
        cs, core::least_squares_alphas(m, core::ssor_interval()));
    seq = core::pcg_solve(cs.matrix, fc, prec, popt);
  }

  EXPECT_EQ(dist.iterations, seq.iterations)
      << "P=" << nprocs << " m=" << m;
  const Vec seq_orig = cs.unpermute(seq.solution);
  double err = 0.0;
  for (std::size_t i = 0; i < seq_orig.size(); ++i) {
    err = std::max(err, std::abs(seq_orig[i] - dist.solution[i]));
  }
  // With P > 1 the reduction order differs from the sequential dot, so the
  // iterates drift at rounding level per iteration; both runs converge to
  // the same tolerance, so they agree to about the stopping threshold.
  EXPECT_LT(err, 5e-6) << "P=" << nprocs << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistSolverVsSequential,
    ::testing::Combine(::testing::Values(1, 2, 5),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(DistSolver, IterationCountsIdenticalAcrossProcessorCounts) {
  // The paper's Table 3 shows the same iteration column for 1, 2 and 5
  // processors — the distributed preconditioner is exactly the sequential
  // operator.
  Table3Problem prob;
  for (int m : {0, 2, 4}) {
    DistOptions opt;
    opt.m = m;
    opt.tolerance = 1e-4;
    std::vector<int> iters;
    for (int p : {1, 2, 5}) {
      const Assignment assign =
          p == 1 ? row_bands(prob.mesh, 1)
                 : (p == 2 ? row_bands(prob.mesh, 2)
                           : column_strips(prob.mesh, 5));
      const DistributedPlateSolver solver(prob.mesh, prob.mat, prob.load,
                                          assign);
      iters.push_back(solver.solve(opt).iterations);
    }
    EXPECT_EQ(iters[0], iters[1]) << "m=" << m;
    EXPECT_EQ(iters[0], iters[2]) << "m=" << m;
  }
}

TEST(DistSolver, SpeedupIsRealAndBelowIdeal) {
  Table3Problem prob;
  DistOptions opt;
  opt.m = 2;
  opt.tolerance = 1e-4;

  const DistributedPlateSolver s1(prob.mesh, prob.mat, prob.load,
                                  row_bands(prob.mesh, 1));
  const DistributedPlateSolver s2(prob.mesh, prob.mat, prob.load,
                                  row_bands(prob.mesh, 2));
  const DistributedPlateSolver s5(prob.mesh, prob.mat, prob.load,
                                  column_strips(prob.mesh, 5));
  const double t1 = s1.solve(opt).simulated_seconds;
  const double t2 = s2.solve(opt).simulated_seconds;
  const double t5 = s5.solve(opt).simulated_seconds;

  EXPECT_GT(t1 / t2, 1.5);
  EXPECT_LT(t1 / t2, 2.0);
  EXPECT_GT(t1 / t5, 2.5);
  EXPECT_LT(t1 / t5, 5.0);
}

TEST(DistSolver, CommOverheadGrowsWithM) {
  // Observation (3) of the paper: preconditioner communications dominate
  // the overhead, so comm seconds grow with m.
  Table3Problem prob;
  const DistributedPlateSolver s2(prob.mesh, prob.mat, prob.load,
                                  row_bands(prob.mesh, 2));
  DistOptions opt;
  opt.tolerance = 1e-4;
  opt.m = 1;
  const double comm_per_iter_1 =
      s2.solve(opt).max_comm_seconds / s2.solve(opt).iterations;
  opt.m = 4;
  const DistResult r4 = s2.solve(opt);
  const double comm_per_iter_4 = r4.max_comm_seconds / r4.iterations;
  EXPECT_GT(comm_per_iter_4, comm_per_iter_1 * 2);
}

TEST(DistSolver, SingleProcessorMatchesSequentialBitwise) {
  // With P=1 the distributed code path is the sequential algorithm in
  // disguise: dots accumulate in the same order, so results are identical.
  Table3Problem prob;
  const DistributedPlateSolver s1(prob.mesh, prob.mat, prob.load,
                                  row_bands(prob.mesh, 1));
  DistOptions opt;
  opt.m = 3;
  opt.tolerance = 1e-5;
  const DistResult dist = s1.solve(opt);

  auto sys = fem::assemble_plane_stress(prob.mesh, prob.mat, prob.load);
  const auto cs = color::make_colored_system(
      sys.stiffness, color::six_color_classes(prob.mesh));
  const core::MulticolorMStepSsor prec(
      cs, core::least_squares_alphas(3, core::ssor_interval()));
  core::PcgOptions popt;
  popt.tolerance = 1e-5;
  const auto seq = core::pcg_solve(cs.matrix, cs.permute(sys.load), prec, popt);
  const Vec seq_orig = cs.unpermute(seq.solution);
  for (std::size_t i = 0; i < seq_orig.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist.solution[i], seq_orig[i]);
  }
}

TEST(DistSolver, UnparametrizedOptionWorks) {
  Table3Problem prob;
  const DistributedPlateSolver s(prob.mesh, prob.mat, prob.load,
                                 row_bands(prob.mesh, 2));
  DistOptions opt;
  opt.m = 3;
  opt.tolerance = 1e-4;
  opt.parametrized = false;
  const DistResult un = s.solve(opt);
  opt.parametrized = true;
  const DistResult par = s.solve(opt);
  EXPECT_TRUE(un.converged);
  EXPECT_LE(par.iterations, un.iterations);
}

TEST(DistSolver, BlockAssignmentWithDiagonalNeighborsMatchesSequential) {
  // Rectangular blocks produce diagonal (corner) neighbour links — the
  // hardest case for the per-colour exchange schedule.  The distributed
  // operator must still be exactly the sequential one: same iteration
  // count for every m.
  const fem::PlateMesh mesh(6, 7);  // 6 unconstrained columns -> 2x2 blocks
  const fem::Material mat;
  const fem::EdgeLoad load{1.0, 0.5};
  const Assignment assign = rectangular_blocks(mesh, 2, 2);
  const DistributedPlateSolver solver(mesh, mat, load, assign);

  auto sys = fem::assemble_plane_stress(mesh, mat, load);
  const auto cs = color::make_colored_system(
      sys.stiffness, color::six_color_classes(mesh));
  const Vec fc = cs.permute(sys.load);

  for (int m : {1, 2, 3, 5}) {
    DistOptions opt;
    opt.m = m;
    opt.tolerance = 1e-6;
    const DistResult dist = solver.solve(opt);
    const core::MulticolorMStepSsor prec(
        cs, core::least_squares_alphas(m, core::ssor_interval()));
    core::PcgOptions popt;
    popt.tolerance = 1e-6;
    const auto seq = core::pcg_solve(cs.matrix, fc, prec, popt);
    EXPECT_EQ(dist.iterations, seq.iterations) << "m=" << m;
    EXPECT_TRUE(dist.converged);
  }
}

TEST(DistSolver, NineProcessorGridMatchesSequential) {
  const fem::PlateMesh mesh(9, 10);  // 9 rows x 9 unconstrained columns
  const fem::Material mat;
  const fem::EdgeLoad load{1.0, 0.0};
  const DistributedPlateSolver solver(mesh, mat, load,
                                      rectangular_blocks(mesh, 3, 3));
  DistOptions opt;
  opt.m = 2;
  opt.tolerance = 1e-5;
  const DistResult dist = solver.solve(opt);

  auto sys = fem::assemble_plane_stress(mesh, mat, load);
  const auto cs = color::make_colored_system(
      sys.stiffness, color::six_color_classes(mesh));
  const core::MulticolorMStepSsor prec(
      cs, core::least_squares_alphas(2, core::ssor_interval()));
  core::PcgOptions popt;
  popt.tolerance = 1e-5;
  const auto seq = core::pcg_solve(cs.matrix, cs.permute(sys.load), prec, popt);
  EXPECT_EQ(dist.iterations, seq.iterations);
  EXPECT_TRUE(dist.converged);
}

TEST(DistSolver, TrafficOnlyBetweenNeighbors) {
  Table3Problem prob;
  const Assignment a = column_strips(prob.mesh, 5);
  const DistributedPlateSolver s(prob.mesh, prob.mat, prob.load, a);
  DistOptions opt;
  opt.m = 2;
  opt.tolerance = 1e-4;
  std::vector<std::vector<long long>> traffic;
  (void)s.solve_with_traffic(opt, &traffic);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (std::abs(i - j) == 1) {
        EXPECT_GT(traffic[i][j], 0) << i << "->" << j;
      } else {
        EXPECT_EQ(traffic[i][j], 0) << i << "->" << j;
      }
    }
  }
}

}  // namespace
}  // namespace mstep::femsim
