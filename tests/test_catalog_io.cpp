// The problem catalog and the mstep_solve driver core.
//
// The ISSUE-level guarantee: every registered catalog problem solves to
// tolerance with every registered splitting through the driver
// (problems::run — exactly what tools/mstep_solve.cpp wraps), and the
// serial run is bitwise identical to the --threads=4 --batch=4 run.
// Plus: spec round-trip, option validation, the convdiff SPD guard,
// Matrix Market input through the driver, and the JSON report schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

#include "problems/driver.hpp"
#include "problems/problem.hpp"
#include "solver/solver.hpp"

namespace mstep::problems {
namespace {

/// Test-sized spec per registered problem.  CoversEveryRegisteredProblem
/// fails when a new generator is registered without a row here — add one
/// and it is automatically swept by every test below.
const std::map<std::string, std::string>& small_specs() {
  static const std::map<std::string, std::string> specs = {
      {"poisson2d", "poisson2d:n=9"},
      {"poisson3d", "poisson3d:n=5"},
      {"aniso2d", "aniso2d:n=9:ratio=50"},
      {"convdiff", "convdiff:n=9:peclet=5"},
      {"randspd", "randspd:n=150:band=5"},
      {"stencil9", "stencil9:n=9"},
      {"femplate", "femplate:a=8"},
      {"cyberplate", "cyberplate:a=8"},
  };
  return specs;
}

TEST(ProblemCatalog, CoversEveryRegisteredProblem) {
  const auto names = ProblemRegistry::instance().names();
  EXPECT_EQ(names.size(), small_specs().size());
  for (const auto& name : names) {
    EXPECT_TRUE(small_specs().count(name))
        << "problem '" << name << "' has no test spec; add one";
  }
}

// ---- spec round-trip --------------------------------------------------------

TEST(ProblemSpec, RoundTripsExactly) {
  const ProblemSpec spec =
      ProblemSpec::from_string("aniso2d:n=16:ratio=12.5");
  EXPECT_EQ(spec.name, "aniso2d");
  EXPECT_EQ(spec.options.at("ratio"), 12.5);
  EXPECT_EQ(spec.to_string(), "aniso2d:n=16:ratio=12.5");
  EXPECT_EQ(ProblemSpec::from_string(spec.to_string()), spec);

  // A generated problem's resolved spec reproduces the identical system.
  for (const auto& [name, text] : small_specs()) {
    const Problem p = ProblemRegistry::instance().create(text);
    EXPECT_EQ(p.spec.name, name);
    const Problem again = ProblemRegistry::instance().create(
        ProblemSpec::from_string(p.spec.to_string()));
    EXPECT_EQ(p.matrix.values(), again.matrix.values()) << name;
    EXPECT_EQ(p.rhs, again.rhs) << name;
  }
}

TEST(ProblemSpec, BadSpecsThrow) {
  EXPECT_THROW((void)ProblemSpec::from_string(""), std::invalid_argument);
  EXPECT_THROW((void)ProblemSpec::from_string(":n=3"), std::invalid_argument);
  EXPECT_THROW((void)ProblemSpec::from_string("poisson2d:n"),
               std::invalid_argument);
  EXPECT_THROW((void)ProblemSpec::from_string("poisson2d:n=abc"),
               std::invalid_argument);
  auto& reg = ProblemRegistry::instance();
  EXPECT_THROW((void)reg.create("nope:n=3"), std::invalid_argument);
  EXPECT_THROW((void)reg.create("poisson2d:bogus=3"), std::invalid_argument);
  EXPECT_THROW((void)reg.create("poisson2d:n=2.5"), std::invalid_argument);
  EXPECT_THROW((void)reg.create("poisson2d:n=0"), std::invalid_argument);
}

// ---- generator properties ---------------------------------------------------

TEST(ProblemCatalog, GeneratedSystemsAreSymmetricWithConsistentMetadata) {
  for (const auto& [name, text] : small_specs()) {
    const Problem p = ProblemRegistry::instance().create(text);
    EXPECT_EQ(p.matrix.rows(), p.matrix.cols()) << name;
    // The FEM plates carry assembly-order roundoff (~1e-16); the stencil
    // generators are exactly symmetric.
    EXPECT_LE(p.matrix.symmetry_error(), 1e-14) << name;
    EXPECT_EQ(p.rhs.size(), static_cast<std::size_t>(p.matrix.rows()))
        << name;
    if (p.has_exact()) {
      // b = K u* by construction.
      Vec b(p.rhs.size());
      p.matrix.multiply(p.exact_solution, b);
      EXPECT_EQ(b, p.rhs) << name;
    }
    if (p.has_classes()) {
      EXPECT_TRUE(color::coloring_is_valid(p.matrix, p.classes)) << name;
      EXPECT_EQ(p.classes.total_equations(), p.matrix.rows()) << name;
    }
  }
}

TEST(ProblemCatalog, ConvdiffSpdGuardRejectsHighCellPeclet) {
  auto& reg = ProblemRegistry::instance();
  // Cell Peclet = peclet / (2 (n+1)); n = 9 -> threshold at 20.
  EXPECT_NO_THROW((void)reg.create("convdiff:n=9:peclet=19"));
  try {
    (void)reg.create("convdiff:n=9:peclet=100");
    FAIL() << "expected the SPD guard to reject";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("not SPD"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("cell Peclet"), std::string::npos);
  }
  // The guard also runs at option-validation time, before any build.
  EXPECT_THROW(reg.check_options(
                   "convdiff", ProblemOptions{{"n", 9.0}, {"peclet", 100.0}}),
               std::invalid_argument);
}

// ---- the ISSUE-level guarantee ----------------------------------------------

void expect_bitwise_equal(const solver::SolveReport& a,
                          const solver::SolveReport& b,
                          const std::string& what) {
  ASSERT_EQ(a.iterations(), b.iterations()) << what;
  ASSERT_EQ(a.result.final_delta_inf, b.result.final_delta_inf) << what;
  ASSERT_EQ(a.solution.size(), b.solution.size()) << what;
  for (std::size_t i = 0; i < a.solution.size(); ++i) {
    ASSERT_EQ(a.solution[i], b.solution[i]) << what << " i=" << i;
  }
}

// Every catalog problem x every registered splitting, through the same
// driver core the mstep_solve CLI wraps: solves to tolerance, the known
// solution is recovered, and the serial run is bitwise identical to the
// threads=4 batch=4 run.
TEST(CatalogDriver, EveryProblemEverySplittingSerialAndBatchedBitwise) {
  constexpr double kTol = 1e-10;
  for (const auto& [name, text] : small_specs()) {
    for (const auto& splitting :
         solver::SplittingRegistry::instance().names()) {
      const std::string what = text + " / " + splitting;

      DriverInput input;
      input.problem = text;
      input.nrhs = 3;

      solver::SolverConfig serial_cfg;
      serial_cfg.splitting = splitting;
      serial_cfg.steps = 2;
      serial_cfg.tolerance = kTol;

      auto parallel_cfg = serial_cfg;
      parallel_cfg.execution.threads = 4;
      parallel_cfg.batch = 4;

      const DriverResult serial = run(input, serial_cfg);
      const DriverResult parallel = run(input, parallel_cfg);

      ASSERT_TRUE(serial.all_converged()) << what;
      ASSERT_TRUE(parallel.all_converged()) << what;
      if (serial.has_exact) {
        EXPECT_LT(serial.error_vs_exact, 1e-6) << what;
      }
      ASSERT_EQ(serial.batch.size(), 3u) << what;
      for (std::size_t i = 0; i < serial.batch.size(); ++i) {
        expect_bitwise_equal(serial.batch.reports[i],
                             parallel.batch.reports[i],
                             what + " rhs=" + std::to_string(i));
      }
    }
  }
}

// ---- Matrix Market input through the driver ---------------------------------

TEST(CatalogDriver, FileInputSolvesWithManufacturedOnesSolution) {
  DriverInput input;
  input.matrix_path = std::string(MSTEP_TEST_DATA_DIR) +
                      "/spd_band_symmetric.mtx";
  solver::SolverConfig cfg;
  cfg.splitting = "jacobi";
  cfg.steps = 2;
  cfg.tolerance = 1e-12;

  const DriverResult r = run(input, cfg);
  EXPECT_EQ(r.source, "file");
  EXPECT_TRUE(r.all_converged());
  ASSERT_TRUE(r.has_exact);  // b = K*1 makes all-ones the known solution
  EXPECT_LT(r.error_vs_exact, 1e-8);
  EXPECT_TRUE(r.dia_friendly);
  EXPECT_FALSE(r.used_classes);  // greedy colouring path
}

TEST(CatalogDriver, InputValidationThrows) {
  solver::SolverConfig cfg;
  EXPECT_THROW((void)run(DriverInput{}, cfg), std::invalid_argument);
  DriverInput both;
  both.problem = "poisson2d:n=4";
  both.matrix_path = "x.mtx";
  EXPECT_THROW((void)run(both, cfg), std::invalid_argument);
  DriverInput rhs_only;
  rhs_only.problem = "poisson2d:n=4";
  rhs_only.rhs_path = "b.mtx";
  EXPECT_THROW((void)run(rhs_only, cfg), std::invalid_argument);
  DriverInput bad_nrhs;
  bad_nrhs.problem = "poisson2d:n=4";
  bad_nrhs.nrhs = 0;
  EXPECT_THROW((void)run(bad_nrhs, cfg), std::invalid_argument);
}

// ---- report schema ----------------------------------------------------------

TEST(CatalogDriver, ReportJsonCarriesTheSchemaFields) {
  DriverInput input;
  input.problem = "stencil9:n=6";
  input.nrhs = 2;
  solver::SolverConfig cfg;
  cfg.steps = 2;
  cfg.tolerance = 1e-9;
  const DriverResult r = run(input, cfg);
  const std::string json = report_json(r).dump_string();

  for (const char* field :
       {"\"tool\": \"mstep_solve\"", "\"source\": \"catalog\"",
        "\"problem\": \"stencil9:nx=6:ny=6\"", "\"n\": ", "\"nnz\": ",
        "\"bandwidth\": ", "\"nonzero_diagonals\": ", "\"dia_friendly\": ",
        "\"used_classes\": true", "\"config\": \"splitting=ssor",
        "\"nrhs\": 2", "\"concurrency\": ", "\"setup_seconds\": ",
        "\"wall_seconds\": ", "\"solves_per_second\": ",
        "\"converged\": true", "\"iterations\": [", "\"final_delta_inf\": [",
        "\"rhs_errors\": [", "\"error_vs_exact\": "}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << "missing " << field << " in\n" << json;
  }
}

}  // namespace
}  // namespace mstep::problems
