"""fetch_corpus.py: manifest validation and offline-safe --check-only.

No network, no driver binary needed: these tests exercise the schema
validator and the cache-verification path only.
"""

import contextlib
import copy
import hashlib
import io
import json
import os
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

import fetch_corpus  # noqa: E402

COMMITTED_MANIFEST = os.path.join(REPO, "bench/corpus/manifest.json")

VALID_GENERATED = {
    "name": "gen1",
    "kind": "generated",
    "generator": "poisson2d:n=8",
    "sha256": None,
    "n": None,
    "nnz": None,
    "spd": True,
    "expected_format": None,
    "pinned": False,
}

VALID_REMOTE = {
    "name": "rem1",
    "kind": "suitesparse",
    "group": "HB",
    "url": "https://example.invalid/MM/HB/rem1.tar.gz",
    "sha256": None,
    "n": 48,
    "nnz": 400,
    "spd": True,
    "expected_format": None,
    "pinned": False,
}


def manifest_with(*entries):
    return {"schema": "mstep-corpus-manifest-v1",
            "matrices": [copy.deepcopy(e) for e in entries]}


def run_main(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        try:
            code = fetch_corpus.main(argv)
        except SystemExit as e:
            code = e.code
    return code, out.getvalue(), err.getvalue()


class ManifestValidationTest(unittest.TestCase):
    def test_committed_manifest_is_valid(self):
        with open(COMMITTED_MANIFEST) as f:
            manifest = json.load(f)
        self.assertEqual(fetch_corpus.validate_manifest(manifest), [])
        # The curated corpus the issue calls for: 10-15 matrices, both
        # tiers present, every generated entry pinned so the committed
        # baseline is reproducible offline.
        matrices = manifest["matrices"]
        self.assertGreaterEqual(len(matrices), 10)
        self.assertLessEqual(len(matrices), 15)
        kinds = {m["kind"] for m in matrices}
        self.assertEqual(kinds, {"suitesparse", "generated"})
        for m in matrices:
            if m["kind"] == "generated":
                self.assertTrue(m["pinned"], m["name"])
                self.assertIsNotNone(m["sha256"], m["name"])

    def test_valid_synthetic_manifest(self):
        errors = fetch_corpus.validate_manifest(
            manifest_with(VALID_GENERATED, VALID_REMOTE))
        self.assertEqual(errors, [])

    def assert_invalid(self, manifest, fragment):
        errors = fetch_corpus.validate_manifest(manifest)
        self.assertTrue(any(fragment in e for e in errors),
                        f"no error containing {fragment!r} in {errors}")

    def test_rejects_wrong_schema_id(self):
        m = manifest_with(VALID_GENERATED)
        m["schema"] = "v0"
        self.assert_invalid(m, "schema")

    def test_rejects_duplicate_names(self):
        self.assert_invalid(manifest_with(VALID_GENERATED, VALID_GENERATED),
                            "duplicate")

    def test_rejects_bad_sha256(self):
        bad = dict(VALID_GENERATED, sha256="abc123")
        self.assert_invalid(manifest_with(bad), "sha256")

    def test_rejects_pinned_without_sha256(self):
        bad = dict(VALID_GENERATED, pinned=True)
        self.assert_invalid(manifest_with(bad), "lacks sha256")

    def test_rejects_unknown_kind(self):
        bad = dict(VALID_GENERATED, kind="carrier-pigeon")
        self.assert_invalid(manifest_with(bad), "kind")

    def test_rejects_http_url(self):
        bad = dict(VALID_REMOTE, url="http://example.invalid/MM/x.tar.gz")
        self.assert_invalid(manifest_with(bad), "https")

    def test_rejects_non_spd(self):
        bad = dict(VALID_GENERATED, spd=False)
        self.assert_invalid(manifest_with(bad), "spd")

    def test_rejects_bad_expected_format(self):
        bad = dict(VALID_GENERATED, expected_format="coo")
        self.assert_invalid(manifest_with(bad), "expected_format")


class CheckOnlyTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.cache = os.path.join(self.dir.name, "cache")
        os.makedirs(self.cache)

    def write_manifest(self, manifest):
        path = os.path.join(self.dir.name, "manifest.json")
        with open(path, "w") as f:
            json.dump(manifest, f)
        return path

    def test_committed_manifest_check_only_is_offline_safe(self):
        # Empty cache: everything reports absent, nothing downloads,
        # exit 0 — the mode CI and fresh clones rely on.
        code, out, _ = run_main(["--check-only",
                                 "--manifest", COMMITTED_MANIFEST,
                                 "--cache", self.cache])
        self.assertEqual(code, 0)
        self.assertIn("absent", out)

    def test_check_only_verifies_pinned_cache(self):
        payload = b"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.0\n"
        with open(os.path.join(self.cache, "gen1.mtx"), "wb") as f:
            f.write(payload)
        pinned = dict(VALID_GENERATED, pinned=True,
                      sha256=hashlib.sha256(payload).hexdigest())
        path = self.write_manifest(manifest_with(pinned))
        code, out, _ = run_main(["--check-only", "--manifest", path,
                                 "--cache", self.cache])
        self.assertEqual(code, 0)
        self.assertIn("verified", out)

    def test_check_only_fails_on_corrupt_cache(self):
        with open(os.path.join(self.cache, "gen1.mtx"), "wb") as f:
            f.write(b"tampered bytes")
        pinned = dict(VALID_GENERATED, pinned=True, sha256="0" * 64)
        path = self.write_manifest(manifest_with(pinned))
        code, _, err = run_main(["--check-only", "--manifest", path,
                                 "--cache", self.cache])
        self.assertEqual(code, 1)
        self.assertIn("does not match", err)

    def test_invalid_manifest_is_usage_error(self):
        path = self.write_manifest(manifest_with(
            dict(VALID_GENERATED, kind="nope")))
        code, _, err = run_main(["--check-only", "--manifest", path,
                                 "--cache", self.cache])
        self.assertEqual(code, 2)
        self.assertIn("manifest validation", err)

    def test_unknown_only_name_is_usage_error(self):
        path = self.write_manifest(manifest_with(VALID_GENERATED))
        code, _, err = run_main(["--check-only", "--manifest", path,
                                 "--cache", self.cache,
                                 "--only", "no-such-matrix"])
        self.assertEqual(code, 2)
        self.assertIn("not in the manifest", err)

    def test_offline_skips_remote_entries(self):
        # --offline with a remote-only manifest: nothing fetched, no
        # network errors, exit 0 — the degraded-CI path.
        path = self.write_manifest(manifest_with(VALID_REMOTE))
        code, out, _ = run_main(["--offline", "--manifest", path,
                                 "--cache", self.cache])
        self.assertEqual(code, 0)
        self.assertIn("skipped (offline)", out)


if __name__ == "__main__":
    unittest.main()
