"""run_corpus.py: aggregation over a stub driver, no C++ build needed.

The stub stands in for mstep_solve: it parses the same flags and
writes a schema-complete report whose iteration count is a
deterministic function of (splitting, m), so the tests can assert the
flattened BENCH_corpus.json rows exactly.
"""

import contextlib
import copy
import hashlib
import io
import json
import os
import sys
import tempfile
import textwrap
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

import run_corpus  # noqa: E402

STUB_DRIVER = textwrap.dedent("""\
    import json, sys
    args = dict(a[2:].split("=", 1) for a in sys.argv[1:] if "=" in a)
    splitting, m = args["splitting"], int(args["m"])
    report = {
        "tool": "mstep_solve",
        "source": "file",
        "problem": args["matrix"],
        "description": "stub",
        "n": 10,
        "nnz": 28,
        "bandwidth": 1,
        "nonzero_diagonals": 3,
        "dia_friendly": True,
        "used_classes": False,
        "format_selected": "dia",
        "shards": 0,
        "config": "splitting=%s;m=%d;format=auto" % (splitting, m),
        "nrhs": 1,
        "concurrency": 1,
        "setup_seconds": 0.25,
        "wall_seconds": 0.5,
        "solves_per_second": 2.0,
        "converged": True,
        "iterations": [10 * len(splitting) - m],
        "final_delta_inf": [1e-7],
        "rhs_errors": [""],
        "error_vs_exact": None,
        "interval": {"lambda_min": 0.1, "lambda_max": 1.9},
        "condition_proxy": 1.5,
        "history": [{"value": 1e-7, "alpha": 0.9, "seconds": 0.001}],
    }
    with open(args["out"], "w") as f:
        json.dump(report, f)
    """)

ENTRY = {
    "name": "mat1",
    "kind": "generated",
    "generator": "poisson2d:n=8",
    "sha256": None,
    "n": 10,
    "nnz": 28,
    "spd": True,
    "expected_format": "dia",
    "pinned": False,
}


def run_main(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        try:
            code = run_corpus.main(argv)
        except SystemExit as e:
            code = e.code
    return code, out.getvalue(), err.getvalue()


class RunCorpusTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.cache = os.path.join(self.dir.name, "cache")
        os.makedirs(self.cache)
        self.driver = os.path.join(self.dir.name, "stub_driver.py")
        with open(self.driver, "w") as f:
            f.write(STUB_DRIVER)
        self.out = os.path.join(self.dir.name, "BENCH_corpus.json")

    def add_matrix(self, name, pin_to_payload=False):
        payload = f"stub matrix {name}\n".encode()
        with open(os.path.join(self.cache, name + ".mtx"), "wb") as f:
            f.write(payload)
        entry = copy.deepcopy(ENTRY)
        entry["name"] = name
        if pin_to_payload:
            entry["pinned"] = True
            entry["sha256"] = hashlib.sha256(payload).hexdigest()
        return entry

    def write_manifest(self, entries):
        path = os.path.join(self.dir.name, "manifest.json")
        with open(path, "w") as f:
            json.dump({"schema": "mstep-corpus-manifest-v1",
                       "matrices": entries}, f)
        return path

    def invoke(self, manifest, *extra):
        return run_main(["--manifest", manifest, "--cache", self.cache,
                         "--driver", self.driver, "--out", self.out,
                         *extra])

    def rows(self):
        with open(self.out) as f:
            return json.load(f)

    def test_aggregates_sorted_flat_rows(self):
        manifest = self.write_manifest([self.add_matrix("beta"),
                                        self.add_matrix("alpha")])
        code, _, _ = self.invoke(manifest)
        self.assertEqual(code, 0)
        rows = self.rows()
        # 2 matrices x default 4-point sweep, sorted by matrix then
        # splitting then m.
        self.assertEqual(len(rows), 8)
        self.assertEqual([r["matrix"] for r in rows],
                         ["alpha"] * 4 + ["beta"] * 4)
        self.assertEqual([(r["splitting"], r["m"]) for r in rows[:4]],
                         [("jacobi", 2), ("ssor", 1), ("ssor", 2),
                          ("ssor", 4)])
        # iterations flattened from the report's per-RHS list via the
        # stub's 10*len(splitting) - m formula.
        self.assertEqual(rows[0]["iterations"], 58)   # jacobi, m=2
        self.assertEqual(rows[1]["iterations"], 39)   # ssor, m=1
        self.assertEqual(rows[0]["solve_seconds"], 0.5)
        self.assertEqual(rows[0]["tool"], "bench_corpus")

    def test_custom_sweep(self):
        manifest = self.write_manifest([self.add_matrix("alpha")])
        code, _, _ = self.invoke(manifest, "--sweep", "ssor:3")
        self.assertEqual(code, 0)
        self.assertEqual([(r["splitting"], r["m"]) for r in self.rows()],
                         [("ssor", 3)])

    def test_missing_matrix_skips_with_notice(self):
        present = self.add_matrix("present")
        absent = copy.deepcopy(ENTRY)
        absent["name"] = "never-fetched"
        manifest = self.write_manifest([present, absent])
        code, out, _ = self.invoke(manifest)
        self.assertEqual(code, 0)
        self.assertIn("skipped", out)
        self.assertIn("never-fetched", out)
        self.assertEqual({r["matrix"] for r in self.rows()}, {"present"})

    def test_require_all_fails_on_missing_matrix(self):
        absent = copy.deepcopy(ENTRY)
        absent["name"] = "never-fetched"
        manifest = self.write_manifest([self.add_matrix("present"), absent])
        code, _, err = self.invoke(manifest, "--require-all")
        self.assertEqual(code, 1)
        self.assertIn("--require-all", err)

    def test_pinned_format_mismatch_fails(self):
        entry = self.add_matrix("alpha", pin_to_payload=True)
        entry["expected_format"] = "sell"  # stub always reports dia
        manifest = self.write_manifest([entry])
        code, _, err = self.invoke(manifest)
        self.assertEqual(code, 1)
        self.assertIn("format_selected", err)
        self.assertEqual(self.rows(), [])  # bad rows never land

    def test_unpinned_metadata_mismatch_only_warns(self):
        entry = self.add_matrix("alpha")
        entry["n"] = 99999  # wrong, but advisory while unpinned
        manifest = self.write_manifest([entry])
        code, out, _ = self.invoke(manifest)
        self.assertEqual(code, 0)
        self.assertIn("advisory", out)
        self.assertEqual(len(self.rows()), 4)

    def test_stale_pinned_cache_fails(self):
        entry = self.add_matrix("alpha", pin_to_payload=True)
        entry["sha256"] = "0" * 64
        manifest = self.write_manifest([entry])
        code, _, err = self.invoke(manifest)
        self.assertEqual(code, 1)
        self.assertIn("stale or corrupt", err)

    def write_counting_driver(self, body):
        """A stub whose output varies per invocation via a counter file."""
        driver = os.path.join(self.dir.name, "counting_driver.py")
        counter = os.path.join(self.dir.name, "calls")
        prologue = textwrap.dedent("""\
            import json, os, sys
            args = dict(a[2:].split("=", 1) for a in sys.argv[1:] if "=" in a)
            counter = %r
            calls = int(open(counter).read()) if os.path.exists(counter) else 0
            open(counter, "w").write(str(calls + 1))
            """ % counter)
        with open(driver, "w") as f:
            f.write(STUB_DRIVER.replace("import json, sys\n", prologue)
                    .replace("args = dict(a[2:].split(\"=\", 1) "
                             "for a in sys.argv[1:] if \"=\" in a)\n", "", 1)
                    .replace(body[0], body[1]))
        return driver

    def test_timings_are_best_of_repeats(self):
        # wall_seconds climbs 0.5 / 1.5 / 2.5 across the repeats; the
        # row must keep the minimum.
        driver = self.write_counting_driver(
            ('"wall_seconds": 0.5,', '"wall_seconds": 0.5 + calls,'))
        manifest = self.write_manifest([self.add_matrix("alpha")])
        code, _, _ = run_main(["--manifest", manifest, "--cache", self.cache,
                               "--driver", driver, "--out", self.out,
                               "--sweep", "ssor:2", "--repeats", "3"])
        self.assertEqual(code, 0)
        self.assertEqual(self.rows()[0]["solve_seconds"], 0.5)

    def test_nondeterministic_iterations_fail(self):
        driver = self.write_counting_driver(
            ('"iterations": [10 * len(splitting) - m],',
             '"iterations": [100 + calls],'))
        manifest = self.write_manifest([self.add_matrix("alpha")])
        code, _, err = run_main(["--manifest", manifest, "--cache",
                                 self.cache, "--driver", driver,
                                 "--out", self.out, "--sweep", "ssor:2",
                                 "--repeats", "2"])
        self.assertEqual(code, 1)
        self.assertIn("differs across repeats", err)
        self.assertEqual(self.rows(), [])

    def test_empty_run_is_a_failure(self):
        absent = copy.deepcopy(ENTRY)
        absent["name"] = "never-fetched"
        manifest = self.write_manifest([absent])
        code, _, _ = self.invoke(manifest)
        self.assertEqual(code, 1)


if __name__ == "__main__":
    unittest.main()
