"""check_bench.py: per-metric exact/tolN modes and unmatched-key reporting.

Runs under plain `python3 -m unittest discover -s tests/tools` (no
pytest needed locally) and under pytest in CI's tools-test job.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

import check_bench  # noqa: E402


def run_main(argv):
    """check_bench.main with stdout/stderr captured -> (code, out, err)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        try:
            code = check_bench.main(argv)
        except SystemExit as e:  # die() paths
            code = e.code
    return code, out.getvalue(), err.getvalue()


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, rows):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(rows, f)
        return path

    def compare(self, baseline, candidate, *extra):
        base = self.write("base.json", baseline)
        cand = self.write("cand.json", candidate)
        return run_main(["--baseline", base, "--candidate", cand,
                         "--key", "workload", *extra])

    def test_parse_metric_modes(self):
        self.assertEqual(check_bench.parse_metric("it:lower"),
                         ("it", "lower", None))
        self.assertEqual(check_bench.parse_metric("it:lower:exact"),
                         ("it", "lower", "exact"))
        self.assertEqual(check_bench.parse_metric("sp:higher:tol0.25"),
                         ("sp", "higher", 0.25))
        for bad in ("it", "it:upward", "it:lower:tolx", "it:lower:fuzzy",
                    "it:lower:tol-1"):
            with self.assertRaises(ValueError, msg=bad):
                check_bench.parse_metric(bad)

    def test_exact_match_passes(self):
        rows = [{"workload": "a", "iterations": 55}]
        code, _, _ = self.compare(rows, rows,
                                  "--metric", "iterations:lower:exact")
        self.assertEqual(code, 0)

    def test_exact_fails_on_any_drift_even_improvement(self):
        base = [{"workload": "a", "iterations": 55}]
        # 54 iterations is BETTER for a :lower metric, but :exact means a
        # baseline change must be committed, not slip through.
        better = [{"workload": "a", "iterations": 54}]
        code, _, err = self.compare(base, better,
                                    "--metric", "iterations:lower:exact")
        self.assertEqual(code, 1)
        self.assertIn("must match the baseline exactly", err)

    def test_per_metric_tolerance_overrides_global(self):
        base = [{"workload": "a", "speedup": 2.0}]
        cand = [{"workload": "a", "speedup": 1.7}]  # -15%
        # Global default 40% would pass; tol0.10 must fail.
        code, _, _ = self.compare(base, cand, "--metric", "speedup:higher")
        self.assertEqual(code, 0)
        code, _, _ = self.compare(base, cand,
                                  "--metric", "speedup:higher:tol0.10")
        self.assertEqual(code, 1)
        code, _, _ = self.compare(base, cand,
                                  "--metric", "speedup:higher:tol0.20")
        self.assertEqual(code, 0)

    def test_global_tolerance_still_gates_plain_metrics(self):
        base = [{"workload": "a", "speedup": 2.0}]
        cand = [{"workload": "a", "speedup": 1.0}]  # -50% > 40%
        code, _, err = self.compare(base, cand, "--metric", "speedup:higher")
        self.assertEqual(code, 1)
        self.assertIn("regressed", err)

    def test_unmatched_baseline_keys_are_listed(self):
        base = [{"workload": "a", "iterations": 5},
                {"workload": "gone", "iterations": 7},
                {"workload": "also-gone", "iterations": 9}]
        cand = [{"workload": "a", "iterations": 5}]
        code, _, err = self.compare(base, cand,
                                    "--metric", "iterations:lower:exact")
        self.assertEqual(code, 1)
        self.assertIn("2 baseline row(s) have no candidate match", err)
        self.assertIn("workload=gone", err)
        self.assertIn("workload=also-gone", err)

    def test_candidate_extra_rows_are_allowed(self):
        base = [{"workload": "a", "iterations": 5}]
        cand = [{"workload": "a", "iterations": 5},
                {"workload": "new-matrix", "iterations": 9}]
        code, out, _ = self.compare(base, cand,
                                    "--metric", "iterations:lower:exact")
        self.assertEqual(code, 0)
        self.assertIn("not in the baseline", out)

    def test_require_still_checks_exact_fields(self):
        base = [{"workload": "a", "converged": True}]
        cand = [{"workload": "a", "converged": False}]
        code, _, err = self.compare(base, cand,
                                    "--require", "converged=true")
        self.assertEqual(code, 1)
        self.assertIn("converged", err)

    def test_bad_metric_spec_is_usage_error(self):
        rows = [{"workload": "a", "iterations": 5}]
        code, _, err = self.compare(rows, rows,
                                    "--metric", "iterations:lower:fuzzy")
        self.assertEqual(code, 2)
        self.assertIn("fuzzy", err)


if __name__ == "__main__":
    unittest.main()
