"""check_trace.py: trace-schema validation on hand-built documents.

The fixtures mirror what src/obs emits: complete events recorded at
span CLOSE (so a child precedes its parent in the file), one track per
tid, thread_name metadata events, and a counters/dropped_events
footer.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

import check_trace  # noqa: E402


def span(name, ts, dur, tid=1, correlation=None):
    e = {"name": name, "ph": "X", "ts": ts, "dur": dur, "pid": 1, "tid": tid}
    if correlation is not None:
        e["args"] = {"correlation": correlation}
    return e


def thread_name(tid, label):
    return {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": label}}


def document(events, **extra):
    doc = {"traceEvents": events, "displayTimeUnit": "ms",
           "counters": {"flops": 120}, "dropped_events": 0}
    doc.update(extra)
    return doc


def run_main(doc, *argv):
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(doc, f)
        path = f.name
    out, err = io.StringIO(), io.StringIO()
    try:
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            try:
                code = check_trace.main([path, *argv])
            except SystemExit as e:
                code = e.code
    finally:
        os.unlink(path)
    return code, out.getvalue(), err.getvalue()


class CheckTraceTest(unittest.TestCase):
    def nested_trace(self):
        # Close order: iteration closes before solve, solve before the
        # file ends; prepare ran first.  A second track has one sweep.
        return document([
            thread_name(1, "main"),
            thread_name(2, "pool-1"),
            span("prepare", 0, 100),
            span("iteration", 110, 40),
            span("iteration", 151, 39),
            span("solve", 105, 90),
            span("sweep", 120, 10, tid=2),
        ])

    def test_valid_nested_trace_passes(self):
        code, out, err = run_main(self.nested_trace())
        self.assertEqual(code, 0, err)
        self.assertIn("5 span(s) on 2 track(s)", out)

    def test_child_before_parent_is_the_expected_order(self):
        # The writer records at close, so this IS the wire order; a
        # parent enclosing earlier children must not be flagged.
        code, _, err = run_main(document([
            span("sweep", 10, 5),
            span("sweep", 16, 5),
            span("iteration", 8, 15),
            span("solve", 0, 30),
        ]))
        self.assertEqual(code, 0, err)

    def test_partial_overlap_fails(self):
        code, _, err = run_main(document([
            span("a", 0, 10),
            span("b", 5, 20),  # starts inside a, ends outside: not nested
        ]))
        self.assertEqual(code, 1)
        self.assertIn("without nesting", err)

    def test_end_time_regression_fails(self):
        code, _, err = run_main(document([
            span("a", 50, 10),
            span("b", 0, 5),  # closed earlier than a: bad file order
        ]))
        self.assertEqual(code, 1)
        self.assertIn("goes backwards", err)

    def test_tracks_are_independent(self):
        # Overlapping spans on DIFFERENT tids are concurrency, not a
        # nesting violation.
        code, _, err = run_main(document([
            span("a", 0, 10, tid=1),
            span("b", 5, 20, tid=2),
        ]))
        self.assertEqual(code, 0, err)

    def test_missing_trace_events_dies(self):
        code, _, _ = run_main({"counters": {}, "dropped_events": 0})
        self.assertEqual(code, 2)

    def test_missing_counters_fails(self):
        doc = document([span("a", 0, 1)])
        del doc["counters"]
        code, _, err = run_main(doc)
        self.assertEqual(code, 1)
        self.assertIn("counters", err)

    def test_bad_ph_fails(self):
        doc = document([{"name": "a", "ph": "B", "ts": 0, "dur": 1,
                         "pid": 1, "tid": 1}])
        code, _, err = run_main(doc)
        self.assertEqual(code, 1)
        self.assertIn("ph must be", err)

    def test_negative_duration_fails(self):
        code, _, err = run_main(document([span("a", 5, -1)]))
        self.assertEqual(code, 1)
        self.assertIn("'dur'", err)

    def test_metadata_event_needs_thread_name(self):
        doc = document([{"name": "process_name", "ph": "M", "pid": 1,
                         "tid": 1, "args": {"name": "x"}}])
        code, _, err = run_main(doc)
        self.assertEqual(code, 1)
        self.assertIn("thread_name", err)

    def test_require_span(self):
        trace = self.nested_trace()
        code, _, err = run_main(trace, "--require-span", "prepare",
                                "--require-span", "solve",
                                "--require-span", "iteration",
                                "--require-span", "sweep")
        self.assertEqual(code, 0, err)
        code, _, err = run_main(trace, "--require-span", "permute")
        self.assertEqual(code, 1)
        self.assertIn("permute", err)

    def test_require_correlation(self):
        tagged = document([span("solve", 5, 40, correlation=7),
                           span("request", 0, 50, correlation=7)])
        code, _, err = run_main(tagged, "--require-correlation", "7")
        self.assertEqual(code, 0, err)
        code, _, err = run_main(tagged, "--require-correlation", "8")
        self.assertEqual(code, 1)
        mixed = document([span("request", 0, 50, correlation=7),
                          span("stray", 60, 5)])
        code, _, err = run_main(mixed, "--require-correlation", "7")
        self.assertEqual(code, 1)
        self.assertIn("correlation", err)


if __name__ == "__main__":
    unittest.main()
