"""collate_bench.py --trajectory: trend tables with delta-vs-previous."""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools"))

import collate_bench  # noqa: E402


def run_main(argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        try:
            code = collate_bench.main(argv)
        except SystemExit as e:
            code = e.code
    return code, out.getvalue(), err.getvalue()


def corpus_rows(iterations, seconds):
    return [{"tool": "bench_corpus", "matrix": "m1", "splitting": "ssor",
             "m": 2, "format_selected": "dia", "iterations": iterations,
             "converged": True, "solve_seconds": seconds}]


class TrajectoryTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write_run(self, run, rows, bench="BENCH_corpus.json"):
        d = os.path.join(self.dir.name, run)
        os.makedirs(d, exist_ok=True)
        path = os.path.join(d, bench)
        with open(path, "w") as f:
            json.dump(rows, f)
        return path

    def test_three_run_trend_with_delta_vs_previous(self):
        files = [self.write_run("r1", corpus_rows(55, 0.10)),
                 self.write_run("r2", corpus_rows(55, 0.11)),
                 self.write_run("r3", corpus_rows(60, 0.12))]
        code, out, _ = run_main(["--trajectory", "--markdown", *files])
        self.assertEqual(code, 0)
        self.assertIn("trajectory: iterations (3 runs)", out)
        # Run labels default to the parent directory, oldest first.
        self.assertIn("| r1 | r2 | r3 | delta | delta% |", out)
        # The newest run regressed 55 -> 60: +5, +9.1%.
        self.assertIn("| 55 | 55 | 60 | +5 | +9.1% |", out)

    def test_metric_defaults_keep_descriptive_columns_out(self):
        rows = corpus_rows(10, 0.5)
        rows[0]["n"] = 4096  # numeric but not a gated corpus metric
        files = [self.write_run("r1", rows), self.write_run("r2", rows)]
        code, out, _ = run_main(["--trajectory", *files])
        self.assertEqual(code, 0)
        self.assertIn("trajectory: iterations", out)
        self.assertIn("trajectory: solve_seconds", out)
        self.assertNotIn("trajectory: n (", out)

    def test_trajectory_metrics_override(self):
        files = [self.write_run("r1", corpus_rows(10, 0.5)),
                 self.write_run("r2", corpus_rows(10, 0.5))]
        code, out, _ = run_main(["--trajectory", *files,
                                 "--trajectory-metrics",
                                 "corpus=solve_seconds"])
        self.assertEqual(code, 0)
        self.assertIn("trajectory: solve_seconds", out)
        self.assertNotIn("trajectory: iterations", out)

    def test_row_missing_from_one_run_renders_dash(self):
        r2 = corpus_rows(42, 0.2) + [
            {"matrix": "m2", "splitting": "ssor", "m": 2, "iterations": 7,
             "converged": True, "solve_seconds": 0.1}]
        files = [self.write_run("r1", corpus_rows(41, 0.2)),
                 self.write_run("r2", r2)]
        code, out, _ = run_main(["--trajectory", "--markdown", *files])
        self.assertEqual(code, 0)
        # m2 only exists in the newest run: no value for r1, no delta.
        self.assertIn("| m2 | ssor | 2 | - | 7 | - | - |", out)
        # m1 exists in both: a real delta.
        self.assertIn("| m1 | ssor | 2 | 41 | 42 | +1 | +2.4% |", out)

    def test_custom_key_fields(self):
        rows = [{"bench": "x", "variant": "fast", "score": 2.0}]
        files = [self.write_run("r1", rows, "BENCH_custom.json"),
                 self.write_run("r2", rows, "BENCH_custom.json")]
        code, out, _ = run_main(["--trajectory", "--markdown", *files,
                                 "--trajectory-key",
                                 "custom=bench,variant"])
        self.assertEqual(code, 0)
        self.assertIn("| bench | variant | r1 | r2 | delta | delta% |", out)

    def test_explicit_labels_order_the_columns(self):
        files = [self.write_run("r1", corpus_rows(5, 0.1)),
                 self.write_run("r2", corpus_rows(6, 0.1))]
        code, out, _ = run_main(["--trajectory", "--markdown",
                                 "--label", "baseline",
                                 "--label", "candidate", *files])
        self.assertEqual(code, 0)
        self.assertIn("| baseline | candidate | delta | delta% |", out)

    def test_legacy_stacked_mode_unchanged(self):
        files = [self.write_run("r1", corpus_rows(5, 0.1))]
        code, out, _ = run_main(["--markdown", *files])
        self.assertEqual(code, 0)
        self.assertIn("### bench: corpus", out)
        self.assertIn("| source |", out)


if __name__ == "__main__":
    unittest.main()
