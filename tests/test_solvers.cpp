// Integration tests: splittings, the m-step preconditioner (generic and
// multicolor Algorithm-2 forms), and PCG (Algorithm 1).  The pipeline
// comparison tests (preconditioned vs plain, m sweeps, parametrized vs
// not) run through the Solver facade — the path every example and bench
// uses; the operator-level unit tests stay on the low-level classes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "color/coloring.hpp"
#include "core/baselines.hpp"
#include "core/condition.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "fem/poisson.hpp"
#include "la/dense_matrix.hpp"
#include "solver/solver.hpp"
#include "util/rng.hpp"

namespace mstep::core {
namespace {

struct Plate {
  fem::PlateMesh mesh;
  la::CsrMatrix k;
  Vec f;
  color::ColoredSystem cs;
  Vec f_colored;
};

Plate make_plate(int rows, int cols) {
  fem::PlateMesh mesh(rows, cols);
  auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                        fem::EdgeLoad{1.0, 0.0});
  auto cs = color::make_colored_system(sys.stiffness,
                                       color::six_color_classes(mesh));
  Vec fc = cs.permute(sys.load);
  return {std::move(mesh), std::move(sys.stiffness), std::move(sys.load),
          std::move(cs), std::move(fc)};
}

// ---- splittings -------------------------------------------------------------

TEST(Jacobi, PinvIsInverseDiagonal) {
  const auto p = make_plate(3, 3);
  const split::JacobiSplitting jac(p.k);
  util::Rng rng(1);
  const Vec x = rng.uniform_vector(p.k.rows());
  Vec y;
  jac.apply_pinv(x, y);
  const Vec d = p.k.diagonal();
  for (index_t i = 0; i < p.k.rows(); ++i) {
    EXPECT_NEAR(y[i], x[i] / d[i], 1e-14);
  }
}

TEST(Ssor, PinvMatchesDenseFormula) {
  // P = (1/(w(2-w))) (D - wL) D^{-1} (D - wU): check P * pinv(x) == x
  // against a dense construction.
  const auto p = make_plate(3, 3);
  for (double omega : {0.8, 1.0, 1.3}) {
    const split::SsorSplitting ssor(p.k, omega);
    const la::DenseMatrix kd = p.k.to_dense();
    const index_t n = p.k.rows();
    la::DenseMatrix dl(n, n), du(n, n), dinv(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        if (i == j) {
          dl(i, j) = kd(i, j);
          du(i, j) = kd(i, j);
          dinv(i, j) = 1.0 / kd(i, j);
        } else if (j < i) {
          dl(i, j) = omega * kd(i, j);
        } else {
          du(i, j) = omega * kd(i, j);
        }
      }
    }
    la::DenseMatrix pd = dl.multiply(dinv).multiply(du);
    util::Rng rng(7);
    const Vec x = rng.uniform_vector(n);
    Vec y;
    ssor.apply_pinv(x, y);
    const Vec px = pd.multiply(y);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(px[i] / (omega * (2.0 - omega)), x[i], 1e-10);
    }
  }
}

TEST(Ssor, RejectsBadOmega) {
  const auto p = make_plate(3, 3);
  EXPECT_THROW(split::SsorSplitting(p.k, 0.0), std::invalid_argument);
  EXPECT_THROW(split::SsorSplitting(p.k, 2.0), std::invalid_argument);
}

TEST(Ssor, SpectrumOfPinvKIsInUnitInterval) {
  // The theory behind the [0, 1] parameter interval (ssor_interval()).
  const auto p = make_plate(4, 4);
  const split::SsorSplitting ssor(p.k, 1.0);
  // Dense eigenvalues of P^{-1}K via similarity: eig(P^{-1}K) = eig of
  // generalized problem; compute from dense P^{-1} * K.
  const index_t n = p.k.rows();
  la::DenseMatrix pik(n, n);
  Vec e(n, 0.0), col(n);
  for (index_t j = 0; j < n; ++j) {
    e.assign(n, 0.0);
    e[j] = 1.0;
    Vec kj;
    p.k.multiply(e, kj);
    ssor.apply_pinv(kj, col);
    for (index_t i = 0; i < n; ++i) pik(i, j) = col[i];
  }
  // P^{-1}K is similar to the symmetric P^{-1/2}KP^{-1/2}; its eigenvalues
  // are real.  Estimate extremes via power iteration on the matrix and on
  // (I - matrix); simpler: use dense eigensolver on symmetrized form
  // S = K^{1/2} P^{-1} K^{1/2} — skip and check Rayleigh quotients instead.
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Vec x = rng.uniform_vector(n);
    // Rayleigh quotient in K-inner product: (x, P^{-1}K x)_K / (x, x)_K.
    Vec kx;
    p.k.multiply(x, kx);
    Vec pikx = pik.multiply(x);
    Vec kpikx;
    p.k.multiply(pikx, kpikx);
    const double rq = la::dot(x, kpikx) / la::dot(x, kx);
    EXPECT_GT(rq, 0.0);
    EXPECT_LT(rq, 1.0 + 1e-10);
  }
}

// ---- m-step preconditioner ---------------------------------------------------

TEST(MStep, OneStepJacobiEqualsScaledDiagonalSolve) {
  const auto p = make_plate(3, 4);
  const split::JacobiSplitting jac(p.k);
  const MStepPreconditioner m1(p.k, jac, {1.0});
  util::Rng rng(4);
  const Vec r = rng.uniform_vector(p.k.rows());
  Vec z1, z2;
  m1.apply(r, z1);
  jac.apply_pinv(r, z2);
  for (index_t i = 0; i < p.k.rows(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-14);
}

TEST(MStep, MatchesExplicitPolynomialInG) {
  // M^{-1} = (a0 + a1 G + a2 G^2) P^{-1} — verify against a dense build.
  const auto p = make_plate(3, 3);
  const split::JacobiSplitting jac(p.k);
  const std::vector<double> alphas = {0.7, -0.2, 1.3};
  const MStepPreconditioner m(p.k, jac, alphas);

  const index_t n = p.k.rows();
  // Dense G = I - P^{-1}K.
  la::DenseMatrix g(n, n);
  const Vec d = p.k.diagonal();
  const la::DenseMatrix kd = p.k.to_dense();
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      g(i, j) = (i == j ? 1.0 : 0.0) - kd(i, j) / d[i];
    }
  }
  util::Rng rng(5);
  const Vec r = rng.uniform_vector(n);
  Vec pinv_r;
  jac.apply_pinv(r, pinv_r);
  Vec expect(n, 0.0);
  Vec gk = pinv_r;  // G^k P^{-1} r
  for (std::size_t t = 0; t < alphas.size(); ++t) {
    la::axpy(alphas[t], gk, expect);
    gk = g.multiply(gk);
  }
  Vec z;
  m.apply(r, z);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(z[i], expect[i], 1e-11);
}

TEST(MStep, PreconditionerMatrixIsSymmetric) {
  // M^{-1} must be symmetric when P is symmetric: build dense M^{-1} by
  // columns and check.
  const auto p = make_plate(3, 3);
  const split::SsorSplitting ssor(p.k, 1.0);
  const MStepPreconditioner m(p.k, ssor, least_squares_alphas(3, ssor_interval()));
  const index_t n = p.k.rows();
  la::DenseMatrix minv(n, n);
  Vec e(n), z(n);
  for (index_t j = 0; j < n; ++j) {
    e.assign(n, 0.0);
    e[j] = 1.0;
    m.apply(e, z);
    for (index_t i = 0; i < n; ++i) minv(i, j) = z[i];
  }
  EXPECT_TRUE(minv.is_symmetric(1e-10));
  // ... and positive definite (all eigenvalues > 0).
  const auto ev = la::symmetric_eigenvalues(minv);
  EXPECT_GT(ev.front(), 0.0);
}

TEST(MStep, UnparametrizedAlphasAreAllOnes) {
  const auto a = unparametrized_alphas(4);
  EXPECT_EQ(a, (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
}

// ---- Algorithm 2 equivalence ---------------------------------------------------

class MulticolorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MulticolorEquivalence, MatchesGenericSsorEngine) {
  // The Conrad–Wallach multicolor implementation must produce the same
  // operator as the generic m-step engine on the SSOR splitting of the
  // permuted matrix.
  const int m = GetParam();
  const auto p = make_plate(5, 6);
  const split::SsorSplitting ssor(p.cs.matrix, 1.0);
  const auto alphas = least_squares_alphas(m, ssor_interval());
  const MStepPreconditioner generic(p.cs.matrix, ssor, alphas);
  const MulticolorMStepSsor colored(p.cs, alphas);

  util::Rng rng(m);
  const Vec r = rng.uniform_vector(p.cs.size());
  Vec z1, z2;
  generic.apply(r, z1);
  colored.apply(r, z2);
  double err = 0.0, scale = 0.0;
  for (index_t i = 0; i < p.cs.size(); ++i) {
    err = std::max(err, std::abs(z1[i] - z2[i]));
    scale = std::max(scale, std::abs(z1[i]));
  }
  EXPECT_LT(err, 1e-11 * std::max(1.0, scale)) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Steps, MulticolorEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 10));

TEST(Multicolor, WorksWithTwoColors) {
  const fem::PoissonProblem prob(6, 6);
  const auto a = prob.matrix();
  const auto cs =
      color::make_colored_system(a, color::two_color_classes(prob));
  const split::SsorSplitting ssor(cs.matrix, 1.0);
  const auto alphas = least_squares_alphas(3, ssor_interval());
  const MStepPreconditioner generic(cs.matrix, ssor, alphas);
  const MulticolorMStepSsor colored(cs, alphas);
  util::Rng rng(8);
  const Vec r = rng.uniform_vector(cs.size());
  Vec z1, z2;
  generic.apply(r, z1);
  colored.apply(r, z2);
  for (index_t i = 0; i < cs.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-11);
}

TEST(Multicolor, RejectsNonDecoupledSystem) {
  // Feeding a coloured system whose diagonal blocks are NOT diagonal must
  // throw: build one by putting everything in one class.
  const fem::PoissonProblem prob(3, 3);
  const auto a = prob.matrix();
  color::ColorClasses one;
  one.classes.assign(1, {});
  for (index_t i = 0; i < a.rows(); ++i) one.classes[0].push_back(i);
  const auto cs = color::make_colored_system(a, one);
  EXPECT_THROW(MulticolorMStepSsor(cs, {1.0}), std::invalid_argument);
}

// ---- PCG (Algorithm 1) -----------------------------------------------------------

TEST(Pcg, PlainCgSolvesPlate) {
  const auto p = make_plate(5, 5);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  const auto res = cg_solve(p.k, p.f, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_residual2, 1e-6);
}

TEST(Pcg, SolutionMatchesDirectSolve) {
  const auto p = make_plate(4, 5);
  PcgOptions opt;
  opt.tolerance = 1e-12;
  opt.stop_rule = StopRule::kResidual2;
  const auto res = cg_solve(p.k, p.f, opt);
  const Vec exact = la::solve_cholesky(p.k.to_dense(), p.f);
  for (index_t i = 0; i < p.k.rows(); ++i) {
    EXPECT_NEAR(res.solution[i], exact[i], 1e-7);
  }
}

TEST(Pcg, PreconditioningReducesIterations) {
  const auto p = make_plate(8, 8);
  solver::SolverConfig cfg;
  cfg.tolerance = 1e-8;
  const auto classes = color::six_color_classes(p.mesh);

  auto plain_cfg = cfg;
  plain_cfg.steps = 0;
  const auto plain =
      solver::Solver::from_config(plain_cfg).solve(p.k, p.f, classes);

  cfg.steps = 3;
  const auto pre = solver::Solver::from_config(cfg).solve(p.k, p.f, classes);

  EXPECT_TRUE(plain.converged());
  EXPECT_TRUE(pre.converged());
  EXPECT_LT(pre.iterations(), plain.iterations() / 2);
  // Same solution either way (both reports are in the mesh ordering).
  double err = 0.0;
  for (index_t i = 0; i < p.cs.size(); ++i) {
    err = std::max(err, std::abs(pre.solution[i] - plain.solution[i]));
  }
  EXPECT_LT(err, 1e-5);
}

TEST(Pcg, IterationsDecreaseMonotonicallyInM) {
  const auto p = make_plate(8, 8);
  const auto classes = color::six_color_classes(p.mesh);
  solver::SolverConfig cfg;
  cfg.tolerance = 1e-8;
  int prev = 1 << 30;
  for (int m = 1; m <= 5; ++m) {
    cfg.steps = m;
    const auto res = solver::Solver::from_config(cfg).solve(p.k, p.f, classes);
    EXPECT_TRUE(res.converged());
    EXPECT_LE(res.iterations(), prev) << "m=" << m;
    prev = res.iterations();
  }
}

TEST(Pcg, ParametrizedBeatsUnparametrized) {
  // Observation (1) of the paper's Table 2 discussion.
  const auto p = make_plate(10, 10);
  const auto classes = color::six_color_classes(p.mesh);
  solver::SolverConfig cfg;
  cfg.tolerance = 1e-8;
  for (int m : {2, 3, 4}) {
    cfg.steps = m;
    cfg.params = "ones";
    const auto run = solver::Solver::from_config(cfg).solve(p.k, p.f, classes);
    cfg.params = "lsq";
    const auto rpar =
        solver::Solver::from_config(cfg).solve(p.k, p.f, classes);
    EXPECT_LE(rpar.iterations(), run.iterations()) << "m=" << m;
  }
}

TEST(Pcg, InnerProductCountIsTwoPerIteration) {
  const auto p = make_plate(5, 5);
  PcgOptions opt;
  opt.tolerance = 1e-6;
  const auto res = cg_solve(p.k, p.f, opt);
  // 1 initial + 2 per iteration (the final iteration skips the beta dot).
  EXPECT_LE(res.inner_products, 2LL * res.iterations + 1);
  EXPECT_GE(res.inner_products, 2LL * res.iterations - 1);
}

TEST(Pcg, HonorsInitialGuess) {
  const auto p = make_plate(4, 4);
  PcgOptions opt;
  opt.tolerance = 1e-10;
  opt.stop_rule = StopRule::kResidual2;
  const auto cold = cg_solve(p.k, p.f, opt);
  // Start from the exact solution: should converge immediately.
  const auto warm = cg_solve(p.k, p.f, opt, nullptr, cold.solution);
  EXPECT_LE(warm.iterations, 2);
}

TEST(Pcg, RecordsHistoryWhenAsked) {
  const auto p = make_plate(4, 4);
  PcgOptions opt;
  opt.tolerance = 1e-8;
  opt.record_history = true;
  const auto res = cg_solve(p.k, p.f, opt);
  EXPECT_EQ(static_cast<int>(res.history.size()), res.iterations);
  EXPECT_LT(res.history.back().value, opt.tolerance);
  for (const auto& rec : res.history) EXPECT_GE(rec.seconds, 0.0);
}

TEST(Pcg, ResidualStopRuleWorks) {
  const auto p = make_plate(5, 5);
  PcgOptions opt;
  opt.tolerance = 1e-9;
  opt.stop_rule = StopRule::kResidual2;
  const auto res = cg_solve(p.k, p.f, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_residual2, 1e-9 * la::nrm2(p.f) * 1.01);
}

TEST(Pcg, MaxIterationsRespected) {
  const auto p = make_plate(8, 8);
  PcgOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 3;
  const auto res = cg_solve(p.k, p.f, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
}

// ---- condition number (Adams 1982 claims) ------------------------------------

TEST(Condition, PreconditioningImprovesKappa) {
  const auto p = make_plate(8, 8);
  const auto plain = estimate_condition(p.cs.matrix);
  const MulticolorMStepSsor m2(p.cs, least_squares_alphas(2, ssor_interval()));
  const auto pre = estimate_preconditioned_condition(p.cs.matrix, m2);
  EXPECT_GT(plain.kappa, pre.kappa);
}

TEST(Condition, KappaDecreasesWithM) {
  const auto p = make_plate(8, 8);
  double prev = 1e300;
  for (int m = 1; m <= 5; ++m) {
    const MulticolorMStepSsor prec(p.cs,
                                   least_squares_alphas(m, ssor_interval()));
    const auto est = estimate_preconditioned_condition(p.cs.matrix, prec);
    EXPECT_LT(est.kappa, prev * 1.02) << "m=" << m;
    prev = est.kappa;
  }
}

TEST(Condition, MatchesDenseEigenvaluesOnSmallProblem) {
  const auto p = make_plate(4, 4);
  const auto est = estimate_condition(p.k);
  const auto ev = la::symmetric_eigenvalues(p.k.to_dense());
  EXPECT_NEAR(est.lambda_max, ev.back(), 1e-6 * ev.back());
  EXPECT_NEAR(est.lambda_min, ev.front(), 0.05 * ev.front());
}

// ---- baselines -----------------------------------------------------------------

TEST(Baselines, NeumannPreconditionerAcceleratesCg) {
  const auto p = make_plate(8, 8);
  PcgOptions opt;
  opt.tolerance = 1e-8;
  const auto plain = cg_solve(p.k, p.f, opt);
  const auto neumann = make_neumann_preconditioner(p.k, 3);
  const auto res = pcg_solve(p.k, p.f, *neumann, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, plain.iterations);
}

TEST(Baselines, JmpParametrizedBeatsPlainNeumann) {
  const auto p = make_plate(10, 10);
  PcgOptions opt;
  opt.tolerance = 1e-8;
  const auto neumann = make_neumann_preconditioner(p.k, 3);
  const auto jmp = make_jmp_preconditioner(p.k, 3);
  const auto rn = pcg_solve(p.k, p.f, *neumann, opt);
  const auto rj = pcg_solve(p.k, p.f, *jmp, opt);
  EXPECT_TRUE(rn.converged);
  EXPECT_TRUE(rj.converged);
  EXPECT_LE(rj.iterations, rn.iterations);
}

TEST(Baselines, SsorMStepBeatsJacobiMStepAtEqualM) {
  // The SSOR splitting approximates K better than Jacobi at the same m —
  // one facade config field flipped.
  const auto p = make_plate(10, 10);
  const auto classes = color::six_color_classes(p.mesh);
  solver::SolverConfig cfg;
  cfg.tolerance = 1e-8;
  cfg.steps = 3;
  const auto rs = solver::Solver::from_config(cfg).solve(p.k, p.f, classes);
  cfg.splitting = "jacobi";
  const auto rj = solver::Solver::from_config(cfg).solve(p.k, p.f, classes);
  EXPECT_LT(rs.iterations(), rj.iterations());
}

}  // namespace
}  // namespace mstep::core
