// Tests for the plate mesh, plane-stress assembly, and Poisson problems.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fem/plane_stress.hpp"
#include "fem/plate_mesh.hpp"
#include "fem/poisson.hpp"
#include "la/dense_matrix.hpp"
#include "util/rng.hpp"

namespace mstep::fem {
namespace {

TEST(PlateMesh, DimensionsMatchPaperFormula) {
  // N = 2ab with a rows of nodes and b unconstrained columns.
  const PlateMesh m(6, 6);
  EXPECT_EQ(m.num_equations(), 2 * 6 * 5);  // the 60-equation FEM problem
  const PlateMesh big(20, 20);
  EXPECT_EQ(big.num_equations(), 2 * 20 * 19);
}

TEST(PlateMesh, TriangleCountAndOrientation) {
  const PlateMesh m(4, 5);
  const auto tris = m.triangles();
  EXPECT_EQ(tris.size(), 2u * 3 * 4);
  for (const auto& t : tris) {
    const double area2 =
        (m.node_x(t.n1) - m.node_x(t.n0)) * (m.node_y(t.n2) - m.node_y(t.n0)) -
        (m.node_x(t.n2) - m.node_x(t.n0)) * (m.node_y(t.n1) - m.node_y(t.n0));
    EXPECT_GT(area2, 0.0) << "triangle not counter-clockwise";
  }
}

TEST(PlateMesh, EveryTriangleHasThreeDistinctColors) {
  // Figure 1's property — the basis of the multicolor decoupling.
  for (int rows : {2, 3, 5, 8}) {
    for (int cols : {2, 4, 7}) {
      const PlateMesh m(rows, cols);
      for (const auto& t : m.triangles()) {
        std::set<int> colors = {static_cast<int>(m.color(t.n0)),
                                static_cast<int>(m.color(t.n1)),
                                static_cast<int>(m.color(t.n2))};
        EXPECT_EQ(colors.size(), 3u);
      }
    }
  }
}

TEST(PlateMesh, EquationIdRoundTrips) {
  const PlateMesh m(5, 7);
  for (index_t eq = 0; eq < m.num_equations(); ++eq) {
    const auto [node, dof] = m.equation_node_dof(eq);
    EXPECT_EQ(m.equation_id(node, dof), eq);
    EXPECT_FALSE(m.is_constrained(node));
  }
}

TEST(PlateMesh, ConstrainedColumnHasNoEquations) {
  const PlateMesh m(4, 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(m.equation_id(m.node_id(r, 0), 0), -1);
    EXPECT_EQ(m.equation_id(m.node_id(r, 0), 1), -1);
  }
}

TEST(PlateMesh, InteriorNodeHasSixNeighbors) {
  const PlateMesh m(5, 5);
  const auto nb = m.neighbor_nodes(m.node_id(2, 2));
  EXPECT_EQ(nb.size(), 6u);
}

TEST(PlateMesh, CornerNodeHasTwoOrThreeNeighbors) {
  const PlateMesh m(5, 5);
  EXPECT_EQ(m.neighbor_nodes(m.node_id(0, 0)).size(), 2u);  // bottom-left
  EXPECT_EQ(m.neighbor_nodes(m.node_id(0, 4)).size(), 3u);  // bottom-right
}

// ---- element stiffness -----------------------------------------------------

TEST(CstStiffness, IsSymmetric) {
  const Material mat;
  const auto ke = cst_stiffness({0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, mat);
  EXPECT_TRUE(ke.is_symmetric(1e-12));
}

TEST(CstStiffness, RigidBodyModesGiveZeroForce) {
  const Material mat{2.0, 0.25, 1.5};
  const std::array<double, 3> x = {0.2, 1.1, 0.4};
  const std::array<double, 3> y = {0.1, 0.3, 0.9};
  const auto ke = cst_stiffness(x, y, mat);
  // Translation in x, translation in y, infinitesimal rotation.
  const Vec tx = {1, 0, 1, 0, 1, 0};
  const Vec ty = {0, 1, 0, 1, 0, 1};
  Vec rot(6);
  for (int i = 0; i < 3; ++i) {
    rot[2 * i] = -y[i];
    rot[2 * i + 1] = x[i];
  }
  for (const Vec& mode : {tx, ty, rot}) {
    const Vec f = ke.multiply(mode);
    for (double v : f) EXPECT_NEAR(v, 0.0, 1e-12);
  }
}

TEST(CstStiffness, PositiveSemiDefinite) {
  const Material mat;
  const auto ke = cst_stiffness({0.0, 1.0, 0.2}, {0.0, 0.1, 0.8}, mat);
  const auto ev = la::symmetric_eigenvalues(ke);
  EXPECT_GE(ev.front(), -1e-12);
  // Exactly 3 near-zero (rigid-body) eigenvalues.
  int zero_count = 0;
  for (double v : ev) {
    if (std::abs(v) < 1e-10) ++zero_count;
  }
  EXPECT_EQ(zero_count, 3);
}

TEST(CstStiffness, ScalesLinearlyWithThicknessAndModulus) {
  const std::array<double, 3> x = {0.0, 1.0, 0.0};
  const std::array<double, 3> y = {0.0, 0.0, 1.0};
  const auto k1 = cst_stiffness(x, y, Material{1.0, 0.3, 1.0});
  const auto k2 = cst_stiffness(x, y, Material{3.0, 0.3, 2.0});
  EXPECT_NEAR(k2(0, 0), 6.0 * k1(0, 0), 1e-12);
}

TEST(CstStiffness, DegenerateTriangleThrows) {
  EXPECT_THROW(
      cst_stiffness({0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}, Material{}),
      std::invalid_argument);
}

// ---- assembled system -------------------------------------------------------

TEST(Assembly, StiffnessIsSymmetric) {
  const PlateMesh mesh(5, 5);
  const auto sys = assemble_plane_stress(mesh, Material{}, EdgeLoad{});
  EXPECT_LT(sys.stiffness.symmetry_error(), 1e-12);
}

TEST(Assembly, StiffnessIsPositiveDefinite) {
  const PlateMesh mesh(4, 4);
  const auto sys = assemble_plane_stress(mesh, Material{}, EdgeLoad{});
  const auto ev = la::symmetric_eigenvalues(sys.stiffness.to_dense());
  EXPECT_GT(ev.front(), 0.0);
}

TEST(Assembly, MaxRowNnzIs14) {
  // Figure 2: 7-node stencil x 2 dofs = 14 nonzeros in interior rows.
  const PlateMesh mesh(8, 8);
  const auto sys = assemble_plane_stress(mesh, Material{}, EdgeLoad{});
  EXPECT_EQ(sys.stiffness.max_row_nnz(), 14);
}

TEST(Assembly, FreeStiffnessHasThreeRigidBodyModes) {
  const PlateMesh mesh(3, 3);
  const auto k = assemble_free_stiffness(mesh, Material{});
  const auto ev = la::symmetric_eigenvalues(k.to_dense());
  int zero_count = 0;
  for (double v : ev) {
    if (std::abs(v) < 1e-9) ++zero_count;
  }
  EXPECT_EQ(zero_count, 3);
  EXPECT_GE(ev.front(), -1e-9);
}

TEST(Assembly, LoadAppearsOnlyOnRightEdge) {
  const PlateMesh mesh(4, 4);
  const auto sys = assemble_plane_stress(mesh, Material{}, EdgeLoad{1.0, 0.0});
  for (index_t eq = 0; eq < mesh.num_equations(); ++eq) {
    const auto [node, dof] = mesh.equation_node_dof(eq);
    const bool right_edge = mesh.node_col(node) == mesh.ncols() - 1;
    if (right_edge && dof == 0) {
      EXPECT_GT(sys.load[eq], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(sys.load[eq], 0.0);
    }
  }
}

TEST(Assembly, TotalLoadEqualsTractionTimesEdgeLength) {
  const PlateMesh mesh(6, 4);
  const Material mat{1.0, 0.3, 2.0};
  const auto sys = assemble_plane_stress(mesh, mat, EdgeLoad{3.0, 0.0});
  double total = 0.0;
  for (double v : sys.load) total += v;
  EXPECT_NEAR(total, mat.thickness * 3.0 * 1.0, 1e-12);  // height = 1
}

TEST(Assembly, PlateStretchesTowardLoad) {
  // Physical sanity: x-traction on the right edge produces positive mean
  // x-displacement.
  const PlateMesh mesh(5, 5);
  const auto sys = assemble_plane_stress(mesh, Material{}, EdgeLoad{1.0, 0.0});
  const Vec u = la::solve_cholesky(sys.stiffness.to_dense(), sys.load);
  double mean_ux = 0.0;
  int count = 0;
  for (index_t eq = 0; eq < mesh.num_equations(); eq += 2) {
    mean_ux += u[eq];
    ++count;
  }
  EXPECT_GT(mean_ux / count, 0.0);
}

// ---- Poisson ----------------------------------------------------------------

TEST(Poisson, MatrixIsSymmetricSpd) {
  const PoissonProblem p(6, 5);
  const auto a = p.matrix();
  EXPECT_LT(a.symmetry_error(), 1e-12);
  const auto ev = la::symmetric_eigenvalues(a.to_dense());
  EXPECT_GT(ev.front(), 0.0);
}

TEST(Poisson, KnownEigenvalueOfUnitGrid) {
  // Smallest eigenvalue of the 5-point Laplacian on the unit square:
  // (2/h^2)(2 - cos(pi h) - cos(pi h)) with h = 1/(n+1).
  const int n = 9;
  const PoissonProblem p(n, n);
  const auto ev = la::symmetric_eigenvalues(p.matrix().to_dense());
  const double h = 1.0 / (n + 1);
  const double expected = (2.0 / (h * h)) * (2.0 - 2.0 * std::cos(M_PI * h));
  EXPECT_NEAR(ev.front(), expected, 1e-8 * expected);
}

TEST(Poisson, DiscreteSolveMatchesManufacturedDiscreteSolution) {
  const PoissonProblem p(8, 8);
  const auto a = p.matrix();
  util::Rng rng(5);
  const Vec u_exact = rng.uniform_vector(a.rows());
  Vec f;
  a.multiply(u_exact, f);
  const Vec u = la::solve_cholesky(a.to_dense(), f);
  double err = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i)
    err = std::max(err, std::abs(u[i] - u_exact[i]));
  EXPECT_LT(err, 1e-9);
}

TEST(Poisson, ContinuumConvergenceSecondOrder) {
  // Discretization error for u = sin(pi x) sin(pi y) should shrink ~4x per
  // mesh refinement.
  auto solve_err = [](int n) {
    const PoissonProblem p(n, n);
    const auto a = p.matrix();
    const Vec f = p.rhs([](double x, double y) {
      return 2.0 * M_PI * M_PI * std::sin(M_PI * x) * std::sin(M_PI * y);
    });
    const Vec exact = p.grid_function(
        [](double x, double y) { return std::sin(M_PI * x) * std::sin(M_PI * y); });
    const Vec u = la::solve_cholesky(a.to_dense(), f);
    double err = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i)
      err = std::max(err, std::abs(u[i] - exact[i]));
    return err;
  };
  const double e1 = solve_err(7);
  const double e2 = solve_err(15);
  EXPECT_GT(e1 / e2, 3.0);  // ~4 expected
}

TEST(Poisson, RedBlackColoringAlternates) {
  const PoissonProblem p(4, 4);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) {
      if (i + 1 < 4) EXPECT_NE(p.color(i, j), p.color(i + 1, j));
      if (j + 1 < 4) EXPECT_NE(p.color(i, j), p.color(i, j + 1));
    }
  }
}

}  // namespace
}  // namespace mstep::fem
