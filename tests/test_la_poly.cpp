// Tests for polynomials, Chebyshev machinery, quadrature, and eigenvalue
// estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "fem/poisson.hpp"
#include "la/eigen.hpp"
#include "la/polynomial.hpp"
#include "la/quadrature.hpp"
#include "util/rng.hpp"

namespace mstep::la {
namespace {

// ---- polynomials -------------------------------------------------------------

TEST(Polynomial, HornerEvaluation) {
  const Polynomial p({1.0, -2.0, 3.0});  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p(2.0), 9.0);
}

TEST(Polynomial, ArithmeticMatchesPointwise) {
  const Polynomial p({1.0, 2.0});
  const Polynomial q({0.0, -1.0, 4.0});
  util::Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    const double x = rng.uniform(-2.0, 2.0);
    EXPECT_NEAR((p + q)(x), p(x) + q(x), 1e-12);
    EXPECT_NEAR((p - q)(x), p(x) - q(x), 1e-12);
    EXPECT_NEAR((p * q)(x), p(x) * q(x), 1e-12);
    EXPECT_NEAR((p * 3.5)(x), 3.5 * p(x), 1e-12);
  }
}

TEST(Polynomial, ComposeLinear) {
  const Polynomial p({0.0, 0.0, 1.0});  // x^2
  const Polynomial q = p.compose_linear(1.0, -2.0);  // (1 - 2x)^2
  EXPECT_DOUBLE_EQ(q(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q(0.5), 0.0);
  EXPECT_DOUBLE_EQ(q(1.0), 1.0);
}

TEST(Polynomial, Derivative) {
  const Polynomial p({5.0, 1.0, 3.0});  // 5 + x + 3x^2
  const Polynomial d = p.derivative();
  EXPECT_DOUBLE_EQ(d(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d(2.0), 13.0);
}

TEST(Polynomial, DivideByX) {
  const Polynomial p({0.0, 2.0, -3.0});
  const Polynomial q = p.divide_by_x();
  EXPECT_DOUBLE_EQ(q(1.5), 2.0 - 4.5);
  EXPECT_THROW((void)Polynomial({1.0, 1.0}).divide_by_x(), std::invalid_argument);
}

TEST(Polynomial, OneMinusXBasisRoundTrip) {
  const Polynomial p({0.3, -1.2, 0.0, 2.5});
  const auto alphas = to_one_minus_x_basis(p);
  const Polynomial back = from_one_minus_x_basis(alphas);
  util::Rng rng(2);
  for (int t = 0; t < 10; ++t) {
    const double x = rng.uniform(-1.0, 2.0);
    EXPECT_NEAR(p(x), back(x), 1e-12);
  }
}

TEST(Chebyshev, KnownPolynomials) {
  // T2 = 2x^2 - 1, T3 = 4x^3 - 3x.
  const auto t2 = chebyshev_t(2).coeffs();
  EXPECT_DOUBLE_EQ(t2[0], -1.0);
  EXPECT_DOUBLE_EQ(t2[2], 2.0);
  const auto t3 = chebyshev_t(3).coeffs();
  EXPECT_DOUBLE_EQ(t3[1], -3.0);
  EXPECT_DOUBLE_EQ(t3[3], 4.0);
}

TEST(Chebyshev, ValueMatchesPolynomialInside) {
  for (int n : {0, 1, 2, 5, 8}) {
    const Polynomial tn = chebyshev_t(n);
    for (double x : {-0.9, -0.3, 0.0, 0.5, 1.0}) {
      EXPECT_NEAR(tn(x), chebyshev_t_value(n, x), 1e-10) << n << " " << x;
    }
  }
}

TEST(Chebyshev, ValueMatchesPolynomialOutside) {
  for (int n : {1, 2, 4, 6}) {
    const Polynomial tn = chebyshev_t(n);
    for (double x : {1.2, 2.0, -1.5}) {
      EXPECT_NEAR(tn(x) / chebyshev_t_value(n, x), 1.0, 1e-9) << n << " " << x;
    }
  }
}

TEST(Chebyshev, Equioscillation) {
  // |T_n| <= 1 on [-1, 1], reaching 1 at n+1 points.
  const Polynomial t6 = chebyshev_t(6);
  for (int i = 0; i <= 100; ++i) {
    const double x = -1.0 + 2.0 * i / 100.0;
    EXPECT_LE(std::abs(t6(x)), 1.0 + 1e-10);
  }
  EXPECT_NEAR(std::abs(t6(1.0)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(t6(std::cos(M_PI / 6.0))), 1.0, 1e-10);
}

// ---- quadrature ----------------------------------------------------------------

TEST(Quadrature, WeightsSumToIntervalLength) {
  for (int n : {1, 2, 5, 16, 32}) {
    const QuadratureRule rule = gauss_legendre(n);
    double s = 0.0;
    for (double w : rule.weights) s += w;
    EXPECT_NEAR(s, 2.0, 1e-12) << "n=" << n;
  }
}

TEST(Quadrature, ExactForPolynomialsOfDegree2nMinus1) {
  // n-point Gauss integrates x^k exactly for k <= 2n-1.
  for (int n : {2, 3, 5}) {
    for (int k = 0; k <= 2 * n - 1; ++k) {
      const double result =
          integrate([&](double x) { return std::pow(x, k); }, 0.0, 1.0, n);
      EXPECT_NEAR(result, 1.0 / (k + 1), 1e-12) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Quadrature, NotExactBeyondDegreeBound) {
  // 2-point Gauss cannot integrate x^4 exactly — guards the degree logic.
  const double r =
      integrate([](double x) { return x * x * x * x; }, -1.0, 1.0, 2);
  EXPECT_GT(std::abs(r - 0.4), 1e-3);
}

TEST(Quadrature, SmoothFunction) {
  const double r = integrate([](double x) { return std::sin(x); }, 0.0, M_PI, 24);
  EXPECT_NEAR(r, 2.0, 1e-12);
}

TEST(Quadrature, NodesSymmetricAndSorted) {
  const QuadratureRule rule = gauss_legendre(7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[6 - i], 1e-13);
    if (i > 0) EXPECT_GT(rule.nodes[i], rule.nodes[i - 1]);
  }
}

// ---- tridiagonal + Lanczos + power method --------------------------------------

TEST(Tridiag, KnownToeplitzEigenvalues) {
  // diag 2, off -1, size n: eigenvalues 2 - 2cos(k pi/(n+1)).
  const int n = 12;
  const std::vector<double> a(n, 2.0);
  const std::vector<double> b(n - 1, -1.0);
  const auto ev = tridiagonal_eigenvalues(a, b);
  for (int k = 1; k <= n; ++k) {
    EXPECT_NEAR(ev[k - 1], 2.0 - 2.0 * std::cos(k * M_PI / (n + 1)), 1e-10);
  }
}

TEST(Tridiag, SingleElement) {
  const auto ev = tridiagonal_eigenvalues({4.2}, {});
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_NEAR(ev[0], 4.2, 1e-12);
}

TEST(Power, FindsDominantEigenvalueOfPoisson) {
  const fem::PoissonProblem prob(10, 10);
  const auto a = prob.matrix();
  const LinOp op = [&](const Vec& x, Vec& y) { a.multiply(x, y); };
  const auto res = power_method(op, a.rows());
  EXPECT_TRUE(res.converged);
  const double h = 1.0 / 11.0;
  const double expect = (2.0 / (h * h)) * (2.0 + 2.0 * std::cos(M_PI * h));
  EXPECT_NEAR(res.eigenvalue, expect, 1e-4 * expect);
}

TEST(Lanczos, ExtremesOfPoissonMatchTheory) {
  const fem::PoissonProblem prob(12, 12);
  const auto a = prob.matrix();
  const LinOp op = [&](const Vec& x, Vec& y) { a.multiply(x, y); };
  const auto est = lanczos_extreme(op, a.rows(), 100);
  const double h = 1.0 / 13.0;
  const double lmin = (2.0 / (h * h)) * (2.0 - 2.0 * std::cos(M_PI * h));
  const double lmax = (2.0 / (h * h)) * (2.0 + 2.0 * std::cos(M_PI * h));
  EXPECT_NEAR(est.lambda_max, lmax, 1e-3 * lmax);
  EXPECT_NEAR(est.lambda_min, lmin, 0.05 * lmin);
}

TEST(Lanczos, PreconditionedRecoversJacobiScaledSpectrum) {
  // With M = D, the preconditioned Lanczos sees D^{-1}A; for the Poisson
  // matrix D = (2cx+2cy) I, so the spectrum is just scaled.
  const fem::PoissonProblem prob(9, 9);
  const auto a = prob.matrix();
  const Vec d = a.diagonal();
  const LinOp a_op = [&](const Vec& x, Vec& y) { a.multiply(x, y); };
  const LinOp minv = [&](const Vec& x, Vec& y) {
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] / d[i];
  };
  const auto pre = lanczos_extreme_preconditioned(a_op, minv, a.rows(), 80);
  const auto plain = lanczos_extreme(a_op, a.rows(), 80);
  EXPECT_NEAR(pre.lambda_max, plain.lambda_max / d[0], 1e-3 * pre.lambda_max);
  EXPECT_NEAR(pre.lambda_min, plain.lambda_min / d[0], 0.05 * pre.lambda_min);
}

TEST(Gershgorin, EnclosesSpectrum) {
  const fem::PoissonProblem prob(6, 6);
  const auto a = prob.matrix();
  const auto [lo, hi] = gershgorin_interval(a);
  const LinOp op = [&](const Vec& x, Vec& y) { a.multiply(x, y); };
  const auto est = lanczos_extreme(op, a.rows(), 60);
  EXPECT_LE(lo, est.lambda_min + 1e-9);
  EXPECT_GE(hi, est.lambda_max - 1e-9);
}

}  // namespace
}  // namespace mstep::la
