// The tracing subsystem: span recording and export shape, scoped
// enabling, correlation filtering, ring-buffer drop accounting, the
// TracingKernelLog adapter, thread-safety of concurrent recording
// against a live export (the TSan job runs this target), and the
// load-bearing guarantee that tracing NEVER changes solution bits —
// asserted per splitting x operator format.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/kernel_log.hpp"
#include "obs/trace.hpp"
#include "problems/problem.hpp"
#include "solver/solver.hpp"
#include "util/span.hpp"

namespace mstep::obs {
namespace {

/// Every test leaves the process-wide tracer the way it found it:
/// disabled and empty (the tests share one singleton).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
};

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  {
    const Span s("solve");
    const Span t("iteration");
  }
  count(Counter::kFlops, 100);
  const std::string json = Tracer::instance().chrome_json();
  EXPECT_EQ(json.find("\"solve\""), std::string::npos);
  EXPECT_EQ(Tracer::instance().counter(Counter::kFlops), 0);
}

TEST_F(ObsTest, EnabledSpansAndCountersExport) {
  Tracer::instance().set_enabled(true);
  name_thread("main");
  {
    const Span outer("solve");
    { const Span inner("iteration"); }
    count(Counter::kFlops, 42);
  }
  const std::string json = Tracer::instance().chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"iteration\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  EXPECT_EQ(Tracer::instance().counter(Counter::kFlops), 42);
}

TEST_F(ObsTest, EnableScopeIsARefcount) {
  EXPECT_FALSE(Tracer::instance().enabled());
  {
    const EnableScope a;
    EXPECT_TRUE(Tracer::instance().enabled());
    {
      const EnableScope b;
      EXPECT_TRUE(Tracer::instance().enabled());
    }
    EXPECT_TRUE(Tracer::instance().enabled());
  }
  EXPECT_FALSE(Tracer::instance().enabled());
}

TEST_F(ObsTest, CorrelationFiltersTheExport) {
  Tracer::instance().set_enabled(true);
  {
    const CorrelationScope c(7);
    const Span s("request");
  }
  { const Span s("stray"); }
  const std::string filtered = Tracer::instance().chrome_json(7);
  EXPECT_NE(filtered.find("\"request\""), std::string::npos);
  EXPECT_EQ(filtered.find("\"stray\""), std::string::npos);
  EXPECT_NE(filtered.find("\"correlation\""), std::string::npos);
  const std::string everything = Tracer::instance().chrome_json();
  EXPECT_NE(everything.find("\"request\""), std::string::npos);
  EXPECT_NE(everything.find("\"stray\""), std::string::npos);
}

TEST_F(ObsTest, CorrelationScopeRestoresTheOldId) {
  EXPECT_EQ(correlation(), 0u);
  {
    const CorrelationScope outer(5);
    EXPECT_EQ(correlation(), 5u);
    {
      const CorrelationScope inner(9);
      EXPECT_EQ(correlation(), 9u);
    }
    EXPECT_EQ(correlation(), 5u);
  }
  EXPECT_EQ(correlation(), 0u);
}

TEST_F(ObsTest, RingBufferDropsAreCounted) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  // Overrun one thread's 2^16-event ring; the export must stay well
  // formed and the overwrites must be accounted, not silent.
  const int n = (1 << 16) + 500;
  for (int i = 0; i < n; ++i) t.record("spin", i, 1, 0);
  EXPECT_GE(t.dropped_events(), 500u);
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"spin\""), std::string::npos);
  t.reset();
  EXPECT_EQ(t.dropped_events(), 0u);
}

TEST_F(ObsTest, TracingKernelLogFeedsInnerLogAndCounters) {
  core::CountingLog inner;
  TracingKernelLog log(&inner);
  Tracer::instance().set_enabled(true);
  log.vec_op(10, 3);
  log.dot_op(10);
  log.spmv_diagonals(10, 5);
  log.end_precond_step();
  log.end_iteration();
  // The inner census saw the same stream...
  EXPECT_EQ(inner.vec_ops, 3);
  EXPECT_EQ(inner.dots, 1);
  EXPECT_EQ(inner.spmvs, 1);
  EXPECT_EQ(inner.precond_steps, 1);
  EXPECT_EQ(inner.iterations, 1);
  // ...and the tracer's counters got the matching totals.
  Tracer& t = Tracer::instance();
  EXPECT_EQ(t.counter(Counter::kVecOps), 3);
  EXPECT_EQ(t.counter(Counter::kDots), 1);
  EXPECT_EQ(t.counter(Counter::kSpmvs), 1);
  EXPECT_EQ(t.counter(Counter::kSweeps), 1);
  EXPECT_EQ(t.counter(Counter::kFlops), 3LL * 10 + 2 * 10 + 2 * 10 * 5);
}

TEST_F(ObsTest, TracingOffKeepsTheInnerLogStream) {
  core::CountingLog inner;
  TracingKernelLog log(&inner);
  log.vec_op(8, 2);
  log.dot_op(8);
  EXPECT_EQ(inner.vec_ops, 2);
  EXPECT_EQ(inner.dots, 1);
  EXPECT_EQ(Tracer::instance().counter(Counter::kVecOps), 0);
}

// ---- thread safety (the TSan job runs this) ---------------------------------

TEST_F(ObsTest, ConcurrentRecordingAgainstALiveExportIsClean) {
  Tracer& t = Tracer::instance();
  const EnableScope enable;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(8);
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([&t, w] {
      name_thread("writer-" + std::to_string(w));
      const CorrelationScope c(static_cast<std::uint64_t>(w + 1));
      for (int i = 0; i < 400; ++i) {
        const Span s("work");
        count(Counter::kFlops, 1);
        (void)t.now_us();
      }
    });
  }
  // Export and inspect concurrently with the writers.
  std::thread reader([&t, &stop] {
    while (!stop.load()) {
      const std::string json = t.chrome_json();
      ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
      (void)t.dropped_events();
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(t.counter(Counter::kFlops), 8 * 400);
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"work\""), std::string::npos);
  EXPECT_NE(json.find("writer-"), std::string::npos);
}

// ---- the bitwise invariant --------------------------------------------------

// Tracing reads clocks and fills ring buffers; it must never touch the
// floating-point data flow.  For every registered splitting and every
// concrete operator format, a fully traced solve (spans + kernel
// census + counters) is bitwise identical to the untraced one.
TEST_F(ObsTest, TracedSolveIsBitwiseIdenticalPerSplittingAndFormat) {
  const problems::Problem p =
      problems::ProblemRegistry::instance().create("poisson2d:n=12");
  using solver::MatrixFormat;
  const std::pair<MatrixFormat, const char*> formats[] = {
      {MatrixFormat::kCsr, "csr"},
      {MatrixFormat::kDia, "dia"},
      {MatrixFormat::kSell, "sell"},
      {MatrixFormat::kAuto, "auto"},
  };
  for (const auto& splitting :
       solver::SplittingRegistry::instance().names()) {
    for (const auto& [format, format_name] : formats) {
      solver::SolverConfig cfg;
      cfg.splitting = splitting;
      cfg.steps = 2;
      cfg.tolerance = 1e-8;
      cfg.format = format;
      const std::string what = splitting + " / " + format_name;

      Tracer::instance().reset();
      Tracer::instance().set_enabled(false);
      const auto plain =
          solver::Solver::from_config(cfg).prepare(p.matrix).solveMany(
              util::Span<const Vec>(&p.rhs, 1));
      ASSERT_TRUE(plain.all_converged()) << what;

      Tracer::instance().set_enabled(true);
      const auto traced =
          solver::Solver::from_config(cfg).prepare(p.matrix).solveMany(
              util::Span<const Vec>(&p.rhs, 1));
      Tracer::instance().set_enabled(false);
      ASSERT_TRUE(traced.all_converged()) << what;

      const auto& a = plain.reports[0];
      const auto& b = traced.reports[0];
      ASSERT_EQ(a.iterations(), b.iterations()) << what;
      ASSERT_EQ(a.result.final_delta_inf, b.result.final_delta_inf) << what;
      ASSERT_EQ(a.solution.size(), b.solution.size()) << what;
      for (std::size_t i = 0; i < a.solution.size(); ++i) {
        ASSERT_EQ(a.solution[i], b.solution[i]) << what << " i=" << i;
      }
      // The traced run actually traced: spans and a kernel census exist.
      const std::string json = Tracer::instance().chrome_json();
      EXPECT_NE(json.find("\"prepare\""), std::string::npos) << what;
      EXPECT_NE(json.find("\"solve\""), std::string::npos) << what;
      EXPECT_NE(json.find("\"iteration\""), std::string::npos) << what;
      EXPECT_GT(Tracer::instance().counter(Counter::kFlops), 0) << what;
    }
  }
}

// The sharded backend under the tracer: every shard phase body opens a
// "shard" span and every ghost drain/post a "halo_exchange" span (on the
// pool track that ran it, so nesting stays strict per track — the CI
// check_trace.py smoke validates that on a real trace file), the halo
// counters see the exchanged volume, and tracing a sharded solve still
// never changes bits.
TEST_F(ObsTest, TracedShardedSolveIsBitwiseIdenticalAndEmitsShardSpans) {
  const problems::Problem p =
      problems::ProblemRegistry::instance().create("poisson2d:n=12");
  ASSERT_TRUE(p.has_classes());
  solver::SolverConfig cfg;
  cfg.steps = 2;
  cfg.tolerance = 1e-8;
  cfg.execution.shards = 3;

  Tracer::instance().reset();
  Tracer::instance().set_enabled(false);
  const auto plain = solver::Solver::from_config(cfg)
                         .prepare(p.matrix, p.classes)
                         .solve(p.rhs);
  ASSERT_TRUE(plain.converged());
  ASSERT_EQ(plain.shards, 3);

  Tracer::instance().set_enabled(true);
  const auto traced = solver::Solver::from_config(cfg)
                          .prepare(p.matrix, p.classes)
                          .solve(p.rhs);
  Tracer::instance().set_enabled(false);
  ASSERT_TRUE(traced.converged());
  ASSERT_EQ(traced.shards, 3);

  ASSERT_EQ(plain.iterations(), traced.iterations());
  ASSERT_EQ(plain.result.final_delta_inf, traced.result.final_delta_inf);
  ASSERT_EQ(plain.solution.size(), traced.solution.size());
  for (std::size_t i = 0; i < plain.solution.size(); ++i) {
    ASSERT_EQ(plain.solution[i], traced.solution[i]) << "i=" << i;
  }

  const std::string json = Tracer::instance().chrome_json();
  EXPECT_NE(json.find("\"shard\""), std::string::npos);
  EXPECT_NE(json.find("\"halo_exchange\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep\""), std::string::npos);
  // The red/black grid has cross-shard coupling everywhere: real ghost
  // traffic must have been counted (and its volume in doubles).
  EXPECT_GT(Tracer::instance().counter(Counter::kHaloExchanges), 0);
  EXPECT_GT(Tracer::instance().counter(Counter::kHaloDoubles),
            Tracer::instance().counter(Counter::kHaloExchanges));
}

}  // namespace
}  // namespace mstep::obs
