// Cross-module property tests: FEM patch test, SPD sweeps over
// preconditioner families, PCG on random SPD systems, the Adams-1982
// condition ratio bound, and the eq.-(4.2) planner.
#include <gtest/gtest.h>

#include <cmath>

#include "color/coloring.hpp"
#include "core/condition.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "core/planner.hpp"
#include "fem/plane_stress.hpp"
#include "la/dense_matrix.hpp"
#include "util/rng.hpp"

namespace mstep {
namespace {

// ---- FEM patch test -----------------------------------------------------------
// A constant-strain displacement field must be reproduced exactly by CST
// elements: K u_affine gives zero force at interior nodes.

TEST(PatchTest, ConstantStrainFieldsAreEquilibrated) {
  const fem::PlateMesh mesh(5, 6);
  const fem::Material mat{2.0, 0.25, 1.0};
  const la::CsrMatrix k = fem::assemble_free_stiffness(mesh, mat);

  // u = a + b x + c y (per component): constant strain.
  const double coeff[2][3] = {{0.3, 1.2, -0.7}, {-0.1, 0.5, 0.9}};
  Vec u(k.rows());
  for (index_t node = 0; node < mesh.num_nodes(); ++node) {
    const double x = mesh.node_x(node);
    const double y = mesh.node_y(node);
    for (int d = 0; d < 2; ++d) {
      u[2 * node + d] = coeff[d][0] + coeff[d][1] * x + coeff[d][2] * y;
    }
  }
  Vec f;
  k.multiply(u, f);
  // Interior nodes (not on the boundary) must carry zero net force.
  for (index_t node = 0; node < mesh.num_nodes(); ++node) {
    const int r = mesh.node_row(node);
    const int c = mesh.node_col(node);
    if (r == 0 || c == 0 || r == mesh.nrows() - 1 || c == mesh.ncols() - 1) {
      continue;
    }
    EXPECT_NEAR(f[2 * node], 0.0, 1e-10) << "node " << node;
    EXPECT_NEAR(f[2 * node + 1], 0.0, 1e-10) << "node " << node;
  }
}

TEST(PatchTest, EnergyOfConstantStrainMatchesContinuum) {
  // For u = (x, 0): strain e_xx = 1, energy = 0.5 * t * area * D_00.
  const fem::PlateMesh mesh(4, 4);
  const fem::Material mat;
  const la::CsrMatrix k = fem::assemble_free_stiffness(mesh, mat);
  Vec u(k.rows(), 0.0);
  for (index_t node = 0; node < mesh.num_nodes(); ++node) {
    u[2 * node] = mesh.node_x(node);
  }
  Vec ku;
  k.multiply(u, ku);
  const double energy = 0.5 * la::dot(u, ku);
  const double d00 = mat.constitutive()(0, 0);
  EXPECT_NEAR(energy, 0.5 * mat.thickness * 1.0 * d00, 1e-10);
}

// ---- SPD property sweeps ---------------------------------------------------------

struct SpdCase {
  int m;
  bool parametrized;
};

class MStepSpdSweep : public ::testing::TestWithParam<SpdCase> {};

TEST_P(MStepSpdSweep, PreconditionerIsSpdOnPlate) {
  const auto [m, parametrized] = GetParam();
  const fem::PlateMesh mesh(4, 4);
  const auto sys =
      fem::assemble_plane_stress(mesh, fem::Material{}, fem::EdgeLoad{});
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const auto alphas =
      parametrized ? core::least_squares_alphas(m, core::ssor_interval())
                   : core::unparametrized_alphas(m);
  const core::MulticolorMStepSsor prec(cs, alphas);

  const index_t n = cs.size();
  la::DenseMatrix minv(n, n);
  Vec e(n), z(n);
  for (index_t j = 0; j < n; ++j) {
    e.assign(n, 0.0);
    e[j] = 1.0;
    prec.apply(e, z);
    for (index_t i = 0; i < n; ++i) minv(i, j) = z[i];
  }
  EXPECT_TRUE(minv.is_symmetric(1e-9)) << "m=" << m;
  const auto ev = la::symmetric_eigenvalues(minv);
  EXPECT_GT(ev.front(), 0.0) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MStepSpdSweep,
    ::testing::Values(SpdCase{1, false}, SpdCase{2, false}, SpdCase{2, true},
                      SpdCase{3, false}, SpdCase{3, true}, SpdCase{4, true},
                      SpdCase{5, true}, SpdCase{6, true}, SpdCase{8, true}));

// ---- PCG on random SPD systems ------------------------------------------------------

class RandomSpdPcg : public ::testing::TestWithParam<int> {};

TEST_P(RandomSpdPcg, ConvergesAndMatchesDirect) {
  const int n = GetParam();
  util::Rng rng(n);
  // Sparse-ish random SPD: diagonally dominant with random couplings.
  la::CooBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int t = 0; t < 3; ++t) {
      const index_t j = static_cast<index_t>(rng.uniform_index(n));
      if (j == i) continue;
      const double v = rng.uniform(-1.0, 1.0);
      b.add(i, j, v);
      b.add(j, i, v);
      row_sum += std::abs(v);
    }
    b.add(i, i, row_sum + 1.0 + rng.uniform());
  }
  // Symmetrize diagonal dominance: add |offdiag| margins on both rows.
  la::CsrMatrix raw = b.build();
  // Reinforce the diagonal so the symmetrized matrix is safely SPD.
  la::CooBuilder b2(n, n);
  const auto& rp = raw.row_ptr();
  const auto& col = raw.col_idx();
  const auto& val = raw.values();
  for (index_t i = 0; i < n; ++i) {
    double absrow = 0.0;
    for (index_t t = rp[i]; t < rp[i + 1]; ++t) {
      if (col[t] != i) {
        b2.add(i, col[t], val[t]);
        absrow += std::abs(val[t]);
      }
    }
    b2.add(i, i, absrow + 1.0);
  }
  const la::CsrMatrix a = b2.build();
  ASSERT_LT(a.symmetry_error(), 1e-12);

  const Vec f = rng.uniform_vector(n);
  core::PcgOptions opt;
  opt.tolerance = 1e-12;
  opt.stop_rule = core::StopRule::kResidual2;
  const auto res = core::cg_solve(a, f, opt);
  EXPECT_TRUE(res.converged);
  const Vec direct = la::solve_cholesky(a.to_dense(), f);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(res.solution[i], direct[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSpdPcg,
                         ::testing::Values(5, 16, 33, 64, 101));

// ---- Adams 1982 ratio bound -----------------------------------------------------------

TEST(AdamsBound, UnparametrizedImprovementRatioEqualsM) {
  // kappa_1 / kappa_m = m exactly when the SSOR spectrum reaches 1
  // (s_m(lambda) = 1 - (1-lambda)^m; max over [l,1] is 1, and near l the
  // map behaves like m*l).
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(12);
  const auto sys =
      fem::assemble_plane_stress(mesh, fem::Material{}, fem::EdgeLoad{});
  const auto cs = color::make_colored_system(sys.stiffness,
                                             color::six_color_classes(mesh));
  const core::MulticolorMStepSsor m1(cs, {1.0});
  const double kappa1 =
      core::estimate_preconditioned_condition(cs.matrix, m1).kappa;
  for (int m = 2; m <= 6; ++m) {
    const core::MulticolorMStepSsor prec(cs, core::unparametrized_alphas(m));
    const double kappam =
        core::estimate_preconditioned_condition(cs.matrix, prec).kappa;
    EXPECT_NEAR(kappa1 / kappam, m, 0.05 * m) << "m=" << m;
    EXPECT_LE(kappa1 / kappam, m * 1.01) << "bound violated at m=" << m;
  }
}

// ---- eq. (4.2) planner -------------------------------------------------------------------

TEST(Planner, PredictMatchesFormula) {
  const core::StepCostModel costs{0.02, 0.008};
  EXPECT_DOUBLE_EQ(costs.predict(3, 100), 100 * (0.02 + 3 * 0.008));
}

TEST(Planner, Criterion1WhenTotalInnerLoopsDrop) {
  // m=2, N=30 -> m=3, N=19: 3*19=57 < 2*30=60 -> criterion 1.
  const auto d = core::prefer_m_plus_1(2, 30, 19, {0.02, 0.01});
  EXPECT_TRUE(d.criterion1);
  EXPECT_TRUE(d.take_extra_step);
}

TEST(Planner, Criterion2ComparesAgainstBA) {
  // m=4, N=40 -> 36: left = 4 / (36*5 - 40*4) = 0.2.
  const core::StepCostModel cheap{1.0, 0.1};   // B/A = 0.1 < 0.2 -> yes
  const core::StepCostModel costly{1.0, 0.3};  // B/A = 0.3 > 0.2 -> no
  EXPECT_TRUE(core::prefer_m_plus_1(4, 40, 36, cheap).take_extra_step);
  EXPECT_FALSE(core::prefer_m_plus_1(4, 40, 36, costly).take_extra_step);
}

TEST(Planner, DecisionConsistentWithDirectMinimum) {
  // For a convex-ish N_m curve the greedy (4.2) rule and the direct argmin
  // of T_m = N_m (A + mB) agree on when to stop.
  const std::vector<int> iters = {100, 60, 43, 35, 30, 27, 25, 24};
  const core::StepCostModel costs{0.05, 0.02};
  const int best = core::optimal_steps(iters, costs);
  // Walk the greedy rule.
  int greedy = 0;
  while (greedy + 1 < static_cast<int>(iters.size()) &&
         core::prefer_m_plus_1(greedy, iters[greedy], iters[greedy + 1], costs)
             .take_extra_step) {
    ++greedy;
  }
  EXPECT_EQ(greedy, best);
}

TEST(Planner, OptimalStepsHandlesFlatCurve) {
  // If the preconditioner does not help, m=0 must win.
  const std::vector<int> iters = {50, 50, 50, 50};
  EXPECT_EQ(core::optimal_steps(iters, {1.0, 0.5}), 0);
}

TEST(Planner, RejectsBadInput) {
  EXPECT_THROW((void)core::optimal_steps({}, {1.0, 0.1}),
               std::invalid_argument);
  EXPECT_THROW((void)core::prefer_m_plus_1(-1, 10, 9, {1.0, 0.1}),
               std::invalid_argument);
  EXPECT_THROW((void)core::prefer_m_plus_1(2, 0, 9, {1.0, 0.1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mstep
