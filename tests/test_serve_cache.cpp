// The serve subsystem's process-local contracts: wire codec round-trips
// (including truncation and bad-magic rejection), content fingerprints,
// the prepared-pipeline cache (hit on identical matrix+config, miss when
// either changes, LRU eviction under a tiny byte budget, bitwise identity
// with a direct Solver run), the admission gate, and the latency
// histogram.  The daemon end-to-end paths live in tests/test_served.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "problems/problem.hpp"
#include "serve/cache.hpp"
#include "serve/hash.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "solver/solver.hpp"

namespace mstep::serve {
namespace {

la::CsrMatrix tiny_spd() {
  // [4 1 0; 1 4 1; 0 1 4] — SPD, strictly diagonally dominant.
  return la::CsrMatrix(3, 3, {0, 2, 5, 7}, {0, 1, 0, 1, 2, 1, 2},
                       {4.0, 1.0, 1.0, 4.0, 1.0, 1.0, 4.0});
}

TEST(Wire, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-0.1);
  w.str("hello frame");
  w.vec({1.0, -2.5, 3e-300});
  const std::string bytes = w.bytes();

  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -0.1);  // exact: bit-pattern transport
  EXPECT_EQ(r.str(), "hello frame");
  EXPECT_EQ(r.vec(), (Vec{1.0, -2.5, 3e-300}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, CsrRoundTrip) {
  const la::CsrMatrix m = tiny_spd();
  WireWriter w;
  w.csr(m);
  WireReader r(w.bytes());
  const la::CsrMatrix back = r.csr();
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.rows(), m.rows());
  EXPECT_EQ(back.cols(), m.cols());
  EXPECT_EQ(back.row_ptr(), m.row_ptr());
  EXPECT_EQ(back.col_idx(), m.col_idx());
  EXPECT_EQ(back.values(), m.values());
}

TEST(Wire, TruncatedPayloadThrows) {
  WireWriter w;
  w.str("four byte length prefix plus this text");
  const std::string bytes = w.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string truncated = bytes.substr(0, cut);
    WireReader r(truncated);
    EXPECT_THROW((void)r.str(), ProtocolError) << "cut at " << cut;
  }
  // A count field promising more elements than the payload holds must
  // throw, not allocate first and fault later.
  WireWriter huge;
  huge.u64(~0ull);
  WireReader r(huge.bytes());
  EXPECT_THROW((void)r.vec(), ProtocolError);
}

TEST(Wire, HeaderRoundTripAndRejection) {
  const std::string h = encode_header(MsgType::kSolve, 1234);
  ASSERT_EQ(h.size(), kHeaderBytes);
  const FrameHeader fh = decode_header(h.data(), kDefaultMaxPayload);
  EXPECT_EQ(fh.type, MsgType::kSolve);
  EXPECT_EQ(fh.payload_len, 1234u);

  std::string bad_magic = h;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)decode_header(bad_magic.data(), kDefaultMaxPayload),
               ProtocolError);
  // Payload length above the receiver's ceiling is rejected at the header.
  EXPECT_THROW((void)decode_header(h.data(), 100), ProtocolError);
}

TEST(Wire, SolveRequestRoundTrip) {
  SolveRequest q;
  q.source = MatrixSource::kInlineCsr;
  q.matrix = tiny_spd();
  q.config = "splitting=ssor;m=2";
  q.rhs = {{1.0, 2.0, 3.0}, {0.5, 0.25, 0.125}};
  const SolveRequest back = SolveRequest::decode(q.encode());
  EXPECT_EQ(back.source, MatrixSource::kInlineCsr);
  EXPECT_EQ(back.matrix.values(), q.matrix.values());
  EXPECT_EQ(back.config, q.config);
  EXPECT_EQ(back.rhs, q.rhs);

  SolveRequest fp;
  fp.source = MatrixSource::kFingerprint;
  fp.fingerprint = 0xfeedfacecafebeefull;
  const SolveRequest fp_back = SolveRequest::decode(fp.encode());
  EXPECT_EQ(fp_back.source, MatrixSource::kFingerprint);
  EXPECT_EQ(fp_back.fingerprint, 0xfeedfacecafebeefull);
}

TEST(Wire, SolveResponseRoundTrip) {
  SolveResponse p;
  p.retcode = Retcode::kOk;
  p.cache_hit = true;
  p.fingerprint = 42;
  p.format_selected = "dia";
  p.setup_seconds = 0.0;
  p.solve_seconds = 1.5;
  RhsResult good;
  good.ok = true;
  good.converged = true;
  good.iterations = 7;
  good.final_delta_inf = 1e-9;
  good.solution = {1.0, 2.0};
  RhsResult bad;
  bad.error = "singular splitting";
  p.results = {good, bad};
  const SolveResponse back = SolveResponse::decode(p.encode());
  EXPECT_EQ(back.retcode, Retcode::kOk);
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.fingerprint, 42u);
  EXPECT_EQ(back.format_selected, "dia");
  EXPECT_EQ(back.results, p.results);
  EXPECT_FALSE(back.all_converged());  // the failed RHS counts

  StatusResponse s;
  s.retcode = Retcode::kBusy;
  s.body = "queue full";
  const StatusResponse s_back = StatusResponse::decode(s.encode());
  EXPECT_EQ(s_back.retcode, Retcode::kBusy);
  EXPECT_EQ(s_back.body, "queue full");
}

TEST(Wire, RetcodeCatalog) {
  EXPECT_STREQ(to_string(Retcode::kOk), "ok");
  EXPECT_TRUE(retryable(Retcode::kBusy));
  EXPECT_TRUE(retryable(Retcode::kShuttingDown));
  EXPECT_FALSE(retryable(Retcode::kBadConfig));
  EXPECT_FALSE(retryable(Retcode::kUnknownMatrix));
}

TEST(Hash, ContentSensitivity) {
  const la::CsrMatrix a = tiny_spd();
  la::CsrMatrix b = tiny_spd();
  EXPECT_EQ(matrix_fingerprint(a), matrix_fingerprint(b));
  b.values()[0] = std::nextafter(b.values()[0], 5.0);  // one ulp flips it
  EXPECT_NE(matrix_fingerprint(a), matrix_fingerprint(b));
}

TEST(Hash, ClassesFoldIntoPipelineFingerprint) {
  const la::CsrMatrix m = tiny_spd();
  // No classes: the pipeline hash IS the matrix hash, so an inline
  // resend of a greedy-coloured matrix lands on the same entry.
  EXPECT_EQ(pipeline_fingerprint(m, {}), matrix_fingerprint(m));
  // Closed-form classes build a different ordering — different pipeline.
  color::ColorClasses classes;
  classes.classes = {{0, 2}, {1}};
  EXPECT_NE(pipeline_fingerprint(m, classes), matrix_fingerprint(m));
}

TEST(Hash, HexRoundTrip) {
  EXPECT_EQ(fingerprint_hex(0xabcull), "0000000000000abc");
  EXPECT_EQ(fingerprint_from_hex("0000000000000abc"), 0xabcull);
  EXPECT_EQ(fingerprint_from_hex("0xABC"), 0xabcull);
  EXPECT_THROW((void)fingerprint_from_hex("not hex"), std::invalid_argument);
  const std::uint64_t fp = matrix_fingerprint(tiny_spd());
  EXPECT_EQ(fingerprint_from_hex(fingerprint_hex(fp)), fp);
}

// ---- prepared-pipeline cache ----------------------------------------------

struct CacheFixture {
  std::shared_ptr<const ProblemData> load(const std::string& spec) {
    problems::Problem p = problems::ProblemRegistry::instance().create(spec);
    return make_problem_data(std::move(p.matrix), std::move(p.classes),
                             std::move(p.rhs), p.description);
  }

  PreparedCache::Lookup get(PreparedCache& cache,
                            std::shared_ptr<const ProblemData> data,
                            const std::string& config_text) {
    const auto config = solver::SolverConfig::from_string(config_text);
    return cache.get_or_prepare(data->fingerprint, config, config.to_string(),
                                [&data] { return data; });
  }
};

TEST(PreparedCache, HitOnIdenticalMatrixAndConfig) {
  CacheFixture fx;
  PreparedCache cache(64ull << 20);
  const auto data = fx.load("poisson2d:n=8");

  const auto first = fx.get(cache, data, "splitting=ssor;m=2");
  EXPECT_FALSE(first.hit);
  const auto second = fx.get(cache, data, "splitting=ssor;m=2");
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.entry.get(), second.entry.get());
  // Config-string spelling does not matter, the canonical form is the key.
  const auto reordered = fx.get(cache, data, "m=2;splitting=ssor");
  EXPECT_TRUE(reordered.hit);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PreparedCache, MissWhenEitherKeyHalfChanges) {
  CacheFixture fx;
  PreparedCache cache(64ull << 20);
  const auto data = fx.load("poisson2d:n=8");
  const auto other = fx.load("poisson2d:n=9");
  ASSERT_NE(data->fingerprint, other->fingerprint);

  EXPECT_FALSE(fx.get(cache, data, "splitting=ssor;m=2").hit);
  EXPECT_FALSE(fx.get(cache, data, "splitting=ssor;m=3").hit);   // new config
  EXPECT_FALSE(fx.get(cache, other, "splitting=ssor;m=2").hit);  // new matrix
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(PreparedCache, LruEvictionUnderTinyBudget) {
  CacheFixture fx;
  // A budget no real pipeline fits: every insert evicts the rest, but the
  // incoming entry itself is always admitted.
  PreparedCache cache(1);
  const auto a = fx.load("poisson2d:n=8");
  const auto b = fx.load("poisson2d:n=9");

  EXPECT_FALSE(fx.get(cache, a, "splitting=ssor;m=2").hit);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_FALSE(fx.get(cache, b, "splitting=ssor;m=2").hit);  // evicts a
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GE(cache.stats().evictions, 1u);
  // a is gone: the revisit misses again, and its matrix is no longer
  // addressable by fingerprint.
  EXPECT_EQ(cache.find_matrix(a->fingerprint), nullptr);
  EXPECT_FALSE(fx.get(cache, a, "splitting=ssor;m=2").hit);
}

TEST(PreparedCache, LruEvictsLeastRecentlyUsedFirst) {
  CacheFixture fx;
  const auto a = fx.load("poisson2d:n=8");
  const auto b = fx.load("poisson2d:n=9");
  const auto c = fx.load("poisson2d:n=10");
  // Budget sized from the real estimates: any two of the three entries
  // fit, all three do not.
  PreparedCache probe(64ull << 20);
  (void)fx.get(probe, a, "splitting=ssor;m=2");
  (void)fx.get(probe, b, "splitting=ssor;m=2");
  (void)fx.get(probe, c, "splitting=ssor;m=2");
  const std::size_t three_entries = probe.stats().bytes;

  PreparedCache cache(three_entries - 1);
  (void)fx.get(cache, a, "splitting=ssor;m=2");
  (void)fx.get(cache, b, "splitting=ssor;m=2");
  EXPECT_TRUE(fx.get(cache, a, "splitting=ssor;m=2").hit);  // a now MRU
  (void)fx.get(cache, c, "splitting=ssor;m=2");  // evicts exactly b (LRU)
  EXPECT_NE(cache.find_matrix(a->fingerprint), nullptr);
  EXPECT_EQ(cache.find_matrix(b->fingerprint), nullptr);
  EXPECT_TRUE(fx.get(cache, a, "splitting=ssor;m=2").hit);
}

TEST(PreparedCache, CachedPipelineIsBitwiseIdenticalToDirectSolve) {
  CacheFixture fx;
  PreparedCache cache(64ull << 20);
  const std::string config_text = "splitting=ssor;m=2";
  const auto data = fx.load("femplate:a=8");  // ships closed-form classes
  ASSERT_FALSE(data->classes.classes.empty());

  const auto lookup = fx.get(cache, data, config_text);
  const std::vector<Vec> bs{data->rhs};
  const solver::BatchReport served = lookup.entry->prepared.solveMany(
      util::Span<const Vec>(bs.data(), bs.size()));

  solver::Solver direct = solver::Solver::from_config(
      solver::SolverConfig::from_string(config_text));
  const solver::Prepared prepared =
      direct.prepare(data->matrix, data->classes);
  const solver::BatchReport want =
      prepared.solveMany(util::Span<const Vec>(bs.data(), bs.size()));

  ASSERT_EQ(served.reports.size(), 1u);
  ASSERT_EQ(want.reports.size(), 1u);
  EXPECT_TRUE(want.reports[0].converged());
  EXPECT_EQ(served.reports[0].iterations(), want.reports[0].iterations());
  EXPECT_EQ(served.reports[0].result.final_delta_inf,
            want.reports[0].result.final_delta_inf);
  EXPECT_EQ(served.reports[0].solution, want.reports[0].solution);
}

// ---- admission gate and histogram -----------------------------------------

TEST(Admission, BoundsInflightAndRecovers) {
  Admission gate(2);
  EXPECT_TRUE(gate.try_enter());
  EXPECT_TRUE(gate.try_enter());
  EXPECT_FALSE(gate.try_enter());  // full: this request is shed as kBusy
  EXPECT_EQ(gate.depth(), 2);
  gate.leave();
  EXPECT_TRUE(gate.try_enter());
  gate.leave();
  gate.leave();
  EXPECT_EQ(gate.depth(), 0);
}

TEST(LatencyHistogram, SummaryTracksSamples) {
  LatencyHistogram h;
  EXPECT_EQ(h.summary().count, 0u);
  for (int i = 0; i < 90; ++i) h.record(1e-3);
  for (int i = 0; i < 10; ++i) h.record(1.0);  // a slow 10% tail
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  EXPECT_NEAR(s.mean, (90 * 1e-3 + 10.0) / 100.0, 1e-12);
  // Log-bucketed percentiles: the right bucket, not exact values (the
  // geometric bucket midpoint may sit slightly above the true max).
  EXPECT_GT(s.p50, 0.5e-3);
  EXPECT_LT(s.p50, 2e-3);
  EXPECT_GT(s.p99, 0.5);  // the tail owns p99
  EXPECT_LT(s.p99, 2.0);
}

}  // namespace
}  // namespace mstep::serve
