// Tests for CSR, the COO builder, and storage-by-diagonals.
#include <gtest/gtest.h>

#include "fem/plane_stress.hpp"
#include "fem/poisson.hpp"
#include "la/csr_matrix.hpp"
#include "la/dia_matrix.hpp"
#include "util/rng.hpp"

namespace mstep::la {
namespace {

CsrMatrix small_test_matrix() {
  // [ 4 -1  0]
  // [-1  4 -2]
  // [ 0 -2  5]
  CooBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(0, 1, -1.0);
  b.add(1, 0, -1.0);
  b.add(1, 1, 4.0);
  b.add(1, 2, -2.0);
  b.add(2, 1, -2.0);
  b.add(2, 2, 5.0);
  return b.build();
}

TEST(CooBuilder, SumsDuplicateEntries) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, 1.0);
  const CsrMatrix a = b.build();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_EQ(a.nnz(), 2);
}

TEST(CooBuilder, DropZerosRemovesCancellations) {
  CooBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(0, 1, -1.0);
  b.add(0, 0, 2.0);
  b.add(1, 1, 1.0);
  EXPECT_EQ(b.build(false).nnz(), 3);
  EXPECT_EQ(b.build(true).nnz(), 2);
}

TEST(Csr, AtFindsEntriesAndZeros) {
  const CsrMatrix a = small_test_matrix();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(Csr, MultiplyMatchesDense) {
  const CsrMatrix a = small_test_matrix();
  const Vec x = {1.0, 2.0, 3.0};
  Vec y;
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0 - 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 + 8.0 - 6.0);
  EXPECT_DOUBLE_EQ(y[2], -4.0 + 15.0);
}

TEST(Csr, MultiplySubIsResidualUpdate) {
  const CsrMatrix a = small_test_matrix();
  const Vec x = {1.0, 1.0, 1.0};
  Vec y = {10.0, 10.0, 10.0};
  a.multiply_sub(x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.0 - 3.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0 - 1.0);
  EXPECT_DOUBLE_EQ(y[2], 10.0 - 3.0);
}

TEST(Csr, ResidualComputesBMinusAx) {
  const CsrMatrix a = small_test_matrix();
  const Vec b = {1.0, 2.0, 3.0};
  const Vec x = {0.0, 0.0, 0.0};
  Vec r;
  a.residual(b, x, r);
  EXPECT_EQ(r, b);
}

TEST(Csr, DiagonalExtraction) {
  const CsrMatrix a = small_test_matrix();
  const Vec d = a.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(Csr, TransposeOfSymmetricEqualsItself) {
  const CsrMatrix a = small_test_matrix();
  EXPECT_DOUBLE_EQ(a.symmetry_error(), 0.0);
  const CsrMatrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t.at(2, 1), a.at(1, 2));
}

TEST(Csr, TransposeOfRectangular) {
  CooBuilder b(2, 3);
  b.add(0, 2, 7.0);
  b.add(1, 0, -1.0);
  const CsrMatrix a = b.build();
  const CsrMatrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), -1.0);
}

TEST(Csr, PermutedSymmetricReordersRowsAndCols) {
  const CsrMatrix a = small_test_matrix();
  const std::vector<index_t> perm = {2, 0, 1};  // new i <- old perm[i]
  const CsrMatrix p = a.permuted_symmetric(perm);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(p.at(i, j), a.at(perm[i], perm[j]))
          << "mismatch at " << i << "," << j;
    }
  }
}

TEST(Csr, PermutationPreservesSymmetryAndSpectrumTrace) {
  const CsrMatrix a = small_test_matrix();
  const CsrMatrix p = a.permuted_symmetric({1, 2, 0});
  EXPECT_DOUBLE_EQ(p.symmetry_error(), 0.0);
  double tr_a = 0.0, tr_p = 0.0;
  for (index_t i = 0; i < 3; ++i) {
    tr_a += a.at(i, i);
    tr_p += p.at(i, i);
  }
  EXPECT_DOUBLE_EQ(tr_a, tr_p);
}

TEST(Csr, MaxRowNnz) {
  const CsrMatrix a = small_test_matrix();
  EXPECT_EQ(a.max_row_nnz(), 3);
}

TEST(Csr, IdentityActsAsIdentity) {
  const CsrMatrix i5 = csr_identity(5);
  util::Rng rng(1);
  const Vec x = rng.uniform_vector(5);
  Vec y;
  i5.multiply(x, y);
  EXPECT_EQ(x, y);
}

TEST(Csr, NumNonzeroDiagonalsTridiagonal) {
  const CsrMatrix a = small_test_matrix();
  EXPECT_EQ(a.num_nonzero_diagonals(), 3);
}

// --- DIA format ----------------------------------------------------------

TEST(Dia, RoundTripsTridiagonal) {
  const CsrMatrix a = small_test_matrix();
  const DiaMatrix d = DiaMatrix::from_csr(a);
  EXPECT_EQ(d.num_diagonals(), 3);
  util::Rng rng(9);
  const Vec x = rng.uniform_vector(3);
  Vec y_csr, y_dia;
  a.multiply(x, y_csr);
  d.multiply(x, y_dia);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y_csr[i], y_dia[i], 1e-14);
}

TEST(Dia, MultiplySubMatchesCsr) {
  const CsrMatrix a = small_test_matrix();
  const DiaMatrix d = DiaMatrix::from_csr(a);
  util::Rng rng(10);
  const Vec x = rng.uniform_vector(3);
  Vec y1 = rng.uniform_vector(3);
  Vec y2 = y1;
  a.multiply_sub(x, y1);
  d.multiply_sub(x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

class DiaVsCsrOnProblems : public ::testing::TestWithParam<int> {};

TEST_P(DiaVsCsrOnProblems, PoissonSpmvAgrees) {
  const int n = GetParam();
  const fem::PoissonProblem prob(n, n);
  const CsrMatrix a = prob.matrix();
  const DiaMatrix d = DiaMatrix::from_csr(a);
  EXPECT_EQ(d.num_diagonals(), n == 1 ? 1 : 5);
  util::Rng rng(n);
  const Vec x = rng.uniform_vector(a.rows());
  Vec y1, y2;
  a.multiply(x, y1);
  d.multiply(x, y2);
  double err = 0.0;
  for (std::size_t i = 0; i < y1.size(); ++i)
    err = std::max(err, std::abs(y1[i] - y2[i]));
  EXPECT_LT(err, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grids, DiaVsCsrOnProblems,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Dia, PlateMatrixDiagonalCountIsBounded) {
  // The free plate stiffness in the geometric ordering has a fixed set of
  // diagonals determined by the stencil, independent of the plate size.
  const fem::PlateMesh mesh(6, 6);
  const fem::Material mat;
  const CsrMatrix k = fem::assemble_free_stiffness(mesh, mat);
  const DiaMatrix d = DiaMatrix::from_csr(k);
  EXPECT_LE(d.num_diagonals(), 15);  // 7-node stencil x 2 dofs, +/- offsets
  util::Rng rng(2);
  const Vec x = rng.uniform_vector(k.rows());
  Vec y1, y2;
  k.multiply(x, y1);
  d.multiply(x, y2);
  double err = 0.0;
  for (std::size_t i = 0; i < y1.size(); ++i)
    err = std::max(err, std::abs(y1[i] - y2[i]));
  EXPECT_LT(err, 1e-12);
}

}  // namespace
}  // namespace mstep::la
