// Tests for irregular regions (Section 5's open problem): unstructured
// triangle meshes, greedy multicolor colouring, and the full m-step PCG
// pipeline on the L-shaped plate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "color/greedy.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/tri_mesh.hpp"
#include "femsim/assignment.hpp"
#include "femsim/dist_solver.hpp"
#include "la/dense_matrix.hpp"
#include "util/rng.hpp"

namespace mstep {
namespace {

// ---- TriMesh ------------------------------------------------------------------

TEST(TriMesh, FromPlateMatchesPlateAssembly) {
  const fem::PlateMesh plate(5, 5);
  const fem::TriMesh mesh = fem::TriMesh::from_plate(plate);
  EXPECT_EQ(mesh.num_nodes(), plate.num_nodes());
  EXPECT_EQ(mesh.num_equations(), plate.num_equations());

  const fem::Material mat;
  const auto k_plate = fem::assemble_plane_stress(plate, mat, fem::EdgeLoad{});
  const auto k_tri = fem::assemble_plane_stress(mesh, mat);
  // Same equation numbering (node-major over unconstrained nodes in node-id
  // order), so the matrices must agree entry for entry.
  ASSERT_EQ(k_tri.rows(), k_plate.stiffness.rows());
  for (index_t i = 0; i < k_tri.rows(); ++i) {
    for (index_t j = 0; j < k_tri.cols(); ++j) {
      ASSERT_NEAR(k_tri.at(i, j), k_plate.stiffness.at(i, j), 1e-12)
          << i << "," << j;
    }
  }
}

TEST(TriMesh, EquationNumberingRoundTrips) {
  const fem::TriMesh mesh = fem::TriMesh::l_shape(2);
  for (index_t eq = 0; eq < mesh.num_equations(); ++eq) {
    const auto [node, dof] = mesh.equation_node_dof(eq);
    EXPECT_EQ(mesh.equation_id(node, dof), eq);
  }
}

TEST(TriMesh, FinalizeGuards) {
  fem::TriMesh m;
  m.add_node(0, 0);
  m.finalize();
  EXPECT_THROW(m.add_node(1, 1), std::logic_error);
  EXPECT_THROW(m.finalize(), std::logic_error);
}

TEST(TriMesh, LShapeGeometry) {
  const int n = 3;
  const fem::TriMesh mesh = fem::TriMesh::l_shape(n);
  const int side = 2 * n + 1;
  // Nodes: full square minus the open upper-right quadrant (n x n nodes).
  EXPECT_EQ(mesh.num_nodes(), side * side - n * n);
  // Constrained: the left column.
  int constrained = 0;
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    if (mesh.is_constrained(v)) {
      ++constrained;
      EXPECT_DOUBLE_EQ(mesh.node_x(v), 0.0);
    }
  }
  EXPECT_EQ(constrained, side);
  EXPECT_EQ(mesh.num_equations(), 2 * (mesh.num_nodes() - side));
  // Triangles: cells in the L = full grid minus quadrant (n x n cells).
  const int cells = (side - 1) * (side - 1) - n * n;
  EXPECT_EQ(static_cast<int>(mesh.triangles().size()), 2 * cells);
}

TEST(TriMesh, LShapeStiffnessIsSpd) {
  const fem::TriMesh mesh = fem::TriMesh::l_shape(2);
  const auto k = fem::assemble_plane_stress(mesh, fem::Material{});
  EXPECT_LT(k.symmetry_error(), 1e-12);
  const auto ev = la::symmetric_eigenvalues(k.to_dense());
  EXPECT_GT(ev.front(), 0.0);
}

TEST(TriMesh, AdjacencyIsSymmetricWithoutSelf) {
  const fem::TriMesh mesh = fem::TriMesh::l_shape(2);
  const auto adj = mesh.node_adjacency();
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    for (index_t w : adj[v]) {
      EXPECT_NE(w, v);
      EXPECT_TRUE(std::find(adj[w].begin(), adj[w].end(), v) != adj[w].end());
    }
  }
}

// ---- greedy colouring -----------------------------------------------------------

TEST(Greedy, ProperColoringOnLShape) {
  const fem::TriMesh mesh = fem::TriMesh::l_shape(3);
  const auto adj = mesh.node_adjacency();
  const auto color = color::greedy_vertex_coloring(adj);
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    for (index_t w : adj[v]) {
      EXPECT_NE(color[v], color[w]) << v << "-" << w;
    }
  }
}

TEST(Greedy, FewColorsOnMeshGraphs) {
  // Hexagonal-stencil triangulations have degree <= 6; greedy stays small.
  for (int n : {1, 2, 4, 6}) {
    const fem::TriMesh mesh = fem::TriMesh::l_shape(n);
    EXPECT_LE(color::greedy_color_count(mesh), 4) << "n=" << n;
    EXPECT_GE(color::greedy_color_count(mesh), 3) << "n=" << n;
  }
}

TEST(Greedy, ClassesAreValidForTheMatrix) {
  const fem::TriMesh mesh = fem::TriMesh::l_shape(3);
  const auto k = fem::assemble_plane_stress(mesh, fem::Material{});
  const auto classes = color::greedy_classes(mesh);
  EXPECT_TRUE(color::coloring_is_valid(k, classes));
  EXPECT_EQ(classes.total_equations(), k.rows());
}

TEST(Greedy, ColoredSystemHasDiagonalBlocks) {
  const fem::TriMesh mesh = fem::TriMesh::l_shape(2);
  const auto k = fem::assemble_plane_stress(mesh, fem::Material{});
  const auto cs = color::make_colored_system(k, color::greedy_classes(mesh));
  const auto rep = color::verify_block_structure(cs);
  EXPECT_TRUE(rep.diagonal_blocks_are_diagonal);
  EXPECT_TRUE(rep.paired_dof_blocks_are_diagonal);
}

TEST(Greedy, HandlesIsolatedVertices) {
  const std::vector<std::vector<index_t>> adj = {{}, {}, {}};
  const auto color = color::greedy_vertex_coloring(adj);
  for (int c : color) EXPECT_EQ(c, 0);
}

// ---- end-to-end on the L-shape -----------------------------------------------------

struct LShapeSystem {
  fem::TriMesh mesh;
  la::CsrMatrix k;
  Vec f;
  color::ColoredSystem cs;
  Vec fc;
};

LShapeSystem make_lshape(int n) {
  fem::TriMesh mesh = fem::TriMesh::l_shape(n);
  la::CsrMatrix k = fem::assemble_plane_stress(mesh, fem::Material{});
  Vec f(k.rows(), 0.0);
  // Pull down at the re-entrant corner's opposite tip (bottom-right node).
  index_t tip = 0;
  double best = -1.0;
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    const double score = mesh.node_x(v) - mesh.node_y(v);
    if (score > best) {
      best = score;
      tip = v;
    }
  }
  fem::add_point_load(mesh, tip, 0.0, -1.0, f);
  auto cs = color::make_colored_system(k, color::greedy_classes(mesh));
  Vec fc = cs.permute(f);
  return {std::move(mesh), std::move(k), std::move(f), std::move(cs),
          std::move(fc)};
}

TEST(LShape, MStepPcgSolves) {
  const auto sys = make_lshape(4);
  core::PcgOptions opt;
  opt.tolerance = 1e-8;
  const core::MulticolorMStepSsor prec(
      sys.cs, core::least_squares_alphas(3, core::ssor_interval()));
  const auto res = core::pcg_solve(sys.cs.matrix, sys.fc, prec, opt);
  EXPECT_TRUE(res.converged);
  const auto plain = core::cg_solve(sys.cs.matrix, sys.fc, opt);
  EXPECT_LT(res.iterations, plain.iterations / 2);
}

TEST(LShape, MulticolorEqualsGenericSsorOnIrregularMesh) {
  // The Algorithm 2 kernel must agree with the generic engine for ANY
  // number of classes — here the greedy colouring's count.
  const auto sys = make_lshape(3);
  const auto alphas = core::least_squares_alphas(4, core::ssor_interval());
  const split::SsorSplitting ssor(sys.cs.matrix, 1.0);
  const core::MStepPreconditioner generic(sys.cs.matrix, ssor, alphas);
  const core::MulticolorMStepSsor colored(sys.cs, alphas);
  util::Rng rng(3);
  const Vec r = rng.uniform_vector(sys.cs.size());
  Vec z1, z2;
  generic.apply(r, z1);
  colored.apply(r, z2);
  double err = 0.0;
  for (index_t i = 0; i < sys.cs.size(); ++i) {
    err = std::max(err, std::abs(z1[i] - z2[i]));
  }
  EXPECT_LT(err, 1e-11);
}

TEST(LShape, SolutionMatchesDirect) {
  const auto sys = make_lshape(2);
  core::PcgOptions opt;
  opt.tolerance = 1e-12;
  opt.stop_rule = core::StopRule::kResidual2;
  const core::MulticolorMStepSsor prec(
      sys.cs, core::least_squares_alphas(2, core::ssor_interval()));
  const auto res = core::pcg_solve(sys.cs.matrix, sys.fc, prec, opt);
  const Vec direct = la::solve_cholesky(sys.k.to_dense(), sys.f);
  const Vec u = sys.cs.unpermute(res.solution);
  for (index_t i = 0; i < sys.k.rows(); ++i) {
    EXPECT_NEAR(u[i], direct[i], 1e-6 * std::max(1.0, std::abs(direct[i])));
  }
}

TEST(LShape, DistributedSolveMatchesSequential) {
  // Section 5's second half: distribute the irregular region to the array
  // "in light of this coloring".  The general DistributedPlateSolver path
  // on coordinate strips must reproduce the sequential operator exactly
  // (same iteration counts).
  const auto sys = make_lshape(4);
  for (int p : {2, 3, 4}) {
    const auto owner_nodes = femsim::coordinate_strip_owner(sys.mesh, p);
    const auto owner =
        femsim::owner_of_colored_equations(sys.mesh, sys.cs, owner_nodes);
    const femsim::DistributedPlateSolver solver(sys.cs, sys.fc, owner, p);
    for (int m : {0, 2, 3}) {
      femsim::DistOptions opt;
      opt.m = m;
      opt.tolerance = 1e-6;
      const auto dist = solver.solve(opt);
      EXPECT_TRUE(dist.converged) << "p=" << p << " m=" << m;

      core::PcgOptions popt;
      popt.tolerance = 1e-6;
      core::PcgResult seq;
      if (m == 0) {
        seq = core::cg_solve(sys.cs.matrix, sys.fc, popt);
      } else {
        const core::MulticolorMStepSsor prec(
            sys.cs, core::least_squares_alphas(m, core::ssor_interval()));
        seq = core::pcg_solve(sys.cs.matrix, sys.fc, prec, popt);
      }
      if (m == 0) {
        // Plain CG on the ill-conditioned L-shape sits near the stopping
        // threshold for several iterations; the distributed reduction
        // order can flip the crossing by a step or two.
        EXPECT_NEAR(dist.iterations, seq.iterations, 2)
            << "p=" << p << " m=" << m;
      } else {
        // The preconditioned operator is exactly the sequential one.
        EXPECT_EQ(dist.iterations, seq.iterations)
            << "p=" << p << " m=" << m;
      }
    }
  }
}

TEST(LShape, CoordinateStripsBalanceNodeCounts) {
  const fem::TriMesh mesh = fem::TriMesh::l_shape(4);
  for (int p : {2, 3, 5}) {
    const auto owner = femsim::coordinate_strip_owner(mesh, p);
    std::vector<int> counts(p, 0);
    for (index_t v = 0; v < mesh.num_nodes(); ++v) {
      if (owner[v] >= 0) counts[owner[v]]++;
    }
    const int lo = *std::min_element(counts.begin(), counts.end());
    const int hi = *std::max_element(counts.begin(), counts.end());
    EXPECT_LE(hi - lo, 1) << "p=" << p;
  }
}

TEST(LShape, TipDeflectsDownUnderDownwardLoad) {
  const auto sys = make_lshape(3);
  core::PcgOptions opt;
  opt.tolerance = 1e-10;
  const core::MulticolorMStepSsor prec(
      sys.cs, core::least_squares_alphas(3, core::ssor_interval()));
  const auto res = core::pcg_solve(sys.cs.matrix, sys.fc, prec, opt);
  const Vec u = sys.cs.unpermute(res.solution);
  index_t tip = 0;
  double best = -1.0;
  for (index_t v = 0; v < sys.mesh.num_nodes(); ++v) {
    const double score = sys.mesh.node_x(v) - sys.mesh.node_y(v);
    if (score > best) {
      best = score;
      tip = v;
    }
  }
  EXPECT_LT(u[sys.mesh.equation_id(tip, 1)], 0.0);
}

}  // namespace
}  // namespace mstep
