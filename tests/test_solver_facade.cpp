// The Solver facade: config round-trip, registry coverage, pipeline
// equivalence to the hand-wired quickstart, and input validation.
#include <gtest/gtest.h>

#include <cmath>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"
#include "fem/poisson.hpp"
#include "solver/solver.hpp"

namespace mstep::solver {
namespace {

// ---- config strings ---------------------------------------------------------

TEST(Config, DefaultRoundTripsThroughString) {
  const SolverConfig cfg;
  const SolverConfig back = SolverConfig::from_string(cfg.to_string());
  EXPECT_EQ(cfg, back) << cfg.to_string();
}

TEST(Config, RoundTripsForEverySplittingAndStrategy) {
  for (const auto& splitting : SplittingRegistry::instance().names()) {
    for (const auto& params : ParamStrategyRegistry::instance().names()) {
      SolverConfig cfg;
      cfg.splitting = splitting;
      if (splitting == "ssor") cfg.splitting_options["omega"] = 1.3;
      if (splitting == "richardson") cfg.splitting_options["theta"] = 0.25;
      cfg.params = params;
      cfg.steps = 3;
      cfg.ordering = Ordering::kNatural;
      cfg.format = MatrixFormat::kDia;
      cfg.stop_rule = core::StopRule::kResidual2;
      cfg.tolerance = 3.5e-7;
      cfg.max_iterations = 123;
      cfg.record_history = true;
      cfg.interval = core::SpectrumInterval{0.125, 0.875};
      const SolverConfig back = SolverConfig::from_string(cfg.to_string());
      EXPECT_EQ(cfg, back) << cfg.to_string();
    }
  }
}

TEST(Config, ParsesSplittingOptionsFromSpec) {
  const auto cfg = SolverConfig::from_string(
      "splitting=ssor:omega=1.2;m=4;params=lsq");
  EXPECT_EQ(cfg.splitting, "ssor");
  ASSERT_EQ(cfg.splitting_options.count("omega"), 1u);
  EXPECT_DOUBLE_EQ(cfg.splitting_options.at("omega"), 1.2);
  EXPECT_EQ(cfg.steps, 4);
  EXPECT_EQ(cfg.params, "lsq");
}

TEST(Config, RejectsUnknownSplittingStrategyAndFields) {
  EXPECT_THROW(SolverConfig::from_string("splitting=ilu"),
               std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("params=chebyshov"),
               std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("splitting=jacobi:omega=1"),
               std::invalid_argument);  // jacobi takes no omega
}

TEST(Config, RejectsOutOfRangeOmegaThroughParser) {
  EXPECT_THROW(SolverConfig::from_string("splitting=ssor:omega=0"),
               std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("splitting=ssor:omega=2"),
               std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("splitting=ssor:omega=-0.5"),
               std::invalid_argument);
  EXPECT_NO_THROW(SolverConfig::from_string("splitting=ssor:omega=1.9"));
}

TEST(Config, RejectsBadScalarFields) {
  EXPECT_THROW(SolverConfig::from_string("tol=0"), std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("tol=-1e-6"),
               std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("maxit=0"), std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("m=-1"), std::invalid_argument);
  EXPECT_THROW(SolverConfig::from_string("interval=1,0.5"),
               std::invalid_argument);
}

TEST(Config, FromCliReadsTheAdvertisedFlags) {
  const char* argv[] = {"prog",       "--splitting=ssor:omega=1.2",
                        "--m=4",      "--params=lsq",
                        "--tol=1e-8", "--ordering=natural"};
  const util::Cli cli(6, argv, SolverConfig::cli_flags());
  const auto cfg = SolverConfig::from_cli(cli);
  EXPECT_EQ(cfg.splitting, "ssor");
  EXPECT_DOUBLE_EQ(cfg.splitting_options.at("omega"), 1.2);
  EXPECT_EQ(cfg.steps, 4);
  EXPECT_EQ(cfg.params, "lsq");
  EXPECT_DOUBLE_EQ(cfg.tolerance, 1e-8);
  EXPECT_EQ(cfg.ordering, Ordering::kNatural);
  // Round-trip the CLI-built config too.
  EXPECT_EQ(cfg, SolverConfig::from_string(cfg.to_string()));
}

// ---- registries -------------------------------------------------------------

TEST(Registry, EveryBuiltinSplittingConstructs) {
  const fem::PoissonProblem prob(5, 5);
  const auto k = prob.matrix();
  const auto& reg = SplittingRegistry::instance();
  const auto names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "jacobi"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "ssor"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "richardson"),
            names.end());
  for (const auto& name : names) {
    const auto s = reg.create(name, k);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->size(), k.rows()) << name;
    const auto iv = reg.at(name).default_interval(k, {});
    EXPECT_LT(iv.lambda_min, iv.lambda_max) << name;
  }
}

TEST(Registry, EveryBuiltinStrategyProducesMAlphas) {
  const auto& reg = ParamStrategyRegistry::instance();
  const auto names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "ones"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lsq"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "minmax"), names.end());
  const core::SpectrumInterval iv{0.0, 1.0};
  for (const auto& name : names) {
    for (int m = 1; m <= 5; ++m) {
      const auto a = reg.alphas(name, m, iv);
      EXPECT_EQ(static_cast<int>(a.size()), m) << name;
    }
  }
}

TEST(Registry, SsorOmegaFlowsThroughFactory) {
  const fem::PoissonProblem prob(4, 4);
  const auto k = prob.matrix();
  const auto s = SplittingRegistry::instance().create("ssor", k,
                                                      {{"omega", 1.5}});
  const auto* ssor = dynamic_cast<const split::SsorSplitting*>(s.get());
  ASSERT_NE(ssor, nullptr);
  EXPECT_DOUBLE_EQ(ssor->omega(), 1.5);
  EXPECT_THROW(
      SplittingRegistry::instance().create("ssor", k, {{"omega", 2.5}}),
      std::invalid_argument);
}

TEST(Registry, UserRegisteredStrategyIsUsableFromConfigString) {
  ParamStrategyRegistry::instance().add(
      "halves", [](int m, core::SpectrumInterval) {
        return std::vector<double>(m, 0.5);
      });
  const auto cfg = SolverConfig::from_string("params=halves;m=3");
  EXPECT_EQ(cfg.params, "halves");
  const auto a =
      ParamStrategyRegistry::instance().alphas("halves", 3, {0.0, 1.0});
  EXPECT_EQ(a, (std::vector<double>{0.5, 0.5, 0.5}));
}

// ---- the solve pipeline ------------------------------------------------------

struct Plate {
  fem::PlateMesh mesh;
  la::CsrMatrix k;
  Vec f;
  color::ColorClasses classes;
};

Plate make_plate(int nodes) {
  fem::PlateMesh mesh = fem::PlateMesh::unit_square(nodes);
  auto sys = fem::assemble_plane_stress(mesh, fem::Material{1.0, 0.3, 1.0},
                                        fem::EdgeLoad{1.0, 0.0});
  auto classes = color::six_color_classes(mesh);
  return {std::move(mesh), std::move(sys.stiffness), std::move(sys.load),
          std::move(classes)};
}

// The acceptance-criterion golden test: the facade must reproduce the
// hand-wired quickstart pipeline (mesh -> assemble -> six-colour ordering
// -> Table 1 least-squares alphas -> Algorithm 2 -> Algorithm 1)
// iteration for iteration.
TEST(Solver, GoldenQuickstartEquivalence) {
  const Plate p = make_plate(30);

  // Hand-wired pipeline, exactly as examples/quickstart.cpp had it.
  const auto cs = color::make_colored_system(p.k, p.classes);
  const Vec fc = cs.permute(p.f);
  const auto alphas = core::least_squares_alphas(4, core::ssor_interval());
  const core::MulticolorMStepSsor prec(cs, alphas);
  core::PcgOptions opt;
  opt.tolerance = 1e-6;
  const auto hand = core::pcg_solve(cs.matrix, fc, prec, opt);

  // Facade, one config line.
  SolverConfig cfg;
  cfg.splitting = "ssor";
  cfg.steps = 4;
  cfg.params = "lsq";
  cfg.ordering = Ordering::kMulticolor;
  cfg.tolerance = 1e-6;
  const auto report =
      Solver::from_config(cfg).solve(p.k, p.f, p.classes);

  ASSERT_TRUE(hand.converged);
  ASSERT_TRUE(report.converged());
  EXPECT_EQ(report.iterations(), hand.iterations);
  EXPECT_EQ(report.result.inner_products, hand.inner_products);
  EXPECT_EQ(report.alphas, alphas);
  const Vec hand_u = cs.unpermute(hand.solution);
  for (index_t i = 0; i < p.k.rows(); ++i) {
    ASSERT_NEAR(report.solution[i], hand_u[i], 1e-14) << i;
  }
  EXPECT_TRUE(report.coloring.used);
  EXPECT_EQ(report.coloring.num_classes, 6);
}

TEST(Solver, DiaFormatMatchesCsrIterationForIteration) {
  const Plate p = make_plate(12);
  SolverConfig cfg;
  cfg.tolerance = 1e-8;
  const auto csr = Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  cfg.format = MatrixFormat::kDia;
  const auto dia = Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  ASSERT_TRUE(csr.converged());
  ASSERT_TRUE(dia.converged());
  EXPECT_EQ(dia.iterations(), csr.iterations());
  for (index_t i = 0; i < p.k.rows(); ++i) {
    ASSERT_NEAR(dia.solution[i], csr.solution[i], 1e-12);
  }
}

TEST(Solver, GreedyMatrixColoringSolvesWithoutMeshKnowledge) {
  // No classes supplied: the facade colours the matrix graph itself.
  const Plate p = make_plate(10);
  SolverConfig cfg;
  cfg.tolerance = 1e-8;
  const auto report = Solver::from_config(cfg).solve(p.k, p.f);
  ASSERT_TRUE(report.converged());
  EXPECT_TRUE(report.coloring.used);
  EXPECT_GE(report.coloring.num_classes, 2);
  // Solution agrees with a direct natural-ordering CG solve.
  core::PcgOptions opt;
  opt.tolerance = 1e-10;
  const auto ref = core::cg_solve(p.k, p.f, opt);
  for (index_t i = 0; i < p.k.rows(); ++i) {
    ASSERT_NEAR(report.solution[i], ref.solution[i], 1e-4);
  }
}

TEST(Solver, NaturalOrderingJacobiAndRichardsonRun) {
  const fem::PoissonProblem prob(8, 8);
  const auto k = prob.matrix();
  const Vec f(k.rows(), 1.0);
  for (const char* spec :
       {"splitting=jacobi;m=3;params=lsq;ordering=natural;tol=1e-8",
        "splitting=richardson:theta=0.2;m=2;params=lsq;ordering=natural;"
        "tol=1e-8"}) {
    const auto report = Solver::from_string(spec).solve(k, f);
    EXPECT_TRUE(report.converged()) << spec;
    EXPECT_EQ(static_cast<int>(report.alphas.size()), report.steps) << spec;
  }
}

TEST(Solver, ZeroStepsIsPlainCg) {
  const Plate p = make_plate(8);
  SolverConfig cfg;
  cfg.steps = 0;
  cfg.ordering = Ordering::kNatural;
  cfg.tolerance = 1e-8;
  const auto report = Solver::from_config(cfg).solve(p.k, p.f);
  const auto ref = core::cg_solve(p.k, p.f, cfg.pcg_options());
  ASSERT_TRUE(report.converged());
  EXPECT_EQ(report.iterations(), ref.iterations);
  EXPECT_EQ(report.preconditioner_name, "identity");
  EXPECT_TRUE(report.alphas.empty());
}

TEST(Solver, PreparedReusesThePipelineAcrossRightHandSides) {
  const Plate p = make_plate(10);
  SolverConfig cfg;
  cfg.tolerance = 1e-8;
  const auto solver = Solver::from_config(cfg);
  const auto prepared = solver.prepare(p.k, p.classes);
  const auto r1 = prepared.solve(p.f);
  Vec f2 = p.f;
  for (auto& v : f2) v *= 2.0;
  const auto r2 = prepared.solve(f2);
  ASSERT_TRUE(r1.converged());
  ASSERT_TRUE(r2.converged());
  // Linear system: doubled load, doubled displacement.
  for (index_t i = 0; i < p.k.rows(); ++i) {
    ASSERT_NEAR(r2.solution[i], 2.0 * r1.solution[i], 1e-6);
  }
  // Warm start from the exact solution converges immediately.
  const auto warm = prepared.solve(p.f, r1.solution);
  EXPECT_LE(warm.iterations(), 2);
}

TEST(Solver, PreparedSurvivesBeingMoved) {
  // Prepared's internals point into its own heap-held coloured system and
  // DIA matrix; moving the object must not dangle them.
  const Plate p = make_plate(8);
  SolverConfig cfg;
  cfg.tolerance = 1e-8;
  cfg.format = MatrixFormat::kDia;
  auto prepared = Solver::from_config(cfg).prepare(p.k, p.classes);
  const auto moved = std::move(prepared);
  const auto report = moved.solve(p.f);
  EXPECT_TRUE(report.converged());
}

TEST(Solver, ReportCarriesPlannerHooks) {
  const Plate p = make_plate(8);
  SolverConfig cfg;
  cfg.steps = 3;
  cfg.tolerance = 1e-6;
  const auto report = Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  const core::StepCostModel costs{2.0, 0.5};
  EXPECT_DOUBLE_EQ(
      report.predicted_seconds(costs),
      report.iterations() * (costs.a_seconds + 3 * costs.b_seconds));
}

TEST(Solver, OmegaSweepChangesTheOperator) {
  const Plate p = make_plate(8);
  SolverConfig cfg;
  cfg.splitting_options["omega"] = 1.5;
  cfg.tolerance = 1e-8;
  const auto r15 = Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  cfg.splitting_options["omega"] = 1.0;
  const auto r10 = Solver::from_config(cfg).solve(p.k, p.f, p.classes);
  EXPECT_TRUE(r15.converged());
  EXPECT_TRUE(r10.converged());
  // omega = 1 takes the Algorithm-2 fast path, omega != 1 the generic
  // engine; both must solve the same system.
  for (index_t i = 0; i < p.k.rows(); ++i) {
    ASSERT_NEAR(r15.solution[i], r10.solution[i], 1e-4);
  }
}

// ---- pcg input validation (satellite) ---------------------------------------

TEST(PcgValidation, RejectsBadTolerancesAndLimits) {
  const fem::PoissonProblem prob(4, 4);
  const auto k = prob.matrix();
  const Vec f(k.rows(), 1.0);
  core::PcgOptions opt;
  opt.tolerance = 0.0;
  EXPECT_THROW((void)core::cg_solve(k, f, opt), std::invalid_argument);
  opt.tolerance = -1e-8;
  EXPECT_THROW((void)core::cg_solve(k, f, opt), std::invalid_argument);
  opt.tolerance = 1e-8;
  opt.max_iterations = 0;
  EXPECT_THROW((void)core::cg_solve(k, f, opt), std::invalid_argument);
  opt.max_iterations = -3;
  EXPECT_THROW((void)core::cg_solve(k, f, opt), std::invalid_argument);
}

TEST(PcgValidation, RejectsMismatchedInitialGuess) {
  const fem::PoissonProblem prob(4, 4);
  const auto k = prob.matrix();
  const Vec f(k.rows(), 1.0);
  const Vec bad(k.rows() + 1, 0.0);
  EXPECT_THROW((void)core::cg_solve(k, f, {}, nullptr, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace mstep::solver
