#include "shard/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace mstep::shard {

ShardPlan ShardPlan::build(const std::vector<index_t>& class_start,
                           int requested_shards) {
  if (class_start.size() < 2) {
    throw std::invalid_argument("ShardPlan: need at least one class");
  }
  const int nc = static_cast<int>(class_start.size()) - 1;
  index_t widest = 0;
  for (int c = 0; c < nc; ++c) {
    widest = std::max(widest, class_start[c + 1] - class_start[c]);
  }

  ShardPlan plan;
  plan.class_start_ = class_start;
  // Graceful clamp: more shards than rows in the widest color block would
  // strand a shard with no work at all.
  plan.shards_ = std::max(
      1, std::min<int>(requested_shards, static_cast<int>(widest)));

  const int s_count = plan.shards_;
  plan.bounds_.resize(static_cast<std::size_t>(nc) * (s_count + 1));
  plan.owner_.assign(class_start.back(), 0);
  for (int c = 0; c < nc; ++c) {
    const index_t base = class_start[c];
    const index_t len = class_start[c + 1] - base;
    index_t* b = plan.bounds_.data() +
                 static_cast<std::size_t>(c) * (s_count + 1);
    // The femsim strip rule (owner of node k of `total` is k*p/total),
    // inverted into strip boundaries: shard s starts at ceil(s*len/S).
    for (int s = 0; s <= s_count; ++s) {
      b[s] = base + (static_cast<index_t>(s) * len + s_count - 1) / s_count;
    }
    b[s_count] = base + len;
    for (int s = 0; s < s_count; ++s) {
      for (index_t i = b[s]; i < b[s + 1]; ++i) plan.owner_[i] = s;
    }
  }
  return plan;
}

}  // namespace mstep::shard
