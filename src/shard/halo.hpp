// Halo exchange plan + ghost mailboxes for the sharded multicolor sweep.
//
// A shard's class-c sweep phase reads z at off-shard rows: the
// strictly-lower couplings (classes < c, read by every forward phase) and
// the strictly-upper couplings (classes > c, read by the backward phases
// of classes 0..nc-2; the last class's upper block is never summed — see
// core/multicolor_mstep.cpp).  HaloPlan precomputes, per directed shard
// edge and per class, EXACTLY that ghost-row set — no over-fetch (a row
// no phase reads), no under-fetch (a stale ghost would change bits, which
// is what tests/test_shard.cpp's equivalence matrix would catch).
//
// GhostMailbox is the staging buffer of one directed edge x class: the
// owner gathers its freshly-updated boundary values into the payload
// (post), the neighbor scatters them into its local replica one phase
// later (take).  Phases are pool-barrier separated and no class is
// updated in two consecutive phases, so a single payload per (edge,
// class) is never posted and taken concurrently.  A debug-mode FNV-1a
// checksum over the payload bytes is verified at take(); the transport
// is in-process today, but the checksum pins the contract the future
// socket transport must keep.
#pragma once

#include <cstdint>
#include <vector>

#include "color/coloring.hpp"
#include "la/vector.hpp"
#include "shard/partition.hpp"

namespace mstep::shard {

/// One directed edge's staging buffer for one class.
class GhostMailbox {
 public:
  explicit GhostMailbox(std::size_t size) : payload_(size, 0.0) {}

  /// Gather z at `rows` into the payload and stamp the checksum.
  void post(const Vec& z, const std::vector<index_t>& rows);

  /// Scatter the payload into `zloc` at `rows`; with `verify`, recompute
  /// the checksum first and throw std::runtime_error on mismatch.
  void take(Vec& zloc, const std::vector<index_t>& rows, bool verify) const;

  /// Test hook: the corruption test flips payload bytes between post and
  /// take to prove the checksum actually guards the exchange.
  [[nodiscard]] std::vector<double>& payload() { return payload_; }

 private:
  std::vector<double> payload_;
  std::uint64_t checksum_ = 0;
};

/// All ghost-row index sets of one ShardPlan on one colored matrix.
class HaloPlan {
 public:
  HaloPlan() = default;
  /// `splits` must be compute_row_splits(cs) — the lower/upper column
  /// split the sweeps themselves run on.
  HaloPlan(const color::ColoredSystem& cs, const ShardPlan& plan,
           const color::RowSplits& splits);

  /// Ghost rows shard `to` needs from shard `from`, restricted to class
  /// `c` (sorted, duplicate-free).  Empty when the shards share no
  /// boundary in that class — an "empty-boundary" edge is legal.
  [[nodiscard]] const std::vector<index_t>& recv_rows(int to, int from,
                                                      int c) const {
    return recv_[index(to, from, c)];
  }
  /// What `from` must send to `to` for class `c` — the same row set, read
  /// from the sender's side.
  [[nodiscard]] const std::vector<index_t>& send_rows(int from, int to,
                                                      int c) const {
    return recv_[index(to, from, c)];
  }

  /// Boundary rows shard `s` owns in class `c`: owned rows some other
  /// shard receives.  Sorted; the sweep updates these first so the post
  /// overlaps the interior update.
  [[nodiscard]] const std::vector<index_t>& boundary_rows(int s,
                                                          int c) const {
    return boundary_[static_cast<std::size_t>(s) * num_classes_ + c];
  }

  [[nodiscard]] int num_shards() const { return num_shards_; }
  [[nodiscard]] int num_classes() const { return num_classes_; }

  /// Total ghost rows shard `s` receives across all edges and classes
  /// (the halo volume; 0 means the shard's region is fully interior).
  [[nodiscard]] std::size_t ghost_count(int s) const;

 private:
  [[nodiscard]] std::size_t index(int to, int from, int c) const {
    return (static_cast<std::size_t>(to) * num_shards_ + from) *
               num_classes_ +
           c;
  }

  int num_shards_ = 0;
  int num_classes_ = 0;
  std::vector<std::vector<index_t>> recv_;      // [to][from][class]
  std::vector<std::vector<index_t>> boundary_;  // [shard][class]
};

}  // namespace mstep::shard
