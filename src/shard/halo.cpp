#include "shard/halo.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace mstep::shard {

namespace {

// FNV-1a over the payload bytes — the same hash family the serve layer
// uses for content fingerprints.
std::uint64_t fnv1a(const std::vector<double>& payload) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const double v : payload) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &v, sizeof(double));
    for (const unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

void GhostMailbox::post(const Vec& z, const std::vector<index_t>& rows) {
  for (std::size_t k = 0; k < rows.size(); ++k) payload_[k] = z[rows[k]];
  checksum_ = fnv1a(payload_);
}

void GhostMailbox::take(Vec& zloc, const std::vector<index_t>& rows,
                        bool verify) const {
  if (verify && fnv1a(payload_) != checksum_) {
    throw std::runtime_error(
        "GhostMailbox: checksum mismatch - ghost payload corrupted in "
        "transit");
  }
  for (std::size_t k = 0; k < rows.size(); ++k) zloc[rows[k]] = payload_[k];
}

HaloPlan::HaloPlan(const color::ColoredSystem& cs, const ShardPlan& plan,
                   const color::RowSplits& splits)
    : num_shards_(plan.num_shards()), num_classes_(plan.num_classes()) {
  if (cs.size() != plan.rows()) {
    throw std::invalid_argument("HaloPlan: plan does not match system size");
  }
  const int nc = num_classes_;
  const int ns = num_shards_;
  const auto& rp = cs.matrix.row_ptr();
  const auto& col = cs.matrix.col_idx();

  // class_of by binary search over class_start.
  const auto& cls_start = plan.class_start();
  const auto class_of = [&](index_t row) {
    return static_cast<int>(std::upper_bound(cls_start.begin() + 1,
                                             cls_start.end(), row) -
                            (cls_start.begin() + 1));
  };

  recv_.assign(static_cast<std::size_t>(ns) * ns * nc, {});
  boundary_.assign(static_cast<std::size_t>(ns) * nc, {});

  // Mark exactly the columns the sweep phases read: the lower split of
  // every row, plus the upper split of rows outside the last class.
  for (index_t i = 0; i < cs.size(); ++i) {
    const int s = plan.owner_of(i);
    const int ci = class_of(i);
    const auto scan = [&](index_t from, index_t to) {
      for (index_t k = from; k < to; ++k) {
        const index_t j = col[k];
        const int t = plan.owner_of(j);
        if (t == s) continue;
        recv_[index(s, t, class_of(j))].push_back(j);
      }
    };
    scan(rp[i], splits.lo_end[i]);
    if (ci != nc - 1) scan(splits.up_begin[i], rp[i + 1]);
  }

  for (auto& rows : recv_) {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }

  // Sender-side view: owned rows that appear in anyone's recv list.
  for (int from = 0; from < ns; ++from) {
    for (int c = 0; c < nc; ++c) {
      std::vector<index_t> rows;
      for (int to = 0; to < ns; ++to) {
        const auto& r = recv_[index(to, from, c)];
        rows.insert(rows.end(), r.begin(), r.end());
      }
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      boundary_[static_cast<std::size_t>(from) * nc + c] = std::move(rows);
    }
  }
}

std::size_t HaloPlan::ghost_count(int s) const {
  std::size_t total = 0;
  for (int from = 0; from < num_shards_; ++from) {
    for (int c = 0; c < num_classes_; ++c) {
      total += recv_[index(s, from, c)].size();
    }
  }
  return total;
}

}  // namespace mstep::shard
