// Region partitioning for the sharded execution backend.
//
// The paper's machine is an array of processors each owning a region of
// the mesh, with "an equal distribution of each color" per processor.
// ShardPlan realizes that rule on the color-permuted system: every color
// block (class) is cut into `shards` contiguous strips by the SAME
// equal-strip rule femsim::coordinate_strip_owner uses for mesh nodes
// (owner of the k-th of `len` rows is k * shards / len), so each shard
// owns one contiguous row range per class — a "region" in the permuted
// ordering.  Contiguity is what lets every sharded kernel run the
// unmodified serial kernels on sub-ranges, which is the whole bitwise
// story.
#pragma once

#include <vector>

#include "la/vector.hpp"

namespace mstep::shard {

/// Contiguous per-class row strips for every shard.
///
/// Clamping: a requested shard count larger than the widest color block
/// would leave some shard without a single row anywhere; build() clamps
/// to the widest class size (and to 1 from below), so `num_shards()` is
/// the EFFECTIVE count — callers surface it (SolveReport::shards) so the
/// clamp is observable.  Per-class empty strips (class narrower than the
/// shard count) are legal and expected.
class ShardPlan {
 public:
  /// `class_start` is color::ColoredSystem::class_start (size nc + 1).
  static ShardPlan build(const std::vector<index_t>& class_start,
                         int requested_shards);

  [[nodiscard]] int num_shards() const { return shards_; }
  [[nodiscard]] int num_classes() const {
    return static_cast<int>(class_start_.size()) - 1;
  }
  [[nodiscard]] index_t rows() const { return class_start_.back(); }

  /// Row range [begin, end) shard `s` owns inside class `c`.
  [[nodiscard]] index_t begin(int s, int c) const {
    return bounds_[static_cast<std::size_t>(c) * (shards_ + 1) + s];
  }
  [[nodiscard]] index_t end(int s, int c) const {
    return bounds_[static_cast<std::size_t>(c) * (shards_ + 1) + s + 1];
  }

  /// Owning shard of a (permuted) row.
  [[nodiscard]] int owner_of(index_t row) const { return owner_[row]; }

  [[nodiscard]] const std::vector<index_t>& class_start() const {
    return class_start_;
  }

 private:
  int shards_ = 1;
  std::vector<index_t> class_start_;
  std::vector<index_t> bounds_;  // (shards + 1) boundaries per class
  std::vector<int> owner_;       // per permuted row
};

}  // namespace mstep::shard
