// Sharded multicolor m-step SSOR sweep — the paper's machine made real.
//
// Each shard owns one contiguous strip of every color block (ShardPlan)
// and keeps a full-length local replica of z whose off-shard entries are
// ONLY ever written by halo exchange (HaloPlan + GhostMailbox).  The
// sweep runs as a sequence of lockstep phases: one pool dispatch over all
// shards per class update, with the pool rendezvous as the inter-phase
// barrier.  Shard bodies never block on each other, so any shards x
// threads combination is deadlock-free (7 shards on a 1-thread pool just
// runs the bodies sequentially).
//
// Inside a phase a shard: (1) drains the mailboxes of the class updated
// in the previous phase into its replica, (2) computes its strip's
// segment sums FROM THE REPLICA, (3) updates its boundary rows and posts
// them, then (4) updates its interior rows — the halo send overlaps the
// interior work.  Reading the replica instead of the shared z is what
// makes the halo plan load-bearing: an under-fetched ghost row would
// leave stale bits in the replica and break the bitwise-vs-serial
// equivalence tests/test_shard.cpp asserts.
//
// Determinism: every per-row kernel is the serial sweep's kernel
// (la::simd::sell_neg_slices is bitwise -row_dot per row regardless of
// slicing), every row is written by exactly one shard, and phase order is
// the serial class order — so the sharded apply is bitwise identical to
// core::MulticolorMStepSsor::apply for any shard count, and emits the
// identical KernelLog stream.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "color/coloring.hpp"
#include "core/kernel_log.hpp"
#include "core/preconditioner.hpp"
#include "la/sell_matrix.hpp"
#include "par/thread_pool.hpp"
#include "shard/halo.hpp"
#include "shard/partition.hpp"

namespace mstep::shard {

class ShardedMulticolorMStepSsor final : public core::Preconditioner {
 public:
  /// Debug builds verify every ghost payload's checksum at take-time.
#ifndef NDEBUG
  static constexpr bool kVerifyHaloDefault = true;
#else
  static constexpr bool kVerifyHaloDefault = false;
#endif

  /// `verify_halo` turns on the per-take checksum check (tests force it
  /// on to exercise the corruption path).
  ShardedMulticolorMStepSsor(const color::ColoredSystem& cs,
                             std::vector<double> alphas,
                             const ShardPlan& plan, par::ThreadPool& pool,
                             core::KernelLog* log = nullptr,
                             bool verify_halo = kVerifyHaloDefault);

  [[nodiscard]] index_t size() const override { return cs_->size(); }
  void apply(const Vec& r, Vec& z) const override;
  [[nodiscard]] int steps() const override {
    return static_cast<int>(alphas_.size());
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] const HaloPlan& halo() const { return halo_; }

 private:
  struct Phase;
  void run_phase(const Phase& phase, const Vec& r, Vec& z) const;

  const color::ColoredSystem* cs_;
  std::vector<double> alphas_;
  par::ThreadPool* pool_;
  core::KernelLog* log_;
  bool verify_halo_;
  color::RowSplits splits_;
  color::ClassDiagonalCensus census_;
  ShardPlan plan_;
  HaloPlan halo_;

  // Per shard, per class: the strip's strictly-lower / strictly-upper
  // SELL segments (the serial kernels, restricted to owned rows).
  std::vector<std::vector<la::SellSegments>> lower_;  // [shard][class]
  std::vector<std::vector<la::SellSegments>> upper_;

  // Mailboxes and scratch are mutable: apply() is logically const but
  // stages per-phase state through them (same pattern as the serial
  // sweep's y_/xl_ scratch).
  mutable std::vector<GhostMailbox> mail_;  // [to][from][class], recv-sized
  mutable std::vector<Vec> zloc_;           // per-shard replica of z
  mutable Vec y_;
  mutable Vec xl_;

  [[nodiscard]] GhostMailbox& mailbox(int to, int from, int c) const {
    return mail_[(static_cast<std::size_t>(to) * plan_.num_shards() + from) *
                     plan_.num_classes() +
                 c];
  }
};

}  // namespace mstep::shard
