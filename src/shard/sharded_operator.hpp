// Region-sharded SpMV: the solve loop's K*p products dispatched over the
// shard plan's per-class row strips, one pool task per shard.
//
// Unlike the sweep, SpMV has no inter-class data dependence — x is fully
// formed before the product starts — so no halo staging is needed here;
// each shard reads x directly and writes only its owned rows (CSR/DIA) or
// its slice strip (SELL, whose sigma-sorted slices interleave rows across
// shard boundaries, so the strip partition follows slices instead of the
// ownership map).  Every per-row/per-element kernel is the serial one on
// a sub-range, so the product is bitwise identical to the serial operator
// for any shard count.
//
// The Execution-policy multiply overloads intentionally ignore the passed
// policy: when a sharded backend is configured, the shard plan IS the
// work partition, and mixing two partitions of the same product would
// serve no purpose.
#pragma once

#include "la/linear_operator.hpp"
#include "par/thread_pool.hpp"
#include "shard/partition.hpp"

namespace mstep::shard {

class ShardedOperator final : public la::LinearOperator {
 public:
  ShardedOperator(const la::CsrMatrix& a, const ShardPlan& plan,
                  par::ThreadPool& pool)
      : csr_(&a), plan_(&plan), pool_(&pool) {}
  ShardedOperator(const la::DiaMatrix& a, const ShardPlan& plan,
                  par::ThreadPool& pool)
      : dia_(&a), plan_(&plan), pool_(&pool) {}
  ShardedOperator(const la::SellMatrix& a, const ShardPlan& plan,
                  par::ThreadPool& pool)
      : sell_(&a), plan_(&plan), pool_(&pool) {}

  [[nodiscard]] index_t rows() const override;
  void multiply(const Vec& x, Vec& y) const override {
    run(x, y, /*subtract=*/false);
  }
  void multiply_sub(const Vec& x, Vec& y) const override {
    run(x, y, /*subtract=*/true);
  }
  void multiply(const Vec& x, Vec& y,
                const par::Execution& exec) const override {
    (void)exec;
    run(x, y, /*subtract=*/false);
  }
  void multiply_sub(const Vec& x, Vec& y,
                    const par::Execution& exec) const override {
    (void)exec;
    run(x, y, /*subtract=*/true);
  }
  [[nodiscard]] index_t num_nonzero_diagonals() const override;

 private:
  void run(const Vec& x, Vec& y, bool subtract) const;

  const la::CsrMatrix* csr_ = nullptr;
  const la::DiaMatrix* dia_ = nullptr;
  const la::SellMatrix* sell_ = nullptr;
  const ShardPlan* plan_;
  par::ThreadPool* pool_;
};

}  // namespace mstep::shard
