#include "shard/sharded_sweep.hpp"

#include <cassert>
#include <stdexcept>

#include "la/simd.hpp"
#include "obs/trace.hpp"

namespace mstep::shard {

// One lockstep phase: which class to update (or save/final-solve) and
// which class's mailboxes to drain first — statically the class the
// previous phase updated, which is exactly when its ghosts become stale.
struct ShardedMulticolorMStepSsor::Phase {
  enum Kind { kForward, kBackward, kSave, kFinal } kind;
  int cls;        // class updated (kForward/kBackward/kFinal) or 0 (kSave)
  int drain_cls;  // class to drain at phase start; -1 for none
  double alpha;   // step coefficient (kForward/kBackward/kFinal)
};

ShardedMulticolorMStepSsor::ShardedMulticolorMStepSsor(
    const color::ColoredSystem& cs, std::vector<double> alphas,
    const ShardPlan& plan, par::ThreadPool& pool, core::KernelLog* log,
    bool verify_halo)
    : cs_(&cs), alphas_(std::move(alphas)), pool_(&pool), log_(log),
      verify_halo_(verify_halo), splits_(color::compute_row_splits(cs)),
      census_(color::compute_class_diagonal_census(cs, splits_)),
      plan_(plan), halo_(cs, plan_, splits_) {
  if (alphas_.empty()) {
    throw std::invalid_argument("ShardedMulticolorMStepSsor: need m >= 1");
  }
  const int nc = cs.num_classes();
  const int ns = plan_.num_shards();
  const auto& rp = cs.matrix.row_ptr();

  // The serial sweep's per-class SELL segments, restricted to each
  // shard's strip: sell_neg_slices is bitwise -row_dot per row however
  // the rows are sliced, so a strip's sums equal the whole-class sums.
  lower_.resize(ns);
  upper_.resize(ns);
  for (int s = 0; s < ns; ++s) {
    lower_[s].reserve(nc);
    upper_[s].reserve(nc);
    for (int c = 0; c < nc; ++c) {
      lower_[s].push_back(la::SellSegments::build(
          cs.matrix, rp.data(), splits_.lo_end.data(), plan_.begin(s, c),
          plan_.end(s, c)));
      upper_[s].push_back(la::SellSegments::build(
          cs.matrix, splits_.up_begin.data(), rp.data() + 1,
          plan_.begin(s, c), plan_.end(s, c)));
    }
  }

  mail_.reserve(static_cast<std::size_t>(ns) * ns * nc);
  for (int to = 0; to < ns; ++to) {
    for (int from = 0; from < ns; ++from) {
      for (int c = 0; c < nc; ++c) {
        mail_.emplace_back(halo_.recv_rows(to, from, c).size());
      }
    }
  }
  zloc_.resize(ns);
}

void ShardedMulticolorMStepSsor::run_phase(const Phase& phase, const Vec& r,
                                           Vec& z) const {
  const int ns = plan_.num_shards();
  const int nc = plan_.num_classes();
  const int c = phase.cls;
  const double a = phase.alpha;

  pool_->for_each(0, ns, [&](index_t shard_idx) {
    const int sh = static_cast<int>(shard_idx);
    const obs::Span shard_span("shard");
    Vec& zl = zloc_[sh];

    // (1) Receive: drain the previous phase's class into the replica.
    // Every shard drains every phase — even one with no rows to update —
    // so a mailbox is always consumed before its next post overwrites it.
    if (phase.drain_cls >= 0) {
      for (int from = 0; from < ns; ++from) {
        const auto& rows = halo_.recv_rows(sh, from, phase.drain_cls);
        if (rows.empty()) continue;
        const obs::Span halo_span("halo_exchange");
        mailbox(sh, from, phase.drain_cls).take(zl, rows, verify_halo_);
        obs::count(obs::Counter::kHaloExchanges, 1);
        obs::count(obs::Counter::kHaloDoubles,
                   static_cast<long long>(rows.size()));
      }
    }

    const index_t row_begin = plan_.begin(sh, c);
    const index_t row_end = plan_.end(sh, c);

    if (phase.kind == Phase::kSave) {
      // Class 0's upper sums scatter straight into y (the save phase).
      const la::SellSegments& segs = upper_[sh][0];
      la::simd::sell_neg_slices(segs.view(), zl.data(), y_.data(), 0,
                                segs.num_slices());
      return;
    }
    if (phase.kind == Phase::kFinal) {
      for (index_t i = row_begin; i < row_end; ++i) {
        z[i] = (y_[i] + alphas_[0] * r[i]) / splits_.diag[i];
      }
      return;
    }
    if (row_begin == row_end && halo_.boundary_rows(sh, c).empty()) return;

    // (2) Segment sums from the local replica.
    const la::SellSegments& segs =
        (phase.kind == Phase::kForward ? lower_ : upper_)[sh][c];
    la::simd::sell_neg_slices(segs.view(), zl.data(), xl_.data(), 0,
                              segs.num_slices());

    const bool last = phase.kind == Phase::kForward && c == nc - 1;
    const auto update_row = [&](index_t i) {
      const double x = xl_[i];
      z[i] = (x + y_[i] + a * r[i]) / splits_.diag[i];
      zl[i] = z[i];
      y_[i] = last ? 0.0 : x;
    };

    // (3) Boundary rows first, then post — the send overlaps (4).
    const std::vector<index_t>& boundary = halo_.boundary_rows(sh, c);
    for (const index_t i : boundary) update_row(i);
    for (int to = 0; to < ns; ++to) {
      const auto& rows = halo_.send_rows(sh, to, c);
      if (rows.empty()) continue;
      const obs::Span halo_span("halo_exchange");
      mailbox(to, sh, c).post(z, rows);
    }

    // (4) Interior rows: the owned strip minus the (sorted) boundary.
    std::size_t b = 0;
    for (index_t i = row_begin; i < row_end; ++i) {
      if (b < boundary.size() && boundary[b] == i) {
        ++b;
        continue;
      }
      update_row(i);
    }
  });
}

void ShardedMulticolorMStepSsor::apply(const Vec& r, Vec& z) const {
  const index_t n = cs_->size();
  assert(static_cast<index_t>(r.size()) == n);
  const int m = static_cast<int>(alphas_.size());
  const int nc = cs_->num_classes();
  const int ns = plan_.num_shards();

  z.assign(n, 0.0);
  y_.assign(n, 0.0);
  xl_.resize(n);  // written per class before it is read
  for (int s = 0; s < ns; ++s) zloc_[s].assign(n, 0.0);

  // Emitted from the calling thread after each phase — the exact stream
  // of the serial MulticolorMStepSsor.
  auto log_class = [&](int c, bool is_lower) {
    if (!log_) return;
    const index_t len = cs_->class_size(c);
    log_->spmv_diagonals(len, is_lower ? census_.lower[c] : census_.upper[c]);
    log_->vec_op(len, 3);
    log_->diag_op(len);
  };

  for (int s = 1; s <= m; ++s) {
    const obs::Span sweep_span("sweep");
    const double a = alphas_[m - s];
    // Forward half-sweep.  F(0) drains nothing: the preceding phase (the
    // previous step's save) updates no z class.
    for (int c = 0; c < nc; ++c) {
      run_phase({Phase::kForward, c, c - 1, a}, r, z);
      log_class(c, /*is_lower=*/true);
    }
    // Backward half-sweep nc-2..1; B(c) drains c+1 (updated by F(nc-1)
    // respectively B(c+1), always the immediately preceding phase).
    for (int c = nc - 2; c >= 1; --c) {
      run_phase({Phase::kBackward, c, c + 1, a}, r, z);
      log_class(c, /*is_lower=*/false);
    }
    // Class-0 save; drains the class the previous phase updated.
    run_phase({Phase::kSave, 0, nc >= 2 ? 1 : 0, a}, r, z);
    if (log_) {
      log_->spmv_diagonals(cs_->class_size(0), census_.upper[0]);
      log_->end_precond_step();
    }
  }
  // Final deferred class-0 solve with alpha_0: reads only owned y and r.
  run_phase({Phase::kFinal, 0, -1, alphas_[0]}, r, z);
  if (log_) {
    log_->vec_op(cs_->class_size(0), 2);
    log_->diag_op(cs_->class_size(0));
  }
}

std::string ShardedMulticolorMStepSsor::name() const {
  return "sharded-multicolor-ssor-m" + std::to_string(alphas_.size()) + "-s" +
         std::to_string(plan_.num_shards());
}

}  // namespace mstep::shard
