#include "shard/sharded_operator.hpp"

#include <algorithm>
#include <cassert>

#include "la/simd.hpp"
#include "obs/trace.hpp"

namespace mstep::shard {

index_t ShardedOperator::rows() const {
  if (csr_) return csr_->rows();
  if (dia_) return dia_->rows();
  return sell_->rows();
}

index_t ShardedOperator::num_nonzero_diagonals() const {
  if (csr_) return csr_->num_nonzero_diagonals();
  if (dia_) return dia_->num_diagonals();
  return sell_->num_nonzero_diagonals();
}

void ShardedOperator::run(const Vec& x, Vec& y, bool subtract) const {
  const index_t n = rows();
  assert(static_cast<index_t>(x.size()) == n);
  const int ns = plan_->num_shards();
  const int nc = plan_->num_classes();

  if (subtract) {
    assert(static_cast<index_t>(y.size()) == n);
  } else if (dia_) {
    y.assign(n, 0.0);  // DIA accumulates diagonal triads into y
  } else {
    y.resize(n);
  }

  if (sell_) {
    // Sigma-sorted slices interleave rows across the ownership map;
    // partition the slice range itself with the same equal-strip rule.
    const index_t num_slices = sell_->num_slices();
    pool_->for_each(0, ns, [&](index_t shard_idx) {
      const obs::Span shard_span("shard");
      const int s = static_cast<int>(shard_idx);
      const index_t b = (static_cast<index_t>(s) * num_slices + ns - 1) / ns;
      const index_t e =
          (static_cast<index_t>(s + 1) * num_slices + ns - 1) / ns;
      la::simd::sell_spmv_slices(sell_->view(), x.data(), y.data(), b, e,
                                 subtract);
    });
    return;
  }

  pool_->for_each(0, ns, [&](index_t shard_idx) {
    const obs::Span shard_span("shard");
    const int s = static_cast<int>(shard_idx);
    for (int c = 0; c < nc; ++c) {
      const index_t b = plan_->begin(s, c);
      const index_t e = plan_->end(s, c);
      if (b == e) continue;
      if (csr_) {
        la::simd::csr_spmv_rows(csr_->row_ptr().data(),
                                csr_->col_idx().data(),
                                csr_->values().data(), x.data(), y.data(), b,
                                e, subtract);
        continue;
      }
      // The Execution DIA pattern on the strip: accumulate the diagonals
      // in offset order, which per element is the serial order.
      const auto& offsets = dia_->offsets();
      const auto& diags = dia_->diagonals();
      for (std::size_t d = 0; d < offsets.size(); ++d) {
        const index_t off = offsets[d];
        const std::vector<double>& v = diags[d];
        const index_t lo = std::max(b, std::max<index_t>(0, -off));
        const index_t hi = std::min(e, std::min<index_t>(n, n - off));
        la::simd::dia_triad(v.data(), x.data(), y.data(), lo, hi, off,
                            subtract);
      }
    }
  });
}

}  // namespace mstep::shard
