// Driver that reproduces Table 2: iterations and modelled CYBER seconds of
// the m-step SSOR PCG method on the unit-square plane-stress plate, for a
// sweep of m (parametrized and unparametrized) and plate sizes.
#pragma once

#include <optional>
#include <vector>

#include "cyber/vector_model.hpp"

namespace mstep::cyber {

struct Table2Row {
  int m = 0;                 // preconditioner steps (0 = plain CG)
  bool parametrized = false;  // least-squares alphas vs all-ones
  int iterations = 0;
  double model_seconds = 0.0;
  bool converged = false;
  long long inner_products = 0;
};

struct Table2Column {
  int a = 0;                 // rows of nodes (paper: a = 20, 41, 62, 80)
  index_t n = 0;             // system dimension 2 a (a-1)
  index_t max_vector_len = 0;  // ~ a^2 / 3 (largest colour class)
  std::vector<Table2Row> rows;
};

struct Table2Options {
  std::vector<int> plate_sizes = {20, 41, 62, 80};
  int max_m = 10;
  /// m values below this run both parametrized and unparametrized; above,
  /// only parametrized (matching the paper's "P" rows).
  int both_variants_up_to = 3;
  double tolerance = 1e-4;  // on |u(k+1) - u(k)|_inf
  CyberParams machine;
};

/// Run the full sweep.  Iteration counts come from the actual solver; times
/// from the CYBER model.
[[nodiscard]] std::vector<Table2Column> run_table2(const Table2Options& opt);

/// Per-iteration cost decomposition of eq. (4.1): A = seconds per outer CG
/// iteration (everything except preconditioner steps), B = seconds per
/// preconditioner step, measured from the model on one solve.
struct CostDecomposition {
  double a_seconds = 0.0;
  double b_seconds = 0.0;
};

[[nodiscard]] CostDecomposition measure_cost_decomposition(
    int plate_size, const CyberParams& machine);

}  // namespace mstep::cyber
