// The CYBER storage layout of Section 3.1.
//
// "To achieve the maximum vector length ... the u equations at the Red
// nodes (left to right, bottom to top) INCLUDING THE CONSTRAINED NODES are
// numbered first, followed by the corresponding v equations ..., [which]
// increases the vector length ...  Of course, the actual updating of the
// storage locations corresponding to these constrained nodes is prohibited
// by the control vector feature on this machine."
//
// This module builds that padded layout: six contiguous classes
// (R-u, R-v, B-u, B-v, G-u, G-v) over ALL nodes of each colour, with a 0/1
// control vector marking the live slots.  The padded class length is the
// paper's "maximum vector length" v ~ a^2/3; the compressed layout (only
// unconstrained equations) is what the rest of the library uses, and
// expand()/compress() map between them.
#pragma once

#include <vector>

#include "fem/plate_mesh.hpp"
#include "la/vector.hpp"

namespace mstep::cyber {

class MaskedLayout {
 public:
  static MaskedLayout build(const fem::PlateMesh& mesh);

  /// Total padded storage (2 x number of nodes).
  [[nodiscard]] index_t padded_size() const {
    return static_cast<index_t>(eq_of_slot_.size());
  }
  /// The paper's v: the longest (padded) class.
  [[nodiscard]] index_t max_class_length() const;

  [[nodiscard]] int num_classes() const {
    return static_cast<int>(class_start_.size()) - 1;
  }
  [[nodiscard]] index_t class_length(int k) const {
    return class_start_[k + 1] - class_start_[k];
  }

  /// Control vector: 1 for live (unconstrained) slots, 0 for suppressed.
  [[nodiscard]] const std::vector<char>& control() const { return control_; }

  /// Equation id stored at a padded slot; -1 for suppressed slots.
  [[nodiscard]] index_t equation_at(index_t slot) const {
    return eq_of_slot_[slot];
  }
  /// Padded slot of an equation id.
  [[nodiscard]] index_t slot_of(index_t eq) const { return slot_of_eq_[eq]; }

  /// Scatter a compressed (equation-indexed) vector into padded storage;
  /// suppressed slots read 0.
  [[nodiscard]] Vec expand(const Vec& compressed) const;
  /// Gather padded storage back to the compressed vector.
  [[nodiscard]] Vec compress(const Vec& padded) const;

  /// Fraction of padded slots that are live — the efficiency the control
  /// vector trades for contiguity.
  [[nodiscard]] double live_fraction() const;

 private:
  std::vector<index_t> eq_of_slot_;
  std::vector<index_t> slot_of_eq_;
  std::vector<char> control_;
  std::vector<index_t> class_start_;
};

}  // namespace mstep::cyber
