#include "cyber/masked_layout.hpp"

#include <algorithm>

namespace mstep::cyber {

MaskedLayout MaskedLayout::build(const fem::PlateMesh& mesh) {
  MaskedLayout layout;
  layout.slot_of_eq_.assign(mesh.num_equations(), -1);
  layout.class_start_.push_back(0);

  // Classes in the paper's order: colour-major (R, B, G), dof within.
  for (int color = 0; color < 3; ++color) {
    for (int dof = 0; dof < 2; ++dof) {
      // "left to right, bottom to top" over ALL nodes of the colour.
      for (int r = 0; r < mesh.nrows(); ++r) {
        for (int c = 0; c < mesh.ncols(); ++c) {
          const index_t node = mesh.node_id(r, c);
          if (static_cast<int>(mesh.color(node)) != color) continue;
          const index_t eq = mesh.equation_id(node, dof);
          const index_t slot =
              static_cast<index_t>(layout.eq_of_slot_.size());
          layout.eq_of_slot_.push_back(eq);
          layout.control_.push_back(eq >= 0 ? 1 : 0);
          if (eq >= 0) layout.slot_of_eq_[eq] = slot;
        }
      }
      layout.class_start_.push_back(
          static_cast<index_t>(layout.eq_of_slot_.size()));
    }
  }
  return layout;
}

index_t MaskedLayout::max_class_length() const {
  index_t m = 0;
  for (int k = 0; k < num_classes(); ++k) {
    m = std::max(m, class_length(k));
  }
  return m;
}

Vec MaskedLayout::expand(const Vec& compressed) const {
  Vec padded(eq_of_slot_.size(), 0.0);
  for (std::size_t slot = 0; slot < eq_of_slot_.size(); ++slot) {
    if (eq_of_slot_[slot] >= 0) padded[slot] = compressed[eq_of_slot_[slot]];
  }
  return padded;
}

Vec MaskedLayout::compress(const Vec& padded) const {
  Vec out(slot_of_eq_.size());
  for (std::size_t eq = 0; eq < slot_of_eq_.size(); ++eq) {
    out[eq] = padded[slot_of_eq_[eq]];
  }
  return out;
}

double MaskedLayout::live_fraction() const {
  std::size_t live = 0;
  for (char c : control_) live += c;
  return control_.empty() ? 0.0
                          : static_cast<double>(live) / control_.size();
}

}  // namespace mstep::cyber
