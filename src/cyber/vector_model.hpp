// CYBER 203/205 vector performance model (hardware substitution).
//
// The paper times the method on a CDC CYBER 203 — a memory-to-memory vector
// pipeline machine we obviously cannot run.  Section 3.1 gives the model's
// anchor points: vector operations reach ~90% efficiency at length 1000,
// ~50% at length 100 and ~10% at length 10.  That is exactly the classic
// (n + n_1/2) pipeline law with half-performance length n_1/2 ~ 100:
//
//     t(n) = tau * (n + n_half),   efficiency e(n) = n / (n + n_half).
//
// Inner products carry an extra partial-sum phase ("the additions of the
// partial sums make this operation considerably slower than the other
// vector operations") modelled as a second, startup-heavy vector pass.
//
// The model consumes the solver's kernel stream (core::KernelLog) and
// produces predicted seconds; iteration counts in Table 2 come from really
// running the solver, only the clock is synthetic.
#pragma once

#include <string>

#include "core/kernel_log.hpp"

namespace mstep::cyber {

struct CyberParams {
  /// Seconds per vector element result (pipeline beat).  The CYBER 203
  /// produced roughly one 64-bit result per 50 ns per pipe on triads.
  double tau = 5.0e-8;
  /// Half-performance vector length (Section 3.1's efficiency quotes).
  double n_half = 100.0;
  /// The inner-product partial-sum phase: an additional pass at `dot_tau`
  /// per element with a large startup `dot_n_half` (log-depth interval
  /// halving is startup-dominated).
  double dot_tau = 5.0e-8;
  double dot_n_half = 1500.0;
  /// Scalar/control overhead charged per outer CG iteration and per
  /// preconditioner step (loop control, scalar arithmetic for alpha/beta).
  double iteration_overhead = 3.0e-5;
  double step_overhead = 1.0e-5;

  /// Pipeline efficiency at vector length n.
  [[nodiscard]] double efficiency(index_t n) const {
    return static_cast<double>(n) / (static_cast<double>(n) + n_half);
  }
};

/// Accumulates predicted CYBER seconds from a kernel stream.
class CyberModel : public core::KernelLog {
 public:
  explicit CyberModel(CyberParams params = {}) : p_(params) {}

  void vec_op(index_t n, int count) override {
    seconds_ += count * p_.tau * (n + p_.n_half);
    vector_seconds_ += count * p_.tau * (n + p_.n_half);
  }
  void dot_op(index_t n) override {
    const double t =
        p_.tau * (n + p_.n_half) + p_.dot_tau * (n + p_.dot_n_half);
    seconds_ += t;
    dot_seconds_ += t;
  }
  void max_op(index_t n) override {
    // Vector absolute value + compare: ordinary vector speed (Section 3.1:
    // "the subtraction ... vectorizes and the absolute value is performed
    // by the vector absolute value function").
    seconds_ += p_.tau * (n + p_.n_half);
    vector_seconds_ += p_.tau * (n + p_.n_half);
  }
  void diag_op(index_t n) override {
    seconds_ += p_.tau * (n + p_.n_half);
    vector_seconds_ += p_.tau * (n + p_.n_half);
  }
  void spmv_diagonals(index_t len, int ndiags) override {
    // Madsen–Rodrigue–Karush: one triad per stored diagonal.
    const double t = ndiags * p_.tau * (len + p_.n_half);
    seconds_ += t;
    spmv_seconds_ += t;
  }
  void end_iteration() override { seconds_ += p_.iteration_overhead; }
  void end_precond_step() override { seconds_ += p_.step_overhead; }

  [[nodiscard]] double seconds() const { return seconds_; }
  [[nodiscard]] double dot_seconds() const { return dot_seconds_; }
  [[nodiscard]] double vector_seconds() const { return vector_seconds_; }
  [[nodiscard]] double spmv_seconds() const { return spmv_seconds_; }
  [[nodiscard]] const CyberParams& params() const { return p_; }

  void reset() {
    seconds_ = dot_seconds_ = vector_seconds_ = spmv_seconds_ = 0.0;
  }

 private:
  CyberParams p_;
  double seconds_ = 0.0;
  double dot_seconds_ = 0.0;
  double vector_seconds_ = 0.0;
  double spmv_seconds_ = 0.0;
};

}  // namespace mstep::cyber
