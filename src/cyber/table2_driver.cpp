#include "cyber/table2_driver.hpp"

#include "cyber/masked_layout.hpp"

#include <algorithm>
#include <limits>

#include "color/coloring.hpp"
#include "core/multicolor_mstep.hpp"
#include "core/mstep.hpp"
#include "core/params.hpp"
#include "core/pcg.hpp"
#include "fem/plane_stress.hpp"

namespace mstep::cyber {

namespace {

struct ColoredPlate {
  color::ColoredSystem cs;
  Vec f;
  index_t max_class = 0;
};

ColoredPlate build_plate(int a) {
  const fem::PlateMesh mesh = fem::PlateMesh::unit_square(a);
  auto sys = fem::assemble_plane_stress(mesh, fem::Material{},
                                        fem::EdgeLoad{1.0, 0.0});
  ColoredPlate p{color::make_colored_system(
                     sys.stiffness, color::six_color_classes(mesh)),
                 {}, 0};
  p.f = p.cs.permute(sys.load);
  // The paper's "maximum vector length" v counts the padded CYBER layout
  // (constrained nodes numbered too, suppressed by control vectors).
  p.max_class = MaskedLayout::build(mesh).max_class_length();
  return p;
}

Table2Row run_one(const ColoredPlate& plate, int m, bool parametrized,
                  double tolerance, const CyberParams& machine) {
  CyberModel model(machine);
  core::PcgOptions opt;
  opt.tolerance = tolerance;

  Table2Row row;
  row.m = m;
  row.parametrized = parametrized;

  core::PcgResult res;
  if (m == 0) {
    res = core::cg_solve(plate.cs.matrix, plate.f, opt, &model);
  } else {
    const std::vector<double> alphas =
        parametrized
            ? core::least_squares_alphas(m, core::ssor_interval())
            : core::unparametrized_alphas(m);
    const core::MulticolorMStepSsor prec(plate.cs, alphas, &model);
    res = core::pcg_solve(plate.cs.matrix, plate.f, prec, opt, &model);
  }
  row.iterations = res.iterations;
  row.converged = res.converged;
  row.model_seconds = model.seconds();
  row.inner_products = res.inner_products;
  return row;
}

}  // namespace

std::vector<Table2Column> run_table2(const Table2Options& opt) {
  std::vector<Table2Column> columns;
  for (int a : opt.plate_sizes) {
    const ColoredPlate plate = build_plate(a);
    Table2Column col;
    col.a = a;
    col.n = plate.cs.size();
    col.max_vector_len = plate.max_class;

    col.rows.push_back(run_one(plate, 0, false, opt.tolerance, opt.machine));
    for (int m = 1; m <= opt.max_m; ++m) {
      if (m <= opt.both_variants_up_to) {
        col.rows.push_back(
            run_one(plate, m, false, opt.tolerance, opt.machine));
      }
      if (m >= 2) {
        col.rows.push_back(
            run_one(plate, m, true, opt.tolerance, opt.machine));
      } else if (m == 1) {
        // m = 1: parametrization is a pure scaling (no effect on CG), so the
        // paper reports a single m = 1 row; already covered above.
      }
    }
    columns.push_back(std::move(col));
  }
  return columns;
}

CostDecomposition measure_cost_decomposition(int plate_size,
                                             const CyberParams& machine) {
  // A: model seconds per outer iteration of plain CG.
  // B: increment per preconditioner step, from two short preconditioned
  // runs at m and m+1 clamped to the same iteration count.
  const ColoredPlate plate = build_plate(plate_size);
  core::PcgOptions opt;
  opt.max_iterations = 5;
  // Smallest positive tolerance — unreachable in practice, forcing exactly
  // max_iterations iterations (pcg_solve rejects a non-positive tolerance).
  opt.tolerance = std::numeric_limits<double>::denorm_min();

  CyberModel model_a(machine);
  (void)core::cg_solve(plate.cs.matrix, plate.f, opt, &model_a);
  const double a_seconds = model_a.seconds() / opt.max_iterations;

  const auto alphas2 = core::least_squares_alphas(2, core::ssor_interval());
  const auto alphas3 = core::least_squares_alphas(3, core::ssor_interval());
  CyberModel model2(machine);
  CyberModel model3(machine);
  {
    const core::MulticolorMStepSsor p2(plate.cs, alphas2, &model2);
    (void)core::pcg_solve(plate.cs.matrix, plate.f, p2, opt, &model2);
  }
  {
    const core::MulticolorMStepSsor p3(plate.cs, alphas3, &model3);
    (void)core::pcg_solve(plate.cs.matrix, plate.f, p3, opt, &model3);
  }
  // Each run does (max_iterations + 1) preconditioner applications (one
  // initial); the difference per application is exactly one extra step.
  const double b_seconds =
      (model3.seconds() - model2.seconds()) / (opt.max_iterations + 1);
  return {a_seconds, b_seconds};
}

}  // namespace mstep::cyber
