// 5-point finite difference Poisson problem on a rectangle.
//
// The paper notes (Section 3) that Algorithm 2 "can easily be modified to
// solve problems whose domains are discretized by ... finite differences as
// long as a multicolor ordering is used".  The 5-point Laplacian needs only
// two colours (red/black); this problem family exercises the generic
// multicolour machinery with a colour count different from six, and its
// known exact solutions anchor the solver tests.
#pragma once

#include <functional>

#include "la/csr_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::fem {

/// -Δu = f on the unit square, homogeneous Dirichlet boundary, discretized
/// with the standard 5-point stencil on an nx-by-ny grid of interior points.
class PoissonProblem {
 public:
  PoissonProblem(int nx, int ny);

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] index_t num_unknowns() const {
    return static_cast<index_t>(nx_) * ny_;
  }

  [[nodiscard]] double hx() const { return hx_; }
  [[nodiscard]] double hy() const { return hy_; }

  /// Interior grid point (i, j), i in [0, nx), j in [0, ny); natural
  /// (row-major) unknown index.
  [[nodiscard]] index_t unknown_id(int i, int j) const {
    return static_cast<index_t>(j) * nx_ + i;
  }

  [[nodiscard]] double x_of(int i) const { return (i + 1) * hx_; }
  [[nodiscard]] double y_of(int j) const { return (j + 1) * hy_; }

  /// Red/black colour: (i + j) mod 2.  Every stencil neighbour has the
  /// opposite colour, so two colours decouple the grid.
  [[nodiscard]] int color(int i, int j) const { return (i + j) % 2; }

  /// The 5-point matrix, scaled by h^2 terms (SPD).
  [[nodiscard]] la::CsrMatrix matrix() const;

  /// Right-hand side for a source term f(x, y).
  [[nodiscard]] Vec rhs(const std::function<double(double, double)>& f) const;

  /// Grid restriction of a continuum function (e.g. an exact solution).
  [[nodiscard]] Vec grid_function(
      const std::function<double(double, double)>& u) const;

 private:
  int nx_;
  int ny_;
  double hx_;
  double hy_;
};

}  // namespace mstep::fem
