#include "fem/poisson.hpp"

#include <stdexcept>

namespace mstep::fem {

PoissonProblem::PoissonProblem(int nx, int ny)
    : nx_(nx), ny_(ny), hx_(1.0 / (nx + 1)), hy_(1.0 / (ny + 1)) {
  if (nx < 1 || ny < 1) {
    throw std::invalid_argument("PoissonProblem: need at least one point");
  }
}

la::CsrMatrix PoissonProblem::matrix() const {
  const index_t n = num_unknowns();
  la::CooBuilder builder(n, n);
  const double cx = 1.0 / (hx_ * hx_);
  const double cy = 1.0 / (hy_ * hy_);
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      const index_t row = unknown_id(i, j);
      builder.add(row, row, 2.0 * cx + 2.0 * cy);
      if (i > 0) builder.add(row, unknown_id(i - 1, j), -cx);
      if (i < nx_ - 1) builder.add(row, unknown_id(i + 1, j), -cx);
      if (j > 0) builder.add(row, unknown_id(i, j - 1), -cy);
      if (j < ny_ - 1) builder.add(row, unknown_id(i, j + 1), -cy);
    }
  }
  return builder.build();
}

Vec PoissonProblem::rhs(const std::function<double(double, double)>& f) const {
  Vec b(num_unknowns());
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      b[unknown_id(i, j)] = f(x_of(i), y_of(j));
    }
  }
  return b;
}

Vec PoissonProblem::grid_function(
    const std::function<double(double, double)>& u) const {
  Vec v(num_unknowns());
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      v[unknown_id(i, j)] = u(x_of(i), y_of(j));
    }
  }
  return v;
}

}  // namespace mstep::fem
