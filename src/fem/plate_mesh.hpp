// Rectangular plate mesh with linear triangular elements and the
// Red/Black/Green node colouring of Figure 1.
//
// The plate has `nrows` rows and `ncols` columns of nodes.  Column 0 is the
// constrained (clamped) edge, so there are b = ncols - 1 columns of
// unconstrained nodes and the stiffness system has dimension
// N = 2 * nrows * (ncols - 1), matching the paper's "2ab".  Each grid cell
// is split into two triangles along its down-right diagonal; the colouring
// colour(r, c) = (r + 2c) mod 3 gives every triangle three distinct node
// colours, which is what decouples same-colour equations (Section 3).
#pragma once

#include <array>
#include <vector>

#include "la/vector.hpp"

namespace mstep::fem {

/// Node colour. The paper's Red/Black/Green.
enum class Color3 : int { kRed = 0, kBlack = 1, kGreen = 2 };

[[nodiscard]] const char* color_name(Color3 c);

/// One linear triangle, by node ids.
struct Triangle {
  index_t n0, n1, n2;
};

class PlateMesh {
 public:
  /// nrows >= 2 rows of nodes, ncols >= 2 columns; the plate occupies
  /// [0, width] x [0, height].
  PlateMesh(int nrows, int ncols, double width = 1.0, double height = 1.0);

  /// Square unit plate with `a` rows and `a` columns of nodes — the
  /// configuration of Table 2 (b = a - 1 unconstrained columns).
  static PlateMesh unit_square(int a) { return PlateMesh(a, a, 1.0, 1.0); }

  [[nodiscard]] int nrows() const { return nrows_; }
  [[nodiscard]] int ncols() const { return ncols_; }
  [[nodiscard]] int num_nodes() const { return nrows_ * ncols_; }
  [[nodiscard]] int num_unconstrained_columns() const { return ncols_ - 1; }

  [[nodiscard]] double hx() const { return hx_; }
  [[nodiscard]] double hy() const { return hy_; }

  /// Node id for grid position (row r from the bottom, column c from the
  /// left).
  [[nodiscard]] index_t node_id(int r, int c) const {
    return static_cast<index_t>(r) * ncols_ + c;
  }
  [[nodiscard]] int node_row(index_t node) const { return node / ncols_; }
  [[nodiscard]] int node_col(index_t node) const { return node % ncols_; }

  [[nodiscard]] double node_x(index_t node) const {
    return node_col(node) * hx_;
  }
  [[nodiscard]] double node_y(index_t node) const {
    return node_row(node) * hy_;
  }

  /// The clamped edge: column 0.
  [[nodiscard]] bool is_constrained(index_t node) const {
    return node_col(node) == 0;
  }

  /// R/B/G colour of a node (Figure 1).
  [[nodiscard]] Color3 color(index_t node) const {
    return static_cast<Color3>((node_row(node) + 2 * node_col(node)) % 3);
  }

  /// All triangles: each cell (r, c) contributes
  /// {(r,c), (r,c+1), (r+1,c)} and {(r+1,c), (r,c+1), (r+1,c+1)}.
  [[nodiscard]] std::vector<Triangle> triangles() const;

  /// Equation id for (node, dof) with dof 0 = u (x-displacement) and
  /// 1 = v (y-displacement); -1 for constrained nodes.  Equations are
  /// numbered node-major in row-major node order — the "geometric" ordering
  /// before any colour permutation.
  [[nodiscard]] index_t equation_id(index_t node, int dof) const;

  [[nodiscard]] index_t num_equations() const {
    return 2 * static_cast<index_t>(nrows_) * (ncols_ - 1);
  }

  /// Inverse of equation_id: (node, dof) for an equation.
  [[nodiscard]] std::pair<index_t, int> equation_node_dof(index_t eq) const;

  /// Neighbour nodes sharing at least one triangle with `node` (the
  /// Figure 2 stencil: six neighbours for interior nodes).
  [[nodiscard]] std::vector<index_t> neighbor_nodes(index_t node) const;

 private:
  int nrows_;
  int ncols_;
  double hx_;
  double hy_;
};

}  // namespace mstep::fem
