// Plane-stress finite element assembly on the triangular plate —
// the paper's test problem (Section 3).
//
// Constant-strain triangles (linear basis functions) with two displacement
// unknowns (u, v) per node.  The plate is clamped along its left edge and
// loaded by a uniform traction along its right edge.  The assembled
// stiffness matrix is symmetric positive definite with at most 14 nonzeros
// per row (the Figure 2 stencil: the node itself plus six neighbours, two
// dofs each).
#pragma once

#include "fem/plate_mesh.hpp"
#include "la/csr_matrix.hpp"
#include "la/dense_matrix.hpp"

namespace mstep::fem {

/// Isotropic plane-stress material.
struct Material {
  double youngs_modulus = 1.0;
  double poisson_ratio = 0.3;
  double thickness = 1.0;

  /// 3x3 constitutive matrix D (sigma = D epsilon).
  [[nodiscard]] la::DenseMatrix constitutive() const;
};

/// Uniform traction applied to the right edge of the plate.
struct EdgeLoad {
  double traction_x = 1.0;  // force per unit edge length, x direction
  double traction_y = 0.0;  // force per unit edge length, y direction
};

/// 6x6 element stiffness of a constant-strain triangle with vertex
/// coordinates (x[i], y[i]).  Dof order: u0, v0, u1, v1, u2, v2.
[[nodiscard]] la::DenseMatrix cst_stiffness(const std::array<double, 3>& x,
                                            const std::array<double, 3>& y,
                                            const Material& mat);

/// Assembled sparse system K u = f.
struct AssembledSystem {
  la::CsrMatrix stiffness;
  Vec load;
};

/// Assemble the plane-stress system for the plate: clamped column 0,
/// consistent edge load on column ncols-1.
[[nodiscard]] AssembledSystem assemble_plane_stress(const PlateMesh& mesh,
                                                    const Material& mat,
                                                    const EdgeLoad& load);

/// Assemble the stiffness matrix for a *fully free* plate (no boundary
/// conditions; every node has two equations).  Used by tests: the free
/// stiffness must be symmetric positive semi-definite with exactly three
/// rigid-body null modes.
[[nodiscard]] la::CsrMatrix assemble_free_stiffness(const PlateMesh& mesh,
                                                    const Material& mat);

/// Nodal displacement magnitudes |(u, v)| for a solution vector, indexed by
/// node (constrained nodes report 0) — a convenience for the examples.
[[nodiscard]] Vec displacement_magnitudes(const PlateMesh& mesh,
                                          const Vec& solution);

}  // namespace mstep::fem
