// General (irregular) triangulated domains.
//
// Section 5 of the paper: "A problem still remains in applying the method
// to irregular regions since the grid must be colored and for array
// machines must also be distributed to the processors in light of this
// coloring."  This module supplies the missing piece for the colouring
// half: an unstructured triangle mesh with arbitrary constrained nodes,
// assembled with the same CST plane-stress elements, and coloured by the
// greedy algorithm in color/greedy.hpp.  The L-shaped plate builder is the
// canonical irregular test domain.
#pragma once

#include <vector>

#include "fem/plate_mesh.hpp"
#include "fem/plane_stress.hpp"
#include "la/csr_matrix.hpp"

namespace mstep::fem {

/// Unstructured triangle mesh with two displacement dofs per node.
/// Populate nodes/triangles/constraints, then finalize() to number the
/// equations (node-major over unconstrained nodes, in node-id order).
class TriMesh {
 public:
  /// Add a node at (x, y); returns its id.
  index_t add_node(double x, double y, bool constrained = false);

  /// Add a triangle by node ids (counter-clockwise).
  void add_triangle(index_t n0, index_t n1, index_t n2);

  /// Number the equations.  Must be called once after construction.
  void finalize();

  [[nodiscard]] index_t num_nodes() const {
    return static_cast<index_t>(x_.size());
  }
  [[nodiscard]] index_t num_equations() const { return num_equations_; }
  [[nodiscard]] const std::vector<Triangle>& triangles() const {
    return tris_;
  }

  [[nodiscard]] double node_x(index_t node) const { return x_[node]; }
  [[nodiscard]] double node_y(index_t node) const { return y_[node]; }
  [[nodiscard]] bool is_constrained(index_t node) const {
    return constrained_[node] != 0;
  }

  /// Equation id of (node, dof in {0, 1}); -1 for constrained nodes.
  [[nodiscard]] index_t equation_id(index_t node, int dof) const;

  /// Inverse: (node, dof) of an equation id.
  [[nodiscard]] std::pair<index_t, int> equation_node_dof(index_t eq) const;

  /// Node adjacency (nodes sharing a triangle), sorted, without self.
  [[nodiscard]] std::vector<std::vector<index_t>> node_adjacency() const;

  // --- builders -------------------------------------------------------------

  /// Copy of a rectangular plate as an unstructured mesh (for tests:
  /// everything that works on PlateMesh must work on its TriMesh copy).
  static TriMesh from_plate(const PlateMesh& plate);

  /// L-shaped plate: a (2n+1)x(2n+1) node grid with the upper-right
  /// quadrant removed, clamped along the left edge, unit cell size 1/(2n).
  static TriMesh l_shape(int n);

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<char> constrained_;
  std::vector<Triangle> tris_;
  std::vector<index_t> eq_of_node_;  // first equation of each node; -1
  std::vector<index_t> node_of_eq_;  // eq -> node (per dof pair)
  index_t num_equations_ = -1;
};

/// Assemble the plane-stress stiffness for an unstructured mesh.
[[nodiscard]] la::CsrMatrix assemble_plane_stress(const TriMesh& mesh,
                                                  const Material& mat);

/// Nodal point load: f[eq(node, 0)] += fx, f[eq(node, 1)] += fy.
void add_point_load(const TriMesh& mesh, index_t node, double fx, double fy,
                    Vec& f);

}  // namespace mstep::fem
