#include "fem/plane_stress.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace mstep::fem {

la::DenseMatrix Material::constitutive() const {
  const double e = youngs_modulus;
  const double nu = poisson_ratio;
  la::DenseMatrix d(3, 3);
  const double factor = e / (1.0 - nu * nu);
  d(0, 0) = factor;
  d(0, 1) = factor * nu;
  d(1, 0) = factor * nu;
  d(1, 1) = factor;
  d(2, 2) = factor * (1.0 - nu) / 2.0;
  return d;
}

la::DenseMatrix cst_stiffness(const std::array<double, 3>& x,
                              const std::array<double, 3>& y,
                              const Material& mat) {
  // Signed area: positive for counter-clockwise vertex order.
  const double area2 = (x[1] - x[0]) * (y[2] - y[0]) -
                       (x[2] - x[0]) * (y[1] - y[0]);
  if (std::abs(area2) < 1e-300) {
    throw std::invalid_argument("cst_stiffness: degenerate triangle");
  }
  const double area = 0.5 * std::abs(area2);

  // Shape function gradients: b_i = y_j - y_k, c_i = x_k - x_j (cyclic).
  std::array<double, 3> b{}, c{};
  for (int i = 0; i < 3; ++i) {
    const int j = (i + 1) % 3;
    const int k = (i + 2) % 3;
    b[i] = y[j] - y[k];
    c[i] = x[k] - x[j];
  }

  la::DenseMatrix bm(3, 6);
  for (int i = 0; i < 3; ++i) {
    bm(0, 2 * i) = b[i];
    bm(1, 2 * i + 1) = c[i];
    bm(2, 2 * i) = c[i];
    bm(2, 2 * i + 1) = b[i];
  }
  // B = (1 / 2A) * bm ; Ke = t A B^T D B = t / (4A) bm^T D bm.
  const la::DenseMatrix d = mat.constitutive();
  la::DenseMatrix ke = bm.transposed().multiply(d.multiply(bm));
  const double scale = mat.thickness / (4.0 * area);
  la::DenseMatrix out(6, 6);
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 6; ++j) out(i, j) = scale * ke(i, j);
  return out;
}

namespace {

/// Shared assembly: adds every element contribution, mapping (node, dof) to
/// an equation id through `eq_of`.  Entries whose row or column maps to -1
/// (constrained) are dropped — equivalent to eliminating zero-displacement
/// dofs.
template <typename EqOf>
void assemble_elements(const PlateMesh& mesh, const Material& mat,
                       const EqOf& eq_of, la::CooBuilder& builder) {
  for (const Triangle& tri : mesh.triangles()) {
    const std::array<index_t, 3> nodes = {tri.n0, tri.n1, tri.n2};
    std::array<double, 3> x{}, y{};
    for (int i = 0; i < 3; ++i) {
      x[i] = mesh.node_x(nodes[i]);
      y[i] = mesh.node_y(nodes[i]);
    }
    const la::DenseMatrix ke = cst_stiffness(x, y, mat);
    for (int i = 0; i < 3; ++i) {
      for (int di = 0; di < 2; ++di) {
        const index_t row = eq_of(nodes[i], di);
        if (row < 0) continue;
        for (int j = 0; j < 3; ++j) {
          for (int dj = 0; dj < 2; ++dj) {
            const index_t col = eq_of(nodes[j], dj);
            if (col < 0) continue;
            builder.add(row, col, ke(2 * i + di, 2 * j + dj));
          }
        }
      }
    }
  }
}

}  // namespace

AssembledSystem assemble_plane_stress(const PlateMesh& mesh,
                                      const Material& mat,
                                      const EdgeLoad& load) {
  const index_t n = mesh.num_equations();
  la::CooBuilder builder(n, n);
  assemble_elements(
      mesh, mat,
      [&](index_t node, int dof) { return mesh.equation_id(node, dof); },
      builder);

  AssembledSystem sys{builder.build(), Vec(n, 0.0)};

  // Consistent nodal loads for a uniform traction on the right edge
  // (column ncols-1): interior edge nodes receive t * q * hy, the two corner
  // nodes half of that.
  const int c = mesh.ncols() - 1;
  for (int r = 0; r < mesh.nrows(); ++r) {
    const index_t node = mesh.node_id(r, c);
    const double weight =
        (r == 0 || r == mesh.nrows() - 1) ? 0.5 : 1.0;
    const double scale = mat.thickness * mesh.hy() * weight;
    const index_t eu = mesh.equation_id(node, 0);
    const index_t ev = mesh.equation_id(node, 1);
    if (eu >= 0) sys.load[eu] += scale * load.traction_x;
    if (ev >= 0) sys.load[ev] += scale * load.traction_y;
  }
  return sys;
}

la::CsrMatrix assemble_free_stiffness(const PlateMesh& mesh,
                                      const Material& mat) {
  const index_t n = 2 * static_cast<index_t>(mesh.num_nodes());
  la::CooBuilder builder(n, n);
  assemble_elements(
      mesh, mat,
      [](index_t node, int dof) { return 2 * node + dof; }, builder);
  return builder.build();
}

Vec displacement_magnitudes(const PlateMesh& mesh, const Vec& solution) {
  Vec mags(mesh.num_nodes(), 0.0);
  for (index_t node = 0; node < mesh.num_nodes(); ++node) {
    const index_t eu = mesh.equation_id(node, 0);
    const index_t ev = mesh.equation_id(node, 1);
    if (eu < 0) continue;
    mags[node] = std::hypot(solution[eu], solution[ev]);
  }
  return mags;
}

}  // namespace mstep::fem
