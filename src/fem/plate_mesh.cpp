#include "fem/plate_mesh.hpp"

#include <algorithm>
#include <stdexcept>

namespace mstep::fem {

const char* color_name(Color3 c) {
  switch (c) {
    case Color3::kRed:
      return "R";
    case Color3::kBlack:
      return "B";
    case Color3::kGreen:
      return "G";
  }
  return "?";
}

PlateMesh::PlateMesh(int nrows, int ncols, double width, double height)
    : nrows_(nrows), ncols_(ncols),
      hx_(width / (ncols - 1)), hy_(height / (nrows - 1)) {
  if (nrows < 2 || ncols < 2) {
    throw std::invalid_argument("PlateMesh: need at least a 2x2 node grid");
  }
}

std::vector<Triangle> PlateMesh::triangles() const {
  std::vector<Triangle> tris;
  tris.reserve(2 * static_cast<std::size_t>(nrows_ - 1) * (ncols_ - 1));
  for (int r = 0; r + 1 < nrows_; ++r) {
    for (int c = 0; c + 1 < ncols_; ++c) {
      tris.push_back({node_id(r, c), node_id(r, c + 1), node_id(r + 1, c)});
      tris.push_back(
          {node_id(r + 1, c), node_id(r, c + 1), node_id(r + 1, c + 1)});
    }
  }
  return tris;
}

index_t PlateMesh::equation_id(index_t node, int dof) const {
  if (is_constrained(node)) return -1;
  const int r = node_row(node);
  const int c = node_col(node);
  const index_t unconstrained_index =
      static_cast<index_t>(r) * (ncols_ - 1) + (c - 1);
  return 2 * unconstrained_index + dof;
}

std::pair<index_t, int> PlateMesh::equation_node_dof(index_t eq) const {
  const int dof = eq % 2;
  const index_t idx = eq / 2;
  const int r = idx / (ncols_ - 1);
  const int c = idx % (ncols_ - 1) + 1;
  return {node_id(r, c), dof};
}

std::vector<index_t> PlateMesh::neighbor_nodes(index_t node) const {
  // With the down-right diagonal split, node (r, c) shares a triangle with
  // (r, c±1), (r±1, c), (r-1, c+1) and (r+1, c-1): a six-point hexagonal
  // neighbourhood.
  static constexpr std::array<std::pair<int, int>, 6> kOffsets = {
      {{0, -1}, {0, 1}, {-1, 0}, {1, 0}, {-1, 1}, {1, -1}}};
  const int r = node_row(node);
  const int c = node_col(node);
  std::vector<index_t> out;
  for (auto [dr, dc] : kOffsets) {
    const int rr = r + dr;
    const int cc = c + dc;
    if (rr >= 0 && rr < nrows_ && cc >= 0 && cc < ncols_) {
      out.push_back(node_id(rr, cc));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mstep::fem
