#include "fem/tri_mesh.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "fem/plane_stress.hpp"

namespace mstep::fem {

index_t TriMesh::add_node(double x, double y, bool constrained) {
  if (num_equations_ >= 0) {
    throw std::logic_error("TriMesh: add_node after finalize");
  }
  x_.push_back(x);
  y_.push_back(y);
  constrained_.push_back(constrained ? 1 : 0);
  return static_cast<index_t>(x_.size()) - 1;
}

void TriMesh::add_triangle(index_t n0, index_t n1, index_t n2) {
  if (num_equations_ >= 0) {
    throw std::logic_error("TriMesh: add_triangle after finalize");
  }
  tris_.push_back({n0, n1, n2});
}

void TriMesh::finalize() {
  if (num_equations_ >= 0) throw std::logic_error("TriMesh: double finalize");
  eq_of_node_.assign(x_.size(), -1);
  index_t next = 0;
  for (index_t node = 0; node < num_nodes(); ++node) {
    if (!constrained_[node]) {
      eq_of_node_[node] = next;
      node_of_eq_.push_back(node);
      next += 2;
    }
  }
  num_equations_ = next;
}

index_t TriMesh::equation_id(index_t node, int dof) const {
  if (num_equations_ < 0) throw std::logic_error("TriMesh: not finalized");
  const index_t base = eq_of_node_[node];
  return base < 0 ? -1 : base + dof;
}

std::pair<index_t, int> TriMesh::equation_node_dof(index_t eq) const {
  return {node_of_eq_[eq / 2], static_cast<int>(eq % 2)};
}

std::vector<std::vector<index_t>> TriMesh::node_adjacency() const {
  std::vector<std::set<index_t>> adj(x_.size());
  for (const Triangle& t : tris_) {
    const index_t n[3] = {t.n0, t.n1, t.n2};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i != j) adj[n[i]].insert(n[j]);
      }
    }
  }
  std::vector<std::vector<index_t>> out(x_.size());
  for (std::size_t i = 0; i < adj.size(); ++i) {
    out[i].assign(adj[i].begin(), adj[i].end());
  }
  return out;
}

TriMesh TriMesh::from_plate(const PlateMesh& plate) {
  TriMesh m;
  for (index_t node = 0; node < plate.num_nodes(); ++node) {
    m.add_node(plate.node_x(node), plate.node_y(node),
               plate.is_constrained(node));
  }
  for (const Triangle& t : plate.triangles()) {
    m.add_triangle(t.n0, t.n1, t.n2);
  }
  m.finalize();
  return m;
}

TriMesh TriMesh::l_shape(int n) {
  if (n < 1) throw std::invalid_argument("l_shape: n >= 1");
  const int side = 2 * n + 1;
  const double h = 1.0 / (2 * n);
  TriMesh m;
  std::vector<index_t> id(static_cast<std::size_t>(side) * side, -1);
  auto keep = [&](int r, int c) { return r <= n || c <= n; };
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      if (!keep(r, c)) continue;
      id[static_cast<std::size_t>(r) * side + c] =
          m.add_node(c * h, r * h, /*constrained=*/c == 0);
    }
  }
  auto at = [&](int r, int c) {
    return id[static_cast<std::size_t>(r) * side + c];
  };
  for (int r = 0; r + 1 < side; ++r) {
    for (int c = 0; c + 1 < side; ++c) {
      if (!(keep(r, c) && keep(r, c + 1) && keep(r + 1, c) &&
            keep(r + 1, c + 1))) {
        continue;
      }
      m.add_triangle(at(r, c), at(r, c + 1), at(r + 1, c));
      m.add_triangle(at(r + 1, c), at(r, c + 1), at(r + 1, c + 1));
    }
  }
  m.finalize();
  return m;
}

la::CsrMatrix assemble_plane_stress(const TriMesh& mesh, const Material& mat) {
  const index_t n = mesh.num_equations();
  la::CooBuilder builder(n, n);
  for (const Triangle& tri : mesh.triangles()) {
    const std::array<index_t, 3> nodes = {tri.n0, tri.n1, tri.n2};
    std::array<double, 3> x{}, y{};
    for (int i = 0; i < 3; ++i) {
      x[i] = mesh.node_x(nodes[i]);
      y[i] = mesh.node_y(nodes[i]);
    }
    const la::DenseMatrix ke = cst_stiffness(x, y, mat);
    for (int i = 0; i < 3; ++i) {
      for (int di = 0; di < 2; ++di) {
        const index_t row = mesh.equation_id(nodes[i], di);
        if (row < 0) continue;
        for (int j = 0; j < 3; ++j) {
          for (int dj = 0; dj < 2; ++dj) {
            const index_t col = mesh.equation_id(nodes[j], dj);
            if (col < 0) continue;
            builder.add(row, col, ke(2 * i + di, 2 * j + dj));
          }
        }
      }
    }
  }
  return builder.build();
}

void add_point_load(const TriMesh& mesh, index_t node, double fx, double fy,
                    Vec& f) {
  const index_t eu = mesh.equation_id(node, 0);
  const index_t ev = mesh.equation_id(node, 1);
  if (eu >= 0) f[eu] += fx;
  if (ev >= 0) f[ev] += fy;
}

}  // namespace mstep::fem
