#include "io/byte_source.hpp"

#include <cstring>
#include <istream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/matrix_market.hpp"

#ifdef MSTEP_HAS_ZLIB
#include <zlib.h>
#endif

namespace mstep::io {

namespace {

[[noreturn]] void fail_source(const std::string& name,
                              const std::string& message) {
  throw MatrixMarketError(name, 0, 0, message);
}

}  // namespace

// ---- FileByteSource ---------------------------------------------------------

FileByteSource::FileByteSource(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "rb");
  if (!file_) fail_source(path_, "cannot open file");
}

FileByteSource::~FileByteSource() {
  if (file_) std::fclose(file_);
}

std::size_t FileByteSource::read(char* buf, std::size_t n) {
  const std::size_t got = std::fread(buf, 1, n, file_);
  if (got < n && std::ferror(file_)) {
    fail_source(path_, "read error");
  }
  return got;
}

void FileByteSource::rewind() {
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    fail_source(path_, "cannot rewind file for the second reader pass");
  }
}

// ---- BufferByteSource -------------------------------------------------------

std::size_t BufferByteSource::read(char* buf, std::size_t n) {
  const std::size_t avail = data_.size() - pos_;
  const std::size_t take = n < avail ? n : avail;
  std::memcpy(buf, data_.data() + pos_, take);
  pos_ += take;
  return take;
}

// ---- IstreamByteSource ------------------------------------------------------

IstreamByteSource::IstreamByteSource(std::istream& in, std::string name)
    : in_(&in), name_(std::move(name)), start_(in.tellg()) {
  // tellg() fails (-1) on non-seekable streams; keep the stream usable
  // for pass 1 and report the problem only if a rewind is needed.
  if (start_ == std::streampos(-1)) in.clear();
}

std::size_t IstreamByteSource::read(char* buf, std::size_t n) {
  in_->read(buf, static_cast<std::streamsize>(n));
  if (in_->bad()) fail_source(name_, "read error on input stream");
  return static_cast<std::size_t>(in_->gcount());
}

void IstreamByteSource::rewind() {
  in_->clear();
  if (start_ != std::streampos(-1)) in_->seekg(start_);
  if (start_ == std::streampos(-1) || in_->fail()) {
    fail_source(name_,
                "input stream is not rewindable (the two-pass reader needs "
                "a seekable stream; read the bytes into memory first)");
  }
}

// ---- gzip -------------------------------------------------------------------

bool looks_gzip(const char* data, std::size_t size) {
  return size >= 2 && static_cast<unsigned char>(data[0]) == 0x1f &&
         static_cast<unsigned char>(data[1]) == 0x8b;
}

#ifdef MSTEP_HAS_ZLIB

namespace {

/// zlib-inflating wrapper: pulls compressed bytes from `inner`, hands
/// decompressed bytes to the reader.  windowBits 15+32 auto-detects gzip
/// vs raw zlib framing; rewind re-reads `inner` from byte 0 with a reset
/// inflate state (a gzip member is not seekable, so pass 2 re-inflates —
/// the price of O(nnz) memory on compressed input).
class GzipByteSource final : public ByteSource {
 public:
  explicit GzipByteSource(std::unique_ptr<ByteSource> inner)
      : inner_(std::move(inner)), in_buf_(1 << 16) {
    std::memset(&strm_, 0, sizeof(strm_));
    if (inflateInit2(&strm_, 15 + 32) != Z_OK) {
      fail_source(inner_->name(), "cannot initialize zlib inflate");
    }
  }

  ~GzipByteSource() override { inflateEnd(&strm_); }
  GzipByteSource(const GzipByteSource&) = delete;
  GzipByteSource& operator=(const GzipByteSource&) = delete;

  std::size_t read(char* buf, std::size_t n) override {
    if (done_) return 0;
    strm_.next_out = reinterpret_cast<Bytef*>(buf);
    strm_.avail_out = static_cast<uInt>(n);
    while (strm_.avail_out > 0) {
      if (strm_.avail_in == 0 && !inner_eof_) {
        const std::size_t got = inner_->read(in_buf_.data(), in_buf_.size());
        compressed_offset_ += got;
        strm_.next_in = reinterpret_cast<Bytef*>(in_buf_.data());
        strm_.avail_in = static_cast<uInt>(got);
        if (got == 0) inner_eof_ = true;
      }
      if (strm_.avail_in == 0 && inner_eof_) {
        if (at_member_boundary_) {  // clean end of the last member
          done_ = true;
          break;
        }
        // Compressed data ran out mid-member: the file was cut short (an
        // interrupted download, a partial copy).
        fail_source(inner_->name(),
                    "truncated gzip stream: compressed data ends before "
                    "the end of the member");
      }
      const int rc = inflate(&strm_, Z_NO_FLUSH);
      if (rc == Z_STREAM_END) {
        // RFC 1952 allows concatenated members ("cat a.gz b.gz", bgzip);
        // reset and keep inflating — anything following that is NOT a
        // gzip member then fails the next header check as corrupt.
        at_member_boundary_ = true;
        if (inflateReset(&strm_) != Z_OK) {
          fail_source(inner_->name(), "cannot reset zlib inflate");
        }
        continue;
      }
      if (rc == Z_DATA_ERROR || rc == Z_NEED_DICT || rc == Z_MEM_ERROR ||
          rc == Z_STREAM_ERROR) {
        fail_source(inner_->name(),
                    std::string("corrupt gzip stream: ") +
                        (strm_.msg ? strm_.msg : "inflate failed") +
                        " (near compressed byte " +
                        std::to_string(compressed_offset_ -
                                       strm_.avail_in) +
                        ")");
      }
      // Once the inflater consumes any byte of the next member's header
      // we are mid-member again (total_in resets at each inflateReset).
      at_member_boundary_ = at_member_boundary_ && strm_.total_in == 0;
    }
    return n - strm_.avail_out;
  }

  void rewind() override {
    inner_->rewind();
    if (inflateReset2(&strm_, 15 + 32) != Z_OK) {
      fail_source(inner_->name(), "cannot reset zlib inflate");
    }
    strm_.avail_in = 0;
    strm_.next_in = nullptr;
    inner_eof_ = false;
    done_ = false;
    at_member_boundary_ = false;
    compressed_offset_ = 0;
  }

  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }

 private:
  std::unique_ptr<ByteSource> inner_;
  std::vector<char> in_buf_;
  z_stream strm_;
  std::size_t compressed_offset_ = 0;  // bytes pulled from inner_
  bool inner_eof_ = false;
  bool done_ = false;  // clean end of the last member reached
  /// True exactly between a member's Z_STREAM_END and the first consumed
  /// byte of the next member — end of input here is a clean EOF, end of
  /// input anywhere else is a truncated stream.
  bool at_member_boundary_ = false;
};

}  // namespace

bool gzip_supported() { return true; }

std::unique_ptr<ByteSource> make_gzip_source(
    std::unique_ptr<ByteSource> inner) {
  return std::make_unique<GzipByteSource>(std::move(inner));
}

std::string gzip_compress(const std::string& bytes) {
  z_stream strm;
  std::memset(&strm, 0, sizeof(strm));
  // 15+16 = gzip framing; fixed level/strategy so compressed output is
  // deterministic across runs.
  if (deflateInit2(&strm, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    throw std::runtime_error("gzip_compress: cannot initialize deflate");
  }
  std::string out;
  std::vector<char> buf(1 << 16);
  // Feed the input in uInt-sized chunks: a single avail_in assignment
  // would silently truncate inputs past 4 GiB.
  std::size_t fed = 0;
  int rc = Z_OK;
  do {
    if (strm.avail_in == 0 && fed < bytes.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(bytes.size() - fed, 1u << 30);
      strm.next_in = reinterpret_cast<Bytef*>(
          const_cast<char*>(bytes.data() + fed));
      strm.avail_in = static_cast<uInt>(chunk);
      fed += chunk;
    }
    strm.next_out = reinterpret_cast<Bytef*>(buf.data());
    strm.avail_out = static_cast<uInt>(buf.size());
    rc = deflate(&strm, fed == bytes.size() ? Z_FINISH : Z_NO_FLUSH);
    if (rc == Z_STREAM_ERROR) {
      deflateEnd(&strm);
      throw std::runtime_error("gzip_compress: deflate failed");
    }
    out.append(buf.data(), buf.size() - strm.avail_out);
  } while (rc != Z_STREAM_END);
  deflateEnd(&strm);
  return out;
}

#else  // !MSTEP_HAS_ZLIB

bool gzip_supported() { return false; }

std::unique_ptr<ByteSource> make_gzip_source(
    std::unique_ptr<ByteSource> inner) {
  fail_source(inner->name(),
              "gzip input needs zlib, which this build was compiled "
              "without; decompress the file first");
}

std::string gzip_compress(const std::string&) {
  throw std::runtime_error(
      "gzip_compress: this build was compiled without zlib");
}

#endif  // MSTEP_HAS_ZLIB

std::unique_ptr<ByteSource> open_byte_source(const std::string& path) {
  auto file = std::make_unique<FileByteSource>(path);
  char magic[2];
  const std::size_t got = file->read(magic, sizeof(magic));
  file->rewind();
  if (looks_gzip(magic, got)) {
    return make_gzip_source(std::move(file));
  }
  return file;
}

}  // namespace mstep::io
