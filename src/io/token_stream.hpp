// Pull-based tokenizer for the streaming Matrix Market reader.
//
// MmTokenStream turns a ByteSource into the units the Matrix Market
// grammar is made of — lines of whitespace-separated tokens — while
// tracking the 1-based line and column of every token, which is the
// source of the "file:line:col" part of each reader diagnostic.  It owns
// a fixed-size byte buffer and one reused line/token arena, so tokenizing
// an arbitrarily large file allocates O(longest line), not O(file).
//
// rewind() restarts the stream from byte 0 (re-inflating when the source
// is gzip): the two-pass reader tokenizes the file twice — pass 1 counts,
// pass 2 scatters — instead of staging entries in memory.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "io/byte_source.hpp"

namespace mstep::io {

class MmTokenStream {
 public:
  /// One whitespace-delimited token with the 1-based column it starts at.
  struct Token {
    std::string text;
    std::size_t column = 0;
  };

  explicit MmTokenStream(ByteSource& source) : source_(&source) {}

  /// Advance to the next line holding tokens, skipping "%" comment lines
  /// and blank lines; false at end of input.  Tokens are in tokens()
  /// until the next advance.
  bool next_content_line();

  /// Raw next line with no comment skipping — only for the banner, which
  /// must be the very first line.  False at end of input.
  bool next_raw_line(std::string* out);

  /// Tokens of the current content line (valid until the next advance).
  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }

  /// 1-based line number of the current line; after end of input it
  /// points one past the last line, so "unexpected end of file"
  /// diagnostics are positioned there.
  [[nodiscard]] std::size_t line_number() const { return line_number_; }

  [[nodiscard]] const std::string& name() const { return source_->name(); }

  /// Throw a MatrixMarketError positioned at the current line.
  [[noreturn]] void fail(const std::string& message,
                         std::size_t column = 0) const;

  /// Restart from byte 0 for the second reader pass.
  void rewind();

  /// Split one line into whitespace-delimited tokens with 1-based start
  /// columns — THE tokenization rule of the reader, shared by the
  /// content-line path and the raw banner line so their diagnostics can
  /// never diverge.
  static void tokenize(const std::string& line, std::vector<Token>* out);

 private:
  /// Read the next physical line (stripping "\r\n"); false at EOF with an
  /// empty remainder.
  bool next_line();
  void refill();

  ByteSource* source_;
  std::vector<char> buf_ = std::vector<char>(1 << 16);
  std::size_t pos_ = 0;   // next unread byte in buf_
  std::size_t len_ = 0;   // valid bytes in buf_
  bool eof_ = false;      // source exhausted (buffer may still hold bytes)
  std::string line_;      // reused line storage
  std::vector<Token> tokens_;
  std::size_t line_number_ = 0;
};

}  // namespace mstep::io
