// Matrix Market (ANSI .mtx) reader and writer.
//
// The standard exchange format for sparse matrices (NIST/matrix-market):
// a banner line, optional % comments, a size line, then entries.  This
// module covers the SPD-solver-relevant subset — coordinate and array
// formats, real/integer/pattern fields, general/symmetric/skew-symmetric
// storage — converting to and from la::CsrMatrix with symmetric storage
// expanded on read, plus dense vector (right-hand side) files.
//
// Diagnostics are precise: every parse failure throws MatrixMarketError
// carrying the file name, 1-based line, and 1-based column of the
// offending token, formatted "file:line:col: message" — a malformed file
// is a clear error, never a crash or a silently wrong matrix.
//
// The writer emits shortest round-trip decimal values (util::format_double)
// in a canonical layout (row-major entries, one comment line max), so
// write -> read -> write is byte-identical — asserted by
// tests/test_matrix_market.cpp and the property the fixture files under
// tests/data/ are generated with.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "la/csr_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::io {

/// Parse failure with source position; what() reads "file:line:col: msg"
/// (col 0 when the error concerns the whole line).
class MatrixMarketError : public std::runtime_error {
 public:
  MatrixMarketError(const std::string& name, std::size_t line,
                    std::size_t column, const std::string& message);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

enum class MmFormat { kCoordinate, kArray };
enum class MmField { kReal, kInteger, kPattern };
enum class MmSymmetry { kGeneral, kSymmetric, kSkewSymmetric };

[[nodiscard]] std::string to_string(MmFormat f);
[[nodiscard]] std::string to_string(MmField f);
[[nodiscard]] std::string to_string(MmSymmetry s);

/// The banner as declared in the file.
struct MmHeader {
  MmFormat format = MmFormat::kCoordinate;
  MmField field = MmField::kReal;
  MmSymmetry symmetry = MmSymmetry::kGeneral;
};

/// A read matrix: CSR with symmetric/skew storage fully expanded (the
/// matrix is the mathematical one, independent of how the file stored
/// it), the banner it was declared with, and the bandedness probe for
/// the DIA layout decision.
struct MmMatrix {
  la::CsrMatrix matrix;
  MmHeader header;
  /// True when la::DiaMatrix::profitable says the diagonal layout pays
  /// off for this matrix (e.g. banded stencils) — callers can route the
  /// solve through MatrixFormat::kDia.
  bool dia_friendly = false;
};

[[nodiscard]] MmMatrix read_matrix_market(std::istream& in,
                                          const std::string& name = "<mtx>");
/// Opens `path`; throws MatrixMarketError (line 0) when unreadable.
[[nodiscard]] MmMatrix read_matrix_market(const std::string& path);

struct MmWriteOptions {
  MmFormat format = MmFormat::kCoordinate;
  MmField field = MmField::kReal;
  /// kSymmetric / kSkewSymmetric store only the lower triangle; the
  /// writer verifies the matrix actually has the property (exactly, entry
  /// by entry) and throws std::invalid_argument otherwise.
  MmSymmetry symmetry = MmSymmetry::kGeneral;
  /// Optional single "% ..." comment line after the banner.
  std::string comment;
};

void write_matrix_market(std::ostream& out, const la::CsrMatrix& a,
                         const MmWriteOptions& options = {});
void write_matrix_market(const std::string& path, const la::CsrMatrix& a,
                         const MmWriteOptions& options = {});

/// Read a dense vector: an array-format n-by-1 (or 1-by-n) file, or a
/// coordinate n-by-1 file (absent entries read 0).
[[nodiscard]] Vec read_vector(std::istream& in,
                              const std::string& name = "<mtx>");
[[nodiscard]] Vec read_vector(const std::string& path);

/// Write a dense vector as array-format n-by-1 real.
void write_vector(std::ostream& out, const Vec& v,
                  const std::string& comment = {});
void write_vector(const std::string& path, const Vec& v,
                  const std::string& comment = {});

}  // namespace mstep::io
