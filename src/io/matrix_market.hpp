// Matrix Market (ANSI .mtx) reader and writer, streaming.
//
// The standard exchange format for sparse matrices (NIST/matrix-market):
// a banner line, optional % comments, a size line, then entries.  This
// module covers the SPD-solver-relevant subset — coordinate and array
// formats, real/integer/pattern fields, general/symmetric/skew-symmetric
// storage — converting to and from la::CsrMatrix with symmetric storage
// expanded on read, plus dense vector (right-hand side) files.
//
// Reading is a two-pass streaming parse over a ByteSource (file, buffer,
// istream, or gzip — .mtx.gz is auto-detected from the magic bytes):
// pass 1 validates and counts nonzeros per row, pass 2 scatters straight
// into the preallocated CSR arrays.  Peak memory is O(nnz in CSR) — there
// is no staged triplet vector — so SuiteSparse-collection-sized files
// cost what their matrix costs.  See docs/file-formats.md for the full
// accepted grammar and every diagnostic.
//
// Diagnostics are precise: every parse failure throws MatrixMarketError
// carrying the file name, 1-based line, and 1-based column of the
// offending token, formatted "file:line:col: message" — a malformed file
// is a clear error, never a crash or a silently wrong matrix.
//
// The writer emits shortest round-trip decimal values (util::format_double)
// in a canonical layout (row-major entries, one comment line max), so
// write -> read -> write is byte-identical — asserted by
// tests/test_matrix_market.cpp and the property the fixture files under
// tests/data/ are generated with.  Writing to a path ending in ".gz"
// gzip-compresses the same canonical bytes.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "la/csr_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::io {

class ByteSource;

/// Parse failure with source position; what() reads "file:line:col: msg"
/// (line/col 0 when the error concerns the file as a whole, e.g. an
/// unopenable path or a corrupt/truncated gzip stream).
class MatrixMarketError : public std::runtime_error {
 public:
  MatrixMarketError(const std::string& name, std::size_t line,
                    std::size_t column, const std::string& message);

  /// 1-based source line of the offending token (0 = whole file).
  [[nodiscard]] std::size_t line() const { return line_; }
  /// 1-based source column of the offending token (0 = whole line).
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Entry layout declared in the banner: sparse triplets or a dense
/// column-major listing.
enum class MmFormat { kCoordinate, kArray };
/// Value domain declared in the banner (complex is rejected with a
/// diagnostic; pattern entries read as 1.0).
enum class MmField { kReal, kInteger, kPattern };
/// Storage symmetry declared in the banner; symmetric/skew files store
/// only the lower triangle, which the reader expands.
enum class MmSymmetry { kGeneral, kSymmetric, kSkewSymmetric };

[[nodiscard]] std::string to_string(MmFormat f);
[[nodiscard]] std::string to_string(MmField f);
[[nodiscard]] std::string to_string(MmSymmetry s);

/// The banner as declared in the file.
struct MmHeader {
  MmFormat format = MmFormat::kCoordinate;
  MmField field = MmField::kReal;
  MmSymmetry symmetry = MmSymmetry::kGeneral;
};

/// A read matrix: CSR with symmetric/skew storage fully expanded (the
/// matrix is the mathematical one, independent of how the file stored
/// it), the banner it was declared with, and the bandedness probe for
/// the DIA layout decision.
struct MmMatrix {
  la::CsrMatrix matrix;
  MmHeader header;
  /// True when la::DiaMatrix::profitable says the diagonal layout pays
  /// off for this matrix (e.g. banded stencils) — callers can route the
  /// solve through MatrixFormat::kDia, and `format=auto` does so
  /// automatically.
  bool dia_friendly = false;
};

/// Read from any ByteSource (the streaming core: file, buffer, gzip —
/// see io/byte_source.hpp).  The source must support rewind(), which the
/// two-pass reader uses between the counting and scattering passes.
[[nodiscard]] MmMatrix read_matrix_market(ByteSource& source);

/// Read from a caller-owned stream.  The stream must be seekable
/// (istringstream/ifstream are); gzip bytes are auto-detected just like
/// the path overload.  `name` is the diagnostic prefix.
[[nodiscard]] MmMatrix read_matrix_market(std::istream& in,
                                          const std::string& name = "<mtx>");

/// Open and read `path`, auto-detecting gzip (.mtx.gz) from the magic
/// bytes; throws MatrixMarketError (line 0) when unreadable.
[[nodiscard]] MmMatrix read_matrix_market(const std::string& path);

/// Writer knobs; the defaults emit coordinate/real/general.
struct MmWriteOptions {
  MmFormat format = MmFormat::kCoordinate;
  MmField field = MmField::kReal;
  /// kSymmetric / kSkewSymmetric store only the lower triangle; the
  /// writer verifies the matrix actually has the property (exactly, entry
  /// by entry) and throws std::invalid_argument otherwise.
  MmSymmetry symmetry = MmSymmetry::kGeneral;
  /// Optional single "% ..." comment line after the banner.
  std::string comment;
};

/// Write `a` in the canonical layout (write -> read -> write is
/// byte-identical).  Validates fully before emitting the first byte.
void write_matrix_market(std::ostream& out, const la::CsrMatrix& a,
                         const MmWriteOptions& options = {});
/// Same, to a file; a path ending in ".gz" is gzip-compressed.  A
/// validation failure never truncates a pre-existing file.
void write_matrix_market(const std::string& path, const la::CsrMatrix& a,
                         const MmWriteOptions& options = {});

/// Read a dense vector: an array-format n-by-1 (or 1-by-n) file, or a
/// coordinate n-by-1 file (absent entries read 0).  Gzip handled like
/// the matrix readers.
[[nodiscard]] Vec read_vector(ByteSource& source);
[[nodiscard]] Vec read_vector(std::istream& in,
                              const std::string& name = "<mtx>");
[[nodiscard]] Vec read_vector(const std::string& path);

/// Write a dense vector as array-format n-by-1 real; a ".gz" path is
/// gzip-compressed.
void write_vector(std::ostream& out, const Vec& v,
                  const std::string& comment = {});
void write_vector(const std::string& path, const Vec& v,
                  const std::string& comment = {});

}  // namespace mstep::io
