// Pluggable byte sources for the streaming Matrix Market reader.
//
// The reader is a pull parser over a ByteSource, so "where the bytes come
// from" — a file, an in-memory buffer, a caller's istream, or a gzip
// stream — is one small interface instead of an istream hierarchy.  The
// two-pass reading scheme (count, then scatter) needs exactly two
// operations: sequential read and rewind-to-start.
//
// Gzip (.mtx.gz) input is auto-detected from the 0x1f 0x8b magic bytes by
// open_byte_source(), so SuiteSparse-collection downloads work without
// decompressing first.  Decompression is zlib-backed and compiled in only
// when zlib is available (gzip_supported() reports the build); without it
// a gzip file is a clear diagnostic, never a parse of compressed garbage.
#pragma once

#include <cstddef>
#include <cstdio>
#include <ios>
#include <memory>
#include <string>

namespace mstep::io {

/// A rewindable stream of raw bytes feeding MmTokenStream.
///
/// Implementations throw MatrixMarketError (line 0) on I/O or
/// decompression failure, carrying the source name — a gzip error surfaces
/// as "file.mtx.gz:0:0: corrupt gzip stream ...", same shape as every
/// other reader diagnostic.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Read up to `n` bytes into `buf`; returns the number read, 0 at end
  /// of stream.
  virtual std::size_t read(char* buf, std::size_t n) = 0;

  /// Restart from byte 0 — pass 2 of the two-pass reader.
  virtual void rewind() = 0;

  /// The diagnostic name ("file:line:col" prefix) of this source.
  [[nodiscard]] virtual const std::string& name() const = 0;
};

/// Reads a file with plain buffered stdio; rewind is a seek.
class FileByteSource final : public ByteSource {
 public:
  /// Throws MatrixMarketError (line 0) when the file cannot be opened.
  explicit FileByteSource(std::string path);
  ~FileByteSource() override;
  FileByteSource(const FileByteSource&) = delete;
  FileByteSource& operator=(const FileByteSource&) = delete;

  std::size_t read(char* buf, std::size_t n) override;
  void rewind() override;
  [[nodiscard]] const std::string& name() const override { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Reads an owned in-memory buffer; rewind resets the cursor.  Used by
/// the tests and as the staging form for non-seekable inputs.
class BufferByteSource final : public ByteSource {
 public:
  BufferByteSource(std::string data, std::string name)
      : data_(std::move(data)), name_(std::move(name)) {}

  std::size_t read(char* buf, std::size_t n) override;
  void rewind() override { pos_ = 0; }
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  std::string data_;
  std::string name_;
  std::size_t pos_ = 0;
};

/// Adapts a caller-owned std::istream; rewind seeks back to the position
/// the stream had at construction (NOT byte 0 — reading may start
/// mid-stream, matching the historical istream overload semantics).
/// Throws on rewind when the stream cannot seek (pipe-like streams):
/// buffer such input through BufferByteSource instead.
class IstreamByteSource final : public ByteSource {
 public:
  IstreamByteSource(std::istream& in, std::string name);

  std::size_t read(char* buf, std::size_t n) override;
  void rewind() override;
  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  std::istream* in_;
  std::string name_;
  std::streampos start_;  // position at construction; -1 = not seekable
};

/// True when gzip support (zlib) was compiled into this build.
[[nodiscard]] bool gzip_supported();

/// True when `data` starts with the gzip magic bytes 0x1f 0x8b.
[[nodiscard]] bool looks_gzip(const char* data, std::size_t size);

/// Wrap `inner` in a zlib-inflating source (gzip or zlib framing).
/// Decompression errors are positioned MatrixMarketError diagnostics:
/// "truncated gzip stream" on premature end of compressed data, "corrupt
/// gzip stream" (with the zlib detail and compressed byte offset) on
/// mid-stream corruption or a checksum mismatch.  Throws immediately when
/// the build has no zlib (see gzip_supported()).
[[nodiscard]] std::unique_ptr<ByteSource> make_gzip_source(
    std::unique_ptr<ByteSource> inner);

/// gzip-compress `bytes` (for writing .mtx.gz); throws std::runtime_error
/// when the build has no zlib.
[[nodiscard]] std::string gzip_compress(const std::string& bytes);

/// Open `path` for reading, sniffing the first bytes: a gzip file is
/// transparently wrapped in the inflating source, anything else reads
/// as-is.  This is the entry point read_matrix_market(path) and
/// read_vector(path) route through, so ".mtx.gz just works".
[[nodiscard]] std::unique_ptr<ByteSource> open_byte_source(
    const std::string& path);

}  // namespace mstep::io
