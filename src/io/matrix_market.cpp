#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <utility>

#include "la/dia_matrix.hpp"
#include "util/spec.hpp"

namespace mstep::io {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Splits one line into whitespace-separated tokens, remembering the
/// 1-based column each token starts at — the source of the ":col" part
/// of every diagnostic.
struct LineTokens {
  std::vector<std::string> tokens;
  std::vector<std::size_t> columns;  // 1-based start column per token

  LineTokens() = default;
  explicit LineTokens(const std::string& line) {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i >= line.size()) break;
      const std::size_t start = i;
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      tokens.push_back(line.substr(start, i - start));
      columns.push_back(start + 1);
    }
  }
};

/// Reads lines, tracks the position, and throws positioned diagnostics.
class Parser {
 public:
  Parser(std::istream& in, std::string name)
      : in_(in), name_(std::move(name)) {}

  [[noreturn]] void fail(const std::string& message,
                         std::size_t column = 0) const {
    throw MatrixMarketError(name_, line_number_, column, message);
  }

  /// Next line that holds tokens (comments and blank lines skipped);
  /// false at end of file.
  bool next_content_line(LineTokens* out) {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_number_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty() && line[0] == '%') continue;  // comment
      LineTokens lt(line);
      if (lt.tokens.empty()) continue;  // blank
      *out = std::move(lt);
      return true;
    }
    ++line_number_;  // diagnostics for "unexpected end of file" point past it
    return false;
  }

  /// Raw next line (no comment skipping) — only for the banner, which
  /// must be the very first line.
  bool next_raw_line(std::string* out) {
    if (!std::getline(in_, *out)) {
      ++line_number_;  // "missing banner" points at line 1
      return false;
    }
    ++line_number_;
    if (!out->empty() && out->back() == '\r') out->pop_back();
    return true;
  }

  long long parse_index(const LineTokens& lt, std::size_t t,
                        const char* what) const {
    const std::string& tok = lt.tokens[t];
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(tok, &pos);
      if (pos != tok.size()) throw std::invalid_argument(tok);
      return v;
    } catch (const std::out_of_range&) {
      fail(std::string("integer ") + what + " '" + tok + "' overflows",
           lt.columns[t]);
    } catch (const std::exception&) {
      fail(std::string("expected integer ") + what + ", got '" + tok + "'",
           lt.columns[t]);
    }
  }

  double parse_value(const LineTokens& lt, std::size_t t, MmField field) const {
    const std::string& tok = lt.tokens[t];
    if (field == MmField::kInteger) {
      return static_cast<double>(parse_index(lt, t, "value"));
    }
    // strtod, not std::stod: a subnormal like 1e-320 is a valid Matrix
    // Market value but makes stod throw out_of_range (ERANGE underflow).
    // The Matrix Market grammar is plain decimal floats: no 'inf'/'nan'
    // tokens (which strtod would happily parse into a silently broken
    // matrix) and no hex floats.
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || end == tok.c_str() ||
        tok.find_first_of("xX") != std::string::npos) {
      fail("expected numeric value, got '" + tok + "'", lt.columns[t]);
    }
    if (errno == ERANGE && std::isinf(v)) {
      fail("value '" + tok + "' overflows the double range", lt.columns[t]);
    }
    if (!std::isfinite(v)) {
      fail("value '" + tok + "' is not finite", lt.columns[t]);
    }
    return v;
  }

  [[nodiscard]] std::size_t line_number() const { return line_number_; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::istream& in_;
  std::string name_;
  std::size_t line_number_ = 0;
};

MmHeader parse_banner(Parser& p) {
  std::string line;
  if (!p.next_raw_line(&line)) p.fail("empty file: missing banner");
  const LineTokens lt(line);
  if (lt.tokens.empty() || lower(lt.tokens[0]) != "%%matrixmarket") {
    p.fail("banner must start with '%%MatrixMarket'", 1);
  }
  if (lt.tokens.size() != 5) {
    p.fail("banner wants '%%MatrixMarket matrix <format> <field> <symmetry>'");
  }
  if (lower(lt.tokens[1]) != "matrix") {
    p.fail("unsupported object '" + lt.tokens[1] + "' (only 'matrix')",
           lt.columns[1]);
  }
  MmHeader h;
  const std::string format = lower(lt.tokens[2]);
  if (format == "coordinate") {
    h.format = MmFormat::kCoordinate;
  } else if (format == "array") {
    h.format = MmFormat::kArray;
  } else {
    p.fail("unknown format '" + lt.tokens[2] +
               "' (coordinate | array)",
           lt.columns[2]);
  }
  const std::string field = lower(lt.tokens[3]);
  if (field == "real") {
    h.field = MmField::kReal;
  } else if (field == "integer") {
    h.field = MmField::kInteger;
  } else if (field == "pattern") {
    h.field = MmField::kPattern;
  } else if (field == "complex") {
    p.fail("complex matrices are not supported", lt.columns[3]);
  } else {
    p.fail("unknown field '" + lt.tokens[3] +
               "' (real | integer | pattern)",
           lt.columns[3]);
  }
  const std::string symmetry = lower(lt.tokens[4]);
  if (symmetry == "general") {
    h.symmetry = MmSymmetry::kGeneral;
  } else if (symmetry == "symmetric") {
    h.symmetry = MmSymmetry::kSymmetric;
  } else if (symmetry == "skew-symmetric") {
    h.symmetry = MmSymmetry::kSkewSymmetric;
  } else if (symmetry == "hermitian") {
    p.fail("hermitian matrices are not supported", lt.columns[4]);
  } else {
    p.fail("unknown symmetry '" + lt.tokens[4] +
               "' (general | symmetric | skew-symmetric)",
           lt.columns[4]);
  }
  if (h.format == MmFormat::kArray && h.field == MmField::kPattern) {
    p.fail("array format cannot have a pattern field", lt.columns[3]);
  }
  return h;
}

index_t checked_dim(Parser& p, const LineTokens& lt, std::size_t t,
                    const char* what) {
  const long long v = p.parse_index(lt, t, what);
  if (v < 0 || v > std::numeric_limits<index_t>::max()) {
    p.fail(std::string(what) + " " + lt.tokens[t] +
               " does not fit the 32-bit index type",
           lt.columns[t]);
  }
  return static_cast<index_t>(v);
}

/// One stored coordinate entry of the file, before symmetry expansion.
struct StoredEntry {
  index_t i, j;
  double v;
  std::size_t line = 0;  // source line, for the duplicate diagnostic
};

/// Duplicate coordinates are invalid (CooBuilder would silently sum
/// them).  Sort-and-scan instead of a std::set: no per-entry node
/// allocations on the read path.
void check_duplicates(const Parser& p, const std::vector<StoredEntry>& entries) {
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return entries[a].i != entries[b].i ? entries[a].i < entries[b].i
                                        : entries[a].j < entries[b].j;
  });
  for (std::size_t k = 1; k < order.size(); ++k) {
    const StoredEntry& prev = entries[order[k - 1]];
    const StoredEntry& cur = entries[order[k]];
    if (prev.i == cur.i && prev.j == cur.j) {
      throw MatrixMarketError(
          p.name(), std::max(prev.line, cur.line), 1,
          "duplicate entry (" + std::to_string(cur.i + 1) + ", " +
              std::to_string(cur.j + 1) + ")");
    }
  }
}

la::CsrMatrix assemble(index_t rows, index_t cols, MmSymmetry symmetry,
                       const std::vector<StoredEntry>& entries) {
  la::CooBuilder builder(rows, cols);
  for (const auto& e : entries) {
    builder.add(e.i, e.j, e.v);
    if (e.i != e.j) {
      if (symmetry == MmSymmetry::kSymmetric) builder.add(e.j, e.i, e.v);
      if (symmetry == MmSymmetry::kSkewSymmetric) builder.add(e.j, e.i, -e.v);
    }
  }
  return builder.build();
}

la::CsrMatrix read_coordinate(Parser& p, const MmHeader& h, index_t rows,
                              index_t cols, index_t nnz) {
  std::vector<StoredEntry> entries;
  entries.reserve(static_cast<std::size_t>(nnz));
  LineTokens lt;
  for (index_t e = 0; e < nnz; ++e) {
    if (!p.next_content_line(&lt)) {
      p.fail("unexpected end of file: expected " + std::to_string(nnz) +
             " entries, got " + std::to_string(e));
    }
    const std::size_t want = h.field == MmField::kPattern ? 2 : 3;
    if (lt.tokens.size() != want) {
      p.fail("entry wants " + std::to_string(want) + " tokens (" +
                 (want == 2 ? "row col" : "row col value") + "), got " +
                 std::to_string(lt.tokens.size()),
             lt.columns[0]);
    }
    const long long i1 = p.parse_index(lt, 0, "row index");
    const long long j1 = p.parse_index(lt, 1, "column index");
    if (i1 < 1 || i1 > rows) {
      p.fail("row index " + std::to_string(i1) + " outside [1, " +
                 std::to_string(rows) + "]",
             lt.columns[0]);
    }
    if (j1 < 1 || j1 > cols) {
      p.fail("column index " + std::to_string(j1) + " outside [1, " +
                 std::to_string(cols) + "]",
             lt.columns[1]);
    }
    const index_t i = static_cast<index_t>(i1 - 1);
    const index_t j = static_cast<index_t>(j1 - 1);
    if (h.symmetry != MmSymmetry::kGeneral && j > i) {
      p.fail(to_string(h.symmetry) +
                 " storage keeps only the lower triangle; entry (" +
                 std::to_string(i1) + ", " + std::to_string(j1) +
                 ") lies above the diagonal",
             lt.columns[0]);
    }
    if (h.symmetry == MmSymmetry::kSkewSymmetric && i == j) {
      p.fail("skew-symmetric matrices have no diagonal entries, got (" +
                 std::to_string(i1) + ", " + std::to_string(j1) + ")",
             lt.columns[0]);
    }
    const double v =
        h.field == MmField::kPattern ? 1.0 : p.parse_value(lt, 2, h.field);
    entries.push_back({i, j, v, p.line_number()});
  }
  if (p.next_content_line(&lt)) {
    p.fail("extra entry after the declared " + std::to_string(nnz),
           lt.columns[0]);
  }
  check_duplicates(p, entries);
  return assemble(rows, cols, h.symmetry, entries);
}

la::CsrMatrix read_array(Parser& p, const MmHeader& h, index_t rows,
                         index_t cols) {
  if (h.symmetry != MmSymmetry::kGeneral && rows != cols) {
    p.fail(to_string(h.symmetry) + " array matrix must be square, got " +
           std::to_string(rows) + "x" + std::to_string(cols));
  }
  std::vector<StoredEntry> entries;
  LineTokens lt;
  // Column-major listing; symmetric stores i >= j, skew i > j.
  for (index_t j = 0; j < cols; ++j) {
    index_t i0 = 0;
    if (h.symmetry == MmSymmetry::kSymmetric) i0 = j;
    if (h.symmetry == MmSymmetry::kSkewSymmetric) i0 = j + 1;
    for (index_t i = i0; i < rows; ++i) {
      if (!p.next_content_line(&lt)) {
        p.fail("unexpected end of file in the dense value listing");
      }
      if (lt.tokens.size() != 1) {
        p.fail("array format wants one value per line, got " +
                   std::to_string(lt.tokens.size()) + " tokens",
               lt.columns[0]);
      }
      const double v = p.parse_value(lt, 0, h.field);
      // Zeros are not stored in the sparse result; the dense writer
      // regenerates them from the shape.
      if (v != 0.0) entries.push_back({i, j, v});
    }
  }
  if (p.next_content_line(&lt)) {
    p.fail("extra value after the dense listing", lt.columns[0]);
  }
  return assemble(rows, cols, h.symmetry, entries);
}

void check_property(const la::CsrMatrix& a, MmSymmetry symmetry) {
  if (symmetry == MmSymmetry::kGeneral) return;
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("write_matrix_market: " + to_string(symmetry) +
                                " output needs a square matrix");
  }
  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = col[k];
      const double mirror = symmetry == MmSymmetry::kSymmetric
                                ? val[k]
                                : -val[k];
      if (symmetry == MmSymmetry::kSkewSymmetric && i == j &&
          val[k] != 0.0) {
        throw std::invalid_argument(
            "write_matrix_market: skew-symmetric matrix has nonzero "
            "diagonal at row " +
            std::to_string(i + 1));
      }
      if (a.at(j, i) != mirror) {
        throw std::invalid_argument(
            "write_matrix_market: matrix is not " + to_string(symmetry) +
            " at entry (" + std::to_string(i + 1) + ", " +
            std::to_string(j + 1) + ")");
      }
    }
  }
}

/// The writers emit a single "% ..." line; a newline inside the comment
/// would smuggle an unprefixed content line into the file.
void check_comment(const std::string& comment) {
  if (comment.find('\n') != std::string::npos ||
      comment.find('\r') != std::string::npos) {
    throw std::invalid_argument(
        "write_matrix_market: comment must be a single line");
  }
}

std::string value_repr(double v, MmField field) {
  if (field == MmField::kInteger) {
    if (v != std::floor(v) || std::abs(v) > 9.007199254740992e15) {
      throw std::invalid_argument(
          "write_matrix_market: integer field but value " +
          util::format_double(v) + " is not an exact integer");
    }
    return std::to_string(static_cast<long long>(v));
  }
  return util::format_double(v);
}

}  // namespace

MatrixMarketError::MatrixMarketError(const std::string& name,
                                     std::size_t line, std::size_t column,
                                     const std::string& message)
    : std::runtime_error(name + ":" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

std::string to_string(MmFormat f) {
  return f == MmFormat::kCoordinate ? "coordinate" : "array";
}

std::string to_string(MmField f) {
  switch (f) {
    case MmField::kReal: return "real";
    case MmField::kInteger: return "integer";
    default: return "pattern";
  }
}

std::string to_string(MmSymmetry s) {
  switch (s) {
    case MmSymmetry::kGeneral: return "general";
    case MmSymmetry::kSymmetric: return "symmetric";
    default: return "skew-symmetric";
  }
}

MmMatrix read_matrix_market(std::istream& in, const std::string& name) {
  Parser p(in, name);
  MmMatrix out;
  out.header = parse_banner(p);
  LineTokens size_line;
  if (!p.next_content_line(&size_line)) p.fail("missing size line");
  const std::size_t want = out.header.format == MmFormat::kCoordinate ? 3 : 2;
  if (size_line.tokens.size() != want) {
    p.fail("size line wants " + std::to_string(want) + " integers (" +
               (want == 3 ? "rows cols nnz" : "rows cols") + "), got " +
               std::to_string(size_line.tokens.size()),
           size_line.columns[0]);
  }
  const index_t rows = checked_dim(p, size_line, 0, "row count");
  const index_t cols = checked_dim(p, size_line, 1, "column count");
  if (out.header.symmetry != MmSymmetry::kGeneral && rows != cols) {
    p.fail(to_string(out.header.symmetry) + " matrix must be square, got " +
               std::to_string(rows) + "x" + std::to_string(cols),
           size_line.columns[0]);
  }
  if (out.header.format == MmFormat::kCoordinate) {
    const index_t nnz = checked_dim(p, size_line, 2, "entry count");
    // Entries are duplicate-free, so rows*cols bounds them; rejecting
    // here keeps a tiny malformed file from driving a giant reserve().
    if (static_cast<long long>(nnz) >
        static_cast<long long>(rows) * cols) {
      p.fail("entry count " + std::to_string(nnz) + " exceeds rows*cols = " +
                 std::to_string(static_cast<long long>(rows) * cols),
             size_line.columns[2]);
    }
    out.matrix = read_coordinate(p, out.header, rows, cols, nnz);
  } else {
    out.matrix = read_array(p, out.header, rows, cols);
  }
  out.dia_friendly = la::DiaMatrix::profitable(out.matrix);
  return out;
}

MmMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MatrixMarketError(path, 0, 0, "cannot open file");
  return read_matrix_market(in, path);
}

void write_matrix_market(std::ostream& out, const la::CsrMatrix& a,
                         const MmWriteOptions& options) {
  // All validation happens before the first byte is emitted, so a throw
  // never leaves a half-written file behind.
  check_property(a, options.symmetry);
  check_comment(options.comment);
  if (options.format == MmFormat::kArray &&
      options.field == MmField::kPattern) {
    throw std::invalid_argument(
        "write_matrix_market: array format cannot have a pattern field");
  }
  if (options.field == MmField::kInteger) {
    for (const double v : a.values()) (void)value_repr(v, MmField::kInteger);
  } else if (options.field == MmField::kReal) {
    // The reader (correctly) rejects 'nan'/'inf' tokens, so emitting one
    // would break the write -> read round trip.
    for (const double v : a.values()) {
      if (!std::isfinite(v)) {
        throw std::invalid_argument(
            "write_matrix_market: matrix contains a non-finite value");
      }
    }
  }
  out << "%%MatrixMarket matrix " << to_string(options.format) << ' '
      << to_string(options.field) << ' ' << to_string(options.symmetry)
      << '\n';
  if (!options.comment.empty()) out << "% " << options.comment << '\n';

  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  const bool lower_only = options.symmetry != MmSymmetry::kGeneral;
  const bool strict_lower = options.symmetry == MmSymmetry::kSkewSymmetric;

  if (options.format == MmFormat::kArray) {
    out << a.rows() << ' ' << a.cols() << '\n';
    for (index_t j = 0; j < a.cols(); ++j) {
      index_t i0 = 0;
      if (options.symmetry == MmSymmetry::kSymmetric) i0 = j;
      if (strict_lower) i0 = j + 1;
      for (index_t i = i0; i < a.rows(); ++i) {
        out << value_repr(a.at(i, j), options.field) << '\n';
      }
    }
    return;
  }

  index_t stored = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = col[k];
      if (lower_only && (j > i || (strict_lower && j == i))) continue;
      ++stored;
    }
  }
  out << a.rows() << ' ' << a.cols() << ' ' << stored << '\n';
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = col[k];
      if (lower_only && (j > i || (strict_lower && j == i))) continue;
      out << (i + 1) << ' ' << (j + 1);
      if (options.field != MmField::kPattern) {
        out << ' ' << value_repr(val[k], options.field);
      }
      out << '\n';
    }
  }
}

void write_matrix_market(const std::string& path, const la::CsrMatrix& a,
                         const MmWriteOptions& options) {
  // Format fully before touching the file, so a validation throw cannot
  // truncate a pre-existing one.
  std::ostringstream buf;
  write_matrix_market(buf, a, options);
  std::ofstream out(path);
  if (!out) throw MatrixMarketError(path, 0, 0, "cannot open file for write");
  out << buf.str();
}

Vec read_vector(std::istream& in, const std::string& name) {
  const MmMatrix mm = read_matrix_market(in, name);
  const la::CsrMatrix& a = mm.matrix;
  if (a.cols() != 1 && a.rows() != 1) {
    throw MatrixMarketError(name, 0, 0,
                            "expected a vector (one row or one column), got " +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()));
  }
  const bool column = a.cols() == 1;
  Vec v(static_cast<std::size_t>(column ? a.rows() : a.cols()), 0.0);
  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      v[static_cast<std::size_t>(column ? i : col[k])] = val[k];
    }
  }
  return v;
}

Vec read_vector(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MatrixMarketError(path, 0, 0, "cannot open file");
  return read_vector(in, path);
}

void write_vector(std::ostream& out, const Vec& v,
                  const std::string& comment) {
  check_comment(comment);
  for (const double x : v) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument(
          "write_vector: vector contains a non-finite value");
    }
  }
  out << "%%MatrixMarket matrix array real general\n";
  if (!comment.empty()) out << "% " << comment << '\n';
  out << v.size() << " 1\n";
  for (const double x : v) out << util::format_double(x) << '\n';
}

void write_vector(const std::string& path, const Vec& v,
                  const std::string& comment) {
  std::ostringstream buf;
  write_vector(buf, v, comment);
  std::ofstream out(path);
  if (!out) throw MatrixMarketError(path, 0, 0, "cannot open file for write");
  out << buf.str();
}

}  // namespace mstep::io
