#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "io/byte_source.hpp"
#include "io/token_stream.hpp"
#include "la/dia_matrix.hpp"
#include "util/spec.hpp"

namespace mstep::io {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// ---- token parsing ----------------------------------------------------------

long long parse_index(const MmTokenStream& ts, std::size_t t,
                      const char* what) {
  const MmTokenStream::Token& tok = ts.tokens()[t];
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(tok.text, &pos);
    if (pos != tok.text.size()) throw std::invalid_argument(tok.text);
    return v;
  } catch (const std::out_of_range&) {
    ts.fail(std::string("integer ") + what + " '" + tok.text + "' overflows",
            tok.column);
  } catch (const std::exception&) {
    ts.fail(std::string("expected integer ") + what + ", got '" + tok.text +
                "'",
            tok.column);
  }
}

double parse_value(const MmTokenStream& ts, std::size_t t, MmField field) {
  const MmTokenStream::Token& tok = ts.tokens()[t];
  if (field == MmField::kInteger) {
    return static_cast<double>(parse_index(ts, t, "value"));
  }
  // strtod, not std::stod: a subnormal like 1e-320 is a valid Matrix
  // Market value but makes stod throw out_of_range (ERANGE underflow).
  // The Matrix Market grammar is plain decimal floats: no 'inf'/'nan'
  // tokens (which strtod would happily parse into a silently broken
  // matrix) and no hex floats.
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.text.c_str(), &end);
  if (end != tok.text.c_str() + tok.text.size() || end == tok.text.c_str() ||
      tok.text.find_first_of("xX") != std::string::npos) {
    ts.fail("expected numeric value, got '" + tok.text + "'", tok.column);
  }
  if (errno == ERANGE && std::isinf(v)) {
    ts.fail("value '" + tok.text + "' overflows the double range",
            tok.column);
  }
  if (!std::isfinite(v)) {
    ts.fail("value '" + tok.text + "' is not finite", tok.column);
  }
  return v;
}

index_t checked_dim(const MmTokenStream& ts, std::size_t t,
                    const char* what) {
  const long long v = parse_index(ts, t, what);
  if (v < 0 || v > std::numeric_limits<index_t>::max()) {
    ts.fail(std::string(what) + " " + ts.tokens()[t].text +
                " does not fit the 32-bit index type",
            ts.tokens()[t].column);
  }
  return static_cast<index_t>(v);
}

// ---- header and size line ---------------------------------------------------

MmHeader parse_banner(MmTokenStream& ts) {
  std::string line;
  if (!ts.next_raw_line(&line)) ts.fail("empty file: missing banner");
  // The banner is the one line read raw (comment skipping would eat it),
  // but it tokenizes by the same rule as every other line.
  std::vector<MmTokenStream::Token> tokens;
  MmTokenStream::tokenize(line, &tokens);
  if (tokens.empty() || lower(tokens[0].text) != "%%matrixmarket") {
    ts.fail("banner must start with '%%MatrixMarket'", 1);
  }
  if (tokens.size() != 5) {
    ts.fail("banner wants '%%MatrixMarket matrix <format> <field> <symmetry>'");
  }
  if (lower(tokens[1].text) != "matrix") {
    ts.fail("unsupported object '" + tokens[1].text + "' (only 'matrix')",
            tokens[1].column);
  }
  MmHeader h;
  const std::string format = lower(tokens[2].text);
  if (format == "coordinate") {
    h.format = MmFormat::kCoordinate;
  } else if (format == "array") {
    h.format = MmFormat::kArray;
  } else {
    ts.fail("unknown format '" + tokens[2].text +
                "' (coordinate | array)",
            tokens[2].column);
  }
  const std::string field = lower(tokens[3].text);
  if (field == "real") {
    h.field = MmField::kReal;
  } else if (field == "integer") {
    h.field = MmField::kInteger;
  } else if (field == "pattern") {
    h.field = MmField::kPattern;
  } else if (field == "complex") {
    ts.fail("complex matrices are not supported", tokens[3].column);
  } else {
    ts.fail("unknown field '" + tokens[3].text +
                "' (real | integer | pattern)",
            tokens[3].column);
  }
  const std::string symmetry = lower(tokens[4].text);
  if (symmetry == "general") {
    h.symmetry = MmSymmetry::kGeneral;
  } else if (symmetry == "symmetric") {
    h.symmetry = MmSymmetry::kSymmetric;
  } else if (symmetry == "skew-symmetric") {
    h.symmetry = MmSymmetry::kSkewSymmetric;
  } else if (symmetry == "hermitian") {
    ts.fail("hermitian matrices are not supported", tokens[4].column);
  } else {
    ts.fail("unknown symmetry '" + tokens[4].text +
                "' (general | symmetric | skew-symmetric)",
            tokens[4].column);
  }
  if (h.format == MmFormat::kArray && h.field == MmField::kPattern) {
    ts.fail("array format cannot have a pattern field", tokens[3].column);
  }
  return h;
}

struct MmSize {
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;  // declared entries; unused for array format
};

MmSize parse_size_line(MmTokenStream& ts, const MmHeader& h) {
  if (!ts.next_content_line()) ts.fail("missing size line");
  const std::size_t want = h.format == MmFormat::kCoordinate ? 3 : 2;
  if (ts.tokens().size() != want) {
    ts.fail("size line wants " + std::to_string(want) + " integers (" +
                (want == 3 ? "rows cols nnz" : "rows cols") + "), got " +
                std::to_string(ts.tokens().size()),
            ts.tokens()[0].column);
  }
  MmSize s;
  s.rows = checked_dim(ts, 0, "row count");
  s.cols = checked_dim(ts, 1, "column count");
  if (h.symmetry != MmSymmetry::kGeneral && s.rows != s.cols) {
    ts.fail(to_string(h.symmetry) + " matrix must be square, got " +
                std::to_string(s.rows) + "x" + std::to_string(s.cols),
            ts.tokens()[0].column);
  }
  if (h.format == MmFormat::kCoordinate) {
    s.nnz = checked_dim(ts, 2, "entry count");
    // Entries are duplicate-free, so rows*cols bounds them; rejecting
    // here keeps a tiny malformed file from driving a giant allocation.
    if (static_cast<long long>(s.nnz) >
        static_cast<long long>(s.rows) * s.cols) {
      ts.fail("entry count " + std::to_string(s.nnz) +
                  " exceeds rows*cols = " +
                  std::to_string(static_cast<long long>(s.rows) * s.cols),
              ts.tokens()[2].column);
    }
  }
  return s;
}

// ---- streaming two-pass coordinate/array reads ------------------------------
//
// Pass 1 tokenizes the whole file, validates every entry, and counts the
// expanded (post-symmetry) nonzeros per row.  The counts become the CSR
// row_ptr by prefix sum; pass 2 rewinds the source and scatters column
// indices and values straight into the preallocated CSR arrays.  Peak
// memory is the final CSR plus one O(rows) cursor array — there is no
// staged triplet vector, so a SuiteSparse-sized file costs what its
// matrix costs.

/// One parsed coordinate entry (0-based, validated against the header).
struct CoordEntry {
  index_t i = 0;
  index_t j = 0;
  double v = 0.0;
};

/// Parse and validate the next coordinate entry; `e` is its 0-based
/// ordinal, used by the end-of-file diagnostic.
CoordEntry next_coord_entry(MmTokenStream& ts, const MmHeader& h,
                            const MmSize& s, index_t e) {
  if (!ts.next_content_line()) {
    ts.fail("unexpected end of file: expected " + std::to_string(s.nnz) +
            " entries, got " + std::to_string(e));
  }
  const std::size_t want = h.field == MmField::kPattern ? 2 : 3;
  if (ts.tokens().size() != want) {
    ts.fail("entry wants " + std::to_string(want) + " tokens (" +
                (want == 2 ? "row col" : "row col value") + "), got " +
                std::to_string(ts.tokens().size()),
            ts.tokens()[0].column);
  }
  const long long i1 = parse_index(ts, 0, "row index");
  const long long j1 = parse_index(ts, 1, "column index");
  if (i1 < 1 || i1 > s.rows) {
    ts.fail("row index " + std::to_string(i1) + " outside [1, " +
                std::to_string(s.rows) + "]",
            ts.tokens()[0].column);
  }
  if (j1 < 1 || j1 > s.cols) {
    ts.fail("column index " + std::to_string(j1) + " outside [1, " +
                std::to_string(s.cols) + "]",
            ts.tokens()[1].column);
  }
  CoordEntry entry;
  entry.i = static_cast<index_t>(i1 - 1);
  entry.j = static_cast<index_t>(j1 - 1);
  if (h.symmetry != MmSymmetry::kGeneral && entry.j > entry.i) {
    ts.fail(to_string(h.symmetry) +
                " storage keeps only the lower triangle; entry (" +
                std::to_string(i1) + ", " + std::to_string(j1) +
                ") lies above the diagonal",
            ts.tokens()[0].column);
  }
  if (h.symmetry == MmSymmetry::kSkewSymmetric && entry.i == entry.j) {
    ts.fail("skew-symmetric matrices have no diagonal entries, got (" +
                std::to_string(i1) + ", " + std::to_string(j1) + ")",
            ts.tokens()[0].column);
  }
  entry.v =
      h.field == MmField::kPattern ? 1.0 : parse_value(ts, 2, h.field);
  return entry;
}

/// Error path only: the duplicate (si, sj) — STORED, 1-based-off-by-one
/// coordinates — was detected after scattering, where per-entry source
/// lines are no longer known.  Re-tokenize the file and report the line
/// of the second stored occurrence, matching what a staged reader would
/// have said.  (A third pass is fine here: diagnostics may be slow, the
/// happy path may not.)
[[noreturn]] void fail_duplicate(MmTokenStream& ts, const MmHeader& h,
                                 const MmSize& s, index_t si, index_t sj) {
  ts.rewind();
  std::string banner;
  (void)ts.next_raw_line(&banner);
  (void)ts.next_content_line();  // size line
  int seen = 0;
  std::size_t line = 0;
  for (index_t e = 0; e < s.nnz; ++e) {
    const CoordEntry entry = next_coord_entry(ts, h, s, e);
    if (entry.i == si && entry.j == sj) {
      line = ts.line_number();
      if (++seen == 2) break;
    }
  }
  throw MatrixMarketError(ts.name(), line, 1,
                          "duplicate entry (" + std::to_string(si + 1) +
                              ", " + std::to_string(sj + 1) + ")");
}

la::CsrMatrix read_coordinate(MmTokenStream& ts, const MmHeader& h,
                              const MmSize& s) {
  // Pass 1: validate every entry and count expanded nonzeros per row.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(s.rows) + 1, 0);
  for (index_t e = 0; e < s.nnz; ++e) {
    const CoordEntry entry = next_coord_entry(ts, h, s, e);
    ++row_ptr[entry.i + 1];
    if (entry.i != entry.j && h.symmetry != MmSymmetry::kGeneral) {
      ++row_ptr[entry.j + 1];
    }
  }
  if (ts.next_content_line()) {
    ts.fail("extra entry after the declared " + std::to_string(s.nnz),
            ts.tokens()[0].column);
  }
  for (index_t i = 0; i < s.rows; ++i) row_ptr[i + 1] += row_ptr[i];
  const std::size_t total = static_cast<std::size_t>(row_ptr[s.rows]);

  // Pass 2: scatter straight into the CSR arrays.
  std::vector<index_t> col(total);
  std::vector<double> val(total);
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  ts.rewind();
  std::string banner;
  if (!ts.next_raw_line(&banner) || !ts.next_content_line()) {
    ts.fail("input changed between reader passes");
  }
  for (index_t e = 0; e < s.nnz; ++e) {
    const CoordEntry entry = next_coord_entry(ts, h, s, e);
    col[cursor[entry.i]] = entry.j;
    val[cursor[entry.i]++] = entry.v;
    if (entry.i != entry.j) {
      if (h.symmetry == MmSymmetry::kSymmetric) {
        col[cursor[entry.j]] = entry.i;
        val[cursor[entry.j]++] = entry.v;
      } else if (h.symmetry == MmSymmetry::kSkewSymmetric) {
        col[cursor[entry.j]] = entry.i;
        val[cursor[entry.j]++] = -entry.v;
      }
    }
  }

  // Restore the CSR invariant (columns sorted within each row) and check
  // for duplicates — adjacent equal columns after the sort.  The scratch
  // is O(longest row), reused across rows.
  std::vector<std::pair<index_t, double>> row_scratch;
  for (index_t i = 0; i < s.rows; ++i) {
    const index_t b = row_ptr[i];
    const index_t n = row_ptr[i + 1] - b;
    if (n <= 1) continue;
    row_scratch.resize(static_cast<std::size_t>(n));
    for (index_t k = 0; k < n; ++k) {
      row_scratch[k] = {col[b + k], val[b + k]};
    }
    std::sort(row_scratch.begin(), row_scratch.end(),
              [](const auto& a, const auto& c) { return a.first < c.first; });
    for (index_t k = 0; k < n; ++k) {
      if (k > 0 && row_scratch[k].first == row_scratch[k - 1].first) {
        // Expanded duplicates always come from stored duplicates (mirrors
        // land strictly above the diagonal, stored entries strictly
        // below), so the stored coordinate is the lower-triangle one.
        const index_t j = row_scratch[k].first;
        const index_t si = h.symmetry == MmSymmetry::kGeneral || i >= j
                               ? i
                               : j;
        const index_t sj = si == i ? j : i;
        fail_duplicate(ts, h, s, si, sj);
      }
      col[b + k] = row_scratch[k].first;
      val[b + k] = row_scratch[k].second;
    }
  }
  return la::CsrMatrix(s.rows, s.cols, std::move(row_ptr), std::move(col),
                       std::move(val));
}

la::CsrMatrix read_array(MmTokenStream& ts, const MmHeader& h,
                         const MmSize& s) {
  if (h.symmetry != MmSymmetry::kGeneral && s.rows != s.cols) {
    ts.fail(to_string(h.symmetry) + " array matrix must be square, got " +
            std::to_string(s.rows) + "x" + std::to_string(s.cols));
  }
  const auto start_row = [&](index_t j) {
    if (h.symmetry == MmSymmetry::kSymmetric) return j;
    if (h.symmetry == MmSymmetry::kSkewSymmetric) return j + 1;
    return index_t{0};
  };

  // Pass 1: count the nonzero values per (expanded) row.  Zeros in the
  // dense listing are not stored in the sparse result; the dense writer
  // regenerates them from the shape.
  std::vector<index_t> row_ptr(static_cast<std::size_t>(s.rows) + 1, 0);
  for (index_t j = 0; j < s.cols; ++j) {
    for (index_t i = start_row(j); i < s.rows; ++i) {
      if (!ts.next_content_line()) {
        ts.fail("unexpected end of file in the dense value listing");
      }
      if (ts.tokens().size() != 1) {
        ts.fail("array format wants one value per line, got " +
                    std::to_string(ts.tokens().size()) + " tokens",
                ts.tokens()[0].column);
      }
      const double v = parse_value(ts, 0, h.field);
      if (v == 0.0) continue;
      ++row_ptr[i + 1];
      if (i != j && h.symmetry != MmSymmetry::kGeneral) ++row_ptr[j + 1];
    }
  }
  if (ts.next_content_line()) {
    ts.fail("extra value after the dense listing", ts.tokens()[0].column);
  }
  for (index_t i = 0; i < s.rows; ++i) row_ptr[i + 1] += row_ptr[i];
  const std::size_t total = static_cast<std::size_t>(row_ptr[s.rows]);

  // Pass 2: scatter.  The column-major listing feeds each row its direct
  // entries (ascending j) before its mirrors (ascending i > j), so the
  // scattered rows are already column-sorted — no per-row sort needed,
  // and a dense listing cannot contain duplicates.
  std::vector<index_t> col(total);
  std::vector<double> val(total);
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  ts.rewind();
  std::string banner;
  if (!ts.next_raw_line(&banner) || !ts.next_content_line()) {
    ts.fail("input changed between reader passes");
  }
  for (index_t j = 0; j < s.cols; ++j) {
    for (index_t i = start_row(j); i < s.rows; ++i) {
      if (!ts.next_content_line()) {
        ts.fail("input changed between reader passes");
      }
      const double v = parse_value(ts, 0, h.field);
      if (v == 0.0) continue;
      col[cursor[i]] = j;
      val[cursor[i]++] = v;
      if (i != j && h.symmetry != MmSymmetry::kGeneral) {
        col[cursor[j]] = i;
        val[cursor[j]++] =
            h.symmetry == MmSymmetry::kSkewSymmetric ? -v : v;
      }
    }
  }
  return la::CsrMatrix(s.rows, s.cols, std::move(row_ptr), std::move(col),
                       std::move(val));
}

// ---- writer validation ------------------------------------------------------

void check_property(const la::CsrMatrix& a, MmSymmetry symmetry) {
  if (symmetry == MmSymmetry::kGeneral) return;
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("write_matrix_market: " + to_string(symmetry) +
                                " output needs a square matrix");
  }
  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = col[k];
      const double mirror = symmetry == MmSymmetry::kSymmetric
                                ? val[k]
                                : -val[k];
      if (symmetry == MmSymmetry::kSkewSymmetric && i == j &&
          val[k] != 0.0) {
        throw std::invalid_argument(
            "write_matrix_market: skew-symmetric matrix has nonzero "
            "diagonal at row " +
            std::to_string(i + 1));
      }
      if (a.at(j, i) != mirror) {
        throw std::invalid_argument(
            "write_matrix_market: matrix is not " + to_string(symmetry) +
            " at entry (" + std::to_string(i + 1) + ", " +
            std::to_string(j + 1) + ")");
      }
    }
  }
}

/// The writers emit a single "% ..." line; a newline inside the comment
/// would smuggle an unprefixed content line into the file.
void check_comment(const std::string& comment) {
  if (comment.find('\n') != std::string::npos ||
      comment.find('\r') != std::string::npos) {
    throw std::invalid_argument(
        "write_matrix_market: comment must be a single line");
  }
}

std::string value_repr(double v, MmField field) {
  if (field == MmField::kInteger) {
    if (v != std::floor(v) || std::abs(v) > 9.007199254740992e15) {
      throw std::invalid_argument(
          "write_matrix_market: integer field but value " +
          util::format_double(v) + " is not an exact integer");
    }
    return std::to_string(static_cast<long long>(v));
  }
  return util::format_double(v);
}

/// Write `bytes` to `path`, gzip-compressing when the path ends in ".gz"
/// (so writing the twin of a file the reader auto-detects is symmetric).
void write_file_bytes(const std::string& path, const std::string& bytes) {
  const bool gz =
      path.size() >= 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
  // Compress before opening (and only then copy): a gzip_compress throw
  // must not truncate a pre-existing file, and the plain path writes the
  // serialized bytes without another full-size copy.
  const std::string compressed = gz ? gzip_compress(bytes) : std::string();
  const std::string& out_bytes = gz ? compressed : bytes;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw MatrixMarketError(path, 0, 0, "cannot open file for write");
  out.write(out_bytes.data(),
            static_cast<std::streamsize>(out_bytes.size()));
}

}  // namespace

MatrixMarketError::MatrixMarketError(const std::string& name,
                                     std::size_t line, std::size_t column,
                                     const std::string& message)
    : std::runtime_error(name + ":" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

std::string to_string(MmFormat f) {
  return f == MmFormat::kCoordinate ? "coordinate" : "array";
}

std::string to_string(MmField f) {
  switch (f) {
    case MmField::kReal: return "real";
    case MmField::kInteger: return "integer";
    default: return "pattern";
  }
}

std::string to_string(MmSymmetry s) {
  switch (s) {
    case MmSymmetry::kGeneral: return "general";
    case MmSymmetry::kSymmetric: return "symmetric";
    default: return "skew-symmetric";
  }
}

MmMatrix read_matrix_market(ByteSource& source) {
  MmTokenStream ts(source);
  MmMatrix out;
  out.header = parse_banner(ts);
  const MmSize size = parse_size_line(ts, out.header);
  out.matrix = out.header.format == MmFormat::kCoordinate
                   ? read_coordinate(ts, out.header, size)
                   : read_array(ts, out.header, size);
  out.dia_friendly = la::DiaMatrix::profitable(out.matrix);
  return out;
}

MmMatrix read_matrix_market(std::istream& in, const std::string& name) {
  IstreamByteSource raw(in, name);
  // Sniff the gzip magic so in-memory .gz bytes read like .gz files; the
  // sniff costs one rewind, which the two-pass reader requires anyway.
  char magic[2];
  const std::size_t got = raw.read(magic, sizeof(magic));
  raw.rewind();
  if (looks_gzip(magic, got)) {
    auto gz = make_gzip_source(std::make_unique<IstreamByteSource>(in, name));
    return read_matrix_market(*gz);
  }
  return read_matrix_market(raw);
}

MmMatrix read_matrix_market(const std::string& path) {
  const auto source = open_byte_source(path);
  return read_matrix_market(*source);
}

void write_matrix_market(std::ostream& out, const la::CsrMatrix& a,
                         const MmWriteOptions& options) {
  // All validation happens before the first byte is emitted, so a throw
  // never leaves a half-written file behind.
  check_property(a, options.symmetry);
  check_comment(options.comment);
  if (options.format == MmFormat::kArray &&
      options.field == MmField::kPattern) {
    throw std::invalid_argument(
        "write_matrix_market: array format cannot have a pattern field");
  }
  if (options.field == MmField::kInteger) {
    for (const double v : a.values()) (void)value_repr(v, MmField::kInteger);
  } else if (options.field == MmField::kReal) {
    // The reader (correctly) rejects 'nan'/'inf' tokens, so emitting one
    // would break the write -> read round trip.
    for (const double v : a.values()) {
      if (!std::isfinite(v)) {
        throw std::invalid_argument(
            "write_matrix_market: matrix contains a non-finite value");
      }
    }
  }
  out << "%%MatrixMarket matrix " << to_string(options.format) << ' '
      << to_string(options.field) << ' ' << to_string(options.symmetry)
      << '\n';
  if (!options.comment.empty()) out << "% " << options.comment << '\n';

  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  const bool lower_only = options.symmetry != MmSymmetry::kGeneral;
  const bool strict_lower = options.symmetry == MmSymmetry::kSkewSymmetric;

  if (options.format == MmFormat::kArray) {
    out << a.rows() << ' ' << a.cols() << '\n';
    for (index_t j = 0; j < a.cols(); ++j) {
      index_t i0 = 0;
      if (options.symmetry == MmSymmetry::kSymmetric) i0 = j;
      if (strict_lower) i0 = j + 1;
      for (index_t i = i0; i < a.rows(); ++i) {
        out << value_repr(a.at(i, j), options.field) << '\n';
      }
    }
    return;
  }

  index_t stored = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = col[k];
      if (lower_only && (j > i || (strict_lower && j == i))) continue;
      ++stored;
    }
  }
  out << a.rows() << ' ' << a.cols() << ' ' << stored << '\n';
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = col[k];
      if (lower_only && (j > i || (strict_lower && j == i))) continue;
      out << (i + 1) << ' ' << (j + 1);
      if (options.field != MmField::kPattern) {
        out << ' ' << value_repr(val[k], options.field);
      }
      out << '\n';
    }
  }
}

void write_matrix_market(const std::string& path, const la::CsrMatrix& a,
                         const MmWriteOptions& options) {
  // Format fully before touching the file, so a validation throw cannot
  // truncate a pre-existing one.
  std::ostringstream buf;
  write_matrix_market(buf, a, options);
  write_file_bytes(path, buf.str());
}

namespace {

Vec vector_from_matrix(const MmMatrix& mm, const std::string& name) {
  const la::CsrMatrix& a = mm.matrix;
  if (a.cols() != 1 && a.rows() != 1) {
    throw MatrixMarketError(name, 0, 0,
                            "expected a vector (one row or one column), got " +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()));
  }
  const bool column = a.cols() == 1;
  Vec v(static_cast<std::size_t>(column ? a.rows() : a.cols()), 0.0);
  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      v[static_cast<std::size_t>(column ? i : col[k])] = val[k];
    }
  }
  return v;
}

}  // namespace

Vec read_vector(ByteSource& source) {
  return vector_from_matrix(read_matrix_market(source), source.name());
}

Vec read_vector(std::istream& in, const std::string& name) {
  return vector_from_matrix(read_matrix_market(in, name), name);
}

Vec read_vector(const std::string& path) {
  const auto source = open_byte_source(path);
  return read_vector(*source);
}

void write_vector(std::ostream& out, const Vec& v,
                  const std::string& comment) {
  check_comment(comment);
  for (const double x : v) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument(
          "write_vector: vector contains a non-finite value");
    }
  }
  out << "%%MatrixMarket matrix array real general\n";
  if (!comment.empty()) out << "% " << comment << '\n';
  out << v.size() << " 1\n";
  for (const double x : v) out << util::format_double(x) << '\n';
}

void write_vector(const std::string& path, const Vec& v,
                  const std::string& comment) {
  std::ostringstream buf;
  write_vector(buf, v, comment);
  write_file_bytes(path, buf.str());
}

}  // namespace mstep::io
