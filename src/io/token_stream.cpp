#include "io/token_stream.hpp"

#include <cctype>

#include "io/matrix_market.hpp"

namespace mstep::io {

void MmTokenStream::fail(const std::string& message,
                         std::size_t column) const {
  throw MatrixMarketError(name(), line_number_, column, message);
}

void MmTokenStream::refill() {
  pos_ = 0;
  len_ = source_->read(buf_.data(), buf_.size());
  if (len_ == 0) eof_ = true;
}

bool MmTokenStream::next_line() {
  line_.clear();
  bool saw_any = false;
  for (;;) {
    if (pos_ >= len_) {
      if (eof_) break;
      refill();
      if (len_ == 0) break;
    }
    // Consume up to the newline (or the end of the buffered window).
    std::size_t i = pos_;
    while (i < len_ && buf_[i] != '\n') ++i;
    line_.append(buf_.data() + pos_, i - pos_);
    saw_any = saw_any || i > pos_;
    if (i < len_) {  // hit '\n'
      pos_ = i + 1;
      saw_any = true;
      break;
    }
    pos_ = i;
  }
  if (!saw_any && line_.empty()) {
    ++line_number_;  // end-of-file diagnostics point one past the last line
    return false;
  }
  ++line_number_;
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  return true;
}

bool MmTokenStream::next_raw_line(std::string* out) {
  if (!next_line()) return false;
  *out = line_;
  return true;
}

void MmTokenStream::tokenize(const std::string& line,
                             std::vector<Token>* out) {
  out->clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out->push_back({line.substr(start, i - start), start + 1});
  }
}

bool MmTokenStream::next_content_line() {
  while (next_line()) {
    if (!line_.empty() && line_[0] == '%') continue;  // comment
    tokenize(line_, &tokens_);
    if (tokens_.empty()) continue;  // blank
    return true;
  }
  return false;
}

void MmTokenStream::rewind() {
  source_->rewind();
  pos_ = 0;
  len_ = 0;
  eof_ = false;
  line_number_ = 0;
  tokens_.clear();
}

}  // namespace mstep::io
