// TracingKernelLog — one instrumentation pass for two consumers.
//
// The solvers already narrate every vector kernel through
// core::KernelLog (the Section-4 operation census behind
// T_m = N_m(A + mB)).  This adapter forwards that same stream to an
// optional inner log AND bumps the tracer's profiling counters, so the
// analytical census and the wall-clock trace come from one pass
// instead of two parallel mechanisms.  When tracing is off the bumps
// are relaxed-load no-ops; the inner log still sees everything.
#pragma once

#include "core/kernel_log.hpp"
#include "obs/trace.hpp"

namespace mstep::obs {

class TracingKernelLog : public core::KernelLog {
 public:
  /// Forwards to `inner` when non-null; either way feeds the tracer.
  explicit TracingKernelLog(core::KernelLog* inner = nullptr)
      : inner_(inner) {}

  void vec_op(index_t n, int count) override {
    if (inner_) inner_->vec_op(n, count);
    count_ops(Counter::kVecOps, count, static_cast<long long>(n) * count,
              // streaming triad: two reads + one write per element
              24LL * n * count);
  }
  void dot_op(index_t n) override {
    if (inner_) inner_->dot_op(n);
    count_ops(Counter::kDots, 1, 2LL * n, 16LL * n);
  }
  void max_op(index_t n) override {
    if (inner_) inner_->max_op(n);
    count_ops(Counter::kVecOps, 1, n, 8LL * n);
  }
  void diag_op(index_t n) override {
    if (inner_) inner_->diag_op(n);
    count_ops(Counter::kVecOps, 1, n, 24LL * n);
  }
  void spmv_diagonals(index_t len, int ndiags) override {
    if (inner_) inner_->spmv_diagonals(len, ndiags);
    count_ops(Counter::kSpmvs, 1, 2LL * len * ndiags, 24LL * len * ndiags);
  }
  void end_iteration() override {
    if (inner_) inner_->end_iteration();
  }
  void end_precond_step() override {
    if (inner_) inner_->end_precond_step();
    count(Counter::kSweeps, 1);
  }

 private:
  static void count_ops(Counter kind, long long ops, long long flops,
                        long long bytes) {
    Tracer& t = Tracer::instance();
    if (!t.enabled()) return;
    t.add(kind, ops);
    t.add(Counter::kFlops, flops);
    t.add(Counter::kBytes, bytes);
  }

  core::KernelLog* inner_;
};

}  // namespace mstep::obs
