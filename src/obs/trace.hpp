// obs::Tracer — low-overhead, thread-safe tracing and profiling.
//
// The solver narrates its phase structure through RAII `Span`s
// (prepare → coloring → format_probe; solve → iteration → sweep) and
// bumps a small set of global counters (flops, bytes moved, cache
// hits).  Each thread records into its own bounded ring buffer — a
// span costs two steady_clock reads and one uncontended mutex when
// tracing is ON, and a single relaxed atomic load when OFF, so the
// hot kernels stay untouched either way.  Tracing NEVER perturbs the
// floating-point data flow: a traced solve is bitwise identical to an
// untraced one (tests/test_obs.cpp asserts it per splitting × format).
//
// Switches, from cheapest to most explicit:
//   - compile time: -DMSTEP_OBS_DISABLED (CMake -DMSTEP_OBS=OFF) turns
//     every Span/counter into a no-op; the export API still links and
//     yields an empty trace.
//   - process: MSTEP_TRACE=on|1 in the environment, or the tools'
//     --trace=FILE flag (which also writes the export).
//   - scoped: obs::EnableScope, a refcount the daemon holds per
//     traced request so concurrent requests cannot clobber a global
//     flag.
//
// The export (`Tracer::chrome_json`) is Chrome trace-event JSON —
// load it at chrome://tracing or https://ui.perfetto.dev — with one
// track per thread (pool workers are named "pool-N") and complete
// ("ph":"X") events recorded at span END, so any ring-buffer drop
// still leaves a strictly nested, end-time-ordered stream
// (tools/check_trace.py validates both properties).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace mstep::obs {

/// Global profiling counters, bumped only while tracing is enabled and
/// exported in the trace document's "counters" object.
enum class Counter : int {
  kFlops = 0,      // floating-point operations (KernelLog census)
  kBytes,          // bytes moved by the counted kernels
  kVecOps,         // elementwise vector kernels (axpy/scale/copy)
  kDots,           // inner products
  kSpmvs,          // sparse matrix-vector products
  kSweeps,         // preconditioner half/full sweeps
  kCacheHits,      // daemon prepared-pipeline cache hits
  kHaloExchanges,  // sharded-sweep ghost mailbox drains (one per edge)
  kHaloDoubles,    // ghost values moved by those drains
  kCounterCount,
};
inline constexpr int kNumCounters = static_cast<int>(Counter::kCounterCount);

/// Stable snake_case name for the export document.
[[nodiscard]] const char* counter_name(Counter c);

class Tracer {
 public:
  /// The process-wide tracer (thread-safe lazy init; reads MSTEP_TRACE).
  static Tracer& instance();

  /// The one check on every hot path.  True when the process switch is
  /// on OR at least one EnableScope is live.
  [[nodiscard]] bool enabled() const {
#ifdef MSTEP_OBS_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed) ||
           scopes_.load(std::memory_order_relaxed) > 0;
#endif
  }

  /// Process-wide switch (the env var / --trace flag path).
  void set_enabled(bool on);

  /// Microseconds since the tracer epoch (steady clock).
  [[nodiscard]] std::int64_t now_us() const;

  /// Record one complete span on the calling thread's ring buffer.
  void record(const char* name, std::int64_t ts_us, std::int64_t dur_us,
              std::uint64_t correlation);

  /// Unconditional counter bump (callers gate on enabled() — use the
  /// free obs::count() helper, which does).
  void add(Counter c, long long v);
  [[nodiscard]] long long counter(Counter c) const;

  /// Name the calling thread's track in the export ("pool-3", "main").
  void name_thread(const std::string& name);

  /// Events overwritten by ring-buffer wrap-around, across all threads.
  [[nodiscard]] std::size_t dropped_events() const;

  /// Drop all recorded events and zero the counters (thread names and
  /// track ids survive).  Tests and the bench overhead row use this.
  void reset();

  /// Chrome trace-event JSON.  correlation == 0 exports everything;
  /// nonzero keeps only spans recorded under that correlation id (the
  /// daemon's per-request extraction).
  [[nodiscard]] std::string chrome_json(std::uint64_t correlation = 0) const;

 private:
  Tracer();
  friend class EnableScope;

  std::atomic<bool> enabled_{false};
  std::atomic<int> scopes_{0};
  std::atomic<long long> counters_[kNumCounters] = {};
};

/// Counter bump that is a no-op when tracing is off.
inline void count(Counter c, long long v) {
#ifdef MSTEP_OBS_DISABLED
  (void)c;
  (void)v;
#else
  Tracer& t = Tracer::instance();
  if (t.enabled()) t.add(c, v);
#endif
}

/// The calling thread's current correlation id (0 = none).  The daemon
/// sets one per request so a multi-request trace can be split.
[[nodiscard]] std::uint64_t correlation();

/// RAII correlation id for the calling thread (saves and restores).
class CorrelationScope {
 public:
  explicit CorrelationScope(std::uint64_t id);
  ~CorrelationScope();
  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// RAII scoped enable: tracing is on while any EnableScope is live,
/// independent of (and composing with) the process-wide switch.
class EnableScope {
 public:
  EnableScope();
  ~EnableScope();
  EnableScope(const EnableScope&) = delete;
  EnableScope& operator=(const EnableScope&) = delete;
};

/// RAII span.  Construction samples the clock only when tracing is
/// enabled; destruction records a complete event (name must be a
/// static string — phase names are literals).
class Span {
 public:
  explicit Span(const char* name) {
#ifdef MSTEP_OBS_DISABLED
    (void)name;
#else
    Tracer& t = Tracer::instance();
    if (t.enabled()) {
      name_ = name;
      start_us_ = t.now_us();
    }
#endif
  }
  ~Span() {
#ifndef MSTEP_OBS_DISABLED
    if (name_) {
      Tracer& t = Tracer::instance();
      t.record(name_, start_us_, t.now_us() - start_us_, correlation());
    }
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifndef MSTEP_OBS_DISABLED
  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
#endif
};

/// Convenience forwarder for call sites that should not spell out the
/// singleton (thread pools naming their workers).
inline void name_thread(const std::string& name) {
  Tracer::instance().name_thread(name);
}

}  // namespace mstep::obs
