#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json_writer.hpp"

namespace mstep::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// One recorded complete span ("ph":"X").  `name` is a static string
/// (phase names are literals), so events are 32 bytes and recording
/// never allocates after the ring warms up.
struct TraceEvent {
  const char* name;
  std::int64_t ts_us;
  std::int64_t dur_us;
  std::uint64_t correlation;
};

/// Per-thread ring buffer.  The mutex is uncontended on the hot path
/// (only the owning thread records); export takes it briefly from the
/// exporting thread, which is what keeps concurrent record/export
/// TSan-clean.
struct ThreadBuffer {
  std::mutex mutex;
  int tid = 0;
  std::string name;
  std::vector<TraceEvent> events;  // ring once size() hits kCapacity
  std::size_t head = 0;            // next overwrite slot when full
  std::size_t overwritten = 0;
};

// 64Ki events/thread (~2 MB) bounds a long-running daemon; the export
// reports how many events wrap-around discarded.
constexpr std::size_t kCapacity = std::size_t{1} << 16;

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// The calling thread's buffer, registered on first use.  The registry
/// holds a shared_ptr so the events outlive the thread.
ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    b->tid = static_cast<int>(r.buffers.size());
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

/// MSTEP_TRACE=on|1 enables tracing at startup, mirroring MSTEP_SIMD.
bool env_enabled() {
  const char* v = std::getenv("MSTEP_TRACE");
  if (v == nullptr) return false;
  return std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0;
}

thread_local std::uint64_t tls_correlation = 0;

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kFlops: return "flops";
    case Counter::kBytes: return "bytes_moved";
    case Counter::kVecOps: return "vec_ops";
    case Counter::kDots: return "dots";
    case Counter::kSpmvs: return "spmvs";
    case Counter::kSweeps: return "sweeps";
    case Counter::kCacheHits: return "cache_hits";
    case Counter::kHaloExchanges: return "halo_exchanges";
    case Counter::kHaloDoubles: return "halo_doubles";
    case Counter::kCounterCount: break;
  }
  return "unknown";
}

Tracer::Tracer() {
  (void)epoch();  // pin the epoch before any span can sample the clock
  enabled_.store(env_enabled(), std::memory_order_relaxed);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch())
      .count();
}

void Tracer::record(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                    std::uint64_t correlation) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  const TraceEvent ev{name, ts_us, dur_us, correlation};
  if (buf.events.size() < kCapacity) {
    if (buf.events.empty()) buf.events.reserve(256);
    buf.events.push_back(ev);
  } else {
    // Ring wrap: overwrite the oldest event.  Spans record at END, so
    // any surviving subset is still strictly nested per thread.
    buf.events[buf.head] = ev;
    buf.head = (buf.head + 1) % kCapacity;
    buf.overwritten++;
  }
}

void Tracer::add(Counter c, long long v) {
  counters_[static_cast<int>(c)].fetch_add(v, std::memory_order_relaxed);
}

long long Tracer::counter(Counter c) const {
  return counters_[static_cast<int>(c)].load(std::memory_order_relaxed);
}

void Tracer::name_thread(const std::string& name) {
#ifdef MSTEP_OBS_DISABLED
  (void)name;
#else
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.name = name;
#endif
}

std::size_t Tracer::dropped_events() const {
  std::size_t total = 0;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> b(buf->mutex);
    total += buf->overwritten;
  }
  return total;
}

void Tracer::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> b(buf->mutex);
    buf->events.clear();
    buf->head = 0;
    buf->overwritten = 0;
  }
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
}

std::string Tracer::chrome_json(std::uint64_t correlation) const {
  util::Json events = util::Json::array();
  std::size_t dropped = 0;
  Registry& r = registry();
  // Snapshot under the registry lock; each buffer lock is held only
  // long enough to copy its ring out in chronological order.
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers) {
    std::vector<TraceEvent> chron;
    std::string name;
    int tid = 0;
    {
      std::lock_guard<std::mutex> b(buf->mutex);
      tid = buf->tid;
      name = buf->name;
      dropped += buf->overwritten;
      chron.reserve(buf->events.size());
      for (std::size_t i = buf->head; i < buf->events.size(); ++i) {
        chron.push_back(buf->events[i]);
      }
      for (std::size_t i = 0; i < buf->head; ++i) {
        chron.push_back(buf->events[i]);
      }
    }
    if (correlation != 0) {
      std::vector<TraceEvent> kept;
      for (const auto& ev : chron) {
        if (ev.correlation == correlation) kept.push_back(ev);
      }
      chron.swap(kept);
    }
    if (chron.empty()) continue;
    if (!name.empty()) {
      util::Json meta = util::Json::object();
      meta.set("name", "thread_name")
          .set("ph", "M")
          .set("pid", 1)
          .set("tid", tid)
          .set("args", util::Json::object().set("name", name));
      events.push(std::move(meta));
    }
    for (const auto& ev : chron) {
      util::Json e = util::Json::object();
      e.set("name", ev.name)
          .set("ph", "X")
          .set("ts", static_cast<long long>(ev.ts_us))
          .set("dur", static_cast<long long>(ev.dur_us))
          .set("pid", 1)
          .set("tid", tid);
      if (ev.correlation != 0) {
        e.set("args", util::Json::object().set(
                          "correlation",
                          static_cast<long long>(ev.correlation)));
      }
      events.push(std::move(e));
    }
  }
  util::Json counters = util::Json::object();
  for (int i = 0; i < kNumCounters; ++i) {
    counters.set(counter_name(static_cast<Counter>(i)),
                 counters_[i].load(std::memory_order_relaxed));
  }
  util::Json doc = util::Json::object();
  doc.set("traceEvents", std::move(events))
      .set("displayTimeUnit", "ms")
      .set("counters", std::move(counters))
      .set("dropped_events", static_cast<long long>(dropped));
  return doc.dump_string();
}

std::uint64_t correlation() { return tls_correlation; }

CorrelationScope::CorrelationScope(std::uint64_t id)
    : saved_(tls_correlation) {
  tls_correlation = id;
}

CorrelationScope::~CorrelationScope() { tls_correlation = saved_; }

EnableScope::EnableScope() {
  Tracer::instance().scopes_.fetch_add(1, std::memory_order_relaxed);
}

EnableScope::~EnableScope() {
  Tracer::instance().scopes_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace mstep::obs
