#include "core/mstep.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"
#include "par/execution.hpp"

namespace mstep::core {

MStepPreconditioner::MStepPreconditioner(const la::CsrMatrix& k,
                                         const split::Splitting& split,
                                         std::vector<double> alphas,
                                         KernelLog* log,
                                         const par::Execution* exec)
    : k_(&k), split_(&split), alphas_(std::move(alphas)), log_(log),
      exec_(exec),
      ndiags_(log ? static_cast<int>(k.num_nonzero_diagonals()) : 0) {
  if (alphas_.empty()) {
    throw std::invalid_argument("MStepPreconditioner: need m >= 1");
  }
  if (split.size() != k.rows()) {
    throw std::invalid_argument("MStepPreconditioner: size mismatch");
  }
}

void MStepPreconditioner::apply(const Vec& r, Vec& z) const {
  const par::Execution& ex = exec_ ? *exec_ : par::serial_execution();
  const index_t n = k_->rows();
  assert(static_cast<index_t>(r.size()) == n);
  const int m = static_cast<int>(alphas_.size());

  z.assign(n, 0.0);
  tmp_.resize(n);
  for (int s = 1; s <= m; ++s) {
    const obs::Span sweep_span("sweep");
    const double a = alphas_[m - s];
    if (s == 1) {
      // z = 0, so the residual is just alpha * r.
      ex.scale_copy(a, r, tmp_);
      if (log_) log_->vec_op(n, 1);
    } else {
      // tmp = alpha * r - K z
      ex.scale_copy(a, r, tmp_);
      ex.spmv_sub(*k_, z, tmp_);
      if (log_) {
        log_->vec_op(n, 2);
        log_->spmv_diagonals(n, ndiags_);
      }
    }
    split_->apply_pinv(tmp_, pz_, ex);
    ex.axpy(1.0, pz_, z);
    if (log_) {
      log_->vec_op(n, 1);
      log_->end_precond_step();
    }
  }
}

std::string MStepPreconditioner::name() const {
  return "mstep-" + split_->name() + "-m" + std::to_string(alphas_.size());
}

std::vector<double> unparametrized_alphas(int m) {
  return std::vector<double>(static_cast<std::size_t>(m), 1.0);
}

}  // namespace mstep::core
