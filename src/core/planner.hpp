// Step-count planning — equations (4.1) and (4.2) of the paper as API.
//
// Given measured iteration counts N_m and the machine's cost decomposition
// (A seconds per outer CG iteration, B per preconditioner step), predict
// execution times and choose the optimal number of preconditioner steps.
#pragma once

#include <vector>

namespace mstep::core {

/// Cost model of eq. (4.1): T_m = N_m (A + m B).
struct StepCostModel {
  double a_seconds = 0.0;  // one outer CG iteration
  double b_seconds = 0.0;  // one preconditioner step

  [[nodiscard]] double predict(int m, int iterations) const {
    return iterations * (a_seconds + m * b_seconds);
  }
};

/// The two criteria of eq. (4.2) for preferring m+1 steps over m, given
/// N_m and N_{m+1}:
///   criterion 1: (m+1) N_{m+1} - m N_m < 0   (fewer total inner loops)
///   criterion 2: (N_m - N_{m+1}) / (N_{m+1}(m+1) - N_m m) > B / A.
struct StepDecision {
  bool take_extra_step = false;
  bool criterion1 = false;   // total inner loops decrease outright
  double left = 0.0;         // left side of criterion 2 (when defined)
  double right = 0.0;        // B / A
};

[[nodiscard]] StepDecision prefer_m_plus_1(int m, int n_m, int n_m_plus_1,
                                           const StepCostModel& costs);

/// Pick the optimal m from a measured iteration-count curve
/// (iterations[m] for m = 0..M) under the eq. (4.1) model.
[[nodiscard]] int optimal_steps(const std::vector<int>& iterations,
                                const StepCostModel& costs);

}  // namespace mstep::core
