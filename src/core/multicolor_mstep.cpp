#include "core/multicolor_mstep.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "la/simd.hpp"
#include "obs/trace.hpp"

namespace mstep::core {

MulticolorMStepSsor::MulticolorMStepSsor(const color::ColoredSystem& cs,
                                         std::vector<double> alphas,
                                         KernelLog* log)
    : cs_(&cs), alphas_(std::move(alphas)), log_(log),
      splits_(color::compute_row_splits(cs)) {
  if (alphas_.empty()) {
    throw std::invalid_argument("MulticolorMStepSsor: need m >= 1");
  }
  const color::ClassDiagonalCensus census =
      color::compute_class_diagonal_census(cs, splits_);
  ndiags_lower_ = census.lower;
  ndiags_upper_ = census.upper;

  // Slice each class's strictly-lower / strictly-upper row segments into
  // SELL layout once.  The sweep then sums them 4 rows at a time through
  // simd::sell_neg_slices — bitwise -row_dot(segment) per row (the SELL
  // lanes replay row_dot's schedule and negation commutes with rounding),
  // but vectorized ACROSS the rows of a class, which the multicolor
  // ordering makes independent.  The parallel sweep
  // (par/colored_sweep.cpp) runs the identical kernel over slice ranges,
  // which is what keeps serial == threaded == SIMD-on == SIMD-off.
  const auto& rp = cs.matrix.row_ptr();
  const int nc = cs.num_classes();
  lower_.reserve(nc);
  upper_.reserve(nc);
  for (int c = 0; c < nc; ++c) {
    lower_.push_back(la::SellSegments::build(cs.matrix, rp.data(),
                                             splits_.lo_end.data(),
                                             cs.class_start[c],
                                             cs.class_start[c + 1]));
    upper_.push_back(la::SellSegments::build(cs.matrix,
                                             splits_.up_begin.data(),
                                             rp.data() + 1,
                                             cs.class_start[c],
                                             cs.class_start[c + 1]));
  }
}

void MulticolorMStepSsor::apply(const Vec& r, Vec& z) const {
  const index_t n = cs_->size();
  assert(static_cast<index_t>(r.size()) == n);
  const int m = static_cast<int>(alphas_.size());
  const int nc = cs_->num_classes();

  z.assign(n, 0.0);
  y_.assign(n, 0.0);
  xl_.resize(n);  // written per class before it is read

  auto log_class = [&](int c, bool lower) {
    if (!log_) return;
    const index_t len = cs_->class_size(c);
    log_->spmv_diagonals(len, lower ? ndiags_lower_[c] : ndiags_upper_[c]);
    log_->vec_op(len, 3);  // x + y + alpha*r fused adds
    log_->diag_op(len);    // divide by D_c
  };

  for (int s = 1; s <= m; ++s) {
    const obs::Span sweep_span("sweep");
    const double a = alphas_[m - s];
    // Forward half-sweep.  For class 0 this doubles as the deferred
    // backward update of the previous step (y holds its upper sums).
    for (int c = 0; c < nc; ++c) {
      const la::SellSegments& segs = lower_[c];
      la::simd::sell_neg_slices(segs.view(), z.data(), xl_.data(), 0,
                                segs.num_slices());
      for (index_t i = cs_->class_start[c]; i < cs_->class_start[c + 1];
           ++i) {
        const double xl = xl_[i];
        z[i] = (xl + y_[i] + a * r[i]) / splits_.diag[i];
        // The last class has no upper couplings: its "saved" value for the
        // next use must be the (empty) upper sum, not the lower sum.
        y_[i] = (c == nc - 1) ? 0.0 : xl;
      }
      log_class(c, /*lower=*/true);
    }
    // Backward half-sweep over classes nc-2 .. 1.  Class nc-1 is skipped
    // (its backward value equals the forward value just computed); class 0
    // is deferred (see below).
    for (int c = nc - 2; c >= 1; --c) {
      const la::SellSegments& segs = upper_[c];
      la::simd::sell_neg_slices(segs.view(), z.data(), xl_.data(), 0,
                                segs.num_slices());
      for (index_t i = cs_->class_start[c]; i < cs_->class_start[c + 1];
           ++i) {
        const double xu = xl_[i];
        z[i] = (xu + y_[i] + a * r[i]) / splits_.diag[i];
        y_[i] = xu;
      }
      log_class(c, /*lower=*/false);
    }
    // Class 0: save its upper sums (scattered straight into y); the solve
    // is deferred to the next forward pass (inner steps) or the final
    // solve below (last step).
    la::simd::sell_neg_slices(upper_[0].view(), z.data(), y_.data(), 0,
                              upper_[0].num_slices());
    if (log_) {
      log_->spmv_diagonals(cs_->class_size(0), ndiags_upper_[0]);
      log_->end_precond_step();
    }
  }
  // Final deferred class-0 solve with alpha_0 — line (3) of Algorithm 2.
  for (index_t i = cs_->class_start[0]; i < cs_->class_start[1]; ++i) {
    z[i] = (y_[i] + alphas_[0] * r[i]) / splits_.diag[i];
  }
  if (log_) {
    log_->vec_op(cs_->class_size(0), 2);
    log_->diag_op(cs_->class_size(0));
  }
}

std::string MulticolorMStepSsor::name() const {
  return "multicolor-ssor-m" + std::to_string(alphas_.size());
}

long long MulticolorMStepSsor::offdiag_traversals_per_apply() const {
  // Per step: all lower entries once (forward) + upper entries of classes
  // nc-2..1 plus class 0 (backward).  Lower and upper entry totals are
  // equal by symmetry; the last class has no upper entries, so the grand
  // total per step is (nnz - n) * (1/2 + 1/2) = nnz - n traversals, i.e.
  // one full off-diagonal traversal per symmetric sweep.
  const long long offdiag = cs_->matrix.nnz() - cs_->size();
  return offdiag * static_cast<long long>(alphas_.size());
}

}  // namespace mstep::core
