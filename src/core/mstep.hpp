// The m-step preconditioner, generic over splittings (eq. 2.6):
//
//   M_m^{-1} = (alpha_0 I + alpha_1 G + ... + alpha_{m-1} G^{m-1}) P^{-1},
//   G = P^{-1} Q,  K = P - Q.
//
// Applied by the m-step recurrence (Horner form):
//
//   z^(0) = 0;   z^(s) = z^(s-1) + P^{-1} (alpha_{m-s} r - K z^(s-1))
//
// which is s steps of the stationary method for K z = alpha r with a
// per-step right-hand-side coefficient — Algorithm 2 of the paper in its
// splitting-agnostic form.  With all alphas = 1 this is the unparametrized
// preconditioner (2.2); with the Jacobi splitting it is the
// Dubois–Greenbaum–Rodrigue truncated Neumann series.
#pragma once

#include <vector>

#include "core/kernel_log.hpp"
#include "core/preconditioner.hpp"
#include "la/csr_matrix.hpp"
#include "split/splitting.hpp"

namespace mstep::par {
class Execution;  // par/execution.hpp — the threaded kernel policy
}

namespace mstep::core {

class MStepPreconditioner : public Preconditioner {
 public:
  /// `alphas[i]` is the coefficient of G^i; m = alphas.size() >= 1.
  /// K and the splitting must outlive the preconditioner.  `exec`
  /// (optional, must outlive the preconditioner) threads the sweep's
  /// scaled-residual copy, the K z product, and the accumulation — plus
  /// the P^{-1} application for the elementwise splittings — through the
  /// execution policy; the deterministic kernels keep the result BITWISE
  /// identical to the serial sweep for any thread count.
  MStepPreconditioner(const la::CsrMatrix& k, const split::Splitting& split,
                      std::vector<double> alphas, KernelLog* log = nullptr,
                      const par::Execution* exec = nullptr);

  [[nodiscard]] index_t size() const override { return k_->rows(); }
  void apply(const Vec& r, Vec& z) const override;
  [[nodiscard]] int steps() const override {
    return static_cast<int>(alphas_.size());
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<double>& alphas() const { return alphas_; }

 private:
  const la::CsrMatrix* k_;
  const split::Splitting* split_;
  std::vector<double> alphas_;
  KernelLog* log_;
  const par::Execution* exec_;  // nullptr = serial sweep
  int ndiags_;  // cached diagonal count for the instrumentation stream
  mutable Vec tmp_;
  mutable Vec pz_;
};

/// Convenience: coefficients (1, 1, ..., 1) — the unparametrized m-step
/// preconditioner of eq. (2.2).
[[nodiscard]] std::vector<double> unparametrized_alphas(int m);

}  // namespace mstep::core
