#include "core/baselines.hpp"

#include <algorithm>

namespace mstep::core {

namespace {

/// Jacobi splitting scaled by 1/theta: P = D / theta, so
/// G = I - theta D^{-1} K.  theta < 1 damps a Jacobi spectrum that reaches
/// beyond 2 back into (0, 2), making the Neumann series convergent.
class DampedJacobiSplitting : public split::Splitting {
 public:
  DampedJacobiSplitting(const la::CsrMatrix& k, double theta)
      : inner_(k), theta_(theta) {}

  [[nodiscard]] index_t size() const override { return inner_.size(); }
  void apply_pinv(const Vec& x, Vec& y) const override {
    inner_.apply_pinv(x, y);
    for (auto& v : y) v *= theta_;
  }
  [[nodiscard]] std::string name() const override { return "damped-jacobi"; }

 private:
  split::JacobiSplitting inner_;
  double theta_;
};

}  // namespace

std::unique_ptr<Preconditioner> make_neumann_preconditioner(
    const la::CsrMatrix& k, int m, KernelLog* log) {
  const SpectrumInterval iv = jacobi_interval(k, /*safety=*/0.0);
  if (iv.lambda_max > 1.95) {
    const double theta = 1.9 / iv.lambda_max;
    return std::make_unique<OwningMStepPreconditioner>(
        k, std::make_unique<DampedJacobiSplitting>(k, theta),
        unparametrized_alphas(m), log);
  }
  return std::make_unique<OwningMStepPreconditioner>(
      k, std::make_unique<split::JacobiSplitting>(k),
      unparametrized_alphas(m), log);
}

std::unique_ptr<Preconditioner> make_jmp_preconditioner(const la::CsrMatrix& k,
                                                        int m,
                                                        KernelLog* log) {
  const SpectrumInterval iv = jacobi_interval(k);
  return std::make_unique<OwningMStepPreconditioner>(
      k, std::make_unique<split::JacobiSplitting>(k),
      least_squares_alphas(m, iv), log);
}

}  // namespace mstep::core
