#include "core/pcg.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "par/execution.hpp"

namespace mstep::core {

PcgResult pcg_solve(const la::LinearOperator& k, const Vec& f,
                    const Preconditioner& m, const PcgOptions& options,
                    KernelLog* log, const Vec& u0,
                    const par::Execution* exec, PcgWorkspace* workspace) {
  const par::Execution& ex = exec ? *exec : par::serial_execution();
  const index_t n = k.rows();
  if (static_cast<index_t>(f.size()) != n || m.size() != n) {
    throw std::invalid_argument("pcg_solve: dimension mismatch");
  }
  if (!(options.tolerance > 0.0)) {
    throw std::invalid_argument("pcg_solve: tolerance must be positive");
  }
  if (options.max_iterations <= 0) {
    throw std::invalid_argument("pcg_solve: max_iterations must be positive");
  }
  if (!u0.empty() && static_cast<index_t>(u0.size()) != n) {
    throw std::invalid_argument("pcg_solve: initial guess has " +
                                std::to_string(u0.size()) +
                                " entries, system has " + std::to_string(n));
  }
  const int ndiags =
      log ? static_cast<int>(k.num_nonzero_diagonals()) : 0;

  // One span per solve; the per-iteration and per-sweep spans nest
  // inside it on whichever thread runs this solve (a batch lane's track
  // in a multi-RHS trace).
  const obs::Span solve_span("solve");

  PcgResult res;
  // All solve-sized scratch comes from the workspace when one is supplied
  // (reused, no allocation on a warm arena) or from a local one.
  PcgWorkspace local;
  PcgWorkspace& ws = workspace ? *workspace : local;

  Vec& u = ws.u;
  if (u0.empty()) {
    u.assign(n, 0.0);
  } else {
    u = u0;
  }

  // r0 = f - K u0
  Vec& r = ws.r;
  k.residual(f, u, r, ex);
  if (log) {
    log->spmv_diagonals(n, ndiags);
    log->vec_op(n, 1);
  }

  // Already at the solution (e.g. zero right-hand side with a zero guess):
  // report convergence without entering the loop, where the zero curvature
  // p^T K p would otherwise read as a breakdown.
  if (ex.nrm2(r) == 0.0) {
    res.converged = true;
    res.solution = std::move(u);
    return res;
  }

  // z0 = M^{-1} r0 ; p0 = z0
  Vec& z = ws.z;
  m.apply(r, z);
  res.precond_applications++;
  Vec& p = ws.p;
  p = z;
  if (log) log->vec_op(n, 1);

  double rho = ex.dot(z, r);
  if (log) log->dot_op(n);
  res.inner_products++;

  Vec& w = ws.w;
  w.resize(n);
  const double f_norm = ex.nrm2(f);

  // History timing marks between consecutive convergence checks: each
  // record's `seconds` covers one full trip around the loop, so the
  // column sums to the loop's wall-clock.  The clock is only read when
  // history is requested.
  using HistClock = std::chrono::steady_clock;
  HistClock::time_point hist_mark;
  if (options.record_history) hist_mark = HistClock::now();

  for (int it = 0; it < options.max_iterations; ++it) {
    const obs::Span iteration_span("iteration");
    // w = K p ; alpha = rho / (p, w)
    k.multiply(p, w, ex);
    const double pw = ex.dot(p, w);
    if (log) {
      log->spmv_diagonals(n, ndiags);
      log->dot_op(n);
    }
    res.inner_products++;
    if (pw <= 0.0) {
      // Loss of positive definiteness (should not happen for SPD M, K).
      res.converged = false;
      break;
    }
    const double alpha = rho / pw;

    // u^{k+1} = u^k + alpha p ; stopping quantity before overwriting.
    const double delta_inf = ex.step_update_max(alpha, p, u);
    if (log) {
      log->vec_op(n, 1);
      log->max_op(n);
    }

    // r^{k+1} = r^k - alpha w
    ex.axpy(-alpha, w, r);
    if (log) log->vec_op(n, 1);

    res.iterations = it + 1;
    res.final_delta_inf = delta_inf;

    const auto push_history = [&](double value) {
      const HistClock::time_point now = HistClock::now();
      res.history.push_back(IterationRecord{
          value, alpha,
          std::chrono::duration<double>(now - hist_mark).count()});
      hist_mark = now;
    };
    bool stop = false;
    if (options.stop_rule == StopRule::kDeltaInf) {
      if (options.record_history) push_history(delta_inf);
      stop = delta_inf < options.tolerance;
    } else {
      const double rn = ex.nrm2(r);
      res.final_residual2 = rn;
      if (options.record_history) push_history(rn);
      stop = rn < options.tolerance * (f_norm > 0 ? f_norm : 1.0);
    }
    if (log) log->end_iteration();
    if (stop) {
      res.converged = true;
      break;
    }

    // z = M^{-1} r ; beta = rho_new / rho ; p = z + beta p
    m.apply(r, z);
    res.precond_applications++;
    const double rho_new = ex.dot(z, r);
    if (log) log->dot_op(n);
    res.inner_products++;
    const double beta = rho_new / rho;
    rho = rho_new;
    ex.xpay(z, beta, p);
    if (log) log->vec_op(n, 1);
  }

  res.final_residual2 = [&] {
    // w is dead scratch after the loop: reuse it for the final residual.
    k.residual(f, u, w, ex);
    return ex.nrm2(w);
  }();
  // Moving out of the workspace leaves ws.u empty; the next solve's
  // assign() re-grows it, which is the same single output allocation the
  // returned solution costs anyway.
  res.solution = std::move(u);
  return res;
}

PcgResult pcg_solve(const la::CsrMatrix& k, const Vec& f,
                    const Preconditioner& m, const PcgOptions& options,
                    KernelLog* log, const Vec& u0,
                    const par::Execution* exec, PcgWorkspace* workspace) {
  return pcg_solve(la::CsrOperator(k), f, m, options, log, u0, exec,
                   workspace);
}

PcgResult cg_solve(const la::LinearOperator& k, const Vec& f,
                   const PcgOptions& options, KernelLog* log, const Vec& u0,
                   const par::Execution* exec) {
  const IdentityPreconditioner ident(k.rows());
  return pcg_solve(k, f, ident, options, log, u0, exec);
}

PcgResult cg_solve(const la::CsrMatrix& k, const Vec& f,
                   const PcgOptions& options, KernelLog* log, const Vec& u0,
                   const par::Execution* exec) {
  return cg_solve(la::CsrOperator(k), f, options, log, u0, exec);
}

}  // namespace mstep::core
