// Choosing the preconditioner parameters alpha_0 ... alpha_{m-1}
// (Section 2.2 of the paper; Johnson, Micchelli & Paul 1982).
//
// The eigenvalues of M_m^{-1} K are s(lambda) = lambda * p(1 - lambda)
// where lambda ranges over the spectrum of P^{-1}K and p is the degree
// m-1 polynomial with coefficients alpha_i in powers of (1 - lambda)
// (equivalently, in powers of G).  The alphas are chosen to make
// s(lambda) as close to 1 as possible on [lambda_1, lambda_n]:
//
//  * least squares:  minimize  integral of w(lambda) (1 - s(lambda))^2,
//  * min-max:        the shifted-and-scaled Chebyshev polynomial.
//
// kappa(M^{-1}K) is invariant under scaling all alphas, so results can be
// normalized to alpha_0 = 1 — the convention of the paper's Table 1, whose
// values for the SSOR splitting on [0, 1] these routines reproduce
// (m=2: 1, 5;  m=4: 1, 7, -24.5, 31.5).
#pragma once

#include <functional>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/polynomial.hpp"
#include "split/splitting.hpp"

namespace mstep::core {

/// Interval [lambda_min, lambda_max] containing the spectrum of P^{-1}K.
struct SpectrumInterval {
  double lambda_min = 0.0;
  double lambda_max = 1.0;
};

/// The SSOR splitting of an SPD matrix has sigma(P^{-1}K) in (0, 1] for
/// omega in (0, 2) (Q = the SSOR remainder is positive semi-definite), so
/// [0, 1] is always a valid — and in the paper's usage, the chosen —
/// interval.
[[nodiscard]] SpectrumInterval ssor_interval();

/// Spectrum interval for the Jacobi splitting of K, estimated with Lanczos
/// on the symmetrized operator D^{-1/2} K D^{-1/2}; the bounds are widened
/// by `safety` relatively on each side.
[[nodiscard]] SpectrumInterval jacobi_interval(const la::CsrMatrix& k,
                                               double safety = 0.02);

/// Least-squares parameters: minimize
///   integral_{iv} w(lambda) (1 - lambda p(1-lambda))^2 d lambda
/// over polynomials p of degree m-1; returns the coefficients of p in
/// powers of (1 - lambda).  `weight` defaults to 1.
[[nodiscard]] std::vector<double> least_squares_alphas(
    int m, SpectrumInterval iv, bool normalize_alpha0 = true,
    const std::function<double(double)>& weight = {});

/// Min-max (Chebyshev) parameters: s(lambda) = 1 - T_m(mu(lambda))/T_m(mu_0)
/// equioscillates on the interval; requires lambda_min >= 0 and, for a
/// well-defined T_m(mu_0), lambda_min + lambda_max > 0.
[[nodiscard]] std::vector<double> minmax_alphas(int m, SpectrumInterval iv,
                                                bool normalize_alpha0 = true);

/// The polynomial s(lambda) = lambda * p(1 - lambda) realised by a given
/// alpha vector — the eigenvalue map of the preconditioned operator.
[[nodiscard]] la::Polynomial eigenvalue_map(const std::vector<double>& alphas);

/// Condition number of M_m^{-1}K predicted from the eigenvalue map over the
/// interval: max s / min s (positive s required; returns +inf otherwise).
[[nodiscard]] double predicted_condition(const std::vector<double>& alphas,
                                         SpectrumInterval iv,
                                         int samples = 2001);

/// True iff the eigenvalue map is strictly positive on the interval — the
/// positive-definiteness requirement on M_m (Section 2.2: "the eigenvalues
/// ... are positive on the interval").
[[nodiscard]] bool alphas_give_spd(const std::vector<double>& alphas,
                                   SpectrumInterval iv, int samples = 2001);

}  // namespace mstep::core
