// Algorithm 1 of the paper: preconditioned conjugate gradients with the
// |u^{k+1} - u^k|_inf stopping test.
//
// The solver is written against la::LinearOperator, so CSR and
// diagonal-storage (DIA) matrices flow through the same solve path; the
// CsrMatrix overloads below keep the historical call sites unchanged.
#pragma once

#include <vector>

#include "core/kernel_log.hpp"
#include "core/preconditioner.hpp"
#include "la/csr_matrix.hpp"
#include "la/linear_operator.hpp"

namespace mstep::par {
class Execution;  // par/execution.hpp
}

namespace mstep::core {

enum class StopRule {
  kDeltaInf,    // |u^{k+1} - u^k|_inf < tol  (the paper's test)
  kResidual2,   // ||r||_2 < tol * ||f||_2
};

struct PcgOptions {
  int max_iterations = 20000;
  double tolerance = 1e-4;
  StopRule stop_rule = StopRule::kDeltaInf;
  bool record_history = false;  // per-iteration stopping quantity
};

/// One row of the per-iteration convergence history (options.record_history):
/// the stopping quantity (delta_inf or ||r||_2 depending on the stop rule),
/// the CG step length, and the wall-clock attributed to the iteration.
/// Recording reads a timer but never touches the floating-point data flow,
/// so a history-recording solve is bitwise identical to a plain one.
struct IterationRecord {
  double value = 0.0;
  double alpha = 0.0;
  double seconds = 0.0;
};

struct PcgResult {
  Vec solution;
  int iterations = 0;
  bool converged = false;
  double final_delta_inf = 0.0;
  double final_residual2 = 0.0;
  long long inner_products = 0;   // dot products executed
  long long precond_applications = 0;
  std::vector<IterationRecord> history;
};

/// Reusable scratch for pcg_solve: the solve-sized vectors Algorithm 1
/// needs.  Passing one lets a caller run many solves with no per-solve
/// allocation beyond the returned solution — the batch engine keeps one
/// arena per worker lane.  Vectors are resized on demand and keep their
/// capacity across solves; the contents are overwritten, never read.
struct PcgWorkspace {
  Vec u, r, z, p, w;
};

/// Solve K u = f with preconditioner M (Algorithm 1).  `u0` is the initial
/// guess (zero if empty).  Instrumentation callbacks go to `log` when
/// non-null.  `exec` (optional) threads the SpMV and vector kernels; the
/// deterministic blocked reductions make the result BITWISE identical to
/// the serial solve for any thread count.  `workspace` (optional) supplies
/// the solve scratch so repeated solves do not allocate.  Throws
/// std::invalid_argument on dimension mismatches, a non-positive
/// tolerance, or a non-positive iteration limit.
[[nodiscard]] PcgResult pcg_solve(const la::LinearOperator& k, const Vec& f,
                                  const Preconditioner& m,
                                  const PcgOptions& options = {},
                                  KernelLog* log = nullptr,
                                  const Vec& u0 = {},
                                  const par::Execution* exec = nullptr,
                                  PcgWorkspace* workspace = nullptr);

[[nodiscard]] PcgResult pcg_solve(const la::CsrMatrix& k, const Vec& f,
                                  const Preconditioner& m,
                                  const PcgOptions& options = {},
                                  KernelLog* log = nullptr,
                                  const Vec& u0 = {},
                                  const par::Execution* exec = nullptr,
                                  PcgWorkspace* workspace = nullptr);

/// Plain conjugate gradients (M = I, the paper's m = 0 baseline).
[[nodiscard]] PcgResult cg_solve(const la::LinearOperator& k, const Vec& f,
                                 const PcgOptions& options = {},
                                 KernelLog* log = nullptr, const Vec& u0 = {},
                                 const par::Execution* exec = nullptr);

[[nodiscard]] PcgResult cg_solve(const la::CsrMatrix& k, const Vec& f,
                                 const PcgOptions& options = {},
                                 KernelLog* log = nullptr, const Vec& u0 = {},
                                 const par::Execution* exec = nullptr);

}  // namespace mstep::core
