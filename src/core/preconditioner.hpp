// Preconditioner interface for Algorithm 1.
#pragma once

#include <string>

#include "la/vector.hpp"

namespace mstep::core {

/// Symmetric positive definite preconditioner M; apply() computes
/// z = M^{-1} r (step (6) of Algorithm 1, "solve M r-hat = r").
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  [[nodiscard]] virtual index_t size() const = 0;

  virtual void apply(const Vec& r, Vec& z) const = 0;

  /// Number of inner steps (m); 0 for the identity (plain CG).
  [[nodiscard]] virtual int steps() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// M = I: plain conjugate gradients.
class IdentityPreconditioner : public Preconditioner {
 public:
  explicit IdentityPreconditioner(index_t n) : n_(n) {}

  [[nodiscard]] index_t size() const override { return n_; }
  void apply(const Vec& r, Vec& z) const override { z = r; }
  [[nodiscard]] int steps() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "identity"; }

 private:
  index_t n_;
};

}  // namespace mstep::core
