// Baseline preconditioners from the literature the paper compares against
// or builds on, expressed through the m-step framework:
//
//  * Dubois, Greenbaum & Rodrigue (1979): truncated Neumann series for
//    K^{-1} — the UNparametrized m-step method on the Jacobi splitting.
//  * Johnson, Micchelli & Paul (1982): parametrized Neumann series — the
//    least-squares m-step method on the Jacobi splitting, with the spectrum
//    interval estimated from the symmetrically scaled matrix.
//
// Both return ready-to-use preconditioners owning their splitting.
#pragma once

#include <memory>

#include "core/mstep.hpp"
#include "core/params.hpp"

namespace mstep::core {

/// An m-step preconditioner bundled with the splitting it uses (keeps the
/// lifetime management in one object).
class OwningMStepPreconditioner : public Preconditioner {
 public:
  OwningMStepPreconditioner(const la::CsrMatrix& k,
                            std::unique_ptr<split::Splitting> split,
                            std::vector<double> alphas,
                            KernelLog* log = nullptr)
      : split_(std::move(split)),
        inner_(k, *split_, std::move(alphas), log) {}

  [[nodiscard]] index_t size() const override { return inner_.size(); }
  void apply(const Vec& r, Vec& z) const override { inner_.apply(r, z); }
  [[nodiscard]] int steps() const override { return inner_.steps(); }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] const std::vector<double>& alphas() const {
    return inner_.alphas();
  }

 private:
  std::unique_ptr<split::Splitting> split_;
  MStepPreconditioner inner_;
};

/// Dubois–Greenbaum–Rodrigue truncated Neumann preconditioner
/// (m Jacobi steps, all coefficients 1).  The Neumann series requires
/// rho(I - D^{-1}K) < 1; when the Jacobi spectrum reaches beyond 2 (as it
/// does for the plane-stress plate) the splitting is automatically damped,
/// P = D / theta with theta chosen so the scaled spectrum tops out at 1.9.
/// DGR's own setting (Jacobi-scaled Laplacians) is left untouched.
[[nodiscard]] std::unique_ptr<Preconditioner> make_neumann_preconditioner(
    const la::CsrMatrix& k, int m, KernelLog* log = nullptr);

/// Johnson–Micchelli–Paul parametrized Jacobi-polynomial preconditioner
/// (least-squares alphas on the estimated Jacobi spectrum interval).
[[nodiscard]] std::unique_ptr<Preconditioner> make_jmp_preconditioner(
    const la::CsrMatrix& k, int m, KernelLog* log = nullptr);

}  // namespace mstep::core
