// Kernel instrumentation interface.
//
// The solvers narrate their vector-operation stream through this interface;
// the CYBER 203/205 model (src/cyber) turns the stream into predicted
// seconds, and a CountingLog turns it into operation censuses for the
// analytical model T_m = N_m (A + mB) of Section 4.
#pragma once

#include <cstdint>

#include "la/vector.hpp"

namespace mstep::core {

/// Receives one callback per (logical) vector kernel executed by a solver.
/// All methods have empty default bodies so implementations override only
/// what they price.
class KernelLog {
 public:
  virtual ~KernelLog() = default;

  /// `count` elementwise vector operations (axpy/add/scale/copy) of length n.
  virtual void vec_op(index_t n, int count = 1) { (void)n, (void)count; }

  /// Inner product of length n — the expensive reduction on both machines.
  virtual void dot_op(index_t n) { (void)n; }

  /// Max-reduction of length n (the convergence test).
  virtual void max_op(index_t n) { (void)n; }

  /// Multiplication/division by a diagonal block of length n.
  virtual void diag_op(index_t n) { (void)n; }

  /// Sparse matrix-vector product executed as `ndiags` diagonal triads of
  /// length `len` (the Madsen–Rodrigue–Karush kernel of Section 3.1).
  virtual void spmv_diagonals(index_t len, int ndiags) {
    (void)len, (void)ndiags;
  }

  /// Marks the end of one outer CG iteration (lets models attach
  /// per-iteration overhead such as the convergence synchronisation).
  virtual void end_iteration() {}

  /// Marks the end of one preconditioner step (one of the m inner steps).
  virtual void end_precond_step() {}
};

/// Counts operations and flops; used by tests and the eq.-(4.2) analysis.
class CountingLog : public KernelLog {
 public:
  void vec_op(index_t n, int count) override {
    vec_ops += count;
    flops += static_cast<long long>(n) * count;
  }
  void dot_op(index_t n) override {
    dots += 1;
    flops += 2LL * n;
  }
  void max_op(index_t n) override {
    maxes += 1;
    flops += n;
  }
  void diag_op(index_t n) override {
    diag_ops += 1;
    flops += n;
  }
  void spmv_diagonals(index_t len, int ndiags) override {
    spmvs += 1;
    flops += 2LL * len * ndiags;
  }
  void end_iteration() override { iterations += 1; }
  void end_precond_step() override { precond_steps += 1; }

  long long vec_ops = 0;
  long long dots = 0;
  long long maxes = 0;
  long long diag_ops = 0;
  long long spmvs = 0;
  long long iterations = 0;
  long long precond_steps = 0;
  long long flops = 0;
};

}  // namespace mstep::core
