// Condition number estimation for preconditioned operators.
//
// Backs the Adams-1982 results quoted in Section 2.1: kappa of the
// preconditioned system decreases as m increases, with the improvement
// ratio bounded by m.  bench_condition_number sweeps m and reports
// measured kappa(M_m^{-1} K) next to the prediction from the eigenvalue
// map polynomial.
#pragma once

#include "core/preconditioner.hpp"
#include "la/csr_matrix.hpp"
#include "la/eigen.hpp"

namespace mstep::core {

struct ConditionEstimate {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  double kappa = 0.0;
  int lanczos_steps = 0;
};

/// Extreme eigenvalues and condition number of M^{-1} K estimated by
/// preconditioned Lanczos (M-inner product; only M^{-1} applications used).
[[nodiscard]] ConditionEstimate estimate_preconditioned_condition(
    const la::CsrMatrix& k, const Preconditioner& m, int lanczos_steps = 80);

/// Condition number of K itself (plain Lanczos).
[[nodiscard]] ConditionEstimate estimate_condition(const la::CsrMatrix& k,
                                                   int lanczos_steps = 120);

}  // namespace mstep::core
