#include "core/condition.hpp"

namespace mstep::core {

ConditionEstimate estimate_preconditioned_condition(const la::CsrMatrix& k,
                                                    const Preconditioner& m,
                                                    int lanczos_steps) {
  const la::LinOp a_op = [&](const Vec& x, Vec& y) { k.multiply(x, y); };
  const la::LinOp minv = [&](const Vec& x, Vec& y) { m.apply(x, y); };
  const la::SpectrumEstimate est = la::lanczos_extreme_preconditioned(
      a_op, minv, k.rows(), lanczos_steps);
  ConditionEstimate ce;
  ce.lambda_min = est.lambda_min;
  ce.lambda_max = est.lambda_max;
  ce.kappa = est.lambda_min > 0 ? est.lambda_max / est.lambda_min : 0.0;
  ce.lanczos_steps = est.lanczos_steps;
  return ce;
}

ConditionEstimate estimate_condition(const la::CsrMatrix& k,
                                     int lanczos_steps) {
  const la::LinOp a_op = [&](const Vec& x, Vec& y) { k.multiply(x, y); };
  const la::SpectrumEstimate est =
      la::lanczos_extreme(a_op, k.rows(), lanczos_steps);
  ConditionEstimate ce;
  ce.lambda_min = est.lambda_min;
  ce.lambda_max = est.lambda_max;
  ce.kappa = est.lambda_min > 0 ? est.lambda_max / est.lambda_min : 0.0;
  ce.lanczos_steps = est.lanczos_steps;
  return ce;
}

}  // namespace mstep::core
