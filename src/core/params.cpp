#include "core/params.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/dense_matrix.hpp"
#include "la/eigen.hpp"
#include "la/quadrature.hpp"

namespace mstep::core {

SpectrumInterval ssor_interval() { return {0.0, 1.0}; }

SpectrumInterval jacobi_interval(const la::CsrMatrix& k, double safety) {
  const Vec d = k.diagonal();
  Vec dinv_sqrt(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) dinv_sqrt[i] = 1.0 / std::sqrt(d[i]);
  const la::LinOp op = [&](const Vec& x, Vec& y) {
    Vec t(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) t[i] = dinv_sqrt[i] * x[i];
    k.multiply(t, y);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] *= dinv_sqrt[i];
  };
  const la::SpectrumEstimate est = la::lanczos_extreme(op, k.rows());
  SpectrumInterval iv;
  iv.lambda_min = est.lambda_min * (1.0 - safety);
  iv.lambda_max = est.lambda_max * (1.0 + safety);
  return iv;
}

namespace {

void normalize(std::vector<double>& a) {
  if (a.empty() || a[0] == 0.0) return;
  const double s = 1.0 / a[0];
  for (auto& v : a) v *= s;
}

}  // namespace

std::vector<double> least_squares_alphas(
    int m, SpectrumInterval iv, bool normalize_alpha0,
    const std::function<double(double)>& weight) {
  if (m < 1) throw std::invalid_argument("least_squares_alphas: m >= 1");
  const auto w = weight ? weight : [](double) { return 1.0; };

  // Basis f_i(lambda) = lambda (1 - lambda)^i.  Normal equations
  // G a = b with G_ij = <f_i, f_j>_w, b_i = <f_i, 1>_w.  A Gauss rule of
  // (m + 2) points integrates the degree-2m integrands exactly.
  const int quad_points = m + 2;
  const la::QuadratureRule rule = la::gauss_legendre(quad_points);
  const double mid = 0.5 * (iv.lambda_min + iv.lambda_max);
  const double halfw = 0.5 * (iv.lambda_max - iv.lambda_min);

  la::DenseMatrix gram(m, m);
  Vec rhs(m, 0.0);
  for (int q = 0; q < quad_points; ++q) {
    const double lam = mid + halfw * rule.nodes[q];
    const double wq = rule.weights[q] * halfw * w(lam);
    // f_i values at lam.
    Vec f(m);
    double g = 1.0;
    for (int i = 0; i < m; ++i) {
      f[i] = lam * g;
      g *= (1.0 - lam);
    }
    for (int i = 0; i < m; ++i) {
      rhs[i] += wq * f[i];
      for (int j = 0; j < m; ++j) gram(i, j) += wq * f[i] * f[j];
    }
  }
  std::vector<double> a = la::solve_cholesky(gram, rhs);
  if (normalize_alpha0) normalize(a);
  return a;
}

std::vector<double> minmax_alphas(int m, SpectrumInterval iv,
                                  bool normalize_alpha0) {
  if (m < 1) throw std::invalid_argument("minmax_alphas: m >= 1");
  if (iv.lambda_min < 0.0 || iv.lambda_min + iv.lambda_max <= 0.0) {
    throw std::invalid_argument("minmax_alphas: need 0 <= l_min, l_max > 0");
  }
  // mu(lambda) = (l_max + l_min - 2 lambda) / (l_max - l_min);
  // s(lambda) = 1 - T_m(mu(lambda)) / T_m(mu_0) with mu_0 = mu(0).
  const double a = iv.lambda_min;
  const double b = iv.lambda_max;
  const double mu0 = (b + a) / (b - a);
  const double tm0 = la::chebyshev_t_value(m, mu0);

  la::Polynomial tm_of_lambda =
      la::chebyshev_t(m).compose_linear((b + a) / (b - a), -2.0 / (b - a));
  la::Polynomial s =
      la::Polynomial({1.0}) - tm_of_lambda * (1.0 / tm0);
  // s(0) = 1 - T_m(mu_0)/T_m(mu_0) = 0, so s is divisible by lambda.
  la::Polynomial p = s.divide_by_x(1e-9);
  std::vector<double> alphas = la::to_one_minus_x_basis(p);
  alphas.resize(static_cast<std::size_t>(m), 0.0);
  if (normalize_alpha0) normalize(alphas);
  return alphas;
}

la::Polynomial eigenvalue_map(const std::vector<double>& alphas) {
  // s(lambda) = lambda * p(1 - lambda).
  const la::Polynomial p = la::from_one_minus_x_basis(alphas);
  return la::Polynomial({0.0, 1.0}) * p;
}

double predicted_condition(const std::vector<double>& alphas,
                           SpectrumInterval iv, int samples) {
  const la::Polynomial s = eigenvalue_map(alphas);
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double lam = iv.lambda_min +
                       (iv.lambda_max - iv.lambda_min) * i / (samples - 1.0);
    if (lam == 0.0) continue;  // lambda = 0 is not an eigenvalue of an SPD K
    const double v = s(lam);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo <= 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

bool alphas_give_spd(const std::vector<double>& alphas, SpectrumInterval iv,
                     int samples) {
  return std::isfinite(predicted_condition(alphas, iv, samples));
}

}  // namespace mstep::core
