// Algorithm 2 of the paper: the m-step multicolor SSOR preconditioner with
// the Conrad–Wallach auxiliary vector.
//
// One m-step SSOR application is m symmetric multicolor SOR sweeps on
// K z = alpha_s r from z = 0.  A naive symmetric sweep computes both the
// strictly-lower and strictly-upper coupling sums in each half-sweep.  The
// Conrad–Wallach trick (1979) stores the lower sums computed during the
// forward half in an auxiliary vector y and reuses them in the backward
// half (and vice versa across steps), so each full symmetric sweep performs
// only ONE traversal of the off-diagonal entries — "only as expensive as
// one Multicolor SOR iteration" (Section 3).
//
// Two further reuse opportunities from the paper are implemented exactly:
//  * the backward half-sweep skips the last colour class (its value would
//    be identical to the forward value just computed), and
//  * the backward update of the FIRST class is deferred: within the step
//    loop the next forward pass performs it (only the alpha coefficient
//    differs, and nobody reads the value in between), and after the last
//    step an explicit final solve with alpha_0 completes it — the "(3)"
//    line after the loop in Algorithms 2/3.
//
// The operator is mathematically identical to
// MStepPreconditioner(SsorSplitting(omega = 1)) applied to the
// colour-permuted matrix; the tests verify the equivalence to rounding.
#pragma once

#include <vector>

#include "color/coloring.hpp"
#include "core/kernel_log.hpp"
#include "core/preconditioner.hpp"
#include "la/sell_matrix.hpp"

namespace mstep::core {

class MulticolorMStepSsor : public Preconditioner {
 public:
  /// `cs` must remain alive; its diagonal class blocks must be diagonal
  /// (verified, throws std::invalid_argument otherwise).
  /// `alphas[i]` is the coefficient of G^i, m = alphas.size().
  MulticolorMStepSsor(const color::ColoredSystem& cs,
                      std::vector<double> alphas, KernelLog* log = nullptr);

  [[nodiscard]] index_t size() const override { return cs_->size(); }
  void apply(const Vec& r, Vec& z) const override;
  [[nodiscard]] int steps() const override {
    return static_cast<int>(alphas_.size());
  }
  [[nodiscard]] std::string name() const override;

  /// Off-diagonal entry traversals per apply() — the quantity the
  /// Conrad–Wallach trick halves.  Exposed for the ablation bench.
  [[nodiscard]] long long offdiag_traversals_per_apply() const;

 private:
  const color::ColoredSystem* cs_;
  std::vector<double> alphas_;
  KernelLog* log_;

  color::RowSplits splits_;        // diagonal + lower/upper row split points
  std::vector<int> ndiags_lower_;  // per class: diagonal count of lower block
  std::vector<int> ndiags_upper_;  // per class: diagonal count of upper block
  // Per class: the strictly-lower / strictly-upper row segments in SELL
  // slices, summed 4 rows at a time by simd::sell_neg_slices — bitwise
  // -row_dot per row, but vectorized ACROSS the class's independent rows.
  std::vector<la::SellSegments> lower_;
  std::vector<la::SellSegments> upper_;
  mutable Vec y_;   // Conrad–Wallach auxiliary vector
  mutable Vec xl_;  // scratch: the current class's scattered sums
};

}  // namespace mstep::core
