#include "core/planner.hpp"

#include <stdexcept>

namespace mstep::core {

StepDecision prefer_m_plus_1(int m, int n_m, int n_m_plus_1,
                             const StepCostModel& costs) {
  if (m < 0 || n_m <= 0 || n_m_plus_1 <= 0) {
    throw std::invalid_argument("prefer_m_plus_1: bad arguments");
  }
  StepDecision d;
  d.right = costs.a_seconds > 0 ? costs.b_seconds / costs.a_seconds : 0.0;
  const double denom =
      static_cast<double>(n_m_plus_1) * (m + 1) - static_cast<double>(n_m) * m;
  if (denom <= 0.0) {
    // Criterion 1: the total number of inner loops decreases outright, so
    // m+1 wins for any positive B.
    d.criterion1 = true;
    d.take_extra_step = true;
    return d;
  }
  d.left = (static_cast<double>(n_m) - n_m_plus_1) / denom;
  d.take_extra_step = d.left > d.right;
  return d;
}

int optimal_steps(const std::vector<int>& iterations,
                  const StepCostModel& costs) {
  if (iterations.empty()) {
    throw std::invalid_argument("optimal_steps: empty curve");
  }
  int best_m = 0;
  double best_t = costs.predict(0, iterations[0]);
  for (int m = 1; m < static_cast<int>(iterations.size()); ++m) {
    const double t = costs.predict(m, iterations[m]);
    if (t < best_t) {
      best_t = t;
      best_m = m;
    }
  }
  return best_m;
}

}  // namespace mstep::core
