#include "solver/config.hpp"

#include <sstream>
#include <stdexcept>

#include "util/spec.hpp"

namespace mstep::solver {

namespace {

Ordering parse_ordering(const std::string& text) {
  if (text == "natural") return Ordering::kNatural;
  if (text == "multicolor") return Ordering::kMulticolor;
  throw std::invalid_argument(
      "SolverConfig: ordering must be 'natural' or 'multicolor', got '" +
      text + "'");
}

MatrixFormat parse_format(const std::string& text) {
  if (text == "csr") return MatrixFormat::kCsr;
  if (text == "dia") return MatrixFormat::kDia;
  if (text == "sell") return MatrixFormat::kSell;
  if (text == "auto") return MatrixFormat::kAuto;
  throw std::invalid_argument(
      "SolverConfig: format must be 'csr', 'dia', 'sell', or 'auto', got '" +
      text + "'");
}

core::StopRule parse_stop(const std::string& text) {
  if (text == "delta_inf") return core::StopRule::kDeltaInf;
  if (text == "residual2") return core::StopRule::kResidual2;
  throw std::invalid_argument(
      "SolverConfig: stop must be 'delta_inf' or 'residual2', got '" + text +
      "'");
}

}  // namespace

std::string to_string(Ordering o) {
  return o == Ordering::kNatural ? "natural" : "multicolor";
}

std::string to_string(MatrixFormat f) {
  switch (f) {
    case MatrixFormat::kCsr: return "csr";
    case MatrixFormat::kDia: return "dia";
    case MatrixFormat::kSell: return "sell";
    default: return "auto";
  }
}

MatrixFormat matrix_format_from_string(const std::string& text) {
  return parse_format(text);
}

std::string to_string(core::StopRule s) {
  return s == core::StopRule::kDeltaInf ? "delta_inf" : "residual2";
}

void SolverConfig::validate() const {
  auto& splittings = SplittingRegistry::instance();
  // at() throws with the known names listed when the key is unregistered;
  // check_options also runs the entry's own range checks (SSOR omega).
  (void)splittings.at(splitting);
  splittings.check_options(splitting, splitting_options);
  if (steps < 0) {
    throw std::invalid_argument("SolverConfig: steps (m) must be >= 0");
  }
  if (steps > 0 && !ParamStrategyRegistry::instance().contains(params)) {
    // alphas() throws with the known names listed.
    (void)ParamStrategyRegistry::instance().alphas(params, 1, {});
  }
  if (!(tolerance > 0.0)) {
    throw std::invalid_argument("SolverConfig: tolerance must be positive");
  }
  if (max_iterations <= 0) {
    throw std::invalid_argument(
        "SolverConfig: max_iterations must be positive");
  }
  if (interval && !(interval->lambda_min < interval->lambda_max)) {
    throw std::invalid_argument(
        "SolverConfig: interval needs lambda_min < lambda_max");
  }
  if (execution.threads < 0) {
    throw std::invalid_argument(
        "SolverConfig: threads must be >= 0 (0 = serial)");
  }
  if (execution.shards < 0) {
    throw std::invalid_argument(
        "SolverConfig: shards must be >= 0 (0 = not sharded)");
  }
  if (batch < 0) {
    throw std::invalid_argument(
        "SolverConfig: batch must be >= 0 (0 = auto, 1 = sequential)");
  }
}

std::string SolverConfig::to_string() const {
  std::string out =
      "splitting=" + util::spec_string(splitting, splitting_options) +
      ";m=" + std::to_string(steps) + ";params=" + params +
      ";ordering=" + solver::to_string(ordering) +
      ";format=" + solver::to_string(format) +
      ";stop=" + solver::to_string(stop_rule) +
      ";tol=" + util::format_double(tolerance) +
      ";maxit=" + std::to_string(max_iterations);
  if (execution.parallel()) {
    out += ";threads=" + std::to_string(execution.threads);
  }
  // Only a 2+ shard count changes execution, so only that serializes —
  // which is also what keys the daemon's prepared-pipeline cache on the
  // sharded backend (the cache key is this canonical string).
  if (execution.shard_count() > 0) {
    out += ";shards=" + std::to_string(execution.shards);
  }
  if (batch > 0) out += ";batch=" + std::to_string(batch);
  if (record_history) out += ";history=1";
  if (interval) {
    out += ";interval=" + util::format_double(interval->lambda_min) + ',' +
           util::format_double(interval->lambda_max);
  }
  return out;
}

SolverConfig SolverConfig::from_string(const std::string& text) {
  SolverConfig cfg;
  std::stringstream ss(text);
  std::string field;
  while (std::getline(ss, field, ';')) {
    if (field.empty()) continue;
    const auto eq = field.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(
          "SolverConfig: expected key=value, got '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "splitting") {
      cfg.splitting.clear();
      cfg.splitting_options.clear();
      util::parse_spec(value, "SolverConfig: splitting", &cfg.splitting,
                       &cfg.splitting_options);
    } else if (key == "m") {
      cfg.steps = util::parse_int(value, "SolverConfig: m");
    } else if (key == "params") {
      cfg.params = value;
    } else if (key == "ordering") {
      cfg.ordering = parse_ordering(value);
    } else if (key == "format") {
      cfg.format = parse_format(value);
    } else if (key == "stop") {
      cfg.stop_rule = parse_stop(value);
    } else if (key == "tol") {
      cfg.tolerance = util::parse_double(value, "SolverConfig: tol");
    } else if (key == "maxit") {
      cfg.max_iterations = util::parse_int(value, "SolverConfig: maxit");
    } else if (key == "threads") {
      cfg.execution.threads = util::parse_int(value, "SolverConfig: threads");
    } else if (key == "shards") {
      cfg.execution.shards = util::parse_int(value, "SolverConfig: shards");
    } else if (key == "batch") {
      cfg.batch = util::parse_int(value, "SolverConfig: batch");
    } else if (key == "history") {
      cfg.record_history = util::parse_int(value, "SolverConfig: history") != 0;
    } else if (key == "interval") {
      const auto comma = value.find(',');
      if (comma == std::string::npos) {
        throw std::invalid_argument(
            "SolverConfig: interval must be 'lo,hi', got '" + value + "'");
      }
      cfg.interval = core::SpectrumInterval{
          util::parse_double(value.substr(0, comma), "SolverConfig: interval"),
          util::parse_double(value.substr(comma + 1), "SolverConfig: interval")};
    } else {
      throw std::invalid_argument("SolverConfig: unknown field '" + key +
                                  "'");
    }
  }
  cfg.validate();
  return cfg;
}

SolverConfig SolverConfig::from_cli(const util::Cli& cli,
                                    const SolverConfig& defaults) {
  SolverConfig cfg = defaults;
  if (cli.has("splitting")) {
    cfg.splitting.clear();
    cfg.splitting_options.clear();
    util::parse_spec(cli.get("splitting", ""), "SolverConfig: splitting",
                     &cfg.splitting, &cfg.splitting_options);
  }
  if (cli.has("m")) cfg.steps = cli.get_int("m", cfg.steps);
  if (cli.has("params")) cfg.params = cli.get("params", cfg.params);
  if (cli.has("ordering")) {
    cfg.ordering = parse_ordering(cli.get("ordering", ""));
  }
  if (cli.has("format")) cfg.format = parse_format(cli.get("format", ""));
  if (cli.has("stop")) cfg.stop_rule = parse_stop(cli.get("stop", ""));
  if (cli.has("tol")) cfg.tolerance = cli.get_double("tol", cfg.tolerance);
  if (cli.has("maxit")) {
    cfg.max_iterations = cli.get_int("maxit", cfg.max_iterations);
  }
  if (cli.has("threads")) {
    cfg.execution.threads = cli.get_int("threads", cfg.execution.threads);
  }
  if (cli.has("shards")) {
    cfg.execution.shards = cli.get_int("shards", cfg.execution.shards);
  }
  if (cli.has("batch")) cfg.batch = cli.get_int("batch", cfg.batch);
  cfg.validate();
  return cfg;
}

SolverConfig SolverConfig::from_cli(const util::Cli& cli) {
  return from_cli(cli, SolverConfig{});
}

std::vector<std::string> SolverConfig::cli_flags() {
  return {"splitting", "m",   "params", "ordering", "format", "stop",
          "tol",       "maxit", "threads", "shards",   "batch"};
}

core::PcgOptions SolverConfig::pcg_options() const {
  core::PcgOptions opt;
  opt.max_iterations = max_iterations;
  opt.tolerance = tolerance;
  opt.stop_rule = stop_rule;
  opt.record_history = record_history;
  return opt;
}

bool operator==(const SolverConfig& a, const SolverConfig& b) {
  const bool iv_equal =
      a.interval.has_value() == b.interval.has_value() &&
      (!a.interval || (a.interval->lambda_min == b.interval->lambda_min &&
                       a.interval->lambda_max == b.interval->lambda_max));
  return a.splitting == b.splitting &&
         a.splitting_options == b.splitting_options && a.steps == b.steps &&
         a.params == b.params && a.ordering == b.ordering &&
         a.format == b.format && a.stop_rule == b.stop_rule &&
         a.tolerance == b.tolerance &&
         a.max_iterations == b.max_iterations &&
         a.record_history == b.record_history &&
         a.execution == b.execution && a.batch == b.batch && iv_equal;
}

}  // namespace mstep::solver
