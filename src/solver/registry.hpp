// String-keyed runtime registries backing the Solver facade.
//
// A splitting or parameter strategy becomes available to SolverConfig,
// the config-string parser, and every CLI driver the moment it is
// registered here — new combinations are a config line, not a new driver.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "la/csr_matrix.hpp"
#include "split/splitting.hpp"

namespace mstep::solver {

/// Numeric options attached to a splitting spec, e.g. {"omega", 1.2} for
/// "ssor:omega=1.2".
using SplitOptions = std::map<std::string, double>;

/// Creates splittings of a concrete matrix and knows a default spectrum
/// interval for sigma(P^{-1}K) — the interval the parameter strategies
/// optimize over when the config does not pin one.
class SplittingRegistry {
 public:
  struct Entry {
    /// Build the splitting; throws std::invalid_argument on bad options
    /// (e.g. SSOR omega outside (0, 2)).
    std::function<std::unique_ptr<split::Splitting>(const la::CsrMatrix&,
                                                    const SplitOptions&)>
        factory;
    /// Default spectrum interval of P^{-1}K for this splitting of `k`.
    std::function<core::SpectrumInterval(const la::CsrMatrix&,
                                         const SplitOptions&)>
        default_interval;
    /// Option keys the factory accepts; anything else is rejected early.
    std::vector<std::string> option_keys;
    /// Optional config-time range validation of the options (throws
    /// std::invalid_argument) — runs from check_options, i.e. already at
    /// SolverConfig parse/validate time, before any matrix exists.
    std::function<void(const SplitOptions&)> validate_options;
  };

  /// The process-wide registry, pre-populated with the built-ins
  /// ("jacobi", "ssor", "richardson").
  static SplittingRegistry& instance();

  void add(const std::string& name, Entry entry);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const Entry& at(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Validate that `options` only uses keys the named splitting accepts
  /// and pass the entry's own range checks (e.g. SSOR omega in (0, 2)).
  void check_options(const std::string& name,
                     const SplitOptions& options) const;

  [[nodiscard]] std::unique_ptr<split::Splitting> create(
      const std::string& name, const la::CsrMatrix& k,
      const SplitOptions& options = {}) const;

 private:
  std::map<std::string, Entry> entries_;
};

/// Maps a strategy name to the alpha coefficients of eq. (2.6).
class ParamStrategyRegistry {
 public:
  using Strategy =
      std::function<std::vector<double>(int m, core::SpectrumInterval)>;

  /// The process-wide registry, pre-populated with the built-ins
  /// ("ones" — unparametrized, "lsq" — least squares, "minmax" —
  /// Chebyshev).
  static ParamStrategyRegistry& instance();

  void add(const std::string& name, Strategy strategy);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::vector<double> alphas(const std::string& name, int m,
                                           core::SpectrumInterval iv) const;

 private:
  std::map<std::string, Strategy> strategies_;
};

}  // namespace mstep::solver
