// The mstep::Solver facade — the paper's whole pipeline behind one call.
//
//   auto report = Solver::from_config(config).solve(K, f);
//
// owns: multicolour ordering (caller-supplied classes or a greedy matrix
// colouring), splitting construction through the registry, alpha selection
// through the parameter-strategy registry, preconditioner assembly (with
// the Algorithm-2 Conrad–Wallach fast path when it applies), the CSR/DIA
// operator choice, and PCG itself.  Prepared splits the pipeline from the
// solve so one factorization serves many right-hand sides.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "color/coloring.hpp"
#include "core/pcg.hpp"
#include "core/planner.hpp"
#include "core/preconditioner.hpp"
#include "la/dia_matrix.hpp"
#include "la/linear_operator.hpp"
#include "par/execution.hpp"
#include "solver/config.hpp"
#include "split/splitting.hpp"

namespace mstep::solver {

/// How the multicolour stage reshaped the system (all zero when the solve
/// ran in the caller's ordering).
struct ColoringStats {
  bool used = false;
  int num_classes = 0;
  index_t min_class_size = 0;
  index_t max_class_size = 0;
};

/// Everything a solve produced: the PCG result plus the pipeline choices
/// that explain it.
struct SolveReport {
  core::PcgResult result;      // solution in the solve ordering
  Vec solution;                // solution in the caller's ordering
  std::vector<double> alphas;  // chosen coefficients; empty for m = 0
  core::SpectrumInterval interval{};  // interval the strategy optimized over
  ColoringStats coloring;
  std::string preconditioner_name;
  int steps = 0;

  [[nodiscard]] bool converged() const { return result.converged; }
  [[nodiscard]] int iterations() const { return result.iterations; }

  /// Eq. (4.1) hook: predicted seconds under a measured cost decomposition.
  [[nodiscard]] double predicted_seconds(
      const core::StepCostModel& costs) const {
    return costs.predict(steps, result.iterations);
  }
};

class Prepared;

class Solver {
 public:
  /// Validates the config (throws std::invalid_argument on bad fields).
  static Solver from_config(SolverConfig config);
  /// Convenience: from_config(SolverConfig::from_string(text)).
  static Solver from_string(const std::string& text);

  [[nodiscard]] const SolverConfig& config() const { return config_; }

  /// The execution engine backing this solver's kernels, shared by every
  /// Prepared it creates so one thread pool serves all steps and
  /// right-hand sides; nullptr when the config is serial (threads = 0).
  [[nodiscard]] const par::Execution* execution() const {
    return exec_.get();
  }

  /// Instantiate the pipeline on a concrete (square, SPD) matrix.  With a
  /// multicolour ordering and no caller classes, the equations are
  /// coloured greedily from the matrix graph.  `k` must outlive the
  /// returned object; `log` (optional) receives the kernel stream of both
  /// preconditioner assembly-time applications and later solves.
  [[nodiscard]] Prepared prepare(const la::CsrMatrix& k,
                                 core::KernelLog* log = nullptr) const;
  [[nodiscard]] Prepared prepare(const la::CsrMatrix& k,
                                 const color::ColorClasses& classes,
                                 core::KernelLog* log = nullptr) const;

  /// One-call form: prepare + solve.  `f` and `u0` are in the caller's
  /// ordering, as is the returned report's `solution`.
  [[nodiscard]] SolveReport solve(const la::CsrMatrix& k, const Vec& f,
                                  core::KernelLog* log = nullptr,
                                  const Vec& u0 = {}) const;
  [[nodiscard]] SolveReport solve(const la::CsrMatrix& k, const Vec& f,
                                  const color::ColorClasses& classes,
                                  core::KernelLog* log = nullptr,
                                  const Vec& u0 = {}) const;

 private:
  explicit Solver(SolverConfig config);

  SolverConfig config_;
  std::shared_ptr<par::Execution> exec_;  // set when execution is parallel
};

/// An instantiated pipeline bound to one matrix: the coloured system, the
/// splitting, the alphas, the preconditioner, and the operator view.
/// Reusable across right-hand sides.
class Prepared {
 public:
  /// Solve for one right-hand side (caller's ordering, as is `u0`).
  [[nodiscard]] SolveReport solve(const Vec& f, const Vec& u0 = {}) const;

  /// The matrix PCG iterates on (colour-permuted when multicolour).
  [[nodiscard]] const la::CsrMatrix& matrix() const { return *matrix_; }
  [[nodiscard]] const core::Preconditioner& preconditioner() const {
    return *precond_;
  }
  [[nodiscard]] const std::vector<double>& alphas() const { return alphas_; }
  [[nodiscard]] core::SpectrumInterval interval() const { return interval_; }
  [[nodiscard]] const ColoringStats& coloring() const { return stats_; }
  [[nodiscard]] const SolverConfig& config() const { return config_; }

  /// Caller ordering <-> solve ordering (identity when natural).
  [[nodiscard]] Vec permute(const Vec& x) const;
  [[nodiscard]] Vec unpermute(const Vec& x) const;

 private:
  friend class Solver;
  Prepared() = default;

  SolverConfig config_;
  // cs_ and dia_ live on the heap so every internal pointer (matrix_, the
  // operator view, the preconditioner's system reference) stays valid when
  // a Prepared is moved.
  std::unique_ptr<color::ColoredSystem> cs_;  // set when multicolour
  const la::CsrMatrix* matrix_ = nullptr;     // cs_->matrix or the caller's k
  std::unique_ptr<la::DiaMatrix> dia_;        // set when format == dia
  std::unique_ptr<la::LinearOperator> op_;
  std::unique_ptr<split::Splitting> splitting_;
  std::unique_ptr<core::Preconditioner> precond_;
  // Shared with the creating Solver (and its other Prepared instances):
  // one pool, warm across steps and right-hand sides.
  std::shared_ptr<par::Execution> exec_;
  std::vector<double> alphas_;
  core::SpectrumInterval interval_{};
  ColoringStats stats_;
  core::KernelLog* log_ = nullptr;
};

}  // namespace mstep::solver
