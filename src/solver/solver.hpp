// The mstep::Solver facade — the paper's whole pipeline behind one call.
//
//   auto report = Solver::from_config(config).solve(K, f);
//
// owns: multicolour ordering (caller-supplied classes or a greedy matrix
// colouring), splitting construction through the registry, alpha selection
// through the parameter-strategy registry, preconditioner assembly (with
// the Algorithm-2 Conrad–Wallach fast path when it applies), the
// CSR/DIA/SELL operator choice, and PCG itself.  Prepared splits the pipeline from the
// solve so one factorization serves many right-hand sides.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "color/coloring.hpp"
#include "core/pcg.hpp"
#include "core/planner.hpp"
#include "core/preconditioner.hpp"
#include "la/dia_matrix.hpp"
#include "la/linear_operator.hpp"
#include "par/execution.hpp"
#include "shard/partition.hpp"
#include "solver/config.hpp"
#include "split/splitting.hpp"
#include "util/span.hpp"

namespace mstep::solver {

/// How the multicolour stage reshaped the system (all zero when the solve
/// ran in the caller's ordering).
struct ColoringStats {
  bool used = false;
  int num_classes = 0;
  index_t min_class_size = 0;
  index_t max_class_size = 0;
};

/// Everything a solve produced: the PCG result plus the pipeline choices
/// that explain it.
struct SolveReport {
  core::PcgResult result;      // solution in the solve ordering
  Vec solution;                // solution in the caller's ordering
  std::vector<double> alphas;  // chosen coefficients; empty for m = 0
  core::SpectrumInterval interval{};  // interval the strategy optimized over
  ColoringStats coloring;
  std::string preconditioner_name;
  int steps = 0;
  /// The storage format the outer products actually ran on — kCsr, kDia,
  /// or kSell, never kAuto (prepare resolves `format=auto` through the
  /// la::DiaMatrix / la::SellMatrix profitability probes on the iteration
  /// matrix).
  MatrixFormat format_selected = MatrixFormat::kCsr;
  /// Effective shard count of the region-sharded backend this solve ran
  /// on: the configured `shards` after the widest-color-block clamp, or 0
  /// when the solve was not sharded (shards in {0, 1}, no multicolour
  /// system to partition, or a batch wide enough to own the pool).
  int shards = 0;

  [[nodiscard]] bool converged() const { return result.converged; }
  [[nodiscard]] int iterations() const { return result.iterations; }

  /// Eq. (4.1) hook: predicted seconds under a measured cost decomposition.
  [[nodiscard]] double predicted_seconds(
      const core::StepCostModel& costs) const {
    return costs.predict(steps, result.iterations);
  }
};

namespace detail {

/// The one preconditioner-selection policy, shared by Solver::prepare (the
/// solve path, which may thread through `exec`) and the batch engine's
/// worker lanes (which pass exec = nullptr for the serial twin): the
/// Algorithm-2 Conrad–Wallach sweep for multicolor SSOR(omega = 1), the
/// generic m-step engine for every other splitting, the identity for
/// m = 0.  Keeping the choice in one place is what guarantees a batch
/// lane's operator is mathematically the solve path's.
struct PrecondChoice {
  std::unique_ptr<split::Splitting> splitting;  // set on the generic path
  std::unique_ptr<core::Preconditioner> precond;
};

[[nodiscard]] PrecondChoice make_preconditioner(
    const SolverConfig& config, const color::ColoredSystem* cs,
    const la::CsrMatrix& matrix, const std::vector<double>& alphas,
    core::KernelLog* log, const par::Execution* exec);

}  // namespace detail

/// Everything a batched solve produced: one SolveReport per right-hand
/// side (input order) plus a per-RHS error channel — one bad right-hand
/// side never poisons the rest of the batch — and aggregate throughput
/// numbers.
struct BatchReport {
  std::vector<SolveReport> reports;        // reports[i] belongs to bs[i]
  std::vector<std::exception_ptr> errors;  // errors[i] set iff RHS i threw
  int concurrency = 0;                     // worker lanes actually used
  double wall_seconds = 0.0;               // whole-batch wall time

  [[nodiscard]] std::size_t size() const { return reports.size(); }
  /// True when right-hand side i solved without throwing.
  [[nodiscard]] bool ok(std::size_t i) const { return !errors[i]; }
  [[nodiscard]] std::size_t num_failed() const;
  /// Every right-hand side solved AND converged.
  [[nodiscard]] bool all_converged() const;
  [[nodiscard]] long long total_iterations() const;
  /// Aggregate throughput: successfully solved RHSs per wall second.
  [[nodiscard]] double solves_per_second() const;
  /// Rethrow the first per-RHS exception; no-op when the batch is clean.
  /// The reports of the other right-hand sides stay valid either way.
  void rethrow_first_error() const;
};

class Prepared;

class Solver {
 public:
  /// Validates the config (throws std::invalid_argument on bad fields).
  static Solver from_config(SolverConfig config);
  /// Convenience: from_config(SolverConfig::from_string(text)).
  static Solver from_string(const std::string& text);

  [[nodiscard]] const SolverConfig& config() const { return config_; }

  /// The execution engine backing this solver's kernels and batch lanes,
  /// shared by every Prepared it creates so one thread pool serves all
  /// steps and right-hand sides.  The pool is sized for the wider of the
  /// two demands (`threads`, `batch`); nullptr when neither asks for
  /// parallelism (threads in {0, 1} and batch in {0, 1}).
  [[nodiscard]] const par::Execution* execution() const {
    return exec_.get();
  }

  /// Instantiate the pipeline on a concrete (square, SPD) matrix.  With a
  /// multicolour ordering and no caller classes, the equations are
  /// coloured greedily from the matrix graph.  `k` must outlive the
  /// returned object; `log` (optional) receives the kernel stream of both
  /// preconditioner assembly-time applications and later solves.
  [[nodiscard]] Prepared prepare(const la::CsrMatrix& k,
                                 core::KernelLog* log = nullptr) const;
  [[nodiscard]] Prepared prepare(const la::CsrMatrix& k,
                                 const color::ColorClasses& classes,
                                 core::KernelLog* log = nullptr) const;

  /// One-call form: prepare + solve.  `f` and `u0` are in the caller's
  /// ordering, as is the returned report's `solution`.
  [[nodiscard]] SolveReport solve(const la::CsrMatrix& k, const Vec& f,
                                  core::KernelLog* log = nullptr,
                                  const Vec& u0 = {}) const;
  [[nodiscard]] SolveReport solve(const la::CsrMatrix& k, const Vec& f,
                                  const color::ColorClasses& classes,
                                  core::KernelLog* log = nullptr,
                                  const Vec& u0 = {}) const;

  /// One-call batched form: prepare once, then solve every right-hand
  /// side concurrently through Prepared::solveMany.
  [[nodiscard]] BatchReport solveMany(const la::CsrMatrix& k,
                                      util::Span<const Vec> bs,
                                      const BatchConfig& batch = {}) const;
  [[nodiscard]] BatchReport solveMany(const la::CsrMatrix& k,
                                      util::Span<const Vec> bs,
                                      const color::ColorClasses& classes,
                                      const BatchConfig& batch = {}) const;

 private:
  explicit Solver(SolverConfig config);

  SolverConfig config_;
  std::shared_ptr<par::Execution> exec_;  // set when execution is parallel
};

/// An instantiated pipeline bound to one matrix: the coloured system, the
/// splitting, the alphas, the preconditioner, and the operator view.
/// Reusable across right-hand sides.
class Prepared {
 public:
  /// Solve for one right-hand side (caller's ordering, as is `u0`).
  [[nodiscard]] SolveReport solve(const Vec& f, const Vec& u0 = {}) const;

  /// Solve many independent right-hand sides concurrently, reusing this
  /// pipeline's one coloring/splitting/alpha setup.  Work-stealing
  /// round-robin over the RHSs on the solver's shared thread pool: each
  /// worker lane owns a scratch arena (its own serial preconditioner
  /// instance and PCG workspace), grabs the next unsolved RHS, and runs a
  /// full serial-kernel PCG on it — so nothing allocates inside the batch
  /// loop beyond each report's solution, and every per-RHS result is
  /// BITWISE identical to the corresponding serial solve(bs[i]).  A
  /// throwing right-hand side records its exception in the report's error
  /// channel; the remaining RHSs still complete.  Kernel logging is
  /// single-stream and therefore skipped in batched solves.
  [[nodiscard]] BatchReport solveMany(util::Span<const Vec> bs,
                                      const BatchConfig& batch = {}) const;

  /// The matrix PCG iterates on (colour-permuted when multicolour).
  [[nodiscard]] const la::CsrMatrix& matrix() const { return *matrix_; }
  [[nodiscard]] const core::Preconditioner& preconditioner() const {
    return *precond_;
  }
  [[nodiscard]] const std::vector<double>& alphas() const { return alphas_; }
  [[nodiscard]] core::SpectrumInterval interval() const { return interval_; }
  [[nodiscard]] const ColoringStats& coloring() const { return stats_; }
  [[nodiscard]] const SolverConfig& config() const { return config_; }

  /// The operator layout this pipeline runs on: the config's format, with
  /// kAuto resolved at prepare time (on the matrix the outer products
  /// iterate on, i.e. after any colour permutation) — kDia when the
  /// diagonal probe pays off, else kSell when the sliced-ELL occupancy
  /// probe does, else kCsr.
  [[nodiscard]] MatrixFormat resolved_format() const {
    return resolved_format_;
  }

  /// Effective shard count of the region-sharded backend (0 when not
  /// sharded); the requested `shards` clamped to the widest color block.
  [[nodiscard]] int shards() const { return shards_; }

  /// Caller ordering <-> solve ordering (identity when natural).
  [[nodiscard]] Vec permute(const Vec& x) const;
  [[nodiscard]] Vec unpermute(const Vec& x) const;

 private:
  friend class Solver;
  Prepared() = default;

  /// The execution policy for in-solve kernels: set only when the config
  /// asked for kernel threading (threads >= 2), NOT when the pool exists
  /// merely to serve batch lanes — `threads=0;batch=8` keeps every
  /// individual solve on the serial kernel path.
  [[nodiscard]] const par::Execution* kernel_exec() const {
    return config_.execution.resolve() > 0 ? exec_.get() : nullptr;
  }

  SolverConfig config_;
  // cs_ and the format-specific matrices live on the heap so every
  // internal pointer (matrix_, the operator view, the preconditioner's
  // system reference) stays valid when a Prepared is moved.
  std::unique_ptr<color::ColoredSystem> cs_;  // set when multicolour
  const la::CsrMatrix* matrix_ = nullptr;     // cs_->matrix or the caller's k
  std::unique_ptr<la::DiaMatrix> dia_;        // set when format == dia
  std::unique_ptr<la::SellMatrix> sell_;      // set when format == sell
  std::unique_ptr<la::LinearOperator> op_;
  std::unique_ptr<split::Splitting> splitting_;
  std::unique_ptr<core::Preconditioner> precond_;
  // Region-sharded backend (src/shard), engaged when the config asks for
  // 2+ shards on a multicolour system: shard_op_ replaces op_ for the
  // outer products; shard_precond_ replaces precond_ on the multicolor
  // SSOR fast path (generic splittings shard the operator only).  Both
  // run on the shared pool below.  Batch lanes ignore them: lanes already
  // own the pool sideways, so sharding engages only when one solve runs
  // at a time.
  std::unique_ptr<shard::ShardPlan> shard_plan_;
  std::unique_ptr<la::LinearOperator> shard_op_;
  std::unique_ptr<core::Preconditioner> shard_precond_;
  int shards_ = 0;  // effective count; 0 when not sharded
  // Shared with the creating Solver (and its other Prepared instances):
  // one pool, warm across steps and right-hand sides.
  std::shared_ptr<par::Execution> exec_;
  std::vector<double> alphas_;
  core::SpectrumInterval interval_{};
  ColoringStats stats_;
  MatrixFormat resolved_format_ = MatrixFormat::kCsr;
  core::KernelLog* log_ = nullptr;
};

}  // namespace mstep::solver
