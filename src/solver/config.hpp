// Declarative solve configuration for the mstep::solver facade.
//
// Every knob the paper studies — splitting (and its omega), step count m,
// alpha parametrization, equation ordering, stopping rule — is one field
// here, and the whole config round-trips through a compact string form:
//
//   splitting=ssor:omega=1.2;m=4;params=lsq;ordering=multicolor;
//   format=csr;stop=delta_inf;tol=1e-06;maxit=20000
//
// so an experiment is reproducible from one line of a log, and a CLI
// driver exposes the full design space as --splitting/--m/--params/
// --threads/...
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/pcg.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"

namespace mstep::solver {

/// Equation ordering applied before the solve.
enum class Ordering {
  kNatural,     // solve in the caller's ordering
  kMulticolor,  // colour-permute first (Section 3)
};

/// Storage format the outer CG matrix-vector products run on.
///
/// `kAuto` defers the choice to prepare time: the solver probes the
/// actual iteration matrix (after any multicolour permutation) with
/// la::DiaMatrix::profitable (banded layout first) and, failing that,
/// la::SellMatrix::profitable (sliced-ELL occupancy), routing through
/// kCsr when neither structured layout pays off.  The resolved choice is
/// reported in SolveReport::format_selected (and the driver's JSON
/// `format_selected` field), so a log line always names the layout that
/// actually ran.
enum class MatrixFormat {
  kCsr,   // general sparsity
  kDia,   // by diagonals — the CYBER 203/205 layout (Section 3.1)
  kSell,  // SELL-C-sigma sliced layout for the SIMD SpMV kernel
  kAuto,  // probe at prepare time; resolves to kDia, kSell, or kCsr
};

/// Parse "csr" | "dia" | "sell" | "auto"; throws std::invalid_argument
/// otherwise.
/// (The inverse of to_string(MatrixFormat), for drivers that take a
/// --format flag without going through SolverConfig::from_cli.)
[[nodiscard]] MatrixFormat matrix_format_from_string(const std::string& text);

/// Execution policy for the hot kernels (multicolor sweeps, SpMV, vector
/// ops).  threads = 0 is the serial default — the solve runs entirely on
/// the calling thread through the unthreaded code path.  threads = n >= 1
/// runs on a pool of n threads (including the caller) with deterministic
/// blocked reductions: the solve is BITWISE identical to the serial one.
struct ExecutionConfig {
  int threads = 0;

  /// Region shards for the sharded execution backend (src/shard): the
  /// color-permuted system is cut into `shards` contiguous strips per
  /// color block, each swept by its own task on the shared pool with
  /// halo exchange between them.  0 and 1 both mean "not sharded" (one
  /// shard IS the serial region).  The effective count may be clamped to
  /// the widest color block at prepare time — SolveReport::shards
  /// records what actually ran.  Sharded solves stay bitwise identical
  /// to serial for any shards x threads x batch combination.
  int shards = 0;

  [[nodiscard]] bool parallel() const { return threads >= 1; }

  /// Pool-construction normal form: how many pool threads this config asks
  /// for, with 0 AND 1 both collapsed to 0 — one thread is the caller, so
  /// "one thread" and "serial" are the same policy and neither constructs
  /// a pool.  Every site that sizes a ThreadPool/Execution from a config
  /// goes through here, so no round-tripped config can ever request a
  /// 0-thread pool (ThreadPool itself throws on < 1 as the backstop).
  [[nodiscard]] int resolve() const { return threads >= 2 ? threads : 0; }

  /// Sharding normal form, same collapse rule as resolve(): the backend
  /// engages only for 2+ shards.
  [[nodiscard]] int shard_count() const { return shards >= 2 ? shards : 0; }

  friend bool operator==(const ExecutionConfig& a, const ExecutionConfig& b) {
    return a.threads == b.threads && a.shards == b.shards;
  }
  friend bool operator!=(const ExecutionConfig& a, const ExecutionConfig& b) {
    return !(a == b);
  }
};

/// Per-call options for Prepared::solveMany / Solver::solveMany.
struct BatchConfig {
  /// Maximum right-hand sides in flight at once.  0 defers to the solver
  /// config's `batch` default, which itself defers to the width of the
  /// solver's thread pool capped at the hardware width; 1 solves
  /// sequentially on the calling thread.  The pool is sized at Solver
  /// construction from max(threads, batch), so a per-call request can
  /// never EXCEED that width — asking for 8 lanes from a solver built
  /// with threads=0;batch=0 (no pool) runs sequentially; put the intended
  /// width in the config's `batch` (or `threads`) to provision it.
  int concurrency = 0;
};

/// The whole design space of one solve, declaratively.  Every field
/// round-trips through to_string()/from_string() and the --flag set of
/// from_cli(), so a config is reproducible from one log line.
struct SolverConfig {
  /// SplittingRegistry key (jacobi | ssor | richardson | user-registered).
  std::string splitting = "ssor";
  SplitOptions splitting_options;        // e.g. {"omega", 1.2}
  int steps = 4;                         // m; 0 = plain CG
  std::string params = "lsq";            // parameter strategy key
  Ordering ordering = Ordering::kMulticolor;
  /// Operator storage for the outer CG products (string form
  /// "format=csr|dia|sell|auto", CLI --format).  kAuto defers to the
  /// bandedness/occupancy probes at prepare time; see MatrixFormat.
  MatrixFormat format = MatrixFormat::kCsr;
  core::StopRule stop_rule = core::StopRule::kDeltaInf;
  double tolerance = 1e-6;               // on the stop_rule quantity
  int max_iterations = 20000;
  bool record_history = false;           // keep per-iteration history
  /// Serial by default; serializes as "threads=N" only when parallel, so
  /// serial config strings are unchanged from the unthreaded library.
  ExecutionConfig execution;
  /// Default solveMany concurrency (string form ";batch=N", CLI --batch=N).
  /// 0 = auto (one lane per pool thread); N >= 2 also guarantees the
  /// solver's pool is at least N wide, so `threads=0;batch=8` batches
  /// eight solves concurrently while each individual solve stays on the
  /// serial kernel path.
  int batch = 0;
  /// Spectrum interval for the parameter strategy; the splitting's default
  /// (e.g. [0, 1] for SSOR) when unset.
  std::optional<core::SpectrumInterval> interval;

  /// Throws std::invalid_argument if any field is out of range or names an
  /// unregistered splitting/strategy (SSOR omega must lie in (0, 2)).
  void validate() const;

  /// Serialize; from_string(to_string()) reproduces every field.
  [[nodiscard]] std::string to_string() const;
  static SolverConfig from_string(const std::string& text);

  /// Read the config flags out of a parsed command line; flags that are
  /// absent keep `defaults`.
  static SolverConfig from_cli(const util::Cli& cli,
                               const SolverConfig& defaults);
  static SolverConfig from_cli(const util::Cli& cli);
  /// Flag names from_cli consumes — append to a driver's allowed list.
  static std::vector<std::string> cli_flags();

  [[nodiscard]] core::PcgOptions pcg_options() const;

  friend bool operator==(const SolverConfig& a, const SolverConfig& b);
  friend bool operator!=(const SolverConfig& a, const SolverConfig& b) {
    return !(a == b);
  }
};

[[nodiscard]] std::string to_string(Ordering o);
[[nodiscard]] std::string to_string(MatrixFormat f);
[[nodiscard]] std::string to_string(core::StopRule s);

}  // namespace mstep::solver
