#include "solver/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/condition.hpp"
#include "core/mstep.hpp"

namespace mstep::solver {

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

double option_or(const SplitOptions& options, const std::string& key,
                 double fallback) {
  auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

SplittingRegistry make_splitting_registry() {
  SplittingRegistry reg;

  SplittingRegistry::Entry jacobi;
  jacobi.factory = [](const la::CsrMatrix& k, const SplitOptions&) {
    return std::make_unique<split::JacobiSplitting>(k);
  };
  jacobi.default_interval = [](const la::CsrMatrix& k, const SplitOptions&) {
    return core::jacobi_interval(k);
  };
  reg.add("jacobi", std::move(jacobi));

  SplittingRegistry::Entry ssor;
  ssor.factory = [](const la::CsrMatrix& k, const SplitOptions& options) {
    return std::make_unique<split::SsorSplitting>(
        k, option_or(options, "omega", 1.0));
  };
  ssor.default_interval = [](const la::CsrMatrix&, const SplitOptions&) {
    return core::ssor_interval();
  };
  ssor.option_keys = {"omega"};
  ssor.validate_options = [](const SplitOptions& options) {
    const double omega = option_or(options, "omega", 1.0);
    if (!(omega > 0.0) || !(omega < 2.0)) {
      throw std::invalid_argument("SSOR omega must lie in (0, 2), got " +
                                  std::to_string(omega));
    }
  };
  reg.add("ssor", std::move(ssor));

  SplittingRegistry::Entry richardson;
  richardson.factory = [](const la::CsrMatrix& k,
                          const SplitOptions& options) {
    return std::make_unique<split::RichardsonSplitting>(
        k.rows(), option_or(options, "theta", 1.0));
  };
  richardson.default_interval = [](const la::CsrMatrix& k,
                                   const SplitOptions& options) {
    // sigma(P^{-1}K) = theta * sigma(K); Lanczos bounds, slightly widened.
    const double theta = option_or(options, "theta", 1.0);
    const auto est = core::estimate_condition(k);
    return core::SpectrumInterval{0.98 * theta * est.lambda_min,
                                  1.02 * theta * est.lambda_max};
  };
  richardson.option_keys = {"theta"};
  reg.add("richardson", std::move(richardson));

  return reg;
}

ParamStrategyRegistry make_param_registry() {
  ParamStrategyRegistry reg;
  reg.add("ones", [](int m, core::SpectrumInterval) {
    return core::unparametrized_alphas(m);
  });
  reg.add("lsq", [](int m, core::SpectrumInterval iv) {
    return core::least_squares_alphas(m, iv);
  });
  reg.add("minmax", [](int m, core::SpectrumInterval iv) {
    return core::minmax_alphas(m, iv);
  });
  return reg;
}

}  // namespace

SplittingRegistry& SplittingRegistry::instance() {
  static SplittingRegistry reg = make_splitting_registry();
  return reg;
}

void SplittingRegistry::add(const std::string& name, Entry entry) {
  if (!entry.factory || !entry.default_interval) {
    throw std::invalid_argument("SplittingRegistry: entry for '" + name +
                                "' needs a factory and a default interval");
  }
  entries_[name] = std::move(entry);
}

bool SplittingRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

const SplittingRegistry::Entry& SplittingRegistry::at(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("unknown splitting '" + name + "' (known: " +
                                join_names(names()) + ")");
  }
  return it->second;
}

std::vector<std::string> SplittingRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void SplittingRegistry::check_options(const std::string& name,
                                      const SplitOptions& options) const {
  const Entry& entry = at(name);
  for (const auto& [key, value] : options) {
    if (std::find(entry.option_keys.begin(), entry.option_keys.end(), key) ==
        entry.option_keys.end()) {
      throw std::invalid_argument("splitting '" + name +
                                  "' does not take option '" + key + "'");
    }
  }
  if (entry.validate_options) entry.validate_options(options);
}

std::unique_ptr<split::Splitting> SplittingRegistry::create(
    const std::string& name, const la::CsrMatrix& k,
    const SplitOptions& options) const {
  check_options(name, options);
  return at(name).factory(k, options);
}

ParamStrategyRegistry& ParamStrategyRegistry::instance() {
  static ParamStrategyRegistry reg = make_param_registry();
  return reg;
}

void ParamStrategyRegistry::add(const std::string& name, Strategy strategy) {
  strategies_[name] = std::move(strategy);
}

bool ParamStrategyRegistry::contains(const std::string& name) const {
  return strategies_.count(name) > 0;
}

std::vector<std::string> ParamStrategyRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, s] : strategies_) out.push_back(name);
  return out;
}

std::vector<double> ParamStrategyRegistry::alphas(
    const std::string& name, int m, core::SpectrumInterval iv) const {
  auto it = strategies_.find(name);
  if (it == strategies_.end()) {
    throw std::invalid_argument("unknown parameter strategy '" + name +
                                "' (known: " + join_names(names()) + ")");
  }
  return it->second(m, iv);
}

}  // namespace mstep::solver
