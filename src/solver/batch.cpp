// The batched multi-RHS solve engine behind Prepared::solveMany.
//
// One expensive setup — coloring, permutation, splitting parameters, alpha
// coefficients — serves many right-hand sides (the reuse the paper's whole
// m-step design is built around); the engine schedules the independent PCG
// solves concurrently on the solver's shared thread pool.  Scheduling is a
// work-stealing round-robin: each worker lane pops the next unsolved RHS
// index off one atomic cursor, so a slow right-hand side (more iterations)
// never stalls the rest of the batch behind a static partition.
//
// Each lane owns a scratch arena — its own SERIAL preconditioner instance
// (mutable sweep scratch must not be shared across lanes, and nested pool
// dispatch from inside a pool job is not supported) plus a PcgWorkspace
// and reorder buffers — built once before the loop, so nothing allocates
// inside the batch loop beyond each report's solution vector.  Because the
// lanes run the serial kernel path, every per-RHS result is BITWISE
// identical to the corresponding serial Prepared::solve.
#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "obs/kernel_log.hpp"
#include "obs/trace.hpp"
#include "solver/solver.hpp"
#include "util/timer.hpp"

namespace mstep::solver {

namespace {

/// Per-lane scratch arena: everything one concurrent PCG solve mutates.
struct Lane {
  detail::PrecondChoice engine;  // serial preconditioner (+ its splitting)
  core::PcgWorkspace workspace;
  Vec fp;  // permuted right-hand side (reused across this lane's RHSs)
  /// Feeds the tracer's kernel census (flops/bytes counters) when tracing
  /// is enabled at batch time; null otherwise, so the untraced hot path
  /// keeps its no-log pcg_solve calls.
  std::unique_ptr<obs::TracingKernelLog> trace_log;
};

}  // namespace

std::size_t BatchReport::num_failed() const {
  std::size_t failed = 0;
  for (const auto& e : errors) {
    if (e) ++failed;
  }
  return failed;
}

bool BatchReport::all_converged() const {
  if (reports.empty()) return true;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (errors[i] || !reports[i].converged()) return false;
  }
  return true;
}

long long BatchReport::total_iterations() const {
  long long total = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (!errors[i]) total += reports[i].iterations();
  }
  return total;
}

double BatchReport::solves_per_second() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(reports.size() - num_failed()) / wall_seconds;
}

void BatchReport::rethrow_first_error() const {
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

BatchReport Prepared::solveMany(util::Span<const Vec> bs,
                                const BatchConfig& batch) const {
  util::Timer timer;
  if (batch.concurrency < 0) {
    throw std::invalid_argument("solveMany: concurrency must be >= 0");
  }
  BatchReport br;
  br.reports.resize(bs.size());
  br.errors.resize(bs.size());
  const auto nrhs = static_cast<index_t>(bs.size());
  if (nrhs == 0) return br;

  // Lane count: the per-call override, else the config default — both
  // honored as asked (deliberate oversubscription stays possible) — else
  // one lane per pool thread capped at the hardware width: lanes beyond
  // the physical cores only add timesharing and arena memory, never
  // throughput.  Never more lanes than the pool can run at once or than
  // there are right-hand sides.
  par::ThreadPool* pool = exec_ ? exec_->pool() : nullptr;
  const int pool_width = pool ? pool->threads() : 1;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int auto_want = hw > 0 ? std::min(pool_width, hw) : pool_width;
  // A configured sharded backend and wide batch lanes are two competing
  // uses of the one pool, and lanes cannot nest pool dispatch; when the
  // config asks for shards and leaves the lane count to the engine, the
  // shards win — right-hand sides run sequentially, each solve sharded
  // across the pool.  An explicit batch/concurrency request overrides
  // (lanes win, solves run the serial kernels, reports say shards = 0).
  const int auto_lanes = shards_ > 0 ? 1 : auto_want;
  const int want = batch.concurrency > 0
                       ? batch.concurrency
                       : (config_.batch > 0 ? config_.batch : auto_lanes);
  const int lanes = std::max(
      1, std::min({want, pool_width, static_cast<int>(nrhs)}));
  // Sharded execution engages only when one solve owns the pool at a
  // time: lanes == 1 runs on the calling thread, leaving the pool free
  // for the per-shard phase dispatch.
  const bool sharded = shards_ > 0 && lanes == 1;

  // Build one scratch arena per lane through the same selection policy as
  // prepare(), with exec = nullptr for the serial twin (see the file
  // comment).  The expensive setup — coloring, interval, alphas — is NOT
  // redone: lanes share cs_/matrix_/op_/alphas_ read-only.
  // The kernel census rides the same KernelLog stream the Section-4 cost
  // model uses — one instrumentation pass.  The log pointer is non-null
  // only when tracing is on when the batch starts, so untraced batches
  // keep the log-free pcg_solve/sweep code paths (no virtual calls).
  const bool tracing = obs::Tracer::instance().enabled();
  std::vector<Lane> arena(static_cast<std::size_t>(lanes));
  for (Lane& lane : arena) {
    if (tracing) lane.trace_log = std::make_unique<obs::TracingKernelLog>();
    lane.engine = detail::make_preconditioner(config_, cs_.get(), *matrix_,
                                              alphas_, lane.trace_log.get(),
                                              nullptr);
  }

  const index_t n = matrix_->rows();
  std::atomic<index_t> cursor{0};
  // Lanes on pool threads inherit the caller's correlation id, so a
  // traced daemon request keeps its id on every lane's track.
  const std::uint64_t trace_correlation = obs::correlation();
  auto run_lane = [&](index_t lane_id) {
    const obs::CorrelationScope correlate(trace_correlation);
    Lane& lane = arena[static_cast<std::size_t>(lane_id)];
    for (;;) {
      const index_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= nrhs) return;
      try {
        const Vec& f = bs[i];
        if (static_cast<index_t>(f.size()) != n) {
          throw std::invalid_argument(
              "solveMany: right-hand side " + std::to_string(i) + " has " +
              std::to_string(f.size()) + " entries, system has " +
              std::to_string(n));
        }
        SolveReport report;
        const core::Preconditioner& precond =
            sharded && shard_precond_ ? *shard_precond_
                                      : *lane.engine.precond;
        const la::LinearOperator& op = sharded ? *shard_op_ : *op_;
        if (cs_) {
          cs_->permute_into(f, lane.fp);
          report.result = core::pcg_solve(op, lane.fp, precond,
                                          config_.pcg_options(),
                                          lane.trace_log.get(), {},
                                          nullptr, &lane.workspace);
          cs_->unpermute_into(report.result.solution, report.solution);
        } else {
          report.result = core::pcg_solve(op, f, precond,
                                          config_.pcg_options(),
                                          lane.trace_log.get(), {},
                                          nullptr, &lane.workspace);
          report.solution = report.result.solution;
        }
        report.alphas = alphas_;
        report.interval = interval_;
        report.coloring = stats_;
        report.preconditioner_name = precond.name();
        report.steps = config_.steps;
        report.format_selected = resolved_format_;
        report.shards = sharded ? shards_ : 0;
        br.reports[i] = std::move(report);  // distinct slot per RHS: no race
      } catch (...) {
        br.errors[i] = std::current_exception();
      }
    }
  };

  if (lanes == 1 || pool == nullptr) {
    run_lane(0);
  } else {
    // One pool job for the whole batch; the atomic cursor inside run_lane
    // does the per-RHS stealing.  Lane bodies catch everything, so the
    // pool's own exception channel stays quiet and every RHS completes.
    pool->for_each(0, lanes, run_lane);
  }

  br.concurrency = lanes;
  br.wall_seconds = timer.seconds();
  return br;
}

}  // namespace mstep::solver
