#include "solver/solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "color/greedy.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "par/colored_sweep.hpp"

namespace mstep::solver {

namespace {

ColoringStats stats_from(const color::ColoredSystem& cs) {
  ColoringStats stats;
  stats.used = true;
  stats.num_classes = cs.num_classes();
  stats.min_class_size = cs.size();
  stats.max_class_size = 0;
  for (int c = 0; c < cs.num_classes(); ++c) {
    stats.min_class_size = std::min(stats.min_class_size, cs.class_size(c));
    stats.max_class_size = std::max(stats.max_class_size, cs.class_size(c));
  }
  return stats;
}

double ssor_omega(const SolverConfig& config) {
  const auto it = config.splitting_options.find("omega");
  return it == config.splitting_options.end() ? 1.0 : it->second;
}

}  // namespace

Solver::Solver(SolverConfig config) : config_(std::move(config)) {
  // One pool for the solver's whole lifetime: every Prepared (and hence
  // every step and right-hand side) reuses the same warm threads.
  if (config_.execution.parallel()) {
    exec_ = std::make_shared<par::Execution>(config_.execution.threads);
  }
}

Solver Solver::from_config(SolverConfig config) {
  config.validate();
  return Solver(std::move(config));
}

Solver Solver::from_string(const std::string& text) {
  return from_config(SolverConfig::from_string(text));
}

Prepared Solver::prepare(const la::CsrMatrix& k, core::KernelLog* log) const {
  if (config_.ordering == Ordering::kMulticolor) {
    return prepare(k, color::greedy_classes_from_matrix(k), log);
  }
  return prepare(k, color::ColorClasses{}, log);
}

Prepared Solver::prepare(const la::CsrMatrix& k,
                         const color::ColorClasses& classes,
                         core::KernelLog* log) const {
  if (k.rows() != k.cols()) {
    throw std::invalid_argument("Solver: matrix must be square");
  }
  Prepared p;
  p.config_ = config_;
  p.exec_ = exec_;
  p.log_ = log;

  // 1. Ordering.
  if (config_.ordering == Ordering::kMulticolor) {
    if (classes.num_classes() == 0) {
      throw std::invalid_argument(
          "Solver: multicolor ordering needs colour classes");
    }
    p.cs_ = std::make_unique<color::ColoredSystem>(
        color::make_colored_system(k, classes));
    p.matrix_ = &p.cs_->matrix;
    p.stats_ = stats_from(*p.cs_);
  } else {
    p.matrix_ = &k;
  }

  // 2. Parameters and preconditioner (splitting via the registries).
  if (config_.steps > 0) {
    const auto& entry = SplittingRegistry::instance().at(config_.splitting);
    p.interval_ = config_.interval
                      ? *config_.interval
                      : entry.default_interval(*p.matrix_,
                                               config_.splitting_options);
    p.alphas_ = ParamStrategyRegistry::instance().alphas(
        config_.params, config_.steps, p.interval_);

    // Algorithm-2 fast path: the Conrad–Wallach multicolor sweep is the
    // SSOR(omega = 1) m-step operator on the colour-permuted matrix.  With
    // a parallel execution policy the colour classes are swept by the
    // thread pool — bitwise the serial result (the decoupling property).
    // Tiny systems keep the serial sweep: per-class pool dispatch costs
    // more than it saves there (same threshold as the Execution kernels).
    if (p.cs_ && config_.splitting == "ssor" && ssor_omega(config_) == 1.0) {
      if (p.exec_ && p.exec_->parallel() &&
          p.matrix_->rows() >= par::kSerialCutoff) {
        p.precond_ = std::make_unique<par::ParallelMulticolorMStepSsor>(
            *p.cs_, p.alphas_, *p.exec_->pool(), log);
      } else {
        p.precond_ = std::make_unique<core::MulticolorMStepSsor>(
            *p.cs_, p.alphas_, log);
      }
    } else {
      p.splitting_ = SplittingRegistry::instance().create(
          config_.splitting, *p.matrix_, config_.splitting_options);
      p.precond_ = std::make_unique<core::MStepPreconditioner>(
          *p.matrix_, *p.splitting_, p.alphas_, log);
    }
  } else {
    p.precond_ = std::make_unique<core::IdentityPreconditioner>(
        p.matrix_->rows());
  }

  // 3. Operator view for the outer CG products.
  if (config_.format == MatrixFormat::kDia) {
    p.dia_ =
        std::make_unique<la::DiaMatrix>(la::DiaMatrix::from_csr(*p.matrix_));
    p.op_ = std::make_unique<la::DiaOperator>(*p.dia_);
  } else {
    p.op_ = std::make_unique<la::CsrOperator>(*p.matrix_);
  }
  return p;
}

SolveReport Solver::solve(const la::CsrMatrix& k, const Vec& f,
                          core::KernelLog* log, const Vec& u0) const {
  return prepare(k, log).solve(f, u0);
}

SolveReport Solver::solve(const la::CsrMatrix& k, const Vec& f,
                          const color::ColorClasses& classes,
                          core::KernelLog* log, const Vec& u0) const {
  return prepare(k, classes, log).solve(f, u0);
}

Vec Prepared::permute(const Vec& x) const {
  return cs_ ? cs_->permute(x) : x;
}

Vec Prepared::unpermute(const Vec& x) const {
  return cs_ ? cs_->unpermute(x) : x;
}

SolveReport Prepared::solve(const Vec& f, const Vec& u0) const {
  const Vec fp = permute(f);
  const Vec u0p = u0.empty() ? Vec{} : permute(u0);

  SolveReport report;
  report.result = core::pcg_solve(*op_, fp, *precond_, config_.pcg_options(),
                                  log_, u0p, exec_.get());
  report.solution = unpermute(report.result.solution);
  report.alphas = alphas_;
  report.interval = interval_;
  report.coloring = stats_;
  report.preconditioner_name = precond_->name();
  report.steps = config_.steps;
  return report;
}

}  // namespace mstep::solver
