#include "solver/solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "color/greedy.hpp"
#include "core/mstep.hpp"
#include "core/multicolor_mstep.hpp"
#include "obs/trace.hpp"
#include "par/colored_sweep.hpp"
#include "shard/sharded_operator.hpp"
#include "shard/sharded_sweep.hpp"

namespace mstep::solver {

namespace {

ColoringStats stats_from(const color::ColoredSystem& cs) {
  ColoringStats stats;
  stats.used = true;
  stats.num_classes = cs.num_classes();
  stats.min_class_size = cs.size();
  stats.max_class_size = 0;
  for (int c = 0; c < cs.num_classes(); ++c) {
    stats.min_class_size = std::min(stats.min_class_size, cs.class_size(c));
    stats.max_class_size = std::max(stats.max_class_size, cs.class_size(c));
  }
  return stats;
}

double ssor_omega(const SolverConfig& config) {
  const auto it = config.splitting_options.find("omega");
  return it == config.splitting_options.end() ? 1.0 : it->second;
}

}  // namespace

namespace detail {

PrecondChoice make_preconditioner(const SolverConfig& config,
                                  const color::ColoredSystem* cs,
                                  const la::CsrMatrix& matrix,
                                  const std::vector<double>& alphas,
                                  core::KernelLog* log,
                                  const par::Execution* exec) {
  PrecondChoice choice;
  if (config.steps <= 0) {
    choice.precond =
        std::make_unique<core::IdentityPreconditioner>(matrix.rows());
    return choice;
  }
  // Algorithm-2 fast path: the Conrad–Wallach multicolor sweep is the
  // SSOR(omega = 1) m-step operator on the colour-permuted matrix.  With
  // a parallel execution policy the colour classes are swept by the
  // thread pool — bitwise the serial result (the decoupling property).
  // Tiny systems keep the serial sweep: per-class pool dispatch costs
  // more than it saves there (same threshold as the Execution kernels).
  if (cs && config.splitting == "ssor" && ssor_omega(config) == 1.0) {
    if (exec && exec->parallel() && matrix.rows() >= par::kSerialCutoff) {
      choice.precond = std::make_unique<par::ParallelMulticolorMStepSsor>(
          *cs, alphas, *exec->pool(), log);
    } else {
      choice.precond =
          std::make_unique<core::MulticolorMStepSsor>(*cs, alphas, log);
    }
    return choice;
  }
  // Generic m-step engine: every registered splitting threads its sweep
  // through the execution policy (deterministic, bitwise the serial
  // sweep) instead of only the multicolor fast path.
  choice.splitting = SplittingRegistry::instance().create(
      config.splitting, matrix, config.splitting_options);
  choice.precond = std::make_unique<core::MStepPreconditioner>(
      matrix, *choice.splitting, alphas, log,
      exec && exec->parallel() ? exec : nullptr);
  return choice;
}

}  // namespace detail

Solver::Solver(SolverConfig config) : config_(std::move(config)) {
  // One pool for the solver's whole lifetime: every Prepared (and hence
  // every step and right-hand side) reuses the same warm threads.  It is
  // sized for the wider of the two demands on it — kernel threading
  // (threads) and batch lanes (batch) — through ExecutionConfig::resolve(),
  // which collapses 0 and 1 to "no pool", so no path can construct a
  // 0-thread pool.
  const int kernel_threads = config_.execution.resolve();
  const int lane_threads = config_.batch >= 2 ? config_.batch : 0;
  // The sharded backend carves one task per shard from the same pool, so
  // the pool is provisioned for the REQUESTED shard count (the effective
  // count is only known at prepare time, after the clamp; over-provision
  // by a few idle workers is the cheap side of that trade).
  const int shard_threads = config_.execution.shard_count();
  const int pool_threads =
      std::max({kernel_threads, lane_threads, shard_threads});
  if (pool_threads > 0) {
    exec_ = std::make_shared<par::Execution>(pool_threads);
  }
}

Solver Solver::from_config(SolverConfig config) {
  config.validate();
  return Solver(std::move(config));
}

Solver Solver::from_string(const std::string& text) {
  return from_config(SolverConfig::from_string(text));
}

Prepared Solver::prepare(const la::CsrMatrix& k, core::KernelLog* log) const {
  if (config_.ordering == Ordering::kMulticolor) {
    return prepare(k, color::greedy_classes_from_matrix(k), log);
  }
  return prepare(k, color::ColorClasses{}, log);
}

Prepared Solver::prepare(const la::CsrMatrix& k,
                         const color::ColorClasses& classes,
                         core::KernelLog* log) const {
  if (k.rows() != k.cols()) {
    throw std::invalid_argument("Solver: matrix must be square");
  }
  const obs::Span prepare_span("prepare");
  Prepared p;
  p.config_ = config_;
  p.exec_ = exec_;
  p.log_ = log;

  // 1. Ordering.
  {
    const obs::Span coloring_span("coloring");
    if (config_.ordering == Ordering::kMulticolor) {
      if (classes.num_classes() == 0) {
        throw std::invalid_argument(
            "Solver: multicolor ordering needs colour classes");
      }
      p.cs_ = std::make_unique<color::ColoredSystem>(
          color::make_colored_system(k, classes));
      p.matrix_ = &p.cs_->matrix;
      p.stats_ = stats_from(*p.cs_);
    } else {
      p.matrix_ = &k;
    }
  }

  // 2. Parameters and preconditioner (splitting via the registries).
  {
    const obs::Span params_span("params");
    if (config_.steps > 0) {
      const auto& entry = SplittingRegistry::instance().at(config_.splitting);
      p.interval_ = config_.interval
                        ? *config_.interval
                        : entry.default_interval(*p.matrix_,
                                                 config_.splitting_options);
      p.alphas_ = ParamStrategyRegistry::instance().alphas(
          config_.params, config_.steps, p.interval_);
    }
    // kernel_exec() gates on threads >= 2: a pool that exists only for
    // batch lanes leaves the single-solve path serial.  The factory is
    // shared with the batch lanes, so a lane's operator is by construction
    // the solve path's (m = 0 yields the identity).
    auto choice = detail::make_preconditioner(
        config_, p.cs_.get(), *p.matrix_, p.alphas_, log, p.kernel_exec());
    p.splitting_ = std::move(choice.splitting);
    p.precond_ = std::move(choice.precond);
  }

  // 3. Operator view for the outer CG products.  `auto` is resolved HERE,
  // on the matrix PCG actually iterates on (the colour-permuted one when
  // multicolour) — a matrix that is banded in the caller's ordering can
  // scatter its diagonals under the permutation and vice versa, so the
  // probe must see the operator matrix, not the input.
  // The registry probe order is banded-first: the diagonal layout beats
  // the sliced one when the matrix is banded enough to fill it, and SELL
  // catches the irregular-but-dense-rows middle ground before the CSR
  // fallback.
  const obs::Span probe_span("format_probe");
  p.resolved_format_ = config_.format;
  if (p.resolved_format_ == MatrixFormat::kAuto) {
    if (la::DiaMatrix::profitable(*p.matrix_)) {
      p.resolved_format_ = MatrixFormat::kDia;
    } else if (la::SellMatrix::profitable(*p.matrix_)) {
      p.resolved_format_ = MatrixFormat::kSell;
    } else {
      p.resolved_format_ = MatrixFormat::kCsr;
    }
  }
  if (p.resolved_format_ == MatrixFormat::kDia) {
    p.dia_ =
        std::make_unique<la::DiaMatrix>(la::DiaMatrix::from_csr(*p.matrix_));
    p.op_ = std::make_unique<la::DiaOperator>(*p.dia_);
  } else if (p.resolved_format_ == MatrixFormat::kSell) {
    p.sell_ =
        std::make_unique<la::SellMatrix>(la::SellMatrix::from_csr(*p.matrix_));
    p.op_ = std::make_unique<la::SellOperator>(*p.sell_);
  } else {
    p.op_ = std::make_unique<la::CsrOperator>(*p.matrix_);
  }

  // 4. Region-sharded backend: cut every color block into contiguous
  // strips and run the outer products (and, on the multicolor SSOR fast
  // path, the sweeps with halo exchange) one pool task per shard.  Needs
  // a multicolour system — the color blocks ARE the regions — and the
  // shared pool the Solver provisioned for the shard count.  The clamp
  // (ShardPlan::build) can collapse the request to one shard on a tiny
  // system, which is the serial region: no machinery engages and the
  // report says shards = 0.
  if (config_.execution.shard_count() >= 2 && p.cs_ && exec_) {
    auto plan = std::make_unique<shard::ShardPlan>(shard::ShardPlan::build(
        p.cs_->class_start, config_.execution.shards));
    if (plan->num_shards() >= 2) {
      p.shards_ = plan->num_shards();
      if (p.resolved_format_ == MatrixFormat::kDia) {
        p.shard_op_ = std::make_unique<shard::ShardedOperator>(
            *p.dia_, *plan, *exec_->pool());
      } else if (p.resolved_format_ == MatrixFormat::kSell) {
        p.shard_op_ = std::make_unique<shard::ShardedOperator>(
            *p.sell_, *plan, *exec_->pool());
      } else {
        p.shard_op_ = std::make_unique<shard::ShardedOperator>(
            *p.matrix_, *plan, *exec_->pool());
      }
      if (config_.steps > 0 && config_.splitting == "ssor" &&
          ssor_omega(config_) == 1.0) {
        p.shard_precond_ = std::make_unique<shard::ShardedMulticolorMStepSsor>(
            *p.cs_, p.alphas_, *plan, *exec_->pool(), log);
      }
      p.shard_plan_ = std::move(plan);
    }
  }
  return p;
}

SolveReport Solver::solve(const la::CsrMatrix& k, const Vec& f,
                          core::KernelLog* log, const Vec& u0) const {
  return prepare(k, log).solve(f, u0);
}

SolveReport Solver::solve(const la::CsrMatrix& k, const Vec& f,
                          const color::ColorClasses& classes,
                          core::KernelLog* log, const Vec& u0) const {
  return prepare(k, classes, log).solve(f, u0);
}

BatchReport Solver::solveMany(const la::CsrMatrix& k, util::Span<const Vec> bs,
                              const BatchConfig& batch) const {
  return prepare(k).solveMany(bs, batch);
}

BatchReport Solver::solveMany(const la::CsrMatrix& k, util::Span<const Vec> bs,
                              const color::ColorClasses& classes,
                              const BatchConfig& batch) const {
  return prepare(k, classes).solveMany(bs, batch);
}

Vec Prepared::permute(const Vec& x) const {
  return cs_ ? cs_->permute(x) : x;
}

Vec Prepared::unpermute(const Vec& x) const {
  return cs_ ? cs_->unpermute(x) : x;
}

SolveReport Prepared::solve(const Vec& f, const Vec& u0) const {
  const Vec fp = permute(f);
  const Vec u0p = u0.empty() ? Vec{} : permute(u0);

  SolveReport report;
  // The sharded backend, when engaged, substitutes its operator and (on
  // the SSOR fast path) its sweep — both bitwise identical to the plain
  // ones, so everything downstream is unchanged.
  const la::LinearOperator& op = shard_op_ ? *shard_op_ : *op_;
  const core::Preconditioner& precond =
      shard_precond_ ? *shard_precond_ : *precond_;
  report.result = core::pcg_solve(op, fp, precond, config_.pcg_options(),
                                  log_, u0p, kernel_exec());
  report.solution = unpermute(report.result.solution);
  report.alphas = alphas_;
  report.interval = interval_;
  report.coloring = stats_;
  report.preconditioner_name = precond.name();
  report.steps = config_.steps;
  report.format_selected = resolved_format_;
  report.shards = shards_;
  return report;
}

}  // namespace mstep::solver
