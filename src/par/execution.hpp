// Execution policy for the solve-path hot kernels.
//
// One Execution owns (at most) one ThreadPool and threads the three kernel
// families Algorithm 1 spends its time in — multicolor sweeps (through the
// pool, see colored_sweep), CSR/DIA SpMV, and the BLAS-1 vector ops — while
// guaranteeing BITWISE the serial result for any thread count:
//
//  * elementwise ops (axpy, xpay, SpMV rows / DIA elements) are partitioned
//    by index, and every element's accumulation order is the serial one;
//  * reductions use the fixed-block scheme of la::kReductionBlock: block
//    partials are computed independently (by whatever thread), then
//    combined in block order on the caller — exactly la::dot's serial sum;
//  * the max-reduction of the convergence test is order-insensitive.
//
// A default-constructed Execution is the serial policy (no pool, no
// threads); Execution(n) runs on n threads including the caller.  The
// kernels themselves are not safe for concurrent use of one Execution
// object from several threads (the reduction scratch is shared).
#pragma once

#include <memory>

#include "la/csr_matrix.hpp"
#include "la/dia_matrix.hpp"
#include "la/sell_matrix.hpp"
#include "la/vector.hpp"
#include "par/thread_pool.hpp"

namespace mstep::par {

/// Below this many elements the pool dispatch costs more than it saves:
/// the Execution kernels fall back to their serial twins, and the facade
/// keeps the serial multicolor sweep.  Falling back never changes results
/// — the parallel kernels are bitwise the serial ones at any size.
inline constexpr index_t kSerialCutoff = 2048;

class Execution {
 public:
  /// Serial policy: every kernel runs on the calling thread.
  Execution() = default;
  /// Pool of `threads` total threads (including the caller); <= 1 is the
  /// serial policy.  Throws std::invalid_argument on a negative count.
  explicit Execution(int threads);

  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;

  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }
  [[nodiscard]] int threads() const { return pool_ ? pool_->threads() : 1; }
  /// The pool backing the multicolor sweep; nullptr when serial.
  [[nodiscard]] ThreadPool* pool() const { return pool_.get(); }

  /// Partitioned loop: body(chunk_begin, chunk_end) over [begin, end).
  void for_range(index_t begin, index_t end,
                 const std::function<void(index_t, index_t)>& body) const;

  // ---- deterministic reductions -------------------------------------------
  [[nodiscard]] double dot(const Vec& x, const Vec& y) const;
  [[nodiscard]] double nrm2(const Vec& x) const;

  // ---- elementwise vector ops ---------------------------------------------
  /// y <- a*x + y
  void axpy(double a, const Vec& x, Vec& y) const;
  /// y <- x + b*y
  void xpay(const Vec& x, double b, Vec& y) const;
  /// y <- a*x (y is resized; the scaled-residual copy of the m-step sweep)
  void scale_copy(double a, const Vec& x, Vec& y) const;
  /// w <- x .* y (w is resized; diagonal-splitting P^{-1} application)
  void hadamard(const Vec& x, const Vec& y, Vec& w) const;
  /// Fused CG update u <- u + a*p, returning max_i |a * p[i]| (the
  /// delta-inf stopping quantity of Algorithm 1).
  double step_update_max(double a, const Vec& p, Vec& u) const;

  // ---- sparse matrix-vector products --------------------------------------
  void spmv(const la::CsrMatrix& a, const Vec& x, Vec& y) const;
  /// y <- y - A x
  void spmv_sub(const la::CsrMatrix& a, const Vec& x, Vec& y) const;
  void spmv(const la::DiaMatrix& a, const Vec& x, Vec& y) const;
  void spmv_sub(const la::DiaMatrix& a, const Vec& x, Vec& y) const;
  /// SELL-C-sigma forms: partitioned on slice boundaries (slices partition
  /// the rows, so chunks never race on the scattered writes).
  void spmv(const la::SellMatrix& a, const Vec& x, Vec& y) const;
  void spmv_sub(const la::SellMatrix& a, const Vec& x, Vec& y) const;

 private:
  std::unique_ptr<ThreadPool> pool_;
  mutable std::vector<double> partials_;  // reduction scratch, one per block
};

/// The process-wide serial policy, for call sites that take an optional
/// Execution and received none.  Stateless in practice (no pool, and the
/// reduction scratch is unused on the serial path), so sharing one
/// instance across threads is safe.
[[nodiscard]] const Execution& serial_execution();

}  // namespace mstep::par
