#include "par/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace mstep::par {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    throw std::invalid_argument(
        "ThreadPool: need >= 1 thread (the caller counts); serial execution "
        "means no pool, not a 0-thread pool");
  }
  const int extra = std::max(0, threads - 1);
  workers_.reserve(extra);
  for (int i = 0; i < extra; ++i) {
    // Workers name their trace track up front ("pool-1"..., the caller
    // thread is pool-0's role), so a trace taken later in the process
    // lifetime still labels every track.
    workers_.emplace_back([this, i] {
      obs::name_thread("pool-" + std::to_string(i + 1));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mutex_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      active_workers_.fetch_add(1, std::memory_order_relaxed);
    }
    work_on_current_job();
    if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out wakes the caller.
      std::lock_guard<std::mutex> lk(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::work_on_current_job() {
  const auto* body = body_.load(std::memory_order_acquire);
  for (;;) {
    const index_t b = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (b >= end_) return;
    try {
      (*body)(b, std::min(end_, b + chunk_));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      // Park the cursor at the end so every thread stops taking chunks.
      next_.store(end_, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::for_range(index_t begin, index_t end,
                           const std::function<void(index_t, index_t)>& body) {
  if (begin >= end) return;
  if (workers_.empty() || end - begin < 2) {
    body(begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    body_.store(&body, std::memory_order_release);
    end_ = end;
    chunk_ = std::max<index_t>(
        1, (end - begin) / (4 * static_cast<index_t>(threads())));
    next_.store(begin, std::memory_order_relaxed);
    ++generation_;
  }
  start_cv_.notify_all();
  work_on_current_job();  // the caller participates
  std::unique_lock<std::mutex> lk(mutex_);
  done_cv_.wait(lk, [&] {
    return next_.load(std::memory_order_relaxed) >= end_ &&
           active_workers_.load(std::memory_order_acquire) == 0;
  });
  if (error_) {
    std::exception_ptr e;
    std::swap(e, error_);
    std::rethrow_exception(e);
  }
}

void ThreadPool::for_each(index_t begin, index_t end,
                          const std::function<void(index_t)>& body) {
  for_range(begin, end, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) body(i);
  });
}

}  // namespace mstep::par
