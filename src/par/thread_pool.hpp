// Shared-memory execution substrate.
//
// The point of the multicolor ordering is that every equation in a colour
// class can be updated simultaneously.  This pool backs a parallel
// within-class sweep: because the class diagonal blocks are diagonal, the
// parallel result is BITWISE identical to the serial one (each row reads
// only other-class values and writes only itself) — a property the tests
// assert with real threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "la/vector.hpp"

namespace mstep::par {

/// Fixed-size worker pool executing half-open index ranges.
///
/// for_range(begin, end, body) partitions [begin, end) into chunks and
/// runs body(chunk_begin, chunk_end) on the workers plus the calling
/// thread, returning when the whole range is done.  If body throws, the
/// sweep is cut short, the first exception is rethrown on the calling
/// thread, and the pool remains usable for subsequent jobs.
class ThreadPool {
 public:
  /// `threads` total workers including the caller; 1 means serial.
  /// Throws std::invalid_argument when threads < 1: a zero-thread pool
  /// cannot exist — "no threading" is expressed by constructing no pool at
  /// all (ExecutionConfig::resolve() == 0), never by an empty pool.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  void for_range(index_t begin, index_t end,
                 const std::function<void(index_t, index_t)>& body);

  /// Convenience: per-index body.
  void for_each(index_t begin, index_t end,
                const std::function<void(index_t)>& body);

 private:
  void worker_loop();
  void work_on_current_job();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;  // first exception thrown by a body

  std::atomic<const std::function<void(index_t, index_t)>*> body_{nullptr};
  std::atomic<index_t> next_{0};
  index_t end_ = 0;
  index_t chunk_ = 1;
  std::atomic<int> active_workers_{0};
};

}  // namespace mstep::par
