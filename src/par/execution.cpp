#include "par/execution.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "la/simd.hpp"

// Every threaded chunk body below delegates to the same la/simd.hpp kernel
// the serial twin uses, so serial == threaded == SIMD-on == SIMD-off holds
// by construction: partitioning only decides WHO computes an element or a
// block, never the operation sequence that computes it.

namespace mstep::par {

Execution::Execution(int threads) {
  if (threads < 0) {
    throw std::invalid_argument("Execution: thread count must be >= 0");
  }
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void Execution::for_range(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t)>& body) const {
  if (begin >= end) return;
  if (pool_) {
    pool_->for_range(begin, end, body);
  } else {
    body(begin, end);
  }
}

double Execution::dot(const Vec& x, const Vec& y) const {
  assert(x.size() == y.size());
  const auto n = static_cast<index_t>(x.size());
  if (!pool_ || n < kSerialCutoff) return la::dot(x, y);

  const auto block = static_cast<index_t>(la::kReductionBlock);
  const index_t nblocks = (n + block - 1) / block;
  partials_.assign(nblocks, 0.0);
  pool_->for_each(0, nblocks, [&](index_t k) {
    const auto b = static_cast<std::size_t>(k) * la::kReductionBlock;
    partials_[k] = la::detail::dot_range(
        x, y, b, std::min(x.size(), b + la::kReductionBlock));
  });
  // Combine in block order — exactly la::dot's serial combination.
  double s = 0.0;
  for (index_t k = 0; k < nblocks; ++k) s += partials_[k];
  return s;
}

double Execution::nrm2(const Vec& x) const { return std::sqrt(dot(x, x)); }

void Execution::axpy(double a, const Vec& x, Vec& y) const {
  assert(x.size() == y.size());
  const auto n = static_cast<index_t>(x.size());
  if (!pool_ || n < kSerialCutoff) {
    la::axpy(a, x, y);
    return;
  }
  pool_->for_range(0, n, [&](index_t b, index_t e) {
    la::simd::axpy(a, x.data() + b, y.data() + b,
                   static_cast<std::size_t>(e - b));
  });
}

void Execution::xpay(const Vec& x, double b, Vec& y) const {
  assert(x.size() == y.size());
  const auto n = static_cast<index_t>(x.size());
  if (!pool_ || n < kSerialCutoff) {
    la::xpay(x, b, y);
    return;
  }
  pool_->for_range(0, n, [&](index_t lo, index_t hi) {
    la::simd::xpay(x.data() + lo, b, y.data() + lo,
                   static_cast<std::size_t>(hi - lo));
  });
}

void Execution::scale_copy(double a, const Vec& x, Vec& y) const {
  const auto n = static_cast<index_t>(x.size());
  y.resize(x.size());
  if (!pool_ || n < kSerialCutoff) {
    la::simd::scale_copy(a, x.data(), y.data(), x.size());
    return;
  }
  pool_->for_range(0, n, [&](index_t b, index_t e) {
    la::simd::scale_copy(a, x.data() + b, y.data() + b,
                         static_cast<std::size_t>(e - b));
  });
}

void Execution::hadamard(const Vec& x, const Vec& y, Vec& w) const {
  assert(x.size() == y.size());
  const auto n = static_cast<index_t>(x.size());
  if (!pool_ || n < kSerialCutoff) {
    la::hadamard(x, y, w);
    return;
  }
  w.resize(x.size());
  pool_->for_range(0, n, [&](index_t b, index_t e) {
    la::simd::hadamard(x.data() + b, y.data() + b, w.data() + b,
                       static_cast<std::size_t>(e - b));
  });
}

double Execution::step_update_max(double a, const Vec& p, Vec& u) const {
  assert(p.size() == u.size());
  const auto n = static_cast<index_t>(p.size());
  if (!pool_ || n < kSerialCutoff) {
    return la::simd::step_update_max(a, p.data(), u.data(), p.size());
  }
  const auto block = static_cast<index_t>(la::kReductionBlock);
  const index_t nblocks = (n + block - 1) / block;
  partials_.assign(nblocks, 0.0);
  pool_->for_each(0, nblocks, [&](index_t k) {
    const index_t b = k * block;
    const index_t e = std::min(n, b + block);
    partials_[k] = la::simd::step_update_max(a, p.data() + b, u.data() + b,
                                             static_cast<std::size_t>(e - b));
  });
  // max over blocks == max over the range: order-insensitive.
  double mx = 0.0;
  for (index_t k = 0; k < nblocks; ++k) mx = std::max(mx, partials_[k]);
  return mx;
}

void Execution::spmv(const la::CsrMatrix& a, const Vec& x, Vec& y) const {
  if (!pool_ || a.rows() < kSerialCutoff) {
    a.multiply(x, y);
    return;
  }
  assert(static_cast<index_t>(x.size()) == a.cols());
  y.resize(a.rows());
  pool_->for_range(0, a.rows(), [&](index_t b, index_t e) {
    la::simd::csr_spmv_rows(a.row_ptr().data(), a.col_idx().data(),
                            a.values().data(), x.data(), y.data(), b, e,
                            /*subtract=*/false);
  });
}

void Execution::spmv_sub(const la::CsrMatrix& a, const Vec& x, Vec& y) const {
  if (!pool_ || a.rows() < kSerialCutoff) {
    a.multiply_sub(x, y);
    return;
  }
  assert(static_cast<index_t>(x.size()) == a.cols());
  assert(static_cast<index_t>(y.size()) == a.rows());
  pool_->for_range(0, a.rows(), [&](index_t b, index_t e) {
    la::simd::csr_spmv_rows(a.row_ptr().data(), a.col_idx().data(),
                            a.values().data(), x.data(), y.data(), b, e,
                            /*subtract=*/true);
  });
}

void Execution::spmv(const la::DiaMatrix& a, const Vec& x, Vec& y) const {
  if (!pool_ || a.rows() < kSerialCutoff) {
    a.multiply(x, y);
    return;
  }
  const index_t n = a.rows();
  assert(static_cast<index_t>(x.size()) == n);
  y.assign(n, 0.0);
  const auto& offsets = a.offsets();
  const auto& diags = a.diagonals();
  // Partition the element range; within a chunk, accumulate the diagonals
  // in offset order — per element this is the serial accumulation order.
  pool_->for_range(0, n, [&](index_t b, index_t e) {
    for (std::size_t d = 0; d < offsets.size(); ++d) {
      const index_t off = offsets[d];
      const std::vector<double>& v = diags[d];
      const index_t lo = std::max(b, std::max<index_t>(0, -off));
      const index_t hi = std::min(e, std::min<index_t>(n, n - off));
      la::simd::dia_triad(v.data(), x.data(), y.data(), lo, hi, off,
                          /*subtract=*/false);
    }
  });
}

void Execution::spmv_sub(const la::DiaMatrix& a, const Vec& x, Vec& y) const {
  if (!pool_ || a.rows() < kSerialCutoff) {
    a.multiply_sub(x, y);
    return;
  }
  const index_t n = a.rows();
  assert(static_cast<index_t>(x.size()) == n);
  assert(static_cast<index_t>(y.size()) == n);
  const auto& offsets = a.offsets();
  const auto& diags = a.diagonals();
  pool_->for_range(0, n, [&](index_t b, index_t e) {
    for (std::size_t d = 0; d < offsets.size(); ++d) {
      const index_t off = offsets[d];
      const std::vector<double>& v = diags[d];
      const index_t lo = std::max(b, std::max<index_t>(0, -off));
      const index_t hi = std::min(e, std::min<index_t>(n, n - off));
      la::simd::dia_triad(v.data(), x.data(), y.data(), lo, hi, off,
                          /*subtract=*/true);
    }
  });
}

void Execution::spmv(const la::SellMatrix& a, const Vec& x, Vec& y) const {
  if (!pool_ || a.rows() < kSerialCutoff) {
    a.multiply(x, y);
    return;
  }
  assert(static_cast<index_t>(x.size()) == a.cols());
  y.resize(a.rows());
  // Partition by slices: slices partition the rows (each row is written
  // through exactly one slot's scatter), so chunks never race.
  pool_->for_range(0, a.num_slices(), [&](index_t b, index_t e) {
    la::simd::sell_spmv_slices(a.view(), x.data(), y.data(), b, e,
                               /*subtract=*/false);
  });
}

void Execution::spmv_sub(const la::SellMatrix& a, const Vec& x, Vec& y) const {
  if (!pool_ || a.rows() < kSerialCutoff) {
    a.multiply_sub(x, y);
    return;
  }
  assert(static_cast<index_t>(x.size()) == a.cols());
  assert(static_cast<index_t>(y.size()) == a.rows());
  pool_->for_range(0, a.num_slices(), [&](index_t b, index_t e) {
    la::simd::sell_spmv_slices(a.view(), x.data(), y.data(), b, e,
                               /*subtract=*/true);
  });
}

const Execution& serial_execution() {
  static const Execution serial;
  return serial;
}

}  // namespace mstep::par
