#include "par/colored_sweep.hpp"

#include <cassert>
#include <stdexcept>

#include "la/simd.hpp"

namespace mstep::par {

ParallelMulticolorMStepSsor::ParallelMulticolorMStepSsor(
    const color::ColoredSystem& cs, std::vector<double> alphas,
    ThreadPool& pool, core::KernelLog* log)
    : cs_(&cs), alphas_(std::move(alphas)), pool_(&pool), log_(log),
      splits_(color::compute_row_splits(cs)),
      census_(color::compute_class_diagonal_census(cs, splits_)) {
  if (alphas_.empty()) {
    throw std::invalid_argument("ParallelMulticolorMStepSsor: need m >= 1");
  }
  // The same per-class SELL segment slices as the serial sweep — the
  // kernel is identical, only the slice range is partitioned by the pool.
  const auto& rp = cs.matrix.row_ptr();
  const int nc = cs.num_classes();
  lower_.reserve(nc);
  upper_.reserve(nc);
  for (int c = 0; c < nc; ++c) {
    lower_.push_back(la::SellSegments::build(cs.matrix, rp.data(),
                                             splits_.lo_end.data(),
                                             cs.class_start[c],
                                             cs.class_start[c + 1]));
    upper_.push_back(la::SellSegments::build(cs.matrix,
                                             splits_.up_begin.data(),
                                             rp.data() + 1,
                                             cs.class_start[c],
                                             cs.class_start[c + 1]));
  }
}

void ParallelMulticolorMStepSsor::apply(const Vec& r, Vec& z) const {
  const index_t n = cs_->size();
  assert(static_cast<index_t>(r.size()) == n);
  const int m = static_cast<int>(alphas_.size());
  const int nc = cs_->num_classes();

  z.assign(n, 0.0);
  y_.assign(n, 0.0);
  xl_.resize(n);  // written per class before it is read
  Vec& y = y_;
  Vec& xl = xl_;

  // One class phase = sum the class's SELL segment slices into scratch
  // (slices partitioned over the pool; every slot writes a distinct row),
  // barrier, then the elementwise solve/save updates (rows partitioned).
  // Both steps are race-free and order-independent, so the threaded sweep
  // is bitwise the serial one.
  auto class_sums = [&](const la::SellSegments& segs, const Vec& zin,
                        Vec& out) {
    pool_->for_range(0, segs.num_slices(), [&](index_t b, index_t e) {
      la::simd::sell_neg_slices(segs.view(), zin.data(), out.data(), b, e);
    });
  };

  // Emitted from the calling thread after each class sweep — the exact
  // stream of the serial MulticolorMStepSsor.
  auto log_class = [&](int c, bool lower) {
    if (!log_) return;
    const index_t len = cs_->class_size(c);
    log_->spmv_diagonals(len, lower ? census_.lower[c] : census_.upper[c]);
    log_->vec_op(len, 3);  // x + y + alpha*r fused adds
    log_->diag_op(len);    // divide by D_c
  };

  for (int s = 1; s <= m; ++s) {
    const double a = alphas_[m - s];
    for (int c = 0; c < nc; ++c) {
      const bool last = c == nc - 1;
      class_sums(lower_[c], z, xl);
      pool_->for_range(
          cs_->class_start[c], cs_->class_start[c + 1],
          [&, a, last](index_t b, index_t e) {
            for (index_t i = b; i < e; ++i) {
              z[i] = (xl[i] + y[i] + a * r[i]) / splits_.diag[i];
              y[i] = last ? 0.0 : xl[i];
            }
          });
      log_class(c, /*lower=*/true);
    }
    for (int c = nc - 2; c >= 1; --c) {
      class_sums(upper_[c], z, xl);
      pool_->for_range(
          cs_->class_start[c], cs_->class_start[c + 1],
          [&, a](index_t b, index_t e) {
            for (index_t i = b; i < e; ++i) {
              z[i] = (xl[i] + y[i] + a * r[i]) / splits_.diag[i];
              y[i] = xl[i];
            }
          });
      log_class(c, /*lower=*/false);
    }
    // Class 0's upper sums scatter straight into y (the save phase).
    class_sums(upper_[0], z, y);
    if (log_) {
      log_->spmv_diagonals(cs_->class_size(0), census_.upper[0]);
      log_->end_precond_step();
    }
  }
  pool_->for_range(cs_->class_start[0], cs_->class_start[1],
                   [&](index_t b, index_t e) {
                     for (index_t i = b; i < e; ++i) {
                       z[i] = (y[i] + alphas_[0] * r[i]) / splits_.diag[i];
                     }
                   });
  if (log_) {
    log_->vec_op(cs_->class_size(0), 2);
    log_->diag_op(cs_->class_size(0));
  }
}

std::string ParallelMulticolorMStepSsor::name() const {
  return "parallel-multicolor-ssor-m" + std::to_string(alphas_.size());
}

}  // namespace mstep::par
