#include "par/colored_sweep.hpp"

#include <cassert>
#include <stdexcept>

namespace mstep::par {

ParallelMulticolorMStepSsor::ParallelMulticolorMStepSsor(
    const color::ColoredSystem& cs, std::vector<double> alphas,
    ThreadPool& pool, core::KernelLog* log)
    : cs_(&cs), alphas_(std::move(alphas)), pool_(&pool), log_(log),
      splits_(color::compute_row_splits(cs)),
      census_(color::compute_class_diagonal_census(cs, splits_)) {
  if (alphas_.empty()) {
    throw std::invalid_argument("ParallelMulticolorMStepSsor: need m >= 1");
  }
}

void ParallelMulticolorMStepSsor::apply(const Vec& r, Vec& z) const {
  const index_t n = cs_->size();
  assert(static_cast<index_t>(r.size()) == n);
  const int m = static_cast<int>(alphas_.size());
  const int nc = cs_->num_classes();

  z.assign(n, 0.0);
  y_.assign(n, 0.0);

  const auto& rp = cs_->matrix.row_ptr();
  const auto& col = cs_->matrix.col_idx();
  const auto& val = cs_->matrix.values();
  Vec& y = y_;

  // Emitted from the calling thread after each class sweep — the exact
  // stream of the serial MulticolorMStepSsor.
  auto log_class = [&](int c, bool lower) {
    if (!log_) return;
    const index_t len = cs_->class_size(c);
    log_->spmv_diagonals(len, lower ? census_.lower[c] : census_.upper[c]);
    log_->vec_op(len, 3);  // x + y + alpha*r fused adds
    log_->diag_op(len);    // divide by D_c
  };

  for (int s = 1; s <= m; ++s) {
    const double a = alphas_[m - s];
    for (int c = 0; c < nc; ++c) {
      const bool last = c == nc - 1;
      pool_->for_range(
          cs_->class_start[c], cs_->class_start[c + 1],
          [&, a, last](index_t b, index_t e) {
            for (index_t i = b; i < e; ++i) {
              double xl = 0.0;
              for (index_t t = rp[i]; t < splits_.lo_end[i]; ++t) {
                xl -= val[t] * z[col[t]];
              }
              z[i] = (xl + y[i] + a * r[i]) / splits_.diag[i];
              y[i] = last ? 0.0 : xl;
            }
          });
      log_class(c, /*lower=*/true);
    }
    for (int c = nc - 2; c >= 1; --c) {
      pool_->for_range(
          cs_->class_start[c], cs_->class_start[c + 1],
          [&, a](index_t b, index_t e) {
            for (index_t i = b; i < e; ++i) {
              double xu = 0.0;
              for (index_t t = splits_.up_begin[i]; t < rp[i + 1]; ++t) {
                xu -= val[t] * z[col[t]];
              }
              z[i] = (xu + y[i] + a * r[i]) / splits_.diag[i];
              y[i] = xu;
            }
          });
      log_class(c, /*lower=*/false);
    }
    pool_->for_range(cs_->class_start[0], cs_->class_start[1],
                     [&](index_t b, index_t e) {
                       for (index_t i = b; i < e; ++i) {
                         double xu = 0.0;
                         for (index_t t = splits_.up_begin[i]; t < rp[i + 1];
                              ++t) {
                           xu -= val[t] * z[col[t]];
                         }
                         y[i] = xu;
                       }
                     });
    if (log_) {
      log_->spmv_diagonals(cs_->class_size(0), census_.upper[0]);
      log_->end_precond_step();
    }
  }
  pool_->for_range(cs_->class_start[0], cs_->class_start[1],
                   [&](index_t b, index_t e) {
                     for (index_t i = b; i < e; ++i) {
                       z[i] = (y[i] + alphas_[0] * r[i]) / splits_.diag[i];
                     }
                   });
  if (log_) {
    log_->vec_op(cs_->class_size(0), 2);
    log_->diag_op(cs_->class_size(0));
  }
}

std::string ParallelMulticolorMStepSsor::name() const {
  return "parallel-multicolor-ssor-m" + std::to_string(alphas_.size());
}

}  // namespace mstep::par
