// Shared-memory parallel version of Algorithm 2.
//
// Identical mathematics to core::MulticolorMStepSsor, but every colour
// class is updated by the thread pool.  Because the class diagonal blocks
// are diagonal, rows within a class read only other-class values and write
// only themselves: the parallel sweep is race-free and produces BITWISE
// the serial result regardless of scheduling — the property that makes the
// multicolor ordering a parallel algorithm at all, asserted by the tests
// with real threads.
#pragma once

#include <vector>

#include "color/coloring.hpp"
#include "core/kernel_log.hpp"
#include "core/preconditioner.hpp"
#include "la/sell_matrix.hpp"
#include "par/thread_pool.hpp"

namespace mstep::par {

class ParallelMulticolorMStepSsor : public core::Preconditioner {
 public:
  /// `cs` and `pool` must outlive the preconditioner.  `log` (optional)
  /// receives exactly the kernel stream of the serial sweep, emitted from
  /// the calling thread, so instrumented reports are identical whether the
  /// sweep is threaded or not.
  ParallelMulticolorMStepSsor(const color::ColoredSystem& cs,
                              std::vector<double> alphas, ThreadPool& pool,
                              core::KernelLog* log = nullptr);

  [[nodiscard]] index_t size() const override { return cs_->size(); }
  void apply(const Vec& r, Vec& z) const override;
  [[nodiscard]] int steps() const override {
    return static_cast<int>(alphas_.size());
  }
  [[nodiscard]] std::string name() const override;

 private:
  const color::ColoredSystem* cs_;
  std::vector<double> alphas_;
  ThreadPool* pool_;
  core::KernelLog* log_;
  color::RowSplits splits_;
  color::ClassDiagonalCensus census_;
  // Per class: lower/upper row segments in SELL slices (see the serial
  // sweep) — the pool partitions the SLICES of a class, then the
  // elementwise updates, each race-free.
  std::vector<la::SellSegments> lower_;
  std::vector<la::SellSegments> upper_;
  mutable Vec y_;
  mutable Vec xl_;  // scratch: the current class's scattered sums
};

}  // namespace mstep::par
