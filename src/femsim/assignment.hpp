// Node-to-processor assignments (Figures 3 and 5 of the paper).
//
// The paper requires "that each processor receive an equal distribution of
// each color of the unconstrained nodes" and, for the Table 3 runs, equal
// border-node counts per processor.  Row bands, column strips and
// rectangular blocks cover the paper's examples; analyze() verifies the
// balance properties.
#pragma once

#include <vector>

#include "color/coloring.hpp"
#include "fem/plate_mesh.hpp"
#include "fem/tri_mesh.hpp"

namespace mstep::femsim {

/// Maps every unconstrained node to a processor.
struct Assignment {
  int nprocs = 1;
  std::vector<int> proc_of_node;  // by node id; -1 for constrained nodes

  [[nodiscard]] std::vector<std::vector<index_t>> nodes_of_proc() const;
};

/// Split the rows of unconstrained nodes into `p` contiguous horizontal
/// bands (Figure 5 left: the two-processor assignment).
[[nodiscard]] Assignment row_bands(const fem::PlateMesh& mesh, int p);

/// Split the unconstrained columns into `p` contiguous vertical strips
/// (Figure 5 right: the five-processor assignment).
[[nodiscard]] Assignment column_strips(const fem::PlateMesh& mesh, int p);

/// pr x pc grid of rectangular blocks (the Figure 3 layouts).
[[nodiscard]] Assignment rectangular_blocks(const fem::PlateMesh& mesh, int pr,
                                            int pc);

struct AssignmentStats {
  std::vector<std::array<int, 3>> color_counts;  // per proc: R/B/G nodes
  std::vector<int> border_nodes;  // per proc: nodes adjacent to other procs
  bool colors_balanced = false;   // equal R/B/G within every processor
  bool borders_equal = false;     // equal border count across processors
  int max_nodes = 0;
  int min_nodes = 0;
};

[[nodiscard]] AssignmentStats analyze(const Assignment& a,
                                      const fem::PlateMesh& mesh);

/// Processor pairs that must communicate (own nodes sharing a triangle).
[[nodiscard]] std::vector<std::pair<int, int>> neighbor_pairs(
    const Assignment& a, const fem::PlateMesh& mesh);

/// Irregular-region distribution (Section 5): partition an unstructured
/// mesh's unconstrained nodes into `p` equal-count buckets by
/// (x, y, node id) coordinate order — vertical strips on mesh-like node
/// distributions.  The node-id tie-break makes the order TOTAL, so the
/// ownership boundary between two coincident nodes (seams, stitched
/// meshes) is deterministic across standard libraries — the shard
/// partitioner and halo plans depend on this.
/// Returns the owning processor per node (-1 for constrained nodes).
[[nodiscard]] std::vector<int> coordinate_strip_owner(
    const fem::TriMesh& mesh, int p);

/// Ownership per COLOURED equation for the general DistributedPlateSolver
/// constructor: maps each coloured equation id to the processor owning its
/// node.
[[nodiscard]] std::vector<int> owner_of_colored_equations(
    const fem::TriMesh& mesh, const color::ColoredSystem& cs,
    const std::vector<int>& owner_of_node);

}  // namespace mstep::femsim
