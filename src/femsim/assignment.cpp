#include "femsim/assignment.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mstep::femsim {

std::vector<std::vector<index_t>> Assignment::nodes_of_proc() const {
  std::vector<std::vector<index_t>> out(nprocs);
  for (index_t node = 0; node < static_cast<index_t>(proc_of_node.size());
       ++node) {
    if (proc_of_node[node] >= 0) out[proc_of_node[node]].push_back(node);
  }
  return out;
}

namespace {

Assignment empty_assignment(const fem::PlateMesh& mesh, int p) {
  Assignment a;
  a.nprocs = p;
  a.proc_of_node.assign(mesh.num_nodes(), -1);
  return a;
}

}  // namespace

Assignment row_bands(const fem::PlateMesh& mesh, int p) {
  if (p < 1 || mesh.nrows() % p != 0) {
    throw std::invalid_argument("row_bands: p must divide the row count");
  }
  Assignment a = empty_assignment(mesh, p);
  const int rows_per = mesh.nrows() / p;
  for (int r = 0; r < mesh.nrows(); ++r) {
    for (int c = 1; c < mesh.ncols(); ++c) {
      a.proc_of_node[mesh.node_id(r, c)] = r / rows_per;
    }
  }
  return a;
}

Assignment column_strips(const fem::PlateMesh& mesh, int p) {
  const int ucols = mesh.num_unconstrained_columns();
  if (p < 1 || ucols % p != 0) {
    throw std::invalid_argument(
        "column_strips: p must divide the unconstrained column count");
  }
  Assignment a = empty_assignment(mesh, p);
  const int cols_per = ucols / p;
  for (int r = 0; r < mesh.nrows(); ++r) {
    for (int c = 1; c < mesh.ncols(); ++c) {
      a.proc_of_node[mesh.node_id(r, c)] = (c - 1) / cols_per;
    }
  }
  return a;
}

Assignment rectangular_blocks(const fem::PlateMesh& mesh, int pr, int pc) {
  const int ucols = mesh.num_unconstrained_columns();
  if (pr < 1 || pc < 1 || mesh.nrows() % pr != 0 || ucols % pc != 0) {
    throw std::invalid_argument(
        "rectangular_blocks: grid must divide rows and unconstrained cols");
  }
  Assignment a = empty_assignment(mesh, pr * pc);
  const int rows_per = mesh.nrows() / pr;
  const int cols_per = ucols / pc;
  for (int r = 0; r < mesh.nrows(); ++r) {
    for (int c = 1; c < mesh.ncols(); ++c) {
      const int br = r / rows_per;
      const int bc = (c - 1) / cols_per;
      a.proc_of_node[mesh.node_id(r, c)] = br * pc + bc;
    }
  }
  return a;
}

AssignmentStats analyze(const Assignment& a, const fem::PlateMesh& mesh) {
  AssignmentStats st;
  st.color_counts.assign(a.nprocs, {0, 0, 0});
  st.border_nodes.assign(a.nprocs, 0);

  std::vector<int> per_proc_nodes(a.nprocs, 0);
  for (index_t node = 0; node < static_cast<index_t>(mesh.num_nodes());
       ++node) {
    const int p = a.proc_of_node[node];
    if (p < 0) continue;
    per_proc_nodes[p]++;
    st.color_counts[p][static_cast<int>(mesh.color(node))]++;
    bool border = false;
    for (index_t nb : mesh.neighbor_nodes(node)) {
      const int q = a.proc_of_node[nb];
      if (q >= 0 && q != p) border = true;
    }
    if (border) st.border_nodes[p]++;
  }

  st.colors_balanced = true;
  for (const auto& cc : st.color_counts) {
    if (cc[0] != cc[1] || cc[1] != cc[2]) st.colors_balanced = false;
  }
  st.borders_equal =
      a.nprocs <= 1 ||
      std::all_of(st.border_nodes.begin(), st.border_nodes.end(),
                  [&](int b) { return b == st.border_nodes[0]; });
  st.max_nodes = a.nprocs
                     ? *std::max_element(per_proc_nodes.begin(),
                                         per_proc_nodes.end())
                     : 0;
  st.min_nodes = a.nprocs
                     ? *std::min_element(per_proc_nodes.begin(),
                                         per_proc_nodes.end())
                     : 0;
  return st;
}

std::vector<std::pair<int, int>> neighbor_pairs(const Assignment& a,
                                                const fem::PlateMesh& mesh) {
  std::set<std::pair<int, int>> pairs;
  for (index_t node = 0; node < static_cast<index_t>(mesh.num_nodes());
       ++node) {
    const int p = a.proc_of_node[node];
    if (p < 0) continue;
    for (index_t nb : mesh.neighbor_nodes(node)) {
      const int q = a.proc_of_node[nb];
      if (q >= 0 && q != p) pairs.emplace(std::min(p, q), std::max(p, q));
    }
  }
  return {pairs.begin(), pairs.end()};
}

std::vector<int> coordinate_strip_owner(const fem::TriMesh& mesh, int p) {
  if (p < 1) throw std::invalid_argument("coordinate_strip_owner: p >= 1");
  std::vector<index_t> free_nodes;
  for (index_t v = 0; v < mesh.num_nodes(); ++v) {
    if (!mesh.is_constrained(v)) free_nodes.push_back(v);
  }
  std::sort(free_nodes.begin(), free_nodes.end(), [&](index_t a, index_t b) {
    if (mesh.node_x(a) != mesh.node_x(b)) {
      return mesh.node_x(a) < mesh.node_x(b);
    }
    if (mesh.node_y(a) != mesh.node_y(b)) {
      return mesh.node_y(a) < mesh.node_y(b);
    }
    // Final tie-break on node id: two free nodes CAN share coordinates
    // (an L-shape seam, a mesh stitched from two plates), and without a
    // total order std::sort's ownership boundary would depend on the
    // implementation's partition choices — the strip assignment must be
    // deterministic because shard partitions and halo plans key off it.
    return a < b;
  });
  std::vector<int> owner(mesh.num_nodes(), -1);
  const std::size_t total = free_nodes.size();
  for (std::size_t k = 0; k < total; ++k) {
    owner[free_nodes[k]] = static_cast<int>(k * p / total);
  }
  return owner;
}

std::vector<int> owner_of_colored_equations(
    const fem::TriMesh& mesh, const color::ColoredSystem& cs,
    const std::vector<int>& owner_of_node) {
  std::vector<int> owner(cs.size(), -1);
  for (index_t old_eq = 0; old_eq < cs.size(); ++old_eq) {
    const auto [node, dof] = mesh.equation_node_dof(old_eq);
    (void)dof;
    owner[cs.inv_perm[old_eq]] = owner_of_node[node];
  }
  return owner;
}

}  // namespace mstep::femsim
