// Distributed m-step SSOR PCG on the Finite Element Machine simulator —
// Algorithm 1 driving Algorithm 3 (the per-processor multicolor m-step
// SSOR of Section 3.2).
//
// Numerics: each simulated processor owns the equations of its assigned
// nodes.  Inner products are deterministic rank-ordered reductions over the
// flag/sum network; the convergence test is the signal-flag protocol
// ("each processor raises its convergence flag whenever its portion of u
// values are within the stopping criterion").  Border values travel as one
// packaged record per neighbour per geometric colour, exactly the
// packaging the paper recommends ("think of the two equations at the same
// node as being the same color").
//
// Exchange schedule.  Because same-colour nodes never couple and the u/v
// pair of one node lives on one processor, the operator stays EXACTLY the
// sequential one when borders are exchanged after every completed
// geometric colour: forward after classes (0,1), (2,3), (4,5); backward
// after (5,4) and (3,2) — five record exchanges per neighbour per step.
// (The scanned Algorithm 3 is ambiguous about the backward trigger parity;
// this is the schedule that preserves the operator, consistent with
// Table 3 reporting identical iteration counts for 1, 2 and 5 processors.)
#pragma once

#include <vector>

#include "color/coloring.hpp"
#include "fem/plane_stress.hpp"
#include "femsim/assignment.hpp"
#include "femsim/machine.hpp"

namespace mstep::femsim {

struct DistOptions {
  int m = 0;                  // preconditioner steps; 0 = plain CG
  bool parametrized = true;   // least-squares alphas vs all ones
  double tolerance = 1e-4;    // on |u^{k+1}-u^k|_inf (flag network test)
  int max_iterations = 20000;
  FemCosts costs;
};

struct DistResult {
  Vec solution;  // original (pre-colouring) equation ordering
  int iterations = 0;
  bool converged = false;
  double simulated_seconds = 0.0;
  double max_compute_seconds = 0.0;
  double max_comm_seconds = 0.0;
  double max_idle_seconds = 0.0;
  long long total_records = 0;
};

/// Builds the system once and runs distributed solves on a given
/// assignment.  The matrix data is shared read-only across the simulated
/// processors (their partitioned views are precomputed per processor).
///
/// Two construction paths: the paper's rectangular plate (mesh + Figure 3/5
/// assignment), and the general path — any coloured system with an
/// ownership map — which serves irregular regions (Section 5's second
/// half: "for array machines [the grid] must also be distributed to the
/// processors in light of this coloring").  The general path requires the
/// colouring to pair each node's two dofs into adjacent classes (2g, 2g+1),
/// which both six_color_classes and greedy_classes produce; this is what
/// keeps the per-colour exchange schedule operator-exact.
class DistributedPlateSolver {
 public:
  DistributedPlateSolver(const fem::PlateMesh& mesh, const fem::Material& mat,
                         const fem::EdgeLoad& load,
                         const Assignment& assignment);

  /// General path: a coloured system, its right-hand side (coloured
  /// ordering) and the owning processor of every coloured equation.
  DistributedPlateSolver(color::ColoredSystem cs, Vec f_colored,
                         const std::vector<int>& owner_of_eq, int nprocs);

  [[nodiscard]] DistResult solve(const DistOptions& options) const;

  [[nodiscard]] const color::ColoredSystem& colored_system() const {
    return cs_;
  }
  [[nodiscard]] int nprocs() const { return static_cast<int>(pdata_.size()); }

  /// Per-link record counts of the last solve (Figure 4 census) — filled
  /// into the matrix provided by the caller of solve_with_traffic.
  [[nodiscard]] DistResult solve_with_traffic(
      const DistOptions& options,
      std::vector<std::vector<long long>>* traffic) const;

 private:
  struct ProcData {
    std::vector<std::vector<index_t>> owned_by_class;  // global colored ids
    std::vector<index_t> owned;                        // all classes merged
    long long nnz_owned = 0;
    std::vector<long long> nnz_lower;  // per class, owned rows
    std::vector<long long> nnz_upper;
    std::vector<int> neighbors;  // communicating processor ranks (sorted)
    // send_ids[nbr][class]: my owned ids whose values neighbour nbr needs;
    // recv_ids[nbr][class]: ghost ids I need from neighbour nbr.
    std::vector<std::vector<std::vector<index_t>>> send_ids;
    std::vector<std::vector<std::vector<index_t>>> recv_ids;
  };

  void build_proc_data(const std::vector<int>& owner_of_eq, int nprocs);

  color::ColoredSystem cs_;
  Vec f_colored_;
  color::RowSplits splits_;  // diagonal + lower/upper row split points
  std::vector<ProcData> pdata_;
};

}  // namespace mstep::femsim
