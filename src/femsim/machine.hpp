// Finite Element Machine simulator (hardware substitution).
//
// NASA Langley's Finite Element Machine was a one-of-a-kind array of
// microprocessors with dedicated nearest-neighbour links, a global
// signal-flag network for convergence tests, and (later) a sum/max circuit
// for O(log2 P) reductions (Jordan 1978).  We substitute an SPMD simulator:
//
//  * every simulated processor runs as a real thread executing the actual
//    distributed algorithm, exchanging real messages over blocking
//    channels — the NUMERICS are genuinely distributed and deterministic;
//  * every processor carries a VIRTUAL CLOCK advanced by an explicit cost
//    model (arithmetic seconds per flop, record latency + per-word transfer
//    on the links, flag-network and reduction-stage costs); receiving a
//    message advances the receiver's clock to at least the sender's
//    send-completion time (Lamport-style), so waiting shows up as idle
//    time exactly as it would on the real array.
//
// The simulated wall time of a run is the maximum final clock — this is
// what reproduces Table 3's times and speedups.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "la/vector.hpp"

namespace mstep::femsim {

/// Cost constants of the simulated array.  Defaults are calibrated so the
/// 60-equation Table 3 problem lands near the paper's absolute times
/// (the FEM's TI-9900 processors ran software floating point); see
/// EXPERIMENTS.md for the calibration note.
struct FemCosts {
  double t_flop = 7.7e-4;        // seconds per floating-point operation
  double t_record = 1.2e-2;      // per-record link setup latency
  double t_word = 5.0e-4;        // per 64-bit word on a link
  double t_flag_sync = 2.0e-3;   // signal-flag convergence test
  double t_reduce_stage = 8.0e-3;  // one stage of a reduction
  /// false: software ring reduction, P-1 stages (the Table 3 era);
  /// true: the sum/max hardware circuit, ceil(log2 P) stages (Section 5).
  bool use_summax_circuit = false;
};

class Machine;

/// Per-processor execution context handed to the SPMD program.
class Proc {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nprocs() const;

  /// Virtual clock, in simulated seconds.
  [[nodiscard]] double clock() const { return clock_; }
  [[nodiscard]] double compute_seconds() const { return compute_seconds_; }
  [[nodiscard]] double comm_seconds() const { return comm_seconds_; }
  [[nodiscard]] double idle_seconds() const { return idle_seconds_; }

  /// Advance the clock by `flops` arithmetic operations.
  void compute(long long flops);

  /// Send one record to `dest`.  The sender pays latency + per-word cost;
  /// the record becomes available to the receiver at the sender's clock
  /// after those costs.
  void send(int dest, int tag, std::vector<double> data);

  /// Blocking receive of the record with `tag` from `src`.  Advances the
  /// clock to at least the record's availability time, plus per-word copy.
  [[nodiscard]] std::vector<double> recv(int src, int tag);

  /// Global sum over all processors (deterministic: partial values are
  /// combined in rank order).  Costs reduction stages per FemCosts and
  /// synchronises clocks to the common completion time.
  [[nodiscard]] double allreduce_sum(double local);

  /// Signal-flag network: true iff every processor raised its flag.
  [[nodiscard]] bool all_flags(bool my_flag);

  /// Clock-synchronising barrier (no data).
  void barrier();

 private:
  friend class Machine;
  Proc(Machine* machine, int rank) : machine_(machine), rank_(rank) {}

  double sync_collective(double extra_cost);

  Machine* machine_;
  int rank_;
  double clock_ = 0.0;
  double compute_seconds_ = 0.0;
  double comm_seconds_ = 0.0;
  double idle_seconds_ = 0.0;
};

/// The array.  Construct, run() an SPMD program, then query statistics.
class Machine {
 public:
  Machine(int nprocs, FemCosts costs);

  /// Execute `program` on every processor (one thread each); blocks until
  /// all complete.
  void run(const std::function<void(Proc&)>& program);

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const FemCosts& costs() const { return costs_; }

  /// Max final clock over processors — the simulated wall time.
  [[nodiscard]] double simulated_seconds() const;
  /// Max accumulated per-category seconds over processors.
  [[nodiscard]] double max_compute_seconds() const;
  [[nodiscard]] double max_comm_seconds() const;
  [[nodiscard]] double max_idle_seconds() const;

  /// Records sent from processor `from` to processor `to` — the Figure 4
  /// link-usage census.
  [[nodiscard]] long long records_sent(int from, int to) const;
  [[nodiscard]] long long total_records() const;

 private:
  friend class Proc;

  struct Record {
    int tag;
    std::vector<double> data;
    double ready_time;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::pair<int, Record>> queue;  // (src, record)
  };

  int nprocs_;
  FemCosts costs_;
  std::vector<Proc> procs_;
  std::vector<Mailbox> mailboxes_;

  // Collective state (generation-counted rendezvous).
  std::mutex coll_mutex_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  std::uint64_t coll_generation_ = 0;
  std::vector<double> coll_values_;
  std::vector<double> coll_clocks_;
  double coll_result_ = 0.0;
  double coll_max_clock_ = 0.0;

  // Traffic census.
  std::mutex traffic_mutex_;
  std::vector<long long> traffic_;  // nprocs x nprocs

  [[nodiscard]] int reduction_stages() const;
};

}  // namespace mstep::femsim
