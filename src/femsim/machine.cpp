#include "femsim/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace mstep::femsim {

int Proc::nprocs() const { return machine_->nprocs(); }

void Proc::compute(long long flops) {
  const double t = static_cast<double>(flops) * machine_->costs().t_flop;
  clock_ += t;
  compute_seconds_ += t;
}

void Proc::send(int dest, int tag, std::vector<double> data) {
  assert(dest >= 0 && dest < machine_->nprocs() && dest != rank_);
  const FemCosts& c = machine_->costs();
  const double cost = c.t_record + c.t_word * static_cast<double>(data.size());
  clock_ += cost;
  comm_seconds_ += cost;
  {
    std::lock_guard<std::mutex> lk(machine_->traffic_mutex_);
    machine_->traffic_[static_cast<std::size_t>(rank_) * machine_->nprocs_ +
                       dest]++;
  }
  Machine::Mailbox& box = machine_->mailboxes_[dest];
  {
    std::lock_guard<std::mutex> lk(box.mutex);
    box.queue.push_back({rank_, {tag, std::move(data), clock_}});
  }
  box.cv.notify_all();
}

std::vector<double> Proc::recv(int src, int tag) {
  Machine::Mailbox& box = machine_->mailboxes_[rank_];
  std::unique_lock<std::mutex> lk(box.mutex);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->first == src && it->second.tag == tag) {
        Machine::Record rec = std::move(it->second);
        box.queue.erase(it);
        lk.unlock();
        // Wait (idle) until the record is available, then pay the copy.
        if (rec.ready_time > clock_) {
          idle_seconds_ += rec.ready_time - clock_;
          clock_ = rec.ready_time;
        }
        const double copy =
            machine_->costs().t_word * static_cast<double>(rec.data.size());
        clock_ += copy;
        comm_seconds_ += copy;
        return std::move(rec.data);
      }
    }
    box.cv.wait(lk);
  }
}

double Proc::sync_collective(double value) {
  Machine& m = *machine_;
  std::unique_lock<std::mutex> lk(m.coll_mutex_);
  const std::uint64_t gen = m.coll_generation_;
  m.coll_values_[rank_] = value;
  m.coll_clocks_[rank_] = clock_;
  if (++m.coll_arrived_ == m.nprocs_) {
    double sum = 0.0;
    double mx = 0.0;
    for (int i = 0; i < m.nprocs_; ++i) {
      sum += m.coll_values_[i];
      mx = std::max(mx, m.coll_clocks_[i]);
    }
    m.coll_result_ = sum;
    m.coll_max_clock_ = mx;
    m.coll_arrived_ = 0;
    ++m.coll_generation_;
    m.coll_cv_.notify_all();
  } else {
    m.coll_cv_.wait(lk, [&] { return m.coll_generation_ != gen; });
  }
  const double result = m.coll_result_;
  const double max_clock = m.coll_max_clock_;
  lk.unlock();
  if (max_clock > clock_) {
    idle_seconds_ += max_clock - clock_;
    clock_ = max_clock;
  }
  (void)result;
  return result;
}

double Proc::allreduce_sum(double local) {
  const double sum = sync_collective(local);
  if (machine_->nprocs() > 1) {
    const double cost =
        machine_->reduction_stages() * machine_->costs().t_reduce_stage;
    clock_ += cost;
    comm_seconds_ += cost;
  }
  return sum;
}

bool Proc::all_flags(bool my_flag) {
  const double raised = sync_collective(my_flag ? 1.0 : 0.0);
  const double cost = machine_->costs().t_flag_sync;
  clock_ += cost;
  comm_seconds_ += cost;
  return raised >= machine_->nprocs() - 0.5;
}

void Proc::barrier() { (void)sync_collective(0.0); }

Machine::Machine(int nprocs, FemCosts costs)
    : nprocs_(nprocs), costs_(costs), mailboxes_(nprocs),
      coll_values_(nprocs, 0.0), coll_clocks_(nprocs, 0.0),
      traffic_(static_cast<std::size_t>(nprocs) * nprocs, 0) {
  if (nprocs < 1) throw std::invalid_argument("Machine: nprocs >= 1");
  procs_.reserve(nprocs);
  for (int i = 0; i < nprocs; ++i) procs_.push_back(Proc(this, i));
}

void Machine::run(const std::function<void(Proc&)>& program) {
  if (nprocs_ == 1) {
    program(procs_[0]);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(nprocs_);
  for (int i = 0; i < nprocs_; ++i) {
    threads.emplace_back([&, i] { program(procs_[i]); });
  }
  for (auto& t : threads) t.join();
}

double Machine::simulated_seconds() const {
  double mx = 0.0;
  for (const Proc& p : procs_) mx = std::max(mx, p.clock());
  return mx;
}

double Machine::max_compute_seconds() const {
  double mx = 0.0;
  for (const Proc& p : procs_) mx = std::max(mx, p.compute_seconds());
  return mx;
}

double Machine::max_comm_seconds() const {
  double mx = 0.0;
  for (const Proc& p : procs_) mx = std::max(mx, p.comm_seconds());
  return mx;
}

double Machine::max_idle_seconds() const {
  double mx = 0.0;
  for (const Proc& p : procs_) mx = std::max(mx, p.idle_seconds());
  return mx;
}

long long Machine::records_sent(int from, int to) const {
  return traffic_[static_cast<std::size_t>(from) * nprocs_ + to];
}

long long Machine::total_records() const {
  long long s = 0;
  for (long long v : traffic_) s += v;
  return s;
}

int Machine::reduction_stages() const {
  if (nprocs_ <= 1) return 0;
  if (costs_.use_summax_circuit) {
    return static_cast<int>(std::ceil(std::log2(nprocs_)));
  }
  return nprocs_ - 1;  // software ring
}

}  // namespace mstep::femsim
