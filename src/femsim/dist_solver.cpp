#include "femsim/dist_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "core/mstep.hpp"
#include "core/params.hpp"
#include "la/simd.hpp"

namespace mstep::femsim {

DistributedPlateSolver::DistributedPlateSolver(const fem::PlateMesh& mesh,
                                               const fem::Material& mat,
                                               const fem::EdgeLoad& load,
                                               const Assignment& assignment) {
  auto sys = fem::assemble_plane_stress(mesh, mat, load);
  cs_ = color::make_colored_system(sys.stiffness,
                                   color::six_color_classes(mesh));
  f_colored_ = cs_.permute(sys.load);
  splits_ = color::compute_row_splits(cs_);

  // Owner of every (colored-ordering) equation, from the node assignment.
  std::vector<int> owner(cs_.size(), -1);
  for (index_t old_eq = 0; old_eq < cs_.size(); ++old_eq) {
    const auto [node, dof] = mesh.equation_node_dof(old_eq);
    (void)dof;
    owner[cs_.inv_perm[old_eq]] = assignment.proc_of_node[node];
  }
  build_proc_data(owner, assignment.nprocs);
}

DistributedPlateSolver::DistributedPlateSolver(
    color::ColoredSystem cs, Vec f_colored,
    const std::vector<int>& owner_of_eq, int nprocs)
    : cs_(std::move(cs)), f_colored_(std::move(f_colored)) {
  splits_ = color::compute_row_splits(cs_);
  build_proc_data(owner_of_eq, nprocs);
}

void DistributedPlateSolver::build_proc_data(
    const std::vector<int>& owner, int nprocs) {
  const int nc = cs_.num_classes();
  const index_t n = cs_.size();

  if (static_cast<index_t>(owner.size()) != n) {
    throw std::invalid_argument("build_proc_data: bad owner map size");
  }
  for (index_t i = 0; i < n; ++i) {
    if (owner[i] < 0 || owner[i] >= nprocs) {
      throw std::invalid_argument("build_proc_data: unassigned equation");
    }
  }

  // Class of every equation.
  std::vector<int> cls(n);
  for (int c = 0; c < nc; ++c) {
    for (index_t i = cs_.class_start[c]; i < cs_.class_start[c + 1]; ++i) {
      cls[i] = c;
    }
  }

  pdata_.assign(nprocs, {});
  for (auto& pd : pdata_) {
    pd.owned_by_class.assign(nc, {});
    pd.nnz_lower.assign(nc, 0);
    pd.nnz_upper.assign(nc, 0);
  }

  const auto& rp = cs_.matrix.row_ptr();
  const auto& col = cs_.matrix.col_idx();

  // Needs[p][q][class]: ghost ids processor p needs from q, per class.
  std::vector<std::map<int, std::vector<std::set<index_t>>>> needs(nprocs);

  for (index_t i = 0; i < n; ++i) {
    const int p = owner[i];
    ProcData& pd = pdata_[p];
    pd.owned_by_class[cls[i]].push_back(i);
    pd.owned.push_back(i);
    pd.nnz_owned += rp[i + 1] - rp[i];
    pd.nnz_lower[cls[i]] += splits_.lo_end[i] - rp[i];
    pd.nnz_upper[cls[i]] += rp[i + 1] - splits_.up_begin[i];
    for (index_t t = rp[i]; t < rp[i + 1]; ++t) {
      const index_t j = col[t];
      const int q = owner[j];
      if (q == p) continue;
      auto [it, inserted] = needs[p].try_emplace(q);
      if (inserted) it->second.assign(nc, {});
      it->second[cls[j]].insert(j);
    }
  }

  for (int p = 0; p < nprocs; ++p) {
    ProcData& pd = pdata_[p];
    for (const auto& [q, ghost_sets] : needs[p]) {
      pd.neighbors.push_back(q);
      // recv from q: what I need.  send to q: what q needs from me.
      std::vector<std::vector<index_t>> recv(nc), send(nc);
      for (int c = 0; c < nc; ++c) {
        recv[c].assign(ghost_sets[c].begin(), ghost_sets[c].end());
        const auto it_q = needs[q].find(p);
        if (it_q != needs[q].end()) {
          send[c].assign(it_q->second[c].begin(), it_q->second[c].end());
        }
      }
      pd.recv_ids.push_back(std::move(recv));
      pd.send_ids.push_back(std::move(send));
    }
  }
}

DistResult DistributedPlateSolver::solve(const DistOptions& options) const {
  return solve_with_traffic(options, nullptr);
}

DistResult DistributedPlateSolver::solve_with_traffic(
    const DistOptions& options,
    std::vector<std::vector<long long>>* traffic) const {
  const int nprocs = static_cast<int>(pdata_.size());
  const index_t n = cs_.size();
  const int nc = cs_.num_classes();
  const int m = options.m;
  const std::vector<double> alphas =
      m == 0 ? std::vector<double>{}
             : (options.parametrized
                    ? core::least_squares_alphas(m, core::ssor_interval())
                    : core::unparametrized_alphas(m));

  Machine machine(nprocs, options.costs);

  // Shared outputs, disjointly written by the processors.
  Vec global_u(n, 0.0);
  std::vector<int> iter_of(nprocs, 0);
  std::vector<char> conv_of(nprocs, 0);

  const auto& a = cs_.matrix;
  const auto& rp = a.row_ptr();
  const auto& col = a.col_idx();
  const auto& val = a.values();

  auto program = [&](Proc& proc) {
    const ProcData& pd = pdata_[proc.rank()];
    const int nnbr = static_cast<int>(pd.neighbors.size());

    // Full-length workspaces; only owned + ghost entries are meaningful.
    Vec u(n, 0.0), r(n, 0.0), z(n, 0.0), p(n, 0.0), w(n, 0.0), y(n, 0.0);

    // --- helpers ----------------------------------------------------------
    auto exchange_classes = [&](Vec& v, int c_first, int c_second, int tag) {
      for (int b = 0; b < nnbr; ++b) {
        std::vector<double> payload;
        payload.reserve(pd.send_ids[b][c_first].size() +
                        pd.send_ids[b][c_second].size());
        for (index_t id : pd.send_ids[b][c_first]) payload.push_back(v[id]);
        for (index_t id : pd.send_ids[b][c_second]) payload.push_back(v[id]);
        proc.send(pd.neighbors[b], tag, std::move(payload));
      }
      for (int b = 0; b < nnbr; ++b) {
        const std::vector<double> data = proc.recv(pd.neighbors[b], tag);
        std::size_t k = 0;
        for (index_t id : pd.recv_ids[b][c_first]) v[id] = data[k++];
        for (index_t id : pd.recv_ids[b][c_second]) v[id] = data[k++];
      }
    };
    auto exchange_all = [&](Vec& v, int tag) {
      for (int b = 0; b < nnbr; ++b) {
        std::vector<double> payload;
        for (int c = 0; c < nc; ++c) {
          for (index_t id : pd.send_ids[b][c]) payload.push_back(v[id]);
        }
        proc.send(pd.neighbors[b], tag, std::move(payload));
      }
      for (int b = 0; b < nnbr; ++b) {
        const std::vector<double> data = proc.recv(pd.neighbors[b], tag);
        std::size_t k = 0;
        for (int c = 0; c < nc; ++c) {
          for (index_t id : pd.recv_ids[b][c]) v[id] = data[k++];
        }
      }
    };
    // Row sums through the library's fixed-4-lane kernel and dots through
    // la::dot's fixed-block 8-lane schedule (term i -> block
    // i / kReductionBlock, lane i mod 8, blocks summed in order): with one
    // processor these ARE the sequential library kernels, which is what
    // keeps the P=1 solve bitwise identical to core::pcg_solve.
    auto lower_sum = [&](index_t i, const Vec& v) {
      return -la::simd::row_dot(val.data(), col.data(), v.data(), rp[i],
                                splits_.lo_end[i]);
    };
    auto upper_sum = [&](index_t i, const Vec& v) {
      return -la::simd::row_dot(val.data(), col.data(), v.data(),
                                splits_.up_begin[i], rp[i + 1]);
    };
    auto local_dot = [&](const Vec& x, const Vec& yv) {
      double total = 0.0;
      double lane[la::simd::kDotLanes] = {};
      index_t block = 0;
      bool open = false;
      auto flush = [&] {
        double s = lane[0];
        for (std::size_t l = 1; l < la::simd::kDotLanes; ++l) s += lane[l];
        total += s;
        std::fill(std::begin(lane), std::end(lane), 0.0);
      };
      for (index_t i : pd.owned) {  // ascending
        const index_t b = i / la::kReductionBlock;
        if (open && b != block) flush();
        block = b;
        open = true;
        // kReductionBlock is a multiple of kDotLanes, so the in-block lane
        // of term i is simply i mod kDotLanes.
        lane[static_cast<std::size_t>(i) % la::simd::kDotLanes] +=
            x[i] * yv[i];
      }
      if (open) flush();
      proc.compute(2 * static_cast<long long>(pd.owned.size()));
      return total;
    };

    // Algorithm 3: z = M^{-1} r with the Conrad–Wallach auxiliary vector
    // and per-geometric-colour border exchanges.
    auto precond = [&](const Vec& rv, Vec& zv, Vec& yv) {
      if (m == 0) {
        for (index_t i : pd.owned) zv[i] = rv[i];
        proc.compute(static_cast<long long>(pd.owned.size()));
        return;
      }
      std::fill(zv.begin(), zv.end(), 0.0);
      for (index_t i : pd.owned) yv[i] = 0.0;
      for (int s = 1; s <= m; ++s) {
        const double as = alphas[m - s];
        // Forward half-sweep.
        for (int c = 0; c < nc; ++c) {
          for (index_t i : pd.owned_by_class[c]) {
            const double xl = lower_sum(i, zv);
            zv[i] = (xl + yv[i] + as * rv[i]) / splits_.diag[i];
            yv[i] = (c == nc - 1) ? 0.0 : xl;
          }
          proc.compute(2 * pd.nnz_lower[c] +
                       4 * static_cast<long long>(pd.owned_by_class[c].size()));
          if (c % 2 == 1) exchange_classes(zv, c - 1, c, /*tag=*/10 + c);
        }
        // Backward half-sweep (classes nc-2 .. 1; last skipped, first
        // deferred).  Border shipping after classes 4 and 2 keeps every
        // ghost fresh exactly when it is read (see header).
        for (int c = nc - 2; c >= 1; --c) {
          for (index_t i : pd.owned_by_class[c]) {
            const double xu = upper_sum(i, zv);
            zv[i] = (xu + yv[i] + as * rv[i]) / splits_.diag[i];
            yv[i] = xu;
          }
          proc.compute(2 * pd.nnz_upper[c] +
                       4 * static_cast<long long>(pd.owned_by_class[c].size()));
          if (c % 2 == 0) exchange_classes(zv, c + 1, c, /*tag=*/20 + c);
        }
        // Save the first class's upper sums (solve deferred).
        for (index_t i : pd.owned_by_class[0]) yv[i] = upper_sum(i, zv);
        proc.compute(2 * pd.nnz_upper[0]);
      }
      // Final deferred first-class solve with alpha_0.
      for (index_t i : pd.owned_by_class[0]) {
        zv[i] = (yv[i] + alphas[0] * rv[i]) / splits_.diag[i];
      }
      proc.compute(3 *
                   static_cast<long long>(pd.owned_by_class[0].size()));
    };

    // --- Algorithm 1 -------------------------------------------------------
    for (index_t i : pd.owned) r[i] = f_colored_[i];  // u0 = 0
    precond(r, z, y);
    for (index_t i : pd.owned) p[i] = z[i];
    proc.compute(static_cast<long long>(pd.owned.size()));
    double rho = proc.allreduce_sum(local_dot(z, r));

    int iterations = 0;
    bool converged = false;
    for (int it = 0; it < options.max_iterations; ++it) {
      // Border p values, one record per neighbour (all colours at once).
      exchange_all(p, /*tag=*/1);
      // w = K p on owned rows — the CSR SpMV row kernel.
      for (index_t i : pd.owned) {
        w[i] = la::simd::row_dot(val.data(), col.data(), p.data(), rp[i],
                                 rp[i + 1]);
      }
      proc.compute(2 * pd.nnz_owned);

      const double pw = proc.allreduce_sum(local_dot(p, w));
      if (pw <= 0.0) break;
      const double alpha = rho / pw;

      double delta_inf = 0.0;
      for (index_t i : pd.owned) {
        const double step = alpha * p[i];
        u[i] += step;
        delta_inf = std::max(delta_inf, std::abs(step));
      }
      for (index_t i : pd.owned) r[i] -= alpha * w[i];
      proc.compute(5 * static_cast<long long>(pd.owned.size()));

      iterations = it + 1;
      if (proc.all_flags(delta_inf < options.tolerance)) {
        converged = true;
        break;
      }

      precond(r, z, y);
      const double rho_new = proc.allreduce_sum(local_dot(z, r));
      const double beta = rho_new / rho;
      rho = rho_new;
      for (index_t i : pd.owned) p[i] = z[i] + beta * p[i];
      proc.compute(2 * static_cast<long long>(pd.owned.size()));
    }

    for (index_t i : pd.owned) global_u[i] = u[i];
    iter_of[proc.rank()] = iterations;
    conv_of[proc.rank()] = converged ? 1 : 0;
  };

  machine.run(program);

  DistResult res;
  res.iterations = iter_of[0];
  res.converged = conv_of[0] != 0;
  res.simulated_seconds = machine.simulated_seconds();
  res.max_compute_seconds = machine.max_compute_seconds();
  res.max_comm_seconds = machine.max_comm_seconds();
  res.max_idle_seconds = machine.max_idle_seconds();
  res.total_records = machine.total_records();
  res.solution = cs_.unpermute(global_u);
  if (traffic != nullptr) {
    traffic->assign(nprocs, std::vector<long long>(nprocs, 0));
    for (int i = 0; i < nprocs; ++i) {
      for (int j = 0; j < nprocs; ++j) {
        (*traffic)[i][j] = machine.records_sent(i, j);
      }
    }
  }
  return res;
}

}  // namespace mstep::femsim
