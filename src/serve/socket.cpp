#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

namespace mstep::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

/// A peer that vanishes mid-write raises SIGPIPE by default, which would
/// kill the daemon; ask for EPIPE instead, per-call where the platform
/// has it and process-wide otherwise.
#ifndef MSG_NOSIGNAL
#define MSTEP_NEED_SIGPIPE_IGNORE 1
#define MSG_NOSIGNAL 0
#endif

void ignore_sigpipe_once() {
#ifdef MSTEP_NEED_SIGPIPE_IGNORE
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
#endif
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::write_all(const char* data, std::size_t len) {
  ignore_sigpipe_once();
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::read_exact(char* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, out + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean close at a frame boundary
      throw SocketError("peer closed the connection mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::wait_readable(int timeout_ms) {
  struct pollfd p = {};
  p.fd = fd_;
  p.events = POLLIN;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return r > 0;
  }
}

Socket connect_tcp(const std::string& host, int port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    throw SocketError("resolve " + host + ": " + gai_strerror(rc));
  }
  SocketError last("connect " + host + ":" + std::to_string(port) +
                   ": no addresses");
  for (struct addrinfo* a = res; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last = SocketError("connect " + host + ":" + std::to_string(port) + ": " +
                       std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  throw last;
}

namespace {

struct sockaddr_un unix_address(const std::string& path) {
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket connect_unix(const std::string& path) {
  const struct sockaddr_un addr = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const SocketError e("connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    throw e;
  }
  return Socket(fd);
}

Socket listen_tcp(const std::string& host, int port, int backlog) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    throw SocketError("resolve " + host + ": " + gai_strerror(rc));
  }
  SocketError last("bind " + host + ": no addresses");
  for (struct addrinfo* a = res; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last = SocketError("bind " + host + ":" + std::to_string(port) + ": " +
                       std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  throw last;
}

Socket listen_unix(const std::string& path, int backlog) {
  const struct sockaddr_un addr = unix_address(path);
  ::unlink(path.c_str());  // a stale file from a dead daemon blocks bind
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const SocketError e("bind " + path + ": " + std::strerror(errno));
    ::close(fd);
    throw e;
  }
  return Socket(fd);
}

int local_tcp_port(const Socket& listener) {
  struct sockaddr_storage ss = {};
  socklen_t len = sizeof(ss);
  if (::getsockname(listener.fd(), reinterpret_cast<struct sockaddr*>(&ss),
                    &len) != 0) {
    throw_errno("getsockname");
  }
  if (ss.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<struct sockaddr_in*>(&ss)->sin_port);
  }
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<struct sockaddr_in6*>(&ss)->sin6_port);
  }
  throw SocketError("local_tcp_port on a non-TCP socket");
}

Socket accept_connection(Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

}  // namespace mstep::serve
