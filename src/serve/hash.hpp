// Content fingerprints for the prepared-pipeline cache.
//
// The cache key is matrix CONTENT hash × canonical SolverConfig string:
// two requests hit the same entry exactly when they would build the same
// pipeline, regardless of whether the matrix arrived as a catalog spec,
// an inline CSR payload, or a fingerprint reference.  FNV-1a over the
// structural arrays and the value bytes is enough — this is a cache key
// and a resend-shortcut token, not a cryptographic commitment (a client
// that must not trust the transport should send the matrix inline).
#pragma once

#include <cstdint>
#include <string>

#include "color/coloring.hpp"
#include "la/csr_matrix.hpp"

namespace mstep::serve {

/// Streaming 64-bit FNV-1a.
class Fnv1a {
 public:
  void bytes(const void* data, std::size_t len);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Fingerprint of a CSR matrix: dimensions, row pointers, column indices,
/// and the exact value bit patterns.  Equal hash <=> (with the usual
/// 64-bit-collision caveat) equal operator, so a cache hit serves results
/// bitwise identical to a direct solve on the same matrix.
[[nodiscard]] std::uint64_t matrix_fingerprint(const la::CsrMatrix& m);

/// Fingerprint of the whole pipeline INPUT: the matrix plus its
/// closed-form colour classes when the problem ships them (empty classes
/// fold to matrix_fingerprint exactly).  This is the hash the cache keys
/// on and the one solve replies advertise — the same matrix with and
/// without catalog classes builds different orderings, so it must hash
/// differently or a fingerprint request could be served by the wrong
/// pipeline.
[[nodiscard]] std::uint64_t pipeline_fingerprint(
    const la::CsrMatrix& m, const color::ColorClasses& classes);

/// Fingerprints render as fixed-width lowercase hex on every surface
/// (responses are binary, but logs, reports, and the CLI use this form).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);
/// Parse the hex form (with or without "0x"); throws std::invalid_argument.
[[nodiscard]] std::uint64_t fingerprint_from_hex(const std::string& text);

}  // namespace mstep::serve
