#include "serve/cache.hpp"

#include "serve/hash.hpp"
#include "solver/config.hpp"

namespace mstep::serve {

std::shared_ptr<const ProblemData> make_problem_data(
    la::CsrMatrix matrix, color::ColorClasses classes, Vec rhs,
    std::string description) {
  auto data = std::make_shared<ProblemData>();
  data->matrix = std::move(matrix);
  data->classes = std::move(classes);
  data->rhs = std::move(rhs);
  data->description = std::move(description);
  data->fingerprint = pipeline_fingerprint(data->matrix, data->classes);
  return data;
}

PreparedCache::PreparedCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

PreparedCache::Lookup PreparedCache::get_or_prepare(
    std::uint64_t fingerprint, const solver::SolverConfig& config,
    const std::string& canonical_config,
    const std::function<std::shared_ptr<const ProblemData>()>& load) {
  const Key key{fingerprint, canonical_config};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.end(), lru_, it->second.lru_pos);  // mark most recent
      return {it->second.entry, true};
    }
    ++misses_;
  }

  // Build outside the lock: a slow prepare must not block concurrent hits.
  std::shared_ptr<const ProblemData> problem = load();
  auto solver = solver::Solver::from_config(config);
  auto prepared = problem->classes.classes.empty()
                      ? solver.prepare(problem->matrix)
                      : solver.prepare(problem->matrix, problem->classes);
  const std::size_t bytes = estimate_entry_bytes(*problem, prepared);
  auto entry = std::make_shared<const Entry>(Entry{
      std::move(problem), std::move(solver), std::move(prepared), bytes});

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent miss inserted first; serve that entry, drop ours.
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
    return {it->second.entry, false};
  }
  evict_to_fit_locked(bytes);
  const auto lru_pos = lru_.insert(lru_.end(), key);
  entries_.emplace(key, Slot{entry, lru_pos});
  bytes_ += bytes;
  return {entry, false};
}

void PreparedCache::evict_to_fit_locked(std::size_t incoming_bytes) {
  // Always admit the incoming entry, even one bigger than the whole
  // budget — it evicts everything else instead of thrashing forever.
  while (!lru_.empty() && bytes_ + incoming_bytes > capacity_bytes_) {
    const Key& victim = lru_.front();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.entry->bytes;
    entries_.erase(it);
    lru_.pop_front();
    ++evictions_;
  }
}

std::shared_ptr<const ProblemData> PreparedCache::find_matrix(
    std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Keys sort by fingerprint first, so all configs of one matrix are
  // contiguous; lower_bound lands on the first.
  const auto it = entries_.lower_bound(Key{fingerprint, std::string()});
  if (it == entries_.end() || it->first.first != fingerprint) return nullptr;
  return it->second.entry->problem;
}

PreparedCache::Stats PreparedCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.capacity_bytes = capacity_bytes_;
  return s;
}

void PreparedCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

std::size_t estimate_entry_bytes(const ProblemData& problem,
                                 const solver::Prepared& prepared) {
  const auto csr_bytes = [](const la::CsrMatrix& m) {
    return static_cast<std::size_t>(m.nnz()) *
               (sizeof(double) + sizeof(index_t)) +
           static_cast<std::size_t>(m.rows() + 1) * sizeof(index_t);
  };
  std::size_t bytes = csr_bytes(problem.matrix);
  // The colour permutation copies the matrix (plus two index maps), and
  // the multicolor sweeps keep SELL-sliced copies of every row's
  // strictly-lower and strictly-upper segments (la::SellSegments —
  // together about one more matrix); the DIA layout stores
  // rows * num_diagonals doubles and the SELL layout a padded slice
  // copy, both bounded below by the CSR size — each estimated as one
  // more matrix.
  if (prepared.coloring().used) {
    bytes += 2 * csr_bytes(problem.matrix) +
             2 * static_cast<std::size_t>(problem.matrix.rows()) *
                 sizeof(index_t);
  }
  if (prepared.resolved_format() == solver::MatrixFormat::kDia ||
      prepared.resolved_format() == solver::MatrixFormat::kSell) {
    bytes += csr_bytes(problem.matrix);
  }
  bytes += problem.rhs.size() * sizeof(double);
  bytes += prepared.alphas().size() * sizeof(double);
  return bytes + 4096;  // splitting/preconditioner/bookkeeping overhead
}

}  // namespace mstep::serve
