#include "serve/client.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace mstep::serve {

Client Client::connect(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5));
  }
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    throw std::invalid_argument(
        "bad endpoint '" + endpoint +
        "': want unix:<path> or <host>:<port>");
  }
  int port = 0;
  try {
    port = std::stoi(endpoint.substr(colon + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("bad port in endpoint '" + endpoint + "'");
  }
  return connect_tcp(endpoint.substr(0, colon), port);
}

Client Client::connect_tcp(const std::string& host, int port) {
  return Client(serve::connect_tcp(host, port));
}

Client Client::connect_unix(const std::string& path) {
  return Client(serve::connect_unix(path));
}

std::pair<MsgType, std::string> Client::roundtrip(MsgType type,
                                                  const std::string& payload) {
  sock_.write_all(encode_header(type, payload.size()));
  sock_.write_all(payload);
  if (timeout_ms_ >= 0 && !sock_.wait_readable(timeout_ms_)) {
    throw SocketError("timed out waiting for the server's reply");
  }
  char header[kHeaderBytes];
  if (!sock_.read_exact(header, kHeaderBytes)) {
    throw SocketError("server closed the connection before replying");
  }
  const FrameHeader fh = decode_header(header, kDefaultMaxPayload);
  std::string body;
  body.resize(static_cast<std::size_t>(fh.payload_len));
  if (fh.payload_len > 0 && !sock_.read_exact(&body[0], body.size())) {
    throw SocketError("server closed the connection mid-reply");
  }
  return {fh.type, std::move(body)};
}

SolveResponse Client::solve(const SolveRequest& request) {
  auto [type, body] = roundtrip(MsgType::kSolve, request.encode());
  if (type == MsgType::kSolveReply) {
    return SolveResponse::decode(body);
  }
  if (type == MsgType::kErrorReply) {
    const StatusResponse status = StatusResponse::decode(body);
    SolveResponse r;
    r.retcode = status.retcode;
    r.message = status.body;
    return r;
  }
  throw ProtocolError("unexpected reply type to a solve request");
}

SolveResponse Client::solve_catalog(const std::string& spec,
                                    const std::string& config,
                                    std::vector<Vec> rhs) {
  SolveRequest q;
  q.source = MatrixSource::kCatalog;
  q.problem = spec;
  q.config = config;
  q.rhs = std::move(rhs);
  return solve(q);
}

SolveResponse Client::solve_with_retry(const SolveRequest& request,
                                       int max_attempts, int backoff_ms,
                                       int* attempts) {
  SolveResponse r;
  int backoff = backoff_ms;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    r = solve(request);
    if (attempts != nullptr) *attempts = attempt;
    if (!retryable(r.retcode)) return r;
    if (attempt < max_attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
    }
  }
  return r;
}

StatusResponse Client::metrics() {
  auto [type, body] = roundtrip(MsgType::kMetrics, std::string());
  if (type != MsgType::kMetricsReply && type != MsgType::kErrorReply) {
    throw ProtocolError("unexpected reply type to a metrics request");
  }
  return StatusResponse::decode(body);
}

StatusResponse Client::shutdown() {
  auto [type, body] = roundtrip(MsgType::kShutdown, std::string());
  if (type != MsgType::kShutdownReply && type != MsgType::kErrorReply) {
    throw ProtocolError("unexpected reply type to a shutdown request");
  }
  return StatusResponse::decode(body);
}

}  // namespace mstep::serve
