// Observability for the daemon: request counters and latency histograms,
// rendered as the metrics JSON document that `mstep_request --metrics`
// prints and tools/check_report.py --schema metrics validates in CI.
//
// The histogram is log-bucketed (8 buckets per decade from 1 µs to 1000 s)
// so p50/p99 are read off the bucket boundaries with geometric
// interpolation — a bounded-memory estimate, paired with exact
// count/mean/max accumulators.  Everything is mutex-guarded; recording is
// a handful of arithmetic ops, far off any solve's critical path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "serve/cache.hpp"
#include "util/json_writer.hpp"

namespace mstep::serve {

class LatencyHistogram {
 public:
  void record(double seconds);

  struct Summary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] Summary summary() const;

  /// {"count": n, "mean": s, "max": s, "p50": s, "p99": s} — seconds.
  [[nodiscard]] util::Json to_json() const;

 private:
  // 8 buckets/decade over [1e-6, 1e3) seconds, plus an overflow bucket.
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kDecades = 9;
  static constexpr int kBuckets = kBucketsPerDecade * kDecades + 1;
  static constexpr double kFloorSeconds = 1e-6;

  [[nodiscard]] static int bucket_of(double seconds);
  [[nodiscard]] double percentile_locked(double q) const;

  mutable std::mutex mutex_;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// All the daemon's counters in one place.  The server owns one instance;
/// connection threads bump it; to_json() assembles the full metrics
/// document (cache stats and queue depth are passed in — they live with
/// the cache and the admission gate).
class ServerMetrics {
 public:
  void count_solve() { ++solve_requests_; }
  void count_metrics() { ++metrics_requests_; }
  void count_shutdown() { ++shutdown_requests_; }
  void count_error() { ++error_replies_; }
  void count_busy() { ++busy_rejections_; }
  void count_cache_hit() { ++cache_hit_solves_; }

  void record_solve_seconds(double s) { solve_latency_.record(s); }
  void record_request_seconds(double s) { request_latency_.record(s); }
  /// Preparation paid by a cache-missing solve; hits record nothing, so
  /// this histogram is the true cost of cold pipelines only.
  void record_setup_seconds(double s) { setup_latency_.record(s); }

  /// The full metrics document (docs/protocol.md, "Metrics schema").
  [[nodiscard]] util::Json to_json(const PreparedCache::Stats& cache,
                                   int queue_depth, int max_inflight,
                                   double uptime_seconds) const;

 private:
  std::atomic<std::uint64_t> solve_requests_{0};
  std::atomic<std::uint64_t> metrics_requests_{0};
  std::atomic<std::uint64_t> shutdown_requests_{0};
  std::atomic<std::uint64_t> error_replies_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> cache_hit_solves_{0};
  LatencyHistogram solve_latency_;
  LatencyHistogram request_latency_;
  LatencyHistogram setup_latency_;
};

}  // namespace mstep::serve
