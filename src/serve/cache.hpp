// The prepared-pipeline cache — the reason mstep_served exists.
//
// Solver::prepare is the expensive half of a solve (greedy colouring,
// symmetric permutation, splitting assembly, alpha selection); repeat
// traffic for the same operator under the same configuration should pay
// it once.  The cache maps (pipeline fingerprint × canonical SolverConfig
// string) to a live Solver+Prepared pair plus the shared problem data the
// Prepared points into, LRU-evicted under a byte budget.  Entries are
// handed out as shared_ptr, so an in-flight solve keeps its pipeline
// alive even if the entry is evicted mid-solve — eviction drops the
// cache's reference, never the solve's.
//
// tests/test_serve_cache.cpp pins the contract: hit on identical
// matrix+config, miss when either changes, LRU eviction under a tiny
// budget, and results bitwise identical to a direct Solver call.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "color/coloring.hpp"
#include "la/csr_matrix.hpp"
#include "la/vector.hpp"
#include "solver/solver.hpp"

namespace mstep::serve {

/// The pipeline input a cache entry is bound to, shared between the entry
/// (whose Prepared points into `matrix`) and any fingerprint-addressed
/// request that wants to reuse the operator under a new config.  Heap
/// placement keeps `matrix` at a stable address for the Prepared's
/// internal pointers.
struct ProblemData {
  la::CsrMatrix matrix;
  color::ColorClasses classes;  // closed-form classes; empty = greedy
  Vec rhs;                      // the problem's own RHS; empty = b is K*1
  std::string description;
  std::uint64_t fingerprint = 0;  // pipeline_fingerprint(matrix, classes)
};

/// Build ProblemData (computing the fingerprint) from its parts.
[[nodiscard]] std::shared_ptr<const ProblemData> make_problem_data(
    la::CsrMatrix matrix, color::ColorClasses classes = {}, Vec rhs = {},
    std::string description = {});

class PreparedCache {
 public:
  struct Entry {
    std::shared_ptr<const ProblemData> problem;
    solver::Solver solver;      // owns the entry's thread pool
    solver::Prepared prepared;  // pipeline bound to problem->matrix
    std::size_t bytes = 0;      // this entry's budget charge
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t capacity_bytes = 0;

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// `capacity_bytes` bounds the sum of entry estimates; at least one
  /// entry is always admitted (a single oversized pipeline evicts
  /// everything else rather than thrash on every request).
  explicit PreparedCache(std::size_t capacity_bytes);

  struct Lookup {
    EntryPtr entry;
    bool hit = false;
  };

  /// The one cache operation: return the entry for (fingerprint, config),
  /// building it via `load` + Solver::prepare on a miss.  `config` must
  /// be validated and `canonical_config` its to_string() — the canonical
  /// form IS the key, so "m=4;splitting=ssor" and the flag-order variants
  /// collapse to one entry.  Preparation runs outside the cache lock:
  /// hits never wait behind a concurrent miss's prepare (two concurrent
  /// misses of the same key may both prepare; the first insert wins).
  [[nodiscard]] Lookup get_or_prepare(
      std::uint64_t fingerprint, const solver::SolverConfig& config,
      const std::string& canonical_config,
      const std::function<std::shared_ptr<const ProblemData>()>& load);

  /// The problem data behind any resident entry with this fingerprint —
  /// how a MatrixSource::kFingerprint request avoids resending the
  /// matrix.  nullptr when no entry holds it (evicted or never seen).
  [[nodiscard]] std::shared_ptr<const ProblemData> find_matrix(
      std::uint64_t fingerprint) const;

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  using Key = std::pair<std::uint64_t, std::string>;
  struct Slot {
    EntryPtr entry;
    std::list<Key>::iterator lru_pos;  // back of lru_ = most recent
  };

  void evict_to_fit_locked(std::size_t incoming_bytes);

  mutable std::mutex mutex_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::map<Key, Slot> entries_;
  std::list<Key> lru_;  // front = least recently used
};

/// Budget estimate for one prepared pipeline: the problem data plus the
/// Prepared's own copies (the colour-permuted matrix when multicolour,
/// the DIA twin when that layout was selected) plus fixed overhead.  An
/// estimate, not an audit — documented in docs/protocol.md.
[[nodiscard]] std::size_t estimate_entry_bytes(
    const ProblemData& problem, const solver::Prepared& prepared);

}  // namespace mstep::serve
