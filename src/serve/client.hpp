// serve::Client — the library side of the mstep_served protocol, used by
// the mstep_request CLI, bench/bench_served.cpp, and the end-to-end
// tests.
//
// A Client owns one connection and can issue any number of requests over
// it (the protocol is strictly request/reply, so a connection is also a
// serialization domain; run concurrent requests on concurrent clients).
// Transport and framing failures throw (SocketError / ProtocolError);
// server-side conditions come back as retcodes in the response structs —
// a busy server is data, not an exception, because shedding is part of
// the protocol's normal operation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace mstep::serve {

class Client {
 public:
  /// Endpoint grammar shared with mstep_request --connect and
  /// bench_served: "unix:<path>" or "<host>:<port>".
  static Client connect(const std::string& endpoint);
  static Client connect_tcp(const std::string& host, int port);
  static Client connect_unix(const std::string& path);

  /// Reply wait limit per request; < 0 blocks forever (default — solves
  /// are allowed to be slow, the admission gate is what bounds them).
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

  /// One solve round trip.  Server-side failures are in the retcode.
  [[nodiscard]] SolveResponse solve(const SolveRequest& request);

  /// Convenience: solve a catalog spec with `nrhs` of the problem's own /
  /// manufactured right-hand sides (0 = the problem's one RHS).
  [[nodiscard]] SolveResponse solve_catalog(const std::string& spec,
                                            const std::string& config,
                                            std::vector<Vec> rhs = {});

  /// As solve(), but retry while the retcode is retryable (kBusy /
  /// kShuttingDown), sleeping `backoff_ms` doubling each attempt.
  /// Returns the last response; `attempts` counts round trips made.
  [[nodiscard]] SolveResponse solve_with_retry(const SolveRequest& request,
                                               int max_attempts,
                                               int backoff_ms,
                                               int* attempts = nullptr);

  /// The daemon's metrics JSON document.
  [[nodiscard]] StatusResponse metrics();

  /// Ask the daemon to drain and exit.
  [[nodiscard]] StatusResponse shutdown();

  void close() { sock_.close(); }

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  /// Send one frame, read one reply.  kErrorReply is decoded and returned
  /// as {kErrorReply, status-payload} so callers can fold it into their
  /// response type.
  [[nodiscard]] std::pair<MsgType, std::string> roundtrip(
      MsgType type, const std::string& payload);

  Socket sock_;
  int timeout_ms_ = -1;
};

}  // namespace mstep::serve
