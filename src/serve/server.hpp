// The mstep_served daemon core: accept loop, per-connection protocol
// handling, admission control, the prepared-pipeline cache, metrics, and
// graceful drain.
//
// One Server owns one PreparedCache and one ServerMetrics; each accepted
// connection gets a handler thread that speaks the framed protocol
// (serve/protocol.hpp) until the peer closes or the server drains.  A
// solve request admitted past the inflight gate resolves its matrix
// (catalog spec, inline CSR, or fingerprint), pulls the pipeline from the
// cache — preparing it exactly when the cache misses — and runs the
// existing Prepared::solveMany batch lanes, so a served solve is the same
// code path (and bitwise the same answer) as a direct library call.
//
// Shutdown: request_shutdown() (also wired to SIGINT/SIGTERM by
// install_signal_handlers(), via a self-pipe so the handler stays
// async-signal-safe) stops the accept loop, lets in-flight requests
// finish, joins every connection thread, writes the final metrics
// snapshot, and returns from run() — the daemon then exits 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/json_writer.hpp"
#include "util/timer.hpp"

namespace mstep::serve {

/// Bounded in-flight counter — the admission queue.  A solve request that
/// cannot enter is shed immediately with the retryable kBusy retcode;
/// depth() is the metrics document's queue_depth gauge.
class Admission {
 public:
  explicit Admission(int max_inflight) : max_(max_inflight) {}

  [[nodiscard]] bool try_enter() {
    int cur = depth_.load();
    do {
      if (cur >= max_) return false;
    } while (!depth_.compare_exchange_weak(cur, cur + 1));
    return true;
  }
  void leave() { --depth_; }

  [[nodiscard]] int depth() const { return depth_.load(); }
  [[nodiscard]] int max_inflight() const { return max_; }

 private:
  const int max_;
  std::atomic<int> depth_{0};
};

struct ServerOptions {
  /// TCP endpoint; port < 0 disables TCP, port 0 binds an ephemeral port
  /// (read back via Server::bound_port()).
  std::string host = "127.0.0.1";
  int port = -1;
  /// Unix-domain listener path; empty disables it.  The socket file is
  /// created at bind() and unlinked again on shutdown.
  std::string unix_path;
  /// Prepared-pipeline cache budget.
  std::size_t cache_bytes = 256ull << 20;
  /// Solves in flight before kBusy shedding; 0 = 2 x hardware threads.
  int max_inflight = 0;
  /// Per-frame payload ceiling.
  std::uint64_t max_payload = kDefaultMaxPayload;
  /// Where run() writes the final metrics snapshot on drain; empty = skip.
  std::string metrics_out;
  /// One log line per request to stderr.
  bool verbose = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create the listeners.  Must be called before run(); separated so a
  /// caller (test, bench, daemon banner) can learn the ephemeral port /
  /// socket path before the accept loop starts.
  void bind();
  [[nodiscard]] int bound_port() const;
  [[nodiscard]] const ServerOptions& options() const { return options_; }

  /// The accept loop.  Blocks until a drain completes (request_shutdown,
  /// a protocol kShutdown request, or an installed signal).
  void run();

  /// Begin a graceful drain; safe from any thread.  Idempotent.
  void request_shutdown();

  /// Route SIGINT/SIGTERM to request_shutdown() through a self-pipe.
  /// Installs process-wide handlers; the most recently installed server
  /// wins (one daemon per process is the intended shape).
  void install_signal_handlers();

  /// The current metrics document.
  [[nodiscard]] util::Json metrics_json() const;
  [[nodiscard]] const PreparedCache& cache() const { return cache_; }
  [[nodiscard]] int queue_depth() const { return admission_.depth(); }

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void serve_connection(Socket sock);
  /// Dispatch one frame; returns false when the connection should close.
  bool handle_frame(Socket& sock, MsgType type, const std::string& payload);
  /// Tracing shell around handle_solve_inner: assigns the request id,
  /// scopes the tracer's correlation (and, when the request asked, a
  /// per-request enable window) around the work, then harvests this
  /// request's span events into the reply.
  [[nodiscard]] SolveResponse handle_solve(SolveRequest request);
  [[nodiscard]] SolveResponse handle_solve_inner(SolveRequest request);
  void reap_finished_connections(bool join_all);
  void write_final_metrics();
  void log(const std::string& line) const;

  ServerOptions options_;
  PreparedCache cache_;
  ServerMetrics metrics_;
  Admission admission_;
  util::Timer uptime_;

  Socket tcp_listener_;
  Socket unix_listener_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  /// Canonical catalog spec -> pipeline fingerprint, so a warm catalog
  /// request skips problem GENERATION as well as preparation.
  std::mutex spec_index_mutex_;
  std::map<std::string, std::uint64_t> spec_index_;

  /// Monotone solve-request ids; id 0 is reserved for "untraced", so the
  /// counter starts handing out 1.  The id doubles as the trace
  /// correlation key that picks this request's spans out of the
  /// process-wide ring buffers.
  std::atomic<std::uint64_t> request_serial_{0};
};

}  // namespace mstep::serve
