// The mstep_served wire protocol: length-prefixed frames, explicit
// retcodes, and the request/response payload codecs shared by the daemon
// (serve::Server), the client library (serve::Client), and the tests.
//
// A frame is a fixed 16-byte header — magic, message type, payload length
// — followed by the payload.  All integers are little-endian on the wire
// regardless of host order; doubles travel as their IEEE-754 bit pattern.
// The full layout (and the retcode catalog below) is documented in
// docs/protocol.md; the codecs here ARE that document's normative
// implementation, and tests/test_serve_cache.cpp round-trips them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/vector.hpp"

namespace mstep::serve {

/// Malformed or truncated wire data (bad magic, short payload, oversized
/// frame).  The peer that detects it answers kErrorReply when it still
/// can, then drops the connection.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// "MS" + protocol version "V1", read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x3156534du;  // "MSV1"
/// Frame header bytes on the wire: magic u32, type u32, payload_len u64.
inline constexpr std::size_t kHeaderBytes = 16;
/// Default per-frame payload ceiling (1 GiB); the server may lower it.
inline constexpr std::uint64_t kDefaultMaxPayload = 1ull << 30;

/// Message types.  Every request type has exactly one reply type; a peer
/// that cannot parse a request at all answers kErrorReply.
enum class MsgType : std::uint32_t {
  kSolve = 1,
  kSolveReply = 2,
  kMetrics = 3,
  kMetricsReply = 4,
  kShutdown = 5,
  kShutdownReply = 6,
  kErrorReply = 7,
};

/// Explicit result codes, first field of every reply payload.  Stable
/// numeric values — they are the wire contract, not an implementation
/// detail (docs/protocol.md lists them verbatim).
enum class Retcode : std::uint32_t {
  kOk = 0,
  kBadRequest = 1,     // malformed field (e.g. RHS length != n)
  kBadConfig = 2,      // SolverConfig string failed to parse/validate
  kBadProblem = 3,     // catalog spec unknown or rejected
  kSolveFailed = 4,    // prepare/solve threw
  kBusy = 5,           // admission queue full — retryable
  kShuttingDown = 6,   // server draining — retryable elsewhere/later
  kProtocol = 7,       // unintelligible frame
  kUnknownMatrix = 8,  // fingerprint not resident; resend the matrix
};

[[nodiscard]] const char* to_string(Retcode rc);
/// True for codes a client may retry verbatim (after backoff): the
/// request was fine, the server just could not take it right now.
[[nodiscard]] bool retryable(Retcode rc);

// ---- payload codec ---------------------------------------------------------

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// u32 byte count + raw bytes.
  void str(const std::string& s);
  /// u64 element count + f64 each.
  void vec(const Vec& v);
  /// rows, cols, row_ptr, col_idx, values — enough to rebuild the CSR.
  void csr(const la::CsrMatrix& m);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over one received payload; every getter throws
/// ProtocolError("truncated payload") past the end.
class WireReader {
 public:
  explicit WireReader(const std::string& bytes) : bytes_(bytes) {}
  // The reader is a view: it must not outlive its buffer, so binding a
  // temporary is a compile error rather than a use-after-scope.
  explicit WireReader(std::string&&) = delete;

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] Vec vec();
  [[nodiscard]] la::CsrMatrix csr();

  /// Everything consumed — replies assert this so a trailing-garbage
  /// frame fails loudly instead of silently succeeding.
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

/// Header codec: encode_header writes exactly kHeaderBytes;
/// decode_header validates the magic and returns {type, payload_len}.
[[nodiscard]] std::string encode_header(MsgType type,
                                        std::uint64_t payload_len);
struct FrameHeader {
  MsgType type;
  std::uint64_t payload_len;
};
[[nodiscard]] FrameHeader decode_header(const char* bytes,
                                        std::uint64_t max_payload);

// ---- messages --------------------------------------------------------------

/// Where the request's matrix comes from.
enum class MatrixSource : std::uint8_t {
  kCatalog = 0,      // `problem` holds a catalog spec, e.g. "poisson3d:n=16"
  kInlineCsr = 1,    // `matrix` holds the full CSR payload
  kFingerprint = 2,  // `fingerprint` names a matrix the server already has
};

/// One solve request: a matrix source, a SolverConfig string, and zero or
/// more right-hand sides.  No RHS means "use the problem's own" (catalog)
/// or the manufactured b = K*1 (inline/fingerprint) — so a bare warm-up
/// request needs no payload beyond the spec.
struct SolveRequest {
  MatrixSource source = MatrixSource::kCatalog;
  std::string problem;             // kCatalog
  la::CsrMatrix matrix;            // kInlineCsr
  std::uint64_t fingerprint = 0;   // kFingerprint
  std::string config;              // SolverConfig string ("" = defaults)
  std::vector<Vec> rhs;
  /// Ask the server to trace this request and return the span events
  /// (Chrome trace-event JSON) in SolveResponse::trace.  Tracing never
  /// changes the solution bits; it only adds the reply payload.
  bool want_trace = false;

  [[nodiscard]] std::string encode() const;
  static SolveRequest decode(const std::string& payload);
};

/// Per-right-hand-side slice of a solve reply.
struct RhsResult {
  bool ok = false;         // false: `error` is set, the rest is empty
  bool converged = false;
  std::int32_t iterations = 0;
  double final_delta_inf = 0.0;
  Vec solution;            // caller ordering
  std::string error;

  friend bool operator==(const RhsResult& a, const RhsResult& b) {
    return a.ok == b.ok && a.converged == b.converged &&
           a.iterations == b.iterations &&
           a.final_delta_inf == b.final_delta_inf &&
           a.solution == b.solution && a.error == b.error;
  }
};

/// The solve reply.  retcode != kOk carries only `message`; kOk carries
/// the cache verdict, the server-computed matrix fingerprint (so a client
/// can switch to MatrixSource::kFingerprint for repeat traffic), and one
/// RhsResult per requested right-hand side.
struct SolveResponse {
  Retcode retcode = Retcode::kOk;
  std::string message;
  bool cache_hit = false;
  std::uint64_t fingerprint = 0;
  std::string format_selected;  // "csr" | "dia" | "sell"
  double setup_seconds = 0.0;   // preparation paid by THIS request (0 on hit)
  double solve_seconds = 0.0;
  std::vector<RhsResult> results;
  /// Server-assigned id of this request; every span the request emitted
  /// carries it as the trace events' "correlation" arg.
  std::uint64_t request_id = 0;
  /// Chrome trace-event JSON for this request's spans — only when the
  /// request set want_trace, empty otherwise.
  std::string trace;

  [[nodiscard]] bool all_converged() const;

  [[nodiscard]] std::string encode() const;
  static SolveResponse decode(const std::string& payload);
};

/// Metrics / shutdown / error replies share one trivial shape.
struct StatusResponse {
  Retcode retcode = Retcode::kOk;
  std::string body;  // metrics: the JSON document; error: the message

  [[nodiscard]] std::string encode() const;
  static StatusResponse decode(const std::string& payload);
};

}  // namespace mstep::serve
