#include "serve/protocol.hpp"

#include <cstring>
#include <limits>

namespace mstep::serve {

const char* to_string(Retcode rc) {
  switch (rc) {
    case Retcode::kOk: return "ok";
    case Retcode::kBadRequest: return "bad_request";
    case Retcode::kBadConfig: return "bad_config";
    case Retcode::kBadProblem: return "bad_problem";
    case Retcode::kSolveFailed: return "solve_failed";
    case Retcode::kBusy: return "busy";
    case Retcode::kShuttingDown: return "shutting_down";
    case Retcode::kProtocol: return "protocol_error";
    case Retcode::kUnknownMatrix: return "unknown_matrix";
  }
  return "unknown_retcode";
}

bool retryable(Retcode rc) {
  return rc == Retcode::kBusy || rc == Retcode::kShuttingDown;
}

// ---- writer ----------------------------------------------------------------

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ProtocolError("string too long for the wire");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void WireWriter::vec(const Vec& v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void WireWriter::csr(const la::CsrMatrix& m) {
  u64(static_cast<std::uint64_t>(m.rows()));
  u64(static_cast<std::uint64_t>(m.cols()));
  u64(m.row_ptr().size());
  for (const index_t p : m.row_ptr()) u64(static_cast<std::uint64_t>(p));
  u64(m.col_idx().size());
  for (const index_t c : m.col_idx()) u64(static_cast<std::uint64_t>(c));
  u64(m.values().size());
  for (const double v : m.values()) f64(v);
}

// ---- reader ----------------------------------------------------------------

void WireReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw ProtocolError("truncated payload");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s = bytes_.substr(pos_, n);
  pos_ += n;
  return s;
}

namespace {

/// Element count guard: rejects counts so large that n*8 would wrap
/// before need() could catch the truncation.
std::uint64_t checked_count(std::uint64_t n, const char* what) {
  if (n > (kDefaultMaxPayload / 8)) {
    throw ProtocolError(std::string("implausible ") + what + " count");
  }
  return n;
}

}  // namespace

Vec WireReader::vec() {
  const std::uint64_t n = checked_count(u64(), "vector");
  need(static_cast<std::size_t>(n) * 8);
  Vec v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

namespace {

index_t checked_index(std::uint64_t v, const char* what) {
  if (v > static_cast<std::uint64_t>(std::numeric_limits<index_t>::max())) {
    throw ProtocolError(std::string(what) + " out of index range");
  }
  return static_cast<index_t>(v);
}

}  // namespace

la::CsrMatrix WireReader::csr() {
  const index_t rows = checked_index(u64(), "rows");
  const index_t cols = checked_index(u64(), "cols");
  const std::uint64_t nptr = checked_count(u64(), "row_ptr");
  std::vector<index_t> row_ptr;
  row_ptr.reserve(nptr);
  for (std::uint64_t i = 0; i < nptr; ++i) {
    row_ptr.push_back(checked_index(u64(), "row_ptr entry"));
  }
  const std::uint64_t ncol = checked_count(u64(), "col_idx");
  std::vector<index_t> col;
  col.reserve(ncol);
  for (std::uint64_t i = 0; i < ncol; ++i) {
    col.push_back(checked_index(u64(), "col_idx entry"));
  }
  const std::uint64_t nval = checked_count(u64(), "values");
  std::vector<double> val;
  val.reserve(nval);
  for (std::uint64_t i = 0; i < nval; ++i) val.push_back(f64());
  try {
    return la::CsrMatrix(rows, cols, std::move(row_ptr), std::move(col),
                         std::move(val));
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("inconsistent CSR payload: ") + e.what());
  }
}

// ---- frame header ----------------------------------------------------------

std::string encode_header(MsgType type, std::uint64_t payload_len) {
  WireWriter w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(type));
  w.u64(payload_len);
  return w.take();
}

FrameHeader decode_header(const char* bytes, std::uint64_t max_payload) {
  const std::string view(bytes, kHeaderBytes);
  WireReader r(view);
  if (r.u32() != kMagic) {
    throw ProtocolError("bad frame magic (not an MSV1 peer?)");
  }
  const std::uint32_t type = r.u32();
  const std::uint64_t len = r.u64();
  if (type < static_cast<std::uint32_t>(MsgType::kSolve) ||
      type > static_cast<std::uint32_t>(MsgType::kErrorReply)) {
    throw ProtocolError("unknown message type " + std::to_string(type));
  }
  if (len > max_payload) {
    throw ProtocolError("frame payload of " + std::to_string(len) +
                        " bytes exceeds the " + std::to_string(max_payload) +
                        "-byte limit");
  }
  return {static_cast<MsgType>(type), len};
}

// ---- messages --------------------------------------------------------------

std::string SolveRequest::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(source));
  switch (source) {
    case MatrixSource::kCatalog: w.str(problem); break;
    case MatrixSource::kInlineCsr: w.csr(matrix); break;
    case MatrixSource::kFingerprint: w.u64(fingerprint); break;
  }
  w.str(config);
  w.u32(static_cast<std::uint32_t>(rhs.size()));
  for (const Vec& b : rhs) w.vec(b);
  w.u8(want_trace ? 1 : 0);
  return w.take();
}

SolveRequest SolveRequest::decode(const std::string& payload) {
  WireReader r(payload);
  SolveRequest q;
  const std::uint8_t src = r.u8();
  if (src > static_cast<std::uint8_t>(MatrixSource::kFingerprint)) {
    throw ProtocolError("unknown matrix source " + std::to_string(src));
  }
  q.source = static_cast<MatrixSource>(src);
  switch (q.source) {
    case MatrixSource::kCatalog: q.problem = r.str(); break;
    case MatrixSource::kInlineCsr: q.matrix = r.csr(); break;
    case MatrixSource::kFingerprint: q.fingerprint = r.u64(); break;
  }
  q.config = r.str();
  const std::uint32_t nrhs = r.u32();
  q.rhs.reserve(nrhs);
  for (std::uint32_t i = 0; i < nrhs; ++i) q.rhs.push_back(r.vec());
  q.want_trace = r.u8() != 0;
  if (!r.exhausted()) throw ProtocolError("trailing bytes in solve request");
  return q;
}

bool SolveResponse::all_converged() const {
  if (retcode != Retcode::kOk || results.empty()) return false;
  for (const RhsResult& r : results) {
    if (!r.ok || !r.converged) return false;
  }
  return true;
}

std::string SolveResponse::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(retcode));
  if (retcode != Retcode::kOk) {
    w.str(message);
    return w.take();
  }
  w.u8(cache_hit ? 1 : 0);
  w.u64(fingerprint);
  w.str(format_selected);
  w.f64(setup_seconds);
  w.f64(solve_seconds);
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const RhsResult& r : results) {
    w.u8(r.ok ? 1 : 0);
    if (!r.ok) {
      w.str(r.error);
      continue;
    }
    w.u8(r.converged ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(r.iterations));
    w.f64(r.final_delta_inf);
    w.vec(r.solution);
  }
  w.u64(request_id);
  w.str(trace);
  return w.take();
}

SolveResponse SolveResponse::decode(const std::string& payload) {
  WireReader r(payload);
  SolveResponse a;
  a.retcode = static_cast<Retcode>(r.u32());
  if (a.retcode != Retcode::kOk) {
    a.message = r.str();
    if (!r.exhausted()) throw ProtocolError("trailing bytes in solve reply");
    return a;
  }
  a.cache_hit = r.u8() != 0;
  a.fingerprint = r.u64();
  a.format_selected = r.str();
  a.setup_seconds = r.f64();
  a.solve_seconds = r.f64();
  const std::uint32_t n = r.u32();
  a.results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RhsResult res;
    res.ok = r.u8() != 0;
    if (!res.ok) {
      res.error = r.str();
    } else {
      res.converged = r.u8() != 0;
      res.iterations = static_cast<std::int32_t>(r.u32());
      res.final_delta_inf = r.f64();
      res.solution = r.vec();
    }
    a.results.push_back(std::move(res));
  }
  a.request_id = r.u64();
  a.trace = r.str();
  if (!r.exhausted()) throw ProtocolError("trailing bytes in solve reply");
  return a;
}

std::string StatusResponse::encode() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(retcode));
  w.str(body);
  return w.take();
}

StatusResponse StatusResponse::decode(const std::string& payload) {
  WireReader r(payload);
  StatusResponse a;
  a.retcode = static_cast<Retcode>(r.u32());
  a.body = r.str();
  if (!r.exhausted()) throw ProtocolError("trailing bytes in status reply");
  return a;
}

}  // namespace mstep::serve
