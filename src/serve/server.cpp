#include "serve/server.hpp"

#include <poll.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "problems/problem.hpp"
#include "serve/hash.hpp"
#include "solver/config.hpp"
#include "util/span.hpp"

namespace mstep::serve {

namespace {

/// The self-pipe the signal handlers write to.  One live server per
/// process (install_signal_handlers documents "latest wins").
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<Server*> g_signal_server{nullptr};

extern "C" void mstep_served_signal_handler(int) {
  // async-signal-safe: one write, no locks, no allocation.
  const int fd = g_signal_wake_fd.load();
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
  Server* server = g_signal_server.load();
  if (server != nullptr) server->request_shutdown();
}

std::string exception_message(const std::exception_ptr& e) {
  if (!e) return "";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

std::shared_ptr<const ProblemData> problem_data_from_catalog(
    const std::string& spec) {
  problems::Problem p = problems::ProblemRegistry::instance().create(spec);
  return make_problem_data(std::move(p.matrix), std::move(p.classes),
                           std::move(p.rhs), std::move(p.description));
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      admission_(options_.max_inflight > 0
                     ? options_.max_inflight
                     : 2 * static_cast<int>(std::max(
                               1u, std::thread::hardware_concurrency()))) {
  if (options_.port < 0 && options_.unix_path.empty()) {
    throw std::invalid_argument(
        "server needs a TCP port and/or a unix socket path");
  }
  if (::pipe(wake_pipe_) != 0) {
    throw SocketError(std::string("pipe: ") + std::strerror(errno));
  }
}

Server::~Server() {
  // Detach this instance from the process-wide signal plumbing if it is
  // the one installed.
  Server* self = this;
  g_signal_server.compare_exchange_strong(self, nullptr);
  int fd = wake_pipe_[1];
  g_signal_wake_fd.compare_exchange_strong(fd, -1);
  reap_finished_connections(/*join_all=*/true);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Server::bind() {
  if (options_.port >= 0) {
    tcp_listener_ = listen_tcp(options_.host, options_.port);
  }
  if (!options_.unix_path.empty()) {
    unix_listener_ = listen_unix(options_.unix_path);
  }
}

int Server::bound_port() const {
  if (!tcp_listener_.valid()) {
    throw std::logic_error("bound_port: no TCP listener (call bind first)");
  }
  return local_tcp_port(tcp_listener_);
}

void Server::request_shutdown() {
  shutdown_requested_.store(true);
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::install_signal_handlers() {
  g_signal_wake_fd.store(wake_pipe_[1]);
  g_signal_server.store(this);
  struct sigaction sa = {};
  sa.sa_handler = mstep_served_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking calls return EINTR promptly
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void Server::log(const std::string& line) const {
  if (options_.verbose) std::cerr << "mstep_served: " << line << '\n';
}

void Server::run() {
  while (!shutdown_requested_.load()) {
    struct pollfd fds[3];
    int nfds = 0;
    int tcp_slot = -1, unix_slot = -1;
    if (tcp_listener_.valid()) {
      tcp_slot = nfds;
      fds[nfds++] = {tcp_listener_.fd(), POLLIN, 0};
    }
    if (unix_listener_.valid()) {
      unix_slot = nfds;
      fds[nfds++] = {unix_listener_.fd(), POLLIN, 0};
    }
    fds[nfds++] = {wake_pipe_[0], POLLIN, 0};

    const int r = ::poll(fds, static_cast<nfds_t>(nfds), 500);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw SocketError(std::string("poll: ") + std::strerror(errno));
    }
    reap_finished_connections(/*join_all=*/false);
    if (r == 0) continue;
    if (tcp_slot >= 0 && (fds[tcp_slot].revents & POLLIN) != 0) {
      Socket conn = accept_connection(tcp_listener_);
      auto c = std::make_unique<Connection>();
      Connection* raw = c.get();
      c->thread = std::thread([this, raw, s = std::move(conn)]() mutable {
        serve_connection(std::move(s));
        raw->done.store(true);
      });
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(c));
    }
    if (unix_slot >= 0 && (fds[unix_slot].revents & POLLIN) != 0) {
      Socket conn = accept_connection(unix_listener_);
      auto c = std::make_unique<Connection>();
      Connection* raw = c.get();
      c->thread = std::thread([this, raw, s = std::move(conn)]() mutable {
        serve_connection(std::move(s));
        raw->done.store(true);
      });
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(c));
    }
    // wake-pipe bytes are drained below; the flag is what matters.
    if ((fds[nfds - 1].revents & POLLIN) != 0) {
      char buf[64];
      [[maybe_unused]] const ssize_t drained =
          ::read(wake_pipe_[0], buf, sizeof(buf));
    }
  }

  // Drain: stop accepting, let in-flight requests finish, join handlers,
  // flush the final metrics snapshot.
  log("draining: closing listeners, waiting for in-flight solves");
  tcp_listener_.close();
  unix_listener_.close();
  reap_finished_connections(/*join_all=*/true);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  write_final_metrics();
  log("drained; exiting");
}

void Server::reap_finished_connections(bool join_all) {
  std::list<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (join_all || (*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : finished) {
    if (c->thread.joinable()) c->thread.join();
  }
}

void Server::write_final_metrics() {
  if (options_.metrics_out.empty()) return;
  std::ofstream out(options_.metrics_out);
  if (!out) {
    std::cerr << "mstep_served: cannot write metrics snapshot to "
              << options_.metrics_out << '\n';
    return;
  }
  metrics_json().dump(out);
  log("final metrics snapshot written to " + options_.metrics_out);
}

util::Json Server::metrics_json() const {
  return metrics_.to_json(cache_.stats(), admission_.depth(),
                          admission_.max_inflight(), uptime_.seconds());
}

void Server::serve_connection(Socket sock) {
  // Label this handler's trace track; requests solved inline (no pool)
  // put their prepare/solve/iteration spans on this thread.
  static std::atomic<int> conn_serial{0};
  obs::name_thread("conn-" + std::to_string(1 + conn_serial.fetch_add(1)));
  try {
    for (;;) {
      // Poll in short slices so a drain is observed even on an idle
      // keep-alive connection.
      while (!sock.wait_readable(200)) {
        if (shutdown_requested_.load()) return;
      }
      char header[kHeaderBytes];
      if (!sock.read_exact(header, kHeaderBytes)) return;  // peer closed
      FrameHeader fh{MsgType::kErrorReply, 0};
      std::string payload;
      try {
        fh = decode_header(header, options_.max_payload);
        payload.resize(static_cast<std::size_t>(fh.payload_len));
        if (fh.payload_len > 0 &&
            !sock.read_exact(&payload[0], payload.size())) {
          throw SocketError("peer closed the connection mid-frame");
        }
      } catch (const ProtocolError& e) {
        metrics_.count_error();
        const std::string body =
            StatusResponse{Retcode::kProtocol, e.what()}.encode();
        sock.write_all(encode_header(MsgType::kErrorReply, body.size()));
        sock.write_all(body);
        return;  // framing is lost; drop the connection
      }
      if (!handle_frame(sock, fh.type, payload)) return;
    }
  } catch (const SocketError& e) {
    log(std::string("connection dropped: ") + e.what());
  } catch (const std::exception& e) {
    log(std::string("connection handler error: ") + e.what());
  }
}

bool Server::handle_frame(Socket& sock, MsgType type,
                          const std::string& payload) {
  const util::Timer request_timer;
  switch (type) {
    case MsgType::kSolve: {
      metrics_.count_solve();
      SolveResponse response;
      try {
        response = handle_solve(SolveRequest::decode(payload));
      } catch (const ProtocolError& e) {
        metrics_.count_error();
        response.retcode = Retcode::kProtocol;
        response.message = e.what();
      }
      if (response.retcode != Retcode::kOk &&
          response.retcode != Retcode::kBusy) {
        metrics_.count_error();
      }
      const std::string body = response.encode();
      sock.write_all(encode_header(MsgType::kSolveReply, body.size()));
      sock.write_all(body);
      metrics_.record_request_seconds(request_timer.seconds());
      return true;
    }
    case MsgType::kMetrics: {
      metrics_.count_metrics();
      const std::string body =
          StatusResponse{Retcode::kOk, metrics_json().dump_string()}.encode();
      sock.write_all(encode_header(MsgType::kMetricsReply, body.size()));
      sock.write_all(body);
      return true;
    }
    case MsgType::kShutdown: {
      metrics_.count_shutdown();
      const std::string body = StatusResponse{Retcode::kOk, "draining"}.encode();
      sock.write_all(encode_header(MsgType::kShutdownReply, body.size()));
      sock.write_all(body);
      log("shutdown requested over the wire");
      request_shutdown();
      return false;
    }
    default: {
      metrics_.count_error();
      const std::string body =
          StatusResponse{Retcode::kProtocol,
                         "unexpected message type on the server side"}
              .encode();
      sock.write_all(encode_header(MsgType::kErrorReply, body.size()));
      sock.write_all(body);
      return false;
    }
  }
}

SolveResponse Server::handle_solve(SolveRequest request) {
  // Every solve gets an id; every span the request emits (here and down
  // through prepare/pcg/sweep on whatever thread runs them) carries it as
  // the correlation arg, so one request's trace can be cut out of the
  // shared ring buffers.  want_trace opens a per-request enable window —
  // tracing one request never forces it on the whole daemon.
  const std::uint64_t request_id = 1 + request_serial_.fetch_add(1);
  const bool want_trace = request.want_trace;
  const obs::CorrelationScope correlate(request_id);
  std::unique_ptr<obs::EnableScope> enable;
  if (want_trace) enable = std::make_unique<obs::EnableScope>();

  SolveResponse response;
  {
    const obs::Span request_span("request");
    response = handle_solve_inner(std::move(request));
  }
  response.request_id = request_id;
  if (want_trace && response.retcode == Retcode::kOk) {
    response.trace = obs::Tracer::instance().chrome_json(request_id);
  }
  return response;
}

SolveResponse Server::handle_solve_inner(SolveRequest request) {
  SolveResponse response;
  if (shutdown_requested_.load()) {
    response.retcode = Retcode::kShuttingDown;
    response.message = "server is draining";
    return response;
  }
  if (!admission_.try_enter()) {
    metrics_.count_busy();
    response.retcode = Retcode::kBusy;
    response.message = "admission queue full (" +
                       std::to_string(admission_.max_inflight()) +
                       " solves in flight); retry after backoff";
    return response;
  }
  struct AdmissionGuard {
    Admission& admission;
    ~AdmissionGuard() { admission.leave(); }
  } guard{admission_};

  // Config: parse + validate + canonicalize (the canonical string is the
  // cache key's config half).
  solver::SolverConfig config;
  std::string canonical_config;
  try {
    config = solver::SolverConfig::from_string(request.config);
    config.validate();
    canonical_config = config.to_string();
  } catch (const std::exception& e) {
    response.retcode = Retcode::kBadConfig;
    response.message = e.what();
    return response;
  }

  // Matrix source -> fingerprint + lazy loader (only run on cache miss).
  std::uint64_t fingerprint = 0;
  std::shared_ptr<const ProblemData> data;  // pre-built when already loaded
  std::function<std::shared_ptr<const ProblemData>()> loader;
  try {
    switch (request.source) {
      case MatrixSource::kCatalog: {
        bool known = false;
        {
          std::lock_guard<std::mutex> lock(spec_index_mutex_);
          const auto it = spec_index_.find(request.problem);
          if (it != spec_index_.end()) {
            fingerprint = it->second;
            known = true;
          }
        }
        if (!known) {
          data = problem_data_from_catalog(request.problem);
          fingerprint = data->fingerprint;
          std::lock_guard<std::mutex> lock(spec_index_mutex_);
          spec_index_[request.problem] = fingerprint;
        }
        const std::string spec = request.problem;
        const std::uint64_t fp = fingerprint;
        loader = [this, spec, fp, data]() {
          if (data) return data;
          // The spec was seen before but its entry was evicted: reuse the
          // matrix if any other config still holds it, else regenerate.
          if (auto found = cache_.find_matrix(fp)) return found;
          return problem_data_from_catalog(spec);
        };
        break;
      }
      case MatrixSource::kInlineCsr: {
        if (request.matrix.rows() != request.matrix.cols()) {
          response.retcode = Retcode::kBadRequest;
          response.message = "inline matrix is " +
                             std::to_string(request.matrix.rows()) + "x" +
                             std::to_string(request.matrix.cols()) +
                             "; the solver wants square SPD";
          return response;
        }
        data = make_problem_data(std::move(request.matrix), {}, {},
                                 "inline CSR matrix");
        fingerprint = data->fingerprint;
        loader = [data]() { return data; };
        break;
      }
      case MatrixSource::kFingerprint: {
        data = cache_.find_matrix(request.fingerprint);
        if (!data) {
          response.retcode = Retcode::kUnknownMatrix;
          response.message =
              "no resident matrix with fingerprint " +
              fingerprint_hex(request.fingerprint) +
              "; resend it inline or by catalog spec";
          return response;
        }
        fingerprint = request.fingerprint;
        loader = [data]() { return data; };
        break;
      }
    }
  } catch (const std::exception& e) {
    response.retcode = Retcode::kBadProblem;
    response.message = e.what();
    return response;
  }

  // Pipeline: cache hit goes straight to the batch lanes; miss pays
  // generation + preparation once, timed as this request's setup cost.
  PreparedCache::Lookup lookup;
  util::Timer setup_timer;
  try {
    const obs::Span setup_span("setup");
    lookup = cache_.get_or_prepare(fingerprint, config, canonical_config,
                                   loader);
  } catch (const std::exception& e) {
    response.retcode = Retcode::kSolveFailed;
    response.message = e.what();
    return response;
  }
  response.setup_seconds = lookup.hit ? 0.0 : setup_timer.seconds();
  response.cache_hit = lookup.hit;
  response.fingerprint = fingerprint;
  if (lookup.hit) {
    metrics_.count_cache_hit();
    obs::count(obs::Counter::kCacheHits, 1);
  } else {
    metrics_.record_setup_seconds(response.setup_seconds);
  }

  const ProblemData& problem = *lookup.entry->problem;
  const auto n = static_cast<std::size_t>(problem.matrix.rows());

  // Right-hand sides: the request's, or the problem's own, or b = K*1.
  std::vector<Vec> bs = std::move(request.rhs);
  if (bs.empty()) {
    if (!problem.rhs.empty()) {
      bs.push_back(problem.rhs);
    } else {
      Vec ones(n, 1.0);
      Vec b(n);
      problem.matrix.multiply(ones, b);
      bs.push_back(std::move(b));
    }
  }
  for (std::size_t i = 0; i < bs.size(); ++i) {
    if (bs[i].size() != n) {
      response.retcode = Retcode::kBadRequest;
      response.message = "right-hand side " + std::to_string(i) + " has " +
                         std::to_string(bs[i].size()) + " entries, matrix has " +
                         std::to_string(n) + " rows";
      return response;
    }
  }

  util::Timer solve_timer;
  solver::BatchReport batch;
  try {
    batch = lookup.entry->prepared.solveMany(
        util::Span<const Vec>(bs.data(), bs.size()));
  } catch (const std::exception& e) {
    response.retcode = Retcode::kSolveFailed;
    response.message = e.what();
    return response;
  }
  response.solve_seconds = solve_timer.seconds();
  metrics_.record_solve_seconds(response.solve_seconds);

  response.format_selected =
      solver::to_string(lookup.entry->prepared.resolved_format());
  response.results.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    RhsResult r;
    r.ok = batch.ok(i);
    if (!r.ok) {
      r.error = exception_message(batch.errors[i]);
    } else {
      r.converged = batch.reports[i].converged();
      r.iterations = batch.reports[i].iterations();
      r.final_delta_inf = batch.reports[i].result.final_delta_inf;
      r.solution = std::move(batch.reports[i].solution);
    }
    response.results.push_back(std::move(r));
  }
  log("solve fp=" + fingerprint_hex(fingerprint) +
      (response.cache_hit ? " cache=hit" : " cache=miss") + " nrhs=" +
      std::to_string(response.results.size()));
  return response;
}

}  // namespace mstep::serve
