#include "serve/hash.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace mstep::serve {

void Fnv1a::bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state_ ^= p[i];
    state_ *= 0x100000001b3ull;  // FNV prime
  }
}

void Fnv1a::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffu);
  }
  bytes(buf, sizeof(buf));
}

void Fnv1a::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Fnv1a::str(const std::string& s) {
  u64(s.size());  // length prefix keeps "ab","c" distinct from "a","bc"
  bytes(s.data(), s.size());
}

std::uint64_t matrix_fingerprint(const la::CsrMatrix& m) {
  Fnv1a h;
  h.u64(static_cast<std::uint64_t>(m.rows()));
  h.u64(static_cast<std::uint64_t>(m.cols()));
  for (const index_t p : m.row_ptr()) h.u64(static_cast<std::uint64_t>(p));
  for (const index_t c : m.col_idx()) h.u64(static_cast<std::uint64_t>(c));
  for (const double v : m.values()) h.f64(v);
  return h.digest();
}

std::uint64_t pipeline_fingerprint(const la::CsrMatrix& m,
                                   const color::ColorClasses& classes) {
  std::uint64_t fp = matrix_fingerprint(m);
  if (classes.classes.empty()) return fp;
  Fnv1a h;
  h.u64(fp);
  h.u64(classes.classes.size());
  for (const auto& cls : classes.classes) {
    h.u64(cls.size());
    for (const index_t eq : cls) h.u64(static_cast<std::uint64_t>(eq));
  }
  return h.digest();
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::uint64_t fingerprint_from_hex(const std::string& text) {
  std::string t = text;
  if (t.rfind("0x", 0) == 0 || t.rfind("0X", 0) == 0) t = t.substr(2);
  if (t.empty() || t.size() > 16) {
    throw std::invalid_argument("bad fingerprint '" + text +
                                "': want up to 16 hex digits");
  }
  std::uint64_t v = 0;
  for (const char c : t) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("bad fingerprint '" + text +
                                  "': non-hex digit");
    }
  }
  return v;
}

}  // namespace mstep::serve
