#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace mstep::serve {

int LatencyHistogram::bucket_of(double seconds) {
  if (!(seconds > kFloorSeconds)) return 0;
  const int b = static_cast<int>(
      std::floor(std::log10(seconds / kFloorSeconds) * kBucketsPerDecade));
  return std::min(std::max(b, 0), kBuckets - 1);
}

void LatencyHistogram::record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[static_cast<std::size_t>(bucket_of(seconds))];
  ++count_;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

double LatencyHistogram::percentile_locked(double q) const {
  if (count_ == 0) return 0.0;
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[static_cast<std::size_t>(b)];
    if (static_cast<double>(cumulative) >= rank) {
      // Geometric midpoint of the bucket, clamped by the observed max.
      const double lo =
          kFloorSeconds * std::pow(10.0, double(b) / kBucketsPerDecade);
      const double hi =
          kFloorSeconds * std::pow(10.0, double(b + 1) / kBucketsPerDecade);
      return std::min(std::sqrt(lo * hi), max_);
    }
  }
  return max_;
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Summary s;
  s.count = count_;
  s.mean = count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  s.max = max_;
  s.p50 = percentile_locked(0.50);
  s.p99 = percentile_locked(0.99);
  return s;
}

util::Json LatencyHistogram::to_json() const {
  const Summary s = summary();
  util::Json j = util::Json::object();
  j.set("count", static_cast<long long>(s.count))
      .set("mean", s.mean)
      .set("max", s.max)
      .set("p50", s.p50)
      .set("p99", s.p99);
  return j;
}

util::Json ServerMetrics::to_json(const PreparedCache::Stats& cache,
                                  int queue_depth, int max_inflight,
                                  double uptime_seconds) const {
  util::Json requests = util::Json::object();
  requests.set("solve", static_cast<long long>(solve_requests_.load()))
      .set("metrics", static_cast<long long>(metrics_requests_.load()))
      .set("shutdown", static_cast<long long>(shutdown_requests_.load()))
      .set("errors", static_cast<long long>(error_replies_.load()))
      .set("busy_rejections",
           static_cast<long long>(busy_rejections_.load()));

  util::Json cache_json = util::Json::object();
  cache_json.set("entries", static_cast<long long>(cache.entries))
      .set("bytes", static_cast<long long>(cache.bytes))
      .set("capacity_bytes", static_cast<long long>(cache.capacity_bytes))
      .set("hits", static_cast<long long>(cache.hits))
      .set("misses", static_cast<long long>(cache.misses))
      .set("evictions", static_cast<long long>(cache.evictions))
      .set("hit_rate", cache.hit_rate());

  util::Json j = util::Json::object();
  j.set("tool", "mstep_served")
      .set("uptime_seconds", uptime_seconds)
      .set("queue_depth", queue_depth)
      .set("max_inflight", max_inflight)
      .set("requests", std::move(requests))
      .set("cache", std::move(cache_json))
      .set("latency_solve_seconds", solve_latency_.to_json())
      .set("latency_request_seconds", request_latency_.to_json())
      .set("latency_setup_seconds", setup_latency_.to_json());
  return j;
}

}  // namespace mstep::serve
