// Thin RAII layer over POSIX stream sockets for the serve subsystem.
//
// Both transports the daemon speaks — TCP (loopback or routed) and
// Unix-domain — come through this one wrapper, so the server loop and the
// client library share the exact read_exact/write_all framing primitives
// and never touch a raw fd.  Errors surface as SocketError with the
// errno text attached; a cleanly closed peer is reported distinctly
// (read_exact returns false at a frame boundary) so connection teardown
// is not an error path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mstep::serve {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One connected (or listening) stream socket.  Move-only owner of the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Write the whole buffer (retrying short writes / EINTR); throws
  /// SocketError when the peer is gone.
  void write_all(const char* data, std::size_t len);
  void write_all(const std::string& data) {
    write_all(data.data(), data.size());
  }

  /// Read exactly `len` bytes.  Returns false if the peer closed the
  /// connection cleanly BEFORE the first byte (normal end of a framed
  /// conversation); throws SocketError on mid-buffer EOF or I/O errors.
  [[nodiscard]] bool read_exact(char* out, std::size_t len);

  /// Block until the socket is readable, at most `timeout_ms` (< 0 means
  /// forever).  Returns false on timeout.
  [[nodiscard]] bool wait_readable(int timeout_ms);

 private:
  int fd_ = -1;
};

/// Client side: connect to a TCP host:port or a Unix-domain path.
[[nodiscard]] Socket connect_tcp(const std::string& host, int port);
[[nodiscard]] Socket connect_unix(const std::string& path);

/// Server side: bound + listening sockets.  TCP port 0 binds an ephemeral
/// port — read it back with local_tcp_port().  listen_unix unlinks a
/// stale socket file first and is unlinked again by the caller on
/// shutdown.
[[nodiscard]] Socket listen_tcp(const std::string& host, int port,
                                int backlog = 64);
[[nodiscard]] Socket listen_unix(const std::string& path, int backlog = 64);
[[nodiscard]] int local_tcp_port(const Socket& listener);

/// Accept one pending connection (listener must be readable).
[[nodiscard]] Socket accept_connection(Socket& listener);

}  // namespace mstep::serve
