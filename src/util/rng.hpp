// Deterministic random number generation.
//
// All stochastic components (Lanczos start vectors, property-test inputs,
// synthetic workloads) draw from this generator so every run of the test and
// benchmark suites is reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace mstep::util {

/// xoshiro256** by Blackman & Vigna — small, fast, and good enough for
/// numerical test inputs.  Seeded deterministically; no global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 expansion of the seed into the 4-word state.
    std::uint64_t z = seed;
    for (auto& w : s_) {
      z += 0x9E3779B97F4A7C15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      w = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Vector of n uniform values in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo = -1.0,
                                     double hi = 1.0) {
    std::vector<double> v(n);
    for (auto& x : v) x = uniform(lo, hi);
    return v;
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mstep::util
