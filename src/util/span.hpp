// Minimal non-owning contiguous view (std::span is C++20, the library is
// C++17): pointer + length, implicitly constructible from the owners the
// batched-solve API actually meets — std::vector and C arrays.  The viewed
// storage must outlive the span.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace mstep::util {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}

  // NOLINTNEXTLINE(google-explicit-constructor): view types convert freely.
  Span(std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}
  // Const-vector form; only instantiable when T is const.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Span(const std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}

  template <std::size_t N>
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr Span(T (&arr)[N]) : data_(arr), size_(N) {}

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr T* data() const { return data_; }
  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] constexpr T* begin() const { return data_; }
  [[nodiscard]] constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace mstep::util
