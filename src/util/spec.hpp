// The "name:key=value:key=value" spec grammar and the shortest
// round-trip double formatting behind it.
//
// One grammar describes every runtime-selectable component: a splitting
// ("ssor:omega=1.2" in SolverConfig) and a catalog problem
// ("poisson3d:n=32" in the ProblemRegistry) parse and print through the
// same functions, so a spec that appears in a log line, a config string,
// or a CLI flag round-trips exactly everywhere.
#pragma once

#include <map>
#include <string>

namespace mstep::util {

/// Numeric options attached to a spec, e.g. {"omega", 1.2}.
using SpecOptions = std::map<std::string, double>;

/// Shortest decimal representation that parses back to exactly `v` —
/// the formatting used by config strings, spec strings, the Matrix
/// Market writer, and the JSON reports, so every serialized number
/// round-trips bit-exactly.
[[nodiscard]] std::string format_double(double v);

/// Strict double parse (whole string must be consumed); `what` prefixes
/// the std::invalid_argument diagnostic.
[[nodiscard]] double parse_double(const std::string& text,
                                  const std::string& what);

/// Strict int parse; `what` prefixes the diagnostic.
[[nodiscard]] int parse_int(const std::string& text, const std::string& what);

/// Parse "name[:key=value]*" into name + options.  Throws
/// std::invalid_argument (prefixed by `what`) on an empty name or a
/// malformed option.
void parse_spec(const std::string& text, const std::string& what,
                std::string* name, SpecOptions* options);

/// Inverse of parse_spec: "name:key=value:..." with the options in map
/// (lexicographic) order and shortest round-trip values.
[[nodiscard]] std::string spec_string(const std::string& name,
                                      const SpecOptions& options);

}  // namespace mstep::util
