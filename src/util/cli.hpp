// Minimal command-line flag parsing for examples and bench drivers.
//
// Supports "--name value" and "--name=value".  Unknown flags are an error so
// typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mstep::util {

class Cli {
 public:
  /// Parse argv.  `allowed` lists the flag names (without "--") that the
  /// program accepts; anything else throws std::invalid_argument.
  Cli(int argc, const char* const* argv, std::vector<std::string> allowed);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace mstep::util
